//! # HSU — Hierarchical Search Unit
//!
//! A Rust reproduction of *Extending GPU Ray-Tracing Units for Hierarchical
//! Search Acceleration* (MICRO 2024): the HSU hardware model, the four
//! hierarchical search structures it accelerates, a cycle-level GPU
//! simulator, the evaluation workloads, and the datapath area/power model.
//!
//! This facade crate re-exports the whole workspace under one namespace:
//!
//! * [`geometry`] — vectors, rays, AABBs, watertight triangle intersection,
//!   Morton codes, N-dimensional points and distances,
//! * [`unit`](crate::unit) — the HSU itself: ISA, node formats, functional semantics,
//!   warp buffer, arbiter, and the 9-stage unified datapath,
//! * [`bvh`], [`kdtree`], [`graph`], [`btree`] — the hierarchical search
//!   structures of the paper's four workloads,
//! * [`datasets`] — seeded synthetic stand-ins for the Table II datasets,
//! * [`sim`] — the cycle-level GPU timing model (SMs, GTO scheduling,
//!   caches/MSHRs, FR-FCFS HBM, one RT/HSU unit per SM),
//! * [`kernels`] — the workloads as trace-recording kernels with HSU and
//!   baseline lowerings,
//! * [`rtl`] — the functional-unit area and dynamic-power model,
//! * [`serve`] — a sharded, batched query-serving engine over the four
//!   index families, with archive-backed index loading and deterministic
//!   replay (`servebench` drives open-loop load against it).
//!
//! ## Quickstart
//!
//! ```
//! use hsu::prelude::*;
//!
//! // Index 3-D points in a BVH and run an HSU-accelerated radius search.
//! let prims: Vec<PointPrimitive> = (0..100)
//!     .map(|i| PointPrimitive::new(i, Vec3::new(i as f32 * 0.1, 0.0, 0.0), 0.2))
//!     .collect();
//! let bvh = LbvhBuilder::default().build(&prims);
//! let hits = bvh.radius_search(&prims, Vec3::new(5.03, 0.0, 0.0), 0.3);
//! assert!(hits.iter().any(|h| h.id == 50));
//! ```
//!
//! See the `examples/` directory for end-to-end scenarios (vector search,
//! point clouds, key-value stores, ray tracing) and `crates/bench` for the
//! paper-figure regeneration harness (`cargo run --release -p hsu-bench
//! --bin repro -- all`).

#![warn(missing_docs)]

pub use hsu_btree as btree;
pub use hsu_bvh as bvh;
pub use hsu_core as unit;
pub use hsu_datasets as datasets;
pub use hsu_geometry as geometry;
pub use hsu_graph as graph;
pub use hsu_kdtree as kdtree;
pub use hsu_kernels as kernels;
pub use hsu_rtl as rtl;
pub use hsu_serve as serve;
pub use hsu_sim as sim;

/// The most common types, one `use` away.
pub mod prelude {
    pub use hsu_btree::BPlusTree;
    pub use hsu_bvh::{Bvh2, Bvh4, LbvhBuilder, PointPrimitive, SahBuilder, TrianglePrimitive};
    pub use hsu_core::{intrinsics, HsuConfig};
    pub use hsu_datasets::{Dataset, DatasetId};
    pub use hsu_geometry::point::{Metric, PointSet};
    pub use hsu_geometry::{Aabb, Ray, Triangle, Vec3};
    pub use hsu_graph::{GraphConfig, HnswGraph};
    pub use hsu_kdtree::{KdForest, KdTree};
    pub use hsu_kernels::Variant;
    pub use hsu_serve::{Engine, EngineConfig, Query, QueryOutput, ServeError};
    pub use hsu_sim::{
        config::{GpuConfig, SimMode},
        Gpu, SimError, SimReport,
    };
}
