#!/usr/bin/env bash
# Local CI: exactly what .github/workflows/ci.yml runs.
#
# Offline-friendly by construction: all external dependencies are vendored
# path crates (vendor/README.md), so no step needs registry or network
# access. Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release) =="
cargo build --workspace --release

echo "== test (debug) =="
cargo test --workspace -q

echo "== test (release, includes the slow double-build determinism tests) =="
cargo test --workspace -q --release

echo "== sim modes (differential bench: stepped oracle vs event-driven) =="
# Runs the suite matrix under both simulation modes, asserts the reports
# are identical, and records wall time + ticks per mode in BENCH_sim.json.
# Quarter scale on the default 32-SM machine keeps this a few minutes;
# drop --quick for the full-scale numbers quoted in EXPERIMENTS.md.
cargo run --release -p hsu-bench --bin simbench -- --quick --jobs 0 --out BENCH_sim.json

echo "== fmt =="
cargo fmt --all --check

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "CI OK"
