#!/usr/bin/env bash
# Local CI: exactly what .github/workflows/ci.yml runs.
#
# Offline-friendly by construction: all external dependencies are vendored
# path crates (vendor/README.md), so no step needs registry or network
# access. Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release) =="
cargo build --workspace --release

echo "== test (debug) =="
cargo test --workspace -q

echo "== test (release, includes the slow double-build determinism tests) =="
cargo test --workspace -q --release

echo "== geometry bench smoke (compile only) =="
# The criterion hot-path benches (point distance batch, aabb ray-slab,
# triangle intersect) must keep building; timing runs stay local.
cargo bench -p hsu-geometry --no-run

echo "== sim-mode matrix (stepped / event / parallel-epoch x thread counts) =="
# Fast three-way equivalence leg: the scaled-down suite must produce
# byte-identical reports in all three simulation modes, for 1 and 4
# parallel-epoch worker threads. Catches scheduling nondeterminism that the
# unit proptests' small machines might miss.
cargo test --release -q --test sim_equivalence full_suite_matrix_is_mode_equivalent

echo "== RT-organization golden matrix (baseline vs treelet cores, smoke scale) =="
# Cross-organization differential leg: the five golden workloads must
# produce identical report payloads (instruction issue, warp retirement,
# RT instruction counts) under the baseline and treelet-scheduled RT cores
# in all three simulation modes, and the baseline core must still hit its
# pinned golden cycle counts. Fails if the two organizations ever diverge
# in anything but timing/stat columns.
cargo test --release -q --test rt_organization -- \
    golden_workloads_agree_across_organizations \
    baseline_organization_still_matches_the_golden_cycles

echo "== sim modes (differential bench: stepped oracle vs event + parallel) =="
# Runs the suite matrix under all three simulation modes, asserts the
# reports are identical, and APPENDS wall time + ticks per mode to the
# BENCH_sim.json trajectory (use --pr to label the entry; history is never
# overwritten). Quarter scale on the default 32-SM machine keeps this a few
# minutes; drop --quick for the full-scale numbers quoted in EXPERIMENTS.md.
cargo run --release -p hsu-bench --bin simbench -- --quick --jobs 0 --pr ci --out BENCH_sim.json

echo "== fault-injection smoke (typed errors + partial report, no aborts) =="
# Generates one healthy and three corrupted trace files, replays them through
# the fault-tolerant pool, and asserts that repro exits nonzero while still
# producing a well-formed partial report (the healthy job must succeed, the
# corrupted ones must fail with typed errors rather than a process abort).
FAULT_DIR="$(mktemp -d)"
trap 'rm -rf "$FAULT_DIR"' EXIT
cargo run --release -q -p hsu-bench --bin repro -- --out "$FAULT_DIR" gen-fault-traces
if cargo run --release -q -p hsu-bench --bin repro -- --keep-going \
    --trace "$FAULT_DIR/healthy.hsut" --trace "$FAULT_DIR/truncated.hsut" \
    --trace "$FAULT_DIR/bitflip.hsut" --trace "$FAULT_DIR/bogus.hsut" \
    traces > "$FAULT_DIR/report.txt" 2>&1; then
  echo "FAIL: repro exited 0 despite corrupted traces"
  cat "$FAULT_DIR/report.txt"
  exit 1
fi
grep -q "job outcomes (4 jobs, 1 ok, 3 failed)" "$FAULT_DIR/report.txt"
grep -q "healthy.hsut .*ok" "$FAULT_DIR/report.txt"
grep -q "trace decode failed" "$FAULT_DIR/report.txt"
echo "fault-injection smoke OK"

echo "== archive round-trip + warm-cache smoke (cold vs warm byte-identical) =="
# Populates an .hsar cache dir on the first quick run, then re-runs warm:
# stdout must be byte-identical, the warm build phase must be all cache hits,
# and --no-cache must ignore the populated dir yet still match. This is the
# shell-level counterpart of tests/archive_cache.rs.
CACHE_DIR="$FAULT_DIR/hsar-cache"
cargo run --release -q -p hsu-bench --bin repro -- --quick --jobs 0 \
    --archive-dir "$CACHE_DIR" fig9 > "$FAULT_DIR/cold.txt" 2> "$FAULT_DIR/cold-err.txt"
cargo run --release -q -p hsu-bench --bin repro -- --quick --jobs 0 \
    --archive-dir "$CACHE_DIR" fig9 > "$FAULT_DIR/warm.txt" 2> "$FAULT_DIR/warm-err.txt"
diff "$FAULT_DIR/cold.txt" "$FAULT_DIR/warm.txt" \
  || { echo "FAIL: warm-cache run differs from cold run"; exit 1; }
grep -q ", 0 misses" "$FAULT_DIR/warm-err.txt" \
  || { echo "FAIL: warm run rebuilt instead of hitting the cache"; \
       cat "$FAULT_DIR/warm-err.txt"; exit 1; }
cargo run --release -q -p hsu-bench --bin repro -- --quick --jobs 0 \
    --archive-dir "$CACHE_DIR" --no-cache fig9 > "$FAULT_DIR/nocache.txt"
diff "$FAULT_DIR/cold.txt" "$FAULT_DIR/nocache.txt" \
  || { echo "FAIL: --no-cache run differs from cached runs"; exit 1; }
echo "warm-cache smoke OK"

echo "== servebench smoke (serving engine determinism cross-check) =="
# Opens all four index families, replays a small seeded stream across the
# shards x batch x workers grid, and exits nonzero if any per-family replay
# hash diverges. --smoke keeps the query count small and skips the
# BENCH_sim.json append; the full open-loop numbers live under the pr8
# entry (see EXPERIMENTS.md "Serving").
cargo run --release -q -p hsu-serve --bin servebench -- --smoke

echo "== servebench chaos smoke (supervised restart + typed failure counts) =="
# Injects one worker panic and one persistently slow shard into a smoke-scale
# btree run. servebench itself exits nonzero if any query fails with an
# unexpected error class or the supervisor never restarts the dead worker;
# on top of that, assert the report shows the injected panic was counted and
# the crashed queries surfaced as typed worker-crashed failures.
cargo run --release -q -p hsu-serve --bin servebench -- --smoke --chaos --family btree \
    > "$FAULT_DIR/chaos.txt"
grep -q "panics 1 restarts" "$FAULT_DIR/chaos.txt" \
  || { echo "FAIL: chaos report missing the injected worker panic"; \
       cat "$FAULT_DIR/chaos.txt"; exit 1; }
grep -qE "worker-crashed [1-9]" "$FAULT_DIR/chaos.txt" \
  || { echo "FAIL: no query surfaced as typed worker-crashed"; \
       cat "$FAULT_DIR/chaos.txt"; exit 1; }
grep -q "unexpected 0" "$FAULT_DIR/chaos.txt" \
  || { echo "FAIL: chaos run produced unexpected failure classes"; \
       cat "$FAULT_DIR/chaos.txt"; exit 1; }
echo "servebench chaos smoke OK"

echo "== fmt =="
cargo fmt --all --check

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "CI OK"
