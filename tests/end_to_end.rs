//! Cross-crate integration: datasets → structures → kernels → simulator.

use hsu::kernels::btree::{BtreeParams, BtreeWorkload};
use hsu::kernels::bvhnn::{BvhnnParams, BvhnnWorkload};
use hsu::kernels::flann::{FlannParams, FlannWorkload};
use hsu::kernels::ggnn::{GgnnParams, GgnnWorkload};
use hsu::prelude::*;

fn gpu() -> Gpu {
    Gpu::new(GpuConfig {
        num_sms: 2,
        ..GpuConfig::tiny()
    })
}

#[test]
fn ggnn_full_path_speedup_and_recall() {
    let data = Dataset::generate_scaled(DatasetId::LastFm, 3, Some(1200))
        .points()
        .unwrap()
        .clone();
    let wl = GgnnWorkload::build_from_points(
        &GgnnParams {
            points: data.len(),
            dim: data.dim(),
            queries: 48,
            metric: Metric::Angular,
            k: 10,
            ef: 64,
            m: 16,
            seed: 3,
        },
        &data,
    );
    assert!(wl.recall >= 0.8, "recall {}", wl.recall);
    let gpu = gpu();
    let hsu = gpu.run(&wl.trace(Variant::Hsu)).unwrap();
    let base = gpu.run(&wl.trace(Variant::Baseline)).unwrap();
    assert!(
        hsu.cycles < base.cycles,
        "HSU {} vs base {}",
        hsu.cycles,
        base.cycles
    );
    // The HSU run exercises the angular mode, multi-beat (65 dims -> 9 beats).
    let angular = hsu.rt.pipeline.completed[hsu::unit::pipeline::OperatingMode::Angular.index()];
    assert!(angular > 0, "angular beats must flow through the datapath");
}

#[test]
fn bvhnn_full_path_on_surface_dataset() {
    let data = Dataset::generate_scaled(DatasetId::Bunny, 5, Some(4000))
        .points()
        .unwrap()
        .clone();
    let wl = BvhnnWorkload::build_from_points(
        &BvhnnParams {
            points: data.len(),
            queries: 2048,
            radius_scale: 2.5,
            flavor: Default::default(),
            seed: 5,
        },
        &data,
    );
    assert!(wl.mean_neighbors >= 1.0);
    assert!(wl.mean_distance_tests < 200.0, "paper: <200 tests/query");
    let gpu = gpu();
    let hsu = gpu.run(&wl.trace(Variant::Hsu)).unwrap();
    let base = gpu.run(&wl.trace(Variant::Baseline)).unwrap();
    let speedup = base.cycles as f64 / hsu.cycles as f64;
    assert!(speedup > 1.0, "BVH-NN speedup {speedup}");
    // Fig. 12's strongest effect: BVH-NN HSU reduces L1 accesses.
    assert!(
        hsu.l1_accesses() < base.l1_accesses(),
        "HSU {} vs base {} L1 accesses",
        hsu.l1_accesses(),
        base.l1_accesses()
    );
}

#[test]
fn flann_full_path_on_cosmology() {
    let data = Dataset::generate_scaled(DatasetId::Cosmos, 7, Some(5000))
        .points()
        .unwrap()
        .clone();
    let wl = FlannWorkload::build_from_points(
        &FlannParams {
            points: data.len(),
            queries: 2048,
            k: 5,
            checks: 32,
            seed: 7,
        },
        &data,
    );
    assert!(wl.recall > 0.5, "recall {}", wl.recall);
    let gpu = gpu();
    let hsu = gpu.run(&wl.trace(Variant::Hsu)).unwrap();
    let base = gpu.run(&wl.trace(Variant::Baseline)).unwrap();
    assert!(
        hsu.cycles < base.cycles,
        "FLANN HSU {} vs base {}",
        hsu.cycles,
        base.cycles
    );
}

#[test]
fn btree_full_path_correct_and_faster() {
    let wl = BtreeWorkload::build(&BtreeParams {
        keys: 50_000,
        queries: 8192,
        branch: 256,
        seed: 9,
    });
    assert_eq!(wl.correctness, 1.0);
    let gpu = gpu();
    let hsu = gpu.run(&wl.trace(Variant::Hsu)).unwrap();
    let base = gpu.run(&wl.trace(Variant::Baseline)).unwrap();
    assert!(
        hsu.cycles < base.cycles,
        "B+ HSU {} vs base {}",
        hsu.cycles,
        base.cycles
    );
    let key_ops = hsu.rt.pipeline.completed[hsu::unit::pipeline::OperatingMode::KeyCompare.index()];
    assert!(key_ops > 0);
}

#[test]
fn simulation_is_deterministic_end_to_end() {
    let data = Dataset::generate_scaled(DatasetId::Sift10k, 11, Some(800))
        .points()
        .unwrap()
        .clone();
    let wl = GgnnWorkload::build_from_points(
        &GgnnParams {
            points: data.len(),
            dim: data.dim(),
            queries: 16,
            metric: Metric::Euclidean,
            k: 5,
            ef: 32,
            m: 12,
            seed: 11,
        },
        &data,
    );
    let gpu = gpu();
    let a = gpu.run(&wl.trace(Variant::Hsu)).unwrap();
    let b = gpu.run(&wl.trace(Variant::Hsu)).unwrap();
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.l1_accesses(), b.l1_accesses());
    assert_eq!(a.memory.dram.accesses, b.memory.dram.accesses);
}

#[test]
fn baseline_traces_never_touch_the_rt_unit() {
    let wl = BtreeWorkload::build(&BtreeParams {
        keys: 5_000,
        queries: 256,
        branch: 64,
        seed: 13,
    });
    let base = gpu().run(&wl.trace(Variant::Baseline)).unwrap();
    assert_eq!(base.rt.warp_instructions, 0);
    assert_eq!(base.rt.isa_instructions, 0);
    assert_eq!(base.memory.l1_rt_accesses, 0);
}
