//! Trace serialization round-trips at the full-workload level.
//!
//! The trace-driven methodology (§V-C) only works if a serialized trace
//! replays *identically*: for each application we lower a real workload,
//! write the trace through `trace_io`, read it back, and require the
//! re-simulated `SimReport` to be equal in every counter — not just cycles.

use hsu_kernels::btree::{BtreeParams, BtreeWorkload};
use hsu_kernels::bvhnn::{BvhnnParams, BvhnnWorkload};
use hsu_kernels::flann::{FlannParams, FlannWorkload};
use hsu_kernels::ggnn::{GgnnParams, GgnnWorkload};
use hsu_kernels::Variant;
use hsu_sim::config::GpuConfig;
use hsu_sim::trace::KernelTrace;
use hsu_sim::{trace_io, Gpu};

fn assert_replay_identical(trace: &KernelTrace) {
    let mut buf = Vec::new();
    trace_io::write_trace(trace, &mut buf).expect("serialize");
    let restored = trace_io::read_trace(buf.as_slice()).expect("deserialize");
    let gpu = Gpu::new(GpuConfig::tiny());
    let original = gpu.run(trace).unwrap();
    let replayed = gpu.run(&restored).unwrap();
    assert_eq!(
        original,
        replayed,
        "replayed trace '{}' diverged from the original simulation",
        trace.name()
    );
}

#[test]
fn ggnn_trace_replays_identically() {
    let wl = GgnnWorkload::build(&GgnnParams {
        points: 400,
        dim: 24,
        queries: 12,
        k: 5,
        ef: 16,
        m: 8,
        seed: 7,
        ..Default::default()
    });
    for v in [Variant::Hsu, Variant::Baseline] {
        assert_replay_identical(&wl.trace(v));
    }
}

#[test]
fn flann_trace_replays_identically() {
    let wl = FlannWorkload::build(&FlannParams {
        points: 500,
        queries: 24,
        k: 5,
        checks: 16,
        seed: 7,
    });
    for v in [Variant::Hsu, Variant::Baseline] {
        assert_replay_identical(&wl.trace(v));
    }
}

#[test]
fn bvhnn_trace_replays_identically() {
    let wl = BvhnnWorkload::build(&BvhnnParams {
        points: 500,
        queries: 24,
        seed: 7,
        ..Default::default()
    });
    for v in [Variant::Hsu, Variant::Baseline] {
        assert_replay_identical(&wl.trace(v));
    }
}

#[test]
fn btree_trace_replays_identically() {
    let wl = BtreeWorkload::build(&BtreeParams {
        keys: 1500,
        queries: 96,
        branch: 64,
        seed: 7,
    });
    for v in [Variant::Hsu, Variant::Baseline, Variant::BaselineStripped] {
        assert_replay_identical(&wl.trace(v));
    }
}
