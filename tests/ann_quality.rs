//! Functional quality of the three ANN structures on catalog datasets:
//! every index must actually find neighbours before its timing means
//! anything.

use hsu::prelude::*;

#[test]
fn graph_vs_forest_vs_exact_on_sift() {
    let data = Dataset::generate_scaled(DatasetId::Sift10k, 21, Some(1500))
        .points()
        .unwrap()
        .clone();
    let queries = hsu::datasets::query_set(&data, 40, 22);
    let truth = hsu::datasets::ground_truth_knn(&data, &queries, 10, Metric::Euclidean);

    let graph = HnswGraph::build(&data, Metric::Euclidean, GraphConfig::default(), 21);
    let forest = KdForest::build(&data, Metric::Euclidean, 4, 21);

    let mut graph_found = Vec::new();
    let mut forest_found = Vec::new();
    for q in queries.iter() {
        let (g, _) = graph.search(&data, q, 10, 96);
        graph_found.push(g.into_iter().map(|(i, _)| i).collect::<Vec<_>>());
        let (f, _) = forest.knn(&data, q, 10, 512);
        forest_found.push(f.into_iter().map(|(i, _)| i).collect::<Vec<_>>());
    }
    let graph_recall = hsu::datasets::recall_at_k(&graph_found, &truth, 10);
    let forest_recall = hsu::datasets::recall_at_k(&forest_found, &truth, 10);
    assert!(graph_recall >= 0.85, "graph recall {graph_recall}");
    assert!(forest_recall >= 0.6, "forest recall {forest_recall}");
}

#[test]
fn bvh_radius_search_is_exact_on_every_3d_dataset() {
    for id in DatasetId::THREE_D {
        let data = Dataset::generate_scaled(id, 31, Some(1200))
            .points()
            .unwrap()
            .clone();
        // Radius from local density.
        let nn = (0..32)
            .map(|i| {
                data.nearest_brute_force_excluding(data.point(i), i, Metric::Euclidean)
                    .1
                    .sqrt()
            })
            .sum::<f32>()
            / 32.0;
        let radius = (nn * 2.0).max(1e-4);
        let prims: Vec<PointPrimitive> = data
            .iter()
            .enumerate()
            .map(|(i, p)| PointPrimitive::new(i as u32, Vec3::new(p[0], p[1], p[2]), radius))
            .collect();
        let bvh = LbvhBuilder::default().build(&prims);
        bvh.validate(&prims).unwrap_or_else(|e| panic!("{id}: {e}"));

        for qi in [0usize, 100, 500] {
            let q = data.point(qi);
            let query = Vec3::new(q[0], q[1], q[2]);
            let mut got: Vec<u32> = bvh
                .radius_search(&prims, query, radius)
                .iter()
                .map(|n| n.id)
                .collect();
            got.sort_unstable();
            let mut expect: Vec<u32> = prims
                .iter()
                .filter(|p| (p.position - query).length_squared() <= radius * radius)
                .map(|p| p.id)
                .collect();
            expect.sort_unstable();
            assert_eq!(got, expect, "{id}: radius search must be exact");
        }
    }
}

#[test]
fn kdtree_exact_equals_brute_force_on_scan_data() {
    let data = Dataset::generate_scaled(DatasetId::Dragon, 41, Some(2000))
        .points()
        .unwrap()
        .clone();
    let tree = KdTree::build(&data, Metric::Euclidean);
    let queries = hsu::datasets::query_set(&data, 30, 42);
    for q in queries.iter() {
        let (found, _) = tree.nearest_exact(&data, q);
        let (idx, d) = data.nearest_brute_force(q, Metric::Euclidean).unwrap();
        let (fidx, fd) = found.unwrap();
        // Equal distance wins ties; compare distances not indices.
        assert!((fd - d).abs() <= 1e-6 * (1.0 + d), "{fidx} vs {idx}");
    }
}

#[test]
fn angular_datasets_search_under_angular_metric() {
    for id in [DatasetId::Glove, DatasetId::Nytimes] {
        let spec = hsu::datasets::spec(id);
        assert_eq!(spec.metric, Some(Metric::Angular));
        let data = Dataset::generate_scaled(id, 51, Some(800))
            .points()
            .unwrap()
            .clone();
        let graph = HnswGraph::build(&data, Metric::Angular, GraphConfig::default(), 51);
        // Self-queries must find themselves at distance ~0.
        for i in [0usize, 13, 200] {
            let (found, _) = graph.search(&data, data.point(i), 1, 48);
            assert_eq!(found[0].0 as usize, i, "{id}");
            assert!(found[0].1 < 1e-5);
        }
    }
}
