//! End-to-end determinism of the parallel suite runner: a suite built with
//! `--jobs 8` must be byte-identical — figure text included — to one built
//! with `--jobs 1`. This is the integration-level counterpart of the
//! runner-level property test in `simulator_properties.rs`.

use hsu_bench::{figures, Suite, SuiteConfig};

/// Small-but-real suite configuration: all 21 app × dataset runs, heavily
/// down-scaled so two full builds stay cheap.
fn small_config() -> SuiteConfig {
    SuiteConfig {
        sms: 2,
        scale_divisor: 64,
        ..SuiteConfig::default()
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "two full suite builds are slow unoptimized; run with --release"
)]
fn fig9_is_byte_identical_for_jobs_1_and_8() {
    let sequential = Suite::build(small_config());
    let parallel = Suite::build(small_config().with_jobs(8));

    // The rendered figure text — what `repro fig9` prints — must match byte
    // for byte. fig9 exercises every cached run (cycles of all three
    // lowerings per app × dataset).
    assert_eq!(
        figures::fig9(&sequential),
        figures::fig9(&parallel),
        "fig9 text differs between --jobs 1 and --jobs 8"
    );

    // And the underlying reports are equal in every counter, in order.
    assert_eq!(sequential.runs.len(), parallel.runs.len());
    for (a, b) in sequential.runs.iter().zip(&parallel.runs) {
        assert_eq!(a.label, b.label, "run ordering drifted under parallelism");
        assert_eq!(a.hsu, b.hsu, "{}: hsu report drifted", a.label);
        assert_eq!(a.base, b.base, "{}: base report drifted", a.label);
        assert_eq!(
            a.stripped, b.stripped,
            "{}: stripped report drifted",
            a.label
        );
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "two full suite builds are slow unoptimized; run with --release"
)]
fn sweep_figures_are_byte_identical_for_jobs_1_and_8() {
    // Fig. 10/11 launch their own sweep grids on the pool, so compare their
    // text across worker counts too. Built once per jobs value; the sweep
    // uses the suite's `jobs` setting internally.
    let sequential = Suite::build(small_config());
    let parallel = Suite::build(small_config().with_jobs(8));
    assert_eq!(
        figures::fig10(&sequential),
        figures::fig10(&parallel),
        "fig10 sweep differs between --jobs 1 and --jobs 8"
    );
}
