//! Property-based tests of the cycle-level simulator: random kernels must
//! complete, conserve instructions, and behave deterministically.

use hsu::prelude::*;
use hsu::sim::trace::{KernelTrace, OpClass, ThreadOp, ThreadTrace};
use proptest::prelude::*;

fn arb_op() -> impl Strategy<Value = ThreadOp> {
    prop_oneof![
        (1u32..16).prop_map(|count| ThreadOp::Alu { count }),
        (0u64..1 << 16, 1u32..128).prop_map(|(a, b)| ThreadOp::Load {
            addr: a * 8,
            bytes: b
        }),
        (0u64..1 << 16, 1u32..64).prop_map(|(a, b)| ThreadOp::Store {
            addr: a * 8,
            bytes: b
        }),
        (1u32..8).prop_map(|count| ThreadOp::Shared { count }),
        (0u64..1 << 12).prop_map(|n| ThreadOp::HsuRayIntersect {
            node_addr: n * 64,
            bytes: 64,
            triangle: n % 3 == 0,
        }),
        (0u64..1 << 12, 1u32..256).prop_map(|(a, d)| ThreadOp::HsuDistance {
            metric: if d % 2 == 0 {
                Metric::Euclidean
            } else {
                Metric::Angular
            },
            dim: d,
            candidate_addr: a * 4,
        }),
        (0u64..1 << 10, 1u32..256).prop_map(|(a, s)| ThreadOp::HsuKeyCompare {
            node_addr: a * 4,
            separators: s,
        }),
    ]
}

fn arb_kernel() -> impl Strategy<Value = KernelTrace> {
    prop::collection::vec(prop::collection::vec(arb_op(), 0..12), 1..96).prop_map(|threads| {
        let mut k = KernelTrace::new("prop");
        for ops in threads {
            let mut t = ThreadTrace::new();
            for op in ops {
                t.push(op);
            }
            k.push_thread(t);
        }
        k
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_kernels_complete_and_conserve_instructions(kernel in arb_kernel()) {
        let gpu = Gpu::new(GpuConfig::tiny());
        let report = gpu.run(&kernel).unwrap();

        // Every warp retires, including instruction-less ones.
        let expected_warps = kernel.thread_count().div_ceil(32) as u64;
        prop_assert_eq!(report.warps_retired, expected_warps);

        // Issued warp instructions match the packed trace exactly.
        let total_instr: u64 =
            kernel.warps().iter().map(|w| w.instructions.len() as u64).sum();
        let issued: u64 = report.issued.iter().sum();
        prop_assert_eq!(issued, total_instr);

        // HSU ISA instructions equal the per-lane beat expansion.
        let cfg = HsuConfig::default();
        let mut expected_isa = 0u64;
        for w in kernel.warps() {
            for i in &w.instructions {
                for op in i.lanes.iter().flatten() {
                    expected_isa += match op {
                        ThreadOp::HsuRayIntersect { .. } => 1,
                        ThreadOp::HsuDistance { metric, dim, .. } =>
                            cfg.beats_for(*metric, *dim as usize) as u64,
                        ThreadOp::HsuKeyCompare { separators, .. } =>
                            cfg.key_compare_instructions(*separators as usize) as u64,
                        _ => 0,
                    };
                }
            }
        }
        prop_assert_eq!(report.rt.isa_instructions, expected_isa);
        prop_assert_eq!(report.rt.pipeline.total_completed(), expected_isa);
    }

    #[test]
    fn simulation_is_a_pure_function_of_the_trace(kernel in arb_kernel()) {
        let gpu = Gpu::new(GpuConfig::tiny());
        let a = gpu.run(&kernel).unwrap();
        let b = gpu.run(&kernel).unwrap();
        prop_assert_eq!(a.cycles, b.cycles);
        prop_assert_eq!(a.l1_accesses(), b.l1_accesses());
        prop_assert_eq!(a.memory.l2.accesses(), b.memory.l2.accesses());
        prop_assert_eq!(a.memory.dram.accesses, b.memory.dram.accesses);
    }

    #[test]
    fn more_sms_never_slow_a_parallel_kernel(threads in 64usize..256) {
        let mut k = KernelTrace::new("scale");
        for i in 0..threads as u64 {
            let mut t = ThreadTrace::new();
            t.push(ThreadOp::Alu { count: 16 });
            t.push(ThreadOp::Load { addr: i * 256, bytes: 16 });
            k.push_thread(t);
        }
        let one = Gpu::new(GpuConfig { num_sms: 1, ..GpuConfig::tiny() }).run(&k).unwrap();
        let two = Gpu::new(GpuConfig { num_sms: 2, ..GpuConfig::tiny() }).run(&k).unwrap();
        // Allow small constant noise for drain effects.
        prop_assert!(two.cycles <= one.cycles + 100,
            "2 SMs {} vs 1 SM {}", two.cycles, one.cycles);
    }

    #[test]
    fn miss_rates_are_probabilities(kernel in arb_kernel()) {
        let report = Gpu::new(GpuConfig::tiny()).run(&kernel).unwrap();
        let m = report.l1_miss_rate();
        prop_assert!((0.0..=1.0).contains(&m));
        let l2 = report.memory.l2.miss_rate();
        prop_assert!((0.0..=1.0).contains(&l2));
        if report.memory.dram.accesses > 0 {
            prop_assert!(report.row_locality() >= 1.0);
        }
    }
}

/// A fixed pool of small deterministic kernels for the parallel-runner
/// property below. Shapes vary by index (and by [`hsu_bench::runner::job_seed`],
/// which doubles as a check that per-job seeds are stable) so different
/// matrix subsets exercise different mixes of op classes.
fn kernel_pool() -> Vec<KernelTrace> {
    (0..6u64)
        .map(|i| {
            let seed = hsu_bench::runner::job_seed(7, &format!("pool/{i}"));
            let mut k = KernelTrace::new(format!("pool-{i}"));
            for t in 0..(16 + (seed % 48)) {
                let mut tt = ThreadTrace::new();
                tt.push(ThreadOp::Alu {
                    count: (seed % 7 + 1) as u32,
                });
                tt.push(ThreadOp::Load {
                    addr: (seed ^ t).wrapping_mul(64) % (1 << 20),
                    bytes: 16,
                });
                match i % 3 {
                    0 => tt.push(ThreadOp::HsuRayIntersect {
                        node_addr: t * 64,
                        bytes: 64,
                        triangle: t % 2 == 0,
                    }),
                    1 => tt.push(ThreadOp::HsuDistance {
                        metric: Metric::Euclidean,
                        dim: (seed % 64 + 1) as u32,
                        candidate_addr: t * 4,
                    }),
                    _ => tt.push(ThreadOp::HsuKeyCompare {
                        node_addr: t * 4,
                        separators: (seed % 100 + 1) as u32,
                    }),
                }
                k.push_thread(tt);
            }
            k
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // Determinism under parallelism: for ANY worker count and ANY subset of
    // the run matrix, the work-stealing runner returns exactly the reports
    // the sequential path returns, in exactly the same order.
    #[test]
    fn parallel_runner_matches_sequential_for_any_matrix_subset(
        workers in 2usize..9,
        subset in prop::collection::vec(0usize..6, 1..12),
    ) {
        let pool = kernel_pool();
        let gpu = Gpu::new(GpuConfig::tiny());
        let jobs: Vec<&KernelTrace> = subset.iter().map(|i| &pool[*i]).collect();
        let sequential = hsu_bench::run_jobs(1, jobs.clone(), |_, k| gpu.run(k));
        let parallel = hsu_bench::run_jobs(workers, jobs, |_, k| gpu.run(k));
        prop_assert_eq!(sequential.len(), parallel.len());
        for (i, (a, b)) in sequential.iter().zip(&parallel).enumerate() {
            prop_assert_eq!(a, b, "job {} diverged with {} workers", i, workers);
        }
    }
}

#[test]
fn op_class_totals_partition_issued_instructions() {
    let mut k = KernelTrace::new("classes");
    for i in 0..64u64 {
        let mut t = ThreadTrace::new();
        t.push(ThreadOp::Alu { count: 3 });
        t.push(ThreadOp::Load {
            addr: i * 128,
            bytes: 4,
        });
        t.push(ThreadOp::HsuKeyCompare {
            node_addr: 0,
            separators: 10,
        });
        k.push_thread(t);
    }
    let r = Gpu::new(GpuConfig::tiny()).run(&k).unwrap();
    assert_eq!(r.issued[OpClass::Alu.index()], 2);
    assert_eq!(r.issued[OpClass::Load.index()], 2);
    assert_eq!(r.issued[OpClass::HsuKeyCompare.index()], 2);
    assert_eq!(r.issued.iter().sum::<u64>(), 6);
}
