//! ISA-level integration: the HSU's functional semantics against the
//! structures it serves, end to end through the modeled hardware.

use hsu::prelude::*;
use hsu::unit::exec::{self, DistanceAccumulator};
use hsu::unit::node::{BoxChild, BoxNode, KeyNode, NodeKind};
use hsu::unit::pipeline::{DatapathPipeline, OperatingMode};
use hsu::unit::HsuInstruction;

/// KEY_COMPARE must navigate a real B+-tree exactly like the software path.
#[test]
fn key_compare_navigates_btree_like_software() {
    let pairs: Vec<(u32, u64)> = (0..5000u32).map(|k| (k * 3, u64::from(k))).collect();
    let tree = BPlusTree::bulk_build(pairs, 64);
    tree.validate().unwrap();

    for probe in [0u32, 1, 2999, 3000, 7500, 14_997, 20_000] {
        // Hardware path: KEY_COMPARE per internal node.
        let mut node = tree.root();
        loop {
            match &tree.nodes()[node as usize] {
                hsu::btree::BtNode::Internal {
                    separators,
                    children,
                } => {
                    let key_node = KeyNode::new(separators.iter().map(|&s| s as f32).collect());
                    let result = exec::execute_key_compare(probe as f32, &key_node, 64);
                    let hw_child = result.key_child_index();
                    // Software path: partition point.
                    let sw_child = separators.partition_point(|&s| s <= probe);
                    assert_eq!(hw_child, sw_child, "probe {probe} at node {node}");
                    node = children[hw_child];
                }
                hsu::btree::BtNode::Leaf { keys, values, .. } => {
                    let hw = keys.binary_search(&probe).ok().map(|i| values[i]);
                    let sw = tree.get(probe);
                    assert_eq!(hw, sw);
                    break;
                }
            }
        }
    }
}

/// RAY_INTERSECT on a BVH4 node must return children in the same order a
/// software front-to-back traversal would visit them.
#[test]
fn ray_intersect_orders_children_front_to_back() {
    let children: Vec<BoxChild> = (0..4)
        .map(|i| BoxChild {
            aabb: Aabb::new(
                Vec3::new(2.0 * i as f32 + 1.0, -1.0, -1.0),
                Vec3::new(2.0 * i as f32 + 2.0, 1.0, 1.0),
            ),
            ptr: 100 + i as u64,
            kind: NodeKind::Box,
        })
        .collect();
    let node = BoxNode::new(children);
    let ray = Ray::new(Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0));
    let hsu::unit::isa::HsuResult::BoxHits { sorted } =
        exec::execute_box(&ray, &node, f32::INFINITY)
    else {
        panic!("wrong result variant");
    };
    let order: Vec<u64> = sorted.iter().flatten().map(|&(p, _)| p).collect();
    assert_eq!(order, vec![100, 101, 102, 103]);
}

/// Multi-beat distances through the cycle-accurate pipeline must equal the
/// scalar reference: the full "compiler emits N instructions, hardware
/// accumulates" path.
#[test]
fn multibeat_sequence_through_pipeline_matches_reference() {
    let dims = [3usize, 16, 17, 65, 96, 200, 784];
    for dim in dims {
        let q: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.13).sin()).collect();
        let c: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.29).cos()).collect();

        // The compiler's lowering.
        let cfg = HsuConfig::default();
        let seq = HsuInstruction::distance_sequence(&cfg, Metric::Euclidean, 0x1000, dim);
        assert_eq!(seq.len(), cfg.beats_for(Metric::Euclidean, dim));

        // Drive the datapath beat by beat, accumulating like the hardware.
        let mut pipe = DatapathPipeline::new();
        let mut acc = DistanceAccumulator::new();
        let mut result = None;
        for (b, ins) in seq.iter().enumerate() {
            assert!(pipe.issue(OperatingMode::Euclid, b as u64));
            pipe.tick();
            let lo = b * 16;
            let hi = (lo + 16).min(dim);
            result = acc.euclid_beat(&q[lo..hi], &c[lo..hi], ins.accumulate);
        }
        // Drain the pipeline.
        while !pipe.is_empty() {
            pipe.tick();
        }
        let got = result.expect("final beat yields the sum");
        let expect = hsu::geometry::point::euclidean_squared(&q, &c);
        assert!(
            (got - expect).abs() <= 1e-3 * (1.0 + expect),
            "dim {dim}: {got} vs {expect}"
        );
        assert_eq!(
            pipe.stats().completed[OperatingMode::Euclid.index()],
            seq.len() as u64
        );
    }
}

/// The arbiter's accumulate lock must keep a multi-beat sequence contiguous
/// even with all four sub-cores contending.
#[test]
fn accumulate_lock_keeps_beats_contiguous() {
    use hsu::unit::arbiter::SubCoreArbiter;
    let mut arb = SubCoreArbiter::new(4);
    let all = [true; 4];
    // Sub-core 2 starts a 9-beat angular sequence (dim 65).
    let seq = HsuInstruction::distance_sequence(&HsuConfig::default(), Metric::Angular, 0, 65);
    assert_eq!(seq.len(), 9);
    // First grant goes round-robin; force it to sub-core 2 by masking.
    let mut granted = Vec::new();
    for (i, ins) in seq.iter().enumerate() {
        let request = if i == 0 {
            [false, false, true, false]
        } else {
            all
        };
        let mut acc = [false; 4];
        for (core, slot) in acc.iter_mut().enumerate() {
            *slot = ins.accumulate && (request[core]);
        }
        let g = arb.grant(&request, &acc).expect("arbiter must grant");
        granted.push(g);
    }
    assert!(
        granted.iter().all(|&g| g == 2),
        "beats interleaved across sub-cores: {granted:?}"
    );
    // After the final beat the lock is free.
    assert_eq!(arb.locked_sub_core(), None);
}

/// The intrinsics must agree with the metric used by every search structure.
#[test]
fn intrinsics_match_structure_metrics() {
    let data = PointSet::from_rows(
        65,
        (0..65 * 20)
            .map(|i| ((i * 37) % 101) as f32 * 0.01)
            .collect(),
    );
    for i in 0..19 {
        let a = data.point(i);
        let b = data.point(i + 1);
        let d_intrinsic = intrinsics::euclid_dist(a, b);
        let d_metric = Metric::Euclidean.distance(a, b);
        assert!((d_intrinsic - d_metric).abs() < 1e-3 * (1.0 + d_metric));

        let ang_intrinsic = intrinsics::angular_dist(a, b);
        let ang_metric = Metric::Angular.distance(a, b);
        assert!((ang_intrinsic - ang_metric).abs() < 1e-4);
    }
}
