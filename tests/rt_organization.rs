//! Cross-organization differential harness: the treelet-scheduled RT core
//! must be *functionally* identical to the baseline organization.
//!
//! The two organizations time node fetches and datapath issue differently
//! — staging-buffer hits skip memory, the ray-scheduling queue reorders
//! entry drain, fetches throttle to the staging capacity — so cycle counts,
//! memory-traffic counters, occupancy integrals and stall counters may all
//! diverge. What must NOT diverge is anything a search *result* depends on:
//! which instructions executed, how many ISA beats each expanded to, what
//! the kernel retired, and what error payloads a malformed run produces.
//!
//! Three layers of evidence, mirroring `sim_equivalence.rs`:
//!
//! 1. property tests over random kernels × random machine geometries ×
//!    random staging-buffer depths, crossed with all three `SimMode`s per
//!    organization (each organization must also stay self-consistent across
//!    modes — {Baseline, Treelet} × {Stepped, Event, ParallelEpoch}),
//! 2. the five golden workloads, run under both organizations, with the
//!    baseline leg additionally pinned against `golden_reports.rs` numbers
//!    (adding the second core must not move the first),
//! 3. the full suite matrix under the Treelet core (release builds only).
//!
//! ci.sh runs the golden-workload leg at smoke scale: if the two RT cores
//! ever diverge in report payloads, CI fails here.

use hsu::prelude::*;
use hsu::sim::config::RtCoreKind;
use hsu::sim::trace::{KernelTrace, ThreadOp, ThreadTrace};
use proptest::prelude::*;

/// Worker-thread counts the parallel-epoch legs sweep.
const THREAD_COUNTS: [usize; 2] = [1, 2];

/// The functional projection of a [`SimReport`]: every column a search
/// result depends on, and none of the timing/locality columns the two
/// organizations are allowed to disagree about.
#[derive(Debug, PartialEq)]
struct FunctionalReport {
    kernel: String,
    issued: [u64; 7],
    issued_weighted: [u64; 7],
    warps_retired: u64,
    rt_warp_instructions: u64,
    rt_isa_instructions: u64,
    rt_pipeline_issued: [u64; 5],
    rt_pipeline_completed: [u64; 5],
}

fn functional(report: &SimReport) -> FunctionalReport {
    FunctionalReport {
        kernel: report.kernel.clone(),
        issued: report.issued,
        issued_weighted: report.issued_weighted,
        warps_retired: report.warps_retired,
        rt_warp_instructions: report.rt.warp_instructions,
        rt_isa_instructions: report.rt.isa_instructions,
        rt_pipeline_issued: report.rt.pipeline.issued,
        rt_pipeline_completed: report.rt.pipeline.completed,
    }
}

/// Runs `kernel` under one organization in all three modes, asserts the
/// modes are bit-identical (normalized), and returns the event-mode report.
fn run_org(cfg: &GpuConfig, kernel: &KernelTrace, kind: RtCoreKind) -> SimReport {
    let cfg = cfg.clone().with_rt_core(kind);
    let stepped = Gpu::new(cfg.clone().with_sim_mode(SimMode::Stepped))
        .run(kernel)
        .expect("stepped run failed");
    let event = Gpu::new(cfg.clone().with_sim_mode(SimMode::Event))
        .run(kernel)
        .expect("event run failed");
    assert_eq!(
        stepped.normalized(),
        event.normalized(),
        "{}: architectural counters diverged between modes",
        kind.name()
    );
    for threads in THREAD_COUNTS {
        let parallel = Gpu::new(
            cfg.clone()
                .with_sim_mode(SimMode::ParallelEpoch)
                .with_sim_threads(threads),
        )
        .run(kernel)
        .expect("parallel-epoch run failed");
        assert_eq!(
            stepped.normalized(),
            parallel.normalized(),
            "{}: parallel-epoch ({threads} threads) diverged from the oracle",
            kind.name()
        );
    }
    event
}

/// The full matrix check for one kernel on one machine: {Baseline, Treelet}
/// × {Stepped, Event, ParallelEpoch} agree on every functional column;
/// organization-specific columns stay in their lane.
fn assert_orgs_agree(cfg: &GpuConfig, kernel: &KernelTrace) -> (SimReport, SimReport) {
    let baseline = run_org(cfg, kernel, RtCoreKind::Baseline);
    let treelet = run_org(cfg, kernel, RtCoreKind::Treelet);
    assert_eq!(
        functional(&baseline),
        functional(&treelet),
        "organizations diverged on a functional column"
    );
    // The staging/treelet columns belong to the treelet organization alone.
    assert_eq!(baseline.rt.staging_hits, 0);
    assert_eq!(baseline.rt.staging_evictions, 0);
    assert_eq!(baseline.rt.treelet_transitions, 0);
    (baseline, treelet)
}

fn arb_op() -> impl Strategy<Value = ThreadOp> {
    prop_oneof![
        (1u32..16).prop_map(|count| ThreadOp::Alu { count }),
        (0u64..1 << 16, 1u32..128).prop_map(|(a, b)| ThreadOp::Load {
            addr: a * 8,
            bytes: b
        }),
        (1u32..8).prop_map(|count| ThreadOp::Shared { count }),
        (0u64..1 << 12).prop_map(|n| ThreadOp::HsuRayIntersect {
            node_addr: n * 64,
            bytes: 64,
            triangle: n % 3 == 0,
        }),
        (0u64..1 << 12, 1u32..256).prop_map(|(a, d)| ThreadOp::HsuDistance {
            metric: if d % 2 == 0 {
                Metric::Euclidean
            } else {
                Metric::Angular
            },
            dim: d,
            candidate_addr: a * 4,
        }),
        (0u64..1 << 10, 1u32..256).prop_map(|(a, s)| ThreadOp::HsuKeyCompare {
            node_addr: a * 4,
            separators: s,
        }),
    ]
}

fn arb_kernel() -> impl Strategy<Value = KernelTrace> {
    prop::collection::vec(prop::collection::vec(arb_op(), 0..10), 1..60).prop_map(|threads| {
        let mut k = KernelTrace::new("prop");
        for ops in threads {
            let mut t = ThreadTrace::new();
            for op in ops {
                t.push(op);
            }
            k.push_thread(t);
        }
        k
    })
}

/// Machine geometries that stress the organizational seams: tiny staging
/// pools (heavy throttling + eviction), small warp buffers (grant stalls),
/// and small MSHR files (push-back-front replay).
fn arb_config() -> impl Strategy<Value = GpuConfig> {
    (
        (1usize..3, 1usize..5, 2usize..9), // num_sms, sub_cores, max_warps
        (1usize..9, 1u64..17),             // l1_mshrs, l1_latency
        1usize..9,                         // warp_buffer_entries
        1usize..7,                         // rt_staging_buffers
    )
        .prop_map(
            |(
                (num_sms, sub_cores, max_warps_per_sm),
                (l1_mshrs, l1_latency),
                warp_buffer_entries,
                rt_staging_buffers,
            )| {
                GpuConfig {
                    num_sms,
                    sub_cores,
                    max_warps_per_sm,
                    l1_mshrs,
                    l1_latency,
                    rt_staging_buffers,
                    ..GpuConfig::tiny()
                }
                .with_hsu(HsuConfig::default().with_warp_buffer(warp_buffer_entries))
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The core cross-organization property: for ANY kernel on ANY machine,
    /// the treelet core computes exactly what the baseline computes — in
    /// all three simulation modes — while only timing columns move.
    #[test]
    fn organizations_agree_on_random_kernels_and_machines(
        kernel in arb_kernel(),
        cfg in arb_config(),
    ) {
        assert_orgs_agree(&cfg, &kernel);
    }
}

/// Builds the five golden workloads at the pinned seed.
fn golden_traces() -> Vec<(&'static str, KernelTrace)> {
    use hsu_kernels::btree::{BtreeParams, BtreeWorkload};
    use hsu_kernels::bvhnn::{BvhnnParams, BvhnnWorkload};
    use hsu_kernels::flann::{FlannParams, FlannWorkload};
    use hsu_kernels::ggnn::{GgnnParams, GgnnWorkload};
    use hsu_kernels::rtindex::{RtIndexParams, RtIndexWorkload};

    let seed = 7;
    let mut traces = Vec::new();
    let ggnn = GgnnWorkload::build(&GgnnParams {
        points: 600,
        dim: 32,
        queries: 16,
        k: 5,
        ef: 16,
        m: 8,
        seed,
        ..Default::default()
    });
    traces.push(("ggnn", ggnn.trace(Variant::Hsu)));
    let flann = FlannWorkload::build(&FlannParams {
        points: 800,
        queries: 32,
        k: 5,
        checks: 16,
        seed,
    });
    traces.push(("flann", flann.trace(Variant::Hsu)));
    let bvhnn = BvhnnWorkload::build(&BvhnnParams {
        points: 800,
        queries: 32,
        seed,
        ..Default::default()
    });
    traces.push(("bvhnn", bvhnn.trace(Variant::Hsu)));
    let btree = BtreeWorkload::build(&BtreeParams {
        keys: 2000,
        queries: 128,
        branch: 64,
        seed,
    });
    traces.push(("btree", btree.trace(Variant::Hsu)));
    let rtindex = RtIndexWorkload::build(&RtIndexParams {
        keys: 1024,
        lookups: 128,
        seed,
    });
    traces.push(("rtindex", rtindex.trace(Variant::Hsu)));
    traces
}

/// The golden matrix: five workloads × two organizations × three modes.
/// This is the leg ci.sh runs at smoke scale.
#[test]
fn golden_workloads_agree_across_organizations() {
    let mut total_hits = 0;
    for (name, trace) in &golden_traces() {
        let (baseline, treelet) = assert_orgs_agree(&GpuConfig::tiny(), trace);
        eprintln!(
            "{name}: staging_hits={} evictions={} transitions={} cycles {} -> {}",
            treelet.rt.staging_hits,
            treelet.rt.staging_evictions,
            treelet.rt.treelet_transitions,
            baseline.cycles,
            treelet.cycles
        );
        total_hits += treelet.rt.staging_hits;
        assert!(
            baseline.cycles > 0 && treelet.cycles > 0,
            "{name}: degenerate run"
        );
    }
    // The treelet core is a different machine, not a different program: the
    // hierarchical walks revisit node lines (shared upper levels), so the
    // staging pool must show hits somewhere across the suite.
    assert!(
        total_hits > 0,
        "the staging pool never hit — the treelet core is not actually \
         staging node lines"
    );
}

/// Adding the second organization must not perturb the first: the baseline
/// org's golden cycle counts stay exactly the `golden_reports.rs` numbers.
#[test]
fn baseline_organization_still_matches_the_golden_cycles() {
    let pinned = [
        ("ggnn", 14848u64),
        ("flann", 23313),
        ("bvhnn", 67849),
        ("btree", 1244),
        ("rtindex", 6676),
    ];
    for (name, trace) in &golden_traces() {
        let report = Gpu::new(GpuConfig::tiny()).run(trace).expect("run failed");
        let (_, expect) = pinned
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(n, c)| (n, c))
            .expect("unknown golden");
        assert_eq!(
            report.cycles, expect,
            "{name}: baseline golden cycles moved — the RT-core refactor \
             changed the default organization's timing"
        );
    }
}

/// The full suite matrix under the treelet core: every app × dataset ×
/// variant cell must produce the same functional columns as the baseline
/// suite. Release builds only (two full suite builds are slow unoptimized).
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "two full suite builds are slow unoptimized; run with --release"
)]
fn full_suite_matrix_agrees_across_organizations() {
    use hsu_bench::{Suite, SuiteConfig};

    let cfg = SuiteConfig {
        sms: 8,
        scale_divisor: 32,
        ..SuiteConfig::default()
    };
    let baseline = Suite::build(cfg.clone());
    let treelet = Suite::build(cfg.with_rt_core(RtCoreKind::Treelet));
    assert_eq!(baseline.runs.len(), treelet.runs.len());
    for (a, b) in baseline.runs.iter().zip(&treelet.runs) {
        assert_eq!(a.label, b.label, "matrix ordering drifted");
        for (variant, ra, rb) in [
            ("hsu", &a.hsu, &b.hsu),
            ("base", &a.base, &b.base),
            ("stripped", &a.stripped, &b.stripped),
        ] {
            assert_eq!(
                functional(ra),
                functional(rb),
                "{}/{variant} diverged between organizations",
                a.label
            );
        }
    }
}
