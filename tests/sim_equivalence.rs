//! Differential equivalence harness: the event-driven fast-forward run loop
//! and the parallel-epoch loop must be observably identical to the
//! cycle-stepped oracle, the latter for every worker-thread count.
//!
//! Three layers of evidence:
//!
//! 1. property tests over random kernels × random machine geometries
//!    (SM counts, MSHR sizes, latencies, warp-buffer depths) × thread
//!    counts {1, 2, 8},
//! 2. the five golden workloads of `golden_reports.rs`, run in every mode,
//! 3. the full app × dataset × variant suite matrix (release builds only),
//!    three ways, which also locks the headline win: ≥ 3× fewer run-loop
//!    ticks.
//!
//! "Identical" means `SimReport::normalized()` equality — every
//! architectural counter bit for bit; only the `sched` scheduler counters
//! may (and should) differ between stepped and the event-driven pair.

use hsu::prelude::*;
use hsu::sim::trace::{KernelTrace, ThreadOp, ThreadTrace};
use proptest::prelude::*;

/// Worker-thread counts every parallel-epoch check sweeps: single-worker
/// (the inline path), two workers (real barriers, uneven lane split), and
/// more workers than most test machines have SMs (clamping).
const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Runs one kernel under all three modes (parallel-epoch across
/// [`THREAD_COUNTS`]) and checks full equivalence plus the
/// scheduler-accounting invariants.
fn assert_modes_agree(cfg: &GpuConfig, kernel: &KernelTrace) -> (SimReport, SimReport) {
    let stepped = Gpu::new(cfg.clone().with_sim_mode(SimMode::Stepped))
        .run(kernel)
        .expect("stepped run failed");
    let event = Gpu::new(cfg.clone().with_sim_mode(SimMode::Event))
        .run(kernel)
        .expect("event run failed");
    assert_eq!(
        stepped.normalized(),
        event.normalized(),
        "architectural counters diverged between modes"
    );
    for threads in THREAD_COUNTS {
        let parallel = Gpu::new(
            cfg.clone()
                .with_sim_mode(SimMode::ParallelEpoch)
                .with_sim_threads(threads),
        )
        .run(kernel)
        .expect("parallel-epoch run failed");
        assert_eq!(
            stepped.normalized(),
            parallel.normalized(),
            "parallel-epoch ({threads} threads) diverged from the oracle"
        );
        // The parallel loop follows the event-driven schedule exactly, so
        // even the (normalized-away) scheduler counters must match.
        assert_eq!(
            parallel.sched, event.sched,
            "parallel-epoch ({threads} threads) visited a different schedule"
        );
    }
    // Stepped mode ticks every SM on every cycle and never skips.
    assert_eq!(
        stepped.sched.ticks_executed,
        stepped.cycles * stepped.num_sms as u64
    );
    assert_eq!(stepped.sched.cycles_skipped, 0);
    // Event mode accounts for each SM's every cycle exactly once.
    assert_eq!(
        event.sched.ticks_executed + event.sched.cycles_skipped,
        event.cycles * event.num_sms as u64
    );
    assert_eq!(
        event.sched.cycles_skipped,
        event.sched.skipped_on_memory + event.sched.skipped_on_timers
    );
    (stepped, event)
}

fn arb_op() -> impl Strategy<Value = ThreadOp> {
    prop_oneof![
        (1u32..16).prop_map(|count| ThreadOp::Alu { count }),
        (0u64..1 << 16, 1u32..128).prop_map(|(a, b)| ThreadOp::Load {
            addr: a * 8,
            bytes: b
        }),
        (0u64..1 << 16, 1u32..64).prop_map(|(a, b)| ThreadOp::Store {
            addr: a * 8,
            bytes: b
        }),
        (1u32..8).prop_map(|count| ThreadOp::Shared { count }),
        (0u64..1 << 12).prop_map(|n| ThreadOp::HsuRayIntersect {
            node_addr: n * 64,
            bytes: 64,
            triangle: n % 3 == 0,
        }),
        (0u64..1 << 12, 1u32..256).prop_map(|(a, d)| ThreadOp::HsuDistance {
            metric: if d % 2 == 0 {
                Metric::Euclidean
            } else {
                Metric::Angular
            },
            dim: d,
            candidate_addr: a * 4,
        }),
        (0u64..1 << 10, 1u32..256).prop_map(|(a, s)| ThreadOp::HsuKeyCompare {
            node_addr: a * 4,
            separators: s,
        }),
    ]
}

fn arb_kernel() -> impl Strategy<Value = KernelTrace> {
    prop::collection::vec(prop::collection::vec(arb_op(), 0..10), 1..80).prop_map(|threads| {
        let mut k = KernelTrace::new("prop");
        for ops in threads {
            let mut t = ThreadTrace::new();
            for op in ops {
                t.push(op);
            }
            k.push_thread(t);
        }
        k
    })
}

/// Random machine geometries: every knob that shapes the event schedule —
/// SM/sub-core counts, residency, MSHR file sizes, all the fixed latencies,
/// DRAM banking/timing, and the HSU warp-buffer depth.
fn arb_config() -> impl Strategy<Value = GpuConfig> {
    (
        (1usize..4, 1usize..5, 2usize..17), // num_sms, sub_cores, max_warps
        (1u64..9, 1u64..33),                // alu_latency, shared_latency
        (1usize..33, 1u64..33, 1u64..91),   // l1_mshrs, l1_latency, l2_latency
        (1usize..3, 1usize..5),             // dram_channels, dram_banks
        (1u64..25, 2u64..49, 1u64..6),      // row hit/miss, transfer
        (1usize..9),                        // warp_buffer_entries
    )
        .prop_map(
            |(
                (num_sms, sub_cores, max_warps_per_sm),
                (alu_latency, shared_latency),
                (l1_mshrs, l1_latency, l2_latency),
                (dram_channels, dram_banks),
                (dram_row_hit_cycles, dram_row_miss_cycles, dram_transfer_cycles),
                warp_buffer_entries,
            )| {
                GpuConfig {
                    num_sms,
                    sub_cores,
                    max_warps_per_sm,
                    alu_latency,
                    shared_latency,
                    l1_mshrs,
                    l1_latency,
                    l2_latency,
                    dram_channels,
                    dram_banks,
                    dram_row_hit_cycles,
                    dram_row_miss_cycles: dram_row_miss_cycles.max(dram_row_hit_cycles),
                    dram_transfer_cycles,
                    ..GpuConfig::tiny()
                }
                .with_hsu(HsuConfig::default().with_warp_buffer(warp_buffer_entries))
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The core differential property: for ANY kernel on ANY machine, the
    /// event-driven loop reproduces the stepped oracle bit for bit.
    #[test]
    fn event_mode_is_equivalent_on_random_kernels_and_machines(
        kernel in arb_kernel(),
        cfg in arb_config(),
    ) {
        assert_modes_agree(&cfg, &kernel);
    }

    /// Event mode is not just equal but *cheaper*: it never executes more
    /// ticks than the oracle (skips are never negative, by construction,
    /// and conservativeness degrades to equality, never to extra work).
    #[test]
    fn event_mode_never_ticks_more_than_stepped(kernel in arb_kernel()) {
        let (stepped, event) = assert_modes_agree(&GpuConfig::tiny(), &kernel);
        prop_assert!(
            event.sched.ticks_executed <= stepped.sched.ticks_executed,
            "event {} ticks > stepped {}",
            event.sched.ticks_executed,
            stepped.sched.ticks_executed
        );
    }
}

/// The five golden workloads of `golden_reports.rs`, differentially.
#[test]
fn golden_workloads_are_mode_equivalent() {
    use hsu_kernels::btree::{BtreeParams, BtreeWorkload};
    use hsu_kernels::bvhnn::{BvhnnParams, BvhnnWorkload};
    use hsu_kernels::flann::{FlannParams, FlannWorkload};
    use hsu_kernels::ggnn::{GgnnParams, GgnnWorkload};
    use hsu_kernels::rtindex::{RtIndexParams, RtIndexWorkload};

    let seed = 7;
    let mut traces = Vec::new();
    let ggnn = GgnnWorkload::build(&GgnnParams {
        points: 600,
        dim: 32,
        queries: 16,
        k: 5,
        ef: 16,
        m: 8,
        seed,
        ..Default::default()
    });
    traces.push(("ggnn", ggnn.trace(Variant::Hsu)));
    let flann = FlannWorkload::build(&FlannParams {
        points: 800,
        queries: 32,
        k: 5,
        checks: 16,
        seed,
    });
    traces.push(("flann", flann.trace(Variant::Hsu)));
    let bvhnn = BvhnnWorkload::build(&BvhnnParams {
        points: 800,
        queries: 32,
        seed,
        ..Default::default()
    });
    traces.push(("bvhnn", bvhnn.trace(Variant::Hsu)));
    let btree = BtreeWorkload::build(&BtreeParams {
        keys: 2000,
        queries: 128,
        branch: 64,
        seed,
    });
    traces.push(("btree", btree.trace(Variant::Hsu)));
    let rtindex = RtIndexWorkload::build(&RtIndexParams {
        keys: 1024,
        lookups: 128,
        seed,
    });
    traces.push(("rtindex", rtindex.trace(Variant::Hsu)));

    for (name, trace) in &traces {
        let (_, event) = assert_modes_agree(&GpuConfig::tiny(), trace);
        assert!(
            event.sched.cycles_skipped > 0,
            "{name}: event mode found nothing to skip"
        );
    }
}

/// The full matrix, all three modes, release builds only (three suite
/// builds are slow unoptimized). Also locks the headline: the event loop
/// executes at least 3× fewer ticks than the oracle across the whole suite.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "three full suite builds are slow unoptimized; run with --release"
)]
fn full_suite_matrix_is_mode_equivalent() {
    use hsu_bench::{Suite, SuiteConfig};

    // The scheduler-bench machine (simbench's default): event-mode skipping
    // is per-SM, so the ≥ 3× tick lock below is a property of a realistic
    // SM count — at paper-adjacent sizes per-SM occupancy is spotty and the
    // event loop lets idle SMs sleep.
    let cfg = SuiteConfig {
        sms: 32,
        scale_divisor: 32,
        ..SuiteConfig::default()
    };
    let stepped = Suite::build(cfg.clone().with_sim_mode(SimMode::Stepped));
    let event = Suite::build(cfg.clone().with_sim_mode(SimMode::Event));
    let parallel = Suite::build(
        cfg.with_sim_mode(SimMode::ParallelEpoch)
            .with_sim_threads(4),
    );
    assert_eq!(stepped.runs.len(), event.runs.len());
    assert_eq!(stepped.runs.len(), parallel.runs.len());
    for ((a, b), c) in stepped.runs.iter().zip(&event.runs).zip(&parallel.runs) {
        assert_eq!(a.label, b.label, "matrix ordering drifted");
        assert_eq!(a.label, c.label, "parallel-epoch matrix ordering drifted");
        for (variant, ra, rb, rc) in [
            ("hsu", &a.hsu, &b.hsu, &c.hsu),
            ("base", &a.base, &b.base, &c.base),
            ("stripped", &a.stripped, &b.stripped, &c.stripped),
        ] {
            assert_eq!(
                ra.normalized(),
                rb.normalized(),
                "{}/{variant} diverged between modes",
                a.label
            );
            assert_eq!(
                ra.normalized(),
                rc.normalized(),
                "{}/{variant} diverged under parallel-epoch",
                a.label
            );
        }
    }
    let stepped_ticks: u64 = stepped.records.iter().map(|r| r.ticks_executed).sum();
    let event_ticks: u64 = event.records.iter().map(|r| r.ticks_executed).sum();
    let parallel_ticks: u64 = parallel.records.iter().map(|r| r.ticks_executed).sum();
    // The parallel-epoch loop walks the exact event-driven schedule.
    assert_eq!(
        parallel_ticks, event_ticks,
        "parallel-epoch schedule drifted"
    );
    let reduction = stepped_ticks as f64 / event_ticks as f64;
    assert!(
        reduction >= 3.0,
        "event mode must execute >= 3x fewer ticks over the suite, got \
         {reduction:.2}x ({stepped_ticks} -> {event_ticks})"
    );
}
