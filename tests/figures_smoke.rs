//! Smoke tests of the figure harness (static figures + RTIndeX), and
//! consistency checks between the RTL model and the ISA.

use hsu::rtl::area::{AreaBreakdown, DatapathKind};
use hsu::rtl::power::mode_power_mw;
use hsu::unit::pipeline::OperatingMode;
use hsu_bench::figures;

#[test]
fn table2_lists_all_sixteen_datasets() {
    let t = figures::table2();
    for abbr in [
        "D1B", "FMNT", "MNT", "GST", "GLV", "LFM", "NYT", "S1M", "S10K", "R10K", "BUN", "DRG",
        "BUD", "COS", "B+1M", "B+10K",
    ] {
        assert!(t.contains(abbr), "missing {abbr}\n{t}");
    }
}

#[test]
fn table3_reports_both_configs() {
    let t = figures::table3(8);
    assert!(t.contains("80")); // paper SM count
    assert!(t.contains("GTO"));
    assert!(t.contains("24-way 6 MB"));
}

#[test]
fn fig15_reproduces_the_37_percent_total() {
    let base = AreaBreakdown::of(DatapathKind::BaselineRt);
    let hsu = AreaBreakdown::of(DatapathKind::Hsu);
    let ratio = hsu.total() / base.total();
    assert!((1.30..=1.45).contains(&ratio), "ratio {ratio}");
    let rendered = figures::fig15();
    assert!(rendered.contains("TOTAL"));
}

#[test]
fn fig16_reproduces_the_power_ordering() {
    let euclid = mode_power_mw(OperatingMode::Euclid, DatapathKind::Hsu);
    let angular = mode_power_mw(OperatingMode::Angular, DatapathKind::Hsu);
    let key = mode_power_mw(OperatingMode::KeyCompare, DatapathKind::Hsu);
    let base_box = mode_power_mw(OperatingMode::RayBox, DatapathKind::BaselineRt);
    // Paper: euclid (79) slightly above baseline box (74); angular (67)
    // below both; key compare cheapest.
    assert!(euclid > base_box);
    assert!(angular < euclid);
    assert!(key < angular);
    let rendered = figures::fig16();
    assert!(rendered.contains("angular"));
}

#[test]
fn rtindex_point_keys_win() {
    let out = figures::rtindex(2, 16, hsu_sim::config::SimMode::default()).unwrap();
    let line = out
        .lines()
        .find(|l| l.starts_with("speedup"))
        .expect("speedup line");
    let pct: f64 = line
        .split_whitespace()
        .find(|t| t.ends_with('%'))
        .and_then(|t| t.trim_end_matches('%').parse().ok())
        .expect("parse speedup");
    assert!(pct > 5.0, "expected a clear point-key win, got {pct}%");
}
