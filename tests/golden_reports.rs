//! Golden-report snapshot tests: determinism locks on the simulator.
//!
//! One small workload per application is built with a fixed seed and
//! simulated on `GpuConfig::tiny()`; the exact values of the headline
//! `SimReport` counters are compared against the constants below. Any
//! drift in workload construction, trace lowering, or the timing model
//! shows up here as an exact-integer diff.
//!
//! Re-blessing: if a change is *intended* to alter simulation results
//! (e.g. a timing-model fix), regenerate the constants with
//!
//! ```text
//! cargo test --release --test golden_reports -- --ignored --nocapture bless
//! ```
//!
//! paste the printed `GOLDENS` table over the one below, and explain the
//! semantic cause of the drift in the commit message. The values are also
//! tied to the vendored RNG stand-ins (vendor/README.md): swapping in
//! crates.io `rand` changes workload streams and requires the same
//! re-bless.

use hsu_kernels::btree::{BtreeParams, BtreeWorkload};
use hsu_kernels::bvhnn::{BvhnnParams, BvhnnWorkload};
use hsu_kernels::flann::{FlannParams, FlannWorkload};
use hsu_kernels::ggnn::{GgnnParams, GgnnWorkload};
use hsu_kernels::rtindex::{RtIndexParams, RtIndexWorkload};
use hsu_kernels::Variant;
use hsu_sim::config::GpuConfig;
use hsu_sim::{Gpu, SimReport};

/// The locked seed. Everything here derives from it and the fixed sizes.
const SEED: u64 = 7;

/// Snapshotted counters for one (workload, variant) pair.
///
/// `cycles` through `dram_activations` are architectural and must be
/// identical in both simulation modes — the suite runs under the default
/// (event-driven) mode, so these constants double as the proof that
/// fast-forwarding preserves the stepped oracle's results.
/// `ticks_executed`/`cycles_skipped` snapshot the event-mode scheduler:
/// they satisfy `ticks_executed + cycles_skipped == cycles * num_sms` (one
/// tick or one skip per SM per cycle) and lock the fast-forward win itself
/// against regressions.
#[derive(Debug)]
struct Golden {
    name: &'static str,
    cycles: u64,
    /// Warp instructions issued per op class (the 7 `OpClass` slots).
    issued: [u64; 7],
    l1_accesses: u64,
    l1_misses: u64,
    dram_activations: u64,
    ticks_executed: u64,
    cycles_skipped: u64,
}

/// Golden constants for the current simulator + vendored RNG tree.
/// Regenerate with the `bless` test above — do not hand-edit numbers.
#[rustfmt::skip]
const GOLDENS: &[Golden] = &[
    Golden { name: "ggnn/hsu", cycles: 14848, issued: [240, 714, 0, 776, 0, 391, 0], l1_accesses: 2472, l1_misses: 643, dram_activations: 340, ticks_executed: 8467, cycles_skipped: 6381 },
    Golden { name: "flann/hsu", cycles: 23313, issued: [125, 110, 18, 96, 0, 102, 0], l1_accesses: 1333, l1_misses: 157, dram_activations: 37, ticks_executed: 4279, cycles_skipped: 19034 },
    Golden { name: "bvhnn/hsu", cycles: 67849, issued: [333, 0, 25, 166, 161, 138, 0], l1_accesses: 2812, l1_misses: 1015, dram_activations: 288, ticks_executed: 12119, cycles_skipped: 55730 },
    Golden { name: "btree/hsu", cycles: 1244, issued: [16, 4, 4, 0, 0, 0, 8], l1_accesses: 298, l1_misses: 93, dram_activations: 13, ticks_executed: 829, cycles_skipped: 415 },
    Golden { name: "rtindex/hsu", cycles: 6676, issued: [112, 0, 20, 54, 50, 0, 20], l1_accesses: 825, l1_misses: 392, dram_activations: 264, ticks_executed: 2898, cycles_skipped: 3778 },
];

/// Builds and simulates the five locked cases, in `GOLDENS` order.
fn simulate_cases() -> Vec<(&'static str, SimReport)> {
    let gpu = Gpu::new(GpuConfig::tiny());
    let mut out = Vec::new();

    let ggnn = GgnnWorkload::build(&GgnnParams {
        points: 600,
        dim: 32,
        queries: 16,
        k: 5,
        ef: 16,
        m: 8,
        seed: SEED,
        ..Default::default()
    });
    out.push(("ggnn/hsu", gpu.run(&ggnn.trace(Variant::Hsu)).unwrap()));

    let flann = FlannWorkload::build(&FlannParams {
        points: 800,
        queries: 32,
        k: 5,
        checks: 16,
        seed: SEED,
    });
    out.push(("flann/hsu", gpu.run(&flann.trace(Variant::Hsu)).unwrap()));

    let bvhnn = BvhnnWorkload::build(&BvhnnParams {
        points: 800,
        queries: 32,
        seed: SEED,
        ..Default::default()
    });
    out.push(("bvhnn/hsu", gpu.run(&bvhnn.trace(Variant::Hsu)).unwrap()));

    let btree = BtreeWorkload::build(&BtreeParams {
        keys: 2000,
        queries: 128,
        branch: 64,
        seed: SEED,
    });
    out.push(("btree/hsu", gpu.run(&btree.trace(Variant::Hsu)).unwrap()));

    let rtindex = RtIndexWorkload::build(&RtIndexParams {
        keys: 1024,
        lookups: 128,
        seed: SEED,
    });
    out.push((
        "rtindex/hsu",
        gpu.run(&rtindex.trace(Variant::Hsu)).unwrap(),
    ));

    out
}

#[test]
fn reports_match_goldens() {
    let cases = simulate_cases();
    assert_eq!(cases.len(), GOLDENS.len());
    for ((name, report), golden) in cases.iter().zip(GOLDENS) {
        assert_eq!(*name, golden.name, "case order drifted");
        let explain = |field: &str| {
            format!(
                "golden mismatch: {name} {field}.\n\
                 If this change is intended to alter simulation results, re-bless with\n\
                 `cargo test --release --test golden_reports -- --ignored --nocapture bless`\n\
                 and paste the printed GOLDENS table into tests/golden_reports.rs.\n\
                 Otherwise this is a determinism regression — find it before merging."
            )
        };
        assert_eq!(report.cycles, golden.cycles, "{}", explain("cycles"));
        assert_eq!(report.issued, golden.issued, "{}", explain("issued[]"));
        assert_eq!(
            report.l1_accesses(),
            golden.l1_accesses,
            "{}",
            explain("l1_accesses")
        );
        assert_eq!(
            report.memory.l1.misses,
            golden.l1_misses,
            "{}",
            explain("l1_misses")
        );
        assert_eq!(
            report.memory.dram.activations,
            golden.dram_activations,
            "{}",
            explain("dram_activations")
        );
        assert_eq!(
            report.sched.ticks_executed,
            golden.ticks_executed,
            "{}",
            explain("ticks_executed")
        );
        assert_eq!(
            report.sched.cycles_skipped,
            golden.cycles_skipped,
            "{}",
            explain("cycles_skipped")
        );
        assert_eq!(
            report.sched.ticks_executed + report.sched.cycles_skipped,
            report.cycles * report.num_sms as u64,
            "scheduler accounting invariant broken for {name}"
        );
    }
}

/// Prints a fresh `GOLDENS` table. Run only when intentionally re-blessing:
/// `cargo test --release --test golden_reports -- --ignored --nocapture bless`
#[test]
#[ignore = "bless helper: prints constants, never asserts"]
fn bless() {
    println!("const GOLDENS: &[Golden] = &[");
    for (name, r) in simulate_cases() {
        println!(
            "    Golden {{ name: {:?}, cycles: {}, issued: {:?}, l1_accesses: {}, l1_misses: {}, dram_activations: {}, ticks_executed: {}, cycles_skipped: {} }},",
            name,
            r.cycles,
            r.issued,
            r.l1_accesses(),
            r.memory.l1.misses,
            r.memory.dram.activations,
            r.sched.ticks_executed,
            r.sched.cycles_skipped,
        );
    }
    println!("];");
}
