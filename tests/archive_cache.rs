//! The warm-cache golden guarantee, end to end: a suite built from a
//! populated `--archive-dir` must be byte-identical — reports, run order,
//! and rendered figure text — to a cold build with an empty cache dir and
//! to a build with no cache at all, across `--jobs` 1 and 8. Re-running
//! from the archive must *skip* work, never change it.

use hsu_bench::{figures, ArchiveCache, Suite, SuiteConfig};

/// Down-scaled but complete configuration: all app × dataset runs.
fn small_config() -> SuiteConfig {
    SuiteConfig {
        sms: 2,
        scale_divisor: 64,
        ..SuiteConfig::default()
    }
}

fn fresh_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("hsu-cache-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn assert_suites_identical(a: &Suite, b: &Suite, what: &str) {
    assert_eq!(a.runs.len(), b.runs.len(), "{what}: run count differs");
    for (x, y) in a.runs.iter().zip(&b.runs) {
        assert_eq!(x.label, y.label, "{what}: run ordering drifted");
        assert_eq!(x.hsu, y.hsu, "{what}: {} hsu report drifted", x.label);
        assert_eq!(x.base, y.base, "{what}: {} base report drifted", x.label);
        assert_eq!(
            x.stripped, y.stripped,
            "{what}: {} stripped report drifted",
            x.label
        );
    }
    assert_eq!(
        figures::fig9(a),
        figures::fig9(b),
        "{what}: fig9 text differs"
    );
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "multiple full suite builds are slow unoptimized; run with --release"
)]
fn warm_cache_build_is_byte_identical_to_cold_and_uncached() {
    let dir = fresh_dir("coldwarm");

    // No cache at all — the pre-archive behavior, our reference.
    let uncached = Suite::build(small_config());

    // Cold: empty archive dir, populated as a side effect.
    let cold = Suite::build(small_config().with_archive_dir(&dir));
    assert_suites_identical(&uncached, &cold, "cold-vs-uncached");
    assert!(
        std::fs::read_dir(&dir)
            .map(|d| d.count() > 0)
            .unwrap_or(false),
        "cold build must populate the archive dir"
    );

    // Warm: every build product loads from the archive.
    let warm = Suite::build(small_config().with_archive_dir(&dir));
    assert_suites_identical(&cold, &warm, "warm-vs-cold");

    // And the warm phase A really did come from the cache: zero misses.
    let cache = ArchiveCache::new(Some(dir.clone()));
    Suite::prepare_traces(&small_config(), &cache);
    assert_eq!(cache.misses(), 0, "warm phase A must not rebuild anything");
    assert!(cache.hits() > 0, "warm phase A must hit the cache");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "multiple full suite builds are slow unoptimized; run with --release"
)]
fn warm_cache_is_byte_identical_across_jobs_1_and_8() {
    let dir = fresh_dir("jobs");

    // Populate with jobs=1, then consume warm with jobs=8 (and vice versa):
    // cache state must be invisible to the parallel scheduler and the
    // scheduler invisible to the cache.
    let cold_seq = Suite::build(small_config().with_archive_dir(&dir));
    let warm_par = Suite::build(small_config().with_archive_dir(&dir).with_jobs(8));
    assert_suites_identical(&cold_seq, &warm_par, "warm-jobs8-vs-cold-jobs1");

    let warm_seq = Suite::build(small_config().with_archive_dir(&dir));
    assert_suites_identical(&warm_par, &warm_seq, "warm-jobs1-vs-warm-jobs8");

    let _ = std::fs::remove_dir_all(&dir);
}

/// Trace archives alone are enough to reconstruct phase A: the prepared
/// traces from a warm cache equal the cold-built ones exactly.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "full phase A is slow unoptimized; run with --release"
)]
fn prepared_traces_match_between_cold_and_warm() {
    let dir = fresh_dir("traces");
    let config = small_config();

    let cold_cache = ArchiveCache::new(Some(dir.clone()));
    let cold = Suite::prepare_traces(&config, &cold_cache);
    assert_eq!(cold_cache.hits(), 0, "first build must be all misses");

    let warm_cache = ArchiveCache::new(Some(dir.clone()));
    let warm = Suite::prepare_traces(&config, &warm_cache);
    assert_eq!(warm_cache.misses(), 0, "second build must be all hits");

    assert_eq!(cold.len(), warm.len());
    for (c, w) in cold.iter().zip(&warm) {
        assert_eq!(c.label, w.label, "plan order drifted");
        assert_eq!(c.hsu, w.hsu, "{}: hsu trace drifted", c.label);
        assert_eq!(c.base, w.base, "{}: base trace drifted", c.label);
        assert_eq!(
            c.stripped, w.stripped,
            "{}: stripped trace drifted",
            c.label
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

/// A disabled cache (no `--archive-dir`, i.e. `--no-cache`) builds
/// everything and records nothing — quick enough to run in debug.
#[test]
fn disabled_cache_counts_nothing() {
    let cache = ArchiveCache::new(None);
    assert!(!cache.enabled());
    assert_eq!(cache.hits(), 0);
    assert_eq!(cache.misses(), 0);
}
