//! N-dimensional points and the distance kernels the HSU accelerates.
//!
//! The HSU's `POINT_EUCLID` and `POINT_ANGULAR` instructions operate on
//! fixed-width *beats* — 16 lanes for Euclidean, 8 for angular — and aggregate
//! partial sums across beats for higher dimensions (paper §IV-F). This module
//! provides both the plain scalar kernels (golden references) and the
//! beat-partitioned forms whose per-beat partials the datapath model checks
//! against.

use std::fmt;

/// Lane width of the `POINT_EUCLID` pipeline mode (paper §IV-C).
pub const EUCLID_BEAT_WIDTH: usize = 16;
/// Lane width of the `POINT_ANGULAR` pipeline mode (half of Euclidean, §VI-H).
pub const ANGULAR_BEAT_WIDTH: usize = 8;

/// Distance metric attached to a dataset (paper Table II, "Dist" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Metric {
    /// Squared Euclidean distance, eq. (1).
    Euclidean,
    /// Angular (cosine) distance, eq. (2).
    Angular,
}

impl fmt::Display for Metric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Metric::Euclidean => f.write_str("euclidean"),
            Metric::Angular => f.write_str("angular"),
        }
    }
}

impl Metric {
    /// Pipeline beat width of the corresponding HSU operating mode.
    #[inline]
    pub fn beat_width(self) -> usize {
        match self {
            Metric::Euclidean => EUCLID_BEAT_WIDTH,
            Metric::Angular => ANGULAR_BEAT_WIDTH,
        }
    }

    /// Number of HSU instructions ("beats") needed for a `dim`-dimensional
    /// point, `ceil(dim / width)` — e.g. 9 for an angular distance at
    /// dimension 65 (paper §IV-F).
    #[inline]
    pub fn beats(self, dim: usize) -> usize {
        dim.div_ceil(self.beat_width())
    }

    /// Computes the metric's comparable distance value between two points.
    ///
    /// For [`Metric::Euclidean`] this is the squared distance; for
    /// [`Metric::Angular`] it is `1 - cos(q, c)` so that smaller is closer
    /// under both metrics.
    ///
    /// # Panics
    ///
    /// Panics if `q` and `c` have different lengths.
    #[inline]
    pub fn distance(self, q: &[f32], c: &[f32]) -> f32 {
        match self {
            Metric::Euclidean => euclidean_squared(q, c),
            Metric::Angular => angular_distance(q, c),
        }
    }
}

/// Squared Euclidean distance `Σ (q_i - c_i)^2` (paper eq. 1).
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Examples
///
/// ```
/// let d = hsu_geometry::point::euclidean_squared(&[0.0, 0.0], &[3.0, 4.0]);
/// assert_eq!(d, 25.0);
/// ```
#[inline]
pub fn euclidean_squared(q: &[f32], c: &[f32]) -> f32 {
    assert_eq!(q.len(), c.len(), "point dimensions must match");
    q.iter().zip(c).map(|(a, b)| (a - b) * (a - b)).sum()
}

/// Dot product `Σ c_i * q_i` (paper eq. 3).
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn dot(q: &[f32], c: &[f32]) -> f32 {
    assert_eq!(q.len(), c.len(), "point dimensions must match");
    q.iter().zip(c).map(|(a, b)| a * b).sum()
}

/// Squared norm `Σ c_i * c_i` (paper eq. 4).
#[inline]
pub fn norm_squared(c: &[f32]) -> f32 {
    c.iter().map(|x| x * x).sum()
}

/// Cosine similarity (paper eq. 2). Zero-norm inputs yield similarity 0.
#[inline]
pub fn cosine_similarity(q: &[f32], c: &[f32]) -> f32 {
    let denom = (norm_squared(q) * norm_squared(c)).sqrt();
    if denom == 0.0 {
        0.0
    } else {
        dot(q, c) / denom
    }
}

/// Angular distance `1 - cos(q, c)`, so smaller means closer.
#[inline]
pub fn angular_distance(q: &[f32], c: &[f32]) -> f32 {
    1.0 - cosine_similarity(q, c)
}

/// One Euclidean beat: the partial sum over lanes `[beat*16, beat*16+16)`.
///
/// Out-of-range lanes contribute zero, matching the hardware's lane masking
/// for the final (partial) beat.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn euclid_beat(q: &[f32], c: &[f32], beat: usize) -> f32 {
    assert_eq!(q.len(), c.len(), "point dimensions must match");
    let lo = beat * EUCLID_BEAT_WIDTH;
    let hi = (lo + EUCLID_BEAT_WIDTH).min(q.len());
    if lo >= q.len() {
        return 0.0;
    }
    euclidean_squared(&q[lo..hi], &c[lo..hi])
}

/// One angular beat: `(partial dot, partial candidate norm)` over lanes
/// `[beat*8, beat*8+8)`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn angular_beat(q: &[f32], c: &[f32], beat: usize) -> (f32, f32) {
    assert_eq!(q.len(), c.len(), "point dimensions must match");
    let lo = beat * ANGULAR_BEAT_WIDTH;
    let hi = (lo + ANGULAR_BEAT_WIDTH).min(q.len());
    if lo >= q.len() {
        return (0.0, 0.0);
    }
    (dot(&q[lo..hi], &c[lo..hi]), norm_squared(&c[lo..hi]))
}

/// Accumulates all Euclidean beats, as the multi-beat instruction sequence
/// does, and returns the total squared distance.
pub fn euclid_multibeat(q: &[f32], c: &[f32]) -> f32 {
    (0..Metric::Euclidean.beats(q.len()))
        .map(|b| euclid_beat(q, c, b))
        .sum()
}

/// Accumulates all angular beats and returns `(dot_sum, norm_sum)` — the two
/// scalars `POINT_ANGULAR` returns through the register file. The division
/// and square root of eq. 2 are left to "software", as in the paper.
pub fn angular_multibeat(q: &[f32], c: &[f32]) -> (f32, f32) {
    let mut dot_sum = 0.0;
    let mut norm_sum = 0.0;
    for b in 0..Metric::Angular.beats(q.len()) {
        let (d, n) = angular_beat(q, c, b);
        dot_sum += d;
        norm_sum += n;
    }
    (dot_sum, norm_sum)
}

/// Completes an angular distance from the HSU's two scalars plus the
/// precomputed query norm (the "software" part of eq. 2).
#[inline]
pub fn angular_from_sums(dot_sum: f32, norm_sum: f32, query_norm: f32) -> f32 {
    let denom = query_norm * norm_sum.sqrt();
    if denom == 0.0 {
        1.0
    } else {
        1.0 - dot_sum / denom
    }
}

/// A dense row-major matrix of N-dimensional points — the in-memory layout
/// all search structures and workloads share.
///
/// # Examples
///
/// ```
/// use hsu_geometry::point::PointSet;
/// let set = PointSet::from_rows(2, vec![0.0, 0.0, 3.0, 4.0]);
/// assert_eq!(set.len(), 2);
/// assert_eq!(set.point(1), &[3.0, 4.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PointSet {
    dim: usize,
    data: Vec<f32>,
}

impl PointSet {
    /// Creates a point set from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a multiple of `dim`, or if `dim` is zero.
    pub fn from_rows(dim: usize, data: Vec<f32>) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert!(
            data.len().is_multiple_of(dim),
            "data length {} is not a multiple of dim {}",
            data.len(),
            dim
        );
        PointSet { dim, data }
    }

    /// An empty set of `dim`-dimensional points.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero.
    pub fn empty(dim: usize) -> Self {
        Self::from_rows(dim, Vec::new())
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// Returns `true` if the set holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Dimensionality of every point.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Borrow of point `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn point(&self, i: usize) -> &[f32] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Appends a point.
    ///
    /// # Panics
    ///
    /// Panics if `p.len() != dim()`.
    pub fn push(&mut self, p: &[f32]) {
        assert_eq!(p.len(), self.dim, "point dimension mismatch");
        self.data.extend_from_slice(p);
    }

    /// Iterator over all points.
    pub fn iter(&self) -> impl Iterator<Item = &[f32]> + '_ {
        self.data.chunks_exact(self.dim)
    }

    /// The raw row-major buffer.
    #[inline]
    pub fn as_flat(&self) -> &[f32] {
        &self.data
    }

    /// Byte address of point `i` within a virtual buffer starting at `base` —
    /// the address the simulator charges loads of this point to.
    #[inline]
    pub fn address_of(&self, base: u64, i: usize) -> u64 {
        base + (i * self.dim * std::mem::size_of::<f32>()) as u64
    }

    /// Distances from `q` to every point in index order, computed through
    /// the candidate-parallel kernels in [`crate::batch`]. Bit-identical to
    /// `metric.distance(q, c)` per point: the batch kernels keep each
    /// candidate's scalar accumulation order, and the angular epilogue below
    /// repeats [`cosine_similarity`]'s exact operation sequence.
    fn distances_to_all(&self, q: &[f32], metric: Metric) -> Vec<f32> {
        match metric {
            Metric::Euclidean => {
                let mut out = Vec::new();
                crate::batch::euclid_to_rows(q, &self.data, &mut out);
                out
            }
            Metric::Angular => {
                let mut pairs = Vec::new();
                crate::batch::dot_norm_to_rows(q, &self.data, &mut pairs);
                let nq = norm_squared(q);
                pairs
                    .into_iter()
                    .map(|(d, n)| {
                        let denom = (nq * n).sqrt();
                        if denom == 0.0 {
                            1.0
                        } else {
                            1.0 - d / denom
                        }
                    })
                    .collect()
            }
        }
    }

    /// Index of the exact nearest point to `q` by brute force, with its
    /// distance. Returns `None` for an empty set.
    ///
    /// # Panics
    ///
    /// Panics if `q.len() != dim()`.
    pub fn nearest_brute_force(&self, q: &[f32], metric: Metric) -> Option<(usize, f32)> {
        assert_eq!(q.len(), self.dim, "query dimension mismatch");
        self.distances_to_all(q, metric)
            .into_iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// Like [`PointSet::nearest_brute_force`] but skipping index `exclude`
    /// (self-match suppression for in-set queries).
    ///
    /// # Panics
    ///
    /// Panics if `q.len() != dim()` or the set has no other point.
    pub fn nearest_brute_force_excluding(
        &self,
        q: &[f32],
        exclude: usize,
        metric: Metric,
    ) -> (usize, f32) {
        assert_eq!(q.len(), self.dim, "query dimension mismatch");
        self.distances_to_all(q, metric)
            .into_iter()
            .enumerate()
            .filter(|&(i, _)| i != exclude)
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("point set needs a second point")
    }

    /// Indices of the exact `k` nearest points to `q` by brute force, closest
    /// first. Returns fewer than `k` if the set is smaller.
    pub fn k_nearest_brute_force(&self, q: &[f32], k: usize, metric: Metric) -> Vec<(usize, f32)> {
        assert_eq!(q.len(), self.dim, "query dimension mismatch");
        let mut all: Vec<(usize, f32)> = self
            .distances_to_all(q, metric)
            .into_iter()
            .enumerate()
            .collect();
        all.sort_by(|a, b| a.1.total_cmp(&b.1));
        all.truncate(k);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_matches_hand_computation() {
        assert_eq!(euclidean_squared(&[1.0, 2.0], &[4.0, 6.0]), 25.0);
        assert_eq!(euclidean_squared(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "dimensions must match")]
    fn euclidean_rejects_mismatched_dims() {
        euclidean_squared(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(norm_squared(&[3.0, 4.0]), 25.0);
    }

    #[test]
    fn cosine_of_parallel_and_orthogonal() {
        assert!((cosine_similarity(&[1.0, 0.0], &[2.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!(cosine_similarity(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-6);
        assert!((angular_distance(&[1.0, 0.0], &[-1.0, 0.0]) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn zero_norm_is_defined() {
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
        assert_eq!(angular_distance(&[0.0; 4], &[0.0; 4]), 1.0);
    }

    #[test]
    fn beat_counts_match_paper_example() {
        // "9 instructions would be generated for an angular distance test on a
        //  point with a dimension of 65 because ceil(65/8) = 9."
        assert_eq!(Metric::Angular.beats(65), 9);
        assert_eq!(Metric::Euclidean.beats(65), 5);
        assert_eq!(Metric::Euclidean.beats(16), 1);
        assert_eq!(Metric::Euclidean.beats(17), 2);
        assert_eq!(Metric::Angular.beats(8), 1);
    }

    #[test]
    fn multibeat_equals_scalar_euclid() {
        let q: Vec<f32> = (0..65).map(|i| i as f32 * 0.5).collect();
        let c: Vec<f32> = (0..65).map(|i| (64 - i) as f32 * 0.25).collect();
        let direct = euclidean_squared(&q, &c);
        let beats = euclid_multibeat(&q, &c);
        assert!((direct - beats).abs() / direct.max(1.0) < 1e-5);
    }

    #[test]
    fn multibeat_equals_scalar_angular() {
        let q: Vec<f32> = (0..65).map(|i| (i as f32 * 0.37).sin()).collect();
        let c: Vec<f32> = (0..65).map(|i| (i as f32 * 0.11).cos()).collect();
        let (dot_sum, norm_sum) = angular_multibeat(&q, &c);
        assert!((dot_sum - dot(&q, &c)).abs() < 1e-4);
        assert!((norm_sum - norm_squared(&c)).abs() < 1e-4);
        let qn = norm_squared(&q).sqrt();
        let ang = angular_from_sums(dot_sum, norm_sum, qn);
        assert!((ang - angular_distance(&q, &c)).abs() < 1e-5);
    }

    #[test]
    fn out_of_range_beats_contribute_zero() {
        let q = [1.0f32; 4];
        let c = [2.0f32; 4];
        assert_eq!(euclid_beat(&q, &c, 1), 0.0);
        assert_eq!(angular_beat(&q, &c, 1), (0.0, 0.0));
    }

    #[test]
    fn point_set_roundtrip() {
        let mut set = PointSet::empty(3);
        assert!(set.is_empty());
        set.push(&[1.0, 2.0, 3.0]);
        set.push(&[4.0, 5.0, 6.0]);
        assert_eq!(set.len(), 2);
        assert_eq!(set.point(0), &[1.0, 2.0, 3.0]);
        assert_eq!(set.iter().count(), 2);
        assert_eq!(set.as_flat().len(), 6);
    }

    #[test]
    fn point_set_addresses_are_row_strided() {
        let set = PointSet::from_rows(4, vec![0.0; 16]);
        assert_eq!(set.address_of(0x1000, 0), 0x1000);
        assert_eq!(set.address_of(0x1000, 2), 0x1000 + 32);
    }

    #[test]
    fn brute_force_nearest() {
        let set = PointSet::from_rows(2, vec![0.0, 0.0, 10.0, 0.0, 3.0, 4.0]);
        let (idx, d) = set
            .nearest_brute_force(&[9.0, 1.0], Metric::Euclidean)
            .unwrap();
        assert_eq!(idx, 1);
        assert_eq!(d, 2.0);
        let knn = set.k_nearest_brute_force(&[0.0, 0.0], 2, Metric::Euclidean);
        assert_eq!(knn[0].0, 0);
        assert_eq!(knn[1].0, 2);
    }

    #[test]
    fn brute_force_empty_set() {
        let set = PointSet::empty(2);
        assert!(set
            .nearest_brute_force(&[0.0, 0.0], Metric::Euclidean)
            .is_none());
        assert!(set
            .k_nearest_brute_force(&[0.0, 0.0], 3, Metric::Euclidean)
            .is_empty());
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn from_rows_validates_length() {
        PointSet::from_rows(3, vec![1.0, 2.0]);
    }

    #[test]
    fn metric_display_and_widths() {
        assert_eq!(Metric::Euclidean.to_string(), "euclidean");
        assert_eq!(Metric::Angular.to_string(), "angular");
        assert_eq!(Metric::Euclidean.beat_width(), 16);
        assert_eq!(Metric::Angular.beat_width(), 8);
    }
}
