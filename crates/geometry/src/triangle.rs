//! Triangles and the watertight ray/triangle intersection test.

use crate::ray::Ray;
use crate::vec3::Vec3;

/// Result of a successful ray/triangle intersection.
///
/// The hardware returns the hit distance as a ratio `t_num / t_denom` to avoid
/// a divider in the datapath (§IV-D, matching the RDNA3 return format); the
/// convenience accessor [`TriangleHit::t`] performs the division in
/// "software".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TriangleHit {
    /// Numerator of the hit distance.
    pub t_num: f32,
    /// Denominator of the hit distance (the determinant).
    pub t_denom: f32,
    /// Scaled barycentric coordinate U.
    pub u: f32,
    /// Scaled barycentric coordinate V.
    pub v: f32,
    /// Scaled barycentric coordinate W.
    pub w: f32,
}

impl TriangleHit {
    /// Hit distance `t = t_num / t_denom` along the ray.
    #[inline]
    pub fn t(&self) -> f32 {
        self.t_num / self.t_denom
    }

    /// Normalized barycentric coordinates `(u, v, w)` summing to 1.
    #[inline]
    pub fn barycentrics(&self) -> (f32, f32, f32) {
        let det = self.u + self.v + self.w;
        (self.u / det, self.v / det, self.w / det)
    }
}

/// A triangle primitive.
///
/// # Examples
///
/// ```
/// use hsu_geometry::{Ray, Triangle, Vec3};
/// let tri = Triangle::new(
///     Vec3::new(0.0, 0.0, 1.0),
///     Vec3::new(1.0, 0.0, 1.0),
///     Vec3::new(0.0, 1.0, 1.0),
/// );
/// let ray = Ray::new(Vec3::new(0.25, 0.25, 0.0), Vec3::new(0.0, 0.0, 1.0));
/// let hit = tri.intersect(&ray, f32::INFINITY).expect("hit");
/// assert!((hit.t() - 1.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Triangle {
    /// First vertex.
    pub a: Vec3,
    /// Second vertex.
    pub b: Vec3,
    /// Third vertex.
    pub c: Vec3,
}

impl Triangle {
    /// Creates a triangle from its three vertices.
    #[inline]
    pub const fn new(a: Vec3, b: Vec3, c: Vec3) -> Self {
        Triangle { a, b, c }
    }

    /// The tightest bounding box of the triangle.
    pub fn bounds(&self) -> crate::Aabb {
        crate::Aabb::from_points([self.a, self.b, self.c])
    }

    /// Geometric centroid.
    #[inline]
    pub fn centroid(&self) -> Vec3 {
        (self.a + self.b + self.c) / 3.0
    }

    /// Watertight ray/triangle intersection (Woop, Benthin & Wald, JCGT 2013).
    ///
    /// This follows the paper's datapath stages exactly: translate vertices to
    /// the ray origin, shear/scale them with the precomputed constants, compute
    /// the scaled barycentric edge functions, then the determinant and scaled
    /// hit distance. As in the paper (§IV-B) the double-precision fallback for
    /// edge functions that evaluate to exactly zero is removed; ties resolve as
    /// hits only when all three edge functions share a sign (or are zero),
    /// matching the NVIDIA-patent single-precision formulation.
    ///
    /// Hits with `t` outside `(0, t_max]` are rejected. Returns `None` on a
    /// miss or for degenerate (zero-determinant) configurations.
    pub fn intersect(&self, ray: &Ray, t_max: f32) -> Option<TriangleHit> {
        let (kx, ky, kz) = (ray.kx, ray.ky, ray.kz);
        let (sx, sy, sz) = (ray.shear.x, ray.shear.y, ray.shear.z);

        // Stage: translate triangle to ray origin.
        let a = self.a - ray.origin;
        let b = self.b - ray.origin;
        let c = self.c - ray.origin;

        // Stage: shear/scale vertices into ray space.
        let ax = a[kx] - sx * a[kz];
        let ay = a[ky] - sy * a[kz];
        let bx = b[kx] - sx * b[kz];
        let by = b[ky] - sy * b[kz];
        let cx = c[kx] - sx * c[kz];
        let cy = c[ky] - sy * c[kz];

        // Stage: scaled barycentric edge functions.
        let u = cx * by - cy * bx;
        let v = ax * cy - ay * cx;
        let w = bx * ay - by * ax;

        // Backface-agnostic sign test: all non-negative or all non-positive.
        if !((u >= 0.0 && v >= 0.0 && w >= 0.0) || (u <= 0.0 && v <= 0.0 && w <= 0.0)) {
            return None;
        }

        // Stage: determinant.
        let det = u + v + w;
        if det == 0.0 {
            return None;
        }

        // Stage: scaled hit distance.
        let az = sz * a[kz];
        let bz = sz * b[kz];
        let cz = sz * c[kz];
        let t_num = u * az + v * bz + w * cz;

        // Reject hits behind the origin or beyond t_max without dividing:
        // compare t_num against 0 and det * t_max with det's sign folded in.
        let det_sign = det.is_sign_negative();
        let t_num_signed = if det_sign { -t_num } else { t_num };
        let det_abs = det.abs();
        if t_num_signed <= 0.0 || t_num_signed > t_max * det_abs {
            return None;
        }

        Some(TriangleHit {
            t_num,
            t_denom: det,
            u,
            v,
            w,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_tri() -> Triangle {
        Triangle::new(
            Vec3::new(0.0, 0.0, 1.0),
            Vec3::new(1.0, 0.0, 1.0),
            Vec3::new(0.0, 1.0, 1.0),
        )
    }

    #[test]
    fn hit_inside() {
        let ray = Ray::new(Vec3::new(0.2, 0.2, 0.0), Vec3::new(0.0, 0.0, 1.0));
        let hit = unit_tri().intersect(&ray, f32::INFINITY).unwrap();
        assert!((hit.t() - 1.0).abs() < 1e-6);
        let (u, v, w) = hit.barycentrics();
        assert!((u + v + w - 1.0).abs() < 1e-6);
    }

    #[test]
    fn miss_outside() {
        let ray = Ray::new(Vec3::new(0.9, 0.9, 0.0), Vec3::new(0.0, 0.0, 1.0));
        assert!(unit_tri().intersect(&ray, f32::INFINITY).is_none());
    }

    #[test]
    fn backface_hit_is_reported() {
        // Approach from the other side: same triangle, reversed direction.
        let ray = Ray::new(Vec3::new(0.2, 0.2, 2.0), Vec3::new(0.0, 0.0, -1.0));
        let hit = unit_tri().intersect(&ray, f32::INFINITY).unwrap();
        assert!((hit.t() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn behind_origin_misses() {
        let ray = Ray::new(Vec3::new(0.2, 0.2, 2.0), Vec3::new(0.0, 0.0, 1.0));
        assert!(unit_tri().intersect(&ray, f32::INFINITY).is_none());
    }

    #[test]
    fn respects_t_max() {
        let ray = Ray::new(Vec3::new(0.2, 0.2, 0.0), Vec3::new(0.0, 0.0, 1.0));
        assert!(unit_tri().intersect(&ray, 0.5).is_none());
        assert!(unit_tri().intersect(&ray, 1.5).is_some());
    }

    #[test]
    fn edge_hit_is_watertight() {
        // Ray through the shared edge between two triangles of a quad must hit
        // at least one of them (the watertightness guarantee).
        let t1 = Triangle::new(
            Vec3::new(0.0, 0.0, 1.0),
            Vec3::new(1.0, 0.0, 1.0),
            Vec3::new(1.0, 1.0, 1.0),
        );
        let t2 = Triangle::new(
            Vec3::new(0.0, 0.0, 1.0),
            Vec3::new(1.0, 1.0, 1.0),
            Vec3::new(0.0, 1.0, 1.0),
        );
        // Points sampled on the shared diagonal (x == y).
        for i in 0..32 {
            let s = i as f32 / 31.0;
            let ray = Ray::new(Vec3::new(s, s, 0.0), Vec3::new(0.0, 0.0, 1.0));
            let hits = t1.intersect(&ray, f32::INFINITY).is_some()
                || t2.intersect(&ray, f32::INFINITY).is_some();
            assert!(hits, "diagonal point {s} slipped between triangles");
        }
    }

    #[test]
    fn degenerate_triangle_misses() {
        let degen = Triangle::new(Vec3::ZERO, Vec3::ZERO, Vec3::ZERO);
        let ray = Ray::new(Vec3::new(0.0, 0.0, -1.0), Vec3::new(0.0, 0.0, 1.0));
        assert!(degen.intersect(&ray, f32::INFINITY).is_none());
    }

    #[test]
    fn skewed_ray_hit_distance() {
        let tri = unit_tri();
        let origin = Vec3::new(-1.0, -1.0, 0.0);
        let target = Vec3::new(0.25, 0.25, 1.0);
        let dir = target - origin;
        let ray = Ray::new(origin, dir);
        let hit = tri.intersect(&ray, f32::INFINITY).unwrap();
        // dir reaches the plane z=1 at t=1 because dir.z == 1.
        assert!((hit.t() - 1.0).abs() < 1e-5);
        assert!((ray.at(hit.t()) - target).length() < 1e-5);
    }

    #[test]
    fn bounds_and_centroid() {
        let tri = unit_tri();
        let b = tri.bounds();
        assert_eq!(b.min, Vec3::new(0.0, 0.0, 1.0));
        assert_eq!(b.max, Vec3::new(1.0, 1.0, 1.0));
        let c = tri.centroid();
        assert!((c - Vec3::new(1.0 / 3.0, 1.0 / 3.0, 1.0)).length() < 1e-6);
    }
}
