//! Geometric primitives underlying the Hierarchical Search Unit (HSU).
//!
//! This crate is the lowest-level substrate of the HSU reproduction. It provides
//! the data types and *scalar reference algorithms* that the hardware datapath
//! model in `hsu-core` reimplements stage-by-stage:
//!
//! * [`Vec3`] — three-component `f32` vector math,
//! * [`Aabb`] and the slab [`Ray`]/box intersection test used by GPU RT units,
//! * [`Triangle`] and the watertight Woop ray/triangle intersection test,
//! * [`morton`] — Morton (Z-order) codes used by the LBVH builder,
//! * [`point`] — N-dimensional points with squared-Euclidean and angular
//!   distance, including the beat-partitioned forms that mirror the 16-wide
//!   and 8-wide HSU pipeline modes,
//! * [`batch`] — struct-of-arrays batch variants of the distance and
//!   intersection kernels, bit-identical to the scalar forms but laid out
//!   so the compiler vectorizes across candidates.
//!
//! Everything here is deterministic, allocation-light, and heavily unit- and
//! property-tested: the cycle-level machinery elsewhere in the workspace treats
//! these functions as golden references.
//!
//! # Examples
//!
//! ```
//! use hsu_geometry::{Aabb, Ray, Vec3};
//!
//! let ray = Ray::new(Vec3::new(0.0, 0.0, 0.0), Vec3::new(1.0, 0.0, 0.0));
//! let boxed = Aabb::new(Vec3::new(1.0, -1.0, -1.0), Vec3::new(2.0, 1.0, 1.0));
//! let hit = ray.intersect_aabb(&boxed, f32::INFINITY).expect("ray points at the box");
//! assert!((hit.t_near - 1.0).abs() < 1e-6);
//! ```

#![warn(missing_docs)]

mod aabb;
pub mod batch;
pub mod morton;
pub mod point;
mod ray;
mod triangle;
mod vec3;

pub use aabb::{Aabb, BoxHit};
pub use ray::Ray;
pub use triangle::{Triangle, TriangleHit};
pub use vec3::Vec3;
