//! Morton (Z-order) codes for the LBVH builder.
//!
//! The BVH-NN workload constructs its hierarchy with the Karras 2012 parallel
//! LBVH algorithm, which sorts primitives by the Morton code of their
//! (quantized) centroid. This module provides 30-bit (10 bits/axis) and 63-bit
//! (21 bits/axis) codes plus the quantization helpers.

use crate::{Aabb, Vec3};

/// Spreads the low 10 bits of `v` so consecutive bits land 3 apart.
#[inline]
fn expand_bits_10(v: u32) -> u32 {
    let mut v = v & 0x3ff;
    v = (v | (v << 16)) & 0x030000FF;
    v = (v | (v << 8)) & 0x0300F00F;
    v = (v | (v << 4)) & 0x030C30C3;
    v = (v | (v << 2)) & 0x09249249;
    v
}

/// Spreads the low 21 bits of `v` so consecutive bits land 3 apart.
#[inline]
fn expand_bits_21(v: u64) -> u64 {
    let mut v = v & 0x1f_ffff;
    v = (v | (v << 32)) & 0x1f00000000ffff;
    v = (v | (v << 16)) & 0x1f0000ff0000ff;
    v = (v | (v << 8)) & 0x100f00f00f00f00f;
    v = (v | (v << 4)) & 0x10c30c30c30c30c3;
    v = (v | (v << 2)) & 0x1249249249249249;
    v
}

/// Interleaves three 10-bit coordinates into a 30-bit Morton code.
///
/// # Examples
///
/// ```
/// assert_eq!(hsu_geometry::morton::encode_30(1, 0, 0), 0b001);
/// assert_eq!(hsu_geometry::morton::encode_30(0, 1, 0), 0b010);
/// assert_eq!(hsu_geometry::morton::encode_30(0, 0, 1), 0b100);
/// ```
#[inline]
pub fn encode_30(x: u32, y: u32, z: u32) -> u32 {
    expand_bits_10(x) | (expand_bits_10(y) << 1) | (expand_bits_10(z) << 2)
}

/// Interleaves three 21-bit coordinates into a 63-bit Morton code.
#[inline]
pub fn encode_63(x: u32, y: u32, z: u32) -> u64 {
    expand_bits_21(x as u64) | (expand_bits_21(y as u64) << 1) | (expand_bits_21(z as u64) << 2)
}

/// Quantizes `p` inside `bounds` to the `[0, 2^bits)` integer lattice.
///
/// Coordinates are clamped, so points on (or slightly outside, from rounding)
/// the boundary still produce valid codes.
#[inline]
pub fn quantize(p: Vec3, bounds: &Aabb, bits: u32) -> (u32, u32, u32) {
    debug_assert!(bits <= 21, "at most 21 bits per axis are supported");
    let scale = (1u32 << bits) as f32;
    let max_coord = (1u32 << bits) - 1;
    let extent = bounds.extent();
    let q = |v: f32, lo: f32, e: f32| -> u32 {
        if e <= 0.0 {
            return 0;
        }
        let t = ((v - lo) / e * scale) as i64;
        t.clamp(0, max_coord as i64) as u32
    };
    (
        q(p.x, bounds.min.x, extent.x),
        q(p.y, bounds.min.y, extent.y),
        q(p.z, bounds.min.z, extent.z),
    )
}

/// 30-bit Morton code of `p` quantized within `bounds`.
#[inline]
pub fn code_30(p: Vec3, bounds: &Aabb) -> u32 {
    let (x, y, z) = quantize(p, bounds, 10);
    encode_30(x, y, z)
}

/// 63-bit Morton code of `p` quantized within `bounds`.
#[inline]
pub fn code_63(p: Vec3, bounds: &Aabb) -> u64 {
    let (x, y, z) = quantize(p, bounds, 21);
    encode_63(x, y, z)
}

/// Recovers the three 10-bit coordinates from a 30-bit Morton code
/// (inverse of [`encode_30`]; used by tests).
pub fn decode_30(code: u32) -> (u32, u32, u32) {
    let compact = |mut v: u32| -> u32 {
        v &= 0x09249249;
        v = (v | (v >> 2)) & 0x030C30C3;
        v = (v | (v >> 4)) & 0x0300F00F;
        v = (v | (v >> 8)) & 0x030000FF;
        v = (v | (v >> 16)) & 0x3ff;
        v
    };
    (compact(code), compact(code >> 1), compact(code >> 2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_30_basis_vectors() {
        assert_eq!(encode_30(0, 0, 0), 0);
        assert_eq!(encode_30(1, 0, 0), 1);
        assert_eq!(encode_30(0, 1, 0), 2);
        assert_eq!(encode_30(0, 0, 1), 4);
        assert_eq!(encode_30(2, 0, 0), 8);
        assert_eq!(encode_30(0b11, 0b11, 0b11), 0b111111);
    }

    #[test]
    fn encode_30_max_fits_in_30_bits() {
        let code = encode_30(0x3ff, 0x3ff, 0x3ff);
        assert_eq!(code, (1 << 30) - 1);
    }

    #[test]
    fn encode_63_max_fits_in_63_bits() {
        let code = encode_63(0x1f_ffff, 0x1f_ffff, 0x1f_ffff);
        assert_eq!(code, (1u64 << 63) - 1);
    }

    #[test]
    fn decode_inverts_encode() {
        for (x, y, z) in [(0, 0, 0), (1, 2, 3), (1023, 0, 512), (700, 700, 700)] {
            assert_eq!(decode_30(encode_30(x, y, z)), (x, y, z));
        }
    }

    #[test]
    fn quantize_clamps_to_lattice() {
        let bounds = Aabb::new(Vec3::ZERO, Vec3::splat(1.0));
        assert_eq!(quantize(Vec3::ZERO, &bounds, 10), (0, 0, 0));
        assert_eq!(quantize(Vec3::splat(1.0), &bounds, 10), (1023, 1023, 1023));
        // Outside points clamp.
        assert_eq!(quantize(Vec3::splat(2.0), &bounds, 10), (1023, 1023, 1023));
        assert_eq!(quantize(Vec3::splat(-1.0), &bounds, 10), (0, 0, 0));
    }

    #[test]
    fn quantize_degenerate_extent_is_zero() {
        let bounds = Aabb::new(Vec3::ZERO, Vec3::new(1.0, 0.0, 1.0));
        let (_, y, _) = quantize(Vec3::new(0.5, 0.0, 0.5), &bounds, 10);
        assert_eq!(y, 0);
    }

    #[test]
    fn codes_order_matches_spatial_octants() {
        let bounds = Aabb::new(Vec3::ZERO, Vec3::splat(1.0));
        // A point in the low octant sorts before one in the high octant.
        let lo = code_30(Vec3::splat(0.1), &bounds);
        let hi = code_30(Vec3::splat(0.9), &bounds);
        assert!(lo < hi);
    }

    #[test]
    fn code_63_has_finer_resolution_than_code_30() {
        let bounds = Aabb::new(Vec3::ZERO, Vec3::splat(1.0));
        let a = Vec3::new(0.50000, 0.5, 0.5);
        let b = Vec3::new(0.50001, 0.5, 0.5);
        // Too close for 10 bits, distinguishable at 21 bits.
        assert_eq!(code_30(a, &bounds), code_30(b, &bounds));
        assert_ne!(code_63(a, &bounds), code_63(b, &bounds));
    }
}
