//! SoA batch variants of the hot distance/intersection kernels.
//!
//! The scalar kernels in [`point`](crate::point), [`aabb`](crate::Aabb) and
//! [`triangle`](crate::Triangle) are golden references: every workload
//! build, ground-truth check and trace lowering in the workspace consumes
//! their exact `f32` results, and the simulator's golden reports lock the
//! downstream cycle counts bit for bit. The batch variants here are
//! therefore **bit-identical by construction**: they vectorize *across
//! candidates* (one accumulator per candidate, advanced in the same
//! dimension/stage order as the scalar code) and never reassociate a
//! per-candidate reduction. Each function documents the scalar kernel it
//! mirrors, and the test suite asserts `to_bits()` equality against it on
//! random inputs.
//!
//! Layout notes for the auto-vectorizer:
//!
//! * candidates are processed in blocks of [`LANES`] with independent
//!   accumulators (unroll-and-jam — LLVM turns the block into SIMD lanes),
//! * [`Vec3`] is `#[repr(C)]`, so a `&[Vec3]` is a dense `x,y,z` stream,
//! * the box and triangle batches replace the scalar early-exits with
//!   branch-free selects of the same values, keeping the per-lane math
//!   identical while letting whole blocks retire without branches.

use crate::aabb::{Aabb, BoxHit};
use crate::point::Metric;
use crate::ray::Ray;
use crate::triangle::{Triangle, TriangleHit};
use crate::vec3::Vec3;

/// Batch block width. Eight `f32` lanes: one AVX register, two SSE ops —
/// wide enough to fill either ISA, small enough that remainders stay cheap.
pub const LANES: usize = 8;

/// Squared Euclidean distances from `q` to every row of `rows` (row-major,
/// `q.len()` wide), appended to `out`.
///
/// Bit-identical to calling [`crate::point::euclidean_squared`] per row:
/// each row keeps its own accumulator, advanced in dimension order.
///
/// # Panics
///
/// Panics if `rows.len()` is not a multiple of `q.len()`, or `q` is empty.
pub fn euclid_to_rows(q: &[f32], rows: &[f32], out: &mut Vec<f32>) {
    let dim = q.len();
    assert!(dim > 0, "dimension must be positive");
    assert!(
        rows.len().is_multiple_of(dim),
        "rows length {} is not a multiple of dim {dim}",
        rows.len()
    );
    let n = rows.len() / dim;
    out.reserve(n);
    let mut blocks = rows.chunks_exact(dim * LANES);
    for block in &mut blocks {
        let mut acc = [0.0f32; LANES];
        for (j, &qj) in q.iter().enumerate() {
            for (l, a) in acc.iter_mut().enumerate() {
                let d = qj - block[l * dim + j];
                *a += d * d;
            }
        }
        out.extend_from_slice(&acc);
    }
    for row in blocks.remainder().chunks_exact(dim) {
        out.push(crate::point::euclidean_squared(q, row));
    }
}

/// Per-row `(dot(q, row), norm_squared(row))` pairs — the two scalars of the
/// angular metric (paper eqs. 3–4) — appended to `out`.
///
/// Bit-identical to calling [`crate::point::dot`] and
/// [`crate::point::norm_squared`] per row.
///
/// # Panics
///
/// Panics if `rows.len()` is not a multiple of `q.len()`, or `q` is empty.
pub fn dot_norm_to_rows(q: &[f32], rows: &[f32], out: &mut Vec<(f32, f32)>) {
    let dim = q.len();
    assert!(dim > 0, "dimension must be positive");
    assert!(
        rows.len().is_multiple_of(dim),
        "rows length {} is not a multiple of dim {dim}",
        rows.len()
    );
    let n = rows.len() / dim;
    out.reserve(n);
    let mut blocks = rows.chunks_exact(dim * LANES);
    for block in &mut blocks {
        let mut dots = [0.0f32; LANES];
        let mut norms = [0.0f32; LANES];
        for (j, &qj) in q.iter().enumerate() {
            for l in 0..LANES {
                let c = block[l * dim + j];
                dots[l] += qj * c;
                norms[l] += c * c;
            }
        }
        for l in 0..LANES {
            out.push((dots[l], norms[l]));
        }
    }
    for row in blocks.remainder().chunks_exact(dim) {
        out.push((crate::point::dot(q, row), crate::point::norm_squared(row)));
    }
}

/// Squared distances from `q` to each point, appended to `out`.
///
/// Bit-identical to `(p - q).length_squared()` per point (the BVH leaf
/// refine test): the `x`, then `y`, then `z` contributions accumulate in
/// the scalar order.
pub fn vec3_distance_squared(q: Vec3, points: &[Vec3], out: &mut Vec<f32>) {
    out.reserve(points.len());
    let mut blocks = points.chunks_exact(LANES);
    for block in &mut blocks {
        let mut acc = [0.0f32; LANES];
        for (l, p) in block.iter().enumerate() {
            let dx = p.x - q.x;
            let dy = p.y - q.y;
            let dz = p.z - q.z;
            acc[l] = dx * dx + dy * dy + dz * dz;
        }
        out.extend_from_slice(&acc);
    }
    for p in blocks.remainder() {
        out.push((*p - q).length_squared());
    }
}

/// Copies the rows of `flat` (row-major, `dim` wide) selected by `ids` into
/// `out` as one contiguous row-major block — the gather step that turns a
/// hierarchical index's scattered candidate list (graph adjacency, k-d leaf
/// bucket) into the dense layout [`euclid_to_rows`] and friends vectorize
/// over.
///
/// # Panics
///
/// Panics if `flat.len()` is not a multiple of `dim`, or an id is out of
/// range.
pub fn gather_rows(flat: &[f32], dim: usize, ids: &[u32], out: &mut Vec<f32>) {
    assert!(dim > 0, "dimension must be positive");
    assert!(
        flat.len().is_multiple_of(dim),
        "flat length {} is not a multiple of dim {dim}",
        flat.len()
    );
    out.reserve(ids.len() * dim);
    for &id in ids {
        let start = id as usize * dim;
        out.extend_from_slice(&flat[start..start + dim]);
    }
}

/// Per-row [`Metric::distance`] values from `q` to every row of `rows`,
/// appended to `out` — the candidate-parallel form of the one call every
/// index search hot loop makes.
///
/// Bit-identical to the scalar metric per row: the Euclidean arm is
/// [`euclid_to_rows`]; the angular arm combines [`dot_norm_to_rows`] with
/// exactly the scalar completion (`1 - dot / sqrt(|q|² |c|²)`, zero
/// denominator ⇒ similarity 0). `pairs` is caller-owned scratch for the
/// angular `(dot, norm²)` stage so hot loops can reuse one allocation.
///
/// # Panics
///
/// Panics if `rows.len()` is not a multiple of `q.len()`, or `q` is empty.
pub fn metric_to_rows(
    metric: Metric,
    q: &[f32],
    rows: &[f32],
    pairs: &mut Vec<(f32, f32)>,
    out: &mut Vec<f32>,
) {
    match metric {
        Metric::Euclidean => euclid_to_rows(q, rows, out),
        Metric::Angular => {
            // `norm_squared(q)` is a pure function, so hoisting it out of
            // the per-row loop keeps the same bits the scalar path computes
            // per candidate.
            let qn = crate::point::norm_squared(q);
            pairs.clear();
            dot_norm_to_rows(q, rows, pairs);
            out.reserve(pairs.len());
            for &(d, n) in pairs.iter() {
                // Mirrors `angular_distance`: cosine first (0 on a zero
                // denominator), then `1 - cosine`.
                let denom = (qn * n).sqrt();
                let cos = if denom == 0.0 { 0.0 } else { d / denom };
                out.push(1.0 - cos);
            }
        }
    }
}

/// A struct-of-arrays block of axis-aligned boxes: each corner component is
/// a dense `f32` column, so one ray can be tested against the whole block
/// with unit-stride vector loads (the RT unit's "4 boxes per instruction"
/// shape, extended to any count).
#[derive(Debug, Clone, Default)]
pub struct AabbSoA {
    min_x: Vec<f32>,
    min_y: Vec<f32>,
    min_z: Vec<f32>,
    max_x: Vec<f32>,
    max_y: Vec<f32>,
    max_z: Vec<f32>,
}

impl AabbSoA {
    /// Transposes an AoS slice of boxes into columns.
    pub fn from_aabbs(boxes: &[Aabb]) -> Self {
        let mut soa = AabbSoA::default();
        soa.min_x.reserve(boxes.len());
        for b in boxes {
            soa.min_x.push(b.min.x);
            soa.min_y.push(b.min.y);
            soa.min_z.push(b.min.z);
            soa.max_x.push(b.max.x);
            soa.max_y.push(b.max.y);
            soa.max_z.push(b.max.z);
        }
        soa
    }

    /// Number of boxes.
    #[inline]
    pub fn len(&self) -> usize {
        self.min_x.len()
    }

    /// Returns `true` when the block holds no boxes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min_x.is_empty()
    }

    /// Slab test of `ray` against every box, appending one entry per box to
    /// `out` — bit-identical to [`Ray::intersect_aabb`] per box. The scalar
    /// kernel's per-axis swap and NaN suppression become branch-free
    /// selects of the same values, so the lane math is unchanged.
    pub fn intersect(&self, ray: &Ray, t_max: f32, out: &mut Vec<Option<BoxHit>>) {
        // Mirrors the scalar `slab`: `min`/`max` equal its `a <= b` swap for
        // non-NaN inputs, and the NaN select reproduces the "axis imposes no
        // constraint" interval exactly.
        #[inline]
        fn slab(lo: f32, hi: f32, origin: f32, inv: f32) -> (f32, f32) {
            let a = (lo - origin) * inv;
            let b = (hi - origin) * inv;
            let nan = a.is_nan() || b.is_nan();
            let near = if nan { f32::NEG_INFINITY } else { a.min(b) };
            let far = if nan { f32::INFINITY } else { a.max(b) };
            (near, far)
        }
        out.reserve(self.len());
        for i in 0..self.len() {
            let (nx, fx) = slab(self.min_x[i], self.max_x[i], ray.origin.x, ray.inv_dir.x);
            let (ny, fy) = slab(self.min_y[i], self.max_y[i], ray.origin.y, ray.inv_dir.y);
            let (nz, fz) = slab(self.min_z[i], self.max_z[i], ray.origin.z, ray.inv_dir.z);
            let t_near = nx.max(ny).max(nz).max(0.0);
            let t_far = fx.min(fy).min(fz).min(t_max);
            out.push((t_near <= t_far).then_some(BoxHit { t_near, t_far }));
        }
    }

    /// Squared point-to-box distances (the best-first lower bound), one per
    /// box, appended to `out` — bit-identical to
    /// [`Aabb::distance_squared_to`] per box.
    pub fn distance_squared_to(&self, p: Vec3, out: &mut Vec<f32>) {
        out.reserve(self.len());
        for i in 0..self.len() {
            let dx = (self.min_x[i] - p.x).max(0.0).max(p.x - self.max_x[i]);
            let dy = (self.min_y[i] - p.y).max(0.0).max(p.y - self.max_y[i]);
            let dz = (self.min_z[i] - p.z).max(0.0).max(p.z - self.max_z[i]);
            out.push(dx * dx + dy * dy + dz * dz);
        }
    }
}

/// Watertight intersection of `ray` against a slice of triangles, one entry
/// per triangle appended to `out` — bit-identical to
/// [`Triangle::intersect`] per triangle. The scalar early-exits (sign test,
/// zero determinant, `t` window) become a final branch-free accept mask
/// over values computed in the same stage order.
pub fn triangles_intersect(
    tris: &[Triangle],
    ray: &Ray,
    t_max: f32,
    out: &mut Vec<Option<TriangleHit>>,
) {
    let (kx, ky, kz) = (ray.kx, ray.ky, ray.kz);
    let (sx, sy, sz) = (ray.shear.x, ray.shear.y, ray.shear.z);
    out.reserve(tris.len());
    for tri in tris {
        let a = tri.a - ray.origin;
        let b = tri.b - ray.origin;
        let c = tri.c - ray.origin;
        let ax = a[kx] - sx * a[kz];
        let ay = a[ky] - sy * a[kz];
        let bx = b[kx] - sx * b[kz];
        let by = b[ky] - sy * b[kz];
        let cx = c[kx] - sx * c[kz];
        let cy = c[ky] - sy * c[kz];
        let u = cx * by - cy * bx;
        let v = ax * cy - ay * cx;
        let w = bx * ay - by * ax;
        let signs_ok = (u >= 0.0 && v >= 0.0 && w >= 0.0) || (u <= 0.0 && v <= 0.0 && w <= 0.0);
        let det = u + v + w;
        let az = sz * a[kz];
        let bz = sz * b[kz];
        let cz = sz * c[kz];
        let t_num = u * az + v * bz + w * cz;
        let t_num_signed = if det.is_sign_negative() {
            -t_num
        } else {
            t_num
        };
        // Negated form of the scalar reject so NaN comparisons resolve the
        // same way they do in `Triangle::intersect`.
        let accept =
            signs_ok && det != 0.0 && !(t_num_signed <= 0.0 || t_num_signed > t_max * det.abs());
        out.push(accept.then_some(TriangleHit {
            t_num,
            t_denom: det,
            u,
            v,
            w,
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::{dot, euclidean_squared, norm_squared, PointSet};
    use rand::{Rng, SeedableRng};

    fn rng() -> rand_chacha::ChaCha8Rng {
        rand_chacha::ChaCha8Rng::seed_from_u64(42)
    }

    #[test]
    fn euclid_batch_is_bit_identical() {
        let mut rng = rng();
        for dim in [1usize, 3, 7, 16, 33] {
            // Cross the LANES boundary and leave a remainder.
            for n in [0usize, 1, LANES - 1, LANES, LANES + 3, 3 * LANES + 5] {
                let q: Vec<f32> = (0..dim).map(|_| rng.gen_range(-4.0f32..4.0)).collect();
                let rows: Vec<f32> = (0..n * dim).map(|_| rng.gen_range(-4.0f32..4.0)).collect();
                let mut batch = Vec::new();
                euclid_to_rows(&q, &rows, &mut batch);
                let set = PointSet::from_rows(dim, rows);
                assert_eq!(batch.len(), n);
                for (i, c) in set.iter().enumerate() {
                    assert_eq!(
                        batch[i].to_bits(),
                        euclidean_squared(&q, c).to_bits(),
                        "dim {dim} row {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn dot_norm_batch_is_bit_identical() {
        let mut rng = rng();
        let dim = 19;
        let n = 2 * LANES + 3;
        let q: Vec<f32> = (0..dim).map(|_| rng.gen_range(-2.0f32..2.0)).collect();
        let rows: Vec<f32> = (0..n * dim).map(|_| rng.gen_range(-2.0f32..2.0)).collect();
        let mut batch = Vec::new();
        dot_norm_to_rows(&q, &rows, &mut batch);
        assert_eq!(batch.len(), n);
        for (i, row) in rows.chunks_exact(dim).enumerate() {
            assert_eq!(batch[i].0.to_bits(), dot(&q, row).to_bits(), "dot row {i}");
            assert_eq!(
                batch[i].1.to_bits(),
                norm_squared(row).to_bits(),
                "norm row {i}"
            );
        }
    }

    #[test]
    fn vec3_batch_is_bit_identical() {
        let mut rng = rng();
        let q = Vec3::new(0.3, -0.7, 1.1);
        let pts: Vec<Vec3> = (0..LANES * 2 + 5)
            .map(|_| {
                Vec3::new(
                    rng.gen_range(-3.0f32..3.0),
                    rng.gen_range(-3.0f32..3.0),
                    rng.gen_range(-3.0f32..3.0),
                )
            })
            .collect();
        let mut batch = Vec::new();
        vec3_distance_squared(q, &pts, &mut batch);
        for (i, p) in pts.iter().enumerate() {
            assert_eq!(
                batch[i].to_bits(),
                (*p - q).length_squared().to_bits(),
                "point {i}"
            );
        }
    }

    #[test]
    fn aabb_soa_matches_scalar_slab_test() {
        let mut rng = rng();
        let boxes: Vec<Aabb> = (0..37)
            .map(|_| {
                let c = Vec3::new(
                    rng.gen_range(-2.0f32..2.0),
                    rng.gen_range(-2.0f32..2.0),
                    rng.gen_range(-2.0f32..2.0),
                );
                Aabb::around_point(c, rng.gen_range(0.01f32..1.0))
            })
            .collect();
        let soa = AabbSoA::from_aabbs(&boxes);
        assert_eq!(soa.len(), boxes.len());
        // Include an axis-parallel ray (inv_dir infinities + NaN products).
        let rays = [
            Ray::new(Vec3::new(-4.0, 0.1, 0.2), Vec3::new(1.0, 0.05, -0.02)),
            Ray::new(Vec3::new(0.0, 0.5, -3.0), Vec3::new(0.0, 0.0, 1.0)),
        ];
        for ray in &rays {
            for t_max in [f32::INFINITY, 2.5] {
                let mut batch = Vec::new();
                soa.intersect(ray, t_max, &mut batch);
                for (i, b) in boxes.iter().enumerate() {
                    assert_eq!(batch[i], ray.intersect_aabb(b, t_max), "box {i}");
                }
            }
        }
        let p = Vec3::new(0.4, -1.3, 2.0);
        let mut dists = Vec::new();
        soa.distance_squared_to(p, &mut dists);
        for (i, b) in boxes.iter().enumerate() {
            assert_eq!(
                dists[i].to_bits(),
                b.distance_squared_to(p).to_bits(),
                "box {i}"
            );
        }
    }

    #[test]
    fn triangle_batch_matches_scalar_watertight_test() {
        let mut rng = rng();
        let mut v = || {
            Vec3::new(
                rng.gen_range(-1.5f32..1.5),
                rng.gen_range(-1.5f32..1.5),
                rng.gen_range(0.5f32..2.0),
            )
        };
        let mut tris: Vec<Triangle> = (0..29).map(|_| Triangle::new(v(), v(), v())).collect();
        // A degenerate triangle exercises the zero-determinant reject.
        tris.push(Triangle::new(Vec3::ZERO, Vec3::ZERO, Vec3::ZERO));
        let ray = Ray::new(Vec3::new(0.1, -0.2, -1.0), Vec3::new(0.02, 0.01, 1.0));
        for t_max in [f32::INFINITY, 1.5] {
            let mut batch = Vec::new();
            triangles_intersect(&tris, &ray, t_max, &mut batch);
            for (i, t) in tris.iter().enumerate() {
                assert_eq!(batch[i], t.intersect(&ray, t_max), "triangle {i}");
            }
        }
    }

    #[test]
    fn gather_rows_selects_rows_in_order() {
        let flat: Vec<f32> = (0..12).map(|i| i as f32).collect(); // 4 rows × 3
        let mut out = vec![99.0]; // appended, not overwritten
        gather_rows(&flat, 3, &[2, 0, 2], &mut out);
        assert_eq!(out, vec![99.0, 6.0, 7.0, 8.0, 0.0, 1.0, 2.0, 6.0, 7.0, 8.0]);
        let mut empty = Vec::new();
        gather_rows(&flat, 3, &[], &mut empty);
        assert!(empty.is_empty());
    }

    #[test]
    fn metric_batch_is_bit_identical_for_both_metrics() {
        let mut rng = rng();
        for metric in [Metric::Euclidean, Metric::Angular] {
            for dim in [1usize, 4, 17, 65] {
                for n in [0usize, 1, LANES, 2 * LANES + 3] {
                    let q: Vec<f32> = (0..dim).map(|_| rng.gen_range(-3.0f32..3.0)).collect();
                    let rows: Vec<f32> =
                        (0..n * dim).map(|_| rng.gen_range(-3.0f32..3.0)).collect();
                    let mut pairs = Vec::new();
                    let mut batch = Vec::new();
                    metric_to_rows(metric, &q, &rows, &mut pairs, &mut batch);
                    assert_eq!(batch.len(), n);
                    for (i, c) in rows.chunks_exact(dim).enumerate() {
                        assert_eq!(
                            batch[i].to_bits(),
                            metric.distance(&q, c).to_bits(),
                            "{metric:?} dim {dim} row {i}"
                        );
                    }
                }
            }
        }
        // The zero-denominator arm must reproduce the scalar's distance 1.
        let mut pairs = Vec::new();
        let mut batch = Vec::new();
        metric_to_rows(
            Metric::Angular,
            &[0.0, 0.0],
            &[1.0, 2.0],
            &mut pairs,
            &mut batch,
        );
        assert_eq!(
            batch[0].to_bits(),
            Metric::Angular.distance(&[0.0, 0.0], &[1.0, 2.0]).to_bits()
        );
    }

    #[test]
    fn empty_inputs_are_fine() {
        let mut out = Vec::new();
        euclid_to_rows(&[1.0], &[], &mut out);
        assert!(out.is_empty());
        let soa = AabbSoA::from_aabbs(&[]);
        assert!(soa.is_empty());
        let mut hits = Vec::new();
        soa.intersect(
            &Ray::new(Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0)),
            1.0,
            &mut hits,
        );
        assert!(hits.is_empty());
    }
}
