//! Axis-aligned bounding boxes and the slab ray-box intersection test.

use crate::ray::Ray;
use crate::vec3::Vec3;

/// Result of a successful ray/AABB slab test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxHit {
    /// Parametric entry distance along the ray (clamped to 0 when the ray
    /// starts inside the box).
    pub t_near: f32,
    /// Parametric exit distance along the ray.
    pub t_far: f32,
}

/// An axis-aligned bounding box.
///
/// The RT unit tests a ray against up to four of these per `RAY_INTERSECT`
/// instruction; BVH leaves in the nearest-neighbour workloads are AABBs of
/// side `2r` centred on each data point (RTNN construction, §V-A).
///
/// # Examples
///
/// ```
/// use hsu_geometry::{Aabb, Vec3};
/// let a = Aabb::new(Vec3::ZERO, Vec3::splat(1.0));
/// let b = Aabb::new(Vec3::splat(0.5), Vec3::splat(2.0));
/// assert!(a.overlaps(&b));
/// assert_eq!(a.union(&b).max, Vec3::splat(2.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb {
    /// Minimum corner.
    pub min: Vec3,
    /// Maximum corner.
    pub max: Vec3,
}

impl Aabb {
    /// An empty box: `min = +inf`, `max = -inf`, the identity of [`union`].
    ///
    /// [`union`]: Aabb::union
    pub const EMPTY: Aabb = Aabb {
        min: Vec3::splat(f32::INFINITY),
        max: Vec3::splat(f32::NEG_INFINITY),
    };

    /// Creates a box from its two corners.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if any `min` component exceeds the corresponding
    /// `max` component (use [`Aabb::EMPTY`] for the empty box).
    #[inline]
    pub fn new(min: Vec3, max: Vec3) -> Self {
        debug_assert!(
            min.x <= max.x && min.y <= max.y && min.z <= max.z,
            "inverted AABB: min {min} max {max}"
        );
        Aabb { min, max }
    }

    /// The box of half-side `radius` centred on `center` (the RTNN leaf shape).
    #[inline]
    pub fn around_point(center: Vec3, radius: f32) -> Self {
        Aabb {
            min: center - Vec3::splat(radius),
            max: center + Vec3::splat(radius),
        }
    }

    /// The tightest box containing every point in `points`.
    ///
    /// Returns [`Aabb::EMPTY`] for an empty iterator.
    pub fn from_points<I: IntoIterator<Item = Vec3>>(points: I) -> Self {
        points
            .into_iter()
            .fold(Aabb::EMPTY, |acc, p| acc.expanded_to(p))
    }

    /// Returns `true` if this is the empty box.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x
    }

    /// Geometric centre of the box.
    #[inline]
    pub fn center(&self) -> Vec3 {
        (self.min + self.max) * 0.5
    }

    /// Edge lengths along each axis.
    #[inline]
    pub fn extent(&self) -> Vec3 {
        self.max - self.min
    }

    /// Surface area (used by the SAH reference builder).
    #[inline]
    pub fn surface_area(&self) -> f32 {
        if self.is_empty() {
            return 0.0;
        }
        let e = self.extent();
        2.0 * (e.x * e.y + e.y * e.z + e.z * e.x)
    }

    /// Smallest box containing both `self` and `other`.
    #[inline]
    pub fn union(&self, other: &Aabb) -> Aabb {
        Aabb {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// Smallest box containing `self` and the point `p`.
    #[inline]
    pub fn expanded_to(&self, p: Vec3) -> Aabb {
        Aabb {
            min: self.min.min(p),
            max: self.max.max(p),
        }
    }

    /// Returns `true` if `p` lies inside or on the boundary.
    #[inline]
    pub fn contains(&self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// Returns `true` if `other` is entirely inside `self`.
    #[inline]
    pub fn contains_box(&self, other: &Aabb) -> bool {
        other.is_empty() || (self.contains(other.min) && self.contains(other.max))
    }

    /// Returns `true` if the two boxes share any volume (boundaries count).
    #[inline]
    pub fn overlaps(&self, other: &Aabb) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.min.x <= other.max.x
            && self.max.x >= other.min.x
            && self.min.y <= other.max.y
            && self.max.y >= other.min.y
            && self.min.z <= other.max.z
            && self.max.z >= other.min.z
    }

    /// Squared Euclidean distance from `p` to the closest point of the box
    /// (zero when `p` is inside). Used by best-first BVH nearest-neighbour
    /// search as an admissible lower bound.
    #[inline]
    pub fn distance_squared_to(&self, p: Vec3) -> f32 {
        let dx = (self.min.x - p.x).max(0.0).max(p.x - self.max.x);
        let dy = (self.min.y - p.y).max(0.0).max(p.y - self.max.y);
        let dz = (self.min.z - p.z).max(0.0).max(p.z - self.max.z);
        dx * dx + dy * dy + dz * dz
    }
}

impl Ray {
    /// Slab ray/box intersection test (Kay & Kajiya 1986) — the "compute
    /// intervals / tmin-tmax / hit" stages of the datapath's ray-box mode.
    ///
    /// `t_max` bounds the search; hits entirely beyond it are rejected. The
    /// valid interval is `[0, t_max]`. Returns `None` on a miss.
    ///
    /// IEEE infinity semantics from the precomputed `inv_dir` handle
    /// axis-parallel rays; NaNs arising from `0 * inf` (ray origin exactly on
    /// a slab of zero extent) resolve to a miss-safe ordering via `min`/`max`
    /// with explicit NaN suppression, giving a conservative (never
    /// false-negative for watertight traversal) result.
    pub fn intersect_aabb(&self, aabb: &Aabb, t_max: f32) -> Option<BoxHit> {
        // One slab per axis. `0 * inf = NaN` arises exactly when the origin
        // sits on a slab plane with a zero direction component; the ray then
        // stays on that (inclusive) boundary forever, so the axis imposes no
        // constraint — hardware comparators suppress the NaN the same way.
        #[inline]
        fn slab(lo: f32, hi: f32, origin: f32, inv: f32) -> (f32, f32) {
            let a = (lo - origin) * inv;
            let b = (hi - origin) * inv;
            if a.is_nan() || b.is_nan() {
                (f32::NEG_INFINITY, f32::INFINITY)
            } else if a <= b {
                (a, b)
            } else {
                (b, a)
            }
        }
        // Stage 1: translate box to ray origin; stage 2: scale by inv_dir;
        // stage 3: interval intersection (tmin/tmax reduction).
        let (nx, fx) = slab(aabb.min.x, aabb.max.x, self.origin.x, self.inv_dir.x);
        let (ny, fy) = slab(aabb.min.y, aabb.max.y, self.origin.y, self.inv_dir.y);
        let (nz, fz) = slab(aabb.min.z, aabb.max.z, self.origin.z, self.inv_dir.z);
        let t_near = nx.max(ny).max(nz).max(0.0);
        let t_far = fx.min(fy).min(fz).min(t_max);
        if t_near <= t_far {
            Some(BoxHit { t_near, t_far })
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_box() -> Aabb {
        Aabb::new(Vec3::ZERO, Vec3::splat(1.0))
    }

    #[test]
    fn empty_box_properties() {
        assert!(Aabb::EMPTY.is_empty());
        assert_eq!(Aabb::EMPTY.surface_area(), 0.0);
        assert!(!Aabb::EMPTY.overlaps(&unit_box()));
        let u = Aabb::EMPTY.union(&unit_box());
        assert_eq!(u, unit_box());
    }

    #[test]
    fn from_points_is_tightest() {
        let b = Aabb::from_points([
            Vec3::new(1.0, 2.0, 3.0),
            Vec3::new(-1.0, 5.0, 0.0),
            Vec3::new(0.0, 0.0, 4.0),
        ]);
        assert_eq!(b.min, Vec3::new(-1.0, 0.0, 0.0));
        assert_eq!(b.max, Vec3::new(1.0, 5.0, 4.0));
    }

    #[test]
    fn around_point_is_symmetric() {
        let b = Aabb::around_point(Vec3::new(1.0, 2.0, 3.0), 0.5);
        assert_eq!(b.center(), Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(b.extent(), Vec3::splat(1.0));
    }

    #[test]
    fn surface_area_of_unit_box() {
        assert_eq!(unit_box().surface_area(), 6.0);
    }

    #[test]
    fn containment_and_overlap() {
        let b = unit_box();
        assert!(b.contains(Vec3::splat(0.5)));
        assert!(b.contains(Vec3::ZERO)); // boundary counts
        assert!(!b.contains(Vec3::splat(1.1)));
        let inner = Aabb::new(Vec3::splat(0.25), Vec3::splat(0.75));
        assert!(b.contains_box(&inner));
        assert!(!inner.contains_box(&b));
        assert!(b.overlaps(&inner));
        let far = Aabb::new(Vec3::splat(2.0), Vec3::splat(3.0));
        assert!(!b.overlaps(&far));
        // Touching faces overlap.
        let touching = Aabb::new(Vec3::new(1.0, 0.0, 0.0), Vec3::new(2.0, 1.0, 1.0));
        assert!(b.overlaps(&touching));
    }

    #[test]
    fn distance_squared_inside_is_zero() {
        assert_eq!(unit_box().distance_squared_to(Vec3::splat(0.5)), 0.0);
    }

    #[test]
    fn distance_squared_outside() {
        // 1 unit beyond the max corner along x only.
        let d = unit_box().distance_squared_to(Vec3::new(2.0, 0.5, 0.5));
        assert_eq!(d, 1.0);
        // Diagonal from the corner.
        let d = unit_box().distance_squared_to(Vec3::new(2.0, 2.0, 2.0));
        assert_eq!(d, 3.0);
    }

    #[test]
    fn slab_hit_through_center() {
        let r = Ray::new(Vec3::new(-1.0, 0.5, 0.5), Vec3::new(1.0, 0.0, 0.0));
        let h = r.intersect_aabb(&unit_box(), f32::INFINITY).unwrap();
        assert_eq!(h.t_near, 1.0);
        assert_eq!(h.t_far, 2.0);
    }

    #[test]
    fn slab_miss() {
        let r = Ray::new(Vec3::new(-1.0, 2.0, 0.5), Vec3::new(1.0, 0.0, 0.0));
        assert!(r.intersect_aabb(&unit_box(), f32::INFINITY).is_none());
    }

    #[test]
    fn slab_origin_inside_clamps_t_near() {
        let r = Ray::new(Vec3::splat(0.5), Vec3::new(0.0, 1.0, 0.0));
        let h = r.intersect_aabb(&unit_box(), f32::INFINITY).unwrap();
        assert_eq!(h.t_near, 0.0);
        assert_eq!(h.t_far, 0.5);
    }

    #[test]
    fn slab_behind_origin_misses() {
        let r = Ray::new(Vec3::new(2.0, 0.5, 0.5), Vec3::new(1.0, 0.0, 0.0));
        assert!(r.intersect_aabb(&unit_box(), f32::INFINITY).is_none());
    }

    #[test]
    fn slab_respects_t_max() {
        let r = Ray::new(Vec3::new(-2.0, 0.5, 0.5), Vec3::new(1.0, 0.0, 0.0));
        assert!(r.intersect_aabb(&unit_box(), 1.5).is_none());
        assert!(r.intersect_aabb(&unit_box(), 2.5).is_some());
    }

    #[test]
    fn slab_axis_parallel_ray_on_boundary_plane() {
        // Ray travels along the box's x = 0 face: inv_dir has infinities.
        let r = Ray::new(Vec3::new(0.0, 0.5, -1.0), Vec3::new(0.0, 0.0, 1.0));
        let h = r.intersect_aabb(&unit_box(), f32::INFINITY);
        assert!(h.is_some(), "grazing ray on the face should hit");
    }
}
