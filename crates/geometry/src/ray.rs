//! Rays with the precomputed constants the RT-unit datapath expects.

use crate::vec3::Vec3;

/// A ray with precomputed traversal constants.
///
/// Matching §IV-D of the paper, the inverse direction (for the slab box test)
/// and the shear constants `kx/ky/kz`, `sx/sy/sz` (for the watertight triangle
/// test of Woop et al.) are computed once per ray and reused by every
/// intersection test the ray performs. The hardware receives these through the
/// register file; here they are plain fields.
///
/// # Examples
///
/// ```
/// use hsu_geometry::{Ray, Vec3};
/// let ray = Ray::new(Vec3::ZERO, Vec3::new(0.0, 0.0, 1.0));
/// assert_eq!(ray.inv_dir.z, 1.0);
/// assert_eq!(ray.kz, 2); // z is the dominant axis
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ray {
    /// Ray origin.
    pub origin: Vec3,
    /// Ray direction (not required to be normalized).
    pub dir: Vec3,
    /// Component-wise reciprocal of `dir`, precomputed for the slab test.
    pub inv_dir: Vec3,
    /// Shear dimension indices for the watertight triangle test. `kz` is the
    /// dominant axis of `dir`; `kx`/`ky` follow in cyclic order, swapped when
    /// `dir[kz]` is negative to preserve winding.
    pub kx: usize,
    /// See [`Ray::kx`].
    pub ky: usize,
    /// See [`Ray::kx`].
    pub kz: usize,
    /// Shear constants `S = (dir[kx]/dir[kz], dir[ky]/dir[kz], 1/dir[kz])`.
    pub shear: Vec3,
}

impl Ray {
    /// Creates a ray and precomputes its traversal constants.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `dir` is the zero vector (the dominant-axis
    /// shear constants would be undefined).
    pub fn new(origin: Vec3, dir: Vec3) -> Self {
        debug_assert!(
            dir != Vec3::ZERO,
            "ray direction must be non-zero to define shear constants"
        );
        let kz = dir.max_abs_axis();
        let mut kx = (kz + 1) % 3;
        let mut ky = (kx + 1) % 3;
        // Swap kx and ky to preserve triangle winding direction when the
        // dominant component is negative (Woop et al., JCGT 2013).
        if dir[kz] < 0.0 {
            std::mem::swap(&mut kx, &mut ky);
        }
        let shear = Vec3::new(dir[kx] / dir[kz], dir[ky] / dir[kz], 1.0 / dir[kz]);
        Ray {
            origin,
            dir,
            inv_dir: dir.recip(),
            kx,
            ky,
            kz,
            shear,
        }
    }

    /// The point `origin + t * dir`.
    #[inline]
    pub fn at(&self, t: f32) -> Vec3 {
        self.origin + self.dir * t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_walks_along_direction() {
        let r = Ray::new(Vec3::new(1.0, 0.0, 0.0), Vec3::new(0.0, 2.0, 0.0));
        assert_eq!(r.at(0.0), Vec3::new(1.0, 0.0, 0.0));
        assert_eq!(r.at(1.5), Vec3::new(1.0, 3.0, 0.0));
    }

    #[test]
    fn inv_dir_matches_reciprocal() {
        let r = Ray::new(Vec3::ZERO, Vec3::new(2.0, -4.0, 0.5));
        assert_eq!(r.inv_dir, Vec3::new(0.5, -0.25, 2.0));
    }

    #[test]
    fn shear_axes_cover_all_dimensions() {
        for dir in [
            Vec3::new(1.0, 0.2, 0.3),
            Vec3::new(0.1, -5.0, 0.3),
            Vec3::new(0.1, 0.2, 3.0),
            Vec3::new(-1.0, 0.0, 0.0),
        ] {
            let r = Ray::new(Vec3::ZERO, dir);
            let mut axes = [r.kx, r.ky, r.kz];
            axes.sort_unstable();
            assert_eq!(
                axes,
                [0, 1, 2],
                "shear axes must be a permutation for {dir}"
            );
        }
    }

    #[test]
    fn negative_dominant_axis_swaps_kx_ky() {
        let pos = Ray::new(Vec3::ZERO, Vec3::new(0.0, 0.0, 1.0));
        let neg = Ray::new(Vec3::ZERO, Vec3::new(0.0, 0.0, -1.0));
        assert_eq!(pos.kz, neg.kz);
        assert_eq!(pos.kx, neg.ky);
        assert_eq!(pos.ky, neg.kx);
    }

    #[test]
    fn shear_constants_definition() {
        let dir = Vec3::new(0.5, 0.25, 2.0);
        let r = Ray::new(Vec3::ZERO, dir);
        assert_eq!(r.kz, 2);
        assert!((r.shear.x - dir[r.kx] / dir.z).abs() < 1e-7);
        assert!((r.shear.y - dir[r.ky] / dir.z).abs() < 1e-7);
        assert!((r.shear.z - 0.5).abs() < 1e-7);
    }
}
