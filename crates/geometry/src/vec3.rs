//! Three-component vector used for rays, boxes and triangles.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Index, Mul, Neg, Sub, SubAssign};

/// A three-component single-precision vector.
///
/// The RT-unit datapath operates exclusively on `f32`, matching the
/// register-file operand format of the AMD RDNA3 `IMAGE_BVH_INTERSECT_RAY`
/// instructions the paper models its baseline on.
///
/// # Examples
///
/// ```
/// use hsu_geometry::Vec3;
/// let a = Vec3::new(1.0, 2.0, 3.0);
/// let b = Vec3::splat(2.0);
/// assert_eq!(a.dot(b), 12.0);
/// assert_eq!((a + b).x, 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Vec3 {
    /// X component.
    pub x: f32,
    /// Y component.
    pub y: f32,
    /// Z component.
    pub z: f32,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Creates a vector from its three components.
    #[inline]
    pub const fn new(x: f32, y: f32, z: f32) -> Self {
        Vec3 { x, y, z }
    }

    /// Creates a vector with all three components equal to `v`.
    #[inline]
    pub const fn splat(v: f32) -> Self {
        Vec3 { x: v, y: v, z: v }
    }

    /// Dot product with `other`.
    #[inline]
    pub fn dot(self, other: Vec3) -> f32 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Cross product with `other`.
    #[inline]
    pub fn cross(self, other: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * other.z - self.z * other.y,
            y: self.z * other.x - self.x * other.z,
            z: self.x * other.y - self.y * other.x,
        }
    }

    /// Squared Euclidean length.
    #[inline]
    pub fn length_squared(self) -> f32 {
        self.dot(self)
    }

    /// Euclidean length.
    #[inline]
    pub fn length(self) -> f32 {
        self.length_squared().sqrt()
    }

    /// Returns the vector scaled to unit length.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the vector has zero length.
    #[inline]
    pub fn normalized(self) -> Vec3 {
        let len = self.length();
        debug_assert!(len > 0.0, "cannot normalize a zero-length vector");
        self / len
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, other: Vec3) -> Vec3 {
        Vec3 {
            x: self.x.min(other.x),
            y: self.y.min(other.y),
            z: self.z.min(other.z),
        }
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, other: Vec3) -> Vec3 {
        Vec3 {
            x: self.x.max(other.x),
            y: self.y.max(other.y),
            z: self.z.max(other.z),
        }
    }

    /// Component-wise multiplication.
    #[inline]
    pub fn mul_elem(self, other: Vec3) -> Vec3 {
        Vec3 {
            x: self.x * other.x,
            y: self.y * other.y,
            z: self.z * other.z,
        }
    }

    /// Component-wise reciprocal, used to precompute the inverse ray direction.
    ///
    /// Zero components map to `±inf` following IEEE-754 semantics, which the
    /// slab test relies on for axis-parallel rays.
    #[inline]
    pub fn recip(self) -> Vec3 {
        Vec3 {
            x: 1.0 / self.x,
            y: 1.0 / self.y,
            z: 1.0 / self.z,
        }
    }

    /// Index of the component with the largest absolute value (0, 1 or 2).
    ///
    /// The watertight triangle test uses this to pick the shear dimension `kz`.
    #[inline]
    pub fn max_abs_axis(self) -> usize {
        let ax = self.x.abs();
        let ay = self.y.abs();
        let az = self.z.abs();
        if ax >= ay && ax >= az {
            0
        } else if ay >= az {
            1
        } else {
            2
        }
    }

    /// The smallest component value.
    #[inline]
    pub fn min_element(self) -> f32 {
        self.x.min(self.y).min(self.z)
    }

    /// The largest component value.
    #[inline]
    pub fn max_element(self) -> f32 {
        self.x.max(self.y).max(self.z)
    }

    /// Returns `true` if all components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// Returns the components as an array `[x, y, z]`.
    #[inline]
    pub fn to_array(self) -> [f32; 3] {
        [self.x, self.y, self.z]
    }
}

impl From<[f32; 3]> for Vec3 {
    #[inline]
    fn from(a: [f32; 3]) -> Self {
        Vec3::new(a[0], a[1], a[2])
    }
}

impl From<Vec3> for [f32; 3] {
    #[inline]
    fn from(v: Vec3) -> Self {
        v.to_array()
    }
}

impl Index<usize> for Vec3 {
    type Output = f32;

    /// Indexes the vector by axis: 0 → x, 1 → y, 2 → z.
    ///
    /// # Panics
    ///
    /// Panics if `index > 2`.
    #[inline]
    fn index(&self, index: usize) -> &f32 {
        match index {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index out of range: {index}"),
        }
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3 {
            x: self.x + rhs.x,
            y: self.y + rhs.y,
            z: self.z + rhs.z,
        }
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3 {
            x: self.x - rhs.x,
            y: self.y - rhs.y,
            z: self.z - rhs.z,
        }
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec3) {
        *self = *self - rhs;
    }
}

impl Mul<f32> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: f32) -> Vec3 {
        Vec3 {
            x: self.x * rhs,
            y: self.y * rhs,
            z: self.z * rhs,
        }
    }
}

impl Mul<Vec3> for f32 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: Vec3) -> Vec3 {
        rhs * self
    }
}

impl Div<f32> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, rhs: f32) -> Vec3 {
        Vec3 {
            x: self.x / rhs,
            y: self.y / rhs,
            z: self.z / rhs,
        }
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3 {
            x: -self.x,
            y: -self.y,
            z: -self.z,
        }
    }
}

impl fmt::Display for Vec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let v = Vec3::new(1.0, -2.0, 3.5);
        assert_eq!(v[0], 1.0);
        assert_eq!(v[1], -2.0);
        assert_eq!(v[2], 3.5);
        assert_eq!(Vec3::splat(4.0), Vec3::new(4.0, 4.0, 4.0));
        assert_eq!(Vec3::default(), Vec3::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::new(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(b / 2.0, Vec3::new(2.0, 2.5, 3.0));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn add_sub_assign() {
        let mut v = Vec3::new(1.0, 1.0, 1.0);
        v += Vec3::splat(2.0);
        assert_eq!(v, Vec3::splat(3.0));
        v -= Vec3::splat(1.0);
        assert_eq!(v, Vec3::splat(2.0));
    }

    #[test]
    fn dot_and_cross() {
        let x = Vec3::new(1.0, 0.0, 0.0);
        let y = Vec3::new(0.0, 1.0, 0.0);
        let z = Vec3::new(0.0, 0.0, 1.0);
        assert_eq!(x.dot(y), 0.0);
        assert_eq!(x.cross(y), z);
        assert_eq!(y.cross(z), x);
        assert_eq!(z.cross(x), y);
        // Anti-commutativity.
        assert_eq!(x.cross(y), -(y.cross(x)));
    }

    #[test]
    fn lengths_and_normalization() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert_eq!(v.length_squared(), 25.0);
        assert_eq!(v.length(), 5.0);
        let n = v.normalized();
        assert!((n.length() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn min_max_and_elementwise() {
        let a = Vec3::new(1.0, 5.0, 3.0);
        let b = Vec3::new(2.0, 4.0, 3.0);
        assert_eq!(a.min(b), Vec3::new(1.0, 4.0, 3.0));
        assert_eq!(a.max(b), Vec3::new(2.0, 5.0, 3.0));
        assert_eq!(a.mul_elem(b), Vec3::new(2.0, 20.0, 9.0));
        assert_eq!(a.min_element(), 1.0);
        assert_eq!(a.max_element(), 5.0);
    }

    #[test]
    fn recip_produces_infinities_for_zero_components() {
        let v = Vec3::new(0.0, 2.0, -0.0).recip();
        assert!(v.x.is_infinite() && v.x > 0.0);
        assert_eq!(v.y, 0.5);
        assert!(v.z.is_infinite() && v.z < 0.0);
    }

    #[test]
    fn max_abs_axis_picks_dominant_dimension() {
        assert_eq!(Vec3::new(-5.0, 1.0, 2.0).max_abs_axis(), 0);
        assert_eq!(Vec3::new(0.0, -3.0, 2.0).max_abs_axis(), 1);
        assert_eq!(Vec3::new(0.5, 1.0, -2.0).max_abs_axis(), 2);
    }

    #[test]
    fn conversions() {
        let v = Vec3::from([1.0, 2.0, 3.0]);
        let a: [f32; 3] = v.into();
        assert_eq!(a, [1.0, 2.0, 3.0]);
        assert_eq!(v.to_array(), a);
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(format!("{}", Vec3::new(1.0, 2.0, 3.0)), "(1, 2, 3)");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn index_out_of_range_panics() {
        let _ = Vec3::ZERO[3];
    }
}
