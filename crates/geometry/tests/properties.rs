//! Property-based tests for the geometric golden references.

use hsu_geometry::{morton, point, Aabb, Ray, Triangle, Vec3};
use proptest::prelude::*;

fn finite_f32(range: std::ops::Range<f32>) -> impl Strategy<Value = f32> {
    prop::num::f32::NORMAL.prop_map(move |v| {
        let span = range.end - range.start;
        range.start + (v.abs() % span)
    })
}

fn vec3_in(lo: f32, hi: f32) -> impl Strategy<Value = Vec3> {
    (finite_f32(lo..hi), finite_f32(lo..hi), finite_f32(lo..hi))
        .prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn nonzero_dir() -> impl Strategy<Value = Vec3> {
    vec3_in(-1.0, 1.0).prop_filter("non-zero", |v| v.length_squared() > 1e-6)
}

proptest! {
    #[test]
    fn union_contains_both(a in vec3_in(-10.0, 10.0), b in vec3_in(-10.0, 10.0),
                           c in vec3_in(-10.0, 10.0), d in vec3_in(-10.0, 10.0)) {
        let b1 = Aabb::new(a.min(b), a.max(b));
        let b2 = Aabb::new(c.min(d), c.max(d));
        let u = b1.union(&b2);
        prop_assert!(u.contains_box(&b1));
        prop_assert!(u.contains_box(&b2));
    }

    #[test]
    fn union_surface_area_monotone(a in vec3_in(-10.0, 10.0), b in vec3_in(-10.0, 10.0),
                                   c in vec3_in(-10.0, 10.0), d in vec3_in(-10.0, 10.0)) {
        let b1 = Aabb::new(a.min(b), a.max(b));
        let b2 = Aabb::new(c.min(d), c.max(d));
        let u = b1.union(&b2);
        prop_assert!(u.surface_area() >= b1.surface_area() * 0.999);
        prop_assert!(u.surface_area() >= b2.surface_area() * 0.999);
    }

    #[test]
    fn slab_test_agrees_with_sampled_containment(
        origin in vec3_in(-5.0, 5.0),
        dir in nonzero_dir(),
        lo in vec3_in(-3.0, 0.0),
        hi in vec3_in(0.1, 3.0),
    ) {
        let aabb = Aabb::new(lo.min(hi), lo.max(hi));
        let ray = Ray::new(origin, dir);
        if let Some(hit) = ray.intersect_aabb(&aabb, f32::INFINITY) {
            prop_assert!(hit.t_near <= hit.t_far);
            prop_assert!(hit.t_near >= 0.0);
            // The midpoint of the interval must lie inside a slightly grown
            // box (float tolerance).
            let mid = ray.at(0.5 * (hit.t_near + hit.t_far));
            let grown = Aabb::new(
                aabb.min - Vec3::splat(1e-3 + aabb.extent().max_element() * 1e-3),
                aabb.max + Vec3::splat(1e-3 + aabb.extent().max_element() * 1e-3),
            );
            prop_assert!(grown.contains(mid), "midpoint {mid} outside {aabb:?}");
        } else {
            // On a miss, sampled points along the positive ray must all be
            // outside a slightly shrunk box.
            let shrink = Vec3::splat(1e-3);
            if (aabb.extent() - shrink * 2.0).min_element() > 0.0 {
                let small = Aabb::new(aabb.min + shrink, aabb.max - shrink);
                for i in 1..=64 {
                    let t = i as f32 * 0.25;
                    prop_assert!(!small.contains(ray.at(t)),
                        "missed ray enters the box at t={t}");
                }
            }
        }
    }

    #[test]
    fn triangle_hit_point_lies_on_plane(
        a in vec3_in(-2.0, 2.0), b in vec3_in(-2.0, 2.0), c in vec3_in(-2.0, 2.0),
        origin in vec3_in(-5.0, 5.0), dir in nonzero_dir(),
    ) {
        let tri = Triangle::new(a, b, c);
        let n = (b - a).cross(c - a);
        prop_assume!(n.length() > 1e-3); // skip near-degenerate triangles
        let ray = Ray::new(origin, dir);
        if let Some(hit) = tri.intersect(&ray, f32::INFINITY) {
            let p = ray.at(hit.t());
            let plane_dist = (p - a).dot(n.normalized());
            let scale = 1.0 + p.length() + hit.t().abs() * dir.length();
            prop_assert!(plane_dist.abs() < 1e-2 * scale,
                "hit point {p} off plane by {plane_dist}");
            prop_assert!(hit.t() > 0.0);
        }
    }

    #[test]
    fn triangle_hit_inside_bounds(
        a in vec3_in(-2.0, 2.0), b in vec3_in(-2.0, 2.0), c in vec3_in(-2.0, 2.0),
        origin in vec3_in(-5.0, 5.0), dir in nonzero_dir(),
    ) {
        let tri = Triangle::new(a, b, c);
        let ray = Ray::new(origin, dir);
        if let Some(hit) = tri.intersect(&ray, f32::INFINITY) {
            let p = ray.at(hit.t());
            let eps = Vec3::splat(1e-2 * (1.0 + p.length()));
            let bounds = tri.bounds();
            let grown = Aabb::new(bounds.min - eps, bounds.max + eps);
            prop_assert!(grown.contains(p));
        }
    }

    #[test]
    fn morton_preserves_octant_order(x in 0u32..1024, y in 0u32..1024, z in 0u32..1024) {
        let code = morton::encode_30(x, y, z);
        prop_assert_eq!(morton::decode_30(code), (x, y, z));
        // Doubling every coordinate strictly increases the code (unless zero).
        if x > 0 || y > 0 || z > 0 {
            let (x2, y2, z2) = ((x * 2).min(1023), (y * 2).min(1023), (z * 2).min(1023));
            if x2 >= x && y2 >= y && z2 >= z && (x2, y2, z2) != (x, y, z) {
                prop_assert!(morton::encode_30(x2, y2, z2) > code);
            }
        }
    }

    #[test]
    fn euclid_multibeat_matches_scalar(
        dim in 1usize..200,
        seed in 0u64..1000,
    ) {
        let q: Vec<f32> = (0..dim).map(|i| ((seed + i as u64) % 17) as f32 * 0.3 - 2.0).collect();
        let c: Vec<f32> = (0..dim).map(|i| ((seed * 3 + i as u64) % 23) as f32 * 0.2 - 1.5).collect();
        let direct = point::euclidean_squared(&q, &c);
        let beats = point::euclid_multibeat(&q, &c);
        prop_assert!((direct - beats).abs() <= 1e-4 * (1.0 + direct.abs()));
    }

    #[test]
    fn angular_multibeat_matches_scalar(
        dim in 1usize..200,
        seed in 0u64..1000,
    ) {
        let q: Vec<f32> = (0..dim).map(|i| ((seed + i as u64) % 13) as f32 * 0.4 - 2.0).collect();
        let c: Vec<f32> = (0..dim).map(|i| ((seed * 7 + i as u64) % 11) as f32 * 0.5 - 2.0).collect();
        let (dot_sum, norm_sum) = point::angular_multibeat(&q, &c);
        prop_assert!((dot_sum - point::dot(&q, &c)).abs() <= 1e-3 * (1.0 + dot_sum.abs()));
        prop_assert!((norm_sum - point::norm_squared(&c)).abs() <= 1e-3 * (1.0 + norm_sum.abs()));
    }

    #[test]
    fn distance_to_box_is_admissible(
        p in vec3_in(-5.0, 5.0),
        lo in vec3_in(-3.0, 0.0),
        hi in vec3_in(0.1, 3.0),
        inner in vec3_in(0.0, 1.0),
    ) {
        let aabb = Aabb::new(lo.min(hi), lo.max(hi));
        // Any point inside the box is at least distance_squared_to away.
        let s = aabb.min + inner.mul_elem(aabb.extent());
        let d_box = aabb.distance_squared_to(p);
        let d_pt = (s - p).length_squared();
        prop_assert!(d_box <= d_pt * 1.0001 + 1e-5);
    }
}
