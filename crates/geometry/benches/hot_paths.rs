//! Microbenchmarks of the geometry hot paths: scalar kernels against their
//! candidate-parallel batch forms from [`hsu_geometry::batch`].
//!
//! Three groups mirror the simulator's inner loops: point-distance batches
//! (workload construction / kNN refine), the ray-slab box test (BVH node
//! tests), and watertight triangle intersection. CI compiles these as a
//! smoke test (`cargo bench -p hsu-geometry --no-run`); run them locally to
//! quantify the batch-vs-scalar gap on a given host.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hsu_geometry::batch::{self, AabbSoA};
use hsu_geometry::point::{self, Metric, PointSet};
use hsu_geometry::{Aabb, Ray, Triangle, Vec3};
use rand::{Rng, SeedableRng};

fn rng() -> rand_chacha::ChaCha8Rng {
    rand_chacha::ChaCha8Rng::seed_from_u64(7)
}

fn bench_point_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("point_distance_batch");
    let n = 1024usize;
    for dim in [3usize, 96, 128] {
        let mut rng = rng();
        let q: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let rows: Vec<f32> = (0..n * dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let set = PointSet::from_rows(dim, rows.clone());
        group.bench_with_input(BenchmarkId::new("scalar", dim), &dim, |b, _| {
            b.iter(|| {
                let q = black_box(&q);
                set.iter()
                    .map(|c| point::euclidean_squared(q, c))
                    .sum::<f32>()
            })
        });
        group.bench_with_input(BenchmarkId::new("batch", dim), &dim, |b, _| {
            let mut out = Vec::with_capacity(n);
            b.iter(|| {
                out.clear();
                batch::euclid_to_rows(black_box(&q), black_box(&rows), &mut out);
                out.iter().sum::<f32>()
            })
        });
        group.bench_with_input(
            BenchmarkId::new("nearest_brute_force", dim),
            &dim,
            |b, _| b.iter(|| set.nearest_brute_force(black_box(&q), Metric::Euclidean)),
        );
    }
    group.finish();
}

fn bench_aabb_slab(c: &mut Criterion) {
    let mut group = c.benchmark_group("aabb_ray_slab");
    let n = 1024usize;
    let mut rng = rng();
    let boxes: Vec<Aabb> = (0..n)
        .map(|_| {
            let center = Vec3::new(
                rng.gen_range(-4.0f32..4.0),
                rng.gen_range(-4.0f32..4.0),
                rng.gen_range(-4.0f32..4.0),
            );
            Aabb::around_point(center, rng.gen_range(0.05f32..0.5))
        })
        .collect();
    let soa = AabbSoA::from_aabbs(&boxes);
    let ray = Ray::new(Vec3::new(-8.0, 0.1, -0.2), Vec3::new(1.0, 0.02, 0.03));
    group.bench_function("scalar", |b| {
        b.iter(|| {
            boxes
                .iter()
                .filter(|bx| black_box(&ray).intersect_aabb(bx, f32::INFINITY).is_some())
                .count()
        })
    });
    group.bench_function("soa", |b| {
        let mut hits = Vec::with_capacity(n);
        b.iter(|| {
            hits.clear();
            soa.intersect(black_box(&ray), f32::INFINITY, &mut hits);
            hits.iter().flatten().count()
        })
    });
    let p = Vec3::new(0.3, -0.6, 1.2);
    group.bench_function("distance_scalar", |b| {
        b.iter(|| {
            boxes
                .iter()
                .map(|bx| bx.distance_squared_to(black_box(p)))
                .sum::<f32>()
        })
    });
    group.bench_function("distance_soa", |b| {
        let mut d = Vec::with_capacity(n);
        b.iter(|| {
            d.clear();
            soa.distance_squared_to(black_box(p), &mut d);
            d.iter().sum::<f32>()
        })
    });
    group.finish();
}

fn bench_triangle(c: &mut Criterion) {
    let mut group = c.benchmark_group("triangle_intersect");
    let n = 1024usize;
    let mut rng = rng();
    let mut v = |z0: f32| {
        Vec3::new(
            rng.gen_range(-2.0f32..2.0),
            rng.gen_range(-2.0f32..2.0),
            rng.gen_range(z0..z0 + 2.0),
        )
    };
    let tris: Vec<Triangle> = (0..n)
        .map(|_| Triangle::new(v(1.0), v(1.0), v(1.0)))
        .collect();
    let ray = Ray::new(Vec3::new(0.05, -0.1, -1.0), Vec3::new(0.01, 0.02, 1.0));
    group.bench_function("scalar", |b| {
        b.iter(|| {
            tris.iter()
                .filter(|t| t.intersect(black_box(&ray), f32::INFINITY).is_some())
                .count()
        })
    });
    group.bench_function("batch", |b| {
        let mut hits = Vec::with_capacity(n);
        b.iter(|| {
            hits.clear();
            batch::triangles_intersect(black_box(&tris), black_box(&ray), f32::INFINITY, &mut hits);
            hits.iter().flatten().count()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_point_batch, bench_aabb_slab, bench_triangle
}
criterion_main!(benches);
