//! Layout-equivalence suite: the BVH4-packed and treelet-packed
//! arrangements must be *indistinguishable from [`Bvh2`] in results* —
//! same leaf visit sets, bit-identical kNN and radius neighbors — over
//! random point clouds, for every builder.
//!
//! Two layers:
//!
//! 1. proptests over generated clouds × queries × radii × treelet sizes
//!    (shrinking finds the minimal divergent tree if a packing bug slips
//!    in; `layout_equivalence.proptest-regressions` pins past finds),
//! 2. a deterministic 256-seed sweep — ChaCha-seeded clouds 0..256, one
//!    query batch each — which is the bulk-volume leg CI runs in release.

use hsu_bvh::{Bvh2, Bvh4Packed, LbvhBuilder, PointPrimitive, SahBuilder, TreeletPacked};
use hsu_geometry::Vec3;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

/// Sorts neighbors into the canonical order both layouts must agree on:
/// `(distance_bits, id)` — total, and independent of traversal order.
fn canon(mut hits: Vec<hsu_bvh::Neighbor>) -> Vec<(u32, u32)> {
    hits.sort_by_key(|n| (n.distance_squared.to_bits(), n.id));
    hits.iter()
        .map(|n| (n.distance_squared.to_bits(), n.id))
        .collect()
}

/// Asserts every layout agrees with `bvh2` on one query: leaf visit set,
/// full radius result, and truncated-K result, all bitwise.
fn assert_layouts_agree(
    bvh2: &Bvh2,
    packed4: &Bvh4Packed,
    treelet: &TreeletPacked,
    prims: &[PointPrimitive],
    query: Vec3,
    radius: f32,
    k: usize,
) {
    let leaves = bvh2.radius_visited_leaves(query, radius);
    assert_eq!(
        leaves,
        packed4.radius_visited_leaves(query, radius),
        "BVH4-packed visited a different leaf set"
    );
    // The treelet permutation renumbers nodes but not leaf ranges, so the
    // `start`-slot visit set must survive the re-pack untouched.
    assert_eq!(
        leaves,
        treelet.as_bvh2().radius_visited_leaves(query, radius),
        "treelet-packed visited a different leaf set"
    );

    let base = canon(bvh2.radius_search_counted(prims, query, radius).0);
    assert_eq!(
        base,
        canon(packed4.radius_search_counted(prims, query, radius).0),
        "BVH4-packed radius result diverged"
    );
    assert_eq!(
        base,
        canon(
            treelet
                .as_bvh2()
                .radius_search_counted(prims, query, radius)
                .0
        ),
        "treelet-packed radius result diverged"
    );

    let knn = canon(bvh2.radius_knn(prims, query, radius, k).0);
    assert_eq!(
        knn,
        canon(packed4.radius_knn(prims, query, radius, k).0),
        "BVH4-packed kNN diverged"
    );
    assert_eq!(
        knn,
        canon(treelet.as_bvh2().radius_knn(prims, query, radius, k).0),
        "treelet-packed kNN diverged"
    );
}

fn arb_points(max: usize) -> impl Strategy<Value = Vec<PointPrimitive>> {
    prop::collection::vec((-100i32..100, -100i32..100, -100i32..100), 1..max).prop_map(|pts| {
        pts.into_iter()
            .enumerate()
            .map(|(i, (x, y, z))| {
                PointPrimitive::new(
                    i as u32,
                    Vec3::new(x as f32 * 0.1, y as f32 * 0.1, z as f32 * 0.1),
                    0.2,
                )
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The core layout property: any cloud, any query ball, any treelet
    /// granularity — all three arrangements return the same answers.
    /// Integer-grid points make duplicate positions common, so the
    /// `(distance_bits, id)` tie-breaking is exercised, not just assumed.
    #[test]
    fn layouts_agree_on_random_clouds(
        prims in arb_points(250),
        qx in -12.0f32..12.0, qy in -12.0f32..12.0, qz in -12.0f32..12.0,
        r in 0.1f32..4.0,
        k in 1usize..12,
        treelet_nodes in 1usize..16,
    ) {
        let bvh2 = LbvhBuilder::default().build(&prims);
        let packed4 = Bvh4Packed::from_bvh2(&bvh2);
        let treelet = TreeletPacked::pack(&bvh2, treelet_nodes);
        assert_layouts_agree(
            &bvh2, &packed4, &treelet, &prims,
            Vec3::new(qx, qy, qz), r, k,
        );
    }

    /// Same property over the SAH builder's very different tree shapes
    /// (deeper, uneven splits stress the packing budget logic).
    #[test]
    fn layouts_agree_on_sah_trees(
        prims in arb_points(150),
        qx in -12.0f32..12.0, qy in -12.0f32..12.0, qz in -12.0f32..12.0,
        r in 0.1f32..4.0,
    ) {
        let bvh2 = SahBuilder::default().build(&prims);
        let packed4 = Bvh4Packed::from_bvh2(&bvh2);
        let treelet = TreeletPacked::pack(&bvh2, 8);
        assert_layouts_agree(
            &bvh2, &packed4, &treelet, &prims,
            Vec3::new(qx, qy, qz), r, 5,
        );
    }
}

/// The deterministic 256-seed sweep: ChaCha-generated clouds, eight
/// queries each, both packings at the staging-pool-matched granularity.
/// Debug builds sweep a prefix; release builds (`ci.sh`) sweep all 256.
#[test]
fn layouts_agree_across_256_seeds() {
    let seeds: u64 = if cfg!(debug_assertions) { 24 } else { 256 };
    for seed in 0..seeds {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let n = 64 + (seed as usize * 37) % 640;
        let prims: Vec<PointPrimitive> = (0..n)
            .map(|i| {
                PointPrimitive::new(
                    i as u32,
                    Vec3::new(
                        rng.gen_range(-2.0..2.0),
                        rng.gen_range(-2.0..2.0),
                        rng.gen_range(-2.0..2.0),
                    ),
                    0.25,
                )
            })
            .collect();
        let bvh2 = LbvhBuilder::default().build(&prims);
        let packed4 = Bvh4Packed::from_bvh2(&bvh2);
        let treelet = TreeletPacked::pack(&bvh2, 8);
        treelet
            .as_bvh2()
            .validate(&prims)
            .unwrap_or_else(|e| panic!("seed {seed}: packed tree invalid: {e}"));
        for _ in 0..8 {
            let q = Vec3::new(
                rng.gen_range(-2.5..2.5),
                rng.gen_range(-2.5..2.5),
                rng.gen_range(-2.5..2.5),
            );
            let r = rng.gen_range(0.2..1.5);
            assert_layouts_agree(&bvh2, &packed4, &treelet, &prims, q, r, 5);
        }
    }
}
