//! Property-based tests of BVH construction and search invariants.

use hsu_bvh::{Bvh4, LbvhBuilder, NodeContent, PointPrimitive, SahBuilder};
use hsu_geometry::Vec3;
use proptest::prelude::*;

fn arb_points(max: usize) -> impl Strategy<Value = Vec<PointPrimitive>> {
    prop::collection::vec((-100i32..100, -100i32..100, -100i32..100), 1..max).prop_map(|pts| {
        pts.into_iter()
            .enumerate()
            .map(|(i, (x, y, z))| {
                PointPrimitive::new(
                    i as u32,
                    Vec3::new(x as f32 * 0.1, y as f32 * 0.1, z as f32 * 0.1),
                    0.2,
                )
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lbvh_structural_invariants(prims in arb_points(300)) {
        let bvh = LbvhBuilder::default().build(&prims);
        prop_assert!(bvh.validate(&prims).is_ok());
    }

    #[test]
    fn sah_structural_invariants(prims in arb_points(150)) {
        let bvh = SahBuilder::default().build(&prims);
        prop_assert!(bvh.validate(&prims).is_ok());
    }

    #[test]
    fn radius_search_is_exact(
        prims in arb_points(250),
        qx in -12.0f32..12.0, qy in -12.0f32..12.0, qz in -12.0f32..12.0,
        r in 0.1f32..4.0,
    ) {
        let bvh = LbvhBuilder::default().build(&prims);
        let query = Vec3::new(qx, qy, qz);
        let mut got: Vec<u32> = bvh.radius_search(&prims, query, r).iter().map(|n| n.id).collect();
        got.sort_unstable();
        let mut expect: Vec<u32> = prims
            .iter()
            .filter(|p| (p.position - query).length_squared() <= r * r)
            .map(|p| p.id)
            .collect();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn nearest_is_exact(
        prims in arb_points(200),
        qx in -12.0f32..12.0, qy in -12.0f32..12.0, qz in -12.0f32..12.0,
    ) {
        let bvh = LbvhBuilder::default().build(&prims);
        let query = Vec3::new(qx, qy, qz);
        let (got, _) = bvh.nearest(&prims, query).expect("non-empty");
        let best = prims
            .iter()
            .map(|p| (p.position - query).length_squared())
            .fold(f32::INFINITY, f32::min);
        prop_assert!((got.distance_squared - best).abs() <= 1e-4 * (1.0 + best));
    }

    #[test]
    fn bvh4_collapse_preserves_results(
        prims in arb_points(200),
        qx in -10.0f32..10.0, qy in -10.0f32..10.0, qz in -10.0f32..10.0,
    ) {
        let bvh2 = LbvhBuilder::default().build(&prims);
        let bvh4 = Bvh4::from_bvh2(&bvh2);
        let query = Vec3::new(qx, qy, qz);
        let mut a: Vec<u32> = bvh2.radius_search(&prims, query, 1.0).iter().map(|n| n.id).collect();
        let mut b: Vec<u32> = bvh4
            .radius_search_counted(&prims, query, 1.0).0
            .iter().map(|n| n.id).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn leaf_counts_partition_primitives(prims in arb_points(300)) {
        let bvh = LbvhBuilder::default().max_leaf_size(3).build(&prims);
        let total: u64 = bvh
            .nodes()
            .iter()
            .filter_map(|n| match n.content {
                NodeContent::Leaf { count, .. } => Some(count as u64),
                NodeContent::Internal { .. } => None,
            })
            .sum();
        prop_assert_eq!(total, prims.len() as u64);
    }
}
