//! `.hsar` payload codec for [`Bvh2`] ([`hsu_archive::kind::BVH2`]).
//!
//! Layout (little-endian):
//!
//! ```text
//! node_count u64
//! per node: min.x f32 | min.y | min.z | max.x | max.y | max.z
//!           tag u8 — 0 = Internal { left u32, right u32 }
//!                    1 = Leaf     { start u32, count u32 }
//! prim_count u64 | prim_count × u32
//! ```
//!
//! Only the binary BVH is archived: the wide [`crate::Bvh4`] is a cheap
//! deterministic collapse of it (`Bvh4::from_bvh2`), so consumers re-derive
//! it after restore instead of storing a second copy. AABB coordinates keep
//! their exact `f32` bit patterns, so decode → re-encode is byte-identical.

use hsu_archive::payload::{put_f32, put_u32, put_u64, put_u8, Cursor};
use hsu_archive::ArchiveError;
use hsu_geometry::{Aabb, Vec3};

use crate::{Bvh2, Bvh2Node, NodeContent};

/// Encodes a binary BVH as a `BVH2` chunk payload.
pub fn bvh2_to_chunk(bvh: &Bvh2) -> Vec<u8> {
    let mut buf = Vec::with_capacity(16 + bvh.nodes.len() * 33 + bvh.prim_indices.len() * 4);
    put_u64(&mut buf, bvh.nodes.len() as u64);
    for node in &bvh.nodes {
        for v in [node.aabb.min, node.aabb.max] {
            put_f32(&mut buf, v.x);
            put_f32(&mut buf, v.y);
            put_f32(&mut buf, v.z);
        }
        match node.content {
            NodeContent::Internal { left, right } => {
                put_u8(&mut buf, 0);
                put_u32(&mut buf, left);
                put_u32(&mut buf, right);
            }
            NodeContent::Leaf { start, count } => {
                put_u8(&mut buf, 1);
                put_u32(&mut buf, start);
                put_u32(&mut buf, count);
            }
        }
    }
    put_u64(&mut buf, bvh.prim_indices.len() as u64);
    for &i in &bvh.prim_indices {
        put_u32(&mut buf, i);
    }
    buf
}

/// Decodes a `BVH2` chunk payload; `chunk` labels errors.
pub fn bvh2_from_chunk(bytes: &[u8], chunk: &str) -> Result<Bvh2, ArchiveError> {
    let fail = |detail: String| ArchiveError::Payload {
        chunk: chunk.into(),
        detail,
    };
    let mut c = Cursor::new(bytes, chunk);
    let node_count = c.u64()?;
    // A node is 6 × f32 + tag + two u32s = 33 bytes.
    let node_count = c.count(node_count, 33, "node")?;
    let mut nodes = Vec::with_capacity(node_count);
    for _ in 0..node_count {
        let mut corners = [Vec3::new(0.0, 0.0, 0.0); 2];
        for corner in &mut corners {
            let x = c.f32()?;
            let y = c.f32()?;
            let z = c.f32()?;
            *corner = Vec3::new(x, y, z);
        }
        let content = match c.u8()? {
            0 => NodeContent::Internal {
                left: c.u32()?,
                right: c.u32()?,
            },
            1 => NodeContent::Leaf {
                start: c.u32()?,
                count: c.u32()?,
            },
            other => return Err(fail(format!("unknown node tag {other}"))),
        };
        nodes.push(Bvh2Node {
            aabb: Aabb {
                min: corners[0],
                max: corners[1],
            },
            content,
        });
    }
    let prim_count = c.u64()?;
    let prim_count = c.count(prim_count, 4, "primitive index")?;
    let mut prim_indices = Vec::with_capacity(prim_count);
    for _ in 0..prim_count {
        prim_indices.push(c.u32()?);
    }
    c.finish()?;
    for node in &nodes {
        match node.content {
            NodeContent::Internal { left, right } => {
                if left as usize >= nodes.len() || right as usize >= nodes.len() {
                    return Err(fail(format!(
                        "children {left}/{right} outside {} nodes",
                        nodes.len()
                    )));
                }
            }
            NodeContent::Leaf { start, count } => {
                if (start as usize) + (count as usize) > prim_indices.len() {
                    return Err(fail(format!(
                        "leaf range {start}+{count} outside {} primitives",
                        prim_indices.len()
                    )));
                }
            }
        }
    }
    Ok(Bvh2 {
        nodes,
        prim_indices,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LbvhBuilder, PointPrimitive};

    fn sample_bvh() -> Bvh2 {
        let prims: Vec<PointPrimitive> = (0..120)
            .map(|i| {
                let f = i as f32;
                PointPrimitive::new(
                    i,
                    Vec3::new((f * 0.37).sin(), (f * 0.11).cos(), f * 0.01),
                    0.05,
                )
            })
            .collect();
        LbvhBuilder::default().build(&prims)
    }

    #[test]
    fn bvh_chunk_round_trips_with_byte_parity() {
        let bvh = sample_bvh();
        let bytes = bvh2_to_chunk(&bvh);
        let back = bvh2_from_chunk(&bytes, "t").expect("decode");
        assert_eq!(back, bvh);
        assert_eq!(bvh2_to_chunk(&back), bytes, "re-encode parity");
    }

    #[test]
    fn dangling_children_are_rejected() {
        let bvh = sample_bvh();
        let mut bytes = bvh2_to_chunk(&bvh);
        // Root is internal for 120 prims: corrupt its left-child index
        // (offset 8 for the count, 24 for the AABB, 1 for the tag).
        bytes[33..37].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = bvh2_from_chunk(&bytes, "t").unwrap_err();
        assert_eq!(err.kind(), "payload");
    }
}
