//! Point searches and ray traversal over a [`Bvh2`], with traversal
//! statistics for the instruction-trace generators.

use crate::bvh2::{Bvh2, NodeContent};
use crate::primitive::{PointPrimitive, TrianglePrimitive};
use hsu_geometry::{Ray, TriangleHit, Vec3};

/// A search result: primitive id and squared distance to the query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Dataset id of the found point.
    pub id: u32,
    /// Squared Euclidean distance to the query.
    pub distance_squared: f32,
}

/// Work counters from one traversal, used to charge HSU / baseline
/// instructions in the trace generators.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraversalStats {
    /// Internal nodes visited (each is one ray-box `RAY_INTERSECT`, testing
    /// both children's boxes).
    pub nodes_visited: u64,
    /// Leaf nodes reached.
    pub leaves_visited: u64,
    /// Primitive tests performed at leaves (distance tests / triangle tests).
    pub primitive_tests: u64,
    /// Maximum traversal-stack occupancy observed.
    pub max_stack_depth: usize,
}

impl Bvh2 {
    /// Finds all points within `radius` of `query` — the RTNN radius-search
    /// formulation of nearest neighbours (§V-A). Returns the neighbours and
    /// the traversal work counters.
    ///
    /// `prims` must be the primitive slice the BVH was built over.
    pub fn radius_search_counted(
        &self,
        prims: &[PointPrimitive],
        query: Vec3,
        radius: f32,
    ) -> (Vec<Neighbor>, TraversalStats) {
        let mut out = Vec::new();
        let mut stats = TraversalStats::default();
        if self.nodes.is_empty() {
            return (out, stats);
        }
        let r2 = radius * radius;
        let mut stack: Vec<u32> = vec![0];
        while let Some(i) = stack.pop() {
            stats.max_stack_depth = stats.max_stack_depth.max(stack.len() + 1);
            let node = &self.nodes[i as usize];
            // The leaf boxes are already dilated by the search radius, so the
            // box test is a plain containment test of the query point —
            // exactly the ray-with-tiny-extent trick RTNN plays, minus the
            // reformulation.
            match node.content {
                NodeContent::Internal { left, right } => {
                    stats.nodes_visited += 1;
                    // One RAY_INTERSECT tests both children; descend into the
                    // ones whose dilated box can contain candidates.
                    for child in [left, right] {
                        let cb = &self.nodes[child as usize].aabb;
                        if cb.distance_squared_to(query) <= r2 {
                            stack.push(child);
                        }
                    }
                }
                NodeContent::Leaf { start, count } => {
                    stats.leaves_visited += 1;
                    for s in start..start + count {
                        let prim = &prims[self.prim_indices[s as usize] as usize];
                        stats.primitive_tests += 1;
                        let d2 = (prim.position - query).length_squared();
                        if d2 <= r2 {
                            out.push(Neighbor {
                                id: prim.id,
                                distance_squared: d2,
                            });
                        }
                    }
                }
            }
        }
        (out, stats)
    }

    /// [`Bvh2::radius_search_counted`] without the statistics.
    pub fn radius_search(
        &self,
        prims: &[PointPrimitive],
        query: Vec3,
        radius: f32,
    ) -> Vec<Neighbor> {
        self.radius_search_counted(prims, query, radius).0
    }

    /// The `k` nearest neighbours within `radius` of `query`, closest first —
    /// RTNN's truncated-K formulation (KNN as a radius search that keeps the
    /// K best hits).
    ///
    /// Returns fewer than `k` when the ball holds fewer points.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn radius_knn(
        &self,
        prims: &[PointPrimitive],
        query: Vec3,
        radius: f32,
        k: usize,
    ) -> (Vec<Neighbor>, TraversalStats) {
        assert!(k > 0, "k must be positive");
        let mut stats = TraversalStats::default();
        // Max-heap of the K best (distance bits are order-preserving for
        // non-negative floats).
        let mut best: std::collections::BinaryHeap<(u32, u32)> =
            std::collections::BinaryHeap::new();
        if self.nodes.is_empty() {
            return (Vec::new(), stats);
        }
        let mut r2 = radius * radius;
        let mut stack: Vec<u32> = vec![0];
        // Scratch for the candidate-parallel leaf refine, reused across
        // leaves. Distances never depend on the shrinking ball — only the
        // sequential accept test does — so the whole bucket can be computed
        // in one SoA batch before the heap updates replay in prim order.
        let mut positions: Vec<hsu_geometry::Vec3> = Vec::new();
        let mut leaf_ids: Vec<u32> = Vec::new();
        let mut dists: Vec<f32> = Vec::new();
        while let Some(i) = stack.pop() {
            stats.max_stack_depth = stats.max_stack_depth.max(stack.len() + 1);
            let node = &self.nodes[i as usize];
            match node.content {
                NodeContent::Internal { left, right } => {
                    stats.nodes_visited += 1;
                    for child in [left, right] {
                        if self.nodes[child as usize].aabb.distance_squared_to(query) <= r2 {
                            stack.push(child);
                        }
                    }
                }
                NodeContent::Leaf { start, count } => {
                    stats.leaves_visited += 1;
                    positions.clear();
                    leaf_ids.clear();
                    for s in start..start + count {
                        let prim = &prims[self.prim_indices[s as usize] as usize];
                        positions.push(prim.position);
                        leaf_ids.push(prim.id);
                    }
                    dists.clear();
                    hsu_geometry::batch::vec3_distance_squared(query, &positions, &mut dists);
                    stats.primitive_tests += leaf_ids.len() as u64;
                    for (&id, &d2) in leaf_ids.iter().zip(&dists) {
                        if d2 <= r2 {
                            best.push((d2.to_bits(), id));
                            if best.len() > k {
                                best.pop();
                                // Shrink the search ball to the current Kth
                                // distance (RTNN's truncation optimization).
                                if let Some(&(w, _)) = best.peek() {
                                    r2 = f32::from_bits(w);
                                }
                            }
                        }
                    }
                }
            }
        }
        let mut out: Vec<Neighbor> = best
            .into_iter()
            .map(|(d, id)| Neighbor {
                id,
                distance_squared: f32::from_bits(d),
            })
            .collect();
        out.sort_by(|a, b| a.distance_squared.total_cmp(&b.distance_squared));
        (out, stats)
    }

    /// [`Bvh2::radius_knn`] over a batch of queries. Each query is
    /// answered exactly as a standalone call would answer it, so batch
    /// results are bit-identical to per-query results in any order.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn radius_knn_batch(
        &self,
        prims: &[PointPrimitive],
        queries: &[Vec3],
        radius: f32,
        k: usize,
    ) -> Vec<(Vec<Neighbor>, TraversalStats)> {
        queries
            .iter()
            .map(|&q| self.radius_knn(prims, q, radius, k))
            .collect()
    }

    /// Best-first nearest-neighbour search using box distance as the
    /// admissible bound. Returns `None` for an empty hierarchy.
    pub fn nearest(
        &self,
        prims: &[PointPrimitive],
        query: Vec3,
    ) -> Option<(Neighbor, TraversalStats)> {
        if self.nodes.is_empty() {
            return None;
        }
        let mut stats = TraversalStats::default();
        let mut best: Option<Neighbor> = None;
        // Monotone map of non-negative f32 to u64 so the binary heap can
        // order node bounds without a float wrapper type.
        fn key(d: f32) -> u64 {
            d.to_bits() as u64
        }
        let mut pq: std::collections::BinaryHeap<std::cmp::Reverse<(u64, u32)>> =
            std::collections::BinaryHeap::new();
        pq.push(std::cmp::Reverse((
            key(self.nodes[0].aabb.distance_squared_to(query)),
            0,
        )));
        while let Some(std::cmp::Reverse((bound_bits, i))) = pq.pop() {
            let bound = f32::from_bits(bound_bits as u32);
            if let Some(b) = best {
                if bound > b.distance_squared {
                    break;
                }
            }
            stats.max_stack_depth = stats.max_stack_depth.max(pq.len() + 1);
            let node = &self.nodes[i as usize];
            match node.content {
                NodeContent::Internal { left, right } => {
                    stats.nodes_visited += 1;
                    for child in [left, right] {
                        let d = self.nodes[child as usize].aabb.distance_squared_to(query);
                        if best.is_none_or(|b| d <= b.distance_squared) {
                            pq.push(std::cmp::Reverse((key(d), child)));
                        }
                    }
                }
                NodeContent::Leaf { start, count } => {
                    stats.leaves_visited += 1;
                    for s in start..start + count {
                        let prim = &prims[self.prim_indices[s as usize] as usize];
                        stats.primitive_tests += 1;
                        let d2 = (prim.position - query).length_squared();
                        if best.is_none_or(|b| d2 < b.distance_squared) {
                            best = Some(Neighbor {
                                id: prim.id,
                                distance_squared: d2,
                            });
                        }
                    }
                }
            }
        }
        best.map(|b| (b, stats))
    }

    /// Closest-hit ray traversal over triangle primitives, front-to-back with
    /// `t_max` shrinking — the classic RT-core workload.
    pub fn intersect_ray(
        &self,
        prims: &[TrianglePrimitive],
        ray: &Ray,
    ) -> (Option<(u32, TriangleHit)>, TraversalStats) {
        let mut stats = TraversalStats::default();
        let mut closest: Option<(u32, TriangleHit)> = None;
        if self.nodes.is_empty() {
            return (closest, stats);
        }
        let mut t_max = f32::INFINITY;
        let mut stack: Vec<u32> = vec![0];
        // Root box test.
        if ray.intersect_aabb(&self.nodes[0].aabb, t_max).is_none() {
            return (closest, stats);
        }
        while let Some(i) = stack.pop() {
            stats.max_stack_depth = stats.max_stack_depth.max(stack.len() + 1);
            let node = &self.nodes[i as usize];
            match node.content {
                NodeContent::Internal { left, right } => {
                    stats.nodes_visited += 1;
                    // Test both children, push far-then-near so the near child
                    // pops first (the "sort closest hit" the unit performs).
                    let lh = ray.intersect_aabb(&self.nodes[left as usize].aabb, t_max);
                    let rh = ray.intersect_aabb(&self.nodes[right as usize].aabb, t_max);
                    match (lh, rh) {
                        (Some(l), Some(r)) => {
                            if l.t_near <= r.t_near {
                                stack.push(right);
                                stack.push(left);
                            } else {
                                stack.push(left);
                                stack.push(right);
                            }
                        }
                        (Some(_), None) => stack.push(left),
                        (None, Some(_)) => stack.push(right),
                        (None, None) => {}
                    }
                }
                NodeContent::Leaf { start, count } => {
                    stats.leaves_visited += 1;
                    for s in start..start + count {
                        let prim = &prims[self.prim_indices[s as usize] as usize];
                        stats.primitive_tests += 1;
                        if let Some(hit) = prim.triangle.intersect(ray, t_max) {
                            t_max = hit.t();
                            closest = Some((prim.id, hit));
                        }
                    }
                }
            }
        }
        (closest, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{LbvhBuilder, SahBuilder};
    use hsu_geometry::Triangle;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<PointPrimitive> {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                PointPrimitive::new(
                    i as u32,
                    Vec3::new(
                        rng.gen_range(-2.0..2.0),
                        rng.gen_range(-2.0..2.0),
                        rng.gen_range(-2.0..2.0),
                    ),
                    0.25,
                )
            })
            .collect()
    }

    #[test]
    fn radius_search_matches_brute_force() {
        let prims = random_points(400, 11);
        let bvh = LbvhBuilder::default().build(&prims);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(99);
        for _ in 0..50 {
            let q = Vec3::new(
                rng.gen_range(-2.0..2.0),
                rng.gen_range(-2.0..2.0),
                rng.gen_range(-2.0..2.0),
            );
            let r = 0.25f32;
            let mut got: Vec<u32> = bvh
                .radius_search(&prims, q, r)
                .iter()
                .map(|n| n.id)
                .collect();
            got.sort_unstable();
            let mut expect: Vec<u32> = prims
                .iter()
                .filter(|p| (p.position - q).length_squared() <= r * r)
                .map(|p| p.id)
                .collect();
            expect.sort_unstable();
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn nearest_matches_brute_force() {
        let prims = random_points(300, 5);
        for builder in ["lbvh", "sah"] {
            let bvh = match builder {
                "lbvh" => LbvhBuilder::default().build(&prims),
                _ => SahBuilder::default().build(&prims),
            };
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);
            for _ in 0..40 {
                let q = Vec3::new(
                    rng.gen_range(-2.5..2.5),
                    rng.gen_range(-2.5..2.5),
                    rng.gen_range(-2.5..2.5),
                );
                let (got, _) = bvh.nearest(&prims, q).unwrap();
                let expect = prims
                    .iter()
                    .map(|p| (p.id, (p.position - q).length_squared()))
                    .min_by(|a, b| a.1.total_cmp(&b.1))
                    .unwrap();
                assert_eq!(got.id, expect.0, "{builder}: query {q}");
            }
        }
    }

    #[test]
    fn radius_knn_matches_brute_force_and_truncates() {
        let prims = random_points(500, 31);
        let bvh = LbvhBuilder::default().build(&prims);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(32);
        for _ in 0..25 {
            let q = Vec3::new(
                rng.gen_range(-2.0..2.0),
                rng.gen_range(-2.0..2.0),
                rng.gen_range(-2.0..2.0),
            );
            let r = 1.0f32;
            let k = 5;
            let (got, _) = bvh.radius_knn(&prims, q, r, k);
            // Brute force within the same ball, truncated to K.
            let mut expect: Vec<(f32, u32)> = prims
                .iter()
                .filter_map(|p| {
                    let d2 = (p.position - q).length_squared();
                    (d2 <= r * r).then_some((d2, p.id))
                })
                .collect();
            expect.sort_by(|a, b| a.0.total_cmp(&b.0));
            expect.truncate(k);
            assert_eq!(got.len(), expect.len());
            for (g, e) in got.iter().zip(&expect) {
                assert!((g.distance_squared - e.0).abs() < 1e-6, "{got:?}");
            }
        }
    }

    #[test]
    fn radius_knn_batch_matches_per_query_search() {
        let prims = random_points(700, 41);
        let bvh = LbvhBuilder::default().build(&prims);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);
        let queries: Vec<Vec3> = (0..9)
            .map(|_| {
                Vec3::new(
                    rng.gen_range(-2.0..2.0),
                    rng.gen_range(-2.0..2.0),
                    rng.gen_range(-2.0..2.0),
                )
            })
            .collect();
        let batched = bvh.radius_knn_batch(&prims, &queries, 0.8, 4);
        assert_eq!(batched.len(), queries.len());
        for (&q, (hits, stats)) in queries.iter().zip(&batched) {
            let (solo_hits, solo_stats) = bvh.radius_knn(&prims, q, 0.8, 4);
            assert_eq!(solo_stats, *stats);
            assert_eq!(solo_hits.len(), hits.len());
            for (a, b) in solo_hits.iter().zip(hits) {
                assert_eq!(a.id, b.id);
                assert_eq!(a.distance_squared.to_bits(), b.distance_squared.to_bits());
            }
        }
    }

    #[test]
    fn radius_knn_shrinking_ball_prunes_work() {
        let prims = random_points(2000, 33);
        let bvh = LbvhBuilder::default().build(&prims);
        let q = Vec3::ZERO;
        let (_, knn_stats) = bvh.radius_knn(&prims, q, 3.0, 3);
        let (_, full_stats) = bvh.radius_search_counted(&prims, q, 3.0);
        assert!(
            knn_stats.primitive_tests < full_stats.primitive_tests,
            "truncation must prune: {} vs {}",
            knn_stats.primitive_tests,
            full_stats.primitive_tests
        );
    }

    #[test]
    fn traversal_stats_reflect_culling() {
        let prims = random_points(512, 2);
        let bvh = LbvhBuilder::default().build(&prims);
        let (_, stats) = bvh.radius_search_counted(&prims, Vec3::ZERO, 0.2);
        // The BVH must cull most of the 511 internal nodes.
        assert!(stats.nodes_visited < 300, "visited {}", stats.nodes_visited);
        assert!(stats.primitive_tests < 512);
        assert!(stats.max_stack_depth > 0);
        // Paper §VI-C: fewer than 200 distance tests per query on 3-D sets.
        assert!(
            stats.primitive_tests < 200,
            "tests {}",
            stats.primitive_tests
        );
    }

    #[test]
    fn empty_bvh_searches() {
        let prims: Vec<PointPrimitive> = Vec::new();
        let bvh = LbvhBuilder::default().build(&prims);
        assert!(bvh.radius_search(&prims, Vec3::ZERO, 1.0).is_empty());
        assert!(bvh.nearest(&prims, Vec3::ZERO).is_none());
    }

    #[test]
    fn ray_traversal_finds_closest_triangle() {
        // A corridor of parallel quads; the ray must report the nearest.
        let mut tris = Vec::new();
        for (i, z) in [1.0f32, 2.0, 3.0, 4.0].iter().enumerate() {
            tris.push(TrianglePrimitive {
                id: i as u32,
                triangle: Triangle::new(
                    Vec3::new(-1.0, -1.0, *z),
                    Vec3::new(3.0, -1.0, *z),
                    Vec3::new(-1.0, 3.0, *z),
                ),
            });
        }
        let bvh = LbvhBuilder::default().max_leaf_size(1).build(&tris);
        let ray = Ray::new(Vec3::new(0.0, 0.0, 0.0), Vec3::new(0.0, 0.0, 1.0));
        let (hit, stats) = bvh.intersect_ray(&tris, &ray);
        let (id, h) = hit.expect("must hit the corridor");
        assert_eq!(id, 0);
        assert!((h.t() - 1.0).abs() < 1e-5);
        assert!(stats.primitive_tests >= 1);

        // A ray missing everything.
        let miss = Ray::new(Vec3::new(50.0, 50.0, 0.0), Vec3::new(0.0, 0.0, 1.0));
        let (hit, _) = bvh.intersect_ray(&tris, &miss);
        assert!(hit.is_none());
    }
}
