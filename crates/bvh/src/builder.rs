//! BVH construction: fast LBVH (Morton) and quality SAH builders.

use crate::bvh2::{Bvh2, Bvh2Node, NodeContent};
use crate::primitive::Primitive;
use hsu_geometry::{morton, Aabb};

/// Builds a linear BVH by sorting primitives along the Morton curve and
/// splitting top-down at the highest differing code bit — the Karras 2012
/// construction the paper's BVH-NN uses ("known for its fast construction
/// time but not for its quality", §VI-E).
///
/// # Examples
///
/// ```
/// use hsu_bvh::{LbvhBuilder, PointPrimitive};
/// use hsu_geometry::Vec3;
/// let prims = vec![
///     PointPrimitive::new(0, Vec3::ZERO, 0.1),
///     PointPrimitive::new(1, Vec3::splat(1.0), 0.1),
/// ];
/// let bvh = LbvhBuilder::default().max_leaf_size(1).build(&prims);
/// assert_eq!(bvh.primitive_count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct LbvhBuilder {
    max_leaf_size: usize,
}

impl Default for LbvhBuilder {
    /// One primitive per leaf, matching the paper ("Each leaf node contains
    /// exactly one point in BVH-NN", §VI-C).
    fn default() -> Self {
        LbvhBuilder { max_leaf_size: 1 }
    }
}

impl LbvhBuilder {
    /// Creates a builder with the default single-primitive leaves.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the maximum number of primitives per leaf.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn max_leaf_size(mut self, n: usize) -> Self {
        assert!(n > 0, "leaf size must be positive");
        self.max_leaf_size = n;
        self
    }

    /// Builds the hierarchy. An empty primitive slice yields an empty BVH.
    pub fn build<P: Primitive>(&self, prims: &[P]) -> Bvh2 {
        if prims.is_empty() {
            return Bvh2 {
                nodes: Vec::new(),
                prim_indices: Vec::new(),
            };
        }
        let scene = Aabb::from_points(prims.iter().map(|p| p.centroid()));
        let mut order: Vec<(u64, u32)> = prims
            .iter()
            .enumerate()
            .map(|(i, p)| (morton::code_63(p.centroid(), &scene), i as u32))
            .collect();
        order.sort_unstable();
        let codes: Vec<u64> = order.iter().map(|&(c, _)| c).collect();
        let prim_indices: Vec<u32> = order.iter().map(|&(_, i)| i).collect();

        let mut builder = TopDown {
            prims,
            prim_indices,
            nodes: Vec::with_capacity(2 * prims.len()),
            max_leaf_size: self.max_leaf_size,
        };
        builder.nodes.push(placeholder_node());
        builder.build_lbvh(0, 0, prims.len(), &codes);
        Bvh2 {
            nodes: builder.nodes,
            prim_indices: builder.prim_indices,
        }
    }
}

/// Builds a BVH with a full-sweep surface area heuristic — the quality
/// reference the paper points to for future improvement of BVH-NN (§VI-E).
#[derive(Debug, Clone)]
pub struct SahBuilder {
    max_leaf_size: usize,
    traversal_cost: f32,
    intersect_cost: f32,
}

impl Default for SahBuilder {
    fn default() -> Self {
        SahBuilder {
            max_leaf_size: 2,
            traversal_cost: 1.0,
            intersect_cost: 1.0,
        }
    }
}

impl SahBuilder {
    /// Creates a builder with default costs.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the maximum number of primitives per leaf.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn max_leaf_size(mut self, n: usize) -> Self {
        assert!(n > 0, "leaf size must be positive");
        self.max_leaf_size = n;
        self
    }

    /// Builds the hierarchy. An empty primitive slice yields an empty BVH.
    pub fn build<P: Primitive>(&self, prims: &[P]) -> Bvh2 {
        if prims.is_empty() {
            return Bvh2 {
                nodes: Vec::new(),
                prim_indices: Vec::new(),
            };
        }
        let prim_indices: Vec<u32> = (0..prims.len() as u32).collect();
        let mut builder = TopDown {
            prims,
            prim_indices,
            nodes: Vec::with_capacity(2 * prims.len()),
            max_leaf_size: self.max_leaf_size,
        };
        builder.nodes.push(placeholder_node());
        builder.build_sah(0, 0, prims.len(), self.traversal_cost, self.intersect_cost);
        Bvh2 {
            nodes: builder.nodes,
            prim_indices: builder.prim_indices,
        }
    }
}

fn placeholder_node() -> Bvh2Node {
    Bvh2Node {
        aabb: Aabb::EMPTY,
        content: NodeContent::Leaf { start: 0, count: 1 },
    }
}

struct TopDown<'a, P> {
    prims: &'a [P],
    prim_indices: Vec<u32>,
    nodes: Vec<Bvh2Node>,
    max_leaf_size: usize,
}

impl<P: Primitive> TopDown<'_, P> {
    fn range_bounds(&self, start: usize, end: usize) -> Aabb {
        self.prim_indices[start..end]
            .iter()
            .fold(Aabb::EMPTY, |acc, &i| {
                acc.union(&self.prims[i as usize].bounds())
            })
    }

    fn make_leaf(&mut self, node: usize, start: usize, end: usize) {
        self.nodes[node] = Bvh2Node {
            aabb: self.range_bounds(start, end),
            content: NodeContent::Leaf {
                start: start as u32,
                count: (end - start) as u32,
            },
        };
    }

    /// Karras-style split: partition where the highest differing Morton bit
    /// flips. Falls back to the median for ranges of identical codes.
    fn build_lbvh(&mut self, node: usize, start: usize, end: usize, codes: &[u64]) {
        if end - start <= self.max_leaf_size {
            self.make_leaf(node, start, end);
            return;
        }
        let first = codes[start];
        let last = codes[end - 1];
        let split = if first == last {
            (start + end) / 2
        } else {
            // Highest bit in which first and last differ.
            let prefix = (first ^ last).leading_zeros();
            // Binary search for the first index whose code differs from
            // `first` in that bit.
            let mask = 1u64 << (63 - prefix);
            let mut lo = start;
            let mut hi = end - 1;
            while lo + 1 < hi {
                let mid = (lo + hi) / 2;
                if codes[mid] & mask == first & mask {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            hi
        };
        let (left, right) = self.alloc_children(node);
        self.build_lbvh(left as usize, start, split, codes);
        self.build_lbvh(right as usize, split, end, codes);
        self.finish_internal(node, left, right);
    }

    /// Full-sweep SAH over the three axes on centroid order.
    fn build_sah(&mut self, node: usize, start: usize, end: usize, ct: f32, ci: f32) {
        let n = end - start;
        if n <= self.max_leaf_size {
            self.make_leaf(node, start, end);
            return;
        }
        let parent_bounds = self.range_bounds(start, end);
        let parent_sa = parent_bounds.surface_area().max(f32::MIN_POSITIVE);

        let mut best: Option<(f32, usize, usize)> = None; // (cost, axis, split)
        let mut right_sa = vec![0.0f32; n];
        for axis in 0..3 {
            self.prim_indices[start..end].sort_by(|&a, &b| {
                let ca = self.prims[a as usize].centroid()[axis];
                let cb = self.prims[b as usize].centroid()[axis];
                ca.total_cmp(&cb)
            });
            // Sweep from the right accumulating surface areas.
            let mut acc = Aabb::EMPTY;
            for i in (1..n).rev() {
                acc = acc.union(&self.prims[self.prim_indices[start + i] as usize].bounds());
                right_sa[i] = acc.surface_area();
            }
            // Sweep from the left evaluating each split.
            let mut acc = Aabb::EMPTY;
            for (i, &rsa) in right_sa.iter().enumerate().skip(1) {
                acc = acc.union(&self.prims[self.prim_indices[start + i - 1] as usize].bounds());
                let cost =
                    ct + ci * (acc.surface_area() * i as f32 + rsa * (n - i) as f32) / parent_sa;
                if best.is_none_or(|(c, _, _)| cost < c) {
                    best = Some((cost, axis, i));
                }
            }
        }

        let (best_cost, best_axis, best_split) = best.expect("n >= 2 guarantees a split");
        // Leaf if splitting is not cheaper than testing everything here.
        if best_cost >= ci * n as f32 && n <= 8 {
            self.make_leaf(node, start, end);
            return;
        }
        // Re-sort to the winning axis (it may not be the last one swept).
        self.prim_indices[start..end].sort_by(|&a, &b| {
            let ca = self.prims[a as usize].centroid()[best_axis];
            let cb = self.prims[b as usize].centroid()[best_axis];
            ca.total_cmp(&cb)
        });
        let split = start + best_split;
        let (left, right) = self.alloc_children(node);
        self.build_sah(left as usize, start, split, ct, ci);
        self.build_sah(right as usize, split, end, ct, ci);
        self.finish_internal(node, left, right);
    }

    fn alloc_children(&mut self, _node: usize) -> (u32, u32) {
        let left = self.nodes.len() as u32;
        self.nodes.push(placeholder_node());
        let right = self.nodes.len() as u32;
        self.nodes.push(placeholder_node());
        (left, right)
    }

    fn finish_internal(&mut self, node: usize, left: u32, right: u32) {
        let aabb = self.nodes[left as usize]
            .aabb
            .union(&self.nodes[right as usize].aabb);
        self.nodes[node] = Bvh2Node {
            aabb,
            content: NodeContent::Internal { left, right },
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primitive::PointPrimitive;
    use hsu_geometry::Vec3;
    use rand::{Rng, SeedableRng};

    fn random_prims(n: usize, seed: u64) -> Vec<PointPrimitive> {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                PointPrimitive::new(
                    i as u32,
                    Vec3::new(
                        rng.gen_range(-5.0..5.0),
                        rng.gen_range(-5.0..5.0),
                        rng.gen_range(-5.0..5.0),
                    ),
                    0.1,
                )
            })
            .collect()
    }

    #[test]
    fn lbvh_validates_on_random_inputs() {
        for seed in 0..5 {
            let prims = random_prims(200, seed);
            let bvh = LbvhBuilder::default().build(&prims);
            bvh.validate(&prims).unwrap();
        }
    }

    #[test]
    fn sah_validates_on_random_inputs() {
        for seed in 0..5 {
            let prims = random_prims(150, seed);
            let bvh = SahBuilder::default().build(&prims);
            bvh.validate(&prims).unwrap();
        }
    }

    #[test]
    fn empty_input_builds_empty_tree() {
        let prims: Vec<PointPrimitive> = Vec::new();
        assert_eq!(LbvhBuilder::default().build(&prims).node_count(), 0);
        assert_eq!(SahBuilder::default().build(&prims).node_count(), 0);
    }

    #[test]
    fn duplicate_positions_are_handled() {
        // All identical Morton codes force the median fallback.
        let prims: Vec<PointPrimitive> = (0..33)
            .map(|i| PointPrimitive::new(i, Vec3::splat(1.0), 0.1))
            .collect();
        let bvh = LbvhBuilder::default().build(&prims);
        bvh.validate(&prims).unwrap();
    }

    #[test]
    fn sah_quality_not_worse_than_lbvh() {
        // Sum of internal-node surface areas is the standard SAH quality
        // proxy: lower is better.
        fn quality(bvh: &Bvh2) -> f32 {
            bvh.nodes()
                .iter()
                .filter(|n| matches!(n.content, NodeContent::Internal { .. }))
                .map(|n| n.aabb.surface_area())
                .sum()
        }
        let prims = random_prims(300, 7);
        let lbvh = LbvhBuilder::default().max_leaf_size(2).build(&prims);
        let sah = SahBuilder::default().max_leaf_size(2).build(&prims);
        assert!(
            quality(&sah) <= quality(&lbvh) * 1.05,
            "SAH {} vs LBVH {}",
            quality(&sah),
            quality(&lbvh)
        );
    }

    #[test]
    fn leaf_size_respected() {
        let prims = random_prims(100, 3);
        for leaf in [1usize, 2, 4, 8] {
            let bvh = LbvhBuilder::default().max_leaf_size(leaf).build(&prims);
            for node in bvh.nodes() {
                if let NodeContent::Leaf { count, .. } = node.content {
                    assert!(count as usize <= leaf);
                }
            }
        }
    }
}
