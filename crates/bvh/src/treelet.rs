//! Treelet-packed node arrangement: the [`Bvh2`] reordered so subtrees sit
//! in cache-line-grouped runs.
//!
//! The treelet RT core stages whole cache lines and counts how often a
//! warp's walk crosses from one treelet (a staging pool's worth of
//! consecutive lines) into another. A depth-first node array scatters
//! siblings and children across the address space; this module re-packs it
//! with the classic treelet decomposition: starting from the root, each
//! treelet greedily absorbs up to `nodes_per_treelet` nodes of one subtree
//! in DFS order, and every child that does not fit becomes the root of its
//! own treelet. Parent→child hops then mostly stay inside one treelet, so
//! the staging pool turns them into hits instead of memory round trips.
//!
//! The packing is a pure permutation: the node *contents* (boxes, leaf
//! ranges) are moved verbatim and child indices rewritten, so the packed
//! tree is itself a [`Bvh2`] — traversal results are bit-exact by
//! construction, and [`TreeletPacked::as_bvh2`] hands the packed tree to
//! every existing search. `tests/layout_equivalence.rs` proves the
//! equivalence over random point clouds anyway (the permutation could get
//! a child index wrong; the tests would catch it).

use crate::bvh2::{Bvh2, Bvh2Node, NodeContent};

/// A [`Bvh2`] whose node array is grouped into treelets, plus the
/// permutation that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeletPacked {
    bvh: Bvh2,
    /// `old_to_new[old_index] == new_index` in the packed array.
    old_to_new: Vec<u32>,
    nodes_per_treelet: usize,
}

impl TreeletPacked {
    /// Re-packs `bvh2` into treelets of up to `nodes_per_treelet` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `nodes_per_treelet` is zero.
    pub fn pack(bvh2: &Bvh2, nodes_per_treelet: usize) -> Self {
        assert!(nodes_per_treelet > 0, "treelets need at least one node");
        let n = bvh2.nodes().len();
        let mut old_to_new = vec![u32::MAX; n];
        // `order[new_index] == old_index`: treelet roots queue breadth-first
        // so sibling treelets land near each other; within a treelet, nodes
        // pack depth-first from the treelet root.
        let mut order: Vec<u32> = Vec::with_capacity(n);
        let mut treelet_roots: std::collections::VecDeque<u32> = std::collections::VecDeque::new();
        if n > 0 {
            treelet_roots.push_back(0);
        }
        while let Some(root) = treelet_roots.pop_front() {
            let mut budget = nodes_per_treelet;
            let mut dfs: Vec<u32> = vec![root];
            while let Some(old) = dfs.pop() {
                if budget == 0 {
                    // Out of room: this subtree root starts a new treelet.
                    treelet_roots.push_back(old);
                    continue;
                }
                budget -= 1;
                old_to_new[old as usize] = order.len() as u32;
                order.push(old);
                if let NodeContent::Internal { left, right } = bvh2.nodes()[old as usize].content {
                    // Push right first so the left child packs immediately
                    // after its parent (the hot edge in ordered descent).
                    dfs.push(right);
                    dfs.push(left);
                }
            }
        }

        let nodes: Vec<Bvh2Node> = order
            .iter()
            .map(|&old| {
                let node = &bvh2.nodes()[old as usize];
                let content = match node.content {
                    NodeContent::Leaf { start, count } => NodeContent::Leaf { start, count },
                    NodeContent::Internal { left, right } => NodeContent::Internal {
                        left: old_to_new[left as usize],
                        right: old_to_new[right as usize],
                    },
                };
                Bvh2Node {
                    aabb: node.aabb,
                    content,
                }
            })
            .collect();
        TreeletPacked {
            bvh: Bvh2 {
                nodes,
                prim_indices: bvh2.prim_indices().to_vec(),
            },
            old_to_new,
            nodes_per_treelet,
        }
    }

    /// The packed tree, usable with every [`Bvh2`] search. The root is
    /// still index 0 (the root's treelet packs first).
    #[inline]
    pub fn as_bvh2(&self) -> &Bvh2 {
        &self.bvh
    }

    /// Where each source node landed: `old_to_new[old] == new`.
    #[inline]
    pub fn old_to_new(&self) -> &[u32] {
        &self.old_to_new
    }

    /// The packing granularity this arrangement was built with.
    #[inline]
    pub fn nodes_per_treelet(&self) -> usize {
        self.nodes_per_treelet
    }

    /// The treelet a packed node index belongs to.
    #[inline]
    pub fn treelet_of(&self, new_index: u32) -> u32 {
        new_index / self.nodes_per_treelet as u32
    }

    /// Number of treelets.
    pub fn treelet_count(&self) -> usize {
        self.bvh.nodes().len().div_ceil(self.nodes_per_treelet)
    }

    /// Fraction of parent→child edges that cross a treelet boundary — the
    /// locality figure of merit the packing minimizes (0 = every hop stays
    /// inside its treelet; a plain DFS array scores much worse at small
    /// treelet sizes).
    pub fn cross_treelet_edge_fraction(&self) -> f64 {
        let mut edges = 0u64;
        let mut crossing = 0u64;
        for (i, node) in self.bvh.nodes().iter().enumerate() {
            if let NodeContent::Internal { left, right } = node.content {
                for child in [left, right] {
                    edges += 1;
                    if self.treelet_of(i as u32) != self.treelet_of(child) {
                        crossing += 1;
                    }
                }
            }
        }
        if edges == 0 {
            0.0
        } else {
            crossing as f64 / edges as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::LbvhBuilder;
    use crate::primitive::PointPrimitive;
    use hsu_geometry::Vec3;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<PointPrimitive> {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                PointPrimitive::new(
                    i as u32,
                    Vec3::new(
                        rng.gen_range(-2.0..2.0),
                        rng.gen_range(-2.0..2.0),
                        rng.gen_range(-2.0..2.0),
                    ),
                    0.25,
                )
            })
            .collect()
    }

    #[test]
    fn packed_tree_is_a_valid_permutation() {
        let prims = random_points(600, 13);
        let bvh2 = LbvhBuilder::default().build(&prims);
        let packed = TreeletPacked::pack(&bvh2, 8);
        packed
            .as_bvh2()
            .validate(&prims)
            .expect("packed tree valid");
        assert_eq!(packed.as_bvh2().node_count(), bvh2.node_count());
        // old_to_new is a permutation and the root stays at 0.
        let mut seen = vec![false; bvh2.node_count()];
        for &new in packed.old_to_new() {
            assert!(!seen[new as usize], "slot {new} assigned twice");
            seen[new as usize] = true;
        }
        assert_eq!(packed.old_to_new()[0], 0);
    }

    #[test]
    fn search_results_are_bit_exact() {
        let prims = random_points(500, 29);
        let bvh2 = LbvhBuilder::default().build(&prims);
        let packed = TreeletPacked::pack(&bvh2, 8);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        for _ in 0..30 {
            let q = Vec3::new(
                rng.gen_range(-2.0..2.0),
                rng.gen_range(-2.0..2.0),
                rng.gen_range(-2.0..2.0),
            );
            let mut a = bvh2.radius_search(&prims, q, 0.4);
            let mut b = packed.as_bvh2().radius_search(&prims, q, 0.4);
            a.sort_by_key(|n| (n.distance_squared.to_bits(), n.id));
            b.sort_by_key(|n| (n.distance_squared.to_bits(), n.id));
            assert_eq!(a, b);
            assert_eq!(
                bvh2.radius_visited_leaves(q, 0.4),
                packed.as_bvh2().radius_visited_leaves(q, 0.4)
            );
        }
    }

    #[test]
    fn packing_improves_edge_locality_over_plain_dfs() {
        let prims = random_points(2000, 41);
        let bvh2 = LbvhBuilder::default().build(&prims);
        let packed = TreeletPacked::pack(&bvh2, 8);
        // The builder's native order, measured at the same granularity.
        let native = TreeletPacked {
            bvh: bvh2.clone(),
            old_to_new: (0..bvh2.node_count() as u32).collect(),
            nodes_per_treelet: 8,
        };
        let packed_frac = packed.cross_treelet_edge_fraction();
        let native_frac = native.cross_treelet_edge_fraction();
        assert!(
            packed_frac < native_frac,
            "treelet packing must beat the native order: {packed_frac:.3} vs {native_frac:.3}"
        );
        // A size-8 treelet of a binary tree keeps at least ~7 of its ~16
        // incident child edges internal, so the fraction stays below 1/2.
        assert!(packed_frac < 0.5, "fraction {packed_frac:.3} too high");
    }

    #[test]
    fn treelet_accounting() {
        let prims = random_points(300, 7);
        let bvh2 = LbvhBuilder::default().build(&prims);
        let packed = TreeletPacked::pack(&bvh2, 8);
        assert_eq!(
            packed.treelet_count(),
            bvh2.node_count().div_ceil(8),
            "treelets tile the node array"
        );
        assert_eq!(packed.treelet_of(0), 0);
        assert_eq!(packed.treelet_of(8), 1);
        assert_eq!(packed.nodes_per_treelet(), 8);
    }

    #[test]
    fn degenerate_trees_pack() {
        let none: Vec<PointPrimitive> = Vec::new();
        let packed = TreeletPacked::pack(&LbvhBuilder::default().build(&none), 8);
        assert_eq!(packed.treelet_count(), 0);
        assert_eq!(packed.cross_treelet_edge_fraction(), 0.0);

        let one = vec![PointPrimitive::new(0, Vec3::ZERO, 0.5)];
        let bvh2 = LbvhBuilder::default().build(&one);
        let packed = TreeletPacked::pack(&bvh2, 1);
        packed.as_bvh2().validate(&one).unwrap();
        assert_eq!(packed.treelet_count(), 1);
    }
}
