//! BVH4-packed wide nodes: the fixed-footprint memory layout the treelet
//! RT core fetches.
//!
//! [`crate::Bvh4`] is the *logical* 4-wide hierarchy (variable-length child
//! vectors, no footprint model). This module is its *memory layout*: every
//! node is exactly four child slots — four AABBs plus four child references
//! padded to the full width — so a node occupies one 128-byte line-pair
//! footprint no matter how many slots are populated:
//!
//! ```text
//! 4 × AABB   (6 × f32)   = 96 B
//! 4 × child ref (u64)    = 32 B   (tag ∣ index ∣ leaf start/count)
//!                         ------
//!                          128 B  = one RT-core wide-node fetch
//! ```
//!
//! The fixed stride is what the simulator's trace lowering charges
//! (`BVH_NODES_BASE + node * 128`) and what the treelet core's cache-line
//! staging buffers are sized against. Traversal results are bit-exact
//! versus [`crate::Bvh2`]: the child boxes are copied verbatim (same f32
//! bits, same dilated-box tests) and the leaf ranges address the same
//! primitive permutation, so radius search returns the same neighbor set
//! and kNN the same k smallest `(distance_bits, id)` pairs —
//! `tests/layout_equivalence.rs` proves both over random point clouds.

use crate::bvh2::{Bvh2, NodeContent};
use crate::bvh4::{Bvh4, Bvh4Child};
use crate::primitive::PointPrimitive;
use crate::search::{Neighbor, TraversalStats};
use hsu_geometry::{Aabb, Vec3};

/// One child slot of a packed wide node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PackedChild {
    /// Unpopulated slot (the padding that buys the fixed stride).
    #[default]
    Empty,
    /// Internal child: index into the node array.
    Node(u32),
    /// Leaf child: a range into the primitive-index permutation.
    Leaf {
        /// First slot in the primitive-index array.
        start: u32,
        /// Number of primitives.
        count: u32,
    },
}

/// One 128-byte wide node: four AABB slots and four child references.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bvh4PackedNode {
    /// Child bounds, slot-aligned with `children`. Empty slots hold
    /// [`Aabb::EMPTY`], which fails every box test.
    pub aabbs: [Aabb; 4],
    /// Child references, slot-aligned with `aabbs`.
    pub children: [PackedChild; 4],
}

/// Bytes one packed wide node occupies (the trace-lowering stride).
pub const BVH4_PACKED_NODE_BYTES: u64 = 128;

/// A BVH4 in the packed fixed-slot layout, sharing its primitive
/// permutation with the [`Bvh2`] it came from.
#[derive(Debug, Clone, PartialEq)]
pub struct Bvh4Packed {
    nodes: Vec<Bvh4PackedNode>,
    prim_indices: Vec<u32>,
    root_aabb: Aabb,
}

impl Bvh4Packed {
    /// Packs the collapse of `bvh2` into fixed-slot wide nodes.
    pub fn from_bvh2(bvh2: &Bvh2) -> Self {
        let wide = Bvh4::from_bvh2(bvh2);
        let nodes = wide
            .nodes()
            .iter()
            .map(|n| {
                let mut packed = Bvh4PackedNode {
                    aabbs: [Aabb::EMPTY; 4],
                    children: [PackedChild::Empty; 4],
                };
                for (slot, child) in n.children.iter().enumerate() {
                    packed.aabbs[slot] = *child.aabb();
                    packed.children[slot] = match *child {
                        Bvh4Child::Node { index, .. } => PackedChild::Node(index),
                        Bvh4Child::Leaf { start, count, .. } => PackedChild::Leaf { start, count },
                    };
                }
                packed
            })
            .collect();
        Bvh4Packed {
            nodes,
            prim_indices: bvh2.prim_indices().to_vec(),
            root_aabb: if bvh2.nodes().is_empty() {
                Aabb::EMPTY
            } else {
                bvh2.root().aabb
            },
        }
    }

    /// The packed node array (root at index 0).
    #[inline]
    pub fn nodes(&self) -> &[Bvh4PackedNode] {
        &self.nodes
    }

    /// The shared primitive permutation.
    #[inline]
    pub fn prim_indices(&self) -> &[u32] {
        &self.prim_indices
    }

    /// Bounds of the whole hierarchy.
    #[inline]
    pub fn root_aabb(&self) -> &Aabb {
        &self.root_aabb
    }

    /// Radius search over the packed layout; neighbor set is bit-exact
    /// versus [`Bvh2::radius_search_counted`] (output order may differ).
    pub fn radius_search_counted(
        &self,
        prims: &[PointPrimitive],
        query: Vec3,
        radius: f32,
    ) -> (Vec<Neighbor>, TraversalStats) {
        let mut out = Vec::new();
        let mut stats = TraversalStats::default();
        if self.nodes.is_empty() {
            return (out, stats);
        }
        let r2 = radius * radius;
        let mut stack: Vec<u32> = vec![0];
        while let Some(i) = stack.pop() {
            stats.max_stack_depth = stats.max_stack_depth.max(stack.len() + 1);
            stats.nodes_visited += 1;
            let node = &self.nodes[i as usize];
            for slot in 0..4 {
                // One wide RAY_INTERSECT tests all four slots; empty slots
                // hold AABB::EMPTY and fail like any culled box.
                if node.aabbs[slot].distance_squared_to(query) > r2 {
                    continue;
                }
                match node.children[slot] {
                    PackedChild::Empty => {}
                    PackedChild::Node(index) => stack.push(index),
                    PackedChild::Leaf { start, count } => {
                        stats.leaves_visited += 1;
                        for s in start..start + count {
                            let prim = &prims[self.prim_indices[s as usize] as usize];
                            stats.primitive_tests += 1;
                            let d2 = (prim.position - query).length_squared();
                            if d2 <= r2 {
                                out.push(Neighbor {
                                    id: prim.id,
                                    distance_squared: d2,
                                });
                            }
                        }
                    }
                }
            }
        }
        (out, stats)
    }

    /// Truncated-K radius search; the returned set is the k smallest
    /// `(distance_bits, id)` pairs inside the ball — bit-identical to
    /// [`Bvh2::radius_knn`] regardless of traversal order.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn radius_knn(
        &self,
        prims: &[PointPrimitive],
        query: Vec3,
        radius: f32,
        k: usize,
    ) -> (Vec<Neighbor>, TraversalStats) {
        assert!(k > 0, "k must be positive");
        let mut stats = TraversalStats::default();
        let mut best: std::collections::BinaryHeap<(u32, u32)> =
            std::collections::BinaryHeap::new();
        if self.nodes.is_empty() {
            return (Vec::new(), stats);
        }
        let mut r2 = radius * radius;
        let mut stack: Vec<u32> = vec![0];
        while let Some(i) = stack.pop() {
            stats.max_stack_depth = stats.max_stack_depth.max(stack.len() + 1);
            stats.nodes_visited += 1;
            let node = &self.nodes[i as usize];
            for slot in 0..4 {
                if node.aabbs[slot].distance_squared_to(query) > r2 {
                    continue;
                }
                match node.children[slot] {
                    PackedChild::Empty => {}
                    PackedChild::Node(index) => stack.push(index),
                    PackedChild::Leaf { start, count } => {
                        stats.leaves_visited += 1;
                        for s in start..start + count {
                            let prim = &prims[self.prim_indices[s as usize] as usize];
                            stats.primitive_tests += 1;
                            let d2 = (prim.position - query).length_squared();
                            if d2 <= r2 {
                                best.push((d2.to_bits(), prim.id));
                                if best.len() > k {
                                    best.pop();
                                    if let Some(&(w, _)) = best.peek() {
                                        r2 = f32::from_bits(w);
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        let mut out: Vec<Neighbor> = best
            .into_iter()
            .map(|(d, id)| Neighbor {
                id,
                distance_squared: f32::from_bits(d),
            })
            .collect();
        out.sort_by(|a, b| a.distance_squared.total_cmp(&b.distance_squared));
        (out, stats)
    }

    /// The leaf visit set of a radius query: the `start` slots of every
    /// leaf whose dilated box intersects the ball, sorted. Because the
    /// packed layout copies the [`Bvh2`] boxes bit for bit and shares its
    /// primitive permutation, this set is identical to
    /// [`Bvh2::radius_visited_leaves`] for every query.
    pub fn radius_visited_leaves(&self, query: Vec3, radius: f32) -> Vec<u32> {
        let r2 = radius * radius;
        let mut out = Vec::new();
        let mut stack: Vec<u32> = if self.nodes.is_empty() {
            vec![]
        } else {
            vec![0]
        };
        while let Some(i) = stack.pop() {
            let node = &self.nodes[i as usize];
            for slot in 0..4 {
                if node.aabbs[slot].distance_squared_to(query) > r2 {
                    continue;
                }
                match node.children[slot] {
                    PackedChild::Empty => {}
                    PackedChild::Node(index) => stack.push(index),
                    PackedChild::Leaf { start, .. } => out.push(start),
                }
            }
        }
        out.sort_unstable();
        out
    }
}

impl Bvh2 {
    /// The leaf visit set of a radius query — the `start` slots of every
    /// leaf whose dilated box intersects the ball, sorted. This is the
    /// layout-independent projection of "which leaves did traversal
    /// examine": a leaf's own box test decides (its ancestors' boxes
    /// contain it, so they can never cull a passing leaf), which makes the
    /// set well-defined across [`Bvh2`], [`Bvh4Packed`] and
    /// [`crate::TreeletPacked`] arrangements of the same tree.
    pub fn radius_visited_leaves(&self, query: Vec3, radius: f32) -> Vec<u32> {
        let r2 = radius * radius;
        let mut out = Vec::new();
        let mut stack: Vec<u32> = if self.nodes().is_empty() {
            vec![]
        } else {
            vec![0]
        };
        while let Some(i) = stack.pop() {
            let node = &self.nodes()[i as usize];
            match node.content {
                NodeContent::Internal { left, right } => {
                    for child in [left, right] {
                        stack.push(child);
                    }
                }
                NodeContent::Leaf { start, .. } => {
                    if node.aabb.distance_squared_to(query) <= r2 {
                        out.push(start);
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::LbvhBuilder;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<PointPrimitive> {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                PointPrimitive::new(
                    i as u32,
                    Vec3::new(
                        rng.gen_range(-2.0..2.0),
                        rng.gen_range(-2.0..2.0),
                        rng.gen_range(-2.0..2.0),
                    ),
                    0.25,
                )
            })
            .collect()
    }

    #[test]
    fn packing_mirrors_the_logical_bvh4() {
        let prims = random_points(400, 9);
        let bvh2 = LbvhBuilder::default().build(&prims);
        let wide = Bvh4::from_bvh2(&bvh2);
        let packed = Bvh4Packed::from_bvh2(&bvh2);
        assert_eq!(wide.nodes().len(), packed.nodes().len());
        for (w, p) in wide.nodes().iter().zip(packed.nodes()) {
            for (slot, child) in w.children.iter().enumerate() {
                assert_eq!(p.aabbs[slot], *child.aabb());
            }
            for slot in w.children.len()..4 {
                assert_eq!(p.children[slot], PackedChild::Empty);
            }
        }
    }

    #[test]
    fn radius_search_matches_bvh2_bitwise() {
        let prims = random_points(500, 21);
        let bvh2 = LbvhBuilder::default().build(&prims);
        let packed = Bvh4Packed::from_bvh2(&bvh2);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        for _ in 0..40 {
            let q = Vec3::new(
                rng.gen_range(-2.0..2.0),
                rng.gen_range(-2.0..2.0),
                rng.gen_range(-2.0..2.0),
            );
            let mut a = bvh2.radius_search_counted(&prims, q, 0.4).0;
            let mut b = packed.radius_search_counted(&prims, q, 0.4).0;
            a.sort_by_key(|n| (n.distance_squared.to_bits(), n.id));
            b.sort_by_key(|n| (n.distance_squared.to_bits(), n.id));
            assert_eq!(a, b);
        }
    }

    #[test]
    fn visited_leaves_match_bvh2() {
        let prims = random_points(700, 2);
        let bvh2 = LbvhBuilder::default().build(&prims);
        let packed = Bvh4Packed::from_bvh2(&bvh2);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(77);
        for _ in 0..40 {
            let q = Vec3::new(
                rng.gen_range(-2.5..2.5),
                rng.gen_range(-2.5..2.5),
                rng.gen_range(-2.5..2.5),
            );
            assert_eq!(
                bvh2.radius_visited_leaves(q, 0.6),
                packed.radius_visited_leaves(q, 0.6)
            );
        }
    }

    #[test]
    fn empty_and_single_trees_pack() {
        let none: Vec<PointPrimitive> = Vec::new();
        let packed = Bvh4Packed::from_bvh2(&LbvhBuilder::default().build(&none));
        assert!(packed.nodes().is_empty());
        assert!(packed
            .radius_search_counted(&none, Vec3::ZERO, 1.0)
            .0
            .is_empty());

        let one = vec![PointPrimitive::new(0, Vec3::ZERO, 0.5)];
        let packed = Bvh4Packed::from_bvh2(&LbvhBuilder::default().build(&one));
        assert_eq!(packed.nodes().len(), 1);
        let (hits, _) = packed.radius_search_counted(&one, Vec3::ZERO, 1.0);
        assert_eq!(hits.len(), 1);
    }
}
