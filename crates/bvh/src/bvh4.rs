//! Collapsing a binary BVH into the 4-wide hierarchy the RT unit's four-box
//! `RAY_INTERSECT` is designed for.
//!
//! The paper notes (§VI-E) that BVH-NN's *binary* tree leaves half the
//! ray-box hardware idle — "a BVH4 tree would likely have better performance
//! in our unit for this reason". This module provides that ablation: a BVH4
//! built by greedily merging each BVH2 node with its grandchildren.

use crate::bvh2::{Bvh2, NodeContent};
use crate::primitive::PointPrimitive;
use crate::search::{Neighbor, TraversalStats};
use hsu_geometry::{Aabb, Vec3};

/// A child slot of a [`Bvh4Node`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Bvh4Child {
    /// Child internal node.
    Node {
        /// Index in the node array.
        index: u32,
        /// Child bounds.
        aabb: Aabb,
    },
    /// Leaf range into the primitive-index permutation.
    Leaf {
        /// First slot in the primitive-index array.
        start: u32,
        /// Number of primitives.
        count: u32,
        /// Leaf bounds.
        aabb: Aabb,
    },
}

impl Bvh4Child {
    /// The child's bounding box.
    pub fn aabb(&self) -> &Aabb {
        match self {
            Bvh4Child::Node { aabb, .. } | Bvh4Child::Leaf { aabb, .. } => aabb,
        }
    }
}

/// One node of a [`Bvh4`]: up to four children, tested by a single
/// `RAY_INTERSECT`.
#[derive(Debug, Clone, PartialEq)]
pub struct Bvh4Node {
    /// The 1..=4 children.
    pub children: Vec<Bvh4Child>,
}

/// A 4-wide bounding volume hierarchy sharing its primitive permutation with
/// the [`Bvh2`] it was collapsed from.
#[derive(Debug, Clone, PartialEq)]
pub struct Bvh4 {
    nodes: Vec<Bvh4Node>,
    prim_indices: Vec<u32>,
    root_aabb: Aabb,
}

impl Bvh4 {
    /// Collapses a binary BVH. Each internal node adopts its grandchildren
    /// when both children are internal, producing nodes of up to 4 children.
    pub fn from_bvh2(bvh2: &Bvh2) -> Self {
        if bvh2.nodes().is_empty() {
            return Bvh4 {
                nodes: Vec::new(),
                prim_indices: Vec::new(),
                root_aabb: Aabb::EMPTY,
            };
        }
        let mut out = Bvh4 {
            nodes: Vec::new(),
            prim_indices: bvh2.prim_indices().to_vec(),
            root_aabb: bvh2.root().aabb,
        };
        // Root: if the BVH2 root is a leaf, wrap it in a single-child node.
        match bvh2.root().content {
            NodeContent::Leaf { start, count } => {
                out.nodes.push(Bvh4Node {
                    children: vec![Bvh4Child::Leaf {
                        start,
                        count,
                        aabb: bvh2.root().aabb,
                    }],
                });
            }
            NodeContent::Internal { .. } => {
                out.collapse(bvh2, 0);
            }
        }
        out
    }

    /// Recursively emits the BVH4 node for BVH2 internal node `b2`, returning
    /// its index.
    fn collapse(&mut self, bvh2: &Bvh2, b2: u32) -> u32 {
        // Gather up to four BVH2 descendants: split internal children once.
        let NodeContent::Internal { left, right } = bvh2.nodes()[b2 as usize].content else {
            unreachable!("collapse called on a leaf");
        };
        let mut slots: Vec<u32> = Vec::with_capacity(4);
        for child in [left, right] {
            match bvh2.nodes()[child as usize].content {
                NodeContent::Internal {
                    left: gl,
                    right: gr,
                } => {
                    slots.push(gl);
                    slots.push(gr);
                }
                NodeContent::Leaf { .. } => slots.push(child),
            }
        }

        let index = self.nodes.len() as u32;
        self.nodes.push(Bvh4Node {
            children: Vec::new(),
        });
        let mut children = Vec::with_capacity(slots.len());
        for s in slots {
            let node = &bvh2.nodes()[s as usize];
            match node.content {
                NodeContent::Leaf { start, count } => {
                    children.push(Bvh4Child::Leaf {
                        start,
                        count,
                        aabb: node.aabb,
                    });
                }
                NodeContent::Internal { .. } => {
                    let child_index = self.collapse(bvh2, s);
                    children.push(Bvh4Child::Node {
                        index: child_index,
                        aabb: node.aabb,
                    });
                }
            }
        }
        self.nodes[index as usize].children = children;
        index
    }

    /// The node array (root at index 0).
    #[inline]
    pub fn nodes(&self) -> &[Bvh4Node] {
        &self.nodes
    }

    /// The shared primitive permutation.
    #[inline]
    pub fn prim_indices(&self) -> &[u32] {
        &self.prim_indices
    }

    /// Bounds of the whole hierarchy.
    #[inline]
    pub fn root_aabb(&self) -> &Aabb {
        &self.root_aabb
    }

    /// Radius search equivalent to [`Bvh2::radius_search_counted`], but each
    /// visited node tests up to four child boxes with one `RAY_INTERSECT`.
    pub fn radius_search_counted(
        &self,
        prims: &[PointPrimitive],
        query: Vec3,
        radius: f32,
    ) -> (Vec<Neighbor>, TraversalStats) {
        let mut out = Vec::new();
        let mut stats = TraversalStats::default();
        if self.nodes.is_empty() {
            return (out, stats);
        }
        let r2 = radius * radius;
        let mut stack: Vec<u32> = vec![0];
        while let Some(i) = stack.pop() {
            stats.max_stack_depth = stats.max_stack_depth.max(stack.len() + 1);
            stats.nodes_visited += 1;
            for child in &self.nodes[i as usize].children {
                if child.aabb().distance_squared_to(query) > r2 {
                    continue;
                }
                match *child {
                    Bvh4Child::Node { index, .. } => stack.push(index),
                    Bvh4Child::Leaf { start, count, .. } => {
                        stats.leaves_visited += 1;
                        for s in start..start + count {
                            let prim = &prims[self.prim_indices[s as usize] as usize];
                            stats.primitive_tests += 1;
                            let d2 = (prim.position - query).length_squared();
                            if d2 <= r2 {
                                out.push(Neighbor {
                                    id: prim.id,
                                    distance_squared: d2,
                                });
                            }
                        }
                    }
                }
            }
        }
        (out, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::LbvhBuilder;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<PointPrimitive> {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                PointPrimitive::new(
                    i as u32,
                    Vec3::new(
                        rng.gen_range(-2.0..2.0),
                        rng.gen_range(-2.0..2.0),
                        rng.gen_range(-2.0..2.0),
                    ),
                    0.25,
                )
            })
            .collect()
    }

    #[test]
    fn collapse_preserves_search_results() {
        let prims = random_points(300, 17);
        let bvh2 = LbvhBuilder::default().build(&prims);
        let bvh4 = Bvh4::from_bvh2(&bvh2);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        for _ in 0..30 {
            let q = Vec3::new(
                rng.gen_range(-2.0..2.0),
                rng.gen_range(-2.0..2.0),
                rng.gen_range(-2.0..2.0),
            );
            let mut a: Vec<u32> = bvh2
                .radius_search(&prims, q, 0.3)
                .iter()
                .map(|n| n.id)
                .collect();
            let mut b: Vec<u32> = bvh4
                .radius_search_counted(&prims, q, 0.3)
                .0
                .iter()
                .map(|n| n.id)
                .collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn collapse_visits_fewer_nodes() {
        let prims = random_points(1000, 23);
        let bvh2 = LbvhBuilder::default().build(&prims);
        let bvh4 = Bvh4::from_bvh2(&bvh2);
        let q = Vec3::ZERO;
        let (_, s2) = bvh2.radius_search_counted(&prims, q, 0.5);
        let (_, s4) = bvh4.radius_search_counted(&prims, q, 0.5);
        assert!(
            s4.nodes_visited < s2.nodes_visited,
            "bvh4 {} vs bvh2 {}",
            s4.nodes_visited,
            s2.nodes_visited
        );
    }

    #[test]
    fn all_nodes_have_at_most_four_children() {
        let prims = random_points(500, 3);
        let bvh4 = Bvh4::from_bvh2(&LbvhBuilder::default().build(&prims));
        for node in bvh4.nodes() {
            assert!(!node.children.is_empty());
            assert!(node.children.len() <= 4);
        }
    }

    #[test]
    fn single_leaf_tree_collapses() {
        let prims = vec![PointPrimitive::new(0, Vec3::ZERO, 0.5)];
        let bvh4 = Bvh4::from_bvh2(&LbvhBuilder::default().build(&prims));
        assert_eq!(bvh4.nodes().len(), 1);
        let (hits, _) = bvh4.radius_search_counted(&prims, Vec3::ZERO, 1.0);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn empty_tree_collapses() {
        let prims: Vec<PointPrimitive> = Vec::new();
        let bvh4 = Bvh4::from_bvh2(&LbvhBuilder::default().build(&prims));
        assert!(bvh4.nodes().is_empty());
        let (hits, _) = bvh4.radius_search_counted(&prims, Vec3::ZERO, 1.0);
        assert!(hits.is_empty());
    }
}
