//! Primitive types a BVH can be built over.

use hsu_geometry::{Aabb, Triangle, Vec3};

/// Anything a BVH can bound: exposes an AABB and a centroid for builders.
pub trait Primitive {
    /// The primitive's bounding box (what leaf tests intersect against).
    fn bounds(&self) -> Aabb;
    /// Representative point used for Morton codes and SAH binning.
    fn centroid(&self) -> Vec3;
}

/// A data point wrapped in the RTNN-style leaf box of half-side `radius`
/// (§V-A: "leaf AABB widths at two times the search radius with each data
/// point in the center").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointPrimitive {
    /// Dataset index of the point.
    pub id: u32,
    /// The point's position.
    pub position: Vec3,
    /// Half-side of the leaf box (the search radius).
    pub radius: f32,
}

impl PointPrimitive {
    /// Creates a point primitive.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `radius` is negative or non-finite.
    pub fn new(id: u32, position: Vec3, radius: f32) -> Self {
        debug_assert!(
            radius.is_finite() && radius >= 0.0,
            "invalid radius {radius}"
        );
        PointPrimitive {
            id,
            position,
            radius,
        }
    }
}

impl Primitive for PointPrimitive {
    fn bounds(&self) -> Aabb {
        Aabb::around_point(self.position, self.radius)
    }

    fn centroid(&self) -> Vec3 {
        self.position
    }
}

/// A triangle with its scene id, for classic ray tracing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrianglePrimitive {
    /// Scene-global triangle id (returned by `RAY_INTERSECT`).
    pub id: u32,
    /// The geometry.
    pub triangle: Triangle,
}

impl Primitive for TrianglePrimitive {
    fn bounds(&self) -> Aabb {
        self.triangle.bounds()
    }

    fn centroid(&self) -> Vec3 {
        self.triangle.centroid()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_primitive_bounds_are_centred() {
        let p = PointPrimitive::new(3, Vec3::new(1.0, 2.0, 3.0), 0.25);
        let b = p.bounds();
        assert_eq!(b.center(), p.position);
        assert_eq!(b.extent(), Vec3::splat(0.5));
        assert_eq!(p.centroid(), p.position);
    }

    #[test]
    fn triangle_primitive_delegates() {
        let t = TrianglePrimitive {
            id: 9,
            triangle: Triangle::new(
                Vec3::ZERO,
                Vec3::new(2.0, 0.0, 0.0),
                Vec3::new(0.0, 2.0, 0.0),
            ),
        };
        assert_eq!(t.bounds().max, Vec3::new(2.0, 2.0, 0.0));
        assert!((t.centroid() - Vec3::new(2.0 / 3.0, 2.0 / 3.0, 0.0)).length() < 1e-6);
    }
}
