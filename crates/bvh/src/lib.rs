//! Bounding volume hierarchies for the BVH-NN workload and ray tracing.
//!
//! The paper's BVH-NN implementation (§V-A) builds a *linear BVH* (LBVH):
//! leaf AABBs of side `2r` centred on each data point, points sorted by
//! Morton code, hierarchy built with the Karras 2012 algorithm, and a
//! stack-based traversal maintained by the kernel in shared memory. This
//! crate provides:
//!
//! * [`LbvhBuilder`] — Morton-sort + top-down radix-split construction
//!   (fast, lower quality, exactly what the paper uses),
//! * [`SahBuilder`] — a binned surface-area-heuristic builder, the "more
//!   optimized BVH" the paper names as the obvious quality upgrade (§VI-E),
//! * [`Bvh2`] — the binary hierarchy with leaf primitive ranges,
//! * [`Bvh4`] — the collapsed 4-wide hierarchy matching the RT unit's
//!   four-box `RAY_INTERSECT` (§VI-E notes BVH4 would use the unit better),
//! * [`Bvh4Packed`] — the fixed-slot 128-byte wide-node memory layout of
//!   that hierarchy, the stride the trace lowering charges,
//! * [`TreeletPacked`] — the [`Bvh2`] re-permuted into cache-line-grouped
//!   treelets for the treelet-scheduled RT core's staging buffers,
//! * point radius / nearest-neighbour searches and ray traversal, each
//!   reporting the traversal statistics the trace generators charge.
//!
//! # Examples
//!
//! ```
//! use hsu_bvh::{LbvhBuilder, PointPrimitive};
//! use hsu_geometry::Vec3;
//!
//! let prims: Vec<PointPrimitive> = (0..64)
//!     .map(|i| PointPrimitive::new(i, Vec3::new(i as f32, 0.0, 0.0), 0.5))
//!     .collect();
//! let bvh = LbvhBuilder::default().build(&prims);
//! let hits = bvh.radius_search(&prims, Vec3::new(10.2, 0.0, 0.0), 1.0);
//! assert!(hits.iter().any(|h| h.id == 10));
//! ```

#![warn(missing_docs)]

pub mod archive_io;
mod builder;
mod bvh2;
mod bvh4;
mod bvh4_packed;
mod primitive;
mod search;
mod treelet;

pub use builder::{LbvhBuilder, SahBuilder};
pub use bvh2::{Bvh2, Bvh2Node, NodeContent};
pub use bvh4::{Bvh4, Bvh4Child, Bvh4Node};
pub use bvh4_packed::{Bvh4Packed, Bvh4PackedNode, PackedChild, BVH4_PACKED_NODE_BYTES};
pub use primitive::{PointPrimitive, Primitive, TrianglePrimitive};
pub use search::{Neighbor, TraversalStats};
pub use treelet::TreeletPacked;
