//! The binary BVH structure and its invariant checks.

use crate::primitive::Primitive;
use hsu_geometry::Aabb;

/// What a [`Bvh2Node`] holds: two children or a primitive range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeContent {
    /// Internal node: indices of the two children in the node array.
    Internal {
        /// Left child node index.
        left: u32,
        /// Right child node index.
        right: u32,
    },
    /// Leaf node: a range `[start, start + count)` into the primitive-index
    /// permutation.
    Leaf {
        /// First slot in the primitive-index array.
        start: u32,
        /// Number of primitives in the leaf.
        count: u32,
    },
}

/// One node of a [`Bvh2`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bvh2Node {
    /// Bounds of everything below this node.
    pub aabb: Aabb,
    /// Children or primitives.
    pub content: NodeContent,
}

/// A binary bounding volume hierarchy.
///
/// Nodes are stored in a flat array with the root at index 0; leaves address
/// a permutation of the primitive indices, so the primitive storage itself is
/// never reordered. Construct via [`crate::LbvhBuilder`] or
/// [`crate::SahBuilder`].
#[derive(Debug, Clone, PartialEq)]
pub struct Bvh2 {
    pub(crate) nodes: Vec<Bvh2Node>,
    pub(crate) prim_indices: Vec<u32>,
}

impl Bvh2 {
    /// The node array (root at index 0).
    #[inline]
    pub fn nodes(&self) -> &[Bvh2Node] {
        &self.nodes
    }

    /// The leaf-order permutation of primitive indices.
    #[inline]
    pub fn prim_indices(&self) -> &[u32] {
        &self.prim_indices
    }

    /// The root node.
    ///
    /// # Panics
    ///
    /// Panics if the BVH is empty.
    #[inline]
    pub fn root(&self) -> &Bvh2Node {
        &self.nodes[0]
    }

    /// Number of primitives the hierarchy indexes.
    #[inline]
    pub fn primitive_count(&self) -> usize {
        self.prim_indices.len()
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Maximum leaf depth (root = 0); bounds the traversal stack.
    pub fn depth(&self) -> usize {
        fn walk(nodes: &[Bvh2Node], i: u32, d: usize) -> usize {
            match nodes[i as usize].content {
                NodeContent::Leaf { .. } => d,
                NodeContent::Internal { left, right } => {
                    walk(nodes, left, d + 1).max(walk(nodes, right, d + 1))
                }
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            walk(&self.nodes, 0, 0)
        }
    }

    /// Refits every node's bounds bottom-up to match moved primitives,
    /// without changing the topology — the cheap update used for dynamic
    /// scenes (Wald et al. 2007, cited by the paper as BVH background).
    ///
    /// The tree quality degrades as primitives drift from their build-time
    /// positions; rebuild when traversal statistics regress.
    ///
    /// # Panics
    ///
    /// Panics if `prims` has a different length than the build-time set.
    pub fn refit<P: Primitive>(&mut self, prims: &[P]) {
        assert_eq!(
            self.prim_indices.len(),
            prims.len(),
            "refit requires the same primitive count as the build"
        );
        if self.nodes.is_empty() {
            return;
        }
        // Nodes were allocated parent-before-child, so a reverse sweep sees
        // children before parents.
        for i in (0..self.nodes.len()).rev() {
            let aabb = match self.nodes[i].content {
                NodeContent::Leaf { start, count } => self.prim_indices
                    [start as usize..(start + count) as usize]
                    .iter()
                    .fold(Aabb::EMPTY, |acc, &p| {
                        acc.union(&prims[p as usize].bounds())
                    }),
                NodeContent::Internal { left, right } => self.nodes[left as usize]
                    .aabb
                    .union(&self.nodes[right as usize].aabb),
            };
            self.nodes[i].aabb = aabb;
        }
    }

    /// Validates the structural invariants against the source primitives:
    ///
    /// * every parent box contains its children's boxes,
    /// * every leaf box contains its primitives' boxes,
    /// * the primitive-index array is a permutation of `0..n`,
    /// * every node is reachable exactly once.
    ///
    /// Returns an error description on the first violation. Used by tests and
    /// the property suite; release builds never call this on the hot path.
    pub fn validate<P: Primitive>(&self, prims: &[P]) -> Result<(), String> {
        if prims.is_empty() {
            return if self.nodes.is_empty() {
                Ok(())
            } else {
                Err("nodes present for empty primitive set".into())
            };
        }
        if self.prim_indices.len() != prims.len() {
            return Err(format!(
                "index count {} != primitive count {}",
                self.prim_indices.len(),
                prims.len()
            ));
        }
        let mut seen = vec![false; prims.len()];
        for &i in &self.prim_indices {
            let i = i as usize;
            if i >= prims.len() {
                return Err(format!("primitive index {i} out of range"));
            }
            if seen[i] {
                return Err(format!("primitive index {i} duplicated"));
            }
            seen[i] = true;
        }
        if !seen.iter().all(|&s| s) {
            return Err("primitive indices are not a permutation".into());
        }

        let mut visited = vec![false; self.nodes.len()];
        let mut stack = vec![0u32];
        let mut leaf_prims = 0usize;
        while let Some(i) = stack.pop() {
            let idx = i as usize;
            if idx >= self.nodes.len() {
                return Err(format!("node index {idx} out of range"));
            }
            if visited[idx] {
                return Err(format!("node {idx} reachable twice (cycle or DAG)"));
            }
            visited[idx] = true;
            let node = &self.nodes[idx];
            match node.content {
                NodeContent::Internal { left, right } => {
                    for child in [left, right] {
                        let cb = &self.nodes[child as usize].aabb;
                        if !node.aabb.contains_box(cb) {
                            return Err(format!("node {idx} does not contain child {child}"));
                        }
                    }
                    stack.push(left);
                    stack.push(right);
                }
                NodeContent::Leaf { start, count } => {
                    if count == 0 {
                        return Err(format!("leaf {idx} is empty"));
                    }
                    leaf_prims += count as usize;
                    for s in start..start + count {
                        let prim = &prims[self.prim_indices[s as usize] as usize];
                        if !node.aabb.contains_box(&prim.bounds()) {
                            return Err(format!("leaf {idx} does not contain primitive"));
                        }
                    }
                }
            }
        }
        if leaf_prims != prims.len() {
            return Err(format!(
                "leaves cover {leaf_prims} primitives, expected {}",
                prims.len()
            ));
        }
        if !visited.iter().all(|&v| v) {
            return Err("unreachable nodes present".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::LbvhBuilder;
    use crate::primitive::PointPrimitive;
    use hsu_geometry::Vec3;

    fn grid_prims(n: usize) -> Vec<PointPrimitive> {
        (0..n)
            .map(|i| {
                let x = (i % 10) as f32;
                let y = ((i / 10) % 10) as f32;
                let z = (i / 100) as f32;
                PointPrimitive::new(i as u32, Vec3::new(x, y, z), 0.3)
            })
            .collect()
    }

    #[test]
    fn built_tree_validates() {
        let prims = grid_prims(137);
        let bvh = LbvhBuilder::default().build(&prims);
        bvh.validate(&prims).unwrap();
        assert_eq!(bvh.primitive_count(), 137);
        assert!(bvh.node_count() >= 137 / 4);
        assert!(bvh.depth() > 0);
    }

    #[test]
    fn root_bounds_everything() {
        let prims = grid_prims(64);
        let bvh = LbvhBuilder::default().build(&prims);
        for p in &prims {
            assert!(bvh.root().aabb.contains_box(&p.bounds()));
        }
    }

    #[test]
    fn refit_tracks_moved_primitives() {
        let mut prims = grid_prims(120);
        let mut bvh = LbvhBuilder::default().build(&prims);
        // Drift every point and refit.
        for p in &mut prims {
            p.position += Vec3::new(0.5, -0.25, 0.1);
        }
        bvh.refit(&prims);
        bvh.validate(&prims).expect("refit tree must stay valid");
        // Search still exact after the drift.
        let q = prims[60].position;
        let mut got: Vec<u32> = bvh
            .radius_search(&prims, q, 1.0)
            .iter()
            .map(|n| n.id)
            .collect();
        got.sort_unstable();
        let mut expect: Vec<u32> = prims
            .iter()
            .filter(|p| (p.position - q).length_squared() <= 1.0)
            .map(|p| p.id)
            .collect();
        expect.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn single_primitive_tree() {
        let prims = vec![PointPrimitive::new(0, Vec3::ZERO, 1.0)];
        let bvh = LbvhBuilder::default().build(&prims);
        bvh.validate(&prims).unwrap();
        assert_eq!(bvh.node_count(), 1);
        assert!(matches!(
            bvh.root().content,
            NodeContent::Leaf { count: 1, .. }
        ));
        assert_eq!(bvh.depth(), 0);
    }
}
