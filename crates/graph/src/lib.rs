//! GGNN-style hierarchical graph index for approximate nearest neighbours.
//!
//! GGNN (§V-A) is the paper's state-of-the-art GPU ANN baseline for
//! high-dimensional data: a hierarchical navigable-small-world graph searched
//! with a bounded priority queue ("parallel cache") of nodes to visit and the
//! current best K. Its distance tests are exactly what the HSU's
//! `POINT_EUCLID`/`POINT_ANGULAR` instructions accelerate, while the queue
//! maintenance stays on the SIMT core (§VI-D).
//!
//! This crate implements the same structure as a layered graph:
//!
//! * [`HnswGraph::build`] — insert points with geometrically-distributed
//!   levels, connecting each to its `m` nearest neighbours per layer
//!   (neighbour selection by plain distance, as in GGNN's kNN graph),
//! * [`HnswGraph::search`] — greedy descent through the upper layers, then
//!   bounded best-first search with an `ef`-sized candidate queue on the
//!   bottom layer,
//! * [`GraphStats`] — distance tests vs. queue operations, the split that
//!   drives the paper's Fig. 7 offloadable-cycle analysis.
//!
//! # Examples
//!
//! ```
//! use hsu_geometry::point::{Metric, PointSet};
//! use hsu_graph::{GraphConfig, HnswGraph};
//!
//! let data = PointSet::from_rows(2, (0..200).map(|i| i as f32 * 0.1).collect());
//! let graph = HnswGraph::build(&data, Metric::Euclidean, GraphConfig::default(), 7);
//! let (hits, _) = graph.search(&data, &[3.05, 3.15], 2, 16);
//! assert_eq!(hits.len(), 2);
//! ```

#![warn(missing_docs)]

pub mod archive_io;

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use hsu_geometry::point::{Metric, PointSet};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Construction parameters of the hierarchical graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphConfig {
    /// Out-degree per node per layer (GGNN's k-build; HNSW's M).
    pub m: usize,
    /// Candidate-queue width during construction.
    pub ef_construction: usize,
    /// Level-assignment factor: P(level >= l) = (1/level_base)^l.
    pub level_base: f64,
}

impl Default for GraphConfig {
    fn default() -> Self {
        GraphConfig {
            m: 16,
            ef_construction: 64,
            level_base: 16.0,
        }
    }
}

/// Search-effort counters.
///
/// `distance_tests` are HSU-offloadable; `queue_ops` model the parallel-cache
/// maintenance the paper explicitly does *not* accelerate (§VI-C).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GraphStats {
    /// Full distance computations.
    pub distance_tests: u64,
    /// Priority-queue / visited-cache operations.
    pub queue_ops: u64,
    /// Graph edges followed (node data loads).
    pub hops: u64,
}

/// A layered navigable-small-world graph over a [`PointSet`].
#[derive(Debug, Clone)]
pub struct HnswGraph {
    /// `layers[l][node]` = adjacency list of `node` at layer `l`. Nodes not
    /// present at a layer have an empty list.
    layers: Vec<Vec<Vec<u32>>>,
    /// Highest layer each node appears in.
    node_levels: Vec<u8>,
    entry_point: u32,
    metric: Metric,
    config: GraphConfig,
}

impl HnswGraph {
    /// Builds the graph by sequential insertion.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or the config degree is zero.
    pub fn build(data: &PointSet, metric: Metric, config: GraphConfig, seed: u64) -> Self {
        assert!(
            !data.is_empty(),
            "cannot build a graph over an empty point set"
        );
        assert!(config.m > 0, "graph degree must be positive");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let n = data.len();

        // Draw levels up-front so the layer count is known.
        let levels: Vec<u8> = (0..n)
            .map(|_| {
                let mut l = 0u8;
                while l < 12 && rng.gen::<f64>() < 1.0 / config.level_base {
                    l += 1;
                }
                l
            })
            .collect();
        let max_level = *levels.iter().max().unwrap() as usize;
        let mut graph = HnswGraph {
            layers: (0..=max_level).map(|_| vec![Vec::new(); n]).collect(),
            node_levels: levels,
            entry_point: 0,
            metric,
            config,
        };
        // Insert in index order; the running entry point is the
        // highest-level node inserted so far (standard HNSW bookkeeping, so
        // no node is ever searched above its own level).
        graph.entry_point = 0;
        for id in 1..n as u32 {
            graph.insert(data, id);
            if graph.node_levels[id as usize] > graph.node_levels[graph.entry_point as usize] {
                graph.entry_point = id;
            }
        }
        graph
    }

    fn insert(&mut self, data: &PointSet, id: u32) {
        let q = data.point(id as usize);
        let node_level = self.node_levels[id as usize] as usize;
        let entry_level = self.node_levels[self.entry_point as usize] as usize;
        let mut entry = self.entry_point;

        // Greedy descent on the entry's layers above the node's level.
        let mut stats = GraphStats::default();
        for l in ((node_level + 1)..=entry_level).rev() {
            entry = self.greedy_closest(data, q, entry, l, &mut stats);
        }
        // Connect on each layer from min(node, entry) level down to 0.
        for l in (0..=node_level.min(entry_level)).rev() {
            let (candidates, _) =
                self.layer_search(data, q, entry, l, self.config.ef_construction, &mut stats);
            // Standard HNSW: the base layer carries twice the degree, which
            // keeps outliers reachable after back-edge pruning.
            let m = if l == 0 {
                self.config.m * 2
            } else {
                self.config.m
            };
            let chosen = self.select_neighbors_heuristic(data, &candidates, m);
            if let Some(&(best, _)) = candidates.first() {
                entry = best;
            }
            for &c in &chosen {
                self.layers[l][id as usize].push(c);
                let back = &mut self.layers[l][c as usize];
                back.push(id);
                // Prune overfull back-edge lists with the same heuristic.
                if back.len() > m {
                    let cp = data.point(c as usize);
                    let mut scored: Vec<(u32, f32)> = self.layers[l][c as usize]
                        .iter()
                        .map(|&b| (b, self.metric.distance(cp, data.point(b as usize))))
                        .collect();
                    scored.sort_by(|a, b| a.1.total_cmp(&b.1));
                    let kept = self.select_neighbors_heuristic(data, &scored, m);
                    self.layers[l][c as usize] = kept;
                }
            }
        }
    }

    /// HNSW's diversity heuristic (Malkov & Yashunin, alg. 4): keep a
    /// candidate only if it is closer to the query point than to every
    /// already-kept neighbour, so edges bridge clusters instead of piling up
    /// inside one; pruned candidates back-fill remaining slots.
    fn select_neighbors_heuristic(
        &self,
        data: &PointSet,
        candidates_sorted: &[(u32, f32)],
        m: usize,
    ) -> Vec<u32> {
        let mut kept: Vec<u32> = Vec::with_capacity(m);
        let mut pruned: Vec<u32> = Vec::new();
        for &(c, dc) in candidates_sorted {
            if kept.len() >= m {
                break;
            }
            let cp = data.point(c as usize);
            let diverse = kept
                .iter()
                .all(|&r| self.metric.distance(cp, data.point(r as usize)) > dc);
            if diverse {
                kept.push(c);
            } else {
                pruned.push(c);
            }
        }
        // keepPrunedConnections: refill to m from the pruned list.
        for c in pruned {
            if kept.len() >= m {
                break;
            }
            kept.push(c);
        }
        kept
    }

    /// Greedy walk to the locally-closest node on one layer.
    ///
    /// Each visited node's whole adjacency list is gathered into a dense
    /// block and its distances computed candidate-parallel
    /// ([`batch::metric_to_rows`]) before the sequential min scan — the
    /// distance values, work counters, and chosen walk are bit-identical to
    /// the scalar one-candidate-at-a-time loop.
    fn greedy_closest(
        &self,
        data: &PointSet,
        q: &[f32],
        mut current: u32,
        layer: usize,
        stats: &mut GraphStats,
    ) -> u32 {
        let mut cur_d = self.metric.distance(q, data.point(current as usize));
        stats.distance_tests += 1;
        let mut scratch = DistScratch::default();
        loop {
            let neighbors = &self.layers[layer][current as usize];
            if neighbors.is_empty() {
                return current;
            }
            stats.hops += neighbors.len() as u64;
            stats.distance_tests += neighbors.len() as u64;
            let dists = scratch.distances(self.metric, data, q, neighbors);
            let mut improved = false;
            for (&nb, &d) in neighbors.iter().zip(dists) {
                if d < cur_d {
                    cur_d = d;
                    current = nb;
                    improved = true;
                }
            }
            if !improved {
                return current;
            }
        }
    }

    /// Bounded best-first search on one layer with an `ef`-wide queue.
    /// Returns candidates sorted closest-first.
    fn layer_search(
        &self,
        data: &PointSet,
        q: &[f32],
        entry: u32,
        layer: usize,
        ef: usize,
        stats: &mut GraphStats,
    ) -> (Vec<(u32, f32)>, u32) {
        let mut visited = vec![false; data.len()];
        let mut to_visit: BinaryHeap<Reverse<(OrdF32, u32)>> = BinaryHeap::new();
        let mut best: BinaryHeap<(OrdF32, u32)> = BinaryHeap::new(); // max-heap

        let d0 = self.metric.distance(q, data.point(entry as usize));
        stats.distance_tests += 1;
        stats.queue_ops += 2;
        visited[entry as usize] = true;
        to_visit.push(Reverse((OrdF32(d0), entry)));
        best.push((OrdF32(d0), entry));

        // Scratch for the candidate-parallel distance stage, reused across
        // every expanded node of this search.
        let mut cand: Vec<u32> = Vec::new();
        let mut scratch = DistScratch::default();

        while let Some(Reverse((OrdF32(d), node))) = to_visit.pop() {
            stats.queue_ops += 1;
            let worst = best
                .peek()
                .map(|&(OrdF32(w), _)| w)
                .unwrap_or(f32::INFINITY);
            if d > worst && best.len() >= ef {
                break;
            }
            // Collect this node's unvisited neighbours first, then compute
            // their distances in one gathered SoA batch. The visited set
            // fixes the candidate list before any distance is needed, so the
            // batch changes neither the values nor the queue decisions —
            // results and counters are bit-identical to the scalar loop.
            cand.clear();
            for &nb in &self.layers[layer][node as usize] {
                if visited[nb as usize] {
                    stats.queue_ops += 1; // cache hit check
                    continue;
                }
                visited[nb as usize] = true;
                stats.hops += 1;
                stats.distance_tests += 1;
                cand.push(nb);
            }
            let dists = scratch.distances(self.metric, data, q, &cand);
            for (&nb, &dn) in cand.iter().zip(dists) {
                let worst = best
                    .peek()
                    .map(|&(OrdF32(w), _)| w)
                    .unwrap_or(f32::INFINITY);
                if best.len() < ef || dn < worst {
                    stats.queue_ops += 2;
                    to_visit.push(Reverse((OrdF32(dn), nb)));
                    best.push((OrdF32(dn), nb));
                    if best.len() > ef {
                        best.pop();
                        stats.queue_ops += 1;
                    }
                }
            }
        }
        let mut out: Vec<(u32, f32)> = best.into_iter().map(|(OrdF32(d), i)| (i, d)).collect();
        out.sort_by(|a, b| a.1.total_cmp(&b.1));
        let first = out.first().map(|&(i, _)| i).unwrap_or(entry);
        (out, first)
    }

    /// [`HnswGraph::search`] over a dense row-major block of queries
    /// (`queries.len() / data.dim()` of them) — the entry point the serving
    /// engine's coalesced batches feed. Per-query results and counters are
    /// identical to calling [`HnswGraph::search`] once per row.
    ///
    /// # Panics
    ///
    /// Panics if `queries.len()` is not a multiple of the data dimension,
    /// or `k` is zero.
    pub fn search_batch(
        &self,
        data: &PointSet,
        queries: &[f32],
        k: usize,
        ef: usize,
    ) -> Vec<(Vec<(u32, f32)>, GraphStats)> {
        assert!(
            queries.len().is_multiple_of(data.dim().max(1)),
            "query block length {} is not a multiple of dim {}",
            queries.len(),
            data.dim()
        );
        queries
            .chunks_exact(data.dim())
            .map(|q| self.search(data, q, k, ef))
            .collect()
    }

    /// K-nearest-neighbour search: greedy descent from the entry point
    /// through the upper layers, then an `ef`-bounded best-first pass on the
    /// base layer. `ef` is clamped to at least `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or the query dimension mismatches.
    pub fn search(
        &self,
        data: &PointSet,
        query: &[f32],
        k: usize,
        ef: usize,
    ) -> (Vec<(u32, f32)>, GraphStats) {
        assert!(k > 0, "k must be positive");
        assert_eq!(query.len(), data.dim(), "query dimension mismatch");
        let mut stats = GraphStats::default();
        let mut entry = self.entry_point;
        for l in (1..self.layers.len()).rev() {
            entry = self.greedy_closest(data, query, entry, l, &mut stats);
        }
        let (mut out, _) = self.layer_search(data, query, entry, 0, ef.max(k), &mut stats);
        out.truncate(k);
        (out, stats)
    }

    /// Number of layers.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// The entry point node id.
    pub fn entry_point(&self) -> u32 {
        self.entry_point
    }

    /// Highest layer of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn node_level(&self, node: u32) -> usize {
        self.node_levels[node as usize] as usize
    }

    /// Adjacency list of `node` at `layer`; exposed for the trace generators.
    ///
    /// # Panics
    ///
    /// Panics if `layer` or `node` is out of range.
    pub fn neighbors(&self, layer: usize, node: u32) -> &[u32] {
        &self.layers[layer][node as usize]
    }

    /// Average out-degree on the base layer.
    pub fn average_degree(&self) -> f64 {
        let total: usize = self.layers[0].iter().map(|adj| adj.len()).sum();
        total as f64 / self.layers[0].len() as f64
    }

    /// The metric the graph was built for.
    pub fn metric(&self) -> Metric {
        self.metric
    }
}

/// Reusable buffers for the gathered candidate-parallel distance stage:
/// candidate rows are copied into one dense block and measured with the
/// bit-identical SoA kernels from [`hsu_geometry::batch`].
#[derive(Debug, Default)]
struct DistScratch {
    rows: Vec<f32>,
    pairs: Vec<(f32, f32)>,
    dists: Vec<f32>,
}

impl DistScratch {
    /// Distances from `q` to every id in `ids`, in order. The returned
    /// slice lives in the scratch and is valid until the next call.
    fn distances(&mut self, metric: Metric, data: &PointSet, q: &[f32], ids: &[u32]) -> &[f32] {
        self.rows.clear();
        hsu_geometry::batch::gather_rows(data.as_flat(), data.dim(), ids, &mut self.rows);
        self.dists.clear();
        hsu_geometry::batch::metric_to_rows(
            metric,
            q,
            &self.rows,
            &mut self.pairs,
            &mut self.dists,
        );
        &self.dists
    }
}

/// Total-ordered f32 wrapper for heap keys.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF32(f32);

impl Eq for OrdF32 {}
impl PartialOrd for OrdF32 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF32 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_set(n: usize, dim: usize, seed: u64) -> PointSet {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let data: Vec<f32> = (0..n * dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        PointSet::from_rows(dim, data)
    }

    #[test]
    fn recall_at_1_euclidean() {
        let data = random_set(2000, 16, 1);
        let graph = HnswGraph::build(&data, Metric::Euclidean, GraphConfig::default(), 42);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut hits = 0;
        let total = 50;
        for _ in 0..total {
            let q: Vec<f32> = (0..16).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let (found, _) = graph.search(&data, &q, 1, 64);
            let exact = data.nearest_brute_force(&q, Metric::Euclidean).unwrap();
            if found.first().map(|&(i, _)| i as usize) == Some(exact.0) {
                hits += 1;
            }
        }
        assert!(hits * 10 >= total * 9, "recall {hits}/{total} below 90%");
    }

    #[test]
    fn recall_at_10_angular() {
        let data = random_set(1500, 24, 3);
        let graph = HnswGraph::build(&data, Metric::Angular, GraphConfig::default(), 7);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut overlap = 0usize;
        let total = 30;
        for _ in 0..total {
            let q: Vec<f32> = (0..24).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let (found, _) = graph.search(&data, &q, 10, 96);
            let exact = data.k_nearest_brute_force(&q, 10, Metric::Angular);
            let exact_ids: std::collections::HashSet<usize> =
                exact.iter().map(|&(i, _)| i).collect();
            overlap += found
                .iter()
                .filter(|&&(i, _)| exact_ids.contains(&(i as usize)))
                .count();
        }
        let recall = overlap as f64 / (total * 10) as f64;
        assert!(recall >= 0.8, "recall@10 = {recall}");
    }

    #[test]
    fn searching_for_an_indexed_point_finds_it() {
        let data = random_set(500, 8, 5);
        let graph = HnswGraph::build(&data, Metric::Euclidean, GraphConfig::default(), 9);
        for id in [0usize, 100, 250, 499] {
            let (found, _) = graph.search(&data, data.point(id), 1, 32);
            assert_eq!(found[0].0 as usize, id);
            assert_eq!(found[0].1, 0.0);
        }
    }

    #[test]
    fn stats_track_work_split() {
        let data = random_set(1000, 32, 6);
        let graph = HnswGraph::build(&data, Metric::Euclidean, GraphConfig::default(), 10);
        let (_, stats) = graph.search(&data, &[0.0f32; 32], 10, 64);
        assert!(stats.distance_tests > 0);
        assert!(stats.queue_ops > 0);
        assert!(stats.hops > 0);
        // The candidate queue should not grossly out-work the distances.
        assert!(stats.queue_ops < stats.distance_tests * 20);
    }

    #[test]
    fn layered_structure_properties() {
        let data = random_set(3000, 8, 8);
        let graph = HnswGraph::build(&data, Metric::Euclidean, GraphConfig::default(), 11);
        assert!(
            graph.layer_count() >= 2,
            "expected a hierarchy, got 1 layer"
        );
        // Entry point lives on the top layer.
        assert_eq!(
            graph.node_level(graph.entry_point()),
            graph.layer_count() - 1
        );
        // Upper layers are sparser than the base layer.
        let base_nodes = (0..3000u32)
            .filter(|&i| !graph.neighbors(0, i).is_empty())
            .count();
        let top = graph.layer_count() - 1;
        let top_nodes = (0..3000u32).filter(|&i| graph.node_level(i) >= top).count();
        assert!(top_nodes < base_nodes / 4);
        // Degree bound holds everywhere (2x on the base layer).
        for l in 0..graph.layer_count() {
            let cap = if l == 0 {
                GraphConfig::default().m * 2
            } else {
                GraphConfig::default().m
            };
            for i in 0..3000u32 {
                assert!(graph.neighbors(l, i).len() <= cap);
            }
        }
        assert!(graph.average_degree() > 1.0);
    }

    #[test]
    fn ef_trades_work_for_recall() {
        let data = random_set(2000, 16, 12);
        let graph = HnswGraph::build(&data, Metric::Euclidean, GraphConfig::default(), 13);
        let q = vec![0.25f32; 16];
        let (_, small) = graph.search(&data, &q, 1, 8);
        let (_, large) = graph.search(&data, &q, 1, 128);
        assert!(large.distance_tests > small.distance_tests);
    }

    #[test]
    fn search_batch_matches_per_query_search() {
        for (metric, seed) in [(Metric::Euclidean, 21), (Metric::Angular, 22)] {
            let data = random_set(800, 12, seed);
            let graph = HnswGraph::build(&data, metric, GraphConfig::default(), 31);
            let mut rng = ChaCha8Rng::seed_from_u64(23);
            let queries: Vec<f32> = (0..7 * 12).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let batched = graph.search_batch(&data, &queries, 5, 32);
            assert_eq!(batched.len(), 7);
            for (i, q) in queries.chunks_exact(12).enumerate() {
                let (hits, stats) = graph.search(&data, q, 5, 32);
                assert_eq!(batched[i].0, hits, "{metric:?} query {i}");
                assert_eq!(batched[i].1, stats, "{metric:?} query {i} counters");
                for (&(id, d), &(bid, bd)) in hits.iter().zip(&batched[i].0) {
                    assert_eq!(id, bid);
                    assert_eq!(d.to_bits(), bd.to_bits());
                }
            }
        }
    }

    #[test]
    fn single_point_graph() {
        let data = PointSet::from_rows(4, vec![1.0, 2.0, 3.0, 4.0]);
        let graph = HnswGraph::build(&data, Metric::Euclidean, GraphConfig::default(), 1);
        let (found, _) = graph.search(&data, &[0.0; 4], 1, 8);
        assert_eq!(found[0].0, 0);
    }

    #[test]
    #[should_panic(expected = "empty point set")]
    fn empty_set_rejected() {
        let data = PointSet::empty(4);
        let _ = HnswGraph::build(&data, Metric::Euclidean, GraphConfig::default(), 0);
    }
}
