//! `.hsar` payload codec for [`HnswGraph`] ([`hsu_archive::kind::GRAPH`]).
//!
//! Layout (little-endian):
//!
//! ```text
//! metric u8 | m u64 | ef_construction u64 | level_base f64
//! entry_point u32 | node_count u64 | node_levels: node_count × u8
//! layer_count u32
//! per layer, per node: degree u32 | degree × neighbour u32
//! ```
//!
//! The encoding is canonical (derived field-by-field from the struct), so
//! decode → re-encode is byte-identical — the parity discipline.

use hsu_archive::payload::{put_f64, put_u32, put_u64, put_u8, Cursor};
use hsu_archive::ArchiveError;
use hsu_geometry::point::Metric;

use crate::{GraphConfig, HnswGraph};

fn metric_to_u8(metric: Metric) -> u8 {
    match metric {
        Metric::Euclidean => 0,
        Metric::Angular => 1,
    }
}

fn metric_from_u8(v: u8, chunk: &str) -> Result<Metric, ArchiveError> {
    match v {
        0 => Ok(Metric::Euclidean),
        1 => Ok(Metric::Angular),
        other => Err(ArchiveError::Payload {
            chunk: chunk.into(),
            detail: format!("unknown metric tag {other}"),
        }),
    }
}

/// Encodes a graph as a `GRAPH` chunk payload.
pub fn graph_to_chunk(graph: &HnswGraph) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u8(&mut buf, metric_to_u8(graph.metric));
    put_u64(&mut buf, graph.config.m as u64);
    put_u64(&mut buf, graph.config.ef_construction as u64);
    put_f64(&mut buf, graph.config.level_base);
    put_u32(&mut buf, graph.entry_point);
    put_u64(&mut buf, graph.node_levels.len() as u64);
    buf.extend_from_slice(&graph.node_levels);
    put_u32(&mut buf, graph.layers.len() as u32);
    for layer in &graph.layers {
        for adj in layer {
            put_u32(&mut buf, adj.len() as u32);
            for &n in adj {
                put_u32(&mut buf, n);
            }
        }
    }
    buf
}

/// Decodes a `GRAPH` chunk payload; `chunk` labels errors.
pub fn graph_from_chunk(bytes: &[u8], chunk: &str) -> Result<HnswGraph, ArchiveError> {
    let fail = |detail: String| ArchiveError::Payload {
        chunk: chunk.into(),
        detail,
    };
    let mut c = Cursor::new(bytes, chunk);
    let metric = metric_from_u8(c.u8()?, chunk)?;
    let m = c.u64()? as usize;
    let ef_construction = c.u64()? as usize;
    let level_base = c.f64()?;
    if m == 0 {
        return Err(fail("graph degree m must be positive".into()));
    }
    let entry_point = c.u32()?;
    let node_count = c.u64()?;
    let node_count = c.count(node_count, 1, "node")?;
    if node_count == 0 {
        return Err(fail("graph must have at least one node".into()));
    }
    if entry_point as usize >= node_count {
        return Err(fail(format!(
            "entry point {entry_point} outside the {node_count} nodes"
        )));
    }
    let node_levels = c.take(node_count)?.to_vec();
    let layer_count = c.u32()? as usize;
    if layer_count == 0 || layer_count > 256 {
        return Err(fail(format!("layer count {layer_count} outside 1..=256")));
    }
    let mut layers = Vec::with_capacity(layer_count);
    for _ in 0..layer_count {
        let mut layer = Vec::with_capacity(node_count);
        for _ in 0..node_count {
            let degree = c.u32()?;
            let degree = c.count(u64::from(degree), 4, "neighbour")?;
            let mut adj = Vec::with_capacity(degree);
            for _ in 0..degree {
                let n = c.u32()?;
                if n as usize >= node_count {
                    return Err(fail(format!(
                        "neighbour {n} outside the {node_count} nodes"
                    )));
                }
                adj.push(n);
            }
            layer.push(adj);
        }
        layers.push(layer);
    }
    c.finish()?;
    Ok(HnswGraph {
        layers,
        node_levels,
        entry_point,
        metric,
        config: GraphConfig {
            m,
            ef_construction,
            level_base,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsu_geometry::point::PointSet;

    #[test]
    fn graph_chunk_round_trips_with_byte_parity() {
        let data = PointSet::from_rows(2, (0..160).map(|i| (i as f32 * 0.37).sin()).collect());
        let graph = HnswGraph::build(&data, Metric::Angular, GraphConfig::default(), 11);
        let bytes = graph_to_chunk(&graph);
        let back = graph_from_chunk(&bytes, "t").expect("decode");
        assert_eq!(graph_to_chunk(&back), bytes, "re-encode parity");
        assert_eq!(back.entry_point(), graph.entry_point());
        assert_eq!(back.layer_count(), graph.layer_count());
        // The restored graph must search identically.
        let (a, sa) = graph.search(&data, data.point(5), 3, 16);
        let (b, sb) = back.search(&data, data.point(5), 3, 16);
        assert_eq!(a, b);
        assert_eq!(sa, sb);
    }

    #[test]
    fn out_of_range_neighbours_are_rejected() {
        let data = PointSet::from_rows(2, (0..40).map(|i| i as f32).collect());
        let graph = HnswGraph::build(&data, Metric::Euclidean, GraphConfig::default(), 3);
        let mut bytes = graph_to_chunk(&graph);
        // Find the first adjacency entry and point it past the node count:
        // flip the entry_point field instead, which is easier to locate.
        let entry_offset = 1 + 8 + 8 + 8;
        bytes[entry_offset..entry_offset + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = graph_from_chunk(&bytes, "t").unwrap_err();
        assert_eq!(err.kind(), "payload");
    }
}
