//! Property-based tests of the hierarchical graph's structural invariants.

use hsu_geometry::point::{Metric, PointSet};
use hsu_graph::{GraphConfig, HnswGraph};
use proptest::prelude::*;

fn arb_set() -> impl Strategy<Value = PointSet> {
    (2usize..300, 2usize..12, 0u64..1000).prop_map(|(n, dim, seed)| {
        // Deterministic pseudo-random points from the seed.
        let data: Vec<f32> = (0..n * dim)
            .map(|i| {
                let x = (i as u64)
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(seed);
                ((x >> 33) % 2000) as f32 * 0.01 - 10.0
            })
            .collect();
        PointSet::from_rows(dim, data)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn structural_invariants(set in arb_set(), seed in 0u64..100) {
        let config = GraphConfig { m: 8, ef_construction: 24, ..Default::default() };
        let graph = HnswGraph::build(&set, Metric::Euclidean, config.clone(), seed);

        // Entry point is on the top layer.
        prop_assert_eq!(graph.node_level(graph.entry_point()), graph.layer_count() - 1);

        for layer in 0..graph.layer_count() {
            for node in 0..set.len() as u32 {
                let adj = graph.neighbors(layer, node);
                // Degree bound (2x on the base layer, standard HNSW M0).
                let cap = if layer == 0 { config.m * 2 } else { config.m };
                prop_assert!(adj.len() <= cap);
                // No self loops, no out-of-range nodes, no duplicates.
                let mut seen = std::collections::HashSet::new();
                for &n in adj {
                    prop_assert!(n != node, "self loop at layer {}", layer);
                    prop_assert!((n as usize) < set.len());
                    prop_assert!(seen.insert(n), "duplicate edge {} -> {}", node, n);
                }
                // A node with edges at layer L must exist at layer L.
                if !adj.is_empty() {
                    prop_assert!(graph.node_level(node) >= layer);
                }
            }
        }
    }

    #[test]
    fn searching_indexed_points_finds_them(set in arb_set(), seed in 0u64..100) {
        let graph = HnswGraph::build(
            &set,
            Metric::Euclidean,
            GraphConfig { m: 8, ef_construction: 32, ..Default::default() },
            seed,
        );
        // Self-queries must return the point itself at distance zero
        // (exact-duplicate points may tie; accept any zero-distance id).
        // HNSW can orphan the occasional extreme outlier after back-edge
        // pruning (a known property of the construction), so require a
        // majority rather than all three probes.
        let mut hits = 0;
        for i in [0usize, set.len() / 2, set.len() - 1] {
            let (found, _) = graph.search(&set, set.point(i), 1, 48);
            prop_assert!(!found.is_empty());
            if found[0].1 <= 1e-6 {
                hits += 1;
            }
        }
        prop_assert!(hits >= 2, "{hits}/3 self-queries found their point");
    }

    #[test]
    fn base_layer_is_connected_enough(n in 50usize..400, seed in 0u64..50) {
        // Reachability from the entry point covers (almost) every node —
        // the property greedy search relies on.
        let data: Vec<f32> = (0..n * 4)
            .map(|i| {
                let x = (i as u64).wrapping_mul(2862933555777941757).wrapping_add(seed);
                ((x >> 32) % 1000) as f32 * 0.01
            })
            .collect();
        let set = PointSet::from_rows(4, data);
        let graph = HnswGraph::build(&set, Metric::Euclidean, GraphConfig::default(), seed);
        let mut visited = vec![false; n];
        let mut stack = vec![graph.entry_point()];
        visited[graph.entry_point() as usize] = true;
        let mut count = 1;
        while let Some(node) = stack.pop() {
            for &nb in graph.neighbors(0, node) {
                if !visited[nb as usize] {
                    visited[nb as usize] = true;
                    count += 1;
                    stack.push(nb);
                }
            }
        }
        prop_assert!(
            count * 10 >= n * 9,
            "only {count}/{n} nodes reachable from the entry point"
        );
    }
}
