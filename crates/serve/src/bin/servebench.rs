//! `servebench` — open-loop load driver for the sharded serving engine.
//!
//! ```text
//! servebench [--smoke] [--closed-loop] [--family graph|kd|bvh|btree|all]
//!            [--queries N] [--shards N] [--workers N] [--batch N]
//!            [--queue-capacity N] [--seed S] [--archive-dir DIR]
//!            [--pr LABEL] [--out PATH]
//! ```
//!
//! For each index family the driver:
//!
//! 1. opens the pre-built index through the `.hsar` archive cache (cold
//!    open builds and stores, warm open is an archive read),
//! 2. **determinism cross-check** — replays a seeded query-stream prefix
//!    under every `--shards {1,4} × --batch {1,64} × workers {1,2}`
//!    combination and asserts the submission-order replay hash is
//!    byte-identical across all eight configurations (exits non-zero on
//!    any mismatch),
//! 3. drives `--queries` queries through the engine at the requested
//!    topology, measuring sustained QPS and p50/p99/p999 latency (latency
//!    = admission request to worker fulfillment, taken from the ticket's
//!    completion timestamp so redeeming tickets in submission order adds
//!    no head-of-line skew).
//!
//! The default discipline is **open-loop**: up to 4096 tickets ride in
//! flight, so at saturation the reported latency is dominated by
//! time-in-queue, not service time — the classic open-loop caveat.
//! `--closed-loop` switches the measured run to one outstanding query at a
//! time (submit, redeem, repeat): the queue is empty at every admission,
//! so the percentiles are pure *service* latency. The two disciplines
//! change only timing — the answer stream (and therefore the replay hash)
//! is identical, which a unit test in this file pins.
//!
//! Unless `--smoke` is set, one entry is appended to the trajectory JSON
//! (`BENCH_sim.json` by default) with the per-family numbers, replay
//! hashes, and the host core count. `--smoke` shrinks the counts for CI
//! and skips the append; the determinism cross-check still runs.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

use hsu_bench::trajectory::{append_entry, json_escape};
use hsu_bench::{runner, ArchiveCache};
use hsu_datasets::{key_stream_nth, DatasetId, QueryStream};
use hsu_serve::prelude::*;

/// One family ready to serve: the index plus its seeded query stream.
struct Served {
    family: IndexFamily,
    index: Arc<dyn SearchIndex>,
    gen: Arc<dyn Fn(u64) -> Query + Send + Sync>,
}

/// One measured open-loop run.
struct LoadResult {
    queries: u64,
    wall_s: f64,
    qps: f64,
    p50_us: f64,
    p99_us: f64,
    p999_us: f64,
    replay_hash: u64,
}

struct Options {
    families: Vec<IndexFamily>,
    queries: u64,
    shards: usize,
    workers: usize,
    batch: usize,
    queue_capacity: usize,
    seed: u64,
    smoke: bool,
    closed_loop: bool,
    archive_dir: Option<std::path::PathBuf>,
    pr_label: String,
    out_path: std::path::PathBuf,
}

/// Outstanding-ticket window of the open-loop discipline. Closed-loop runs
/// use a window of 1: the queue is empty at every admission, so measured
/// latency is service time alone.
const OPEN_WINDOW: usize = 4096;

fn main() {
    let opts = parse_args();
    let host_cores = runner::default_jobs();
    // Serving owns the whole machine here (no co-resident suite or
    // simulation), so the three-way budget degenerates to the serve
    // share; co-located callers should size `shards × workers` with
    // `runner::thread_budget3` instead.
    let (_, _, serve_share) = runner::thread_budget3(host_cores, 1, 1, opts.shards * opts.workers);
    eprintln!(
        "servebench: host_cores={host_cores} shards={} workers={} (serve share {serve_share}) \
         batch={} capacity={} seed={} queries/family={}",
        opts.shards, opts.workers, opts.batch, opts.queue_capacity, opts.seed, opts.queries
    );

    let (cache_dir, cleanup_cache) = match opts.archive_dir.clone() {
        Some(d) => (d, false),
        None => (
            std::env::temp_dir().join(format!("hsu-servebench-cache-{}", std::process::id())),
            true,
        ),
    };
    let cache = ArchiveCache::new(Some(cache_dir.clone()));

    let t0 = Instant::now();
    let served = open_families(&cache, opts.seed, &opts.families);
    eprintln!(
        "opened {} index families in {:.2}s ({} cache hits / {} misses) via {}",
        served.len(),
        t0.elapsed().as_secs_f64(),
        cache.hits(),
        cache.misses(),
        cache_dir.display()
    );

    // Determinism cross-check: the same seeded prefix must hash
    // identically under every topology.
    let dcheck_n = if opts.smoke { 400 } else { 10_000 };
    let mut mismatches = 0usize;
    for s in &served {
        let mut hashes: Vec<(String, u64)> = Vec::new();
        for shards in [1usize, 4] {
            for batch in [1usize, 64] {
                for workers in [1usize, 2] {
                    let cfg = EngineConfig {
                        shards,
                        workers_per_shard: workers,
                        batch,
                        queue_capacity: opts.queue_capacity,
                    };
                    let r = run_load(s, cfg, dcheck_n, OPEN_WINDOW);
                    hashes.push((format!("s{shards}b{batch}w{workers}"), r.replay_hash));
                }
            }
        }
        let first = hashes[0].1;
        if hashes.iter().all(|&(_, h)| h == first) {
            eprintln!(
                "determinism[{}]: {} queries x {} configs -> {first:#018x} identical",
                s.family,
                dcheck_n,
                hashes.len()
            );
        } else {
            mismatches += 1;
            eprintln!("determinism[{}]: HASH MISMATCH across configs:", s.family);
            for (label, h) in &hashes {
                eprintln!("  {label}: {h:#018x}");
            }
        }
    }
    if mismatches > 0 {
        eprintln!("error: {mismatches} famil(ies) diverged across shard/batch/worker configs");
        std::process::exit(1);
    }

    // The measured runs at the requested topology and load discipline.
    let cfg = EngineConfig {
        shards: opts.shards,
        workers_per_shard: opts.workers,
        batch: opts.batch,
        queue_capacity: opts.queue_capacity,
    };
    let window = if opts.closed_loop { 1 } else { OPEN_WINDOW };
    let mode = if opts.closed_loop { "closed" } else { "open" };
    let mut results: Vec<(IndexFamily, LoadResult)> = Vec::new();
    for s in &served {
        let r = run_load(s, cfg.clone(), opts.queries, window);
        println!(
            "{:<6} [{mode}-loop] {:>9} queries in {:>7.2}s | {:>10.0} qps | p50 {:>8.1}us \
             p99 {:>8.1}us p999 {:>8.1}us | hash {:#018x}",
            s.family.to_string(),
            r.queries,
            r.wall_s,
            r.qps,
            r.p50_us,
            r.p99_us,
            r.p999_us,
            r.replay_hash
        );
        results.push((s.family, r));
    }

    if !opts.smoke {
        let entry = json_entry(&opts, host_cores, dcheck_n, &results);
        append_entry(&opts.out_path, &entry)
            .unwrap_or_else(|e| panic!("append {}: {e}", opts.out_path.display()));
        println!(
            "appended entry '{}' to {}",
            opts.pr_label,
            opts.out_path.display()
        );
    }
    if cleanup_cache {
        let _ = std::fs::remove_dir_all(&cache_dir);
    }
}

/// Opens every requested family through the cache, in parallel on the
/// bench runner's work-stealing pool (1-core hosts run inline).
fn open_families(cache: &ArchiveCache, seed: u64, families: &[IndexFamily]) -> Vec<Served> {
    runner::run_jobs(
        families.len().min(runner::default_jobs()),
        families.to_vec(),
        |_, family| open_one(cache, seed, family),
    )
}

fn open_one(cache: &ArchiveCache, seed: u64, family: IndexFamily) -> Served {
    match family {
        IndexFamily::Graph => {
            let index = GraphIndex::open(cache, DatasetId::Sift10k, 2000, seed, 10, 32);
            let stream = QueryStream::new(index.data(), seed ^ 0x5e7e);
            let data = index.data().clone();
            Served {
                family,
                index: Arc::new(index),
                gen: Arc::new(move |i| Query::Vector(stream.nth(&data, i))),
            }
        }
        IndexFamily::Kd => {
            let index = KdIndex::open(cache, DatasetId::Bunny, 5000, seed, 5, 16);
            let stream = QueryStream::new(index.data(), seed ^ 0x5e7e);
            let data = index.data().clone();
            Served {
                family,
                index: Arc::new(index),
                gen: Arc::new(move |i| Query::Vector(stream.nth(&data, i))),
            }
        }
        IndexFamily::Bvh => {
            let index = BvhIndex::open(cache, DatasetId::Bunny, 5000, seed, 5);
            let stream = QueryStream::new(index.data(), seed ^ 0x5e7e);
            let data = index.data().clone();
            Served {
                family,
                index: Arc::new(index),
                gen: Arc::new(move |i| Query::Vector(stream.nth(&data, i))),
            }
        }
        IndexFamily::Btree => {
            let index = BtreeIndex::open(cache, 100_000, seed);
            let space = index.key_space();
            let kseed = seed ^ 0xb7ee;
            Served {
                family,
                index: Arc::new(index),
                gen: Arc::new(move |i| Query::Key(key_stream_nth(kseed, i, space))),
            }
        }
    }
}

/// Drives `n` queries through a fresh engine at `cfg`, bounding
/// outstanding tickets with a sliding `window` redeemed in submission
/// order (which is also the replay-hash fold order). `OPEN_WINDOW` is the
/// open-loop discipline; `1` is closed-loop (pure service latency).
fn run_load(s: &Served, cfg: EngineConfig, n: u64, window: usize) -> LoadResult {
    let engine = Engine::new(Arc::clone(&s.index), cfg);
    let mut outstanding: VecDeque<(Ticket, Instant)> = VecDeque::with_capacity(window);
    let mut lat_ns: Vec<u64> = Vec::with_capacity(n as usize);
    let mut hashes: Vec<u64> = Vec::with_capacity(n as usize);
    let t0 = Instant::now();
    let mut last_done = t0;
    let redeem = |(ticket, submitted): (Ticket, Instant),
                  lat_ns: &mut Vec<u64>,
                  hashes: &mut Vec<u64>,
                  last_done: &mut Instant| {
        let (result, done_at) = ticket.wait_timed();
        let out = result.unwrap_or_else(|e| panic!("{} query failed: {e}", s.family));
        hashes.push(hash_output(&out));
        lat_ns.push(done_at.saturating_duration_since(submitted).as_nanos() as u64);
        if done_at > *last_done {
            *last_done = done_at;
        }
    };
    for i in 0..n {
        let query = (s.gen)(i);
        let submitted = Instant::now();
        let ticket = engine
            .submit(query)
            .unwrap_or_else(|e| panic!("{} submit failed: {e}", s.family));
        outstanding.push_back((ticket, submitted));
        if outstanding.len() >= window {
            if let Some(front) = outstanding.pop_front() {
                redeem(front, &mut lat_ns, &mut hashes, &mut last_done);
            }
        }
    }
    for front in outstanding.drain(..) {
        redeem(front, &mut lat_ns, &mut hashes, &mut last_done);
    }
    drop(engine);
    let wall_s = last_done.saturating_duration_since(t0).as_secs_f64();
    let replay_hash = combine_hashes(hashes);
    lat_ns.sort_unstable();
    LoadResult {
        queries: n,
        wall_s,
        qps: n as f64 / wall_s.max(1e-9),
        p50_us: percentile_us(&lat_ns, 0.50),
        p99_us: percentile_us(&lat_ns, 0.99),
        p999_us: percentile_us(&lat_ns, 0.999),
        replay_hash,
    }
}

/// Nearest-rank percentile of sorted nanosecond latencies, in microseconds.
fn percentile_us(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let rank = ((p * sorted_ns.len() as f64).ceil() as usize).clamp(1, sorted_ns.len()) - 1;
    sorted_ns[rank] as f64 / 1_000.0
}

fn json_entry(
    opts: &Options,
    host_cores: usize,
    dcheck_n: u64,
    results: &[(IndexFamily, LoadResult)],
) -> String {
    let families = results
        .iter()
        .map(|(f, r)| {
            format!(
                "      \"{}\": {{ \"queries\": {}, \"wall_s\": {:.6}, \"qps\": {:.1}, \
                 \"p50_us\": {:.3}, \"p99_us\": {:.3}, \"p999_us\": {:.3}, \
                 \"replay_hash\": \"{:#018x}\" }}",
                f, r.queries, r.wall_s, r.qps, r.p50_us, r.p99_us, r.p999_us, r.replay_hash
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    format!(
        "  {{\n    \"pr\": \"{}\",\n    \"bench\": \"servebench\",\n    \
         \"config\": {{ \"host_cores\": {}, \"shards\": {}, \"workers_per_shard\": {}, \
         \"batch\": {}, \"queue_capacity\": {}, \"seed\": {}, \"queries_per_family\": {}, \
         \"mode\": \"{}\" }},\n    \
         \"determinism\": {{ \"queries\": {}, \"configs\": 8, \"identical\": true }},\n    \
         \"families\": {{\n{}\n    }}\n  }}",
        json_escape(&opts.pr_label),
        host_cores,
        opts.shards,
        opts.workers,
        opts.batch,
        opts.queue_capacity,
        opts.seed,
        opts.queries,
        if opts.closed_loop {
            "closed-loop"
        } else {
            "open-loop"
        },
        dcheck_n,
        families
    )
}

fn parse_args() -> Options {
    let mut opts = Options {
        families: IndexFamily::ALL.to_vec(),
        queries: 250_000,
        shards: 2,
        workers: 1,
        batch: 64,
        queue_capacity: 1024,
        seed: 1,
        smoke: false,
        closed_loop: false,
        archive_dir: None,
        pr_label: String::from("dev"),
        out_path: std::path::PathBuf::from("BENCH_sim.json"),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => {
                opts.smoke = true;
                opts.queries = 2_000;
            }
            "--closed-loop" => {
                opts.closed_loop = true;
            }
            "--family" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage("--family needs a name"));
                opts.families = match v.as_str() {
                    "all" => IndexFamily::ALL.to_vec(),
                    "graph" => vec![IndexFamily::Graph],
                    "kd" => vec![IndexFamily::Kd],
                    "bvh" => vec![IndexFamily::Bvh],
                    "btree" => vec![IndexFamily::Btree],
                    other => usage(&format!("unknown family '{other}'")),
                };
            }
            "--queries" => {
                opts.queries = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--queries needs a number"));
            }
            "--shards" => {
                opts.shards = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--shards needs a number"));
            }
            "--workers" => {
                opts.workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--workers needs a number"));
            }
            "--batch" => {
                opts.batch = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--batch needs a number"));
            }
            "--queue-capacity" => {
                opts.queue_capacity = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--queue-capacity needs a number"));
            }
            "--seed" => {
                opts.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs a number"));
            }
            "--archive-dir" => {
                opts.archive_dir = Some(
                    args.next()
                        .unwrap_or_else(|| usage("--archive-dir needs a directory"))
                        .into(),
                );
            }
            "--pr" => {
                opts.pr_label = args.next().unwrap_or_else(|| usage("--pr needs a label"));
            }
            "--out" => {
                opts.out_path = args
                    .next()
                    .unwrap_or_else(|| usage("--out needs a path"))
                    .into();
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument '{other}'")),
        }
    }
    opts
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: servebench [--smoke] [--closed-loop] [--family graph|kd|bvh|btree|all]\n\
         \x20                 [--queries N] [--shards N] [--workers N] [--batch N]\n\
         \x20                 [--queue-capacity N] [--seed S] [--archive-dir DIR]\n\
         \x20                 [--pr LABEL] [--out PATH]\n\
         drives seeded query load through the sharded serving engine for each index\n\
         family: first a determinism cross-check (replay hashes must be identical\n\
         across shards {{1,4}} x batch {{1,64}} x workers {{1,2}}), then a measured\n\
         run at the requested topology reporting sustained QPS and p50/p99/p999\n\
         latency. The default discipline is open-loop (4096 tickets in flight:\n\
         latency at saturation is queue time); --closed-loop keeps one query\n\
         outstanding so the percentiles are pure service latency. Appends a JSON\n\
         entry to the trajectory file unless --smoke (small counts, no append) is\n\
         set. --queries is per family."
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsu_bench::ArchiveCache;

    /// The load discipline is a *measurement* choice, not a semantic one:
    /// open-loop (windowed) and closed-loop (one outstanding) runs over
    /// the same seeded stream must fold to the same replay hash. This is
    /// the pin that makes the `--closed-loop` percentiles comparable with
    /// the open-loop history in BENCH_sim.json.
    #[test]
    fn open_and_closed_loop_replay_hashes_are_identical() {
        let cache = ArchiveCache::disabled();
        let index = BtreeIndex::open(&cache, 2_000, 3);
        let space = index.key_space();
        let s = Served {
            family: IndexFamily::Btree,
            index: Arc::new(index),
            gen: Arc::new(move |i| Query::Key(key_stream_nth(0xb7ee, i, space))),
        };
        let cfg = EngineConfig {
            shards: 2,
            workers_per_shard: 2,
            batch: 8,
            queue_capacity: 256,
        };
        let open = run_load(&s, cfg.clone(), 500, OPEN_WINDOW);
        let closed = run_load(&s, cfg, 500, 1);
        assert_eq!(open.queries, closed.queries);
        assert_eq!(
            open.replay_hash, closed.replay_hash,
            "the load discipline changed the answer stream"
        );
    }
}
