//! `servebench` — open-loop load driver for the sharded serving engine.
//!
//! ```text
//! servebench [--smoke] [--closed-loop] [--family graph|kd|bvh|btree|all]
//!            [--queries N] [--shards N] [--workers N] [--batch N]
//!            [--queue-capacity N] [--window N] [--seed S]
//!            [--priority-mix PCT] [--deadline-us N] [--slo-us N] [--chaos]
//!            [--archive-dir DIR] [--pr LABEL] [--out PATH]
//! ```
//!
//! For each index family the driver:
//!
//! 1. opens the pre-built index through the `.hsar` archive cache (cold
//!    open builds and stores, warm open is an archive read),
//! 2. **determinism cross-check** — replays a seeded query-stream prefix
//!    under every `--shards {1,4} × --batch {1,64} × workers {1,2}`
//!    combination and asserts the submission-order replay hash is
//!    byte-identical across all eight configurations (exits non-zero on
//!    any mismatch),
//! 3. drives `--queries` queries through the engine at the requested
//!    topology, measuring sustained QPS and p50/p99/p999 latency (latency
//!    = admission request to worker fulfillment, taken from the ticket's
//!    completion timestamp so redeeming tickets in submission order adds
//!    no head-of-line skew).
//!
//! The default discipline is **open-loop**: up to `--window` (default
//! 4096) tickets ride in flight, so at saturation the reported latency is
//! dominated by time-in-queue, not service time — the classic open-loop
//! caveat. `--closed-loop` switches the measured run to one outstanding
//! query at a time (submit, redeem, repeat): the queue is empty at every
//! admission, so the percentiles are pure *service* latency. The two
//! disciplines change only timing — the answer stream (and therefore the
//! replay hash) is identical, which a unit test in this file pins.
//!
//! **Resilience drivers** exercise the PR-10 overload/failure layer:
//!
//! - `--priority-mix PCT` submits PCT% of the stream as `Interactive`
//!   and the rest as `Batch` via non-blocking admission; per-class
//!   latency percentiles and shed counts are reported separately.
//! - `--slo-us N` sets a uniform per-family p99 target: shards over
//!   target shed `Batch` (typed `Overloaded`) while `Interactive`
//!   keeps admitting.
//! - `--deadline-us N` attaches a deadline to every query; expired work
//!   resolves `DeadlineExceeded`, never a silent late answer.
//! - `--chaos` wraps the index in the `hsu_serve::chaos` harness (one
//!   injected worker panic + one slow shard) and asserts the engine
//!   kept serving: the run fails unless the supervisor restarted the
//!   dead worker.
//!
//! Per-query failures are **counted by typed class, never panicked on**:
//! the exit code is non-zero only for unexpected classes (`bad-query`,
//! `shutting-down`, `bad-index`) or a chaos run with no restart.
//!
//! Unless `--smoke` is set, one entry is appended to the trajectory JSON
//! (`BENCH_sim.json` by default) with the per-family numbers, failure
//! counters, engine stats, replay hashes, and the host core count.
//! `--smoke` shrinks the counts for CI and skips the append; the
//! determinism cross-check still runs.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

use hsu_bench::trajectory::{append_entry, json_escape};
use hsu_bench::{runner, ArchiveCache};
use hsu_datasets::{key_stream_nth, DatasetId, QueryStream};
use hsu_serve::chaos::{install_quiet_panic_hook, ChaosIndex, ChaosPlan};
use hsu_serve::prelude::*;

/// One family ready to serve: the index plus its seeded query stream.
struct Served {
    family: IndexFamily,
    index: Arc<dyn SearchIndex>,
    gen: Arc<dyn Fn(u64) -> Query + Send + Sync>,
}

/// Per-priority-class latency slice of a measured run.
struct ClassLat {
    name: &'static str,
    served: u64,
    shed: u64,
    p50_us: f64,
    p99_us: f64,
}

/// One measured open-loop run.
struct LoadResult {
    queries: u64,
    completed: u64,
    wall_s: f64,
    qps: f64,
    p50_us: f64,
    p99_us: f64,
    p999_us: f64,
    replay_hash: u64,
    // Typed per-query failure classes (satellite: counted, not panicked).
    shed: u64,
    deadline_exceeded: u64,
    worker_crashed: u64,
    unexpected: u64,
    classes: Vec<ClassLat>,
    stats: EngineStats,
}

/// How the measured run drives the resilience layer. The zero value
/// (`LoadPlan::plain()`) is the PR-9 behavior: blocking admission, no
/// deadlines, no faults — any per-query failure is then *unexpected*.
#[derive(Clone, Default)]
struct LoadPlan {
    /// Percent of the stream submitted as `Interactive` (rest `Batch`).
    /// Implies non-blocking admission so overload sheds instead of
    /// stalling the driver.
    mix_interactive_pct: Option<u32>,
    /// Per-query latency budget.
    deadline: Option<Duration>,
    /// Non-blocking admission even without a mix (set when an SLO can
    /// shed submissions).
    shed_on_overload: bool,
    /// Wrap the index in the chaos harness: one worker panic mid-run,
    /// one slow shard.
    chaos: bool,
}

impl LoadPlan {
    fn plain() -> Self {
        LoadPlan::default()
    }

    fn nonblocking(&self) -> bool {
        self.mix_interactive_pct.is_some() || self.shed_on_overload
    }
}

struct Options {
    families: Vec<IndexFamily>,
    queries: u64,
    shards: usize,
    workers: usize,
    batch: usize,
    queue_capacity: usize,
    window: Option<usize>,
    seed: u64,
    smoke: bool,
    closed_loop: bool,
    priority_mix: Option<u32>,
    deadline_us: Option<u64>,
    slo_us: Option<u64>,
    chaos: bool,
    archive_dir: Option<std::path::PathBuf>,
    pr_label: String,
    out_path: std::path::PathBuf,
}

/// Default outstanding-ticket window of the open-loop discipline.
/// Closed-loop runs use a window of 1: the queue is empty at every
/// admission, so measured latency is service time alone.
const OPEN_WINDOW: usize = 4096;

fn main() {
    let opts = parse_args();
    if opts.chaos {
        install_quiet_panic_hook();
    }
    let host_cores = runner::default_jobs();
    // Serving owns the whole machine here (no co-resident suite or
    // simulation), so the three-way budget degenerates to the serve
    // share; co-located callers should size `shards × workers` with
    // `runner::thread_budget3` instead.
    let (_, _, serve_share) = runner::thread_budget3(host_cores, 1, 1, opts.shards * opts.workers);
    eprintln!(
        "servebench: host_cores={host_cores} shards={} workers={} (serve share {serve_share}) \
         batch={} capacity={} seed={} queries/family={}",
        opts.shards, opts.workers, opts.batch, opts.queue_capacity, opts.seed, opts.queries
    );
    if opts.priority_mix.is_some() || opts.slo_us.is_some() || opts.deadline_us.is_some() {
        eprintln!(
            "resilience: priority-mix={:?} slo-us={:?} deadline-us={:?} chaos={}",
            opts.priority_mix, opts.slo_us, opts.deadline_us, opts.chaos
        );
    }

    let (cache_dir, cleanup_cache) = match opts.archive_dir.clone() {
        Some(d) => (d, false),
        None => (
            std::env::temp_dir().join(format!("hsu-servebench-cache-{}", std::process::id())),
            true,
        ),
    };
    let cache = ArchiveCache::new(Some(cache_dir.clone()));

    let t0 = Instant::now();
    let served = open_families(&cache, opts.seed, &opts.families);
    eprintln!(
        "opened {} index families in {:.2}s ({} cache hits / {} misses) via {}",
        served.len(),
        t0.elapsed().as_secs_f64(),
        cache.hits(),
        cache.misses(),
        cache_dir.display()
    );

    // Determinism cross-check: the same seeded prefix must hash
    // identically under every topology. Always unfaulted and blocking —
    // resilience flags apply only to the measured run.
    let dcheck_n = if opts.smoke { 400 } else { 10_000 };
    let mut mismatches = 0usize;
    for s in &served {
        let mut hashes: Vec<(String, u64)> = Vec::new();
        for shards in [1usize, 4] {
            for batch in [1usize, 64] {
                for workers in [1usize, 2] {
                    let cfg = EngineConfig {
                        shards,
                        workers_per_shard: workers,
                        batch,
                        queue_capacity: opts.queue_capacity,
                        ..Default::default()
                    };
                    let r = run_load(s, cfg, dcheck_n, OPEN_WINDOW, &LoadPlan::plain());
                    hashes.push((format!("s{shards}b{batch}w{workers}"), r.replay_hash));
                }
            }
        }
        let first = hashes[0].1;
        if hashes.iter().all(|&(_, h)| h == first) {
            eprintln!(
                "determinism[{}]: {} queries x {} configs -> {first:#018x} identical",
                s.family,
                dcheck_n,
                hashes.len()
            );
        } else {
            mismatches += 1;
            eprintln!("determinism[{}]: HASH MISMATCH across configs:", s.family);
            for (label, h) in &hashes {
                eprintln!("  {label}: {h:#018x}");
            }
        }
    }
    if mismatches > 0 {
        eprintln!("error: {mismatches} famil(ies) diverged across shard/batch/worker configs");
        std::process::exit(1);
    }

    // The measured runs at the requested topology and load discipline.
    let cfg = EngineConfig {
        shards: opts.shards,
        workers_per_shard: opts.workers,
        batch: opts.batch,
        queue_capacity: opts.queue_capacity,
        slo: match opts.slo_us {
            Some(us) => SloPolicy::uniform(us),
            None => SloPolicy::none(),
        },
        ..Default::default()
    };
    let plan = LoadPlan {
        mix_interactive_pct: opts.priority_mix,
        deadline: opts.deadline_us.map(Duration::from_micros),
        shed_on_overload: opts.slo_us.is_some(),
        chaos: opts.chaos,
    };
    let window = if opts.closed_loop {
        1
    } else {
        opts.window.unwrap_or(OPEN_WINDOW)
    };
    let mode = if opts.closed_loop { "closed" } else { "open" };
    let mut results: Vec<(IndexFamily, LoadResult)> = Vec::new();
    let mut failed = false;
    for s in &served {
        let r = run_load(s, cfg.clone(), opts.queries, window, &plan);
        println!(
            "{:<6} [{mode}-loop] {:>9} queries in {:>7.2}s | {:>10.0} qps | p50 {:>8.1}us \
             p99 {:>8.1}us p999 {:>8.1}us | hash {:#018x}",
            s.family.to_string(),
            r.completed,
            r.wall_s,
            r.qps,
            r.p50_us,
            r.p99_us,
            r.p999_us,
            r.replay_hash
        );
        for c in &r.classes {
            println!(
                "       class {:<11} served {:>9} shed {:>7} | p50 {:>8.1}us p99 {:>8.1}us",
                c.name, c.served, c.shed, c.p50_us, c.p99_us
            );
        }
        if r.shed + r.deadline_exceeded + r.worker_crashed + r.unexpected > 0 || plan.chaos {
            println!(
                "       failures: shed {} | deadline-exceeded {} | worker-crashed {} \
                 | unexpected {}",
                r.shed, r.deadline_exceeded, r.worker_crashed, r.unexpected
            );
            println!(
                "       engine: admitted {} completed {} queue-sheds {} slo-sheds {} \
                 deadline-drops {} panics {} restarts {} restarts-denied {}",
                r.stats.admitted,
                r.stats.completed,
                r.stats.queue_full_sheds,
                r.stats.slo_sheds,
                r.stats.deadline_drops,
                r.stats.worker_panics,
                r.stats.worker_restarts,
                r.stats.restarts_denied
            );
        }
        if r.unexpected > 0 {
            eprintln!(
                "error[{}]: {} queries failed with unexpected error classes",
                s.family, r.unexpected
            );
            failed = true;
        }
        if plan.chaos && r.stats.worker_panics > 0 && r.stats.worker_restarts == 0 {
            eprintln!(
                "error[{}]: chaos injected {} worker panic(s) but the supervisor never \
                 restarted a worker",
                s.family, r.stats.worker_panics
            );
            failed = true;
        }
        results.push((s.family, r));
    }

    if !opts.smoke {
        let entry = json_entry(&opts, host_cores, dcheck_n, &results);
        append_entry(&opts.out_path, &entry)
            .unwrap_or_else(|e| panic!("append {}: {e}", opts.out_path.display()));
        println!(
            "appended entry '{}' to {}",
            opts.pr_label,
            opts.out_path.display()
        );
    }
    if cleanup_cache {
        let _ = std::fs::remove_dir_all(&cache_dir);
    }
    if failed {
        std::process::exit(1);
    }
}

/// Opens every requested family through the cache, in parallel on the
/// bench runner's work-stealing pool (1-core hosts run inline).
fn open_families(cache: &ArchiveCache, seed: u64, families: &[IndexFamily]) -> Vec<Served> {
    runner::run_jobs(
        families.len().min(runner::default_jobs()),
        families.to_vec(),
        |_, family| open_one(cache, seed, family),
    )
}

fn open_one(cache: &ArchiveCache, seed: u64, family: IndexFamily) -> Served {
    match family {
        IndexFamily::Graph => {
            let index = GraphIndex::open(cache, DatasetId::Sift10k, 2000, seed, 10, 32)
                .unwrap_or_else(|e| panic!("open graph index: {e}"));
            let stream = QueryStream::new(index.data(), seed ^ 0x5e7e);
            let data = index.data().clone();
            Served {
                family,
                index: Arc::new(index),
                gen: Arc::new(move |i| Query::Vector(stream.nth(&data, i))),
            }
        }
        IndexFamily::Kd => {
            let index = KdIndex::open(cache, DatasetId::Bunny, 5000, seed, 5, 16)
                .unwrap_or_else(|e| panic!("open kd index: {e}"));
            let stream = QueryStream::new(index.data(), seed ^ 0x5e7e);
            let data = index.data().clone();
            Served {
                family,
                index: Arc::new(index),
                gen: Arc::new(move |i| Query::Vector(stream.nth(&data, i))),
            }
        }
        IndexFamily::Bvh => {
            let index = BvhIndex::open(cache, DatasetId::Bunny, 5000, seed, 5)
                .unwrap_or_else(|e| panic!("open bvh index: {e}"));
            let stream = QueryStream::new(index.data(), seed ^ 0x5e7e);
            let data = index.data().clone();
            Served {
                family,
                index: Arc::new(index),
                gen: Arc::new(move |i| Query::Vector(stream.nth(&data, i))),
            }
        }
        IndexFamily::Btree => {
            let index = BtreeIndex::open(cache, 100_000, seed);
            let space = index.key_space();
            let kseed = seed ^ 0xb7ee;
            Served {
                family,
                index: Arc::new(index),
                gen: Arc::new(move |i| Query::Key(key_stream_nth(kseed, i, space))),
            }
        }
    }
}

/// Deterministic priority assignment for `--priority-mix`: query `i` is
/// `Interactive` with probability `pct`%, `Batch` otherwise.
fn pick_priority(i: u64, pct: u32) -> Priority {
    let h = i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33;
    if h % 100 < u64::from(pct) {
        Priority::Interactive
    } else {
        Priority::Batch
    }
}

/// Drives `n` queries through a fresh engine at `cfg`, bounding
/// outstanding tickets with a sliding `window` redeemed in submission
/// order (which is also the replay-hash fold order). `OPEN_WINDOW` is the
/// open-loop discipline; `1` is closed-loop (pure service latency).
///
/// Per-query failures are counted by typed class, never panicked on;
/// the replay hash folds the successfully served subset in submission
/// order (in an unfaulted, unshed run that is every query).
fn run_load(s: &Served, cfg: EngineConfig, n: u64, window: usize, plan: &LoadPlan) -> LoadResult {
    let shards = cfg.shards;
    let index: Arc<dyn SearchIndex> = if plan.chaos {
        // One worker panic mid-run plus one persistently slow shard —
        // the ci smoke fault pair.
        let chaos_plan = ChaosPlan {
            panic_on: vec![(n / 2).max(1)],
            slow_shard: Some(shards - 1),
            slow_delay: Duration::from_micros(500),
        };
        Arc::new(ChaosIndex::new(Arc::clone(&s.index), chaos_plan))
    } else {
        Arc::clone(&s.index)
    };
    let engine = Engine::new(index, cfg);
    let mut outstanding: VecDeque<(Ticket, Instant, Priority)> = VecDeque::with_capacity(window);
    let mut lat_ns: Vec<u64> = Vec::with_capacity(n as usize);
    // Per-class latency slices, indexed by `Priority::band()`.
    let mut class_lat_ns: [Vec<u64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    let mut class_shed: [u64; 3] = [0; 3];
    let mut hashes: Vec<u64> = Vec::with_capacity(n as usize);
    let mut shed = 0u64;
    let mut counts = RedeemCounts::default();
    let t0 = Instant::now();
    let mut last_done = t0;
    for i in 0..n {
        let query = (s.gen)(i);
        let priority = match plan.mix_interactive_pct {
            Some(pct) => pick_priority(i, pct),
            None => Priority::Normal,
        };
        let qopts = SubmitOptions {
            priority,
            deadline: plan.deadline.map(|d| Instant::now() + d),
        };
        let submitted = Instant::now();
        let admitted = if plan.nonblocking() {
            engine.try_submit_with(query, qopts)
        } else {
            engine.submit_with(query, qopts)
        };
        match admitted {
            Ok(ticket) => outstanding.push_back((ticket, submitted, priority)),
            Err(ServeError::Overloaded { .. }) if plan.nonblocking() => {
                shed += 1;
                class_shed[priority.band()] += 1;
            }
            Err(e) => {
                eprintln!(
                    "{} submit failed unexpectedly: {e} [{}]",
                    s.family,
                    e.kind()
                );
                counts.unexpected += 1;
            }
        }
        if outstanding.len() >= window {
            if let Some(front) = outstanding.pop_front() {
                redeem(
                    s.family,
                    front,
                    &mut lat_ns,
                    &mut class_lat_ns,
                    &mut hashes,
                    &mut last_done,
                    &mut counts,
                );
            }
        }
    }
    for front in outstanding.drain(..) {
        redeem(
            s.family,
            front,
            &mut lat_ns,
            &mut class_lat_ns,
            &mut hashes,
            &mut last_done,
            &mut counts,
        );
    }
    if plan.chaos {
        // Panic/restart counters are bumped after the doomed batch's
        // tickets are failed (and restarts happen on the supervisor's
        // clock), so let them quiesce before snapshotting.
        let t_poll = Instant::now();
        while t_poll.elapsed() < Duration::from_secs(5) {
            let st = engine.stats();
            if st.worker_panics > 0 && st.worker_restarts + st.restarts_denied >= st.worker_panics {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    let stats = engine.stats();
    drop(engine);
    let wall_s = last_done.saturating_duration_since(t0).as_secs_f64();
    let replay_hash = combine_hashes(hashes);
    let completed = lat_ns.len() as u64;
    lat_ns.sort_unstable();
    let classes = match plan.mix_interactive_pct {
        Some(_) => [Priority::Interactive, Priority::Batch]
            .iter()
            .map(|p| {
                let slice = &mut class_lat_ns[p.band()];
                slice.sort_unstable();
                ClassLat {
                    name: p.name(),
                    served: slice.len() as u64,
                    shed: class_shed[p.band()],
                    p50_us: percentile_us(slice, 0.50),
                    p99_us: percentile_us(slice, 0.99),
                }
            })
            .collect(),
        None => Vec::new(),
    };
    LoadResult {
        queries: n,
        completed,
        wall_s,
        qps: completed as f64 / wall_s.max(1e-9),
        p50_us: percentile_us(&lat_ns, 0.50),
        p99_us: percentile_us(&lat_ns, 0.99),
        p999_us: percentile_us(&lat_ns, 0.999),
        replay_hash,
        shed,
        deadline_exceeded: counts.deadline_exceeded,
        worker_crashed: counts.worker_crashed,
        unexpected: counts.unexpected,
        classes,
        stats,
    }
}

/// Typed per-query failure tallies of one measured run.
#[derive(Default)]
struct RedeemCounts {
    deadline_exceeded: u64,
    worker_crashed: u64,
    unexpected: u64,
}

/// Redeems one outstanding ticket: successes feed the latency and
/// replay-hash folds, typed failures are tallied, unexpected classes are
/// tallied *and* logged (they flip the exit code in `main`).
#[allow(clippy::too_many_arguments)]
fn redeem(
    family: IndexFamily,
    (ticket, submitted, priority): (Ticket, Instant, Priority),
    lat_ns: &mut Vec<u64>,
    class_lat_ns: &mut [Vec<u64>; 3],
    hashes: &mut Vec<u64>,
    last_done: &mut Instant,
    counts: &mut RedeemCounts,
) {
    let (result, done_at) = ticket.wait_timed();
    match result {
        Ok(out) => {
            hashes.push(hash_output(&out));
            let ns = done_at.saturating_duration_since(submitted).as_nanos() as u64;
            lat_ns.push(ns);
            class_lat_ns[priority.band()].push(ns);
            if done_at > *last_done {
                *last_done = done_at;
            }
        }
        Err(ServeError::DeadlineExceeded) => counts.deadline_exceeded += 1,
        Err(ServeError::WorkerCrashed { .. }) => counts.worker_crashed += 1,
        Err(e) => {
            eprintln!("{family} query failed unexpectedly: {e} [{}]", e.kind());
            counts.unexpected += 1;
        }
    }
}

/// Nearest-rank percentile of sorted nanosecond latencies, in microseconds.
fn percentile_us(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let rank = ((p * sorted_ns.len() as f64).ceil() as usize).clamp(1, sorted_ns.len()) - 1;
    sorted_ns[rank] as f64 / 1_000.0
}

fn json_entry(
    opts: &Options,
    host_cores: usize,
    dcheck_n: u64,
    results: &[(IndexFamily, LoadResult)],
) -> String {
    let families = results
        .iter()
        .map(|(f, r)| {
            let classes = r
                .classes
                .iter()
                .map(|c| {
                    format!(
                        "\"{}\": {{ \"served\": {}, \"shed\": {}, \"p50_us\": {:.3}, \
                         \"p99_us\": {:.3} }}",
                        c.name, c.served, c.shed, c.p50_us, c.p99_us
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "      \"{}\": {{ \"queries\": {}, \"completed\": {}, \"wall_s\": {:.6}, \
                 \"qps\": {:.1}, \
                 \"p50_us\": {:.3}, \"p99_us\": {:.3}, \"p999_us\": {:.3}, \
                 \"shed\": {}, \"deadline_exceeded\": {}, \"worker_crashed\": {}, \
                 \"slo_sheds\": {}, \"deadline_drops\": {}, \"worker_panics\": {}, \
                 \"worker_restarts\": {}, \
                 \"classes\": {{ {} }}, \
                 \"replay_hash\": \"{:#018x}\" }}",
                f,
                r.queries,
                r.completed,
                r.wall_s,
                r.qps,
                r.p50_us,
                r.p99_us,
                r.p999_us,
                r.shed,
                r.deadline_exceeded,
                r.worker_crashed,
                r.stats.slo_sheds,
                r.stats.deadline_drops,
                r.stats.worker_panics,
                r.stats.worker_restarts,
                classes,
                r.replay_hash
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    format!(
        "  {{\n    \"pr\": \"{}\",\n    \"bench\": \"servebench\",\n    \
         \"config\": {{ \"host_cores\": {}, \"shards\": {}, \"workers_per_shard\": {}, \
         \"batch\": {}, \"queue_capacity\": {}, \"window\": {}, \"seed\": {}, \
         \"queries_per_family\": {}, \"mode\": \"{}\", \
         \"priority_mix_pct\": {}, \"slo_us\": {}, \"deadline_us\": {}, \"chaos\": {} }},\n    \
         \"determinism\": {{ \"queries\": {}, \"configs\": 8, \"identical\": true }},\n    \
         \"families\": {{\n{}\n    }}\n  }}",
        json_escape(&opts.pr_label),
        host_cores,
        opts.shards,
        opts.workers,
        opts.batch,
        opts.queue_capacity,
        if opts.closed_loop {
            1
        } else {
            opts.window.unwrap_or(OPEN_WINDOW)
        },
        opts.seed,
        opts.queries,
        if opts.closed_loop {
            "closed-loop"
        } else {
            "open-loop"
        },
        opts.priority_mix
            .map_or_else(|| "null".into(), |v| v.to_string()),
        opts.slo_us.map_or_else(|| "null".into(), |v| v.to_string()),
        opts.deadline_us
            .map_or_else(|| "null".into(), |v| v.to_string()),
        opts.chaos,
        dcheck_n,
        families
    )
}

fn parse_args() -> Options {
    let mut opts = Options {
        families: IndexFamily::ALL.to_vec(),
        queries: 250_000,
        shards: 2,
        workers: 1,
        batch: 64,
        queue_capacity: 1024,
        window: None,
        seed: 1,
        smoke: false,
        closed_loop: false,
        priority_mix: None,
        deadline_us: None,
        slo_us: None,
        chaos: false,
        archive_dir: None,
        pr_label: String::from("dev"),
        out_path: std::path::PathBuf::from("BENCH_sim.json"),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => {
                opts.smoke = true;
                opts.queries = 2_000;
            }
            "--closed-loop" => {
                opts.closed_loop = true;
            }
            "--chaos" => {
                opts.chaos = true;
            }
            "--family" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage("--family needs a name"));
                opts.families = match v.as_str() {
                    "all" => IndexFamily::ALL.to_vec(),
                    "graph" => vec![IndexFamily::Graph],
                    "kd" => vec![IndexFamily::Kd],
                    "bvh" => vec![IndexFamily::Bvh],
                    "btree" => vec![IndexFamily::Btree],
                    other => usage(&format!("unknown family '{other}'")),
                };
            }
            "--queries" => {
                opts.queries = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--queries needs a number"));
            }
            "--shards" => {
                opts.shards = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--shards needs a number"));
            }
            "--workers" => {
                opts.workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--workers needs a number"));
            }
            "--batch" => {
                opts.batch = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--batch needs a number"));
            }
            "--queue-capacity" => {
                opts.queue_capacity = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--queue-capacity needs a number"));
            }
            "--window" => {
                opts.window = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&w: &usize| w >= 1)
                        .unwrap_or_else(|| usage("--window needs a number >= 1")),
                );
            }
            "--priority-mix" => {
                opts.priority_mix = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&p: &u32| p <= 100)
                        .unwrap_or_else(|| usage("--priority-mix needs a percentage 0-100")),
                );
            }
            "--deadline-us" => {
                opts.deadline_us = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--deadline-us needs a number")),
                );
            }
            "--slo-us" => {
                opts.slo_us = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--slo-us needs a number")),
                );
            }
            "--seed" => {
                opts.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs a number"));
            }
            "--archive-dir" => {
                opts.archive_dir = Some(
                    args.next()
                        .unwrap_or_else(|| usage("--archive-dir needs a directory"))
                        .into(),
                );
            }
            "--pr" => {
                opts.pr_label = args.next().unwrap_or_else(|| usage("--pr needs a label"));
            }
            "--out" => {
                opts.out_path = args
                    .next()
                    .unwrap_or_else(|| usage("--out needs a path"))
                    .into();
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument '{other}'")),
        }
    }
    opts
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: servebench [--smoke] [--closed-loop] [--family graph|kd|bvh|btree|all]\n\
         \x20                 [--queries N] [--shards N] [--workers N] [--batch N]\n\
         \x20                 [--queue-capacity N] [--window N] [--seed S]\n\
         \x20                 [--priority-mix PCT] [--deadline-us N] [--slo-us N] [--chaos]\n\
         \x20                 [--archive-dir DIR] [--pr LABEL] [--out PATH]\n\
         drives seeded query load through the sharded serving engine for each index\n\
         family: first a determinism cross-check (replay hashes must be identical\n\
         across shards {{1,4}} x batch {{1,64}} x workers {{1,2}}), then a measured\n\
         run at the requested topology reporting sustained QPS and p50/p99/p999\n\
         latency. The default discipline is open-loop (--window tickets in flight,\n\
         default 4096: latency at saturation is queue time); --closed-loop keeps one\n\
         query outstanding so the percentiles are pure service latency.\n\
         --priority-mix PCT submits PCT% of queries as Interactive and the rest as\n\
         Batch through non-blocking admission (per-class percentiles and shed counts\n\
         are reported); --slo-us sets the adaptive-shedding p99 target; --deadline-us\n\
         attaches a latency budget to every query; --chaos injects one worker panic\n\
         and one slow shard and requires the supervisor to restart the dead worker.\n\
         Per-query failures are counted by typed class; the exit code is non-zero\n\
         only for unexpected classes. Appends a JSON entry to the trajectory file\n\
         unless --smoke (small counts, no append) is set. --queries is per family."
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsu_bench::ArchiveCache;

    fn btree_served(n: usize, seed: u64) -> Served {
        let cache = ArchiveCache::disabled();
        let index = BtreeIndex::open(&cache, n, seed);
        let space = index.key_space();
        Served {
            family: IndexFamily::Btree,
            index: Arc::new(index),
            gen: Arc::new(move |i| Query::Key(key_stream_nth(0xb7ee, i, space))),
        }
    }

    /// The load discipline is a *measurement* choice, not a semantic one:
    /// open-loop (windowed) and closed-loop (one outstanding) runs over
    /// the same seeded stream must fold to the same replay hash. This is
    /// the pin that makes the `--closed-loop` percentiles comparable with
    /// the open-loop history in BENCH_sim.json.
    #[test]
    fn open_and_closed_loop_replay_hashes_are_identical() {
        let s = btree_served(2_000, 3);
        let cfg = EngineConfig {
            shards: 2,
            workers_per_shard: 2,
            batch: 8,
            queue_capacity: 256,
            ..Default::default()
        };
        let open = run_load(&s, cfg.clone(), 500, OPEN_WINDOW, &LoadPlan::plain());
        let closed = run_load(&s, cfg, 500, 1, &LoadPlan::plain());
        assert_eq!(open.queries, closed.queries);
        assert_eq!(open.completed, 500);
        assert_eq!(closed.completed, 500);
        assert_eq!(
            open.replay_hash, closed.replay_hash,
            "the load discipline changed the answer stream"
        );
    }

    /// A chaos run counts its casualties typed instead of panicking the
    /// driver, and the supervisor restart shows up in the engine stats.
    #[test]
    fn chaos_load_counts_typed_failures_and_restarts() {
        install_quiet_panic_hook();
        let s = btree_served(2_000, 7);
        let cfg = EngineConfig {
            shards: 2,
            workers_per_shard: 1,
            batch: 8,
            queue_capacity: 256,
            ..Default::default()
        };
        let plan = LoadPlan {
            chaos: true,
            ..Default::default()
        };
        let r = run_load(&s, cfg, 400, OPEN_WINDOW, &plan);
        assert_eq!(r.unexpected, 0, "chaos faults must all be typed");
        assert!(r.worker_crashed > 0, "the injected panic killed nobody");
        assert_eq!(
            r.completed + r.worker_crashed,
            400,
            "every query resolved served-or-crashed"
        );
        assert_eq!(r.stats.worker_panics, 1);
        assert!(r.stats.worker_restarts > 0, "supervisor never respawned");
    }

    /// The deterministic mix splitter roughly honors the requested
    /// percentage and is stable across calls.
    #[test]
    fn priority_mix_is_deterministic_and_roughly_proportional() {
        let interactive = (0..10_000u64)
            .filter(|&i| pick_priority(i, 30) == Priority::Interactive)
            .count();
        assert!(
            (2_000..4_000).contains(&interactive),
            "30% mix produced {interactive}/10000 interactive"
        );
        assert_eq!(pick_priority(1234, 30), pick_priority(1234, 30));
    }
}
