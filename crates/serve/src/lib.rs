//! A sharded, batched query-serving engine over the HSU index families.
//!
//! This crate promotes the repo's hierarchical-search kernels
//! (`hsu-graph`, `hsu-kdtree`, `hsu-bvh`, `hsu-btree`) from trace
//! generators into a long-running query service — the ROADMAP's
//! "millions of users" story:
//!
//! - **Persistent indexes** load from `.hsar` archives through the PR-7
//!   [`hsu_bench::ArchiveCache`] (see [`index`]); cold opens build and
//!   store, warm opens are archive reads.
//! - **Batched submission**: the [`engine::Engine`] coalesces queries
//!   into SoA [`batch::QueryBatch`]es sized for the `geometry::batch`
//!   SIMD kernels; every index family answers through its batch entry
//!   point.
//! - **Sharding + backpressure**: bounded per-shard admission queues
//!   (full queue → typed [`error::ServeError::Overloaded`]), per-shard
//!   worker pools with sibling work-stealing.
//! - **Sync and async handles**: a [`handle::Ticket`] both blocks
//!   ([`handle::Ticket::wait`]) and implements `Future`
//!   ([`handle::block_on`] drives it with no runtime dependency).
//! - **Deterministic replay**: per-query answers are pure, and
//!   [`replay`] folds result hashes in submission order, so seeded
//!   streams hash byte-identically across shard/batch/worker configs.
//!
//! The `servebench` binary drives open-loop million-query load over all
//! four families and appends sustained QPS + p50/p99/p999 latency to
//! the `BENCH_sim.json` trajectory.
//!
//! ```no_run
//! use std::sync::Arc;
//! use hsu_serve::prelude::*;
//!
//! let cache = hsu_bench::ArchiveCache::disabled();
//! let index = Arc::new(BtreeIndex::open(&cache, 10_000, 1));
//! let engine = Engine::new(index, EngineConfig::default());
//! let out = engine.query(Query::Key(42)).unwrap();
//! # let _ = out;
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod batch;
pub mod engine;
pub mod error;
pub mod handle;
pub mod index;
pub mod replay;

pub use batch::QueryBatch;
pub use engine::{Engine, EngineConfig};
pub use error::ServeError;
pub use handle::{block_on, Ticket};
pub use hsu_bench::ArchiveCache;
pub use index::{
    BtreeIndex, BvhIndex, GraphIndex, IndexFamily, KdIndex, Query, QueryOutput, SearchIndex,
};

/// The common imports for service users.
pub mod prelude {
    pub use crate::engine::{Engine, EngineConfig};
    pub use crate::error::ServeError;
    pub use crate::handle::{block_on, Ticket};
    pub use crate::index::{
        BtreeIndex, BvhIndex, GraphIndex, IndexFamily, KdIndex, Query, QueryOutput, SearchIndex,
    };
    pub use crate::replay::{combine_hashes, hash_output};
    pub use crate::ArchiveCache;
}
