//! A sharded, batched query-serving engine over the HSU index families.
//!
//! This crate promotes the repo's hierarchical-search kernels
//! (`hsu-graph`, `hsu-kdtree`, `hsu-bvh`, `hsu-btree`) from trace
//! generators into a long-running query service — the ROADMAP's
//! "millions of users" story:
//!
//! - **Persistent indexes** load from `.hsar` archives through the PR-7
//!   [`hsu_bench::ArchiveCache`] (see [`index`]); cold opens build and
//!   store, warm opens are archive reads.
//! - **Batched submission**: the [`engine::Engine`] coalesces queries
//!   into SoA [`batch::QueryBatch`]es sized for the `geometry::batch`
//!   SIMD kernels; every index family answers through its batch entry
//!   point.
//! - **Sharding + backpressure**: bounded per-shard admission queues
//!   (full queue → typed [`error::ServeError::Overloaded`]), per-shard
//!   worker pools with sibling work-stealing.
//! - **Overload resilience**: class-aware admission
//!   ([`admission::SubmitOptions`] — `Interactive` still admits while
//!   `Batch` sheds first), adaptive SLO shedding
//!   ([`admission::SloPolicy`]: a shard over its sliding-window p99
//!   target rejects low-class work before its queue fills), and
//!   per-query deadlines (expired work dropped typed at dequeue and at
//!   `wait`).
//! - **Failure resilience**: a panicking worker fails its in-flight
//!   batch with [`error::ServeError::WorkerCrashed`] and is respawned by
//!   a supervisor under a bounded restart budget; the shard keeps
//!   serving and [`engine::Engine::stats`] counts every panic, restart,
//!   shed, and deadline drop. The [`chaos`] harness injects each fault
//!   class deterministically.
//! - **Sync and async handles**: a [`handle::Ticket`] both blocks
//!   ([`handle::Ticket::wait`]) and implements `Future`
//!   ([`handle::block_on`] drives it with no runtime dependency).
//! - **Deterministic replay**: per-query answers are pure, and
//!   [`replay`] folds result hashes in submission order, so seeded
//!   streams hash byte-identically across shard/batch/worker configs.
//!
//! The `servebench` binary drives open-loop million-query load over all
//! four families and appends sustained QPS + p50/p99/p999 latency to
//! the `BENCH_sim.json` trajectory.
//!
//! ```no_run
//! use std::sync::Arc;
//! use hsu_serve::prelude::*;
//!
//! let cache = hsu_bench::ArchiveCache::disabled();
//! let index = Arc::new(BtreeIndex::open(&cache, 10_000, 1));
//! let engine = Engine::new(index, EngineConfig::default());
//! let out = engine.query(Query::Key(42)).unwrap();
//! # let _ = out;
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod admission;
pub mod batch;
pub mod chaos;
pub mod engine;
pub mod error;
pub mod handle;
pub mod index;
pub mod replay;

pub use admission::{Priority, SloPolicy, SubmitOptions};
pub use batch::QueryBatch;
pub use engine::{Engine, EngineConfig, EngineStats};
pub use error::ServeError;
pub use handle::{block_on, Ticket};
pub use hsu_bench::ArchiveCache;
pub use index::{
    BtreeIndex, BvhIndex, GraphIndex, IndexFamily, KdIndex, Query, QueryOutput, SearchIndex,
};

/// The common imports for service users.
pub mod prelude {
    pub use crate::admission::{Priority, SloPolicy, SubmitOptions};
    pub use crate::engine::{Engine, EngineConfig, EngineStats};
    pub use crate::error::ServeError;
    pub use crate::handle::{block_on, Ticket};
    pub use crate::index::{
        BtreeIndex, BvhIndex, GraphIndex, IndexFamily, KdIndex, Query, QueryOutput, SearchIndex,
    };
    pub use crate::replay::{combine_hashes, hash_output};
    pub use crate::ArchiveCache;
}
