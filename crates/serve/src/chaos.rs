//! Chaos harness: deterministic fault injection for the serving engine.
//!
//! [`ChaosIndex`] wraps any [`SearchIndex`] and injects the serve-side
//! fault classes the engine must survive:
//!
//! - **worker-panic-on-nth-query** ([`ChaosPlan::panic_on`]): the batch
//!   containing the n-th served query panics inside the index — the
//!   engine must fail that batch with `ServeError::WorkerCrashed`,
//!   respawn the worker, and keep serving;
//! - **per-shard slow queries** ([`ChaosPlan::slow_shard`]): batches
//!   executed by a given shard's workers stall for a fixed delay —
//!   the latency inflation that deadlines and SLO shedding must bound.
//!
//! Deadline storms and admission floods are *driver* faults — the tests
//! in `crates/serve/tests/chaos.rs` produce them by submitting with
//! expired deadlines / past the class shares; this module contributes
//! the injection points that need to live inside the index.
//!
//! The wrapper is answer-transparent: every query it does not kill is
//! forwarded to the inner index unchanged, so the replay digest of the
//! *successfully served* subset of a faulted run must match an unfaulted
//! run — the property the chaos tests pin.

use std::panic::PanicHookInfo;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Once};
use std::time::Duration;

use crate::batch::QueryBatch;
use crate::index::{IndexFamily, Query, QueryOutput, SearchIndex};

/// Message prefix of every chaos-injected panic — the quiet panic hook
/// and log scrapers key on it.
pub const CHAOS_PANIC_PREFIX: &str = "chaos: injected worker panic";

/// What faults to inject, and where.
#[derive(Debug, Clone, Default)]
pub struct ChaosPlan {
    /// 1-based global served-query ordinals whose batch panics. Each
    /// ordinal fires at most once (the counter advances past the doomed
    /// batch, so the respawned worker is not re-killed by it).
    pub panic_on: Vec<u64>,
    /// Inject `slow_delay` into every batch executed by a worker whose
    /// home shard is this one (worker identity comes from the
    /// `serve-{shard}-{worker}` thread name).
    pub slow_shard: Option<usize>,
    /// The per-batch stall for `slow_shard`.
    pub slow_delay: Duration,
}

impl ChaosPlan {
    /// A plan that panics the batch containing served query `n` (1-based).
    pub fn panic_on_nth(n: u64) -> Self {
        ChaosPlan {
            panic_on: vec![n],
            ..Default::default()
        }
    }

    /// A plan that stalls every batch served by shard `s` workers.
    pub fn slow_on_shard(s: usize, delay: Duration) -> Self {
        ChaosPlan {
            slow_shard: Some(s),
            slow_delay: delay,
            ..Default::default()
        }
    }
}

/// A fault-injecting wrapper around any served index.
pub struct ChaosIndex {
    inner: Arc<dyn SearchIndex>,
    plan: ChaosPlan,
    served: AtomicU64,
}

impl ChaosIndex {
    /// Wraps `inner` with the fault plan.
    pub fn new(inner: Arc<dyn SearchIndex>, plan: ChaosPlan) -> Self {
        ChaosIndex {
            inner,
            plan,
            served: AtomicU64::new(0),
        }
    }

    /// Queries that have entered execution so far (including those a
    /// panic killed).
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }
}

impl SearchIndex for ChaosIndex {
    fn family(&self) -> IndexFamily {
        self.inner.family()
    }

    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn validate(&self, query: &Query) -> Result<(), crate::error::ServeError> {
        self.inner.validate(query)
    }

    fn query_batch(&self, batch: &QueryBatch) -> Vec<QueryOutput> {
        if let Some(slow) = self.plan.slow_shard {
            if worker_home_shard() == Some(slow) {
                std::thread::sleep(self.plan.slow_delay);
            }
        }
        let len = batch.len() as u64;
        let start = self.served.fetch_add(len, Ordering::Relaxed);
        if self
            .plan
            .panic_on
            .iter()
            .any(|&n| start < n && n <= start + len)
        {
            panic!(
                "{CHAOS_PANIC_PREFIX} (batch covering served queries {}..={})",
                start + 1,
                start + len
            );
        }
        self.inner.query_batch(batch)
    }
}

/// The home shard of the calling engine worker, parsed from the
/// `serve-{shard}-{worker}` thread name. `None` off the worker pool (or
/// for the supervisor and submitters).
pub fn worker_home_shard() -> Option<usize> {
    let thread = std::thread::current();
    let name = thread.name()?;
    let rest = name.strip_prefix("serve-")?;
    let (shard, worker) = rest.split_once('-')?;
    worker.parse::<usize>().ok()?;
    shard.parse().ok()
}

/// Installs (once, process-wide) a panic hook that swallows
/// chaos-injected panics and forwards everything else to the previous
/// hook — keeps intentional crash storms from burying real failures in
/// backtrace noise. Safe to call from concurrent tests.
pub fn install_quiet_panic_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info: &PanicHookInfo<'_>| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.starts_with(CHAOS_PANIC_PREFIX))
                || info
                    .payload()
                    .downcast_ref::<&str>()
                    .is_some_and(|s| s.starts_with(CHAOS_PANIC_PREFIX));
            if !injected {
                previous(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A pure synthetic key index: `key -> Some(2k + 1)`.
    struct PureIndex;

    impl SearchIndex for PureIndex {
        fn family(&self) -> IndexFamily {
            IndexFamily::Btree
        }

        fn dim(&self) -> usize {
            0
        }

        fn query_batch(&self, batch: &QueryBatch) -> Vec<QueryOutput> {
            batch
                .keys()
                .iter()
                .map(|&k| QueryOutput::Value(Some(u64::from(k) * 2 + 1)))
                .collect()
        }
    }

    #[test]
    fn panic_fires_once_on_the_covering_batch() {
        install_quiet_panic_hook();
        let chaos = ChaosIndex::new(Arc::new(PureIndex), ChaosPlan::panic_on_nth(3));
        let mut batch = QueryBatch::new();
        batch.push(&Query::Key(1));
        batch.push(&Query::Key(2));
        assert_eq!(chaos.query_batch(&batch).len(), 2, "queries 1-2 survive");
        let doomed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            chaos.query_batch(&batch) // covers served ordinals 3-4
        }));
        assert!(doomed.is_err(), "the covering batch must panic");
        assert_eq!(
            chaos.query_batch(&batch),
            vec![QueryOutput::Value(Some(3)), QueryOutput::Value(Some(5)),],
            "the ordinal fired once; later batches serve transparently"
        );
        assert_eq!(chaos.served(), 6);
    }

    #[test]
    fn worker_shard_parses_only_engine_worker_names() {
        let parsed = std::thread::Builder::new()
            .name("serve-3-1".into())
            .spawn(worker_home_shard)
            .expect("spawn")
            .join()
            .expect("join");
        assert_eq!(parsed, Some(3));
        assert_eq!(worker_home_shard(), None, "test thread is not a worker");
    }
}
