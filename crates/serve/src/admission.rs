//! Admission policy: priority classes with per-class queue shares,
//! per-family SLO targets, and the sliding latency window that drives
//! adaptive shedding.
//!
//! The overload story has three rungs, from cheapest to last-resort:
//!
//! 1. **Class shares.** Each shard's bounded queue admits a class only
//!    while the *total* queue depth is below that class's share of the
//!    capacity ([`Priority::admit_share_percent`]): `Batch` fills at
//!    most half the queue, `Normal` nine tenths, `Interactive` all of
//!    it. Under a flood the lowest class sheds first while higher
//!    classes still admit — a strict-threshold version of the priority
//!    admission the ROADMAP's serving rung calls for.
//! 2. **SLO shedding.** When a shard's sliding-window p99 completion
//!    latency exceeds the served family's [`SloPolicy`] target, the
//!    shard rejects `Batch` work (and `Normal` work past 2× the target)
//!    with `Overloaded` *before* the queue is actually full, pulling the
//!    queue back toward the latency target instead of the space bound.
//! 3. **Hard bound.** The capacity itself — `Interactive` backpressure.
//!
//! Dequeue is priority-banded: workers drain the highest class first, so
//! interactive latency is decoupled from how deep the batch backlog got.
//! None of this changes any query's *answer* (scheduling moves latency,
//! never results), so the replay-determinism story survives intact.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::index::IndexFamily;

/// Admission class of one submitted query, lowest first. Ordering is
/// meaningful: `Batch < Normal < Interactive`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Bulk / best-effort traffic: first to shed under overload.
    Batch,
    /// The default class.
    Normal,
    /// Latency-sensitive traffic: sheds only at the hard queue bound,
    /// and is dequeued ahead of everything else.
    Interactive,
}

impl Priority {
    /// Every class, lowest first (band index order).
    pub const ALL: [Priority; 3] = [Priority::Batch, Priority::Normal, Priority::Interactive];

    /// Stable lowercase name (CLI flags, JSON keys, labels).
    pub fn name(self) -> &'static str {
        match self {
            Priority::Batch => "batch",
            Priority::Normal => "normal",
            Priority::Interactive => "interactive",
        }
    }

    /// The share of a shard's queue capacity this class may fill, in
    /// percent. A class is admitted only while the total queue depth is
    /// under `capacity * share / 100` (floored at one slot), so lower
    /// classes hit backpressure while higher classes still admit.
    pub fn admit_share_percent(self) -> usize {
        match self {
            Priority::Batch => 50,
            Priority::Normal => 90,
            Priority::Interactive => 100,
        }
    }

    /// Band index into per-class storage, lowest class first. Stable:
    /// `Batch = 0`, `Normal = 1`, `Interactive = 2`.
    pub fn band(self) -> usize {
        self as usize
    }
}

impl std::fmt::Display for Priority {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-submission options: how urgent the query is and how long it is
/// worth waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubmitOptions {
    /// Admission class (default [`Priority::Normal`]).
    pub priority: Priority,
    /// Absolute deadline. A worker that dequeues the query at or past
    /// this instant drops it with `ServeError::DeadlineExceeded`
    /// (delivered through the ticket, never silent), and the ticket's
    /// `wait`/`wait_timed`/`poll` stop blocking once it passes.
    pub deadline: Option<Instant>,
}

impl Default for SubmitOptions {
    fn default() -> Self {
        SubmitOptions {
            priority: Priority::Normal,
            deadline: None,
        }
    }
}

impl SubmitOptions {
    /// Options for one class, no deadline.
    pub fn with_priority(priority: Priority) -> Self {
        SubmitOptions {
            priority,
            ..Default::default()
        }
    }

    /// Returns the options with an absolute deadline `budget` from now.
    pub fn deadline_in(mut self, budget: Duration) -> Self {
        self.deadline = Some(Instant::now() + budget);
        self
    }
}

/// Per-family p99 latency targets driving adaptive shedding.
///
/// A target applies to the family the engine serves; `None` (the
/// default) disables SLO shedding for that family and leaves only the
/// class-share and hard-capacity rungs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SloPolicy {
    targets_us: [Option<u64>; IndexFamily::ALL.len()],
}

impl SloPolicy {
    /// No targets: SLO shedding disabled.
    pub fn none() -> Self {
        Self::default()
    }

    /// The same p99 target (microseconds) for every family.
    pub fn uniform(target_p99_us: u64) -> Self {
        SloPolicy {
            targets_us: [Some(target_p99_us); IndexFamily::ALL.len()],
        }
    }

    /// Sets one family's p99 target in microseconds.
    pub fn with_target(mut self, family: IndexFamily, target_p99_us: u64) -> Self {
        self.targets_us[family_ix(family)] = Some(target_p99_us);
        self
    }

    /// The p99 target for `family`, if one is set.
    pub fn target_p99_us(&self, family: IndexFamily) -> Option<u64> {
        self.targets_us[family_ix(family)]
    }
}

fn family_ix(family: IndexFamily) -> usize {
    IndexFamily::ALL
        .iter()
        .position(|&f| f == family)
        .unwrap_or(0)
}

/// A bounded multi-band queue: one FIFO per class, drained highest class
/// first. The bound is enforced by the caller via [`ClassQueues::len`]
/// against the class's admit limit — the queue itself only stores.
#[derive(Debug)]
pub(crate) struct ClassQueues<T> {
    bands: [std::collections::VecDeque<T>; 3],
    len: usize,
}

impl<T> Default for ClassQueues<T> {
    fn default() -> Self {
        ClassQueues {
            bands: Default::default(),
            len: 0,
        }
    }
}

impl<T> ClassQueues<T> {
    /// Total queued items across all classes.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// True when every band is empty.
    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Enqueues one item in its class band (FIFO within the band).
    pub(crate) fn push(&mut self, priority: Priority, item: T) {
        self.bands[priority.band()].push_back(item);
        self.len += 1;
    }

    /// Dequeues up to `limit` items, highest class first, FIFO within a
    /// class, appending them to `out`. Returns how many were taken.
    pub(crate) fn drain_priority(&mut self, limit: usize, out: &mut Vec<T>) -> usize {
        let mut taken = 0;
        for band in self.bands.iter_mut().rev() {
            while taken < limit {
                match band.pop_front() {
                    Some(item) => {
                        out.push(item);
                        taken += 1;
                    }
                    None => break,
                }
            }
        }
        self.len -= taken;
        taken
    }

    /// Drains everything, lowest-to-highest interleaving irrelevant to
    /// callers that only fail the remainder (engine teardown).
    pub(crate) fn drain_all(&mut self) -> impl Iterator<Item = T> + '_ {
        self.len = 0;
        self.bands.iter_mut().flat_map(|b| b.drain(..))
    }
}

/// The effective admission bound for one class over a queue of
/// `capacity` slots: `capacity * share% / 100`, floored at one slot so
/// no class is configured out of existence.
pub(crate) fn class_admit_limit(priority: Priority, capacity: usize) -> usize {
    (capacity * priority.admit_share_percent() / 100).max(1)
}

/// Number of completion samples a shard's window must hold before SLO
/// shedding activates — prevents one slow cold-start query from shedding
/// a healthy shard.
pub(crate) const SLO_MIN_SAMPLES: usize = 64;

/// Sliding window of recent completion latencies with a cheap cached
/// p99: workers record, admission reads one atomic.
#[derive(Debug)]
pub(crate) struct LatencyWindow {
    /// Ring of the most recent completion latencies, in nanoseconds.
    ring: Mutex<WindowRing>,
    /// Cached p99 in microseconds (`u64::MAX` = not enough samples yet),
    /// refreshed every [`Self::REFRESH`] samples.
    cached_p99_us: AtomicU64,
}

#[derive(Debug)]
struct WindowRing {
    samples: Vec<u64>,
    next: usize,
    recorded: u64,
}

impl Default for LatencyWindow {
    fn default() -> Self {
        LatencyWindow {
            ring: Mutex::new(WindowRing {
                samples: Vec::with_capacity(Self::WINDOW),
                next: 0,
                recorded: 0,
            }),
            cached_p99_us: AtomicU64::new(u64::MAX),
        }
    }
}

impl LatencyWindow {
    const WINDOW: usize = 512;
    const REFRESH: u64 = 32;

    /// Records one completion latency (admission → fulfillment).
    pub(crate) fn record(&self, latency: Duration) {
        let ns = latency.as_nanos().min(u128::from(u64::MAX)) as u64;
        let mut ring = crate::handle::lock_recover(&self.ring);
        if ring.samples.len() < Self::WINDOW {
            ring.samples.push(ns);
        } else {
            let ix = ring.next;
            ring.samples[ix] = ns;
        }
        ring.next = (ring.next + 1) % Self::WINDOW;
        ring.recorded += 1;
        if ring.recorded.is_multiple_of(Self::REFRESH) && ring.samples.len() >= SLO_MIN_SAMPLES {
            let mut sorted = ring.samples.clone();
            sorted.sort_unstable();
            let rank = ((0.99 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
            self.cached_p99_us
                .store(sorted[rank] / 1_000, Ordering::Relaxed);
        }
    }

    /// The window's p99 in microseconds, once at least
    /// [`SLO_MIN_SAMPLES`] completions have been recorded.
    pub(crate) fn p99_us(&self) -> Option<u64> {
        match self.cached_p99_us.load(Ordering::Relaxed) {
            u64::MAX => None,
            v => Some(v),
        }
    }
}

/// Whether a shard whose window p99 is `p99_us` should shed work of
/// `priority` under `target_us`: `Batch` sheds past the target,
/// `Normal` past twice the target, `Interactive` never (it only hits
/// the hard capacity bound).
pub(crate) fn slo_sheds(priority: Priority, p99_us: u64, target_us: u64) -> bool {
    match priority {
        Priority::Batch => p99_us > target_us,
        Priority::Normal => p99_us > target_us.saturating_mul(2),
        Priority::Interactive => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_shares_order_batch_first() {
        let cap = 100;
        assert_eq!(class_admit_limit(Priority::Batch, cap), 50);
        assert_eq!(class_admit_limit(Priority::Normal, cap), 90);
        assert_eq!(class_admit_limit(Priority::Interactive, cap), 100);
        // Tiny queues never configure a class out of existence.
        assert_eq!(class_admit_limit(Priority::Batch, 1), 1);
    }

    #[test]
    fn drain_is_priority_banded_fifo() {
        let mut q: ClassQueues<u32> = ClassQueues::default();
        q.push(Priority::Batch, 1);
        q.push(Priority::Interactive, 2);
        q.push(Priority::Batch, 3);
        q.push(Priority::Normal, 4);
        q.push(Priority::Interactive, 5);
        assert_eq!(q.len(), 5);
        let mut out = Vec::new();
        assert_eq!(q.drain_priority(3, &mut out), 3);
        assert_eq!(out, vec![2, 5, 4], "interactive first, then normal");
        out.clear();
        assert_eq!(q.drain_priority(10, &mut out), 2);
        assert_eq!(out, vec![1, 3], "batch FIFO last");
        assert!(q.is_empty());
    }

    #[test]
    fn window_p99_needs_min_samples_then_tracks() {
        let w = LatencyWindow::default();
        for _ in 0..SLO_MIN_SAMPLES - 1 {
            w.record(Duration::from_micros(10));
        }
        assert_eq!(w.p99_us(), None, "below the sample floor");
        for _ in 0..SLO_MIN_SAMPLES {
            w.record(Duration::from_micros(10));
        }
        let p99 = w.p99_us().expect("window warmed up");
        assert!((9..=11).contains(&p99), "p99 ~10us, got {p99}");
    }

    #[test]
    fn slo_shedding_is_class_graded() {
        assert!(slo_sheds(Priority::Batch, 101, 100));
        assert!(!slo_sheds(Priority::Batch, 100, 100));
        assert!(!slo_sheds(Priority::Normal, 150, 100));
        assert!(slo_sheds(Priority::Normal, 201, 100));
        assert!(!slo_sheds(Priority::Interactive, u64::MAX - 1, 100));
    }
}
