//! The sharded serving engine: bounded admission queues, per-shard
//! worker pools, and batch coalescing.
//!
//! Topology: `shards` admission queues, each with `workers_per_shard`
//! dedicated worker threads. A worker drains up to `batch` queries from
//! its own shard's queue (FIFO), coalesces them into one SoA
//! [`QueryBatch`], and answers them through the index's batch kernels.
//! An idle worker steals from sibling shards' queue fronts before
//! sleeping — the same steal-siblings-FIFO discipline as
//! `hsu_bench::runner::run_jobs` — so a hot shard cannot strand idle
//! capacity.
//!
//! Determinism: every per-query answer is a pure function of
//! `(index, query)` (see [`SearchIndex`]), and tickets carry globally
//! ordered submission ids, so any fold over results **in submission-id
//! order** is byte-identical across shard counts, batch sizes, and
//! worker counts. Scheduling only moves latency, never results.
//!
//! Backpressure: a full shard queue makes [`Engine::try_submit`] return
//! [`ServeError::Overloaded`] immediately; [`Engine::submit`] instead
//! blocks until space frees. Queues never grow past `queue_capacity`.
//!
//! Shutdown: dropping the engine stops admission ([`ServeError::ShuttingDown`]),
//! lets the workers drain every admitted query, then joins them — no
//! ticket is ever dropped unfulfilled.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use crate::batch::QueryBatch;
use crate::error::ServeError;
use crate::handle::{Ticket, TicketState};
use crate::index::{Query, QueryOutput, SearchIndex};

/// Engine topology and admission knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Admission queues (and worker pools) to run. Floored at 1.
    pub shards: usize,
    /// Worker threads per shard. Floored at 1. Size the product with
    /// `hsu_bench::runner::thread_budget3` when a suite or simulation
    /// shares the host.
    pub workers_per_shard: usize,
    /// Most queries one worker coalesces into a single SoA batch.
    /// Floored at 1.
    pub batch: usize,
    /// Per-shard admission bound; a full queue is backpressure.
    /// Floored at 1.
    pub queue_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            shards: 1,
            workers_per_shard: 1,
            batch: 32,
            queue_capacity: 1024,
        }
    }
}

/// One admitted query waiting for a worker.
struct Pending {
    ticket: Arc<TicketState>,
    query: Query,
}

/// One shard's admission queue and its wakeup channels.
#[derive(Default)]
struct Shard {
    queue: Mutex<VecDeque<Pending>>,
    /// Workers sleep here when every queue they can reach is empty.
    work: Condvar,
    /// Blocking submitters sleep here when this queue is full.
    space: Condvar,
}

/// Everything the worker threads share with the handle.
struct Inner {
    index: Arc<dyn SearchIndex>,
    shards: Vec<Shard>,
    shutdown: AtomicBool,
    cfg: EngineConfig,
}

/// A running sharded query service over one [`SearchIndex`].
pub struct Engine {
    inner: Arc<Inner>,
    next_id: AtomicU64,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Engine {
    /// Starts the shard workers and returns the serving handle.
    pub fn new(index: Arc<dyn SearchIndex>, cfg: EngineConfig) -> Self {
        let cfg = EngineConfig {
            shards: cfg.shards.max(1),
            workers_per_shard: cfg.workers_per_shard.max(1),
            batch: cfg.batch.max(1),
            queue_capacity: cfg.queue_capacity.max(1),
        };
        let inner = Arc::new(Inner {
            index,
            shards: (0..cfg.shards).map(|_| Shard::default()).collect(),
            shutdown: AtomicBool::new(false),
            cfg: cfg.clone(),
        });
        let workers = (0..cfg.shards)
            .flat_map(|s| (0..cfg.workers_per_shard).map(move |w| (s, w)))
            .map(|(s, w)| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("serve-{s}-{w}"))
                    .spawn(move || worker_loop(&inner, s))
                    .unwrap_or_else(|e| panic!("spawn shard {s} worker {w}: {e}"))
            })
            .collect();
        Engine {
            inner,
            next_id: AtomicU64::new(0),
            workers,
        }
    }

    /// The resolved configuration (after flooring).
    pub fn config(&self) -> &EngineConfig {
        &self.inner.cfg
    }

    /// Submits a query without blocking. Returns
    /// [`ServeError::Overloaded`] when the target shard's queue is full,
    /// [`ServeError::BadQuery`] / [`ServeError::ShuttingDown`] when the
    /// query can never be served.
    pub fn try_submit(&self, query: Query) -> Result<Ticket, ServeError> {
        self.admit(query, false)
    }

    /// Submits a query, blocking while the target shard's queue is full
    /// (cooperative backpressure for closed-loop callers).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadQuery`] or [`ServeError::ShuttingDown`];
    /// never `Overloaded`.
    pub fn submit(&self, query: Query) -> Result<Ticket, ServeError> {
        self.admit(query, true)
    }

    /// Convenience synchronous round trip: submit and wait.
    pub fn query(&self, query: Query) -> Result<QueryOutput, ServeError> {
        self.try_submit(query)?.wait()
    }

    #[allow(clippy::unwrap_used)] // poisoned queue = panicked worker; propagate
    fn admit(&self, query: Query, block: bool) -> Result<Ticket, ServeError> {
        if self.inner.shutdown.load(Ordering::Acquire) {
            return Err(ServeError::ShuttingDown);
        }
        self.inner.index.validate(&query)?;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let shard_ix = (id % self.inner.cfg.shards as u64) as usize;
        let shard = &self.inner.shards[shard_ix];
        let state = Arc::new(TicketState::default());
        let pending = Pending {
            ticket: Arc::clone(&state),
            query,
        };
        let mut queue = shard.queue.lock().unwrap();
        while queue.len() >= self.inner.cfg.queue_capacity {
            if !block {
                return Err(ServeError::Overloaded {
                    shard: shard_ix,
                    capacity: self.inner.cfg.queue_capacity,
                });
            }
            if self.inner.shutdown.load(Ordering::Acquire) {
                return Err(ServeError::ShuttingDown);
            }
            queue = shard.space.wait(queue).unwrap();
        }
        queue.push_back(pending);
        drop(queue);
        shard.work.notify_one();
        Ok(Ticket::new(id, state))
    }
}

impl Drop for Engine {
    /// Stops admission, drains every admitted query, joins the workers.
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        for shard in &self.inner.shards {
            shard.work.notify_all();
            shard.space.notify_all();
        }
        for w in self.workers.drain(..) {
            if w.join().is_err() {
                eprintln!("serve: worker panicked during drain");
            }
        }
    }
}

/// Pops up to `limit` pending queries from the front of shard `s`'s
/// queue, waking one blocked submitter when space was freed.
#[allow(clippy::unwrap_used)] // poisoned queue = panicked worker; propagate
fn drain(inner: &Inner, s: usize, limit: usize, out: &mut Vec<Pending>) {
    let shard = &inner.shards[s];
    let mut queue = shard.queue.lock().unwrap();
    let take = queue.len().min(limit);
    out.extend(queue.drain(..take));
    drop(queue);
    if take > 0 {
        shard.space.notify_all();
    }
}

/// The body of one shard worker thread: drain own shard, steal from
/// siblings when idle, sleep when everything is empty, exit once the
/// engine is shutting down and every queue has drained.
#[allow(clippy::unwrap_used)] // poisoned queue = panicked worker; propagate
fn worker_loop(inner: &Inner, home: usize) {
    let shards = inner.cfg.shards;
    let mut taken: Vec<Pending> = Vec::new();
    let mut batch = QueryBatch::new();
    loop {
        taken.clear();
        // Own queue first, then steal round-robin from siblings.
        drain(inner, home, inner.cfg.batch, &mut taken);
        if taken.is_empty() {
            for off in 1..shards {
                drain(inner, (home + off) % shards, inner.cfg.batch, &mut taken);
                if !taken.is_empty() {
                    break;
                }
            }
        }
        if taken.is_empty() {
            if inner.shutdown.load(Ordering::Acquire) {
                // Shutdown is only final once every queue is empty —
                // another worker may still be admitting steals.
                let all_empty =
                    (0..shards).all(|s| inner.shards[s].queue.lock().unwrap().is_empty());
                if all_empty {
                    return;
                }
                continue;
            }
            let shard = &inner.shards[home];
            let queue = shard.queue.lock().unwrap();
            if queue.is_empty() && !inner.shutdown.load(Ordering::Acquire) {
                // Timed wait: a steal target may fill while we sleep on
                // our own shard's condvar.
                let _ = shard.work.wait_timeout(queue, Duration::from_millis(5));
            }
            continue;
        }
        batch.clear();
        for p in &taken {
            batch.push(&p.query);
        }
        let outputs = inner.index.query_batch(&batch);
        debug_assert_eq!(outputs.len(), taken.len(), "index answered wrong count");
        for (p, out) in taken.drain(..).zip(outputs) {
            p.ticket.fulfill(Ok(out));
        }
    }
}
