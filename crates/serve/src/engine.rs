//! The sharded serving engine: bounded admission queues, per-shard
//! worker pools, batch coalescing, and overload/failure resilience.
//!
//! Topology: `shards` admission queues, each with `workers_per_shard`
//! dedicated worker threads. A worker drains up to `batch` queries from
//! its own shard's queue (highest priority class first, FIFO within a
//! class), coalesces them into one SoA [`QueryBatch`], and answers them
//! through the index's batch kernels. An idle worker steals from sibling
//! shards' queue fronts before sleeping — the same steal-siblings-FIFO
//! discipline as `hsu_bench::runner::run_jobs` — so a hot shard cannot
//! strand idle capacity.
//!
//! Determinism: every per-query answer is a pure function of
//! `(index, query)` (see [`SearchIndex`]), and tickets carry globally
//! ordered submission ids, so any fold over results **in submission-id
//! order** is byte-identical across shard counts, batch sizes, and
//! worker counts. Scheduling only moves latency, never results.
//!
//! Overload: admission is class-aware ([`SubmitOptions`]) — under load
//! the lowest class sheds first (per-class queue shares), adaptive SLO
//! shedding rejects low-class work once a shard's sliding-window p99
//! exceeds the family's [`SloPolicy`] target, and the queue capacity is
//! the hard bound. All three rungs surface as the same typed
//! [`ServeError::Overloaded`]; [`Engine::stats`] tells them apart.
//!
//! Failure: a query whose deadline has passed at dequeue is dropped with
//! [`ServeError::DeadlineExceeded`] through its ticket, never silently.
//! A worker panic fails its in-flight batch with
//! [`ServeError::WorkerCrashed`], and a supervisor thread respawns the
//! worker (bounded restarts per sliding window) so the shard keeps
//! serving — a poisoned queue mutex is recovered, not propagated.
//!
//! Shutdown: dropping the engine stops admission ([`ServeError::ShuttingDown`]),
//! lets the workers drain every admitted query, then joins them and the
//! supervisor. Any query left unserved because every worker died with
//! the restart budget exhausted is failed with `WorkerCrashed` — no
//! ticket is ever dropped unfulfilled.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::admission::{
    class_admit_limit, slo_sheds, ClassQueues, LatencyWindow, SloPolicy, SubmitOptions,
};
use crate::batch::QueryBatch;
use crate::error::ServeError;
use crate::handle::{lock_recover, Ticket, TicketState};
use crate::index::{Query, QueryOutput, SearchIndex};

/// Engine topology, admission, and supervision knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Admission queues (and worker pools) to run. Floored at 1.
    pub shards: usize,
    /// Worker threads per shard. Floored at 1. Size the product with
    /// `hsu_bench::runner::thread_budget3` when a suite or simulation
    /// shares the host.
    pub workers_per_shard: usize,
    /// Most queries one worker coalesces into a single SoA batch.
    /// Floored at 1.
    pub batch: usize,
    /// Per-shard admission bound; a full queue is backpressure. Lower
    /// priority classes hit their share of this bound first
    /// (`Priority::admit_share_percent`). Floored at 1.
    pub queue_capacity: usize,
    /// Per-family p99 targets for adaptive shedding. The default
    /// ([`SloPolicy::none`]) disables SLO shedding.
    pub slo: SloPolicy,
    /// Most worker respawns allowed within one `restart_window` before
    /// the supervisor stops restarting (counted in
    /// [`EngineStats::restarts_denied`]). Crash loops stay bounded; the
    /// shard keeps serving through siblings.
    pub restart_limit: usize,
    /// The sliding window `restart_limit` applies to.
    pub restart_window: Duration,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            shards: 1,
            workers_per_shard: 1,
            batch: 32,
            queue_capacity: 1024,
            slo: SloPolicy::none(),
            restart_limit: 8,
            restart_window: Duration::from_secs(1),
        }
    }
}

/// A point-in-time snapshot of the engine's resilience counters
/// (monotonic since engine start), taken cheaply from atomics by
/// [`Engine::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Queries admitted into some shard queue.
    pub admitted: u64,
    /// Queries answered successfully by a worker.
    pub completed: u64,
    /// Admissions rejected because the class's queue share was full.
    pub queue_full_sheds: u64,
    /// Admissions rejected by adaptive SLO shedding (queue not full).
    pub slo_sheds: u64,
    /// Admitted queries dropped at dequeue because their deadline had
    /// already passed (each failed its ticket with `DeadlineExceeded`).
    pub deadline_drops: u64,
    /// Worker threads that panicked.
    pub worker_panics: u64,
    /// Worker threads respawned by the supervisor.
    pub worker_restarts: u64,
    /// Respawns refused because `restart_limit` was exhausted inside
    /// `restart_window` (or the OS refused the thread).
    pub restarts_denied: u64,
}

/// The atomic counters behind [`EngineStats`].
#[derive(Debug, Default)]
struct Counters {
    admitted: AtomicU64,
    completed: AtomicU64,
    queue_full_sheds: AtomicU64,
    slo_sheds: AtomicU64,
    deadline_drops: AtomicU64,
    worker_panics: AtomicU64,
    worker_restarts: AtomicU64,
    restarts_denied: AtomicU64,
}

/// One admitted query waiting for a worker.
struct Pending {
    ticket: Arc<TicketState>,
    query: Query,
    /// Admission instant — completion latency feeds the shard's SLO
    /// window.
    admitted: Instant,
}

/// One shard's admission queue and its wakeup channels.
#[derive(Default)]
struct Shard {
    queue: Mutex<ClassQueues<Pending>>,
    /// Workers sleep here when every queue they can reach is empty.
    work: Condvar,
    /// Blocking submitters sleep here when this queue is full.
    space: Condvar,
    /// Sliding window of recent completion latencies (drives SLO sheds).
    latency: LatencyWindow,
}

/// Everything the worker threads share with the handle.
struct Inner {
    index: Arc<dyn SearchIndex>,
    shards: Vec<Shard>,
    shutdown: AtomicBool,
    cfg: EngineConfig,
    stats: Counters,
    /// Workers currently running (spawned minus exited) — the
    /// supervisor's teardown condition.
    live_workers: AtomicUsize,
    /// The SLO p99 target for the served family, resolved once.
    slo_target_us: Option<u64>,
}

/// A crash notification: which worker slot died.
type CrashReport = (usize, usize);

/// A running sharded query service over one [`SearchIndex`].
pub struct Engine {
    inner: Arc<Inner>,
    next_id: AtomicU64,
    workers: Vec<std::thread::JoinHandle<()>>,
    supervisor: Option<std::thread::JoinHandle<()>>,
}

impl Engine {
    /// Starts the shard workers (plus their supervisor) and returns the
    /// serving handle.
    pub fn new(index: Arc<dyn SearchIndex>, cfg: EngineConfig) -> Self {
        let cfg = EngineConfig {
            shards: cfg.shards.max(1),
            workers_per_shard: cfg.workers_per_shard.max(1),
            batch: cfg.batch.max(1),
            queue_capacity: cfg.queue_capacity.max(1),
            ..cfg
        };
        let slo_target_us = cfg.slo.target_p99_us(index.family());
        let inner = Arc::new(Inner {
            index,
            shards: (0..cfg.shards).map(|_| Shard::default()).collect(),
            shutdown: AtomicBool::new(false),
            cfg: cfg.clone(),
            stats: Counters::default(),
            live_workers: AtomicUsize::new(0),
            slo_target_us,
        });
        let (tx, rx) = std::sync::mpsc::channel::<CrashReport>();
        let workers = (0..cfg.shards)
            .flat_map(|s| (0..cfg.workers_per_shard).map(move |w| (s, w)))
            .map(|(s, w)| {
                spawn_worker(&inner, s, w, &tx)
                    .unwrap_or_else(|e| panic!("spawn shard {s} worker {w}: {e}"))
            })
            .collect();
        let supervisor = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("serve-supervisor".into())
                .spawn(move || supervisor_loop(&inner, rx, tx))
                .unwrap_or_else(|e| panic!("spawn serve supervisor: {e}"))
        };
        Engine {
            inner,
            next_id: AtomicU64::new(0),
            workers,
            supervisor: Some(supervisor),
        }
    }

    /// The resolved configuration (after flooring).
    pub fn config(&self) -> &EngineConfig {
        &self.inner.cfg
    }

    /// A cheap snapshot of the resilience counters.
    pub fn stats(&self) -> EngineStats {
        let c = &self.inner.stats;
        EngineStats {
            admitted: c.admitted.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            queue_full_sheds: c.queue_full_sheds.load(Ordering::Relaxed),
            slo_sheds: c.slo_sheds.load(Ordering::Relaxed),
            deadline_drops: c.deadline_drops.load(Ordering::Relaxed),
            worker_panics: c.worker_panics.load(Ordering::Relaxed),
            worker_restarts: c.worker_restarts.load(Ordering::Relaxed),
            restarts_denied: c.restarts_denied.load(Ordering::Relaxed),
        }
    }

    /// Submits a query at [`Priority::Normal`] with no deadline, without
    /// blocking. Returns [`ServeError::Overloaded`] when the target
    /// shard sheds it, [`ServeError::BadQuery`] /
    /// [`ServeError::ShuttingDown`] when the query can never be served.
    pub fn try_submit(&self, query: Query) -> Result<Ticket, ServeError> {
        self.admit(query, SubmitOptions::default(), false)
    }

    /// Like [`Engine::try_submit`] with explicit class and deadline.
    pub fn try_submit_with(&self, query: Query, opts: SubmitOptions) -> Result<Ticket, ServeError> {
        self.admit(query, opts, false)
    }

    /// Submits a query at [`Priority::Normal`] with no deadline,
    /// blocking while the class's queue share is full (cooperative
    /// backpressure for closed-loop callers).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadQuery`] or [`ServeError::ShuttingDown`];
    /// `Overloaded` only when adaptive SLO shedding is configured and
    /// rejects the class outright (blocking cannot help a shed).
    pub fn submit(&self, query: Query) -> Result<Ticket, ServeError> {
        self.admit(query, SubmitOptions::default(), true)
    }

    /// Like [`Engine::submit`] with explicit class and deadline.
    pub fn submit_with(&self, query: Query, opts: SubmitOptions) -> Result<Ticket, ServeError> {
        self.admit(query, opts, true)
    }

    /// Convenience synchronous round trip: submit and wait.
    pub fn query(&self, query: Query) -> Result<QueryOutput, ServeError> {
        self.try_submit(query)?.wait()
    }

    fn admit(&self, query: Query, opts: SubmitOptions, block: bool) -> Result<Ticket, ServeError> {
        if self.inner.shutdown.load(Ordering::Acquire) {
            return Err(ServeError::ShuttingDown);
        }
        self.inner.index.validate(&query)?;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let shard_ix = (id % self.inner.cfg.shards as u64) as usize;
        let shard = &self.inner.shards[shard_ix];
        let capacity = self.inner.cfg.queue_capacity;
        let limit = class_admit_limit(opts.priority, capacity);
        let state = Arc::new(TicketState::with_deadline(opts.deadline));
        let pending = Pending {
            ticket: Arc::clone(&state),
            query,
            admitted: Instant::now(),
        };
        let mut queue = lock_recover(&shard.queue);
        // Adaptive SLO shedding: once the shard's recent p99 is over the
        // family target, low classes shed before the queue fills. Only
        // while the queue is non-empty — an idle shard always admits, so
        // the window keeps refreshing and the shed can clear.
        if !queue.is_empty() {
            if let (Some(target), Some(p99)) = (self.inner.slo_target_us, shard.latency.p99_us()) {
                if slo_sheds(opts.priority, p99, target) {
                    self.inner.stats.slo_sheds.fetch_add(1, Ordering::Relaxed);
                    return Err(ServeError::Overloaded {
                        shard: shard_ix,
                        capacity,
                    });
                }
            }
        }
        while queue.len() >= limit {
            if !block {
                self.inner
                    .stats
                    .queue_full_sheds
                    .fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::Overloaded {
                    shard: shard_ix,
                    capacity,
                });
            }
            if self.inner.shutdown.load(Ordering::Acquire) {
                return Err(ServeError::ShuttingDown);
            }
            queue = shard
                .space
                .wait_timeout(queue, Duration::from_millis(5))
                .unwrap_or_else(|p| p.into_inner())
                .0;
        }
        queue.push(opts.priority, pending);
        self.inner.stats.admitted.fetch_add(1, Ordering::Relaxed);
        drop(queue);
        shard.work.notify_one();
        Ok(Ticket::new(id, state))
    }
}

impl Drop for Engine {
    /// Stops admission, drains every admitted query, joins workers and
    /// supervisor, and fails anything left unserved (possible only when
    /// every worker died with the restart budget exhausted) — no ticket
    /// is ever dropped unfulfilled.
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        for shard in &self.inner.shards {
            shard.work.notify_all();
            shard.space.notify_all();
        }
        for w in self.workers.drain(..) {
            // A crashed worker's join reports the panic it already paid
            // for: counted in `worker_panics`, batch failed typed.
            let _ = w.join();
        }
        if let Some(sup) = self.supervisor.take() {
            let _ = sup.join();
        }
        // Final sweep: with all workers gone, anything still queued can
        // never be served — fail it typed rather than leak the ticket.
        for (s, shard) in self.inner.shards.iter().enumerate() {
            let mut queue = lock_recover(&shard.queue);
            for p in queue.drain_all() {
                p.ticket
                    .try_fulfill(Err(ServeError::WorkerCrashed { shard: s }));
            }
        }
    }
}

/// Spawns one shard worker under supervision: the thread runs the serve
/// loop under `catch_unwind` and reports a crash (after counting it) so
/// the supervisor can respawn the slot.
fn spawn_worker(
    inner: &Arc<Inner>,
    s: usize,
    w: usize,
    tx: &Sender<CrashReport>,
) -> std::io::Result<std::thread::JoinHandle<()>> {
    let worker_inner = Arc::clone(inner);
    let tx = tx.clone();
    inner.live_workers.fetch_add(1, Ordering::AcqRel);
    let spawned = std::thread::Builder::new()
        .name(format!("serve-{s}-{w}"))
        .spawn(move || {
            let outcome = catch_unwind(AssertUnwindSafe(|| worker_loop(&worker_inner, s)));
            worker_inner.live_workers.fetch_sub(1, Ordering::AcqRel);
            if outcome.is_err() {
                worker_inner
                    .stats
                    .worker_panics
                    .fetch_add(1, Ordering::Relaxed);
                let _ = tx.send((s, w));
            }
        });
    if spawned.is_err() {
        inner.live_workers.fetch_sub(1, Ordering::AcqRel);
    }
    spawned
}

/// The supervisor: respawns crashed workers (bounded restarts within
/// `restart_window`), keeps supervising through shutdown so a mid-drain
/// crash still gets a replacement to finish the drain, and exits once
/// the engine is shutting down with no worker left alive.
fn supervisor_loop(inner: &Arc<Inner>, rx: Receiver<CrashReport>, tx: Sender<CrashReport>) {
    let mut respawned: Vec<std::thread::JoinHandle<()>> = Vec::new();
    let mut restart_times: std::collections::VecDeque<Instant> = std::collections::VecDeque::new();
    let handle_crash =
        |(s, w): CrashReport,
         respawned: &mut Vec<std::thread::JoinHandle<()>>,
         restart_times: &mut std::collections::VecDeque<Instant>| {
            let now = Instant::now();
            while restart_times
                .front()
                .is_some_and(|&t| now.saturating_duration_since(t) > inner.cfg.restart_window)
            {
                restart_times.pop_front();
            }
            if restart_times.len() >= inner.cfg.restart_limit {
                inner.stats.restarts_denied.fetch_add(1, Ordering::Relaxed);
                return;
            }
            match spawn_worker(inner, s, w, &tx) {
                Ok(h) => {
                    restart_times.push_back(now);
                    inner.stats.worker_restarts.fetch_add(1, Ordering::Relaxed);
                    // The replacement may need waking: work queued while the
                    // slot was empty saw no notify.
                    inner.shards[s].work.notify_all();
                    respawned.push(h);
                }
                Err(_) => {
                    inner.stats.restarts_denied.fetch_add(1, Ordering::Relaxed);
                }
            }
        };
    loop {
        match rx.recv_timeout(Duration::from_millis(10)) {
            Ok(report) => handle_crash(report, &mut respawned, &mut restart_times),
            Err(RecvTimeoutError::Timeout) => {
                if inner.shutdown.load(Ordering::Acquire) {
                    // Absorb any crash reports racing with teardown
                    // before concluding nobody is left to respawn.
                    while let Ok(report) = rx.try_recv() {
                        handle_crash(report, &mut respawned, &mut restart_times);
                    }
                    if inner.live_workers.load(Ordering::Acquire) == 0 {
                        break;
                    }
                }
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    for h in respawned {
        let _ = h.join();
    }
}

/// Pops up to `limit` pending queries from shard `s`'s queue (highest
/// class first), waking one blocked submitter when space was freed.
fn drain(inner: &Inner, s: usize, limit: usize, out: &mut Vec<Pending>) -> usize {
    let shard = &inner.shards[s];
    let mut queue = lock_recover(&shard.queue);
    let take = queue.drain_priority(limit, out);
    drop(queue);
    if take > 0 {
        shard.space.notify_all();
    }
    take
}

/// The body of one shard worker thread: drain own shard, steal from
/// siblings when idle, sleep when everything is empty, exit once the
/// engine is shutting down and every queue has drained. Expired-deadline
/// queries are dropped typed at dequeue; a panic inside the index fails
/// the whole in-flight batch typed before propagating to supervision.
fn worker_loop(inner: &Inner, home: usize) {
    let shards = inner.cfg.shards;
    let mut taken: Vec<Pending> = Vec::new();
    let mut batch = QueryBatch::new();
    loop {
        taken.clear();
        // Own queue first, then steal round-robin from siblings.
        let mut source = home;
        drain(inner, home, inner.cfg.batch, &mut taken);
        if taken.is_empty() {
            for off in 1..shards {
                let sibling = (home + off) % shards;
                if drain(inner, sibling, inner.cfg.batch, &mut taken) > 0 {
                    source = sibling;
                    break;
                }
            }
        }
        if taken.is_empty() {
            if inner.shutdown.load(Ordering::Acquire) {
                // Shutdown is only final once every queue is empty —
                // another worker may still be admitting steals.
                let all_empty =
                    (0..shards).all(|s| lock_recover(&inner.shards[s].queue).is_empty());
                if all_empty {
                    return;
                }
                continue;
            }
            let shard = &inner.shards[home];
            let queue = lock_recover(&shard.queue);
            if queue.is_empty() && !inner.shutdown.load(Ordering::Acquire) {
                // Timed wait: a steal target may fill while we sleep on
                // our own shard's condvar.
                let _ = shard.work.wait_timeout(queue, Duration::from_millis(5));
            }
            continue;
        }
        // Deadline gate at dequeue: anything already expired is dropped
        // through its ticket, never served late and never silent.
        let now = Instant::now();
        taken.retain(|p| match p.ticket.deadline() {
            Some(d) if now >= d => {
                inner.stats.deadline_drops.fetch_add(1, Ordering::Relaxed);
                p.ticket.fulfill(Err(ServeError::DeadlineExceeded));
                false
            }
            _ => true,
        });
        if taken.is_empty() {
            continue;
        }
        batch.clear();
        for p in &taken {
            batch.push(&p.query);
        }
        match catch_unwind(AssertUnwindSafe(|| inner.index.query_batch(&batch))) {
            Ok(outputs) => {
                debug_assert_eq!(outputs.len(), taken.len(), "index answered wrong count");
                let done = Instant::now();
                for (p, out) in taken.drain(..).zip(outputs) {
                    inner.shards[source]
                        .latency
                        .record(done.saturating_duration_since(p.admitted));
                    p.ticket.fulfill(Ok(out));
                    inner.stats.completed.fetch_add(1, Ordering::Relaxed);
                }
            }
            Err(payload) => {
                // Fail the whole in-flight batch typed, then let the
                // panic reach the supervision wrapper so the crash is
                // counted and the slot respawned.
                for p in taken.drain(..) {
                    p.ticket
                        .try_fulfill(Err(ServeError::WorkerCrashed { shard: home }));
                }
                resume_unwind(payload);
            }
        }
    }
}
