//! SoA query batches — the unit of work a shard worker executes.
//!
//! The engine coalesces individually-submitted queries into one
//! [`QueryBatch`]: vector queries land in a dense row-major coordinate
//! block (the layout `hsu_geometry::batch`'s SIMD kernels vectorize
//! over), key queries in a flat key list. Answers come back in push
//! order, so the engine can match them to tickets positionally.

use crate::index::Query;

/// A structure-of-arrays batch of queries of one family.
#[derive(Debug, Default, Clone)]
pub struct QueryBatch {
    /// Vector dimensionality (0 until the first vector query is pushed).
    dim: usize,
    /// Row-major coordinates of the vector queries, `dim` floats each.
    coords: Vec<f32>,
    /// Lookup keys of the key queries.
    keys: Vec<u32>,
    /// Total queries pushed.
    len: usize,
}

impl QueryBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queries in the batch.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no query has been pushed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Vector dimensionality (0 for a key-only batch).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The dense row-major coordinate block of the vector queries.
    pub fn coords(&self) -> &[f32] {
        &self.coords
    }

    /// The flat key list of the key queries.
    pub fn keys(&self) -> &[u32] {
        &self.keys
    }

    /// Appends one query. The engine validates at admission that every
    /// query in a batch is the same variant and dimension, so a batch is
    /// homogeneous by construction.
    ///
    /// # Panics
    ///
    /// Panics if a vector query's dimension differs from the batch's.
    pub fn push(&mut self, query: &Query) {
        match query {
            Query::Vector(v) => {
                if self.dim == 0 {
                    self.dim = v.len();
                }
                assert_eq!(v.len(), self.dim, "mixed dimensions in one batch");
                self.coords.extend_from_slice(v);
            }
            Query::Key(k) => self.keys.push(*k),
        }
        self.len += 1;
    }

    /// Empties the batch, keeping its allocations for reuse.
    pub fn clear(&mut self) {
        self.dim = 0;
        self.coords.clear();
        self.keys.clear();
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_accumulates_soa() {
        let mut b = QueryBatch::new();
        b.push(&Query::Vector(vec![1.0, 2.0]));
        b.push(&Query::Vector(vec![3.0, 4.0]));
        assert_eq!(b.len(), 2);
        assert_eq!(b.dim(), 2);
        assert_eq!(b.coords(), &[1.0, 2.0, 3.0, 4.0]);
        b.clear();
        assert!(b.is_empty());
        b.push(&Query::Key(7));
        assert_eq!(b.keys(), &[7]);
        assert_eq!(b.len(), 1);
    }
}
