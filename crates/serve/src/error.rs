//! Typed serving errors — the engine refuses work it cannot take instead
//! of queueing without bound or panicking.

use std::fmt;

/// Why the engine rejected (or failed) a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The target shard's admission queue is full. Open-loop callers
    /// should treat this as backpressure: shed the query or retry later.
    Overloaded {
        /// The shard whose queue was full.
        shard: usize,
        /// The per-shard admission-queue bound that was hit.
        capacity: usize,
    },
    /// The engine is draining and no longer admits new queries.
    ShuttingDown,
    /// The query does not fit the served index (wrong variant for the
    /// family, or wrong vector dimension).
    BadQuery(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { shard, capacity } => {
                write!(f, "shard {shard} admission queue full ({capacity} pending)")
            }
            ServeError::ShuttingDown => write!(f, "engine is shutting down"),
            ServeError::BadQuery(why) => write!(f, "bad query: {why}"),
        }
    }
}

impl std::error::Error for ServeError {}
