//! Typed serving errors — the engine refuses work it cannot take instead
//! of queueing without bound or panicking, and fails work it could not
//! finish with an error that names the fault class.

use std::fmt;

/// Why the engine rejected (or failed) a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The target shard refused the query: either its admission queue is
    /// full past the submitting class's share, or adaptive SLO shedding
    /// kicked in (the shard's sliding-window p99 is over its SLO target,
    /// so low-priority work sheds before the queue is actually full).
    /// Open-loop callers should treat this as backpressure: shed the
    /// query or retry later.
    Overloaded {
        /// The shard that refused admission.
        shard: usize,
        /// The per-shard admission-queue bound in force.
        capacity: usize,
    },
    /// The engine is draining and no longer admits new queries.
    ShuttingDown,
    /// The query does not fit the served index (wrong variant for the
    /// family, or wrong vector dimension).
    BadQuery(String),
    /// The query's deadline expired before a worker could serve it (or
    /// before the caller's `wait` saw a result). The query was dropped,
    /// never silently served late.
    DeadlineExceeded,
    /// The worker serving this query's batch panicked. The query was
    /// admitted but not answered; the engine respawned the worker (or
    /// exhausted its restart budget) and kept the shard serving.
    WorkerCrashed {
        /// The home shard of the worker that crashed.
        shard: usize,
    },
    /// The index could not be opened (non-point dataset for a vector
    /// family, missing ANN metric, …). Opening never aborts the process.
    BadIndex(String),
}

impl ServeError {
    /// Stable lowercase tag naming the fault class — what harnesses and
    /// `servebench` count by.
    pub fn kind(&self) -> &'static str {
        match self {
            ServeError::Overloaded { .. } => "overloaded",
            ServeError::ShuttingDown => "shutting-down",
            ServeError::BadQuery(_) => "bad-query",
            ServeError::DeadlineExceeded => "deadline-exceeded",
            ServeError::WorkerCrashed { .. } => "worker-crashed",
            ServeError::BadIndex(_) => "bad-index",
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { shard, capacity } => {
                write!(f, "shard {shard} shed the query (queue bound {capacity})")
            }
            ServeError::ShuttingDown => write!(f, "engine is shutting down"),
            ServeError::BadQuery(why) => write!(f, "bad query: {why}"),
            ServeError::DeadlineExceeded => write!(f, "deadline exceeded before service"),
            ServeError::WorkerCrashed { shard } => {
                write!(
                    f,
                    "worker on shard {shard} crashed while serving this batch"
                )
            }
            ServeError::BadIndex(why) => write!(f, "bad index: {why}"),
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_stable_and_distinct() {
        let all = [
            ServeError::Overloaded {
                shard: 0,
                capacity: 1,
            },
            ServeError::ShuttingDown,
            ServeError::BadQuery("x".into()),
            ServeError::DeadlineExceeded,
            ServeError::WorkerCrashed { shard: 0 },
            ServeError::BadIndex("x".into()),
        ];
        let kinds: Vec<_> = all.iter().map(ServeError::kind).collect();
        let mut dedup = kinds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), all.len(), "kind tags must be distinct");
        assert_eq!(kinds[0], "overloaded");
        assert_eq!(kinds[3], "deadline-exceeded");
        assert_eq!(kinds[4], "worker-crashed");
    }
}
