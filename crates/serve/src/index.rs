//! The served index families behind one batched query trait.
//!
//! Each wrapper pairs a pre-built hierarchical index with the dataset it
//! was built over and answers whole [`QueryBatch`]es through the batch
//! entry points the index crates expose (`search_batch`, `knn_batch`,
//! `radius_knn_batch`, `get_many_counted`). Every per-query answer is a
//! pure function of `(index, query)` — bit-identical no matter how the
//! engine shards, batches, or schedules the stream — which is what makes
//! the service replay-testable.
//!
//! Construction goes through the PR-7 [`ArchiveCache`]: indexes are
//! loaded from `.hsar` archives when a content key matches and rebuilt
//! (then stored back) when not. Graph/k-d/BVH keys reuse the suite's
//! exact key grammar, so `servebench` and `repro` share one archive
//! directory.

use hsu_bench::ArchiveCache;
use hsu_bvh::{Bvh2, PointPrimitive};
use hsu_datasets::{Dataset, DatasetId};
use hsu_geometry::point::PointSet;
use hsu_geometry::Vec3;
use hsu_graph::{GraphConfig, HnswGraph};
use hsu_kdtree::KdTree;
use hsu_kernels::btree::{BtreeParams, BtreeWorkload};
use hsu_kernels::bvhnn::{BvhnnParams, BvhnnWorkload};

use crate::batch::QueryBatch;
use crate::error::ServeError;

/// The four hierarchical-search families the engine can serve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IndexFamily {
    /// HNSW graph ANN (the paper's GGNN workload).
    Graph,
    /// Best-bin-first k-d tree (FLANN).
    Kd,
    /// Radius-truncated BVH kNN (RTNN / BVH-NN).
    Bvh,
    /// B+tree point lookups (Rodinia).
    Btree,
}

impl IndexFamily {
    /// Stable lowercase name (CLI flags, JSON keys, labels).
    pub fn name(self) -> &'static str {
        match self {
            IndexFamily::Graph => "graph",
            IndexFamily::Kd => "kd",
            IndexFamily::Bvh => "bvh",
            IndexFamily::Btree => "btree",
        }
    }

    /// All families, in the fixed reporting order.
    pub const ALL: [IndexFamily; 4] = [
        IndexFamily::Graph,
        IndexFamily::Kd,
        IndexFamily::Bvh,
        IndexFamily::Btree,
    ];
}

impl std::fmt::Display for IndexFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One query, as submitted by a client.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// A point for the vector families (dimension must match the index).
    Vector(Vec<f32>),
    /// A lookup key for the B+tree family.
    Key(u32),
}

/// One query's answer.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutput {
    /// `(id, distance)` pairs, closest first (squared distance for the
    /// BVH family, metric distance otherwise).
    Neighbors(Vec<(u32, f32)>),
    /// The value under a key, when present.
    Value(Option<u64>),
}

/// A served index: answers homogeneous [`QueryBatch`]es.
///
/// Implementations must be pure per query — the answer to query `q`
/// must not depend on what else is in the batch or on any interior
/// mutability — so the engine can re-partition the stream freely
/// without changing results.
pub trait SearchIndex: Send + Sync {
    /// Which family this index serves.
    fn family(&self) -> IndexFamily;

    /// Expected vector dimension, 0 for key indexes.
    fn dim(&self) -> usize;

    /// Checks a query fits this index (variant and dimension).
    fn validate(&self, query: &Query) -> Result<(), ServeError> {
        match (self.family(), query) {
            (IndexFamily::Btree, Query::Key(_)) => Ok(()),
            (IndexFamily::Btree, Query::Vector(_)) => {
                Err(ServeError::BadQuery("btree index takes Query::Key".into()))
            }
            (_, Query::Key(_)) => Err(ServeError::BadQuery(format!(
                "{} index takes Query::Vector",
                self.family()
            ))),
            (_, Query::Vector(v)) => {
                if v.len() == self.dim() {
                    Ok(())
                } else {
                    Err(ServeError::BadQuery(format!(
                        "dimension {} != index dimension {}",
                        v.len(),
                        self.dim()
                    )))
                }
            }
        }
    }

    /// Answers every query in the batch, in push order.
    fn query_batch(&self, batch: &QueryBatch) -> Vec<QueryOutput>;
}

/// The generated dataset for a served index, via the cache when
/// possible — same key grammar as the suite, so archives are shared.
///
/// A non-point dataset is a typed [`ServeError::BadIndex`], never an
/// abort: index opening is a service-startup path.
fn cached_dataset(
    cache: &ArchiveCache,
    id: DatasetId,
    seed: u64,
    n: usize,
) -> Result<PointSet, ServeError> {
    let dkey = format!("hsar-dataset-v1|{id:?}|seed={seed}|n={n}");
    let stem = format!("dataset-{id:?}");
    let ds = cache.load_dataset(&stem, &dkey, id).unwrap_or_else(|| {
        let ds = Dataset::generate_scaled(id, seed, Some(n));
        cache.store_dataset(&stem, &dkey, &ds);
        ds
    });
    match ds.points() {
        Some(p) => Ok(p.clone()),
        None => Err(ServeError::BadIndex(format!(
            "dataset {id:?} is not a point dataset"
        ))),
    }
}

/// HNSW graph ANN service (k-nearest with an `ef` candidate queue).
pub struct GraphIndex {
    data: PointSet,
    graph: HnswGraph,
    k: usize,
    ef: usize,
}

impl GraphIndex {
    /// Loads (or builds and caches) a graph index over `n` points of
    /// dataset `id`, using the suite's graph cache key so `servebench`
    /// and `repro` share archives.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadIndex`] if `id` is not an ANN point dataset (no
    /// metric, or not a point cloud) — opening never aborts the process.
    pub fn open(
        cache: &ArchiveCache,
        id: DatasetId,
        n: usize,
        seed: u64,
        k: usize,
        ef: usize,
    ) -> Result<Self, ServeError> {
        let spec = hsu_datasets::spec(id);
        let Some(metric) = spec.metric else {
            return Err(ServeError::BadIndex(format!(
                "ANN dataset {id:?} has no metric"
            )));
        };
        let data = cached_dataset(cache, id, seed, n)?;
        let gcfg = GraphConfig {
            m: 16,
            ef_construction: ef.max(32),
            ..Default::default()
        };
        let gkey = format!("hsar-graph-v1|{id:?}|seed={seed}|n={n}|metric={metric:?}|{gcfg:?}");
        let gstem = format!("graph-{id:?}");
        let graph = cache.load_graph(&gstem, &gkey).unwrap_or_else(|| {
            let graph = HnswGraph::build(&data, metric, gcfg, seed);
            cache.store_graph(&gstem, &gkey, &graph);
            graph
        });
        Ok(Self { data, graph, k, ef })
    }

    /// The dataset the index serves — query generators sample from it.
    pub fn data(&self) -> &PointSet {
        &self.data
    }
}

impl SearchIndex for GraphIndex {
    fn family(&self) -> IndexFamily {
        IndexFamily::Graph
    }

    fn dim(&self) -> usize {
        self.data.dim()
    }

    fn query_batch(&self, batch: &QueryBatch) -> Vec<QueryOutput> {
        self.graph
            .search_batch(&self.data, batch.coords(), self.k, self.ef)
            .into_iter()
            .map(|(hits, _)| QueryOutput::Neighbors(hits))
            .collect()
    }
}

/// Best-bin-first k-d tree service (FLANN-style, fixed check budget).
pub struct KdIndex {
    data: PointSet,
    tree: KdTree,
    k: usize,
    checks: usize,
}

impl KdIndex {
    /// Loads (or builds and caches) a k-d index over `n` points of the
    /// 3-D dataset `id`, using the suite's k-d cache key.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadIndex`] if `id` is not a point dataset.
    pub fn open(
        cache: &ArchiveCache,
        id: DatasetId,
        n: usize,
        seed: u64,
        k: usize,
        checks: usize,
    ) -> Result<Self, ServeError> {
        let data = cached_dataset(cache, id, seed, n)?;
        let kkey = format!("hsar-kdtree-v1|{id:?}|seed={seed}|n={n}|leaf=4|metric=euclid");
        let kstem = format!("kdtree-{id:?}");
        let tree = cache.load_kdtree(&kstem, &kkey).unwrap_or_else(|| {
            let tree = hsu_kernels::flann::FlannWorkload::build_tree(&data);
            cache.store_kdtree(&kstem, &kkey, &tree);
            tree
        });
        Ok(Self {
            data,
            tree,
            k,
            checks,
        })
    }

    /// The dataset the index serves — query generators sample from it.
    pub fn data(&self) -> &PointSet {
        &self.data
    }
}

impl SearchIndex for KdIndex {
    fn family(&self) -> IndexFamily {
        IndexFamily::Kd
    }

    fn dim(&self) -> usize {
        self.data.dim()
    }

    fn query_batch(&self, batch: &QueryBatch) -> Vec<QueryOutput> {
        self.tree
            .knn_batch(&self.data, batch.coords(), self.k, self.checks)
            .into_iter()
            .map(|(hits, _)| QueryOutput::Neighbors(hits))
            .collect()
    }
}

/// Radius-truncated BVH kNN service (RTNN formulation, 3-D only).
pub struct BvhIndex {
    data: PointSet,
    bvh: Bvh2,
    prims: Vec<PointPrimitive>,
    radius: f32,
    k: usize,
}

impl BvhIndex {
    /// Loads (or builds and caches) a BVH index over `n` points of the
    /// 3-D dataset `id`, using the suite's BVH cache key (LBVH flavor,
    /// radius 1.5× the median-NN heuristic).
    ///
    /// # Errors
    ///
    /// [`ServeError::BadIndex`] if `id` is not a 3-D point dataset.
    pub fn open(
        cache: &ArchiveCache,
        id: DatasetId,
        n: usize,
        seed: u64,
        k: usize,
    ) -> Result<Self, ServeError> {
        let data = cached_dataset(cache, id, seed, n)?;
        if data.dim() != 3 {
            return Err(ServeError::BadIndex(format!(
                "BVH family serves 3-D points, dataset {id:?} has dimension {}",
                data.dim()
            )));
        }
        let bparams = BvhnnParams {
            points: n,
            queries: 0,
            radius_scale: 1.5,
            flavor: Default::default(),
            seed,
        };
        let bkey = format!(
            "hsar-bvh-v1|{id:?}|seed={seed}|n={n}|flavor={:?}|rs={}",
            bparams.flavor, bparams.radius_scale
        );
        let bstem = format!("bvh-{id:?}");
        let (bvh, radius) = cache.load_bvh(&bstem, &bkey).unwrap_or_else(|| {
            let (bvh, radius) = BvhnnWorkload::plan(&bparams, &data);
            cache.store_bvh(&bstem, &bkey, &bvh, radius);
            (bvh, radius)
        });
        let prims = data
            .iter()
            .enumerate()
            .map(|(i, p)| PointPrimitive::new(i as u32, Vec3::new(p[0], p[1], p[2]), radius))
            .collect();
        Ok(Self {
            data,
            bvh,
            prims,
            radius,
            k,
        })
    }

    /// The dataset the index serves — query generators sample from it.
    pub fn data(&self) -> &PointSet {
        &self.data
    }
}

impl SearchIndex for BvhIndex {
    fn family(&self) -> IndexFamily {
        IndexFamily::Bvh
    }

    fn dim(&self) -> usize {
        3
    }

    fn query_batch(&self, batch: &QueryBatch) -> Vec<QueryOutput> {
        let queries: Vec<Vec3> = batch
            .coords()
            .chunks_exact(3)
            .map(|c| Vec3::new(c[0], c[1], c[2]))
            .collect();
        self.bvh
            .radius_knn_batch(&self.prims, &queries, self.radius, self.k)
            .into_iter()
            .map(|(hits, _)| {
                QueryOutput::Neighbors(
                    hits.into_iter()
                        .map(|nb| (nb.id, nb.distance_squared))
                        .collect(),
                )
            })
            .collect()
    }
}

/// B+tree point-lookup service (Rodinia branch factor 256).
pub struct BtreeIndex {
    tree: hsu_btree::BPlusTree,
    /// Half-open key space the generator drew from — the key-stream
    /// generators need it to produce a realistic present/absent mix.
    key_space: u32,
}

impl BtreeIndex {
    /// Loads (or builds and caches) a B+tree over `keys` seeded
    /// Rodinia-style pairs (uniform 24-bit keys).
    pub fn open(cache: &ArchiveCache, keys: usize, seed: u64) -> Self {
        let params = BtreeParams {
            keys,
            queries: 0,
            branch: 256,
            seed,
        };
        let ikey = format!("hsar-btree-v1|serve|keys={keys}|branch=256|seed={seed}");
        let istem = "btree-serve".to_string();
        let tree = cache.load_btree(&istem, &ikey).unwrap_or_else(|| {
            let (pairs, _) = BtreeWorkload::generate_inputs(&params);
            let tree = hsu_btree::BPlusTree::bulk_build(pairs, params.branch);
            cache.store_btree(&istem, &ikey, &tree);
            tree
        });
        Self {
            tree,
            key_space: 1 << 24,
        }
    }

    /// The half-open key space lookups should be drawn from.
    pub fn key_space(&self) -> u32 {
        self.key_space
    }
}

impl SearchIndex for BtreeIndex {
    fn family(&self) -> IndexFamily {
        IndexFamily::Btree
    }

    fn dim(&self) -> usize {
        0
    }

    fn query_batch(&self, batch: &QueryBatch) -> Vec<QueryOutput> {
        self.tree
            .get_many_counted(batch.keys())
            .into_iter()
            .map(|(v, _)| QueryOutput::Value(v))
            .collect()
    }
}
