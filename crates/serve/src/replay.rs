//! Deterministic replay hashing.
//!
//! The service's golden-test story: a seeded query stream's per-query
//! results are pure, so hashing each [`QueryOutput`] and folding the
//! hashes **in submission-id order** yields one `u64` that must be
//! byte-identical across shard counts, batch sizes, and worker counts.
//! The hash is FNV-1a-64 over a canonical little-endian byte encoding —
//! the same hash family the `.hsar` archive checksums use.

use crate::index::QueryOutput;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01b3;

fn fnv1a(h: u64, bytes: &[u8]) -> u64 {
    let mut h = h;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a-64 over a canonical encoding of one query's output.
///
/// Encoding: a variant tag byte, then for neighbours each `(id,
/// distance-bits)` pair little-endian, for values a presence byte and
/// the value little-endian. Distances hash by bit pattern, so any
/// floating-point drift (reassociation, FMA contraction) changes the
/// hash — that is the point.
pub fn hash_output(out: &QueryOutput) -> u64 {
    match out {
        QueryOutput::Neighbors(hits) => {
            let mut h = fnv1a(FNV_OFFSET, &[0u8]);
            for &(id, d) in hits {
                h = fnv1a(h, &id.to_le_bytes());
                h = fnv1a(h, &d.to_bits().to_le_bytes());
            }
            h
        }
        QueryOutput::Value(v) => {
            let h = fnv1a(FNV_OFFSET, &[1u8]);
            match v {
                Some(x) => fnv1a(fnv1a(h, &[1u8]), &x.to_le_bytes()),
                None => fnv1a(h, &[0u8]),
            }
        }
    }
}

/// Folds per-query hashes (supplied in submission order) into the
/// replay digest.
pub fn combine_hashes<I: IntoIterator<Item = u64>>(hashes: I) -> u64 {
    let mut h = FNV_OFFSET;
    for x in hashes {
        h = fnv1a(h, &x.to_le_bytes());
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_distinguishes_outputs() {
        let a = QueryOutput::Neighbors(vec![(1, 0.5), (2, 0.75)]);
        let b = QueryOutput::Neighbors(vec![(2, 0.75), (1, 0.5)]);
        assert_ne!(hash_output(&a), hash_output(&b), "order matters");
        assert_eq!(hash_output(&a), hash_output(&a.clone()));
        assert_ne!(
            hash_output(&QueryOutput::Value(Some(0))),
            hash_output(&QueryOutput::Value(None))
        );
        assert_ne!(
            hash_output(&QueryOutput::Neighbors(vec![])),
            hash_output(&QueryOutput::Value(None)),
            "variant tag is hashed"
        );
    }

    #[test]
    fn combine_is_order_sensitive() {
        assert_ne!(combine_hashes([1, 2]), combine_hashes([2, 1]));
        assert_eq!(combine_hashes([1, 2, 3]), combine_hashes([1, 2, 3]));
    }
}
