//! Completion handles for submitted queries.
//!
//! A [`Ticket`] is both a blocking handle ([`Ticket::wait`]) and a
//! pollable `std::future::Future`, with no async runtime required:
//! [`block_on`] drives any future on the calling thread via
//! `std::task::Wake` + park/unpark. The engine fulfills the ticket from
//! a shard worker; whichever consumer is attached (a parked waiter, a
//! stored waker, or a later poll) observes the same single result.
//!
//! Tickets carry their submission's deadline: `wait`/`wait_timed` stop
//! blocking once it passes (returning `ServeError::DeadlineExceeded`),
//! and a `poll` past the deadline resolves the same way — a caller is
//! never parked beyond the latency budget it declared.

use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::task::{Context, Poll, Waker};
use std::time::{Duration, Instant};

use crate::error::ServeError;
use crate::index::QueryOutput;

/// Locks a mutex, recovering the guard from a poisoned lock.
///
/// A poisoned serve mutex means some worker panicked while holding it;
/// the protected state (queues, result slots) is push/pop-consistent at
/// every instant, so the data is still valid — supervision handles the
/// crashed worker, and the lock keeps serving instead of cascading the
/// panic into every submitter.
pub(crate) fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One query's result slot.
#[derive(Debug, Default)]
struct Slot {
    result: Option<Result<QueryOutput, ServeError>>,
    /// When the worker fulfilled the slot — lets a latency harness that
    /// redeems tickets in submission order still measure true per-query
    /// completion times, free of head-of-line waiting skew.
    completed: Option<Instant>,
    waker: Option<Waker>,
}

/// Shared completion state between the engine and the ticket holder.
#[derive(Debug, Default)]
pub(crate) struct TicketState {
    slot: Mutex<Slot>,
    done: Condvar,
    /// The submission's absolute deadline, if one was declared.
    deadline: Option<Instant>,
}

impl TicketState {
    /// State for a submission with an optional deadline.
    pub(crate) fn with_deadline(deadline: Option<Instant>) -> Self {
        TicketState {
            deadline,
            ..Default::default()
        }
    }

    /// The submission's deadline, if any.
    pub(crate) fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Stores the result and wakes every kind of waiter — first write
    /// wins, later writes are dropped. Returns whether this call won.
    ///
    /// Idempotency matters for crash recovery: a panicking worker fails
    /// its whole in-flight batch, and must not clobber entries it had
    /// already answered.
    pub(crate) fn try_fulfill(&self, result: Result<QueryOutput, ServeError>) -> bool {
        let waker = {
            let mut slot = lock_recover(&self.slot);
            if slot.result.is_some() {
                return false;
            }
            slot.result = Some(result);
            slot.completed = Some(Instant::now());
            slot.waker.take()
        };
        self.done.notify_all();
        if let Some(w) = waker {
            w.wake();
        }
        true
    }

    /// Stores the result, asserting (in debug builds) nobody beat us.
    pub(crate) fn fulfill(&self, result: Result<QueryOutput, ServeError>) {
        let won = self.try_fulfill(result);
        debug_assert!(won, "ticket fulfilled twice");
    }
}

/// A claim on one submitted query's eventual result.
///
/// Obtain one from `Engine::submit`/`Engine::try_submit`; redeem it by
/// blocking ([`Ticket::wait`]), polling ([`Ticket::try_take`]), or
/// awaiting it as a future (e.g. under [`block_on`]).
#[derive(Debug)]
pub struct Ticket {
    id: u64,
    state: Arc<TicketState>,
}

impl Ticket {
    pub(crate) fn new(id: u64, state: Arc<TicketState>) -> Self {
        Self { id, state }
    }

    /// The engine-assigned submission id — globally ordered, so callers
    /// can fold result hashes in submission order regardless of
    /// completion order.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The submission's absolute deadline, if one was declared.
    pub fn deadline(&self) -> Option<Instant> {
        self.state.deadline()
    }

    /// Blocks until the query completes — or, when the submission
    /// carried a deadline, until that deadline passes, in which case it
    /// returns [`ServeError::DeadlineExceeded`] instead of blocking on.
    /// A result that is already present is always returned, even past
    /// the deadline.
    pub fn wait(self) -> Result<QueryOutput, ServeError> {
        self.wait_timed().0
    }

    /// Takes the result if the query already completed, without blocking.
    pub fn try_take(&self) -> Option<Result<QueryOutput, ServeError>> {
        let mut slot = lock_recover(&self.state.slot);
        slot.result.take()
    }

    /// Like [`Ticket::wait`], but also returns the instant the worker
    /// fulfilled the query — the end point a latency harness should
    /// measure against, even when it redeems tickets in submission order
    /// long after they completed. Deadline expiry reports the expiry
    /// instant.
    pub fn wait_timed(self) -> (Result<QueryOutput, ServeError>, Instant) {
        let mut slot = lock_recover(&self.state.slot);
        loop {
            if let Some(r) = slot.result.take() {
                let at = slot.completed.unwrap_or_else(Instant::now);
                return (r, at);
            }
            match self.state.deadline {
                None => {
                    slot = self
                        .state
                        .done
                        .wait(slot)
                        .unwrap_or_else(|p| p.into_inner())
                }
                Some(deadline) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return (Err(ServeError::DeadlineExceeded), now);
                    }
                    let (guard, _) = self
                        .state
                        .done
                        .wait_timeout(slot, deadline - now)
                        .unwrap_or_else(|p| p.into_inner());
                    slot = guard;
                }
            }
        }
    }
}

impl Future for Ticket {
    type Output = Result<QueryOutput, ServeError>;

    /// Resolves with the result, or with
    /// [`ServeError::DeadlineExceeded`] once the deadline has passed at
    /// poll time. There is no embedded timer: an executor learns of the
    /// expiry at its next poll (a present result still wins that race).
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut slot = lock_recover(&self.state.slot);
        match slot.result.take() {
            Some(r) => Poll::Ready(r),
            None => {
                if let Some(deadline) = self.state.deadline {
                    if Instant::now() >= deadline {
                        return Poll::Ready(Err(ServeError::DeadlineExceeded));
                    }
                }
                slot.waker = Some(cx.waker().clone());
                Poll::Pending
            }
        }
    }
}

/// Drives a future to completion on the calling thread — the minimal
/// executor the pollable handle needs, built on `std::task::Wake` and
/// thread park/unpark (no external async runtime).
pub fn block_on<F: Future>(fut: F) -> F::Output {
    struct ThreadWaker(std::thread::Thread);
    impl std::task::Wake for ThreadWaker {
        fn wake(self: Arc<Self>) {
            self.0.unpark();
        }
    }
    let waker = Waker::from(Arc::new(ThreadWaker(std::thread::current())));
    let mut cx = Context::from_waker(&waker);
    let mut fut = std::pin::pin!(fut);
    loop {
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(v) => return v,
            Poll::Pending => std::thread::park_timeout(Duration::from_millis(5)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wait_returns_a_prior_fulfillment() {
        let state = Arc::new(TicketState::default());
        state.fulfill(Ok(QueryOutput::Value(Some(9))));
        let t = Ticket::new(0, state);
        assert_eq!(t.wait(), Ok(QueryOutput::Value(Some(9))));
    }

    #[test]
    fn future_polls_ready_after_cross_thread_fulfillment() {
        let state = Arc::new(TicketState::default());
        let t = Ticket::new(1, Arc::clone(&state));
        let worker = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            state.fulfill(Ok(QueryOutput::Value(None)));
        });
        assert_eq!(block_on(t), Ok(QueryOutput::Value(None)));
        worker.join().expect("fulfiller panicked");
    }

    #[test]
    fn try_take_is_non_blocking() {
        let state = Arc::new(TicketState::default());
        let t = Ticket::new(2, Arc::clone(&state));
        assert!(t.try_take().is_none());
        state.fulfill(Err(ServeError::ShuttingDown));
        assert_eq!(t.try_take(), Some(Err(ServeError::ShuttingDown)));
        assert!(t.try_take().is_none(), "result is taken exactly once");
    }

    #[test]
    fn first_fulfillment_wins() {
        let state = Arc::new(TicketState::default());
        assert!(state.try_fulfill(Ok(QueryOutput::Value(Some(1)))));
        assert!(!state.try_fulfill(Err(ServeError::WorkerCrashed { shard: 0 })));
        let t = Ticket::new(3, state);
        assert_eq!(t.wait(), Ok(QueryOutput::Value(Some(1))));
    }

    #[test]
    fn wait_expires_at_the_deadline_instead_of_blocking() {
        let state = Arc::new(TicketState::with_deadline(Some(
            Instant::now() + Duration::from_millis(30),
        )));
        let t = Ticket::new(4, state);
        let t0 = Instant::now();
        let (result, at) = t.wait_timed();
        assert_eq!(result, Err(ServeError::DeadlineExceeded));
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "wait_timed blocked far past the deadline"
        );
        assert!(at >= t0, "expiry instant is the observation time");
    }

    #[test]
    fn poll_past_the_deadline_resolves_deadline_exceeded() {
        let state = Arc::new(TicketState::with_deadline(Some(
            Instant::now() - Duration::from_millis(1),
        )));
        let t = Ticket::new(5, state);
        assert_eq!(block_on(t), Err(ServeError::DeadlineExceeded));
    }

    #[test]
    fn a_present_result_beats_the_deadline() {
        let state = Arc::new(TicketState::with_deadline(Some(
            Instant::now() - Duration::from_millis(1),
        )));
        state.fulfill(Ok(QueryOutput::Value(Some(7))));
        let t = Ticket::new(6, state);
        assert_eq!(
            t.wait(),
            Ok(QueryOutput::Value(Some(7))),
            "late results are delivered, not dropped, once fulfilled"
        );
    }
}
