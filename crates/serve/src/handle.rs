//! Completion handles for submitted queries.
//!
//! A [`Ticket`] is both a blocking handle ([`Ticket::wait`]) and a
//! pollable `std::future::Future`, with no async runtime required:
//! [`block_on`] drives any future on the calling thread via
//! `std::task::Wake` + park/unpark. The engine fulfills the ticket from
//! a shard worker; whichever consumer is attached (a parked waiter, a
//! stored waker, or a later poll) observes the same single result.

use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, Waker};

use crate::error::ServeError;
use crate::index::QueryOutput;

/// One query's result slot.
#[derive(Debug, Default)]
struct Slot {
    result: Option<Result<QueryOutput, ServeError>>,
    /// When the worker fulfilled the slot — lets a latency harness that
    /// redeems tickets in submission order still measure true per-query
    /// completion times, free of head-of-line waiting skew.
    completed: Option<std::time::Instant>,
    waker: Option<Waker>,
}

/// Shared completion state between the engine and the ticket holder.
#[derive(Debug, Default)]
pub(crate) struct TicketState {
    slot: Mutex<Slot>,
    done: Condvar,
}

impl TicketState {
    /// Stores the result and wakes every kind of waiter exactly once.
    #[allow(clippy::unwrap_used)] // a poisoned slot means a panicked worker; propagate
    pub(crate) fn fulfill(&self, result: Result<QueryOutput, ServeError>) {
        let waker = {
            let mut slot = self.slot.lock().unwrap();
            debug_assert!(slot.result.is_none(), "ticket fulfilled twice");
            slot.result = Some(result);
            slot.completed = Some(std::time::Instant::now());
            slot.waker.take()
        };
        self.done.notify_all();
        if let Some(w) = waker {
            w.wake();
        }
    }
}

/// A claim on one submitted query's eventual result.
///
/// Obtain one from `Engine::submit`/`Engine::try_submit`; redeem it by
/// blocking ([`Ticket::wait`]), polling ([`Ticket::try_take`]), or
/// awaiting it as a future (e.g. under [`block_on`]).
#[derive(Debug)]
pub struct Ticket {
    id: u64,
    state: Arc<TicketState>,
}

impl Ticket {
    pub(crate) fn new(id: u64, state: Arc<TicketState>) -> Self {
        Self { id, state }
    }

    /// The engine-assigned submission id — globally ordered, so callers
    /// can fold result hashes in submission order regardless of
    /// completion order.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until the query completes and returns its result.
    #[allow(clippy::unwrap_used)] // a poisoned slot means a panicked worker; propagate
    pub fn wait(self) -> Result<QueryOutput, ServeError> {
        let mut slot = self.state.slot.lock().unwrap();
        loop {
            if let Some(r) = slot.result.take() {
                return r;
            }
            slot = self.state.done.wait(slot).unwrap();
        }
    }

    /// Takes the result if the query already completed, without blocking.
    #[allow(clippy::unwrap_used)] // a poisoned slot means a panicked worker; propagate
    pub fn try_take(&self) -> Option<Result<QueryOutput, ServeError>> {
        let mut slot = self.state.slot.lock().unwrap();
        slot.result.take()
    }

    /// Like [`Ticket::wait`], but also returns the instant the worker
    /// fulfilled the query — the end point a latency harness should
    /// measure against, even when it redeems tickets in submission order
    /// long after they completed.
    #[allow(clippy::unwrap_used)] // a poisoned slot means a panicked worker; propagate
    pub fn wait_timed(self) -> (Result<QueryOutput, ServeError>, std::time::Instant) {
        let mut slot = self.state.slot.lock().unwrap();
        loop {
            if let Some(r) = slot.result.take() {
                let at = slot.completed.unwrap_or_else(std::time::Instant::now);
                return (r, at);
            }
            slot = self.state.done.wait(slot).unwrap();
        }
    }
}

impl Future for Ticket {
    type Output = Result<QueryOutput, ServeError>;

    #[allow(clippy::unwrap_used)] // a poisoned slot means a panicked worker; propagate
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut slot = self.state.slot.lock().unwrap();
        match slot.result.take() {
            Some(r) => Poll::Ready(r),
            None => {
                slot.waker = Some(cx.waker().clone());
                Poll::Pending
            }
        }
    }
}

/// Drives a future to completion on the calling thread — the minimal
/// executor the pollable handle needs, built on `std::task::Wake` and
/// thread park/unpark (no external async runtime).
pub fn block_on<F: Future>(fut: F) -> F::Output {
    struct ThreadWaker(std::thread::Thread);
    impl std::task::Wake for ThreadWaker {
        fn wake(self: Arc<Self>) {
            self.0.unpark();
        }
    }
    let waker = Waker::from(Arc::new(ThreadWaker(std::thread::current())));
    let mut cx = Context::from_waker(&waker);
    let mut fut = std::pin::pin!(fut);
    loop {
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(v) => return v,
            Poll::Pending => std::thread::park(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wait_returns_a_prior_fulfillment() {
        let state = Arc::new(TicketState::default());
        state.fulfill(Ok(QueryOutput::Value(Some(9))));
        let t = Ticket::new(0, state);
        assert_eq!(t.wait(), Ok(QueryOutput::Value(Some(9))));
    }

    #[test]
    fn future_polls_ready_after_cross_thread_fulfillment() {
        let state = Arc::new(TicketState::default());
        let t = Ticket::new(1, Arc::clone(&state));
        let worker = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            state.fulfill(Ok(QueryOutput::Value(None)));
        });
        assert_eq!(block_on(t), Ok(QueryOutput::Value(None)));
        worker.join().expect("fulfiller panicked");
    }

    #[test]
    fn try_take_is_non_blocking() {
        let state = Arc::new(TicketState::default());
        let t = Ticket::new(2, Arc::clone(&state));
        assert!(t.try_take().is_none());
        state.fulfill(Err(ServeError::ShuttingDown));
        assert_eq!(t.try_take(), Some(Err(ServeError::ShuttingDown)));
        assert!(t.try_take().is_none(), "result is taken exactly once");
    }
}
