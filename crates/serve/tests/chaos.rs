//! Chaos suite: every injected fault class must surface as its typed
//! `ServeError` — never a panic out of the engine, never a lost ticket —
//! and the replay digest of the *successfully served* queries of a
//! faulted run must match an unfaulted run of the same stream.
//!
//! Fault classes driven here, mirroring the simulator's fault harness
//! (PR 5):
//!
//! | fault | injection | typed error |
//! |---|---|---|
//! | worker panic | `ChaosPlan::panic_on` | `WorkerCrashed` (batch), engine respawns |
//! | slow shard | `ChaosPlan::slow_shard` | `DeadlineExceeded` for budgeted queries |
//! | deadline storm | submit with expired deadlines | `DeadlineExceeded` for every query |
//! | admission flood | submit past the class shares | `Overloaded`, lowest class first |
//! | SLO breach | slow index + `SloPolicy` target | `Overloaded` before the queue fills |

use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use proptest::prelude::*;

use hsu_serve::chaos::{install_quiet_panic_hook, ChaosIndex, ChaosPlan};
use hsu_serve::prelude::*;
use hsu_serve::QueryBatch;

/// A pure synthetic key index: `key -> Some(2k + 1)`. Fast enough for
/// proptest sweeps, pure so faulted runs can be checked against a
/// directly computed unfaulted reference.
struct PureIndex;

impl SearchIndex for PureIndex {
    fn family(&self) -> IndexFamily {
        IndexFamily::Btree
    }

    fn dim(&self) -> usize {
        0
    }

    fn query_batch(&self, batch: &QueryBatch) -> Vec<QueryOutput> {
        batch
            .keys()
            .iter()
            .map(|&k| QueryOutput::Value(Some(u64::from(k) * 2 + 1)))
            .collect()
    }
}

/// The unfaulted answer for key `k` under [`PureIndex`].
fn expected_output(k: u32) -> QueryOutput {
    QueryOutput::Value(Some(u64::from(k) * 2 + 1))
}

/// A key index whose workers block until the test opens the gate, then
/// serve after a fixed delay — lets floods fill queues deterministically
/// and lets latency-window tests control service time.
struct GateIndex {
    gate: Arc<(Mutex<bool>, Condvar)>,
    delay: Duration,
}

impl GateIndex {
    fn new(delay: Duration) -> (Self, Arc<(Mutex<bool>, Condvar)>) {
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        (
            GateIndex {
                gate: Arc::clone(&gate),
                delay,
            },
            gate,
        )
    }
}

fn open_gate(gate: &Arc<(Mutex<bool>, Condvar)>) {
    let (lock, cv) = &**gate;
    *lock.lock().expect("gate lock") = true;
    cv.notify_all();
}

impl SearchIndex for GateIndex {
    fn family(&self) -> IndexFamily {
        IndexFamily::Btree
    }

    fn dim(&self) -> usize {
        0
    }

    fn query_batch(&self, batch: &QueryBatch) -> Vec<QueryOutput> {
        let (lock, cv) = &*self.gate;
        let mut open = lock.lock().expect("gate lock");
        while !*open {
            let (guard, _) = cv
                .wait_timeout(open, Duration::from_millis(10))
                .expect("gate wait");
            open = guard;
        }
        drop(open);
        if !self.delay.is_zero() {
            std::thread::sleep(self.delay);
        }
        batch
            .keys()
            .iter()
            .map(|&k| QueryOutput::Value(Some(u64::from(k) + 1)))
            .collect()
    }
}

/// A generous safety deadline so a lost ticket fails the test in bounded
/// time instead of hanging it.
const SAFETY: Duration = Duration::from_secs(60);

/// Acceptance-criteria test: under injected worker panics the engine
/// keeps serving (restart counter > 0, shard never deadlocks), every
/// admitted query resolves to a result or a typed error, and the replay
/// digest of the successfully served subset matches the unfaulted run.
#[test]
fn worker_panics_respawn_and_successes_replay_identically() {
    install_quiet_panic_hook();
    let chaos = ChaosIndex::new(
        Arc::new(PureIndex),
        ChaosPlan {
            panic_on: vec![20, 45, 70],
            ..Default::default()
        },
    );
    let engine = Engine::new(
        Arc::new(chaos),
        EngineConfig {
            shards: 2,
            workers_per_shard: 1,
            batch: 4,
            queue_capacity: 256,
            restart_limit: 64,
            ..Default::default()
        },
    );
    const N: u32 = 200;
    let opts = SubmitOptions::default().deadline_in(SAFETY);
    let tickets: Vec<_> = (0..N)
        .map(|k| {
            engine
                .submit_with(Query::Key(k), opts)
                .expect("admission failed")
        })
        .collect();
    let mut crashed = 0u32;
    let mut served_hashes = Vec::new();
    let mut unfaulted_hashes = Vec::new();
    for (k, t) in tickets.into_iter().enumerate() {
        match t.wait() {
            Ok(out) => {
                assert_eq!(out, expected_output(k as u32), "query {k} answered wrong");
                served_hashes.push(hash_output(&out));
                unfaulted_hashes.push(hash_output(&expected_output(k as u32)));
            }
            Err(ServeError::WorkerCrashed { shard }) => {
                assert!(shard < 2, "crash attributed to a nonexistent shard");
                crashed += 1;
            }
            Err(other) => panic!("query {k}: unexpected error class {other:?}"),
        }
    }
    assert!(crashed > 0, "no query was killed by the injected panics");
    assert!(
        crashed <= 3 * 4,
        "each injected panic kills at most one batch, got {crashed} casualties"
    );
    assert_eq!(
        combine_hashes(served_hashes),
        combine_hashes(unfaulted_hashes),
        "successfully served subset diverged from the unfaulted run"
    );
    // Counters are bumped *after* tickets are fulfilled (and restarts
    // happen on the supervisor's own clock), so give them a beat to
    // quiesce before asserting exact values.
    let t0 = Instant::now();
    while t0.elapsed() < SAFETY {
        let s = engine.stats();
        if s.worker_panics == 3 && s.worker_restarts > 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let stats = engine.stats();
    assert_eq!(stats.worker_panics, 3, "each ordinal panics exactly once");
    assert!(stats.worker_restarts > 0, "supervisor never respawned");
    assert_eq!(stats.restarts_denied, 0, "budget was generous");
    // The engine must still serve after the crash storm.
    assert_eq!(
        engine
            .query(Query::Key(7))
            .expect("post-crash query failed"),
        expected_output(7)
    );
}

/// A slow shard plus per-query deadlines: budget-holders get typed
/// `DeadlineExceeded`, never a silent late answer; everything served
/// matches the unfaulted run.
#[test]
fn slow_shard_with_deadlines_drops_typed_and_replays() {
    install_quiet_panic_hook();
    // One shard, one worker: no sibling can steal around the slowness,
    // so every batch after the first is dequeued long past its deadline.
    let chaos = ChaosIndex::new(
        Arc::new(PureIndex),
        ChaosPlan::slow_on_shard(0, Duration::from_millis(30)),
    );
    let engine = Engine::new(
        Arc::new(chaos),
        EngineConfig {
            shards: 1,
            workers_per_shard: 1,
            batch: 4,
            queue_capacity: 256,
            ..Default::default()
        },
    );
    const N: u32 = 40;
    let opts = SubmitOptions::default().deadline_in(Duration::from_millis(5));
    let tickets: Vec<_> = (0..N)
        .map(|k| {
            engine
                .submit_with(Query::Key(k), opts)
                .expect("admission failed")
        })
        .collect();
    let mut expired = 0u32;
    for (k, t) in tickets.into_iter().enumerate() {
        match t.wait() {
            Ok(out) => assert_eq!(out, expected_output(k as u32), "late answer corrupted"),
            Err(ServeError::DeadlineExceeded) => expired += 1,
            Err(other) => panic!("query {k}: unexpected error class {other:?}"),
        }
    }
    assert!(
        expired >= N - 2 * 4,
        "only in-flight batches may beat a 5ms deadline on a 30ms/batch shard, \
         got {expired} expiries"
    );
    // The worker-side drop counter catches up once the queue drains.
    let t0 = Instant::now();
    while engine.stats().deadline_drops == 0 && t0.elapsed() < SAFETY {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(
        engine.stats().deadline_drops > 0,
        "no expired query was dropped at dequeue"
    );
}

/// Deadline storm: every submission's deadline is already in the past.
/// Every ticket resolves `DeadlineExceeded`; nothing is lost, nothing is
/// served late.
#[test]
fn deadline_storm_drops_everything_typed() {
    let engine = Engine::new(
        Arc::new(PureIndex),
        EngineConfig {
            shards: 2,
            workers_per_shard: 2,
            batch: 8,
            queue_capacity: 256,
            ..Default::default()
        },
    );
    const N: u32 = 100;
    let past = Instant::now() - Duration::from_millis(1);
    let opts = SubmitOptions {
        deadline: Some(past),
        ..Default::default()
    };
    let tickets: Vec<_> = (0..N)
        .map(|k| {
            engine
                .submit_with(Query::Key(k), opts)
                .expect("admission failed")
        })
        .collect();
    for (k, t) in tickets.into_iter().enumerate() {
        assert_eq!(
            t.wait(),
            Err(ServeError::DeadlineExceeded),
            "storm query {k} was not dropped typed"
        );
    }
    // All 100 are dropped at dequeue (the waiters above may have raced
    // ahead of the workers, so poll the counter briefly).
    let t0 = Instant::now();
    while engine.stats().deadline_drops < u64::from(N) && t0.elapsed() < SAFETY {
        std::thread::sleep(Duration::from_millis(5));
    }
    let stats = engine.stats();
    assert_eq!(stats.deadline_drops, u64::from(N));
    assert_eq!(stats.completed, 0, "an expired query was served anyway");
}

/// Admission flood against a gated worker: `Batch` hits its queue share
/// first and sheds with typed `Overloaded` while `Interactive` still
/// admits; once the gate opens, every admitted query completes.
#[test]
fn admission_flood_sheds_lowest_class_first() {
    let (index, gate) = GateIndex::new(Duration::ZERO);
    let engine = Engine::new(
        Arc::new(index),
        EngineConfig {
            shards: 1,
            workers_per_shard: 1,
            batch: 1,
            queue_capacity: 8,
            ..Default::default()
        },
    );
    // Flood the batch class: its share is 50% of 8 = 4 queue slots (the
    // worker may additionally hold one query it already dequeued).
    let mut admitted = Vec::new();
    let mut batch_sheds = 0u32;
    for k in 0..30u32 {
        match engine.try_submit_with(Query::Key(k), SubmitOptions::with_priority(Priority::Batch)) {
            Ok(t) => admitted.push(t),
            Err(ServeError::Overloaded { shard, capacity }) => {
                assert_eq!((shard, capacity), (0, 8));
                batch_sheds += 1;
            }
            Err(other) => panic!("unexpected admission error {other:?}"),
        }
    }
    assert!(batch_sheds > 0, "the batch class never hit its share");
    assert!(
        admitted.len() <= 5,
        "batch class admitted {} > its 4-slot share (+1 in flight)",
        admitted.len()
    );
    // Interactive traffic still admits into the space the batch class
    // was denied…
    let mut interactive_admitted = 0u32;
    let mut interactive_sheds = 0u32;
    for k in 100..110u32 {
        match engine.try_submit_with(
            Query::Key(k),
            SubmitOptions::with_priority(Priority::Interactive),
        ) {
            Ok(t) => {
                interactive_admitted += 1;
                admitted.push(t);
            }
            Err(ServeError::Overloaded { .. }) => interactive_sheds += 1,
            Err(other) => panic!("unexpected admission error {other:?}"),
        }
    }
    assert!(
        interactive_admitted >= 3,
        "interactive should fill the share the batch class cannot reach, admitted \
         {interactive_admitted}"
    );
    let stats = engine.stats();
    assert_eq!(
        stats.queue_full_sheds,
        u64::from(batch_sheds + interactive_sheds),
        "every shed is counted"
    );
    assert_eq!(stats.slo_sheds, 0, "no SLO is configured");
    // Open the gate: every admitted query must complete correctly.
    open_gate(&gate);
    for t in admitted {
        match t.wait() {
            Ok(QueryOutput::Value(Some(_))) => {}
            other => panic!("admitted query lost under flood: {other:?}"),
        }
    }
}

/// SLO breach: once the shard's sliding-window p99 is over the family
/// target, `Batch` work sheds with `Overloaded` while the queue still
/// has space, and `Interactive` keeps admitting.
#[test]
fn slo_breach_sheds_batch_before_the_queue_fills() {
    let (index, gate) = GateIndex::new(Duration::from_millis(2));
    open_gate(&gate); // no gating — just the 2ms service time
    let engine = Engine::new(
        Arc::new(index),
        EngineConfig {
            shards: 1,
            workers_per_shard: 1,
            batch: 1,
            queue_capacity: 4096,
            slo: SloPolicy::none().with_target(IndexFamily::Btree, 100),
            ..Default::default()
        },
    );
    // Warm the latency window past its sample floor: 2ms service >> the
    // 100us target, so the window p99 ends far over the SLO.
    let warmup: Vec<_> = (0..100u32)
        .map(|k| engine.submit(Query::Key(k)).expect("warmup admission"))
        .collect();
    for t in warmup {
        t.wait().expect("warmup query failed");
    }
    // Occupy the queue (non-empty is a precondition for shedding: an
    // idle shard always admits so the window can refresh). Occupants are
    // Interactive — `Normal` would itself shed once p99 > 2x target.
    let occupants: Vec<_> = (0..3u32)
        .map(|k| {
            engine
                .submit_with(
                    Query::Key(k),
                    SubmitOptions::with_priority(Priority::Interactive),
                )
                .expect("occupant admission")
        })
        .collect();
    let batch_try = engine.try_submit_with(
        Query::Key(500),
        SubmitOptions::with_priority(Priority::Batch),
    );
    assert!(
        matches!(batch_try, Err(ServeError::Overloaded { .. })),
        "batch admitted despite a blown SLO: {batch_try:?}"
    );
    let interactive = engine
        .try_submit_with(
            Query::Key(501),
            SubmitOptions::with_priority(Priority::Interactive),
        )
        .expect("interactive must not be SLO-shed");
    let stats = engine.stats();
    assert!(
        stats.slo_sheds > 0,
        "the shed was not counted as SLO-driven"
    );
    assert_eq!(
        stats.queue_full_sheds, 0,
        "the 4096-slot queue was nowhere near full"
    );
    for t in occupants {
        t.wait().expect("occupant lost");
    }
    interactive.wait().expect("interactive query lost");
}

/// Satellite pin: drain-on-drop survives a mid-drain worker crash — the
/// supervisor respawns into the drain, every ticket resolves, and
/// queries after the doomed batch are still served correctly.
#[test]
fn drop_drains_through_a_mid_drain_worker_crash() {
    install_quiet_panic_hook();
    // Slow every batch slightly so the queue is still deep when the
    // engine drops, then kill the sole worker mid-drain.
    let chaos = ChaosIndex::new(
        Arc::new(PureIndex),
        ChaosPlan {
            panic_on: vec![30],
            slow_shard: Some(0),
            slow_delay: Duration::from_millis(1),
        },
    );
    let engine = Engine::new(
        Arc::new(chaos),
        EngineConfig {
            shards: 1,
            workers_per_shard: 1,
            batch: 4,
            queue_capacity: 256,
            restart_limit: 16,
            ..Default::default()
        },
    );
    const N: u32 = 60;
    let tickets: Vec<_> = (0..N)
        .map(|k| engine.submit(Query::Key(k)).expect("admission failed"))
        .collect();
    drop(engine); // drain begins; the worker dies at served ordinal 30
    let mut crashed = 0u32;
    let mut served_after_crash = false;
    for (k, t) in tickets.into_iter().enumerate() {
        match t.wait() {
            Ok(out) => {
                assert_eq!(out, expected_output(k as u32));
                if k as u32 >= 30 {
                    served_after_crash = true;
                }
            }
            Err(ServeError::WorkerCrashed { .. }) => crashed += 1,
            Err(other) => panic!("drain query {k}: unexpected error {other:?}"),
        }
    }
    assert!(crashed > 0, "the mid-drain panic killed nobody");
    assert!(
        served_after_crash,
        "nothing served past the crash point — the supervisor did not respawn into the drain"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random topology × random panic ordinals × optional slow shard:
    /// every admitted query resolves (result or typed error) in bounded
    /// time, and the replay digest of the successfully served subset
    /// matches the unfaulted reference computed directly on the index.
    #[test]
    fn random_faults_never_lose_tickets_and_successes_replay(
        shards in 1usize..=3,
        workers in 1usize..=2,
        batch in 1usize..=8,
        n in 50u64..150,
        panics in proptest::collection::vec(1u64..150, 0..4),
        slow_pick in 0usize..4,
    ) {
        install_quiet_panic_hook();
        let plan = ChaosPlan {
            panic_on: panics,
            slow_shard: (slow_pick < 3).then_some(slow_pick % shards),
            slow_delay: Duration::from_micros(200),
        };
        let chaos = ChaosIndex::new(Arc::new(PureIndex), plan);
        let engine = Engine::new(
            Arc::new(chaos),
            EngineConfig {
                shards,
                workers_per_shard: workers,
                batch,
                queue_capacity: 4096,
                restart_limit: 64,
                ..Default::default()
            },
        );
        let opts = SubmitOptions::default().deadline_in(SAFETY);
        let tickets: Vec<_> = (0..n)
            .map(|k| engine.submit_with(Query::Key(k as u32), opts).expect("admission"))
            .collect();
        let mut served = Vec::new();
        let mut reference = Vec::new();
        for (k, t) in tickets.into_iter().enumerate() {
            match t.wait() {
                Ok(out) => {
                    prop_assert_eq!(&out, &expected_output(k as u32), "query {} corrupted", k);
                    served.push(hash_output(&out));
                    reference.push(hash_output(&expected_output(k as u32)));
                }
                Err(ServeError::WorkerCrashed { .. }) => {}
                Err(other) => prop_assert!(false, "query {}: unexpected class {:?}", k, other),
            }
        }
        let served_n = served.len() as u64;
        prop_assert_eq!(
            combine_hashes(served),
            combine_hashes(reference),
            "successfully served subset diverged from the unfaulted run"
        );
        // The completion counter is bumped after the ticket is
        // fulfilled, so it can trail the waits above by a few queries —
        // poll it up to the count of Ok waits before asserting equality.
        let t_poll = Instant::now();
        while engine.stats().completed < served_n && t_poll.elapsed() < SAFETY {
            std::thread::sleep(Duration::from_millis(1));
        }
        let stats = engine.stats();
        prop_assert_eq!(
            stats.admitted, n,
            "every submission was admitted (queue is deeper than the stream)"
        );
        prop_assert_eq!(
            stats.completed, served_n,
            "every Ok wait is a counted completion"
        );
    }
}
