//! Replay determinism: a seeded query stream's per-query result hashes
//! must be byte-identical across shard counts, batch sizes, and worker
//! counts, for every index family. This is the service-side analogue of
//! the suite's golden tests — scheduling may move latency, never results.

use std::sync::Arc;

use hsu_bench::ArchiveCache;
use hsu_datasets::{key_stream_nth, DatasetId, QueryStream};
use hsu_serve::prelude::*;

/// Per-query result hashes for `n` stream queries under one topology,
/// in submission order.
fn replay_hashes(
    index: &Arc<dyn SearchIndex>,
    gen: &dyn Fn(u64) -> Query,
    cfg: EngineConfig,
    n: u64,
) -> Vec<u64> {
    let engine = Engine::new(Arc::clone(index), cfg);
    let tickets: Vec<Ticket> = (0..n)
        .map(|i| engine.submit(gen(i)).expect("admission failed"))
        .collect();
    tickets
        .into_iter()
        .map(|t| hash_output(&t.wait().expect("query failed")))
        .collect()
}

/// Asserts per-query hashes agree across the full shard × batch × worker
/// grid the issue pins: shards {1,4} × batch {1,64} × workers {1,2}.
fn assert_grid_deterministic(name: &str, index: Arc<dyn SearchIndex>, gen: impl Fn(u64) -> Query) {
    const N: u64 = 200;
    let reference = replay_hashes(
        &index,
        &gen,
        EngineConfig {
            shards: 1,
            workers_per_shard: 1,
            batch: 1,
            queue_capacity: 512,
            ..Default::default()
        },
        N,
    );
    assert_eq!(reference.len(), N as usize);
    for shards in [1usize, 4] {
        for batch in [1usize, 64] {
            for workers in [1usize, 2] {
                let cfg = EngineConfig {
                    shards,
                    workers_per_shard: workers,
                    batch,
                    queue_capacity: 512,
                    ..Default::default()
                };
                let got = replay_hashes(&index, &gen, cfg, N);
                assert_eq!(
                    got, reference,
                    "{name}: per-query hashes diverged at shards={shards} batch={batch} \
                     workers={workers}"
                );
            }
        }
    }
    // And the combined digest is stable too (what servebench records).
    assert_eq!(
        combine_hashes(replay_hashes(
            &index,
            &gen,
            EngineConfig {
                shards: 4,
                workers_per_shard: 2,
                batch: 64,
                queue_capacity: 512,
                ..Default::default()
            },
            N,
        )),
        combine_hashes(reference),
        "{name}: combined replay digest diverged"
    );
}

#[test]
fn graph_family_replays_identically_across_topologies() {
    let cache = ArchiveCache::disabled();
    let index = GraphIndex::open(&cache, DatasetId::Sift10k, 400, 7, 10, 32).expect("open graph");
    let stream = QueryStream::new(index.data(), 99);
    let data = index.data().clone();
    assert_grid_deterministic("graph", Arc::new(index), move |i| {
        Query::Vector(stream.nth(&data, i))
    });
}

#[test]
fn kd_family_replays_identically_across_topologies() {
    let cache = ArchiveCache::disabled();
    let index = KdIndex::open(&cache, DatasetId::Bunny, 800, 7, 5, 16).expect("open kd");
    let stream = QueryStream::new(index.data(), 99);
    let data = index.data().clone();
    assert_grid_deterministic("kd", Arc::new(index), move |i| {
        Query::Vector(stream.nth(&data, i))
    });
}

#[test]
fn bvh_family_replays_identically_across_topologies() {
    let cache = ArchiveCache::disabled();
    let index = BvhIndex::open(&cache, DatasetId::Bunny, 800, 7, 5).expect("open bvh");
    let stream = QueryStream::new(index.data(), 99);
    let data = index.data().clone();
    assert_grid_deterministic("bvh", Arc::new(index), move |i| {
        Query::Vector(stream.nth(&data, i))
    });
}

#[test]
fn btree_family_replays_identically_across_topologies() {
    let cache = ArchiveCache::disabled();
    let index = BtreeIndex::open(&cache, 5_000, 7);
    let space = index.key_space();
    assert_grid_deterministic("btree", Arc::new(index), move |i| {
        Query::Key(key_stream_nth(99, i, space))
    });
}
