//! Service semantics: admission validation, bounded-queue backpressure,
//! sync + async redemption, and drain-on-drop.

use std::sync::Arc;
use std::time::Duration;

use hsu_bench::ArchiveCache;
use hsu_serve::prelude::*;
use hsu_serve::QueryBatch;

/// A deliberately slow key index: answers `key + 1` after a pause, so
/// tests can fill the admission queue faster than workers drain it.
struct SlowIndex {
    delay: Duration,
}

impl SearchIndex for SlowIndex {
    fn family(&self) -> IndexFamily {
        IndexFamily::Btree
    }

    fn dim(&self) -> usize {
        0
    }

    fn query_batch(&self, batch: &QueryBatch) -> Vec<QueryOutput> {
        std::thread::sleep(self.delay);
        batch
            .keys()
            .iter()
            .map(|&k| QueryOutput::Value(Some(u64::from(k) + 1)))
            .collect()
    }
}

#[test]
fn sync_round_trip_answers_queries() {
    let cache = ArchiveCache::disabled();
    let index = BtreeIndex::open(&cache, 2_000, 3);
    let engine = Engine::new(Arc::new(index), EngineConfig::default());
    for key in [0u32, 17, 123_456] {
        match engine.query(Query::Key(key)) {
            Ok(QueryOutput::Value(_)) => {}
            other => panic!("unexpected answer for key {key}: {other:?}"),
        }
    }
}

#[test]
fn async_handle_is_pollable_without_a_runtime() {
    let cache = ArchiveCache::disabled();
    let index = BtreeIndex::open(&cache, 2_000, 3);
    let engine = Engine::new(Arc::new(index), EngineConfig::default());
    let ticket = engine.try_submit(Query::Key(42)).expect("admission failed");
    let out = block_on(ticket).expect("query failed");
    assert!(matches!(out, QueryOutput::Value(_)));
}

#[test]
fn bad_queries_are_rejected_at_admission() {
    let cache = ArchiveCache::disabled();
    let index = BtreeIndex::open(&cache, 2_000, 3);
    let engine = Engine::new(Arc::new(index), EngineConfig::default());
    // Wrong variant for the family.
    match engine.try_submit(Query::Vector(vec![1.0, 2.0])) {
        Err(ServeError::BadQuery(_)) => {}
        other => panic!("expected BadQuery, got {other:?}"),
    }
    // Valid queries still flow afterwards.
    assert!(engine.query(Query::Key(1)).is_ok());
}

#[test]
fn full_queue_backpressures_with_typed_overloaded() {
    let engine = Engine::new(
        Arc::new(SlowIndex {
            delay: Duration::from_millis(50),
        }),
        EngineConfig {
            shards: 1,
            workers_per_shard: 1,
            batch: 1,
            queue_capacity: 2,
            ..Default::default()
        },
    );
    // Flood a 2-deep queue behind a 50 ms/query worker: rejections must
    // surface as typed Overloaded, and accepted queries must complete.
    let mut accepted = Vec::new();
    let mut overloaded = 0usize;
    for key in 0..40u32 {
        match engine.try_submit(Query::Key(key)) {
            Ok(t) => accepted.push((key, t)),
            Err(ServeError::Overloaded { shard, capacity }) => {
                assert_eq!(shard, 0);
                assert_eq!(capacity, 2);
                overloaded += 1;
            }
            Err(other) => panic!("unexpected admission error: {other}"),
        }
    }
    assert!(overloaded > 0, "queue never overloaded under flood");
    assert!(!accepted.is_empty(), "admission rejected everything");
    for (key, t) in accepted {
        assert_eq!(
            t.wait(),
            Ok(QueryOutput::Value(Some(u64::from(key) + 1))),
            "accepted query {key} lost or corrupted"
        );
    }
}

#[test]
fn drop_drains_every_admitted_query() {
    let engine = Engine::new(
        Arc::new(SlowIndex {
            delay: Duration::from_millis(5),
        }),
        EngineConfig {
            shards: 2,
            workers_per_shard: 1,
            batch: 4,
            queue_capacity: 64,
            ..Default::default()
        },
    );
    let tickets: Vec<_> = (0..32u32)
        .map(|k| engine.submit(Query::Key(k)).expect("admission failed"))
        .collect();
    // Dropping the engine must fulfill every admitted ticket first.
    drop(engine);
    for (k, t) in tickets.into_iter().enumerate() {
        assert_eq!(t.wait(), Ok(QueryOutput::Value(Some(k as u64 + 1))));
    }
}

#[test]
fn work_stealing_drains_a_hot_shard() {
    // Two shards, one worker each; ids alternate shards, so loading the
    // engine with an even-id-heavy stream leaves shard parity lopsided —
    // the idle shard's worker must steal. Observable effect: everything
    // completes well before a no-stealing serial bound would allow.
    let engine = Engine::new(
        Arc::new(SlowIndex {
            delay: Duration::from_millis(1),
        }),
        EngineConfig {
            shards: 2,
            workers_per_shard: 1,
            batch: 1,
            queue_capacity: 1024,
            ..Default::default()
        },
    );
    let tickets: Vec<_> = (0..64u32)
        .map(|k| engine.submit(Query::Key(k)).expect("admission failed"))
        .collect();
    for t in tickets {
        assert!(t.wait().is_ok());
    }
}
