//! Functional-unit kinds and 15 nm-class area/energy constants.
//!
//! Absolute values are representative of a 15 nm standard-cell library with
//! HardFloat-style single-precision units; the paper's results are reported
//! as *ratios*, which is what the tests pin down.

/// A functional-unit class, matching the resource classes of Fig. 15.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuKind {
    /// Single-precision floating-point adder/subtractor.
    FpAdd,
    /// Single-precision floating-point multiplier.
    FpMul,
    /// Floating-point comparator (min/max/less-than).
    Comparator,
    /// One bit of pipeline-stage register.
    RegisterBit,
    /// Mode-control and result-mux logic, in equivalent NAND2 counts.
    ControlGate,
}

impl FuKind {
    /// All kinds, in Fig. 15's class order.
    pub const ALL: [FuKind; 5] = [
        FuKind::FpAdd,
        FuKind::FpMul,
        FuKind::Comparator,
        FuKind::RegisterBit,
        FuKind::ControlGate,
    ];

    /// Cell area in µm² (15 nm-class).
    pub fn area_um2(self) -> f64 {
        match self {
            FuKind::FpAdd => 420.0,
            FuKind::FpMul => 1350.0,
            FuKind::Comparator => 65.0,
            FuKind::RegisterBit => 1.9,
            FuKind::ControlGate => 0.5,
        }
    }

    /// Dynamic energy per activation in pJ at nominal voltage.
    pub fn energy_pj(self) -> f64 {
        match self {
            FuKind::FpAdd => 0.55,
            FuKind::FpMul => 1.65,
            FuKind::Comparator => 0.06,
            FuKind::RegisterBit => 0.0018,
            FuKind::ControlGate => 0.0006,
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            FuKind::FpAdd => "fp-add",
            FuKind::FpMul => "fp-mul",
            FuKind::Comparator => "comparator",
            FuKind::RegisterBit => "registers",
            FuKind::ControlGate => "control",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiplier_dominates_adder() {
        assert!(FuKind::FpMul.area_um2() > FuKind::FpAdd.area_um2() * 2.0);
        assert!(FuKind::FpMul.energy_pj() > FuKind::FpAdd.energy_pj() * 2.0);
    }

    #[test]
    fn all_kinds_have_positive_constants() {
        for k in FuKind::ALL {
            assert!(k.area_um2() > 0.0);
            assert!(k.energy_pj() > 0.0);
            assert!(!k.label().is_empty());
        }
    }
}
