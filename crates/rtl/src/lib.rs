//! Analytical RTL model of the unified datapath (paper §VI-K).
//!
//! The paper synthesizes its Chisel datapath with a 15 nm PDK and reports
//! *datapath-relative* numbers: HSU area ≈ 1.37× the baseline RT datapath
//! (Fig. 15, by resource class) and per-operating-mode dynamic power
//! (Fig. 16). This crate reproduces those results from first principles:
//!
//! * [`fu`] — functional-unit kinds with area/energy constants representative
//!   of a 15 nm standard-cell flow (Berkeley HardFloat-class units),
//! * [`area`] — the per-stage functional-unit inventory of the baseline and
//!   HSU datapaths. The HSU adds exactly the units §IV-C calls out (two
//!   adders in stage 3, one in stages 5, 8 and 9) plus the per-mode pipeline
//!   registers and mode-control muxing of the unoptimized prototype,
//! * [`power`] — per-mode dynamic power from functional-unit activity, plus
//!   a [`power::PowerMeter`] that integrates activity over a cycle-accurate
//!   [`hsu_core::pipeline::DatapathPipeline`] run with random stimulus, the
//!   way the paper measures Fig. 16.

#![warn(missing_docs)]

pub mod area;
pub mod fu;
pub mod power;

pub use area::{AreaBreakdown, DatapathKind};
pub use power::mode_power_mw;
