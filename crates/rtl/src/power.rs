//! Per-operating-mode dynamic power (paper Fig. 16).
//!
//! The paper drives each operating mode with random stimulus and reports the
//! datapath's dynamic power at 1 GHz. Here, power is functional-unit
//! activation energy (per the mode's stage-by-stage usage, Fig. 6) plus the
//! clocking of the mode's pipeline registers, plus — on the HSU datapath —
//! the residual overhead of the extra mode registers and wider control that
//! are not perfectly clock-gated (this is the +10/+8 mW the paper measures
//! on the ray-box/ray-triangle modes, §VI-K).

use crate::area::{mode_register_bits, DatapathKind};
use crate::fu::FuKind;
use hsu_core::config::PIPELINE_DEPTH;
use hsu_core::pipeline::{DatapathPipeline, OperatingMode};

/// Clock frequency the paper synthesizes at.
pub const CLOCK_GHZ: f64 = 1.0;

/// Fraction of a mode's own register fan-out that toggles extra on the HSU
/// datapath (the wider result muxes load every stage register's output).
const HSU_FANOUT_FRACTION: f64 = 0.25;

/// Fixed HSU control-plane overhead per cycle, in pJ (five-way mode decode
/// clocking regardless of mode).
const HSU_CONTROL_PJ: f64 = 6.0;

/// Per-value operand routing/broadcast energy in pJ (wide modes pay to fan
/// the query operand across lanes).
const ROUTING_PJ_PER_VALUE: f64 = 0.55;

/// Functional-unit activations of one operation of `mode`, per stage:
/// `(adders, multipliers, comparators)`.
pub fn mode_activity(mode: OperatingMode) -> [(u32, u32, u32); PIPELINE_DEPTH] {
    match mode {
        OperatingMode::RayBox => [
            (24, 0, 0),
            (0, 24, 0),
            (0, 0, 36),
            (0, 0, 16),
            (2, 0, 8),
            (0, 0, 4),
            (0, 0, 4),
            (0, 0, 2),
            (0, 0, 1),
        ],
        OperatingMode::RayTriangle => [
            (9, 0, 0),
            (6, 6, 0),
            (6, 6, 0),
            (4, 0, 0),
            (2, 3, 0),
            (1, 3, 0),
            (0, 3, 0),
            (2, 0, 0),
            (1, 0, 4),
        ],
        OperatingMode::Euclid => [
            (16, 0, 0),
            (0, 16, 0),
            (8, 0, 0),
            (4, 0, 0),
            (2, 0, 0),
            (1, 0, 0),
            (0, 0, 0),
            (1, 0, 0),
            (1, 0, 0),
        ],
        OperatingMode::Angular => [
            (0, 0, 0),
            (0, 16, 0),
            (8, 0, 0),
            (4, 0, 0),
            (2, 0, 0),
            (0, 0, 0),
            (0, 0, 0),
            (2, 0, 0),
            (2, 0, 0),
        ],
        OperatingMode::KeyCompare => [
            (0, 0, 0),
            (0, 0, 0),
            (0, 0, 36),
            (0, 0, 0),
            (0, 0, 0),
            (0, 0, 0),
            (0, 0, 0),
            (0, 0, 0),
            (1, 0, 0),
        ],
    }
}

/// Values fanned across the datapath per operation (routing energy).
fn routed_values(mode: OperatingMode) -> u32 {
    match mode {
        OperatingMode::RayBox => 8,      // ray constants broadcast to 4 boxes
        OperatingMode::RayTriangle => 6, // shear constants to 3 vertices
        OperatingMode::Euclid => 32,     // 16 candidate + 16 query values
        OperatingMode::Angular => 24,    // 8 lanes x (cand, query, norm path)
        OperatingMode::KeyCompare => 36, // key broadcast to 36 comparators
    }
}

/// Energy of one operation of `mode` in pJ, excluding register clocking.
pub fn op_energy_pj(mode: OperatingMode) -> f64 {
    let mut pj = 0.0;
    for (adds, muls, cmps) in mode_activity(mode) {
        pj += adds as f64 * FuKind::FpAdd.energy_pj();
        pj += muls as f64 * FuKind::FpMul.energy_pj();
        pj += cmps as f64 * FuKind::Comparator.energy_pj();
    }
    pj + routed_values(mode) as f64 * ROUTING_PJ_PER_VALUE
}

/// Register-clocking energy per cycle for `mode` on `datapath`, in pJ.
fn register_energy_pj(mode: OperatingMode, datapath: DatapathKind) -> f64 {
    let own =
        mode_register_bits(mode) as f64 * PIPELINE_DEPTH as f64 * FuKind::RegisterBit.energy_pj();
    let overhead = match datapath {
        DatapathKind::BaselineRt => 0.0,
        DatapathKind::Hsu => own * HSU_FANOUT_FRACTION + HSU_CONTROL_PJ,
        // Multiplexed stage registers clock fewer redundant bits; only the
        // control-plane overhead remains.
        DatapathKind::HsuOptimized => HSU_CONTROL_PJ,
    };
    own + overhead
}

/// Dynamic power of `mode` running back-to-back on `datapath`, in mW at
/// 1 GHz — the bars of Fig. 16.
///
/// # Panics
///
/// Panics if an HSU-only mode is priced on the baseline datapath.
pub fn mode_power_mw(mode: OperatingMode, datapath: DatapathKind) -> f64 {
    if datapath == DatapathKind::BaselineRt {
        assert!(
            !mode.is_extension(),
            "{mode} does not exist on the baseline RT datapath"
        );
    }
    (op_energy_pj(mode) + register_energy_pj(mode, datapath)) * CLOCK_GHZ
}

/// Integrates power over a cycle-accurate pipeline run — the "random series
/// of input stimulus" methodology of §VI-K. Returns mean dynamic power in mW
/// given the per-cycle stage occupancy of a [`DatapathPipeline`].
#[derive(Debug, Default)]
pub struct PowerMeter {
    cycles: u64,
    energy_pj: f64,
}

impl PowerMeter {
    /// Creates an idle meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Samples one cycle of a pipeline on `datapath`. Each occupied stage
    /// contributes its mode's per-stage activity; register clocking is
    /// charged for the whole datapath width once per cycle when any stage is
    /// occupied.
    pub fn sample(&mut self, pipe: &DatapathPipeline, datapath: DatapathKind) {
        self.cycles += 1;
        let stage_modes = pipe.stage_modes();
        let mut any = false;
        for (stage, slot) in stage_modes.iter().enumerate() {
            let Some(mode) = slot else { continue };
            any = true;
            let (adds, muls, cmps) = mode_activity(*mode)[stage];
            self.energy_pj += adds as f64 * FuKind::FpAdd.energy_pj()
                + muls as f64 * FuKind::FpMul.energy_pj()
                + cmps as f64 * FuKind::Comparator.energy_pj();
            self.energy_pj +=
                routed_values(*mode) as f64 * ROUTING_PJ_PER_VALUE / PIPELINE_DEPTH as f64;
        }
        if any {
            // One representative mode's registers clock each cycle; charge
            // the mix-weighted mean of occupied stages.
            let occupied: Vec<OperatingMode> = stage_modes.iter().flatten().copied().collect();
            let mean: f64 = occupied
                .iter()
                .map(|&m| register_energy_pj(m, datapath))
                .sum::<f64>()
                / occupied.len() as f64;
            self.energy_pj += mean;
        }
    }

    /// Mean power over the sampled cycles, in mW at 1 GHz.
    pub fn mean_power_mw(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.energy_pj / self.cycles as f64 * CLOCK_GHZ
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_16_shape() {
        let base_box = mode_power_mw(OperatingMode::RayBox, DatapathKind::BaselineRt);
        let base_tri = mode_power_mw(OperatingMode::RayTriangle, DatapathKind::BaselineRt);
        let hsu_box = mode_power_mw(OperatingMode::RayBox, DatapathKind::Hsu);
        let hsu_tri = mode_power_mw(OperatingMode::RayTriangle, DatapathKind::Hsu);
        let euclid = mode_power_mw(OperatingMode::Euclid, DatapathKind::Hsu);
        let angular = mode_power_mw(OperatingMode::Angular, DatapathKind::Hsu);
        let key = mode_power_mw(OperatingMode::KeyCompare, DatapathKind::Hsu);

        // Paper values: baseline box ≈ 74 mW; HSU adds ~10 (box) / ~8 (tri);
        // euclid 79 ≈ baseline box + 5; angular 67.
        assert!(
            (base_box - 74.0).abs() < 8.0,
            "baseline ray-box {base_box:.1} mW"
        );
        let d_box = hsu_box - base_box;
        let d_tri = hsu_tri - base_tri;
        assert!((6.0..14.0).contains(&d_box), "box delta {d_box:.1}");
        assert!((5.0..13.0).contains(&d_tri), "tri delta {d_tri:.1}");
        let d_euclid = euclid - base_box;
        assert!(
            (1.0..10.0).contains(&d_euclid),
            "euclid - baseline box = {d_euclid:.1}"
        );
        assert!(
            angular < euclid,
            "angular {angular:.1} !< euclid {euclid:.1}"
        );
        assert!(
            (angular / euclid - 67.0 / 79.0).abs() < 0.15,
            "angular/euclid ratio"
        );
        assert!(key < angular, "key compare must be the cheapest mode");
        assert!(base_tri < base_box, "triangle mode is narrower than box");
    }

    #[test]
    #[should_panic(expected = "does not exist on the baseline")]
    fn baseline_rejects_extension_modes() {
        mode_power_mw(OperatingMode::Euclid, DatapathKind::BaselineRt);
    }

    #[test]
    fn meter_matches_static_estimate_for_steady_state() {
        let mut pipe = DatapathPipeline::new();
        let mut meter = PowerMeter::new();
        for _ in 0..500 {
            pipe.issue(OperatingMode::Euclid, 0);
            pipe.tick();
            meter.sample(&pipe, DatapathKind::Hsu);
        }
        let measured = meter.mean_power_mw();
        let expected = mode_power_mw(OperatingMode::Euclid, DatapathKind::Hsu);
        assert!(
            (measured - expected).abs() / expected < 0.15,
            "meter {measured:.1} vs static {expected:.1}"
        );
    }

    #[test]
    fn meter_handles_mixed_modes() {
        let mut pipe = DatapathPipeline::new();
        let mut meter = PowerMeter::new();
        for i in 0..600u64 {
            let mode = OperatingMode::ALL[(i % 5) as usize];
            pipe.issue(mode, i);
            pipe.tick();
            meter.sample(&pipe, DatapathKind::Hsu);
        }
        let mixed = meter.mean_power_mw();
        let min = mode_power_mw(OperatingMode::KeyCompare, DatapathKind::Hsu);
        let max = mode_power_mw(OperatingMode::RayBox, DatapathKind::Hsu);
        assert!(
            mixed > min && mixed < max + 10.0,
            "mixed {mixed:.1} outside [{min:.1}, {max:.1}]"
        );
    }

    #[test]
    fn idle_meter_reports_zero() {
        assert_eq!(PowerMeter::new().mean_power_mw(), 0.0);
    }
}
