//! Per-stage functional-unit inventories and the Fig. 15 area comparison.

use crate::fu::FuKind;
use hsu_core::config::PIPELINE_DEPTH;
use hsu_core::pipeline::OperatingMode;

/// Which datapath is being priced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatapathKind {
    /// Ray-box + ray-triangle only.
    BaselineRt,
    /// Baseline plus the HSU extensions (the paper's evaluated prototype:
    /// fixed-latency pipeline, per-mode stage registers, per-stage rounding).
    Hsu,
    /// The HSU with the optimizations §VI-K lists as future work applied:
    /// pipeline stage registers multiplexed across operating modes and
    /// leaner mode control. Arithmetic is unchanged.
    HsuOptimized,
}

/// Functional units present in one pipeline stage.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageInventory {
    /// FP adders/subtractors.
    pub adders: u32,
    /// FP multipliers.
    pub multipliers: u32,
    /// FP comparators.
    pub comparators: u32,
    /// Pipeline register bits.
    pub register_bits: u32,
    /// Control/mux logic in NAND2 equivalents.
    pub control_gates: u32,
}

/// Pipeline-register bits each operating mode keeps per stage — the paper's
/// unoptimized prototype gives every mode its own stage registers (§VI-K,
/// optimization note 2).
pub fn mode_register_bits(mode: OperatingMode) -> u32 {
    match mode {
        // Four boxes × 6 bounds × 32 b plus ray state and sort keys.
        OperatingMode::RayBox => 1000,
        // Nine vertex floats, shear products, edge functions.
        OperatingMode::RayTriangle => 500,
        // 16 lane partials + query registers + accumulator.
        OperatingMode::Euclid => 750,
        // 8 lanes × (dot, norm) partials + accumulators.
        OperatingMode::Angular => 480,
        // 36 separators + key + result mask.
        OperatingMode::KeyCompare => 685,
    }
}

/// The baseline RT datapath's per-stage inventory (stages 1..=9).
///
/// Arithmetic counts are the element-wise maximum of the ray-box (four
/// parallel slab tests + hit sort) and ray-triangle (watertight Woop)
/// requirements, mirroring the unified-datapath reuse of Fig. 6.
pub fn baseline_stages() -> [StageInventory; PIPELINE_DEPTH] {
    let regs =
        mode_register_bits(OperatingMode::RayBox) + mode_register_bits(OperatingMode::RayTriangle);
    let control = 600;
    let mk = |adders, multipliers, comparators| StageInventory {
        adders,
        multipliers,
        comparators,
        register_bits: regs,
        control_gates: control,
    };
    [
        mk(24, 0, 0), // s1: translate to ray origin (24-wide subtract)
        mk(6, 24, 0), // s2: interval scale / shear multiply
        mk(6, 6, 36), // s3: tmin-tmax comparators / barycentric products
        mk(4, 0, 16), // s4: interval reduction / determinant sums
        mk(2, 3, 8),  // s5: hit test / z-scale
        mk(1, 3, 4),  // s6: sort network / t_num products
        mk(0, 3, 4),  // s7: sort network
        mk(2, 0, 2),  // s8: sort network / distance sum
        mk(1, 0, 4),  // s9: result select / sign tests
    ]
}

/// The HSU datapath's inventory: the baseline plus exactly the additions of
/// §IV-C — two adders in stage 3, one each in stages 5, 8 and 9 — along with
/// the three new modes' stage registers and the wider mode-control muxes.
pub fn hsu_stages() -> [StageInventory; PIPELINE_DEPTH] {
    let mut stages = baseline_stages();
    let extra_regs = mode_register_bits(OperatingMode::Euclid)
        + mode_register_bits(OperatingMode::Angular)
        + mode_register_bits(OperatingMode::KeyCompare);
    for (i, stage) in stages.iter_mut().enumerate() {
        stage.register_bits += extra_regs;
        stage.control_gates += 900; // five-way mode decode and result muxing
        match i + 1 {
            3 => stage.adders += 2,
            5 | 8 | 9 => stage.adders += 1,
            _ => {}
        }
    }
    stages
}

/// The §VI-K-optimized HSU: same arithmetic, but stage registers are
/// multiplexed across modes (sized by the widest mode plus a margin instead
/// of summed) and the mode decode is folded into the existing control.
pub fn hsu_optimized_stages() -> [StageInventory; PIPELINE_DEPTH] {
    let mut stages = hsu_stages();
    // Widest single mode (ray-box) plus 20% for mux staging.
    let widest = OperatingMode::ALL
        .iter()
        .map(|&m| mode_register_bits(m))
        .max()
        .expect("modes exist");
    let shared = widest + widest / 5;
    for stage in stages.iter_mut() {
        stage.register_bits = shared;
        stage.control_gates = 900; // mux select folds into the mode decode
    }
    stages
}

/// The inventory for a datapath kind.
pub fn stages(kind: DatapathKind) -> [StageInventory; PIPELINE_DEPTH] {
    match kind {
        DatapathKind::BaselineRt => baseline_stages(),
        DatapathKind::Hsu => hsu_stages(),
        DatapathKind::HsuOptimized => hsu_optimized_stages(),
    }
}

/// Area by resource class, in µm².
#[derive(Debug, Clone, PartialEq)]
pub struct AreaBreakdown {
    /// `(class, area)` pairs in [`FuKind::ALL`] order.
    pub classes: Vec<(FuKind, f64)>,
}

impl AreaBreakdown {
    /// Prices a datapath's inventory.
    pub fn of(kind: DatapathKind) -> Self {
        let mut totals = [0.0f64; 5];
        for stage in stages(kind) {
            totals[0] += stage.adders as f64 * FuKind::FpAdd.area_um2();
            totals[1] += stage.multipliers as f64 * FuKind::FpMul.area_um2();
            totals[2] += stage.comparators as f64 * FuKind::Comparator.area_um2();
            totals[3] += stage.register_bits as f64 * FuKind::RegisterBit.area_um2();
            totals[4] += stage.control_gates as f64 * FuKind::ControlGate.area_um2();
        }
        AreaBreakdown {
            classes: FuKind::ALL.iter().copied().zip(totals).collect(),
        }
    }

    /// Total area.
    pub fn total(&self) -> f64 {
        self.classes.iter().map(|&(_, a)| a).sum()
    }

    /// Area of one class.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is missing (cannot happen for [`AreaBreakdown::of`]).
    pub fn class(&self, kind: FuKind) -> f64 {
        self.classes
            .iter()
            .find(|&&(k, _)| k == kind)
            .map(|&(_, a)| a)
            .expect("class present")
    }

    /// Per-class ratio of `self` over `baseline` — the bars of Fig. 15.
    pub fn normalized_to(&self, baseline: &AreaBreakdown) -> Vec<(FuKind, f64)> {
        self.classes
            .iter()
            .map(|&(k, a)| (k, a / baseline.class(k).max(f64::MIN_POSITIVE)))
            .collect()
    }
}

/// Renders the paper's Fig. 6: the per-stage functional-unit requirements of
/// each operating mode, with the provisioned (max) counts per stage.
pub fn fig6_table() -> String {
    use crate::power::mode_activity;
    use std::fmt::Write as _;
    let mut out = String::from(
        "Fig.6  unified-datapath FU usage per stage (adders/multipliers/comparators)\n",
    );
    let _ = write!(out, "{:<7}", "stage");
    for mode in OperatingMode::ALL {
        let _ = write!(out, " {:>12}", mode.label());
    }
    let _ = writeln!(out, " {:>12} {:>12}", "baseline", "hsu");
    let base = baseline_stages();
    let hsu = hsu_stages();
    for stage in 0..PIPELINE_DEPTH {
        let _ = write!(out, "s{:<6}", stage + 1);
        for mode in OperatingMode::ALL {
            let (a, m, c) = mode_activity(mode)[stage];
            let _ = write!(out, " {:>12}", format!("{a}/{m}/{c}"));
        }
        let b = &base[stage];
        let h = &hsu[stage];
        let _ = writeln!(
            out,
            " {:>12} {:>12}",
            format!("{}/{}/{}", b.adders, b.multipliers, b.comparators),
            format!("{}/{}/{}", h.adders, h.multipliers, h.comparators),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hsu_adds_exactly_five_adders() {
        let base = baseline_stages();
        let hsu = hsu_stages();
        let deltas: Vec<i64> = base
            .iter()
            .zip(&hsu)
            .map(|(b, h)| h.adders as i64 - b.adders as i64)
            .collect();
        assert_eq!(
            deltas,
            vec![0, 0, 2, 0, 1, 0, 0, 1, 1],
            "§IV-C adder additions"
        );
        // Multipliers and comparators are fully reused.
        for (b, h) in base.iter().zip(&hsu) {
            assert_eq!(b.multipliers, h.multipliers);
            assert_eq!(b.comparators, h.comparators);
        }
    }

    #[test]
    fn key_compare_fits_existing_comparators() {
        // 36 comparators in stage 3 — "the key-compare mode is implemented
        // using the ray-box comparators in stage 3".
        assert!(baseline_stages()[2].comparators >= 36);
    }

    #[test]
    fn total_area_increase_matches_paper() {
        let base = AreaBreakdown::of(DatapathKind::BaselineRt);
        let hsu = AreaBreakdown::of(DatapathKind::Hsu);
        let ratio = hsu.total() / base.total();
        assert!(
            (1.30..=1.45).contains(&ratio),
            "total HSU/baseline area ratio {ratio:.3}, paper reports 1.37"
        );
    }

    #[test]
    fn registers_dominate_the_increase() {
        let base = AreaBreakdown::of(DatapathKind::BaselineRt);
        let hsu = AreaBreakdown::of(DatapathKind::Hsu);
        let norm = hsu.normalized_to(&base);
        let reg_ratio = norm
            .iter()
            .find(|(k, _)| *k == FuKind::RegisterBit)
            .unwrap()
            .1;
        let mul_ratio = norm.iter().find(|(k, _)| *k == FuKind::FpMul).unwrap().1;
        assert!(reg_ratio > 1.8, "register ratio {reg_ratio:.2}");
        assert!((mul_ratio - 1.0).abs() < 1e-9, "multipliers fully reused");
    }

    #[test]
    fn fig6_inventory_covers_every_mode() {
        // The provisioned HSU inventory must satisfy every mode's per-stage
        // usage — the reuse claim of Fig. 6.
        use crate::power::mode_activity;
        let hsu = hsu_stages();
        for mode in OperatingMode::ALL {
            for (stage, &(a, m, c)) in mode_activity(mode).iter().enumerate() {
                assert!(
                    a <= hsu[stage].adders,
                    "{mode} stage {} needs {a} adders, only {}",
                    stage + 1,
                    hsu[stage].adders
                );
                assert!(
                    m <= hsu[stage].multipliers,
                    "{mode} stage {} multipliers",
                    stage + 1
                );
                assert!(
                    c <= hsu[stage].comparators,
                    "{mode} stage {} comparators",
                    stage + 1
                );
            }
        }
        // The baseline inventory covers the two RT modes alone.
        let base = baseline_stages();
        for mode in [OperatingMode::RayBox, OperatingMode::RayTriangle] {
            for (stage, &(a, m, c)) in mode_activity(mode).iter().enumerate() {
                assert!(a <= base[stage].adders, "{mode} stage {}", stage + 1);
                assert!(m <= base[stage].multipliers, "{mode} stage {}", stage + 1);
                assert!(c <= base[stage].comparators, "{mode} stage {}", stage + 1);
            }
        }
        assert!(fig6_table().contains("s9"));
    }

    #[test]
    fn optimized_variant_shrinks_the_overhead() {
        // §VI-K: "future optimizations could reduce the area overhead".
        let base = AreaBreakdown::of(DatapathKind::BaselineRt).total();
        let proto = AreaBreakdown::of(DatapathKind::Hsu).total();
        let opt = AreaBreakdown::of(DatapathKind::HsuOptimized).total();
        let proto_ratio = proto / base;
        let opt_ratio = opt / base;
        assert!(
            opt_ratio < proto_ratio,
            "{opt_ratio:.2} !< {proto_ratio:.2}"
        );
        assert!(
            (0.95..=1.15).contains(&opt_ratio),
            "register multiplexing should bring the HSU near baseline area, got {opt_ratio:.2}"
        );
        // Arithmetic unchanged.
        let a = AreaBreakdown::of(DatapathKind::Hsu);
        let b = AreaBreakdown::of(DatapathKind::HsuOptimized);
        assert_eq!(
            a.class(crate::fu::FuKind::FpAdd),
            b.class(crate::fu::FuKind::FpAdd)
        );
        assert_eq!(
            a.class(crate::fu::FuKind::FpMul),
            b.class(crate::fu::FuKind::FpMul)
        );
    }

    #[test]
    fn nine_stages() {
        assert_eq!(baseline_stages().len(), 9);
        assert_eq!(stages(DatapathKind::Hsu).len(), 9);
    }
}
