//! Query-set generation, exact ground truth and recall measurement.

use hsu_geometry::point::{Metric, PointSet};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Draws `n` queries from the same distribution as `data` by perturbing
/// random dataset points with small Gaussian noise (the ANN-Benchmarks query
/// sets are held-out samples of the same source distribution).
///
/// # Panics
///
/// Panics if `data` is empty or `n` is zero.
pub fn query_set(data: &PointSet, n: usize, seed: u64) -> PointSet {
    assert!(!data.is_empty(), "cannot sample queries from an empty set");
    assert!(n > 0, "query set must be non-empty");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    // Perturbation sigma proportional to the average coordinate spread.
    let dim = data.dim();
    let sample = data.len().min(256);
    let mut spread = 0.0f64;
    for i in 0..sample {
        for &v in data.point(i) {
            spread += (v as f64).abs();
        }
    }
    let sigma = (spread / (sample * dim) as f64 * 0.1) as f32;

    let mut out = PointSet::empty(dim);
    let mut q = vec![0.0f32; dim];
    for _ in 0..n {
        let src = data.point(rng.gen_range(0..data.len()));
        for (dst, &s) in q.iter_mut().zip(src) {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let g = (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos();
            *dst = s + g * sigma;
        }
        out.push(&q);
    }
    out
}

/// Exact k-nearest-neighbour ground truth for every query (brute force).
pub fn ground_truth_knn(
    data: &PointSet,
    queries: &PointSet,
    k: usize,
    metric: Metric,
) -> Vec<Vec<usize>> {
    queries
        .iter()
        .map(|q| {
            data.k_nearest_brute_force(q, k, metric)
                .into_iter()
                .map(|(i, _)| i)
                .collect()
        })
        .collect()
}

/// Mean recall@k of `found` (per-query candidate ids) against the ground
/// truth.
///
/// # Panics
///
/// Panics if the two slices differ in length or `k` is zero.
pub fn recall_at_k(found: &[Vec<u32>], truth: &[Vec<usize>], k: usize) -> f64 {
    assert_eq!(found.len(), truth.len(), "query count mismatch");
    assert!(k > 0, "k must be positive");
    if found.is_empty() {
        return 1.0;
    }
    let mut hits = 0usize;
    let mut total = 0usize;
    for (f, t) in found.iter().zip(truth) {
        let want: std::collections::HashSet<usize> = t.iter().take(k).copied().collect();
        total += want.len();
        hits += f
            .iter()
            .take(k)
            .filter(|&&i| want.contains(&(i as usize)))
            .count();
    }
    hits as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dataset, DatasetId};

    #[test]
    fn queries_share_the_data_distribution() {
        let ds = Dataset::generate_scaled(DatasetId::Sift10k, 1, Some(500));
        let data = ds.points().unwrap();
        let queries = query_set(data, 50, 2);
        assert_eq!(queries.len(), 50);
        assert_eq!(queries.dim(), data.dim());
        // Every query's nearest dataset point must be close (it is a
        // perturbed dataset point).
        for q in queries.iter() {
            let (_, d) = data.nearest_brute_force(q, Metric::Euclidean).unwrap();
            assert!(d.is_finite());
        }
    }

    #[test]
    fn query_generation_is_deterministic() {
        let ds = Dataset::generate_scaled(DatasetId::Glove, 3, Some(200));
        let data = ds.points().unwrap();
        let a = query_set(data, 10, 9);
        let b = query_set(data, 10, 9);
        assert_eq!(a.as_flat(), b.as_flat());
    }

    #[test]
    fn ground_truth_is_sorted_and_exact() {
        let ds = Dataset::generate_scaled(DatasetId::Random10k, 4, Some(300));
        let data = ds.points().unwrap();
        let queries = query_set(data, 5, 5);
        let truth = ground_truth_knn(data, &queries, 3, Metric::Euclidean);
        assert_eq!(truth.len(), 5);
        for (q, t) in queries.iter().zip(&truth) {
            assert_eq!(t.len(), 3);
            let d: Vec<f32> = t
                .iter()
                .map(|&i| hsu_geometry::point::euclidean_squared(q, data.point(i)))
                .collect();
            assert!(d.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn recall_math() {
        let truth = vec![vec![1usize, 2, 3], vec![4, 5, 6]];
        let perfect = vec![vec![1u32, 2, 3], vec![6, 5, 4]];
        assert_eq!(recall_at_k(&perfect, &truth, 3), 1.0);
        let half = vec![vec![1u32, 9, 8], vec![4, 5, 7]];
        assert!((recall_at_k(&half, &truth, 3) - 0.5).abs() < 1e-9);
        let none = vec![vec![7u32], vec![8]];
        assert_eq!(recall_at_k(&none, &truth, 1), 0.0);
    }
}
