//! Query-set generation, exact ground truth and recall measurement.

use hsu_geometry::point::{Metric, PointSet};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Draws `n` queries from the same distribution as `data` by perturbing
/// random dataset points with small Gaussian noise (the ANN-Benchmarks query
/// sets are held-out samples of the same source distribution).
///
/// # Panics
///
/// Panics if `data` is empty or `n` is zero.
pub fn query_set(data: &PointSet, n: usize, seed: u64) -> PointSet {
    assert!(!data.is_empty(), "cannot sample queries from an empty set");
    assert!(n > 0, "query set must be non-empty");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    // Perturbation sigma proportional to the average coordinate spread.
    let dim = data.dim();
    let sample = data.len().min(256);
    let mut spread = 0.0f64;
    for i in 0..sample {
        for &v in data.point(i) {
            spread += (v as f64).abs();
        }
    }
    let sigma = (spread / (sample * dim) as f64 * 0.1) as f32;

    let mut out = PointSet::empty(dim);
    let mut q = vec![0.0f32; dim];
    for _ in 0..n {
        let src = data.point(rng.gen_range(0..data.len()));
        for (dst, &s) in q.iter_mut().zip(src) {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let g = (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos();
            *dst = s + g * sigma;
        }
        out.push(&q);
    }
    out
}

/// SplitMix64-style mix of a stream seed and an element index — the
/// per-element seed every random-access stream generator below derives
/// its RNG from. Pure, order-free, and collision-resistant enough that
/// no two stream positions share an RNG stream.
fn stream_mix(seed: u64, i: u64) -> u64 {
    let mut z = seed ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic random-access query stream over a dataset: query `i`
/// is a pure function of `(seed, i)` (a perturbed dataset point, same
/// distribution as [`query_set`]), so **any** partition of the stream —
/// across shards, batches, worker threads, or replay runs — reproduces
/// byte-identical queries. This is what makes the serving engine
/// golden-testable under open-loop load.
#[derive(Debug, Clone, Copy)]
pub struct QueryStream {
    seed: u64,
    dim: usize,
    n_points: usize,
    sigma: f32,
}

impl QueryStream {
    /// Captures the stream parameters (dimension, point count and the
    /// perturbation sigma [`query_set`] would use) from `data`.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn new(data: &PointSet, seed: u64) -> Self {
        assert!(!data.is_empty(), "cannot stream queries from an empty set");
        let dim = data.dim();
        let sample = data.len().min(256);
        let mut spread = 0.0f64;
        for i in 0..sample {
            for &v in data.point(i) {
                spread += (v as f64).abs();
            }
        }
        let sigma = (spread / (sample * dim) as f64 * 0.1) as f32;
        Self {
            seed,
            dim,
            n_points: data.len(),
            sigma,
        }
    }

    /// Query dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Appends the `i`-th query (exactly `dim` floats) to `out`.
    /// `data` must be the point set the stream was created from.
    pub fn append_nth(&self, data: &PointSet, i: u64, out: &mut Vec<f32>) {
        let mut rng = ChaCha8Rng::seed_from_u64(stream_mix(self.seed, i));
        let src = data.point(rng.gen_range(0..self.n_points));
        out.reserve(self.dim);
        for &s in src {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let g = (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos();
            out.push(s + g * self.sigma);
        }
    }

    /// The `i`-th query as an owned row.
    pub fn nth(&self, data: &PointSet, i: u64) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.dim);
        self.append_nth(data, i, &mut out);
        out
    }
}

/// The `i`-th key of a deterministic random-access lookup-key stream over
/// `[0, key_space)` — the B+tree analogue of [`QueryStream`]. Pure in
/// `(seed, i)`, so any partition of the stream replays identically.
///
/// # Panics
///
/// Panics if `key_space` is zero.
pub fn key_stream_nth(seed: u64, i: u64, key_space: u32) -> u32 {
    assert!(key_space > 0, "key space must be non-empty");
    (stream_mix(seed, i) % u64::from(key_space)) as u32
}

/// Exact k-nearest-neighbour ground truth for every query (brute force).
pub fn ground_truth_knn(
    data: &PointSet,
    queries: &PointSet,
    k: usize,
    metric: Metric,
) -> Vec<Vec<usize>> {
    queries
        .iter()
        .map(|q| {
            data.k_nearest_brute_force(q, k, metric)
                .into_iter()
                .map(|(i, _)| i)
                .collect()
        })
        .collect()
}

/// Mean recall@k of `found` (per-query candidate ids) against the ground
/// truth.
///
/// # Panics
///
/// Panics if the two slices differ in length or `k` is zero.
pub fn recall_at_k(found: &[Vec<u32>], truth: &[Vec<usize>], k: usize) -> f64 {
    assert_eq!(found.len(), truth.len(), "query count mismatch");
    assert!(k > 0, "k must be positive");
    if found.is_empty() {
        return 1.0;
    }
    let mut hits = 0usize;
    let mut total = 0usize;
    for (f, t) in found.iter().zip(truth) {
        let want: std::collections::HashSet<usize> = t.iter().take(k).copied().collect();
        total += want.len();
        hits += f
            .iter()
            .take(k)
            .filter(|&&i| want.contains(&(i as usize)))
            .count();
    }
    hits as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dataset, DatasetId};

    #[test]
    fn queries_share_the_data_distribution() {
        let ds = Dataset::generate_scaled(DatasetId::Sift10k, 1, Some(500));
        let data = ds.points().unwrap();
        let queries = query_set(data, 50, 2);
        assert_eq!(queries.len(), 50);
        assert_eq!(queries.dim(), data.dim());
        // Every query's nearest dataset point must be close (it is a
        // perturbed dataset point).
        for q in queries.iter() {
            let (_, d) = data.nearest_brute_force(q, Metric::Euclidean).unwrap();
            assert!(d.is_finite());
        }
    }

    #[test]
    fn query_generation_is_deterministic() {
        let ds = Dataset::generate_scaled(DatasetId::Glove, 3, Some(200));
        let data = ds.points().unwrap();
        let a = query_set(data, 10, 9);
        let b = query_set(data, 10, 9);
        assert_eq!(a.as_flat(), b.as_flat());
    }

    #[test]
    fn ground_truth_is_sorted_and_exact() {
        let ds = Dataset::generate_scaled(DatasetId::Random10k, 4, Some(300));
        let data = ds.points().unwrap();
        let queries = query_set(data, 5, 5);
        let truth = ground_truth_knn(data, &queries, 3, Metric::Euclidean);
        assert_eq!(truth.len(), 5);
        for (q, t) in queries.iter().zip(&truth) {
            assert_eq!(t.len(), 3);
            let d: Vec<f32> = t
                .iter()
                .map(|&i| hsu_geometry::point::euclidean_squared(q, data.point(i)))
                .collect();
            assert!(d.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn query_stream_is_pure_in_seed_and_index() {
        let ds = Dataset::generate_scaled(DatasetId::Glove, 3, Some(200));
        let data = ds.points().unwrap();
        let stream = QueryStream::new(data, 17);
        // Random access in any order matches sequential access, bit for bit.
        let forward: Vec<Vec<f32>> = (0..20).map(|i| stream.nth(data, i)).collect();
        for i in (0..20).rev() {
            let q = stream.nth(data, i);
            assert_eq!(q.len(), data.dim());
            let same: Vec<u32> = q.iter().map(|v| v.to_bits()).collect();
            let expect: Vec<u32> = forward[i as usize].iter().map(|v| v.to_bits()).collect();
            assert_eq!(same, expect, "query {i}");
        }
        // Different seeds give different streams.
        let other = QueryStream::new(data, 18);
        assert_ne!(stream.nth(data, 0), other.nth(data, 0));
        // Queries stay finite and near the data distribution.
        for q in &forward {
            assert!(q.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn key_stream_is_pure_and_in_range() {
        for i in 0..500u64 {
            let k = key_stream_nth(7, i, 1000);
            assert!(k < 1000);
            assert_eq!(k, key_stream_nth(7, i, 1000));
        }
        // Streams with different seeds differ somewhere early.
        assert!((0..16).any(|i| key_stream_nth(1, i, 1 << 20) != key_stream_nth(2, i, 1 << 20)));
    }

    #[test]
    fn recall_math() {
        let truth = vec![vec![1usize, 2, 3], vec![4, 5, 6]];
        let perfect = vec![vec![1u32, 2, 3], vec![6, 5, 4]];
        assert_eq!(recall_at_k(&perfect, &truth, 3), 1.0);
        let half = vec![vec![1u32, 9, 8], vec![4, 5, 7]];
        assert!((recall_at_k(&half, &truth, 3) - 0.5).abs() < 1e-9);
        let none = vec![vec![7u32], vec![8]];
        assert_eq!(recall_at_k(&none, &truth, 1), 0.0);
    }
}
