//! The dataset catalog mirroring the paper's Table II.

use hsu_geometry::point::Metric;
use std::fmt;

/// The sixteen evaluation datasets of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum DatasetId {
    Deep1b,
    FashionMnist,
    Mnist,
    Gist,
    Glove,
    LastFm,
    Nytimes,
    Sift1m,
    Sift10k,
    Random10k,
    Bunny,
    Dragon,
    Buddha,
    Cosmos,
    BTree1m,
    BTree10k,
}

impl DatasetId {
    /// All datasets in Table II order.
    pub const ALL: [DatasetId; 16] = [
        DatasetId::Deep1b,
        DatasetId::FashionMnist,
        DatasetId::Mnist,
        DatasetId::Gist,
        DatasetId::Glove,
        DatasetId::LastFm,
        DatasetId::Nytimes,
        DatasetId::Sift1m,
        DatasetId::Sift10k,
        DatasetId::Random10k,
        DatasetId::Bunny,
        DatasetId::Dragon,
        DatasetId::Buddha,
        DatasetId::Cosmos,
        DatasetId::BTree1m,
        DatasetId::BTree10k,
    ];

    /// The high-dimensional ANN-Benchmarks sets used by GGNN (§VI-D).
    pub const HIGH_DIM: [DatasetId; 9] = [
        DatasetId::Deep1b,
        DatasetId::FashionMnist,
        DatasetId::Mnist,
        DatasetId::Gist,
        DatasetId::Glove,
        DatasetId::LastFm,
        DatasetId::Nytimes,
        DatasetId::Sift1m,
        DatasetId::Sift10k,
    ];

    /// The 3-D point-cloud sets used by FLANN and BVH-NN.
    pub const THREE_D: [DatasetId; 5] = [
        DatasetId::Random10k,
        DatasetId::Bunny,
        DatasetId::Dragon,
        DatasetId::Buddha,
        DatasetId::Cosmos,
    ];
}

impl fmt::Display for DatasetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(spec(*self).abbr)
    }
}

/// How the synthetic generator models the dataset's structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataFamily {
    /// Gaussian-mixture clusters (learned feature embeddings).
    Embedding,
    /// Points sampled on a noisy parametric surface (3-D scans).
    Surface,
    /// Plummer-sphere halos (cosmological simulation).
    Cosmology,
    /// Continuous uniform cube.
    Uniform,
    /// Uniform random keys for the B+-tree.
    Keys,
}

/// One row of Table II plus this reproduction's scaling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetSpec {
    /// Which dataset.
    pub id: DatasetId,
    /// Table II abbreviation.
    pub abbr: &'static str,
    /// Dimensionality (exactly as in the paper).
    pub dims: usize,
    /// Cardinality reported in the paper.
    pub paper_points: usize,
    /// Cardinality generated here (simulator-friendly scale).
    pub scaled_points: usize,
    /// Distance metric, `None` for the key datasets.
    pub metric: Option<Metric>,
    /// Generator family.
    pub family: DataFamily,
}

impl DatasetSpec {
    /// Scale factor applied to the paper's cardinality.
    pub fn scale_factor(&self) -> f64 {
        self.paper_points as f64 / self.scaled_points as f64
    }
}

/// The full catalog (Table II order).
pub fn catalog() -> Vec<DatasetSpec> {
    DatasetId::ALL.iter().map(|&id| spec(id)).collect()
}

/// The spec of one dataset.
pub fn spec(id: DatasetId) -> DatasetSpec {
    use DataFamily::*;
    use DatasetId::*;
    let (abbr, dims, paper_points, scaled_points, metric, family) = match id {
        Deep1b => (
            "D1B",
            96,
            9_900_000,
            20_000,
            Some(Metric::Angular),
            Embedding,
        ),
        FashionMnist => (
            "FMNT",
            784,
            60_000,
            4_000,
            Some(Metric::Euclidean),
            Embedding,
        ),
        Mnist => (
            "MNT",
            784,
            60_000,
            4_000,
            Some(Metric::Euclidean),
            Embedding,
        ),
        Gist => (
            "GST",
            960,
            1_000_000,
            3_000,
            Some(Metric::Euclidean),
            Embedding,
        ),
        Glove => (
            "GLV",
            200,
            1_180_000,
            10_000,
            Some(Metric::Angular),
            Embedding,
        ),
        LastFm => ("LFM", 65, 292_000, 10_000, Some(Metric::Angular), Embedding),
        Nytimes => ("NYT", 256, 290_000, 8_000, Some(Metric::Angular), Embedding),
        Sift1m => (
            "S1M",
            128,
            1_000_000,
            12_000,
            Some(Metric::Euclidean),
            Embedding,
        ),
        Sift10k => (
            "S10K",
            128,
            10_000,
            5_000,
            Some(Metric::Euclidean),
            Embedding,
        ),
        Random10k => ("R10K", 3, 10_000, 10_000, Some(Metric::Euclidean), Uniform),
        Bunny => ("BUN", 3, 35_900, 20_000, Some(Metric::Euclidean), Surface),
        Dragon => ("DRG", 3, 437_000, 30_000, Some(Metric::Euclidean), Surface),
        Buddha => ("BUD", 3, 543_000, 30_000, Some(Metric::Euclidean), Surface),
        Cosmos => (
            "COS",
            3,
            100_000,
            25_000,
            Some(Metric::Euclidean),
            Cosmology,
        ),
        BTree1m => ("B+1M", 1, 1_000_000, 200_000, None, Keys),
        BTree10k => ("B+10K", 1, 10_000, 10_000, None, Keys),
    };
    DatasetSpec {
        id,
        abbr,
        dims,
        paper_points,
        scaled_points,
        metric,
        family,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_matches_table_ii_shape() {
        let cat = catalog();
        assert_eq!(cat.len(), 16);
        // Dimensions are exact per Table II.
        assert_eq!(spec(DatasetId::Deep1b).dims, 96);
        assert_eq!(spec(DatasetId::Mnist).dims, 784);
        assert_eq!(spec(DatasetId::Gist).dims, 960);
        assert_eq!(spec(DatasetId::Glove).dims, 200);
        assert_eq!(spec(DatasetId::LastFm).dims, 65);
        assert_eq!(spec(DatasetId::Nytimes).dims, 256);
        assert_eq!(spec(DatasetId::Sift1m).dims, 128);
        assert_eq!(spec(DatasetId::Bunny).dims, 3);
        assert_eq!(spec(DatasetId::BTree1m).dims, 1);
    }

    #[test]
    fn metrics_match_table_ii() {
        for (id, metric) in [
            (DatasetId::Deep1b, Some(Metric::Angular)),
            (DatasetId::Glove, Some(Metric::Angular)),
            (DatasetId::LastFm, Some(Metric::Angular)),
            (DatasetId::Nytimes, Some(Metric::Angular)),
            (DatasetId::Mnist, Some(Metric::Euclidean)),
            (DatasetId::Sift1m, Some(Metric::Euclidean)),
            (DatasetId::BTree10k, None),
        ] {
            assert_eq!(spec(id).metric, metric, "{id:?}");
        }
    }

    #[test]
    fn scaled_sizes_never_exceed_paper_sizes() {
        for s in catalog() {
            assert!(s.scaled_points <= s.paper_points, "{:?}", s.id);
            assert!(s.scale_factor() >= 1.0);
        }
    }

    #[test]
    fn groupings_are_disjoint_and_typed() {
        for id in DatasetId::HIGH_DIM {
            assert!(spec(id).dims > 3);
            assert!(spec(id).metric.is_some());
        }
        for id in DatasetId::THREE_D {
            assert_eq!(spec(id).dims, 3);
        }
    }

    #[test]
    fn display_uses_abbreviations() {
        assert_eq!(DatasetId::Deep1b.to_string(), "D1B");
        assert_eq!(DatasetId::BTree1m.to_string(), "B+1M");
    }
}
