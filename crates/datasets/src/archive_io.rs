//! `.hsar` payload codecs for generated datasets.
//!
//! A point set is stored as one [`hsu_archive::kind::POINTS`] chunk
//! (`dim u32 | count u64 | count × dim f32`, row-major, bit patterns
//! preserved exactly); a key set as one [`hsu_archive::kind::KEYS`] chunk
//! (`count u64 | count × (key u32, value u64)`). Whole datasets live in a
//! keyed archive with a single `data/points` or `data/keys` chunk, so a
//! cached dataset restores without running its generator.

use std::path::Path;

use hsu_archive::payload::{put_f32, put_u32, put_u64, Cursor};
use hsu_archive::{kind, ArchiveError, ArchiveWriter, FileArchive};
use hsu_geometry::point::PointSet;

use crate::catalog::DataFamily;
use crate::generators::Dataset;
use crate::DatasetId;

/// Encodes a point set as a `POINTS` chunk payload.
pub fn points_to_chunk(points: &PointSet) -> Vec<u8> {
    let mut buf = Vec::with_capacity(12 + points.as_flat().len() * 4);
    put_u32(&mut buf, points.dim() as u32);
    put_u64(&mut buf, points.len() as u64);
    for &v in points.as_flat() {
        put_f32(&mut buf, v);
    }
    buf
}

/// Decodes a `POINTS` chunk payload; `chunk` labels errors.
pub fn points_from_chunk(bytes: &[u8], chunk: &str) -> Result<PointSet, ArchiveError> {
    let mut c = Cursor::new(bytes, chunk);
    let dim = c.u32()? as usize;
    if dim == 0 {
        return Err(ArchiveError::Payload {
            chunk: chunk.into(),
            detail: "zero-dimensional point set".into(),
        });
    }
    let count = c.u64()?;
    let count = c.count(count, dim.saturating_mul(4), "point")?;
    let mut data = Vec::with_capacity(count * dim);
    for _ in 0..count * dim {
        data.push(c.f32()?);
    }
    c.finish()?;
    Ok(PointSet::from_rows(dim, data))
}

/// Encodes `(key, value)` pairs as a `KEYS` chunk payload.
pub fn keys_to_chunk(keys: &[(u32, u64)]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(8 + keys.len() * 12);
    put_u64(&mut buf, keys.len() as u64);
    for &(k, v) in keys {
        put_u32(&mut buf, k);
        put_u64(&mut buf, v);
    }
    buf
}

/// Decodes a `KEYS` chunk payload; `chunk` labels errors.
pub fn keys_from_chunk(bytes: &[u8], chunk: &str) -> Result<Vec<(u32, u64)>, ArchiveError> {
    let mut c = Cursor::new(bytes, chunk);
    let count = c.u64()?;
    let count = c.count(count, 12, "key pair")?;
    let mut keys = Vec::with_capacity(count);
    for _ in 0..count {
        let k = c.u32()?;
        let v = c.u64()?;
        keys.push((k, v));
    }
    c.finish()?;
    Ok(keys)
}

/// Writes `dataset` to `path` as a keyed archive (atomically).
pub fn write_dataset_archive(
    path: &Path,
    key: &str,
    dataset: &Dataset,
) -> Result<(), ArchiveError> {
    let mut w = ArchiveWriter::new();
    w.set_key(key);
    w.begin_group("data");
    if let Some(points) = dataset.points() {
        w.add_chunk("points", kind::POINTS, &points_to_chunk(points));
    }
    if let Some(keys) = dataset.keys() {
        w.add_chunk("keys", kind::KEYS, &keys_to_chunk(keys));
    }
    w.end_group();
    w.finish_to_file(path)
}

/// Restores the dataset `id` from the keyed archive at `path`, verifying the
/// content key first (a mismatch is [`ArchiveError::KeyMismatch`], the typed
/// cache-miss signal).
pub fn read_dataset_archive(
    path: &Path,
    key: &str,
    id: DatasetId,
) -> Result<Dataset, ArchiveError> {
    let mut archive = FileArchive::open(path)?;
    archive.expect_key(key)?;
    let spec = crate::spec(id);
    if spec.family == DataFamily::Keys {
        let keys = keys_from_chunk(&archive.read("data/keys", kind::KEYS)?, "data/keys")?;
        Ok(Dataset::from_keys(id, keys))
    } else {
        let points = points_from_chunk(&archive.read("data/points", kind::POINTS)?, "data/points")?;
        if points.dim() != spec.dims {
            return Err(ArchiveError::Payload {
                chunk: "data/points".into(),
                detail: format!(
                    "dimension {} does not match {id:?}'s spec dimension {}",
                    points.dim(),
                    spec.dims
                ),
            });
        }
        Ok(Dataset::from_points(id, points))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn points_chunk_round_trips_bit_exactly() {
        let ps = PointSet::from_rows(3, vec![0.0, -0.0, 1.5, f32::MIN_POSITIVE, 2.0, -7.25]);
        let bytes = points_to_chunk(&ps);
        let back = points_from_chunk(&bytes, "t").unwrap();
        assert_eq!(back.dim(), 3);
        let a: Vec<u32> = ps.as_flat().iter().map(|v| v.to_bits()).collect();
        let b: Vec<u32> = back.as_flat().iter().map(|v| v.to_bits()).collect();
        assert_eq!(a, b);
        assert_eq!(points_to_chunk(&back), bytes, "re-encode parity");
    }

    #[test]
    fn keys_chunk_round_trips() {
        let keys = vec![(7u32, 0u64), (0, u64::MAX), (1 << 23, 42)];
        let bytes = keys_to_chunk(&keys);
        assert_eq!(keys_from_chunk(&bytes, "t").unwrap(), keys);
        assert_eq!(keys_to_chunk(&keys_from_chunk(&bytes, "t").unwrap()), bytes);
    }

    #[test]
    fn oversized_counts_are_typed_payload_errors() {
        let mut bytes = points_to_chunk(&PointSet::from_rows(2, vec![1.0, 2.0]));
        // Claim 2^50 points in a chunk that holds one.
        bytes[4..12].copy_from_slice(&(1u64 << 50).to_le_bytes());
        let err = points_from_chunk(&bytes, "t").unwrap_err();
        assert_eq!(err.kind(), "payload");
    }

    #[test]
    fn dataset_archive_round_trips_through_a_file() {
        let dir = std::env::temp_dir().join(format!("hsar-ds-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for (id, key) in [(DatasetId::Sift10k, "sift"), (DatasetId::BTree10k, "btree")] {
            let ds = Dataset::generate_scaled(id, 7, Some(100));
            let path = dir.join(format!("{id:?}.hsar"));
            write_dataset_archive(&path, key, &ds).unwrap();
            let back = read_dataset_archive(&path, key, id).unwrap();
            assert_eq!(
                ds.points().map(|p| p.as_flat()),
                back.points().map(|p| p.as_flat())
            );
            assert_eq!(ds.keys(), back.keys());
            let err = read_dataset_archive(&path, "wrong-key", id).unwrap_err();
            assert_eq!(err.kind(), "key-mismatch");
            std::fs::remove_file(&path).ok();
        }
    }
}
