//! Synthetic stand-ins for the paper's evaluation datasets (Table II).
//!
//! The paper evaluates on ANN-Benchmarks feature sets (deep1b, mnist, gist,
//! glove, …), Stanford 3-D scans, a cosmological N-body snapshot, and two key
//! sets for the B+-tree. Those exact files are not redistributable inside
//! this reproduction, so each dataset is replaced by a *seeded synthetic
//! generator matching its dimension, metric and clustering character*, with
//! the cardinality scaled down to simulator-friendly sizes (the scale factor
//! is recorded per dataset and printed by every figure harness):
//!
//! * learned-embedding sets → Gaussian mixtures (clustered, anisotropic),
//! * 3-D scans (bunny/dragon/buddha) → points sampled on a parametric
//!   surface plus noise (a 2-D manifold in 3-D, like a scanned mesh),
//! * cosmos → Plummer-sphere halos (gravitationally clustered),
//! * random10k → uniform cube (exactly as in the paper),
//! * B-tree keys → uniform random 24-bit keys.
//!
//! # Examples
//!
//! ```
//! use hsu_datasets::{Dataset, DatasetId};
//!
//! let ds = Dataset::generate(DatasetId::Sift10k, 42);
//! let points = ds.points().expect("sift10k is a point dataset");
//! assert_eq!(points.dim(), 128);
//! ```

#![warn(missing_docs)]

pub mod archive_io;
mod catalog;
mod generators;
mod queries;

pub use catalog::{catalog, spec, DataFamily, DatasetId, DatasetSpec};
pub use generators::Dataset;
pub use queries::{ground_truth_knn, key_stream_nth, query_set, recall_at_k, QueryStream};
