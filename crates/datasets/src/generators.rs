//! Seeded synthetic generators for each dataset family.

use crate::catalog::{spec, DataFamily, DatasetId, DatasetSpec};
use hsu_geometry::point::PointSet;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A generated dataset: the spec plus its payload (points or keys).
#[derive(Debug, Clone)]
pub struct Dataset {
    spec: DatasetSpec,
    points: Option<PointSet>,
    keys: Option<Vec<(u32, u64)>>,
}

impl Dataset {
    /// Generates the dataset at its catalog-scaled cardinality.
    pub fn generate(id: DatasetId, seed: u64) -> Self {
        Self::generate_scaled(id, seed, None)
    }

    /// Generates with an explicit cardinality override (used by quick tests
    /// and the sensitivity sweeps).
    ///
    /// # Panics
    ///
    /// Panics if `points_override` is `Some(0)`.
    pub fn generate_scaled(id: DatasetId, seed: u64, points_override: Option<usize>) -> Self {
        let spec = spec(id);
        let n = points_override.unwrap_or(spec.scaled_points);
        assert!(n > 0, "dataset must have at least one element");
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ (id as u64) << 32);
        match spec.family {
            DataFamily::Keys => {
                let keys = gen_keys(&mut rng, n);
                Dataset {
                    spec,
                    points: None,
                    keys: Some(keys),
                }
            }
            family => {
                let points = match family {
                    DataFamily::Embedding => gen_embedding(&mut rng, n, spec.dims),
                    DataFamily::Surface => gen_surface(&mut rng, n),
                    DataFamily::Cosmology => gen_cosmology(&mut rng, n),
                    DataFamily::Uniform => gen_uniform(&mut rng, n, spec.dims),
                    DataFamily::Keys => unreachable!(),
                };
                Dataset {
                    spec,
                    points: Some(points),
                    keys: None,
                }
            }
        }
    }

    /// The dataset's catalog spec.
    pub fn spec(&self) -> &DatasetSpec {
        &self.spec
    }

    /// The point payload, `None` for key datasets.
    pub fn points(&self) -> Option<&PointSet> {
        self.points.as_ref()
    }

    /// The key payload, `None` for point datasets.
    pub fn keys(&self) -> Option<&[(u32, u64)]> {
        self.keys.as_deref()
    }

    /// Rebuilds a point dataset from an already-materialized payload (the
    /// archive restore path — the cache layer guarantees via content keys
    /// that `points` came from this `id`'s generator).
    ///
    /// # Panics
    ///
    /// Panics if `id` is a key dataset or the dimensions disagree with the
    /// catalog spec.
    pub fn from_points(id: DatasetId, points: PointSet) -> Self {
        let spec = spec(id);
        assert!(
            spec.family != DataFamily::Keys,
            "{id:?} is a key dataset, not a point dataset"
        );
        assert_eq!(points.dim(), spec.dims, "{id:?} dimension mismatch");
        Dataset {
            spec,
            points: Some(points),
            keys: None,
        }
    }

    /// Rebuilds a key dataset from an already-materialized payload (the
    /// archive restore path).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a key dataset.
    pub fn from_keys(id: DatasetId, keys: Vec<(u32, u64)>) -> Self {
        let spec = spec(id);
        assert!(
            spec.family == DataFamily::Keys,
            "{id:?} is a point dataset, not a key dataset"
        );
        Dataset {
            spec,
            points: None,
            keys: Some(keys),
        }
    }
}

/// Uniform random 24-bit keys (exactly representable in f32 for
/// `KEY_COMPARE`) with sequential values.
fn gen_keys(rng: &mut ChaCha8Rng, n: usize) -> Vec<(u32, u64)> {
    let mut keys: Vec<u32> = Vec::with_capacity(n);
    let mut seen = std::collections::HashSet::with_capacity(n);
    while keys.len() < n {
        let k = rng.gen_range(0..1 << 24);
        if seen.insert(k) {
            keys.push(k);
        }
    }
    keys.into_iter()
        .enumerate()
        .map(|(i, k)| (k, i as u64))
        .collect()
}

/// Gaussian-mixture embedding: `sqrt(n)`-ish clusters with anisotropic
/// per-dimension spread, mimicking learned feature spaces where ANN graphs
/// shine (uniform high-dim data would have no navigable structure).
fn gen_embedding(rng: &mut ChaCha8Rng, n: usize, dims: usize) -> PointSet {
    let n_clusters = (n as f64).sqrt().ceil() as usize;
    // Cluster centres in the unit cube, per-dimension sigma decaying like a
    // spectrum (first dimensions carry most variance, like PCA-ordered
    // features).
    let centres: Vec<Vec<f32>> = (0..n_clusters)
        .map(|_| (0..dims).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect();
    let sigmas: Vec<f32> = (0..dims)
        .map(|d| 0.25 / (1.0 + d as f32 / 32.0).sqrt())
        .collect();
    let mut data = Vec::with_capacity(n * dims);
    for _ in 0..n {
        let c = &centres[rng.gen_range(0..n_clusters)];
        for d in 0..dims {
            data.push(c[d] + gaussian(rng) * sigmas[d]);
        }
    }
    PointSet::from_rows(dims, data)
}

/// Points on a noisy torus-knot surface: a 2-D manifold embedded in 3-D with
/// varying curvature, the character of a laser-scanned model.
fn gen_surface(rng: &mut ChaCha8Rng, n: usize) -> PointSet {
    let mut data = Vec::with_capacity(n * 3);
    for _ in 0..n {
        let u = rng.gen_range(0.0f32..std::f32::consts::TAU);
        let v = rng.gen_range(0.0f32..std::f32::consts::TAU);
        // (2,3) torus knot tube of radius 0.3 around a radius-2 path.
        let (p, q) = (2.0f32, 3.0f32);
        let r = (q * u).cos() + 2.0;
        let cx = r * (p * u).cos();
        let cy = r * (p * u).sin();
        let cz = -(q * u).sin();
        // Tube offset in a pseudo-normal frame plus scan noise.
        let tube = 0.3;
        let noise = 0.01;
        data.push(cx + tube * v.cos() * (p * u).cos() + gaussian(rng) * noise);
        data.push(cy + tube * v.cos() * (p * u).sin() + gaussian(rng) * noise);
        data.push(cz + tube * v.sin() + gaussian(rng) * noise);
    }
    PointSet::from_rows(3, data)
}

/// Plummer-sphere halos: heavy central concentration with sparse outskirts,
/// matching the clustering statistics of an N-body snapshot.
fn gen_cosmology(rng: &mut ChaCha8Rng, n: usize) -> PointSet {
    let n_halos = 32;
    let centres: Vec<[f32; 3]> = (0..n_halos)
        .map(|_| {
            [
                rng.gen_range(-10.0f32..10.0),
                rng.gen_range(-10.0f32..10.0),
                rng.gen_range(-10.0f32..10.0),
            ]
        })
        .collect();
    let mut data = Vec::with_capacity(n * 3);
    for _ in 0..n {
        let c = centres[rng.gen_range(0..n_halos)];
        // Plummer radial profile: r = a / sqrt(u^{-2/3} - 1).
        let a = 0.5f32;
        let u: f32 = rng.gen_range(1e-4f32..1.0);
        let r = a / (u.powf(-2.0 / 3.0) - 1.0).sqrt().max(1e-3);
        let r = r.min(8.0); // clamp the rare far outliers
                            // Random direction.
        let z = rng.gen_range(-1.0f32..1.0);
        let phi = rng.gen_range(0.0f32..std::f32::consts::TAU);
        let s = (1.0 - z * z).sqrt();
        data.push(c[0] + r * s * phi.cos());
        data.push(c[1] + r * s * phi.sin());
        data.push(c[2] + r * z);
    }
    PointSet::from_rows(3, data)
}

/// Continuous uniform cube (the paper's random10k).
fn gen_uniform(rng: &mut ChaCha8Rng, n: usize, dims: usize) -> PointSet {
    let data: Vec<f32> = (0..n * dims).map(|_| rng.gen_range(0.0f32..1.0)).collect();
    PointSet::from_rows(dims, data)
}

/// Box–Muller standard normal.
fn gaussian(rng: &mut ChaCha8Rng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsu_geometry::point::Metric;

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::generate_scaled(DatasetId::Sift10k, 7, Some(100));
        let b = Dataset::generate_scaled(DatasetId::Sift10k, 7, Some(100));
        assert_eq!(a.points().unwrap().as_flat(), b.points().unwrap().as_flat());
        let c = Dataset::generate_scaled(DatasetId::Sift10k, 8, Some(100));
        assert_ne!(a.points().unwrap().as_flat(), c.points().unwrap().as_flat());
    }

    #[test]
    fn dims_match_spec_for_all_point_sets() {
        for id in DatasetId::ALL {
            let ds = Dataset::generate_scaled(id, 1, Some(50));
            match ds.points() {
                Some(p) => {
                    assert_eq!(p.dim(), ds.spec().dims, "{id:?}");
                    assert_eq!(p.len(), 50);
                    assert!(
                        p.as_flat().iter().all(|v| v.is_finite()),
                        "{id:?} non-finite"
                    );
                }
                None => {
                    let keys = ds.keys().unwrap();
                    assert_eq!(keys.len(), 50);
                }
            }
        }
    }

    #[test]
    fn keys_are_unique_and_24_bit() {
        let ds = Dataset::generate_scaled(DatasetId::BTree10k, 3, Some(5000));
        let keys = ds.keys().unwrap();
        let mut set = std::collections::HashSet::new();
        for &(k, _) in keys {
            assert!(k < (1 << 24));
            assert!(set.insert(k), "duplicate key {k}");
            // f32 exactness for KEY_COMPARE.
            assert_eq!(k as f32 as u32, k);
        }
    }

    #[test]
    fn embeddings_are_clustered_not_uniform() {
        // Mean nearest-neighbour distance in a clustered set is far below the
        // uniform expectation at the same scale.
        let ds = Dataset::generate_scaled(DatasetId::LastFm, 5, Some(500));
        let p = ds.points().unwrap();
        let mut nn_sum = 0.0f64;
        for i in 0..100 {
            let (_, d) = p.nearest_brute_force_excluding(p.point(i), i, Metric::Euclidean);
            nn_sum += d as f64;
        }
        let clustered_nn = nn_sum / 100.0;

        let uni = Dataset::generate_scaled(DatasetId::Random10k, 5, Some(500));
        let _ = uni; // 3-D uniform is not comparable; instead check spread:
                     // points within a cluster should be much closer than the global std.
        let mut global = 0.0f64;
        for i in 0..100 {
            let d = hsu_geometry::point::euclidean_squared(p.point(i), p.point(i + 100));
            global += d as f64;
        }
        let global_mean = global / 100.0;
        assert!(
            clustered_nn < global_mean * 0.5,
            "no cluster structure: nn {clustered_nn} vs pair {global_mean}"
        );
    }

    #[test]
    fn surface_points_lie_near_the_knot_tube() {
        let ds = Dataset::generate_scaled(DatasetId::Bunny, 9, Some(2000));
        let p = ds.points().unwrap();
        // A 2-D manifold in 3-D: local neighbourhoods are much denser than a
        // volume-filling cloud of the same extent would be.
        let (_, d2) = p.nearest_brute_force_excluding(p.point(0), 0, Metric::Euclidean);
        assert!(d2 < 0.1, "surface sampling too sparse: {d2}");
    }

    #[test]
    fn cosmology_is_heavily_clustered() {
        let ds = Dataset::generate_scaled(DatasetId::Cosmos, 11, Some(3000));
        let p = ds.points().unwrap();
        // Median NN distance must be tiny relative to the 20-unit box.
        let mut ds2: Vec<f32> = (0..200)
            .map(|i| {
                p.nearest_brute_force_excluding(p.point(i), i, Metric::Euclidean)
                    .1
            })
            .collect();
        ds2.sort_by(f32::total_cmp);
        let median = ds2[100].sqrt();
        assert!(median < 1.0, "median NN distance {median} too large");
    }
}
