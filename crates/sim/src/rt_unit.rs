//! Timing model of the per-SM RT/HSU unit (paper Fig. 4).
//!
//! One unit serves the SM's four sub-cores. A dispatched HSU warp instruction
//! occupies a warp-buffer entry while each active lane's CISC fetch drains
//! through the FIFO memory-access queue (which time-shares the L1 port with
//! the load-store unit); once every lane's operands arrive, the single-lane
//! datapath consumes one lane-beat per cycle. When all lanes complete, the
//! result buffer writes back and the owning warp resumes.
//!
//! Multi-beat distance sequences are dispatched as one buffered instruction
//! whose lanes carry `ceil(dim / width)` beats each — the timing-equivalent
//! of the ISA's chained accumulate instructions under the paper's §IV-F
//! ordering rule (the arbiter lock simply means no other warp's beats may
//! interleave, which holding the warp-buffer entry through all beats
//! enforces).

use std::collections::VecDeque;

use hsu_core::arbiter::SubCoreArbiter;
use hsu_core::pipeline::{DatapathPipeline, OperatingMode, PipelineStats};
use hsu_core::warp_buffer::{EntryId, WarpBuffer, WARP_WIDTH};
use hsu_core::HsuConfig;

use crate::error::SimError;
use crate::trace::ThreadOp;

/// A pending CISC fetch: one unique cache line needed by one or more lanes
/// of a warp-buffer entry. Identical lane fetches are coalesced at dispatch
/// (the CISC analogue of LSU coalescing, §VI-J).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FifoRequest {
    /// Warp-buffer entry.
    pub entry: EntryId,
    /// Index into the entry's coalesced-request table.
    pub req: usize,
    /// Cache line to fetch.
    pub line: u64,
}

/// Statistics of one RT/HSU unit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RtUnitStats {
    /// Warp instructions dispatched into the warp buffer.
    pub warp_instructions: u64,
    /// ISA-level HSU instructions (beats count individually, as the compiler
    /// emits them).
    pub isa_instructions: u64,
    /// Sum of warp-buffer occupancy sampled each cycle (for averages).
    pub occupancy_sum: u64,
    /// Highest warp-buffer occupancy observed in any cycle.
    pub occupancy_peak: u64,
    /// Cycles the unit existed.
    pub cycles: u64,
    /// Dispatches rejected because the warp buffer was full.
    pub dispatch_stalls: u64,
    /// Node-line fetches satisfied by a staged line without touching memory
    /// (treelet core only; always zero under the baseline organization).
    pub staging_hits: u64,
    /// Staged lines evicted to make room for a new fetch (treelet core
    /// only).
    pub staging_evictions: u64,
    /// Dispatches whose node treelet differed from the same warp's previous
    /// dispatch (treelet core only) — the treelet-stack switch count.
    pub treelet_transitions: u64,
    /// Datapath pipeline statistics.
    pub pipeline: PipelineStats,
}

impl RtUnitStats {
    /// Mean warp-buffer occupancy.
    pub fn mean_occupancy(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.occupancy_sum as f64 / self.cycles as f64
        }
    }
}

/// Per-lane bookkeeping inside a warp-buffer entry (shared by both RT-unit
/// organizations).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct LaneState {
    /// Outstanding memory lines.
    pub(crate) pending_lines: u32,
    /// Datapath beats not yet issued.
    pub(crate) beats_to_issue: u32,
    /// Datapath beats not yet completed.
    pub(crate) beats_in_flight: u32,
    /// Operating mode of this lane's beats.
    pub(crate) mode: Option<OperatingMode>,
}

/// Operating mode, beat count and fetch footprint `(mode, beats, addr,
/// bytes)` of a lane's op. Shared by both RT-unit organizations so a
/// malformed instruction produces the *identical* typed error under either
/// — the cross-organization payload-parity tests rely on this.
///
/// Non-HSU ops are a dispatch-routing violation (a malformed trace or a
/// scheduler bug) and surface as [`SimError::IllegalDispatch`].
pub(crate) fn lane_plan(
    cfg: &HsuConfig,
    op: &ThreadOp,
) -> Result<(OperatingMode, u32, u64, u64), SimError> {
    match *op {
        ThreadOp::HsuRayIntersect {
            node_addr,
            bytes,
            triangle,
        } => {
            let mode = if triangle {
                OperatingMode::RayTriangle
            } else {
                OperatingMode::RayBox
            };
            Ok((mode, 1, node_addr, bytes as u64))
        }
        ThreadOp::HsuDistance {
            metric,
            dim,
            candidate_addr,
        } => {
            let beats = cfg.beats_for(metric, dim as usize) as u32;
            let mode = match metric {
                hsu_geometry::point::Metric::Euclidean => OperatingMode::Euclid,
                hsu_geometry::point::Metric::Angular => OperatingMode::Angular,
            };
            Ok((mode, beats, candidate_addr, dim as u64 * 4))
        }
        ThreadOp::HsuKeyCompare {
            node_addr,
            separators,
        } => {
            let beats = cfg.key_compare_instructions(separators as usize) as u32;
            Ok((
                OperatingMode::KeyCompare,
                beats,
                node_addr,
                separators as u64 * 4,
            ))
        }
        ref other => Err(SimError::IllegalDispatch {
            detail: format!("non-HSU op dispatched to the RT unit: {other:?}"),
        }),
    }
}

/// Whether `op` is legal on a unit with HSU configuration `cfg` (the
/// baseline RT unit rejects the HSU extensions). Shared by both RT-unit
/// organizations.
pub(crate) fn unit_supports(cfg: &HsuConfig, op: &ThreadOp) -> bool {
    match op {
        ThreadOp::HsuRayIntersect { .. } => true,
        ThreadOp::HsuDistance { .. } | ThreadOp::HsuKeyCompare { .. } => cfg.hsu_extensions,
        _ => false,
    }
}

/// The RT/HSU unit of one SM.
#[derive(Debug)]
pub struct RtUnit {
    cfg: HsuConfig,
    warp_buffer: WarpBuffer,
    /// Which warp owns each entry (for resume notification).
    entry_owner: Vec<Option<usize>>,
    lane_state: Vec<[LaneState; WARP_WIDTH]>,
    arbiter: SubCoreArbiter,
    pipeline: DatapathPipeline,
    fifo: VecDeque<FifoRequest>,
    /// Per-entry coalesced fetch table: `(line, lane mask)`.
    entry_requests: Vec<Vec<(u64, u32)>>,
    /// Entry currently being drained into the datapath (sticky, so beat
    /// sequences never interleave with other warps — the accumulate lock).
    draining: Option<EntryId>,
    completed_warps: Vec<usize>,
    stats: RtUnitStats,
}

impl RtUnit {
    /// Creates a unit for `sub_cores` schedulers.
    pub fn new(cfg: HsuConfig, sub_cores: usize) -> Self {
        let entries = cfg.warp_buffer_entries;
        RtUnit {
            cfg,
            warp_buffer: WarpBuffer::new(entries),
            entry_owner: vec![None; entries],
            lane_state: vec![[LaneState::default(); WARP_WIDTH]; entries],
            arbiter: SubCoreArbiter::new(sub_cores),
            pipeline: DatapathPipeline::new(),
            fifo: VecDeque::new(),
            entry_requests: vec![Vec::new(); entries],
            draining: None,
            completed_warps: Vec::new(),
            stats: RtUnitStats::default(),
        }
    }

    /// The unit's HSU configuration.
    pub fn config(&self) -> &HsuConfig {
        &self.cfg
    }

    /// Whether the instruction is legal on this unit (the baseline RT unit
    /// rejects the HSU extensions).
    pub fn supports(&self, op: &ThreadOp) -> bool {
        unit_supports(&self.cfg, op)
    }

    /// Arbitrates among sub-cores with pending HSU instructions this cycle.
    /// Returns the granted sub-core (the SM then calls
    /// [`RtUnit::dispatch`]). `requesting[i]` marks sub-cores with a ready
    /// HSU warp instruction.
    pub fn grant(&mut self, requesting: &[bool]) -> Option<usize> {
        if self.warp_buffer.is_full() {
            if requesting.iter().any(|&r| r) {
                self.stats.dispatch_stalls += 1;
            }
            return None;
        }
        let accumulate = vec![false; requesting.len()];
        self.arbiter.grant(requesting, &accumulate)
    }

    /// Dispatches a warp instruction into the warp buffer, enqueueing each
    /// active lane's line fetches. `line_bytes` is the cache-line size.
    ///
    /// # Errors
    ///
    /// [`SimError::IllegalDispatch`] if the buffer is full (call
    /// [`RtUnit::grant`] first), an active lane carries no op, or the
    /// instruction holds non-HSU ops. Failed dispatches leave the unit's
    /// state untouched.
    pub fn dispatch(
        &mut self,
        warp: usize,
        sub_core: usize,
        active_mask: u32,
        lanes: &[Option<ThreadOp>],
        line_bytes: u64,
    ) -> Result<EntryId, SimError> {
        // Plan every active lane before committing any state, so a
        // malformed instruction cannot leave a half-dispatched entry.
        let mut plans: Vec<(usize, OperatingMode, u32, u64, u64)> = Vec::new();
        for (lane, op) in lanes.iter().enumerate() {
            if active_mask & (1 << lane) == 0 {
                continue;
            }
            let Some(op) = op.as_ref() else {
                return Err(SimError::IllegalDispatch {
                    detail: format!("active lane {lane} without an op (mask {active_mask:#x})"),
                });
            };
            let (mode, beats, addr, bytes) = lane_plan(&self.cfg, op)?;
            plans.push((lane, mode, beats, addr, bytes));
        }

        // The hsu-core warp buffer tracks masks; lane instructions are kept
        // in this struct's lane_state (richer than the ISA struct).
        let placeholder = hsu_core::HsuInstruction::ray_intersect(0, 0);
        let proto: Vec<Option<hsu_core::HsuInstruction>> = (0..WARP_WIDTH)
            .map(|l| (active_mask & (1 << l) != 0).then_some(placeholder))
            .collect();
        let Some(entry) = self
            .warp_buffer
            .allocate(warp, sub_core, active_mask, proto)
        else {
            return Err(SimError::IllegalDispatch {
                detail: "dispatch without a free warp buffer entry".to_string(),
            });
        };
        self.entry_owner[entry] = Some(warp);
        self.stats.warp_instructions += 1;

        // Gather each lane's lines, coalescing identical lines across lanes
        // into one FIFO request (the warp-level analogue of LSU coalescing).
        let mut table: Vec<(u64, u32)> = Vec::new();
        for (lane, mode, beats, addr, bytes) in plans {
            self.stats.isa_instructions += beats as u64;
            let first = addr / line_bytes;
            let last = (addr + bytes.max(1) - 1) / line_bytes;
            let n_lines = (last - first + 1) as u32;
            self.lane_state[entry][lane] = LaneState {
                pending_lines: n_lines,
                beats_to_issue: beats,
                beats_in_flight: beats,
                mode: Some(mode),
            };
            for line in first..=last {
                match table.iter_mut().find(|(l, _)| *l == line) {
                    Some((_, mask)) => *mask |= 1 << lane,
                    None => table.push((line, 1 << lane)),
                }
            }
        }
        for (req, &(line, _)) in table.iter().enumerate() {
            self.fifo.push_back(FifoRequest { entry, req, line });
        }
        self.entry_requests[entry] = table;
        Ok(entry)
    }

    /// The next CISC fetch awaiting the L1 port, if any (the SM pops it when
    /// the RT unit wins the port this cycle).
    pub fn peek_fifo(&self) -> Option<FifoRequest> {
        self.fifo.front().copied()
    }

    /// Removes the request returned by [`RtUnit::peek_fifo`], or `None` when
    /// the FIFO is empty.
    pub fn pop_fifo(&mut self) -> Option<FifoRequest> {
        self.fifo.pop_front()
    }

    /// Memory requests currently queued in the fetch FIFO (deadlock
    /// diagnostics).
    pub fn fifo_len(&self) -> usize {
        self.fifo.len()
    }

    /// Occupied warp-buffer entries (deadlock diagnostics).
    pub fn warp_buffer_occupancy(&self) -> usize {
        self.warp_buffer.occupancy()
    }

    /// Re-inserts a request that the L1 rejected (MSHR full) at the FIFO
    /// head, preserving order.
    pub fn push_back_front(&mut self, req: FifoRequest) {
        self.fifo.push_front(req);
    }

    /// A memory response for `(entry, req)` arrived; decrements every lane
    /// that was coalesced onto the line and marks lanes valid when their
    /// last line lands.
    pub fn on_mem_response(&mut self, entry: EntryId, req: usize) {
        let (_, mask) = self.entry_requests[entry][req];
        for lane in 0..WARP_WIDTH {
            if mask & (1 << lane) == 0 {
                continue;
            }
            let state = &mut self.lane_state[entry][lane];
            debug_assert!(state.pending_lines > 0, "response for satisfied lane");
            state.pending_lines -= 1;
            if state.pending_lines == 0 {
                self.warp_buffer.mark_valid(entry, lane);
            }
        }
    }

    /// Advances the datapath one cycle: issues at most one lane-beat, drains
    /// completions, and retires finished entries.
    pub fn tick(&mut self) {
        self.stats.cycles += 1;
        let occupancy = self.warp_buffer.occupancy() as u64;
        self.stats.occupancy_sum += occupancy;
        self.stats.occupancy_peak = self.stats.occupancy_peak.max(occupancy);

        // Issue stage: stick to the draining entry until fully issued.
        let entry = match self.draining {
            Some(e) if !self.warp_buffer.entry(e).fully_issued() => Some(e),
            _ => {
                self.draining = None;
                let next = self.warp_buffer.ready_entries().map(|(id, _)| id).next();
                self.draining = next;
                next
            }
        };
        if let Some(entry) = entry {
            if let Some(lane) = self.warp_buffer.entry(entry).next_issuable_lane() {
                let state = &mut self.lane_state[entry][lane];
                // Internal invariant: dispatch sets a mode for every active
                // lane before the lane can become issuable.
                let Some(mode) = state.mode else {
                    unreachable!("issuable lane without mode")
                };
                let tag = (entry as u64) << 8 | lane as u64;
                if self.pipeline.issue(mode, tag) {
                    state.beats_to_issue -= 1;
                    if state.beats_to_issue == 0 {
                        self.warp_buffer.mark_issued(entry, lane);
                    }
                }
            }
        }

        // Completion stage.
        for done in self.pipeline.tick() {
            let entry = (done.tag >> 8) as usize;
            let lane = (done.tag & 0xff) as usize;
            let state = &mut self.lane_state[entry][lane];
            state.beats_in_flight -= 1;
            if state.beats_in_flight == 0 {
                self.warp_buffer.mark_completed(entry, lane);
            }
        }

        // Writeback stage: retire finished entries.
        let finished: Vec<EntryId> = self
            .warp_buffer
            .iter()
            .filter(|(_, e)| e.writeback_ready())
            .map(|(id, _)| id)
            .collect();
        for entry in finished {
            self.warp_buffer.release(entry);
            // Internal invariant: dispatch records an owner for every
            // allocated entry.
            let Some(warp) = self.entry_owner[entry].take() else {
                unreachable!("entry without owner")
            };
            self.completed_warps.push(warp);
            self.lane_state[entry] = [LaneState::default(); WARP_WIDTH];
            self.entry_requests[entry].clear();
            if self.draining == Some(entry) {
                self.draining = None;
            }
        }
    }

    /// Returns `true` when the next [`RtUnit::tick`] itself can change
    /// architectural state: beats in the datapath, an undelivered writeback,
    /// or a warp-buffer entry with issuable lanes. Pending fetches in the
    /// FIFO are deliberately *excluded* — `tick` never consumes the FIFO
    /// (the SM's L1-port arbiter does), so whether a queued fetch can make
    /// progress is the SM's question, answered against the cache state.
    pub fn advances_on_tick(&self) -> bool {
        !self.pipeline.is_empty()
            || !self.completed_warps.is_empty()
            || self.warp_buffer.ready_entries().next().is_some()
    }

    /// Returns `true` when the next cycle can change the unit's state
    /// through *any* path — the datapath advancing ([`RtUnit::
    /// advances_on_tick`]) or a queued fetch wanting the L1 port. When this
    /// is `false` the unit is externally driven: only
    /// [`RtUnit::on_mem_response`] can wake it, and the memory system's
    /// event heap owns that wakeup time.
    pub fn busy_next_cycle(&self) -> bool {
        !self.fifo.is_empty() || self.advances_on_tick()
    }

    /// Accounts `cycles` provably-idle cycles in one step, exactly as that
    /// many [`RtUnit::tick`] calls would have with no state change: elapsed
    /// cycles and warp-buffer occupancy integrate forward (entries parked on
    /// memory still occupy the buffer), and the empty pipeline ages. Queued
    /// FIFO fetches may exist — `tick` never touches them — provided the
    /// caller has established they cannot be accepted by the cache during
    /// the span (the SM accounts their per-cycle rejected probes).
    pub fn fast_forward(&mut self, cycles: u64) {
        debug_assert!(
            !self.advances_on_tick(),
            "fast-forward across an active RT unit would skip state changes"
        );
        let occupancy = self.warp_buffer.occupancy() as u64;
        self.stats.cycles += cycles;
        self.stats.occupancy_sum += cycles * occupancy;
        // occupancy_peak needs no update: occupancy is constant across the
        // skipped span and was sampled by the last executed tick.
        self.pipeline.fast_forward(cycles);
    }

    /// Warps whose HSU instruction wrote back since the last call.
    pub fn take_completed(&mut self) -> Vec<usize> {
        std::mem::take(&mut self.completed_warps)
    }

    /// Returns `true` when the unit holds no work.
    pub fn idle(&self) -> bool {
        self.warp_buffer.occupancy() == 0 && self.fifo.is_empty() && self.pipeline.is_empty()
    }

    /// Statistics snapshot (pipeline stats copied in).
    pub fn stats(&self) -> RtUnitStats {
        let mut s = self.stats.clone();
        s.pipeline = self.pipeline.stats().clone();
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsu_geometry::point::Metric;

    fn euclid_op(dim: u32) -> ThreadOp {
        ThreadOp::HsuDistance {
            metric: Metric::Euclidean,
            dim,
            candidate_addr: 0x1000,
        }
    }

    fn lanes_with(op: ThreadOp, mask: u32) -> Vec<Option<ThreadOp>> {
        (0..WARP_WIDTH)
            .map(|l| (mask & (1 << l) != 0).then_some(op))
            .collect()
    }

    /// Drives the unit until `warp` completes, answering all memory requests
    /// after `mem_latency` ticks.
    fn run_to_completion(unit: &mut RtUnit, mem_latency: u64, max: u64) -> (u64, Vec<usize>) {
        let mut responses: Vec<(u64, EntryId, usize)> = Vec::new();
        let mut all_done = Vec::new();
        for now in 0..max {
            // Model a perfect-bandwidth memory of fixed latency.
            if let Some(req) = unit.peek_fifo() {
                let _ = unit.pop_fifo();
                responses.push((now + mem_latency, req.entry, req.req));
            }
            responses.retain(|&(at, entry, req)| {
                if at == now {
                    unit.on_mem_response(entry, req);
                    false
                } else {
                    true
                }
            });
            unit.tick();
            all_done.extend(unit.take_completed());
            if unit.idle() && !all_done.is_empty() {
                return (now, all_done);
            }
        }
        panic!("unit never went idle; completed so far: {all_done:?}");
    }

    #[test]
    fn single_lane_ray_intersect_latency() {
        let mut unit = RtUnit::new(HsuConfig::default(), 4);
        let op = ThreadOp::HsuRayIntersect {
            node_addr: 0,
            bytes: 128,
            triangle: false,
        };
        unit.dispatch(7, 0, 1, &lanes_with(op, 1), 128).unwrap();
        let (cycles, done) = run_to_completion(&mut unit, 20, 1000);
        assert_eq!(done, vec![7]);
        // 20 (mem) + 9 (pipe) + small bookkeeping.
        assert!((25..40).contains(&cycles), "took {cycles} cycles");
        let s = unit.stats();
        assert_eq!(s.warp_instructions, 1);
        assert_eq!(s.isa_instructions, 1);
        assert_eq!(s.pipeline.completed[OperatingMode::RayBox.index()], 1);
    }

    #[test]
    fn multibeat_distance_counts_isa_instructions() {
        let mut unit = RtUnit::new(HsuConfig::default(), 4);
        unit.dispatch(3, 1, 1, &lanes_with(euclid_op(96), 1), 128)
            .unwrap();
        let (_, done) = run_to_completion(&mut unit, 10, 1000);
        assert_eq!(done, vec![3]);
        let s = unit.stats();
        assert_eq!(s.isa_instructions, 6, "96 dims / 16 lanes = 6 beats");
        assert_eq!(s.pipeline.completed[OperatingMode::Euclid.index()], 6);
    }

    #[test]
    fn sparse_mask_issues_only_active_lanes() {
        let mut unit = RtUnit::new(HsuConfig::default(), 4);
        let mask = (1 << 3) | (1 << 30);
        unit.dispatch(1, 0, mask, &lanes_with(euclid_op(16), mask), 128)
            .unwrap();
        let (_, _) = run_to_completion(&mut unit, 5, 1000);
        let s = unit.stats();
        assert_eq!(s.isa_instructions, 2, "one beat per active lane");
    }

    #[test]
    fn datapath_width_reduces_beats() {
        for (width, beats) in [(4usize, 24u64), (8, 12), (16, 6), (32, 3)] {
            let cfg = HsuConfig::default().with_euclid_width(width);
            let mut unit = RtUnit::new(cfg, 4);
            unit.dispatch(0, 0, 1, &lanes_with(euclid_op(96), 1), 128)
                .unwrap();
            run_to_completion(&mut unit, 5, 2000);
            assert_eq!(unit.stats().isa_instructions, beats, "width {width}");
        }
    }

    #[test]
    fn key_compare_chains() {
        let mut unit = RtUnit::new(HsuConfig::default(), 4);
        let op = ThreadOp::HsuKeyCompare {
            node_addr: 0x2000,
            separators: 255,
        };
        unit.dispatch(0, 0, 1, &lanes_with(op, 1), 128).unwrap();
        run_to_completion(&mut unit, 5, 1000);
        let s = unit.stats();
        assert_eq!(s.isa_instructions, 8, "ceil(255/36) = 8");
        assert_eq!(s.pipeline.completed[OperatingMode::KeyCompare.index()], 8);
    }

    #[test]
    fn warp_buffer_fills_and_stalls() {
        let cfg = HsuConfig::default().with_warp_buffer(2);
        let mut unit = RtUnit::new(cfg, 4);
        let op = euclid_op(16);
        assert!(unit.grant(&[true, false, false, false]).is_some());
        unit.dispatch(0, 0, 1, &lanes_with(op, 1), 128).unwrap();
        assert!(unit.grant(&[false, true, false, false]).is_some());
        unit.dispatch(1, 1, 1, &lanes_with(op, 1), 128).unwrap();
        // Buffer full: grant refuses and counts a stall.
        assert!(unit.grant(&[false, false, true, false]).is_none());
        assert_eq!(unit.stats().dispatch_stalls, 1);
    }

    #[test]
    fn baseline_rejects_extensions() {
        let unit = RtUnit::new(HsuConfig::baseline_rt(), 4);
        assert!(unit.supports(&ThreadOp::HsuRayIntersect {
            node_addr: 0,
            bytes: 128,
            triangle: false
        }));
        assert!(!unit.supports(&euclid_op(16)));
        assert!(!unit.supports(&ThreadOp::HsuKeyCompare {
            node_addr: 0,
            separators: 8
        }));
    }

    #[test]
    fn two_entries_overlap_memory_but_serialize_datapath() {
        let mut unit = RtUnit::new(HsuConfig::default(), 4);
        unit.dispatch(0, 0, 1, &lanes_with(euclid_op(64), 1), 128)
            .unwrap();
        unit.dispatch(1, 1, 1, &lanes_with(euclid_op(64), 1), 128)
            .unwrap();
        let (cycles, mut done) = run_to_completion(&mut unit, 50, 5000);
        done.sort_unstable();
        assert_eq!(done, vec![0, 1]);
        // Two 256-byte fetches (2+2 lines over the 1/cycle FIFO) under a
        // 50-cycle memory: overlapped, so far less than 2 full serial trips.
        assert!(cycles < 2 * (50 + 9 + 8), "no overlap: {cycles}");
    }

    #[test]
    fn busy_next_cycle_tracks_the_memory_stall_window() {
        // The next_event contract across one instruction's lifetime: busy
        // while fetches sit in the FIFO, idle (externally driven) while all
        // lanes wait on memory, busy again from response to writeback.
        let mut unit = RtUnit::new(HsuConfig::default(), 4);
        assert!(!unit.busy_next_cycle(), "fresh unit is idle");
        unit.dispatch(5, 0, 1, &lanes_with(euclid_op(16), 1), 128)
            .unwrap();
        assert!(unit.busy_next_cycle(), "fetch in FIFO wants the L1 port");
        let req = unit.pop_fifo().unwrap();
        unit.tick();
        assert!(
            !unit.busy_next_cycle(),
            "all lanes stalled on memory: only on_mem_response can wake it"
        );
        // While parked, ticks must not change any mask/queue state —
        // fast_forward relies on this.
        let occ_before = unit.warp_buffer.occupancy();
        unit.tick();
        assert_eq!(unit.warp_buffer.occupancy(), occ_before);
        unit.on_mem_response(req.entry, req.req);
        assert!(unit.busy_next_cycle(), "operands arrived: lane issuable");
        // Drain: one beat issues, then rides the pipeline to writeback.
        let mut guard = 0;
        while unit.take_completed().is_empty() {
            assert!(
                unit.busy_next_cycle(),
                "unit with in-flight beats must stay busy"
            );
            unit.tick();
            guard += 1;
            assert!(guard < 50, "writeback never happened");
        }
        assert!(!unit.busy_next_cycle(), "drained unit is idle again");
    }

    #[test]
    fn fast_forward_matches_idle_ticks_while_parked_on_memory() {
        // Stepped mode ticks a memory-parked unit every cycle; event mode
        // calls fast_forward once. Both must leave identical statistics —
        // including occupancy integration for the parked entry.
        let build = || {
            let mut u = RtUnit::new(HsuConfig::default(), 4);
            u.dispatch(0, 0, 1, &lanes_with(euclid_op(32), 1), 128)
                .unwrap();
            while u.pop_fifo().is_some() {}
            // A skip never starts un-ticked: dispatch leaves the FIFO
            // non-empty, so the run loop always executes at least one tick
            // (sampling occupancy/peak) before the unit can report idle.
            u.tick();
            u
        };
        let mut ticked = build();
        let mut skipped = build();
        for _ in 0..100 {
            ticked.tick();
        }
        skipped.fast_forward(100);
        assert_eq!(ticked.stats(), skipped.stats());
        assert_eq!(ticked.stats().occupancy_sum, 101, "1 entry × 101 cycles");
        assert_eq!(ticked.stats().occupancy_peak, 1);
    }

    #[test]
    fn dispatch_into_full_buffer_is_a_typed_error() {
        let cfg = HsuConfig::default().with_warp_buffer(1);
        let mut unit = RtUnit::new(cfg, 4);
        unit.dispatch(0, 0, 1, &lanes_with(euclid_op(16), 1), 128)
            .unwrap();
        let err = unit
            .dispatch(1, 1, 1, &lanes_with(euclid_op(16), 1), 128)
            .expect_err("full buffer must reject");
        assert!(matches!(err, SimError::IllegalDispatch { .. }));
        // The failed dispatch left no trace: one entry, one instruction.
        assert_eq!(unit.warp_buffer_occupancy(), 1);
        assert_eq!(unit.stats().warp_instructions, 1);
    }

    #[test]
    fn dispatch_of_non_hsu_op_is_a_typed_error_with_clean_state() {
        let mut unit = RtUnit::new(HsuConfig::default(), 4);
        let err = unit
            .dispatch(0, 0, 1, &lanes_with(ThreadOp::Alu { count: 4 }, 1), 128)
            .expect_err("ALU op must not reach the RT unit");
        assert!(matches!(err, SimError::IllegalDispatch { .. }));
        assert!(err.to_string().contains("non-HSU op"));
        // Plan-before-commit: nothing was allocated or counted.
        assert!(unit.idle());
        assert_eq!(unit.stats().warp_instructions, 0);
        assert_eq!(unit.fifo_len(), 0);
    }

    #[test]
    fn fifo_order_is_preserved_on_rejection() {
        let mut unit = RtUnit::new(HsuConfig::default(), 4);
        unit.dispatch(0, 0, 1, &lanes_with(euclid_op(64), 1), 128)
            .unwrap();
        let first = unit.peek_fifo().unwrap();
        let popped = unit.pop_fifo().unwrap();
        assert_eq!(first, popped);
        unit.push_back_front(popped);
        assert_eq!(unit.peek_fifo().unwrap(), first);
    }
}
