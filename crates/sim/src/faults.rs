//! Deterministic fault injection for the robustness harness.
//!
//! Every generator here is a pure function of its inputs (corruptions are
//! seeded, configs and kernels are fixed), so a failing fault-injection test
//! reproduces byte-for-byte. The generated faults are *guaranteed* to be
//! faults: corrupted traces always violate the format, pathological configs
//! always fail [`GpuConfig::validate`], and the forced-deadlock pair always
//! trips the cycle guard. `tests/fault_injection.rs` asserts that each class
//! surfaces as its matching typed [`crate::SimError`] — never a panic or an
//! abort.

use crate::config::{GpuConfig, RtCoreKind};
use crate::trace::{KernelTrace, ThreadOp, ThreadTrace};

// Chunk-level archive corruptions (truncation, checksum bit-flips, bogus
// chunk kinds, header version skew), re-exported so the fault harness has
// one home: each class is pinned to its typed `ArchiveError`, which
// `SimError::from_archive` folds into the `TraceDecode`/`Io` taxonomy.
pub use hsu_archive::faults::{corrupt_archive_bytes, ArchiveFault, ARCHIVE_FAULTS, BOGUS_KIND};

/// A class of byte-level trace corruption.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFault {
    /// Cut the stream short (anywhere strictly inside it).
    Truncate,
    /// Flip one bit in a header field the decoder must reject (magic,
    /// version, or the high byte of the name-length field — the last
    /// exercises the allocation plausibility cap).
    BitFlip,
    /// Overwrite the first op tag with an undefined opcode.
    BogusOpcode,
}

/// All trace-fault classes, for exhaustive sweeps.
pub const TRACE_FAULTS: [TraceFault; 3] = [
    TraceFault::Truncate,
    TraceFault::BitFlip,
    TraceFault::BogusOpcode,
];

/// SplitMix64: tiny, deterministic, and plenty for picking fault sites.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Applies `fault` to an encoded trace, deterministically in `seed`.
///
/// `bytes` must be a well-formed stream from
/// [`crate::trace_io::write_trace`]; the result is guaranteed to be rejected
/// by [`crate::trace_io::read_trace`]. `BogusOpcode` needs at least one op
/// in the stream and falls back to truncation when there is none.
pub fn corrupt_trace_bytes(bytes: &[u8], fault: TraceFault, seed: u64) -> Vec<u8> {
    let r = splitmix64(seed);
    let mut out = bytes.to_vec();
    match fault {
        TraceFault::Truncate => {
            let cut = (r % bytes.len() as u64) as usize;
            out.truncate(cut);
        }
        TraceFault::BitFlip => {
            // Offsets whose corruption the decoder must always reject:
            // byte 1 of the magic, the version byte, and the most
            // significant byte of the little-endian name length (any flip
            // there adds at least 2^24 and trips MAX_NAME_LEN).
            let candidates = [1usize, 4, 8];
            let offset = candidates[(r % candidates.len() as u64) as usize];
            let bit = ((r >> 8) % 8) as u32;
            out[offset] ^= 1 << bit;
        }
        TraceFault::BogusOpcode => {
            // First op tag: magic(4) + version(1) + name_len(4) + name +
            // thread_count(4) + first op_count(4).
            let name_len = u32::from_le_bytes([bytes[5], bytes[6], bytes[7], bytes[8]]) as usize;
            let tag_at = 17 + name_len;
            if tag_at < out.len() {
                out[tag_at] = 200; // far beyond the last defined tag
            } else {
                out.truncate(out.len().saturating_sub(1));
            }
        }
    }
    out
}

/// Configurations that must be rejected by [`GpuConfig::validate`], paired
/// with the field each one is invalid in.
pub fn pathological_configs() -> Vec<(&'static str, GpuConfig)> {
    let base = GpuConfig::tiny;
    vec![
        (
            "num_sms",
            GpuConfig {
                num_sms: 0,
                ..base()
            },
        ),
        (
            "sub_cores",
            GpuConfig {
                sub_cores: 0,
                ..base()
            },
        ),
        (
            "max_warps_per_sm",
            GpuConfig {
                max_warps_per_sm: 0,
                ..base()
            },
        ),
        (
            "line_bytes",
            GpuConfig {
                line_bytes: 0,
                ..base()
            },
        ),
        (
            "l1_ways",
            GpuConfig {
                l1_ways: 0,
                ..base()
            },
        ),
        (
            "l1_mshrs",
            GpuConfig {
                l1_mshrs: 0,
                ..base()
            },
        ),
        // Too small to hold even one way of every set.
        (
            "l1_bytes",
            GpuConfig {
                l1_bytes: 64,
                ..base()
            },
        ),
        (
            "l2_ways",
            GpuConfig {
                l2_ways: 0,
                ..base()
            },
        ),
        (
            "l2_banks",
            GpuConfig {
                l2_banks: 0,
                ..base()
            },
        ),
        (
            "l2_bytes",
            GpuConfig {
                l2_bytes: 1,
                ..base()
            },
        ),
        (
            "dram_channels",
            GpuConfig {
                dram_channels: 0,
                ..base()
            },
        ),
        (
            "dram_banks",
            GpuConfig {
                dram_banks: 0,
                ..base()
            },
        ),
        // A DRAM row smaller than a cache line cannot hold one transfer.
        (
            "dram_row_bytes",
            GpuConfig {
                dram_row_bytes: 8,
                ..base()
            },
        ),
        (
            "dram_transfer_cycles",
            GpuConfig {
                dram_transfer_cycles: 0,
                ..base()
            },
        ),
        // A zero-cycle guard can never be satisfied.
        (
            "max_cycles",
            GpuConfig {
                max_cycles: 0,
                ..base()
            },
        ),
        // The treelet-scheduled core cannot run without a staging pool;
        // the baseline organization ignores the knob, so this entry is the
        // one pathological case that is organization-specific.
        (
            "rt_staging_buffers",
            GpuConfig {
                rt_core: RtCoreKind::Treelet,
                rt_staging_buffers: 0,
                ..base()
            },
        ),
    ]
}

/// A kernel that cannot finish under [`forced_deadlock_config`]'s cycle
/// guard: each warp grinds through far more ALU latency than the guard
/// allows, so the deadlock diagnostics path always fires.
pub fn forced_deadlock_kernel() -> KernelTrace {
    let mut kernel = KernelTrace::new("forced-deadlock");
    for _ in 0..32 {
        let mut thread = ThreadTrace::new();
        thread.push(ThreadOp::Alu { count: 1000 });
        thread.push(ThreadOp::Shared { count: 1 });
        kernel.push_thread(thread);
    }
    kernel
}

/// A valid configuration whose guard is far below what
/// [`forced_deadlock_kernel`] needs.
pub fn forced_deadlock_config() -> GpuConfig {
    GpuConfig {
        max_cycles: 500,
        ..GpuConfig::tiny()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace_io::write_trace;

    fn encoded_sample() -> Vec<u8> {
        let mut k = KernelTrace::new("ft");
        let mut t = ThreadTrace::new();
        t.push(ThreadOp::Alu { count: 3 });
        k.push_thread(t);
        let mut buf = Vec::new();
        write_trace(&k, &mut buf).unwrap();
        buf
    }

    #[test]
    fn corruption_is_deterministic_in_the_seed() {
        let buf = encoded_sample();
        for fault in TRACE_FAULTS {
            for seed in 0..8 {
                let a = corrupt_trace_bytes(&buf, fault, seed);
                let b = corrupt_trace_bytes(&buf, fault, seed);
                assert_eq!(a, b, "{fault:?} seed {seed} not deterministic");
                assert_ne!(a, buf, "{fault:?} seed {seed} left the bytes intact");
            }
        }
    }

    #[test]
    fn every_pathological_config_fails_validation_on_its_field() {
        for (field, cfg) in pathological_configs() {
            let err = cfg
                .validate()
                .expect_err("pathological config passed validation");
            match err {
                crate::SimError::InvalidConfig { field: got, .. } => {
                    assert_eq!(got, field, "wrong field reported");
                }
                other => panic!("expected InvalidConfig, got {other:?}"),
            }
        }
    }

    #[test]
    fn forced_deadlock_pair_is_internally_consistent() {
        forced_deadlock_config().validate().unwrap();
        assert!(forced_deadlock_kernel().thread_count() > 0);
    }
}
