//! The kernel trace format: per-thread operation logs packed into warps.
//!
//! Workload kernels run *functionally* (producing real answers) while
//! recording one [`ThreadTrace`] per CUDA thread. [`KernelTrace::warps`]
//! packs threads into 32-lane warps and converts the logs into warp
//! instructions with divergence-aware active masks: at each step the next
//! operation of every unfinished lane is taken, lanes are grouped by
//! operation class, and one warp instruction is emitted per distinct class —
//! the serialization penalty branch divergence costs a real SIMT machine.

use hsu_geometry::point::Metric;

/// Number of threads per warp.
pub const WARP_WIDTH: usize = 32;

/// One operation executed by one thread.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ThreadOp {
    /// `count` back-to-back scalar ALU instructions.
    Alu {
        /// Number of dependent ALU instructions.
        count: u32,
    },
    /// A global memory load.
    Load {
        /// Byte address.
        addr: u64,
        /// Bytes read (split into lines by the coalescer).
        bytes: u32,
    },
    /// A global memory store (modelled write-through, fire-and-forget).
    Store {
        /// Byte address.
        addr: u64,
        /// Bytes written.
        bytes: u32,
    },
    /// `count` shared-memory operations (priority-queue maintenance etc.).
    Shared {
        /// Number of shared-memory instructions.
        count: u32,
    },
    /// A `RAY_INTERSECT` on the RT/HSU unit.
    HsuRayIntersect {
        /// Node byte address.
        node_addr: u64,
        /// Bytes the CISC fetch reads.
        bytes: u32,
        /// `true` when the node is a triangle leaf (ray-triangle mode),
        /// `false` for a box node (ray-box mode).
        triangle: bool,
    },
    /// A full multi-beat distance computation on the HSU (the simulator
    /// derives the beat count from the configured datapath width).
    HsuDistance {
        /// Euclidean or angular mode.
        metric: Metric,
        /// Point dimensionality.
        dim: u32,
        /// Byte address of the candidate vector.
        candidate_addr: u64,
    },
    /// A `KEY_COMPARE` chain on the HSU (`ceil(separators / 36)` datapath
    /// operations, one node fetch).
    HsuKeyCompare {
        /// Node byte address.
        node_addr: u64,
        /// Separator count in the node.
        separators: u32,
    },
}

impl ThreadOp {
    /// Dense class index used to group divergent lanes (same-class ops from
    /// different lanes form one warp instruction).
    pub fn class(&self) -> OpClass {
        match self {
            ThreadOp::Alu { .. } => OpClass::Alu,
            ThreadOp::Load { .. } => OpClass::Load,
            ThreadOp::Store { .. } => OpClass::Store,
            ThreadOp::Shared { .. } => OpClass::Shared,
            ThreadOp::HsuRayIntersect { .. } => OpClass::HsuRayIntersect,
            ThreadOp::HsuDistance { .. } => OpClass::HsuDistance,
            ThreadOp::HsuKeyCompare { .. } => OpClass::HsuKeyCompare,
        }
    }

    /// Returns `true` for operations executed on the RT/HSU unit.
    pub fn is_hsu(&self) -> bool {
        matches!(
            self,
            ThreadOp::HsuRayIntersect { .. }
                | ThreadOp::HsuDistance { .. }
                | ThreadOp::HsuKeyCompare { .. }
        )
    }
}

/// Operation classes for divergence grouping and statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum OpClass {
    Alu,
    Load,
    Store,
    Shared,
    HsuRayIntersect,
    HsuDistance,
    HsuKeyCompare,
}

impl OpClass {
    /// All classes, in stat-dump order.
    pub const ALL: [OpClass; 7] = [
        OpClass::Alu,
        OpClass::Load,
        OpClass::Store,
        OpClass::Shared,
        OpClass::HsuRayIntersect,
        OpClass::HsuDistance,
        OpClass::HsuKeyCompare,
    ];

    /// Dense index.
    pub fn index(self) -> usize {
        match self {
            OpClass::Alu => 0,
            OpClass::Load => 1,
            OpClass::Store => 2,
            OpClass::Shared => 3,
            OpClass::HsuRayIntersect => 4,
            OpClass::HsuDistance => 5,
            OpClass::HsuKeyCompare => 6,
        }
    }

    /// Label for stat dumps.
    pub fn label(self) -> &'static str {
        match self {
            OpClass::Alu => "alu",
            OpClass::Load => "load",
            OpClass::Store => "store",
            OpClass::Shared => "shared",
            OpClass::HsuRayIntersect => "hsu-ray",
            OpClass::HsuDistance => "hsu-dist",
            OpClass::HsuKeyCompare => "hsu-key",
        }
    }
}

/// The operation log of one thread.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ThreadTrace {
    ops: Vec<ThreadOp>,
}

impl ThreadTrace {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an operation, merging consecutive `Alu`/`Shared` runs.
    pub fn push(&mut self, op: ThreadOp) {
        match (self.ops.last_mut(), op) {
            (Some(ThreadOp::Alu { count }), ThreadOp::Alu { count: c }) => *count += c,
            (Some(ThreadOp::Shared { count }), ThreadOp::Shared { count: c }) => *count += c,
            _ => self.ops.push(op),
        }
    }

    /// The logged operations.
    pub fn ops(&self) -> &[ThreadOp] {
        &self.ops
    }

    /// Returns `true` if nothing was logged.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// One warp instruction: an operation class with per-lane payloads.
#[derive(Debug, Clone, PartialEq)]
pub struct WarpInstruction {
    /// Lanes participating (bit *i* = lane *i*).
    pub active_mask: u32,
    /// Per-lane operations; `None` for inactive lanes. All `Some` entries
    /// share the same [`OpClass`].
    pub lanes: Vec<Option<ThreadOp>>,
}

impl WarpInstruction {
    /// The shared operation class.
    ///
    /// # Panics
    ///
    /// Panics if the instruction has no active lane.
    pub fn class(&self) -> OpClass {
        let Some(op) = self.lanes.iter().flatten().next() else {
            panic!("warp instruction without active lanes");
        };
        op.class()
    }

    /// Number of active lanes.
    pub fn active_lanes(&self) -> u32 {
        self.active_mask.count_ones()
    }
}

/// The instruction stream of one warp.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WarpTrace {
    /// Instructions in program order.
    pub instructions: Vec<WarpInstruction>,
}

/// A kernel launch: one trace per thread, packed into warps on demand.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KernelTrace {
    name: String,
    threads: Vec<ThreadTrace>,
}

impl KernelTrace {
    /// Creates an empty kernel trace.
    pub fn new(name: impl Into<String>) -> Self {
        KernelTrace {
            name: name.into(),
            threads: Vec::new(),
        }
    }

    /// The kernel's name (reported in stats).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends one thread's log.
    pub fn push_thread(&mut self, thread: ThreadTrace) {
        self.threads.push(thread);
    }

    /// Number of threads.
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// The per-thread operation logs.
    pub fn threads(&self) -> &[ThreadTrace] {
        &self.threads
    }

    /// Total operations across all threads (Alu/Shared runs count as `count`
    /// instructions).
    pub fn total_instructions(&self) -> u64 {
        self.threads
            .iter()
            .flat_map(|t| t.ops())
            .map(|op| match op {
                ThreadOp::Alu { count } | ThreadOp::Shared { count } => *count as u64,
                _ => 1,
            })
            .sum()
    }

    /// Packs threads into warps of 32 consecutive lanes and lowers each
    /// warp's logs into divergence-grouped [`WarpInstruction`]s.
    pub fn warps(&self) -> Vec<WarpTrace> {
        self.threads
            .chunks(WARP_WIDTH)
            .map(|chunk| {
                let mut cursors = vec![0usize; chunk.len()];
                let mut out = WarpTrace::default();
                loop {
                    // Lanes that still have operations.
                    let mut pending: Vec<usize> = (0..chunk.len())
                        .filter(|&l| cursors[l] < chunk[l].ops().len())
                        .collect();
                    if pending.is_empty() {
                        break;
                    }
                    // Group by class; emit the class of the lowest pending
                    // lane first (deterministic reconvergence order).
                    while !pending.is_empty() {
                        let lead_class = chunk[pending[0]].ops()[cursors[pending[0]]].class();
                        let mut mask = 0u32;
                        let mut lanes = vec![None; WARP_WIDTH];
                        pending.retain(|&l| {
                            let op = chunk[l].ops()[cursors[l]];
                            if op.class() == lead_class {
                                mask |= 1 << l;
                                lanes[l] = Some(op);
                                cursors[l] += 1;
                                false
                            } else {
                                true
                            }
                        });
                        out.instructions.push(WarpInstruction {
                            active_mask: mask,
                            lanes,
                        });
                    }
                }
                out
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_runs_merge() {
        let mut t = ThreadTrace::new();
        t.push(ThreadOp::Alu { count: 2 });
        t.push(ThreadOp::Alu { count: 3 });
        t.push(ThreadOp::Shared { count: 1 });
        t.push(ThreadOp::Shared { count: 1 });
        t.push(ThreadOp::Alu { count: 1 });
        assert_eq!(t.ops().len(), 3);
        assert_eq!(t.ops()[0], ThreadOp::Alu { count: 5 });
        assert_eq!(t.ops()[1], ThreadOp::Shared { count: 2 });
    }

    #[test]
    fn uniform_threads_form_full_warps() {
        let mut k = KernelTrace::new("uniform");
        for i in 0..64u64 {
            let mut t = ThreadTrace::new();
            t.push(ThreadOp::Alu { count: 1 });
            t.push(ThreadOp::Load {
                addr: i * 4,
                bytes: 4,
            });
            k.push_thread(t);
        }
        let warps = k.warps();
        assert_eq!(warps.len(), 2);
        for w in &warps {
            assert_eq!(w.instructions.len(), 2);
            assert_eq!(w.instructions[0].active_mask, u32::MAX);
            assert_eq!(w.instructions[0].class(), OpClass::Alu);
            assert_eq!(w.instructions[1].class(), OpClass::Load);
        }
    }

    #[test]
    fn divergent_classes_serialize() {
        let mut k = KernelTrace::new("divergent");
        for i in 0..4 {
            let mut t = ThreadTrace::new();
            if i % 2 == 0 {
                t.push(ThreadOp::Alu { count: 1 });
            } else {
                t.push(ThreadOp::Load { addr: 0, bytes: 4 });
            }
            k.push_thread(t);
        }
        let warps = k.warps();
        assert_eq!(warps.len(), 1);
        // One step, two classes -> two serialized warp instructions.
        assert_eq!(warps[0].instructions.len(), 2);
        assert_eq!(warps[0].instructions[0].active_mask, 0b0101);
        assert_eq!(warps[0].instructions[1].active_mask, 0b1010);
    }

    #[test]
    fn early_exit_lanes_go_inactive() {
        let mut k = KernelTrace::new("ragged");
        for i in 0..3 {
            let mut t = ThreadTrace::new();
            for _ in 0..=i {
                t.push(ThreadOp::Load { addr: 0, bytes: 4 });
            }
            k.push_thread(t);
        }
        let warps = k.warps();
        let masks: Vec<u32> = warps[0]
            .instructions
            .iter()
            .map(|i| i.active_mask)
            .collect();
        assert_eq!(masks, vec![0b111, 0b110, 0b100]);
    }

    #[test]
    fn instruction_count_expands_runs() {
        let mut k = KernelTrace::new("count");
        let mut t = ThreadTrace::new();
        t.push(ThreadOp::Alu { count: 7 });
        t.push(ThreadOp::Load { addr: 0, bytes: 4 });
        k.push_thread(t);
        assert_eq!(k.total_instructions(), 8);
    }

    #[test]
    fn hsu_ops_are_flagged() {
        assert!(ThreadOp::HsuDistance {
            metric: Metric::Euclidean,
            dim: 8,
            candidate_addr: 0
        }
        .is_hsu());
        assert!(ThreadOp::HsuKeyCompare {
            node_addr: 0,
            separators: 10
        }
        .is_hsu());
        assert!(!ThreadOp::Alu { count: 1 }.is_hsu());
    }

    #[test]
    fn empty_threads_produce_no_instructions() {
        let mut k = KernelTrace::new("empty");
        k.push_thread(ThreadTrace::new());
        k.push_thread(ThreadTrace::new());
        let warps = k.warps();
        assert_eq!(warps.len(), 1);
        assert!(warps[0].instructions.is_empty());
    }

    #[test]
    fn class_metadata_is_dense() {
        let mut seen = std::collections::HashSet::new();
        for c in OpClass::ALL {
            assert!(seen.insert(c.index()));
            assert!(!c.label().is_empty());
        }
        assert_eq!(seen.len(), 7);
    }
}
