//! Aggregated simulation reports and derived paper metrics.

use crate::memory::MemoryStats;
use crate::rt_unit::RtUnitStats;
use crate::sm::SmStats;
use crate::trace::OpClass;

/// How the run loop spent simulated time — the observability counters for
/// the event-driven scheduler.
///
/// These are *scheduler* statistics, not architectural ones: they differ
/// between [`crate::config::SimMode`]s by design (that is the entire win),
/// while every other [`SimReport`] field is mode-invariant. The equivalence
/// harness compares reports with `sched` normalized to default; everything
/// else must match bit for bit.
///
/// Counting is per SM: each SM contributes one tick *or* one skipped cycle
/// for every simulated cycle, so for a completed run `ticks_executed +
/// cycles_skipped == SimReport::cycles * num_sms` and `cycles_skipped ==
/// skipped_on_memory + skipped_on_timers`. Stepped mode ticks every SM on
/// every cycle (`ticks_executed == cycles * num_sms`, nothing skipped);
/// event mode lets each SM sleep independently until a completion, an L1
/// fill, or its own self-reported wakeup cycle arrives.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// SM ticks actually executed (the unit of simulation work).
    pub ticks_executed: u64,
    /// Per-SM cycles fast-forwarded past because that SM could not change
    /// state.
    pub cycles_skipped: u64,
    /// Skipped SM-cycles spent waiting on the memory hierarchy (a
    /// completion or an L1/RT-cache fill supplied the wakeup).
    pub skipped_on_memory: u64,
    /// Skipped SM-cycles spent waiting on fixed-latency timers (ALU/shared
    /// latency, i.e. the SM's own `next_event` supplied the wakeup),
    /// including each SM's idle tail after it drains but before the
    /// machine-wide finish.
    pub skipped_on_timers: u64,
}

impl SchedStats {
    /// Fraction of simulated cycles that were skipped (0 under stepped
    /// mode; the event-mode speedup headroom).
    pub fn skip_fraction(&self) -> f64 {
        let total = self.ticks_executed + self.cycles_skipped;
        if total == 0 {
            0.0
        } else {
            self.cycles_skipped as f64 / total as f64
        }
    }
}

/// The result of simulating one kernel trace.
///
/// `PartialEq`/`Eq` compare every counter bit-for-bit — the
/// determinism-under-parallelism tests rely on this to assert that reports
/// are identical for any worker count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimReport {
    /// Kernel name.
    pub kernel: String,
    /// Total cycles until the machine drained.
    pub cycles: u64,
    /// Warp instructions issued per class, summed over SMs.
    pub issued: [u64; 7],
    /// Weighted (expanded) instruction counts per class.
    pub issued_weighted: [u64; 7],
    /// Warps retired.
    pub warps_retired: u64,
    /// Combined RT/HSU-unit statistics (summed over SMs; occupancy averaged).
    pub rt: RtUnitStats,
    /// Memory-system statistics.
    pub memory: MemoryStats,
    /// Number of SMs simulated.
    pub num_sms: usize,
    /// Run-loop scheduler counters (the only mode-dependent field; see
    /// [`SchedStats`]).
    pub sched: SchedStats,
}

impl SimReport {
    /// Builds a report from per-SM pieces.
    pub fn aggregate(
        kernel: String,
        cycles: u64,
        num_sms: usize,
        sm_stats: &[SmStats],
        rt_stats: &[RtUnitStats],
        memory: MemoryStats,
    ) -> Self {
        let mut issued = [0u64; 7];
        let mut issued_weighted = [0u64; 7];
        let mut warps_retired = 0;
        for s in sm_stats {
            for i in 0..7 {
                issued[i] += s.issued[i];
                issued_weighted[i] += s.issued_weighted[i];
            }
            warps_retired += s.warps_retired;
        }
        let mut rt = RtUnitStats::default();
        for r in rt_stats {
            rt.warp_instructions += r.warp_instructions;
            rt.isa_instructions += r.isa_instructions;
            rt.occupancy_sum += r.occupancy_sum;
            rt.occupancy_peak = rt.occupancy_peak.max(r.occupancy_peak);
            rt.cycles += r.cycles;
            rt.dispatch_stalls += r.dispatch_stalls;
            rt.staging_hits += r.staging_hits;
            rt.staging_evictions += r.staging_evictions;
            rt.treelet_transitions += r.treelet_transitions;
            rt.pipeline.cycles += r.pipeline.cycles;
            rt.pipeline.issue_busy_cycles += r.pipeline.issue_busy_cycles;
            for i in 0..5 {
                rt.pipeline.issued[i] += r.pipeline.issued[i];
                rt.pipeline.completed[i] += r.pipeline.completed[i];
            }
        }
        SimReport {
            kernel,
            cycles,
            issued,
            issued_weighted,
            warps_retired,
            rt,
            memory,
            num_sms,
            sched: SchedStats::default(),
        }
    }

    /// A copy with [`SchedStats`] zeroed — the mode-invariant projection the
    /// differential equivalence tests compare. Two runs of the same kernel
    /// in different [`crate::config::SimMode`]s must satisfy
    /// `a.normalized() == b.normalized()`.
    pub fn normalized(&self) -> SimReport {
        let mut r = self.clone();
        r.sched = SchedStats::default();
        r
    }

    /// HSU operations completed per cycle *per unit* — the paper's roofline
    /// performance axis (§VI-B), bounded above by 1.
    pub fn hsu_ops_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.rt.pipeline.total_completed() as f64 / (self.cycles * self.num_sms as u64) as f64
    }

    /// HSU operations per L2 cache-line access — the roofline's operational
    /// intensity axis.
    pub fn operational_intensity(&self) -> f64 {
        let l2 = self.memory.l2.accesses();
        if l2 == 0 {
            0.0
        } else {
            self.rt.pipeline.total_completed() as f64 / l2 as f64
        }
    }

    /// Total L1 data-cache accesses (LSU + RT), Fig. 12's numerator.
    pub fn l1_accesses(&self) -> u64 {
        self.memory.l1_lsu_accesses + self.memory.l1_rt_accesses
    }

    /// L1 miss rate with MSHR merges counted as hits (Fig. 13).
    pub fn l1_miss_rate(&self) -> f64 {
        self.memory.l1.miss_rate()
    }

    /// DRAM row locality (Fig. 14).
    pub fn row_locality(&self) -> f64 {
        self.memory.dram.row_locality()
    }

    /// Highest warp-buffer occupancy any RT/HSU unit reached in any cycle —
    /// the suite runner's observability tables report this to show how much
    /// of the Fig. 11 buffering capacity a workload actually exercises.
    pub fn peak_warp_buffer_occupancy(&self) -> u64 {
        self.rt.occupancy_peak
    }

    /// Speedup of this run relative to `baseline`.
    ///
    /// # Panics
    ///
    /// Panics if this run took zero cycles.
    pub fn speedup_over(&self, baseline: &SimReport) -> f64 {
        assert!(self.cycles > 0, "zero-cycle run");
        baseline.cycles as f64 / self.cycles as f64
    }

    /// One-line summary used by the harness.
    pub fn summary(&self) -> String {
        format!(
            "{}: {} cycles, {} warps, hsu-ops/cyc {:.3}, L1 {} accesses ({:.1}% miss), row-loc {:.1}",
            self.kernel,
            self.cycles,
            self.warps_retired,
            self.hsu_ops_per_cycle(),
            self.l1_accesses(),
            self.l1_miss_rate() * 100.0,
            self.row_locality(),
        )
    }

    /// Weighted instruction count for one class.
    pub fn weighted(&self, class: OpClass) -> u64 {
        self.issued_weighted[class.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_report(cycles: u64) -> SimReport {
        SimReport::aggregate(
            "t".into(),
            cycles,
            2,
            &[SmStats::default()],
            &[RtUnitStats::default()],
            MemoryStats::default(),
        )
    }

    #[test]
    fn aggregation_sums() {
        let mut a = SmStats::default();
        a.issued[0] = 3;
        a.issued_weighted[0] = 30;
        a.warps_retired = 2;
        let mut b = SmStats::default();
        b.issued[0] = 4;
        b.issued_weighted[0] = 40;
        b.warps_retired = 5;
        let r = SimReport::aggregate("k".into(), 100, 2, &[a, b], &[], MemoryStats::default());
        assert_eq!(r.issued[0], 7);
        assert_eq!(r.issued_weighted[0], 70);
        assert_eq!(r.warps_retired, 7);
        assert_eq!(r.weighted(OpClass::Alu), 70);
    }

    #[test]
    fn speedup_math() {
        let base = empty_report(200);
        let fast = empty_report(100);
        assert!((fast.speedup_over(&base) - 2.0).abs() < 1e-12);
        assert!((base.speedup_over(&fast) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn normalized_erases_only_sched() {
        let mut a = empty_report(100);
        let mut b = empty_report(100);
        a.sched = SchedStats {
            ticks_executed: 10,
            cycles_skipped: 90,
            skipped_on_memory: 70,
            skipped_on_timers: 20,
        };
        b.sched = SchedStats {
            ticks_executed: 100,
            ..SchedStats::default()
        };
        assert_ne!(a, b, "sched differences are visible in full equality");
        assert_eq!(a.normalized(), b.normalized());
        assert!((a.sched.skip_fraction() - 0.9).abs() < 1e-12);
        assert_eq!(b.sched.skip_fraction(), 0.0);
        assert_eq!(SchedStats::default().skip_fraction(), 0.0);
        // Normalizing must not touch architectural counters.
        b.cycles += 1;
        assert_ne!(a.normalized(), b.normalized());
    }

    #[test]
    fn derived_metrics_handle_zero() {
        let r = empty_report(0);
        assert_eq!(r.hsu_ops_per_cycle(), 0.0);
        assert_eq!(r.operational_intensity(), 0.0);
        assert_eq!(r.l1_miss_rate(), 0.0);
        assert_eq!(r.row_locality(), 0.0);
        assert!(!r.summary().is_empty());
    }
}
