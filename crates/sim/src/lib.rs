//! Cycle-level GPU timing simulator for the HSU evaluation.
//!
//! This crate stands in for the paper's Accel-Sim + GPGPU-Sim 4.0 stack
//! (§V-C). It models a Volta-class GPU at the fidelity the paper's results
//! depend on:
//!
//! * **SMs with four sub-cores** and greedy-then-oldest (GTO) warp
//!   scheduling, one issue slot per sub-core per cycle (Table III),
//! * **one RT/HSU unit per SM** shared by the sub-cores through a
//!   round-robin arbiter, with the warp buffer, FIFO L1-access queue,
//!   single-lane 9-stage datapath and result buffer of `hsu-core` — in one
//!   of two organizations ([`config::RtCoreKind`]): the paper's
//!   slot-scanned baseline ([`rt_unit::RtUnit`]) or a treelet-scheduled
//!   core with cache-line staging buffers ([`treelet::TreeletRtUnit`]),
//!   functionally identical but timed differently,
//! * **L1D caches with MSHRs** (128 KB, 128-B lines) time-shared between the
//!   load-store unit and the RT unit's fetch FIFO (§VI-H),
//! * a shared, banked **L2** (6 MB, 24-way) and **HBM channels with FR-FCFS**
//!   row-buffer scheduling whose locality statistics feed Fig. 14,
//! * a **trace format** ([`trace`]) the workload kernels emit: per-thread
//!   operation logs packed into 32-lane warps with divergence-aware active
//!   masks.
//!
//! The simulator is deterministic: the same trace and configuration always
//! produce the same cycle count and statistics.
//!
//! # Simulation modes
//!
//! Time advances under one of three [`config::SimMode`]s. `Stepped` is the
//! oracle: every component ticks on every cycle. `Event` (the default) is
//! the fast path: each component reports the earliest future cycle its
//! state can change ([`memory::MemorySystem::next_event`],
//! [`sm::Sm::next_event`]), the run loop jumps straight to the minimum, and
//! within a visited cycle only the SMs that can observe it tick — the rest
//! sleep until a completion, an L1 fill, or their own wakeup cycle arrives,
//! and bulk-account the skipped window via `fast_forward`. `ParallelEpoch`
//! runs the same event-driven schedule but fans each visited cycle's SM
//! work out across a worker pool ([`config::GpuConfig::sim_threads`]),
//! draining the shared memory system between epochs under a deterministic
//! barrier. All three modes produce bit-identical [`SimReport`]s for every
//! thread count (only the [`stats::SchedStats`] scheduler counters differ
//! between stepped and the event-driven pair); `tests/sim_equivalence.rs`
//! proves this differentially over random kernels, random machine
//! geometries, thread counts, and the full benchmark suite.
//!
//! # Examples
//!
//! ```
//! use hsu_sim::config::GpuConfig;
//! use hsu_sim::trace::{KernelTrace, ThreadOp, ThreadTrace};
//! use hsu_sim::Gpu;
//!
//! let mut kernel = KernelTrace::new("demo");
//! for t in 0..64 {
//!     let mut thread = ThreadTrace::new();
//!     thread.push(ThreadOp::Alu { count: 4 });
//!     thread.push(ThreadOp::Load { addr: t * 128, bytes: 4 });
//!     kernel.push_thread(thread);
//! }
//! let report = Gpu::new(GpuConfig::small()).run(&kernel).unwrap();
//! assert!(report.cycles > 0);
//! ```
//!
//! # Failure semantics
//!
//! Everything a caller can trigger with bad input — malformed traces,
//! invalid configurations, guard-exceeding kernels, cancelled or timed-out
//! runs — surfaces as a typed [`SimError`] rather than a panic. Panics that
//! remain (`unreachable!` sites in component internals) indicate simulator
//! bugs, never bad input; see [`error`] for the taxonomy.

#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod archive_io;
pub mod cache;
pub mod config;
pub mod dram;
pub mod error;
pub mod faults;
pub mod memory;
pub mod rt_core;
pub mod rt_unit;
pub mod sm;
pub mod stats;
pub mod trace;
pub mod trace_io;
pub mod treelet;

mod gpu;

pub use error::SimError;
pub use gpu::Gpu;
pub use stats::SimReport;

// The parallel suite runner fans simulations out across scoped threads, so
// the simulator's job inputs and outputs must stay `Send + Sync`. Keep these
// assertions next to the types they guard: adding an `Rc`/`RefCell` anywhere
// inside breaks the build here rather than deep in `hsu-bench`.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Gpu>();
    assert_send_sync::<SimReport>();
    assert_send_sync::<trace::KernelTrace>();
    assert_send_sync::<config::GpuConfig>();
    // Errors cross the same thread boundaries as reports (the fault-tolerant
    // runner carries them through catch_unwind + channels).
    assert_send_sync::<SimError>();
    assert_send_sync::<error::CancelToken>();
    // The parallel-epoch run loop additionally moves SMs and memory shards
    // across its own worker pool.
    const fn assert_send<T: Send>() {}
    assert_send::<sm::Sm>();
    assert_send::<memory::MemorySystem>();
};
