//! Compact binary serialization of kernel traces.
//!
//! The paper's methodology is trace-driven: SASS traces are post-processed
//! once and replayed many times (§V-C). This module gives the reproduction
//! the same workflow — a [`KernelTrace`] can be written to a byte stream and
//! replayed later without regenerating the workload (useful for the
//! sensitivity sweeps, which re-simulate the same trace under many machine
//! configurations).
//!
//! The format is little-endian, versioned, and validated on read.

use std::io::{self, Read, Write};
use std::path::Path;

use hsu_geometry::point::Metric;

use crate::error::SimError;
use crate::trace::{KernelTrace, ThreadOp, ThreadTrace};

/// Magic bytes identifying a trace stream.
pub const MAGIC: &[u8; 4] = b"HSUT";
/// Current format version.
pub const VERSION: u8 = 1;

/// Longest kernel name accepted by [`read_trace`]. Real kernel names are a
/// few dozen bytes; anything larger is corruption, and the cap keeps a
/// bit-flipped length field from driving a multi-gigabyte allocation.
pub const MAX_NAME_LEN: usize = 4096;
/// Most threads accepted in one trace (64 Mi — far beyond any workload here).
pub const MAX_THREADS: usize = 1 << 26;
/// Most ops accepted per thread.
pub const MAX_OPS_PER_THREAD: usize = 1 << 26;

const TAG_ALU: u8 = 0;
const TAG_LOAD: u8 = 1;
const TAG_STORE: u8 = 2;
const TAG_SHARED: u8 = 3;
const TAG_RAY_BOX: u8 = 4;
const TAG_RAY_TRI: u8 = 5;
const TAG_EUCLID: u8 = 6;
const TAG_ANGULAR: u8 = 7;
const TAG_KEY: u8 = 8;

/// Writes `trace` to `w`.
///
/// # Errors
///
/// Returns any I/O error from the writer.
pub fn write_trace<W: Write>(trace: &KernelTrace, mut w: W) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&[VERSION])?;
    let name = trace.name().as_bytes();
    w.write_all(&(name.len() as u32).to_le_bytes())?;
    w.write_all(name)?;
    w.write_all(&(trace.thread_count() as u32).to_le_bytes())?;
    for thread in trace.threads() {
        w.write_all(&(thread.ops().len() as u32).to_le_bytes())?;
        for op in thread.ops() {
            write_op(op, &mut w)?;
        }
    }
    Ok(())
}

fn write_op<W: Write>(op: &ThreadOp, w: &mut W) -> io::Result<()> {
    match *op {
        ThreadOp::Alu { count } => {
            w.write_all(&[TAG_ALU])?;
            w.write_all(&count.to_le_bytes())
        }
        ThreadOp::Load { addr, bytes } => {
            w.write_all(&[TAG_LOAD])?;
            w.write_all(&addr.to_le_bytes())?;
            w.write_all(&bytes.to_le_bytes())
        }
        ThreadOp::Store { addr, bytes } => {
            w.write_all(&[TAG_STORE])?;
            w.write_all(&addr.to_le_bytes())?;
            w.write_all(&bytes.to_le_bytes())
        }
        ThreadOp::Shared { count } => {
            w.write_all(&[TAG_SHARED])?;
            w.write_all(&count.to_le_bytes())
        }
        ThreadOp::HsuRayIntersect {
            node_addr,
            bytes,
            triangle,
        } => {
            w.write_all(&[if triangle { TAG_RAY_TRI } else { TAG_RAY_BOX }])?;
            w.write_all(&node_addr.to_le_bytes())?;
            w.write_all(&bytes.to_le_bytes())
        }
        ThreadOp::HsuDistance {
            metric,
            dim,
            candidate_addr,
        } => {
            let tag = match metric {
                Metric::Euclidean => TAG_EUCLID,
                Metric::Angular => TAG_ANGULAR,
            };
            w.write_all(&[tag])?;
            w.write_all(&candidate_addr.to_le_bytes())?;
            w.write_all(&dim.to_le_bytes())
        }
        ThreadOp::HsuKeyCompare {
            node_addr,
            separators,
        } => {
            w.write_all(&[TAG_KEY])?;
            w.write_all(&node_addr.to_le_bytes())?;
            w.write_all(&separators.to_le_bytes())
        }
    }
}

/// Reads a trace previously written by [`write_trace`].
///
/// # Errors
///
/// Returns `InvalidData` for bad magic/version/tags, or any reader error.
pub fn read_trace<R: Read>(mut r: R) -> io::Result<KernelTrace> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad trace magic",
        ));
    }
    let version = read_u8(&mut r)?;
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported trace version {version}"),
        ));
    }
    let name_len = checked_count(read_u32(&mut r)?, MAX_NAME_LEN, "kernel name length")?;
    let mut name = vec![0u8; name_len];
    r.read_exact(&mut name)?;
    let name =
        String::from_utf8(name).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    let threads = checked_count(read_u32(&mut r)?, MAX_THREADS, "thread count")?;
    let mut trace = KernelTrace::new(name);
    for _ in 0..threads {
        let ops = checked_count(read_u32(&mut r)?, MAX_OPS_PER_THREAD, "op count")?;
        let mut thread = ThreadTrace::new();
        for _ in 0..ops {
            thread.push(read_op(&mut r)?);
        }
        trace.push_thread(thread);
    }
    Ok(trace)
}

fn read_op<R: Read>(r: &mut R) -> io::Result<ThreadOp> {
    let tag = read_u8(r)?;
    Ok(match tag {
        TAG_ALU => ThreadOp::Alu {
            count: read_u32(r)?,
        },
        TAG_LOAD => ThreadOp::Load {
            addr: read_u64(r)?,
            bytes: read_u32(r)?,
        },
        TAG_STORE => ThreadOp::Store {
            addr: read_u64(r)?,
            bytes: read_u32(r)?,
        },
        TAG_SHARED => ThreadOp::Shared {
            count: read_u32(r)?,
        },
        TAG_RAY_BOX | TAG_RAY_TRI => ThreadOp::HsuRayIntersect {
            node_addr: read_u64(r)?,
            bytes: read_u32(r)?,
            triangle: tag == TAG_RAY_TRI,
        },
        TAG_EUCLID | TAG_ANGULAR => ThreadOp::HsuDistance {
            metric: if tag == TAG_EUCLID {
                Metric::Euclidean
            } else {
                Metric::Angular
            },
            candidate_addr: read_u64(r)?,
            dim: read_u32(r)?,
        },
        TAG_KEY => ThreadOp::HsuKeyCompare {
            node_addr: read_u64(r)?,
            separators: read_u32(r)?,
        },
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unknown op tag {other}"),
            ))
        }
    })
}

/// Bounds-checks a length/count field before it drives an allocation or a
/// read loop, so a corrupted stream fails with `InvalidData` instead of an
/// out-of-memory abort.
fn checked_count(raw: u32, cap: usize, what: &str) -> io::Result<usize> {
    let n = raw as usize;
    if n > cap {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("implausible {what} {n} (cap {cap})"),
        ));
    }
    Ok(n)
}

/// Reads a trace file from `path`, mapping failures into the typed
/// [`SimError`] taxonomy.
///
/// # Errors
///
/// [`SimError::TraceDecode`] when the stream is malformed (bad magic,
/// version, tag, truncation, or an implausible length field);
/// [`SimError::Io`] for filesystem-level failures.
pub fn load_trace<P: AsRef<Path>>(path: P) -> Result<KernelTrace, SimError> {
    let path = path.as_ref();
    let ctx = || format!("loading trace {}", path.display());
    let file = std::fs::File::open(path).map_err(|e| SimError::from_io(ctx(), e))?;
    read_trace(io::BufReader::new(file)).map_err(|e| SimError::from_io(ctx(), e))
}

/// Writes a trace file to `path`, mapping failures into [`SimError::Io`].
///
/// # Errors
///
/// [`SimError::Io`] when the file cannot be created or written.
pub fn save_trace<P: AsRef<Path>>(trace: &KernelTrace, path: P) -> Result<(), SimError> {
    let path = path.as_ref();
    let ctx = || format!("saving trace {}", path.display());
    let file = std::fs::File::create(path).map_err(|e| SimError::from_io(ctx(), e))?;
    let mut w = io::BufWriter::new(file);
    write_trace(trace, &mut w).map_err(|e| SimError::from_io(ctx(), e))?;
    w.flush().map_err(|e| SimError::from_io(ctx(), e))
}

fn read_u8<R: Read>(r: &mut R) -> io::Result<u8> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> KernelTrace {
        let mut k = KernelTrace::new("sample-kernel");
        for i in 0..70u64 {
            let mut t = ThreadTrace::new();
            t.push(ThreadOp::Alu {
                count: (i % 7 + 1) as u32,
            });
            t.push(ThreadOp::Load {
                addr: i * 64,
                bytes: 16,
            });
            t.push(ThreadOp::HsuRayIntersect {
                node_addr: i * 128,
                bytes: 64,
                triangle: i % 2 == 0,
            });
            t.push(ThreadOp::HsuDistance {
                metric: if i % 3 == 0 {
                    Metric::Euclidean
                } else {
                    Metric::Angular
                },
                dim: (i % 200 + 1) as u32,
                candidate_addr: i * 4,
            });
            t.push(ThreadOp::HsuKeyCompare {
                node_addr: i,
                separators: 255,
            });
            t.push(ThreadOp::Store {
                addr: 0x7000_0000 + i,
                bytes: 8,
            });
            t.push(ThreadOp::Shared { count: 3 });
            k.push_thread(t);
        }
        k
    }

    #[test]
    fn round_trip_preserves_everything() {
        let original = sample_trace();
        let mut buf = Vec::new();
        write_trace(&original, &mut buf).unwrap();
        let restored = read_trace(buf.as_slice()).unwrap();
        assert_eq!(restored.name(), original.name());
        assert_eq!(restored.thread_count(), original.thread_count());
        assert_eq!(restored.total_instructions(), original.total_instructions());
        for (a, b) in original.threads().iter().zip(restored.threads()) {
            assert_eq!(a.ops(), b.ops());
        }
        // The simulator sees identical behaviour.
        let gpu = crate::Gpu::new(crate::config::GpuConfig::tiny());
        assert_eq!(
            gpu.run(&original).unwrap().cycles,
            gpu.run(&restored).unwrap().cycles
        );
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        assert!(read_trace(&b"NOPE\x01"[..]).is_err());
        let mut buf = Vec::new();
        write_trace(&KernelTrace::new("x"), &mut buf).unwrap();
        buf[4] = 99; // version
        assert!(read_trace(buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_truncation_anywhere() {
        let mut buf = Vec::new();
        write_trace(&sample_trace(), &mut buf).unwrap();
        for cut in [3usize, 5, 9, buf.len() / 2, buf.len() - 1] {
            assert!(read_trace(&buf[..cut]).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn rejects_unknown_tag() {
        let mut buf = Vec::new();
        let mut k = KernelTrace::new("t");
        let mut th = ThreadTrace::new();
        th.push(ThreadOp::Alu { count: 1 });
        k.push_thread(th);
        write_trace(&k, &mut buf).unwrap();
        // Corrupt the op tag (header: 4 magic + 1 ver + 4 namelen + 1 name +
        // 4 threads + 4 ops = 18).
        buf[18] = 200;
        assert!(read_trace(buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_implausible_length_fields() {
        let mut buf = Vec::new();
        write_trace(&sample_trace(), &mut buf).unwrap();
        // Flip the MSB of the name-length field (offset 5..9): without the
        // plausibility cap this would try to allocate a 2 GiB name buffer.
        let mut huge_name = buf.clone();
        huge_name[8] |= 0x80;
        let err = read_trace(huge_name.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("kernel name length"));
        // Same for the thread-count field (follows the 13-byte name).
        let name_len = sample_trace().name().len();
        let mut huge_threads = buf.clone();
        huge_threads[9 + name_len + 3] = 0xff;
        let err = read_trace(huge_threads.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("thread count"));
    }

    #[test]
    fn load_trace_surfaces_typed_errors() {
        let dir = std::env::temp_dir().join(format!("hsu-trace-io-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let good = dir.join("good.hsut");
        save_trace(&sample_trace(), &good).unwrap();
        let restored = load_trace(&good).unwrap();
        assert_eq!(restored.name(), sample_trace().name());

        let missing = load_trace(dir.join("missing.hsut")).unwrap_err();
        assert_eq!(missing.kind(), "io");

        let bad = dir.join("bad.hsut");
        std::fs::write(&bad, b"NOPE").unwrap();
        let decode = load_trace(&bad).unwrap_err();
        assert!(
            matches!(decode, SimError::TraceDecode { .. }),
            "expected TraceDecode, got {decode:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_trace_round_trips() {
        let mut buf = Vec::new();
        write_trace(&KernelTrace::new("empty"), &mut buf).unwrap();
        let restored = read_trace(buf.as_slice()).unwrap();
        assert_eq!(restored.thread_count(), 0);
        assert_eq!(restored.name(), "empty");
    }
}
