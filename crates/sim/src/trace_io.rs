//! Compact binary serialization of kernel traces.
//!
//! The paper's methodology is trace-driven: SASS traces are post-processed
//! once and replayed many times (§V-C). This module gives the reproduction
//! the same workflow — a [`KernelTrace`] can be written to a byte stream and
//! replayed later without regenerating the workload (useful for the
//! sensitivity sweeps, which re-simulate the same trace under many machine
//! configurations).
//!
//! The format is little-endian, versioned, and validated on read.

use std::io::{self, Read, Write};

use hsu_geometry::point::Metric;

use crate::trace::{KernelTrace, ThreadOp, ThreadTrace};

/// Magic bytes identifying a trace stream.
pub const MAGIC: &[u8; 4] = b"HSUT";
/// Current format version.
pub const VERSION: u8 = 1;

const TAG_ALU: u8 = 0;
const TAG_LOAD: u8 = 1;
const TAG_STORE: u8 = 2;
const TAG_SHARED: u8 = 3;
const TAG_RAY_BOX: u8 = 4;
const TAG_RAY_TRI: u8 = 5;
const TAG_EUCLID: u8 = 6;
const TAG_ANGULAR: u8 = 7;
const TAG_KEY: u8 = 8;

/// Writes `trace` to `w`.
///
/// # Errors
///
/// Returns any I/O error from the writer.
pub fn write_trace<W: Write>(trace: &KernelTrace, mut w: W) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&[VERSION])?;
    let name = trace.name().as_bytes();
    w.write_all(&(name.len() as u32).to_le_bytes())?;
    w.write_all(name)?;
    w.write_all(&(trace.thread_count() as u32).to_le_bytes())?;
    for thread in trace.threads() {
        w.write_all(&(thread.ops().len() as u32).to_le_bytes())?;
        for op in thread.ops() {
            write_op(op, &mut w)?;
        }
    }
    Ok(())
}

fn write_op<W: Write>(op: &ThreadOp, w: &mut W) -> io::Result<()> {
    match *op {
        ThreadOp::Alu { count } => {
            w.write_all(&[TAG_ALU])?;
            w.write_all(&count.to_le_bytes())
        }
        ThreadOp::Load { addr, bytes } => {
            w.write_all(&[TAG_LOAD])?;
            w.write_all(&addr.to_le_bytes())?;
            w.write_all(&bytes.to_le_bytes())
        }
        ThreadOp::Store { addr, bytes } => {
            w.write_all(&[TAG_STORE])?;
            w.write_all(&addr.to_le_bytes())?;
            w.write_all(&bytes.to_le_bytes())
        }
        ThreadOp::Shared { count } => {
            w.write_all(&[TAG_SHARED])?;
            w.write_all(&count.to_le_bytes())
        }
        ThreadOp::HsuRayIntersect {
            node_addr,
            bytes,
            triangle,
        } => {
            w.write_all(&[if triangle { TAG_RAY_TRI } else { TAG_RAY_BOX }])?;
            w.write_all(&node_addr.to_le_bytes())?;
            w.write_all(&bytes.to_le_bytes())
        }
        ThreadOp::HsuDistance {
            metric,
            dim,
            candidate_addr,
        } => {
            let tag = match metric {
                Metric::Euclidean => TAG_EUCLID,
                Metric::Angular => TAG_ANGULAR,
            };
            w.write_all(&[tag])?;
            w.write_all(&candidate_addr.to_le_bytes())?;
            w.write_all(&dim.to_le_bytes())
        }
        ThreadOp::HsuKeyCompare {
            node_addr,
            separators,
        } => {
            w.write_all(&[TAG_KEY])?;
            w.write_all(&node_addr.to_le_bytes())?;
            w.write_all(&separators.to_le_bytes())
        }
    }
}

/// Reads a trace previously written by [`write_trace`].
///
/// # Errors
///
/// Returns `InvalidData` for bad magic/version/tags, or any reader error.
pub fn read_trace<R: Read>(mut r: R) -> io::Result<KernelTrace> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad trace magic",
        ));
    }
    let version = read_u8(&mut r)?;
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported trace version {version}"),
        ));
    }
    let name_len = read_u32(&mut r)? as usize;
    let mut name = vec![0u8; name_len];
    r.read_exact(&mut name)?;
    let name =
        String::from_utf8(name).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    let threads = read_u32(&mut r)? as usize;
    let mut trace = KernelTrace::new(name);
    for _ in 0..threads {
        let ops = read_u32(&mut r)? as usize;
        let mut thread = ThreadTrace::new();
        for _ in 0..ops {
            thread.push(read_op(&mut r)?);
        }
        trace.push_thread(thread);
    }
    Ok(trace)
}

fn read_op<R: Read>(r: &mut R) -> io::Result<ThreadOp> {
    let tag = read_u8(r)?;
    Ok(match tag {
        TAG_ALU => ThreadOp::Alu {
            count: read_u32(r)?,
        },
        TAG_LOAD => ThreadOp::Load {
            addr: read_u64(r)?,
            bytes: read_u32(r)?,
        },
        TAG_STORE => ThreadOp::Store {
            addr: read_u64(r)?,
            bytes: read_u32(r)?,
        },
        TAG_SHARED => ThreadOp::Shared {
            count: read_u32(r)?,
        },
        TAG_RAY_BOX | TAG_RAY_TRI => ThreadOp::HsuRayIntersect {
            node_addr: read_u64(r)?,
            bytes: read_u32(r)?,
            triangle: tag == TAG_RAY_TRI,
        },
        TAG_EUCLID | TAG_ANGULAR => ThreadOp::HsuDistance {
            metric: if tag == TAG_EUCLID {
                Metric::Euclidean
            } else {
                Metric::Angular
            },
            candidate_addr: read_u64(r)?,
            dim: read_u32(r)?,
        },
        TAG_KEY => ThreadOp::HsuKeyCompare {
            node_addr: read_u64(r)?,
            separators: read_u32(r)?,
        },
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unknown op tag {other}"),
            ))
        }
    })
}

fn read_u8<R: Read>(r: &mut R) -> io::Result<u8> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> KernelTrace {
        let mut k = KernelTrace::new("sample-kernel");
        for i in 0..70u64 {
            let mut t = ThreadTrace::new();
            t.push(ThreadOp::Alu {
                count: (i % 7 + 1) as u32,
            });
            t.push(ThreadOp::Load {
                addr: i * 64,
                bytes: 16,
            });
            t.push(ThreadOp::HsuRayIntersect {
                node_addr: i * 128,
                bytes: 64,
                triangle: i % 2 == 0,
            });
            t.push(ThreadOp::HsuDistance {
                metric: if i % 3 == 0 {
                    Metric::Euclidean
                } else {
                    Metric::Angular
                },
                dim: (i % 200 + 1) as u32,
                candidate_addr: i * 4,
            });
            t.push(ThreadOp::HsuKeyCompare {
                node_addr: i,
                separators: 255,
            });
            t.push(ThreadOp::Store {
                addr: 0x7000_0000 + i,
                bytes: 8,
            });
            t.push(ThreadOp::Shared { count: 3 });
            k.push_thread(t);
        }
        k
    }

    #[test]
    fn round_trip_preserves_everything() {
        let original = sample_trace();
        let mut buf = Vec::new();
        write_trace(&original, &mut buf).unwrap();
        let restored = read_trace(buf.as_slice()).unwrap();
        assert_eq!(restored.name(), original.name());
        assert_eq!(restored.thread_count(), original.thread_count());
        assert_eq!(restored.total_instructions(), original.total_instructions());
        for (a, b) in original.threads().iter().zip(restored.threads()) {
            assert_eq!(a.ops(), b.ops());
        }
        // The simulator sees identical behaviour.
        let gpu = crate::Gpu::new(crate::config::GpuConfig::tiny());
        assert_eq!(gpu.run(&original).cycles, gpu.run(&restored).cycles);
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        assert!(read_trace(&b"NOPE\x01"[..]).is_err());
        let mut buf = Vec::new();
        write_trace(&KernelTrace::new("x"), &mut buf).unwrap();
        buf[4] = 99; // version
        assert!(read_trace(buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_truncation_anywhere() {
        let mut buf = Vec::new();
        write_trace(&sample_trace(), &mut buf).unwrap();
        for cut in [3usize, 5, 9, buf.len() / 2, buf.len() - 1] {
            assert!(read_trace(&buf[..cut]).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn rejects_unknown_tag() {
        let mut buf = Vec::new();
        let mut k = KernelTrace::new("t");
        let mut th = ThreadTrace::new();
        th.push(ThreadOp::Alu { count: 1 });
        k.push_thread(th);
        write_trace(&k, &mut buf).unwrap();
        // Corrupt the op tag (header: 4 magic + 1 ver + 4 namelen + 1 name +
        // 4 threads + 4 ops = 18).
        buf[18] = 200;
        assert!(read_trace(buf.as_slice()).is_err());
    }

    #[test]
    fn empty_trace_round_trips() {
        let mut buf = Vec::new();
        write_trace(&KernelTrace::new("empty"), &mut buf).unwrap();
        let restored = read_trace(buf.as_slice()).unwrap();
        assert_eq!(restored.thread_count(), 0);
        assert_eq!(restored.name(), "empty");
    }
}
