//! Organization-polymorphic RT-unit front, selected by
//! [`crate::config::GpuConfig::rt_core`].
//!
//! The SM talks to one [`RtCore`] value; every method delegates to the
//! selected organization. An enum (rather than a trait object) keeps the
//! unit inline in [`crate::sm::Sm`], keeps `Send` for the parallel-epoch
//! mode trivial, and lets the two organizations expose the exact same
//! typed surface — the cross-organization differential harness in
//! `tests/rt_organization.rs` depends on the functional columns of
//! [`RtUnitStats`] meaning the same thing under either arm.

use hsu_core::warp_buffer::EntryId;
use hsu_core::HsuConfig;

use crate::config::{GpuConfig, RtCoreKind};
use crate::error::SimError;
use crate::rt_unit::{FifoRequest, RtUnit, RtUnitStats};
use crate::trace::ThreadOp;
use crate::treelet::TreeletRtUnit;

/// One SM's RT/HSU unit, in whichever organization the config selected.
#[derive(Debug)]
pub enum RtCore {
    /// The paper's slot-scanned baseline organization.
    Baseline(RtUnit),
    /// The treelet-scheduled organization with staging buffers.
    Treelet(TreeletRtUnit),
}

macro_rules! delegate {
    ($self:ident, $u:ident => $body:expr) => {
        match $self {
            RtCore::Baseline($u) => $body,
            RtCore::Treelet($u) => $body,
        }
    };
}

impl RtCore {
    /// Builds the organization selected by `cfg.rt_core`.
    pub fn new(cfg: &GpuConfig) -> Self {
        match cfg.rt_core {
            RtCoreKind::Baseline => RtCore::Baseline(RtUnit::new(cfg.hsu.clone(), cfg.sub_cores)),
            RtCoreKind::Treelet => RtCore::Treelet(TreeletRtUnit::new(
                cfg.hsu.clone(),
                cfg.sub_cores,
                cfg.rt_staging_buffers,
            )),
        }
    }

    /// Which organization this unit is.
    pub fn kind(&self) -> RtCoreKind {
        match self {
            RtCore::Baseline(_) => RtCoreKind::Baseline,
            RtCore::Treelet(_) => RtCoreKind::Treelet,
        }
    }

    /// The unit's HSU configuration.
    pub fn config(&self) -> &HsuConfig {
        delegate!(self, u => u.config())
    }

    /// Whether the instruction is legal on this unit.
    pub fn supports(&self, op: &ThreadOp) -> bool {
        delegate!(self, u => u.supports(op))
    }

    /// Arbitrates among sub-cores with pending HSU instructions.
    pub fn grant(&mut self, requesting: &[bool]) -> Option<usize> {
        delegate!(self, u => u.grant(requesting))
    }

    /// Dispatches a warp instruction into the unit.
    ///
    /// # Errors
    ///
    /// [`SimError::IllegalDispatch`] with organization-independent
    /// payloads; a failed dispatch leaves the unit untouched.
    pub fn dispatch(
        &mut self,
        warp: usize,
        sub_core: usize,
        active_mask: u32,
        lanes: &[Option<ThreadOp>],
        line_bytes: u64,
    ) -> Result<EntryId, SimError> {
        delegate!(self, u => u.dispatch(warp, sub_core, active_mask, lanes, line_bytes))
    }

    /// The next node fetch awaiting the L1 port, if the organization can
    /// accept one this cycle.
    pub fn peek_fifo(&self) -> Option<FifoRequest> {
        delegate!(self, u => u.peek_fifo())
    }

    /// Removes the request returned by [`RtCore::peek_fifo`].
    pub fn pop_fifo(&mut self) -> Option<FifoRequest> {
        delegate!(self, u => u.pop_fifo())
    }

    /// Memory requests currently queued for fetch.
    pub fn fifo_len(&self) -> usize {
        delegate!(self, u => u.fifo_len())
    }

    /// Occupied warp-buffer entries.
    pub fn warp_buffer_occupancy(&self) -> usize {
        delegate!(self, u => u.warp_buffer_occupancy())
    }

    /// Re-inserts a request the L1 rejected at the FIFO head.
    pub fn push_back_front(&mut self, req: FifoRequest) {
        delegate!(self, u => u.push_back_front(req))
    }

    /// Delivers a memory response for `(entry, req)`.
    pub fn on_mem_response(&mut self, entry: EntryId, req: usize) {
        delegate!(self, u => u.on_mem_response(entry, req))
    }

    /// Advances the unit one cycle.
    pub fn tick(&mut self) {
        delegate!(self, u => u.tick())
    }

    /// Whether the next tick can change architectural state.
    pub fn advances_on_tick(&self) -> bool {
        delegate!(self, u => u.advances_on_tick())
    }

    /// Whether the unit needs cycles (tick or port service) to progress.
    pub fn busy_next_cycle(&self) -> bool {
        delegate!(self, u => u.busy_next_cycle())
    }

    /// Accounts `cycles` provably-idle cycles in one step.
    pub fn fast_forward(&mut self, cycles: u64) {
        delegate!(self, u => u.fast_forward(cycles))
    }

    /// Warps whose HSU instruction wrote back since the last call.
    pub fn take_completed(&mut self) -> Vec<usize> {
        delegate!(self, u => u.take_completed())
    }

    /// Returns `true` when the unit holds no work.
    pub fn idle(&self) -> bool {
        delegate!(self, u => u.idle())
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> RtUnitStats {
        delegate!(self, u => u.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_builds_the_configured_organization() {
        for kind in RtCoreKind::ALL {
            let cfg = GpuConfig::tiny().with_rt_core(kind);
            let core = RtCore::new(&cfg);
            assert_eq!(core.kind(), kind);
            assert!(core.idle());
        }
    }

    #[test]
    fn both_organizations_share_the_support_matrix() {
        let ray = ThreadOp::HsuRayIntersect {
            node_addr: 0,
            bytes: 64,
            triangle: false,
        };
        let dist = ThreadOp::HsuDistance {
            metric: hsu_geometry::point::Metric::Euclidean,
            dim: 8,
            candidate_addr: 0,
        };
        for kind in RtCoreKind::ALL {
            let core = RtCore::new(&GpuConfig::tiny().with_rt_core(kind));
            assert!(core.supports(&ray));
            assert!(core.supports(&dist));
        }
    }
}
