//! The treelet-scheduled RT-unit organization (the Haydelj/arches
//! `UnitTreeletRTCore` design, selected via
//! [`crate::config::RtCoreKind::Treelet`]).
//!
//! Where the baseline [`crate::rt_unit::RtUnit`] streams every node fetch
//! straight into the FIFO and drains warp-buffer entries in slot-scan order,
//! this organization routes node data through a small pool of
//! cache-line-sized *staging buffers*:
//!
//! * each outstanding node fetch reserves a staging buffer, so at most
//!   `staging_buffers` fetches are in flight — the FIFO presented to the
//!   SM's L1 port is throttled to the staging capacity,
//! * a landed line stays resident in its buffer until the slot is recycled,
//!   forming a tiny LRU line cache: a later dispatch whose node line is
//!   already staged is satisfied on the spot, with no memory traffic
//!   (`staging_hits`),
//! * entries whose operands are complete enter a FIFO *ray-scheduling
//!   queue*; the single-lane datapath serves the queue head to completion
//!   (preserving the §IV-F accumulate lock) before taking the next, instead
//!   of rescanning the warp buffer each cycle,
//! * each warp's walk is tracked at treelet granularity (a treelet is the
//!   staging capacity's worth of consecutive lines): `treelet_transitions`
//!   counts how often a warp's consecutive node fetches crossed into a
//!   different treelet, which the treelet-packed BVH layouts in `hsu-bvh`
//!   exist to minimize.
//!
//! The organization is *functionally* identical to the baseline — same ISA,
//! same beat counts, same typed errors with identical payloads — and obeys
//! the exact same event-driven contracts (`advances_on_tick`,
//! `fast_forward` stat integration), so all three [`crate::config::SimMode`]s
//! remain bit-identical for it. Only timing and memory-traffic columns may
//! differ from the baseline; `tests/rt_organization.rs` locks that split.

use std::collections::VecDeque;

use hsu_core::arbiter::SubCoreArbiter;
use hsu_core::pipeline::DatapathPipeline;
use hsu_core::warp_buffer::{EntryId, WarpBuffer, WARP_WIDTH};
use hsu_core::HsuConfig;

use crate::error::SimError;
use crate::rt_unit::{lane_plan, unit_supports, FifoRequest, LaneState, RtUnitStats};
use crate::trace::ThreadOp;

/// The treelet-scheduled RT/HSU unit of one SM.
#[derive(Debug)]
pub struct TreeletRtUnit {
    cfg: HsuConfig,
    /// Cache-line-sized staging buffers (bounds in-flight fetches; the pool
    /// doubles as the staged-line LRU cache).
    staging_slots: usize,
    warp_buffer: WarpBuffer,
    entry_owner: Vec<Option<usize>>,
    lane_state: Vec<[LaneState; WARP_WIDTH]>,
    arbiter: SubCoreArbiter,
    pipeline: DatapathPipeline,
    fifo: VecDeque<FifoRequest>,
    /// Per-entry coalesced fetch table: `(line, lane mask)`.
    entry_requests: Vec<Vec<(u64, u32)>>,
    /// Fetches currently occupying a staging buffer (issued to memory, no
    /// response yet).
    in_flight_fetches: usize,
    /// Staged lines, LRU order (front = coldest). Invariant:
    /// `staged.len() + in_flight_fetches <= staging_slots`.
    staged: VecDeque<u64>,
    /// The ray-scheduling queue: operand-complete entries in the order they
    /// became ready, awaiting the datapath.
    ready_queue: VecDeque<EntryId>,
    /// Entry currently being drained into the datapath (sticky — the
    /// accumulate lock).
    draining: Option<EntryId>,
    /// Per-warp treelet of the most recent dispatch (the top of that warp's
    /// treelet stack), grown on demand.
    last_treelet: Vec<Option<u64>>,
    completed_warps: Vec<usize>,
    stats: RtUnitStats,
}

impl TreeletRtUnit {
    /// Creates a unit for `sub_cores` schedulers with `staging_slots`
    /// cache-line staging buffers.
    ///
    /// # Panics
    ///
    /// Panics if `staging_slots` is zero (rejected earlier by
    /// [`crate::config::GpuConfig::validate`]).
    pub fn new(cfg: HsuConfig, sub_cores: usize, staging_slots: usize) -> Self {
        assert!(staging_slots > 0, "treelet core needs a staging buffer");
        let entries = cfg.warp_buffer_entries;
        TreeletRtUnit {
            cfg,
            staging_slots,
            warp_buffer: WarpBuffer::new(entries),
            entry_owner: vec![None; entries],
            lane_state: vec![[LaneState::default(); WARP_WIDTH]; entries],
            arbiter: SubCoreArbiter::new(sub_cores),
            pipeline: DatapathPipeline::new(),
            fifo: VecDeque::new(),
            entry_requests: vec![Vec::new(); entries],
            in_flight_fetches: 0,
            staged: VecDeque::new(),
            ready_queue: VecDeque::new(),
            draining: None,
            last_treelet: Vec::new(),
            completed_warps: Vec::new(),
            stats: RtUnitStats::default(),
        }
    }

    /// The unit's HSU configuration.
    pub fn config(&self) -> &HsuConfig {
        &self.cfg
    }

    /// Whether the instruction is legal on this unit (same rule as the
    /// baseline organization).
    pub fn supports(&self, op: &ThreadOp) -> bool {
        unit_supports(&self.cfg, op)
    }

    /// Arbitrates among sub-cores with pending HSU instructions this cycle
    /// (identical policy to the baseline unit).
    pub fn grant(&mut self, requesting: &[bool]) -> Option<usize> {
        if self.warp_buffer.is_full() {
            if requesting.iter().any(|&r| r) {
                self.stats.dispatch_stalls += 1;
            }
            return None;
        }
        let accumulate = vec![false; requesting.len()];
        self.arbiter.grant(requesting, &accumulate)
    }

    /// Marks `line` most-recently-used in the staged pool. Returns `true`
    /// if the line was staged.
    fn touch_staged(&mut self, line: u64) -> bool {
        if let Some(pos) = self.staged.iter().position(|&l| l == line) {
            self.staged.remove(pos);
            self.staged.push_back(line);
            true
        } else {
            false
        }
    }

    /// Dispatches a warp instruction into the warp buffer. Lines already
    /// resident in a staging buffer are consumed immediately; the rest are
    /// queued for fetch.
    ///
    /// # Errors
    ///
    /// [`SimError::IllegalDispatch`] with payloads identical to the
    /// baseline organization's; failed dispatches leave the unit's state
    /// untouched (plan-then-commit).
    pub fn dispatch(
        &mut self,
        warp: usize,
        sub_core: usize,
        active_mask: u32,
        lanes: &[Option<ThreadOp>],
        line_bytes: u64,
    ) -> Result<EntryId, SimError> {
        // Plan every active lane before committing any state, so a
        // malformed instruction cannot leave a half-dispatched entry.
        let mut plans: Vec<(usize, hsu_core::pipeline::OperatingMode, u32, u64, u64)> = Vec::new();
        for (lane, op) in lanes.iter().enumerate() {
            if active_mask & (1 << lane) == 0 {
                continue;
            }
            let Some(op) = op.as_ref() else {
                return Err(SimError::IllegalDispatch {
                    detail: format!("active lane {lane} without an op (mask {active_mask:#x})"),
                });
            };
            let (mode, beats, addr, bytes) = lane_plan(&self.cfg, op)?;
            plans.push((lane, mode, beats, addr, bytes));
        }

        let placeholder = hsu_core::HsuInstruction::ray_intersect(0, 0);
        let proto: Vec<Option<hsu_core::HsuInstruction>> = (0..WARP_WIDTH)
            .map(|l| (active_mask & (1 << l) != 0).then_some(placeholder))
            .collect();
        let Some(entry) = self
            .warp_buffer
            .allocate(warp, sub_core, active_mask, proto)
        else {
            return Err(SimError::IllegalDispatch {
                detail: "dispatch without a free warp buffer entry".to_string(),
            });
        };
        self.entry_owner[entry] = Some(warp);
        self.stats.warp_instructions += 1;

        // Treelet stack: a treelet is the staging capacity's worth of
        // consecutive lines; note when this warp's walk crossed into a new
        // one since its previous dispatch.
        if let Some((_, _, _, addr, _)) = plans.first() {
            let treelet_bytes = (self.staging_slots as u64 * line_bytes).max(1);
            let treelet = addr / treelet_bytes;
            if self.last_treelet.len() <= warp {
                self.last_treelet.resize(warp + 1, None);
            }
            if self.last_treelet[warp].is_some_and(|t| t != treelet) {
                self.stats.treelet_transitions += 1;
            }
            self.last_treelet[warp] = Some(treelet);
        }

        // Coalesce identical lines across lanes, as the baseline does.
        let mut table: Vec<(u64, u32)> = Vec::new();
        for (lane, mode, beats, addr, bytes) in plans {
            self.stats.isa_instructions += beats as u64;
            let first = addr / line_bytes;
            let last = (addr + bytes.max(1) - 1) / line_bytes;
            let n_lines = (last - first + 1) as u32;
            self.lane_state[entry][lane] = LaneState {
                pending_lines: n_lines,
                beats_to_issue: beats,
                beats_in_flight: beats,
                mode: Some(mode),
            };
            for line in first..=last {
                match table.iter_mut().find(|(l, _)| *l == line) {
                    Some((_, mask)) => *mask |= 1 << lane,
                    None => table.push((line, 1 << lane)),
                }
            }
        }
        // Staging-buffer check: lines already resident satisfy their lanes
        // immediately; the rest queue for fetch.
        for (req, &(line, mask)) in table.iter().enumerate() {
            if self.touch_staged(line) {
                self.stats.staging_hits += 1;
                for lane in 0..WARP_WIDTH {
                    if mask & (1 << lane) == 0 {
                        continue;
                    }
                    let state = &mut self.lane_state[entry][lane];
                    state.pending_lines -= 1;
                    if state.pending_lines == 0 {
                        self.warp_buffer.mark_valid(entry, lane);
                    }
                }
            } else {
                self.fifo.push_back(FifoRequest { entry, req, line });
            }
        }
        self.entry_requests[entry] = table;
        // Every line staged: the entry is ready without touching memory.
        if self.warp_buffer.entry(entry).operands_ready() {
            self.ready_queue.push_back(entry);
        }
        Ok(entry)
    }

    /// The next fetch awaiting the L1 port — `None` while every staging
    /// buffer is reserved by an in-flight fetch, even if requests are
    /// queued (the throttle that distinguishes this organization). Progress
    /// then resumes from [`TreeletRtUnit::on_mem_response`], whose wakeup
    /// the memory event heap owns, so the event-driven `next_event`
    /// contract holds.
    pub fn peek_fifo(&self) -> Option<FifoRequest> {
        if self.in_flight_fetches >= self.staging_slots {
            return None;
        }
        self.fifo.front().copied()
    }

    /// Removes the request returned by [`TreeletRtUnit::peek_fifo`],
    /// reserving a staging buffer for it (evicting the coldest staged line
    /// if the pool is full).
    pub fn pop_fifo(&mut self) -> Option<FifoRequest> {
        let req = self.peek_fifo()?;
        self.fifo.pop_front();
        self.in_flight_fetches += 1;
        if self.staged.len() + self.in_flight_fetches > self.staging_slots {
            self.staged.pop_front();
            self.stats.staging_evictions += 1;
        }
        Some(req)
    }

    /// Memory requests currently queued for fetch (deadlock diagnostics).
    pub fn fifo_len(&self) -> usize {
        self.fifo.len()
    }

    /// Occupied warp-buffer entries (deadlock diagnostics).
    pub fn warp_buffer_occupancy(&self) -> usize {
        self.warp_buffer.occupancy()
    }

    /// Re-inserts a request that the L1 rejected (MSHR full) at the FIFO
    /// head, releasing its staging-buffer reservation.
    pub fn push_back_front(&mut self, req: FifoRequest) {
        debug_assert!(self.in_flight_fetches > 0, "push-back without a fetch");
        self.in_flight_fetches -= 1;
        self.fifo.push_front(req);
    }

    /// A memory response for `(entry, req)` arrived: the staging buffer's
    /// line becomes resident, every coalesced lane is credited, and the
    /// entry joins the ray-scheduling queue once its operands complete.
    pub fn on_mem_response(&mut self, entry: EntryId, req: usize) {
        debug_assert!(self.in_flight_fetches > 0, "response without a fetch");
        self.in_flight_fetches -= 1;
        let (line, mask) = self.entry_requests[entry][req];
        if !self.touch_staged(line) {
            self.staged.push_back(line);
        }
        debug_assert!(
            self.staged.len() + self.in_flight_fetches <= self.staging_slots,
            "staging pool overflow"
        );
        let was_ready = self.warp_buffer.entry(entry).operands_ready();
        for lane in 0..WARP_WIDTH {
            if mask & (1 << lane) == 0 {
                continue;
            }
            let state = &mut self.lane_state[entry][lane];
            debug_assert!(state.pending_lines > 0, "response for satisfied lane");
            state.pending_lines -= 1;
            if state.pending_lines == 0 {
                self.warp_buffer.mark_valid(entry, lane);
            }
        }
        if !was_ready && self.warp_buffer.entry(entry).operands_ready() {
            self.ready_queue.push_back(entry);
        }
    }

    /// Advances the datapath one cycle: issues at most one lane-beat from
    /// the ray-scheduling queue's head entry, drains completions, and
    /// retires finished entries.
    pub fn tick(&mut self) {
        self.stats.cycles += 1;
        let occupancy = self.warp_buffer.occupancy() as u64;
        self.stats.occupancy_sum += occupancy;
        self.stats.occupancy_peak = self.stats.occupancy_peak.max(occupancy);

        // Issue stage: stick to the draining entry until fully issued, then
        // take the next entry in ray-scheduling order. Entries enter the
        // queue exactly once (when their operands complete) and cannot
        // retire before draining, so the queue never holds stale ids.
        let entry = match self.draining {
            Some(e) if !self.warp_buffer.entry(e).fully_issued() => Some(e),
            _ => {
                self.draining = self.ready_queue.pop_front();
                self.draining
            }
        };
        if let Some(entry) = entry {
            if let Some(lane) = self.warp_buffer.entry(entry).next_issuable_lane() {
                let state = &mut self.lane_state[entry][lane];
                // Internal invariant: dispatch sets a mode for every active
                // lane before the lane can become issuable.
                let Some(mode) = state.mode else {
                    unreachable!("issuable lane without mode")
                };
                let tag = (entry as u64) << 8 | lane as u64;
                if self.pipeline.issue(mode, tag) {
                    state.beats_to_issue -= 1;
                    if state.beats_to_issue == 0 {
                        self.warp_buffer.mark_issued(entry, lane);
                    }
                }
            }
        }

        // Completion stage.
        for done in self.pipeline.tick() {
            let entry = (done.tag >> 8) as usize;
            let lane = (done.tag & 0xff) as usize;
            let state = &mut self.lane_state[entry][lane];
            state.beats_in_flight -= 1;
            if state.beats_in_flight == 0 {
                self.warp_buffer.mark_completed(entry, lane);
            }
        }

        // Writeback stage: retire finished entries.
        let finished: Vec<EntryId> = self
            .warp_buffer
            .iter()
            .filter(|(_, e)| e.writeback_ready())
            .map(|(id, _)| id)
            .collect();
        for entry in finished {
            self.warp_buffer.release(entry);
            // Internal invariant: dispatch records an owner for every
            // allocated entry.
            let Some(warp) = self.entry_owner[entry].take() else {
                unreachable!("entry without owner")
            };
            self.completed_warps.push(warp);
            self.lane_state[entry] = [LaneState::default(); WARP_WIDTH];
            self.entry_requests[entry].clear();
            if self.draining == Some(entry) {
                self.draining = None;
            }
        }
    }

    /// Same contract as [`crate::rt_unit::RtUnit::advances_on_tick`]: the
    /// next tick can change architectural state. Pending fetches are
    /// excluded — the SM's port arbiter consumes them, not `tick`.
    pub fn advances_on_tick(&self) -> bool {
        !self.pipeline.is_empty()
            || !self.completed_warps.is_empty()
            || !self.ready_queue.is_empty()
            || self
                .draining
                .is_some_and(|e| !self.warp_buffer.entry(e).fully_issued())
    }

    /// Same contract as [`crate::rt_unit::RtUnit::busy_next_cycle`]. A
    /// throttled FIFO still counts as busy: its progress is gated on a
    /// response the memory event heap already owns.
    pub fn busy_next_cycle(&self) -> bool {
        !self.fifo.is_empty() || self.advances_on_tick()
    }

    /// Accounts `cycles` provably-idle cycles in one step, with statistics
    /// bit-identical to that many no-op [`TreeletRtUnit::tick`] calls (the
    /// stepped-vs-event equivalence contract).
    pub fn fast_forward(&mut self, cycles: u64) {
        debug_assert!(
            !self.advances_on_tick(),
            "fast-forward across an active RT unit would skip state changes"
        );
        let occupancy = self.warp_buffer.occupancy() as u64;
        self.stats.cycles += cycles;
        self.stats.occupancy_sum += cycles * occupancy;
        self.pipeline.fast_forward(cycles);
    }

    /// Warps whose HSU instruction wrote back since the last call.
    pub fn take_completed(&mut self) -> Vec<usize> {
        std::mem::take(&mut self.completed_warps)
    }

    /// Returns `true` when the unit holds no work (staged lines are cached
    /// data, not work).
    pub fn idle(&self) -> bool {
        self.warp_buffer.occupancy() == 0 && self.fifo.is_empty() && self.pipeline.is_empty()
    }

    /// Statistics snapshot (pipeline stats copied in).
    pub fn stats(&self) -> RtUnitStats {
        let mut s = self.stats.clone();
        s.pipeline = self.pipeline.stats().clone();
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsu_geometry::point::Metric;

    fn euclid_op(dim: u32) -> ThreadOp {
        ThreadOp::HsuDistance {
            metric: Metric::Euclidean,
            dim,
            candidate_addr: 0x1000,
        }
    }

    fn ray_op(node_addr: u64) -> ThreadOp {
        ThreadOp::HsuRayIntersect {
            node_addr,
            bytes: 128,
            triangle: false,
        }
    }

    fn lanes_with(op: ThreadOp, mask: u32) -> Vec<Option<ThreadOp>> {
        (0..WARP_WIDTH)
            .map(|l| (mask & (1 << l) != 0).then_some(op))
            .collect()
    }

    /// Drives the unit until it drains, answering all memory requests after
    /// `mem_latency` ticks.
    fn run_to_completion(
        unit: &mut TreeletRtUnit,
        mem_latency: u64,
        max: u64,
    ) -> (u64, Vec<usize>) {
        let mut responses: Vec<(u64, EntryId, usize)> = Vec::new();
        let mut all_done = Vec::new();
        for now in 0..max {
            if let Some(req) = unit.peek_fifo() {
                let _ = unit.pop_fifo();
                responses.push((now + mem_latency, req.entry, req.req));
            }
            responses.retain(|&(at, entry, req)| {
                if at == now {
                    unit.on_mem_response(entry, req);
                    false
                } else {
                    true
                }
            });
            unit.tick();
            all_done.extend(unit.take_completed());
            if unit.idle() && !all_done.is_empty() {
                return (now, all_done);
            }
        }
        panic!("unit never went idle; completed so far: {all_done:?}");
    }

    #[test]
    fn single_instruction_completes_with_same_isa_counts_as_baseline() {
        let mut unit = TreeletRtUnit::new(HsuConfig::default(), 4, 4);
        unit.dispatch(7, 0, 1, &lanes_with(ray_op(0), 1), 128)
            .unwrap();
        let (_, done) = run_to_completion(&mut unit, 20, 1000);
        assert_eq!(done, vec![7]);
        let s = unit.stats();
        assert_eq!(s.warp_instructions, 1);
        assert_eq!(s.isa_instructions, 1);
        assert_eq!(s.staging_hits, 0, "cold pool: the first fetch misses");
    }

    #[test]
    fn repeated_node_line_hits_the_staging_pool() {
        let mut unit = TreeletRtUnit::new(HsuConfig::default(), 4, 4);
        unit.dispatch(0, 0, 1, &lanes_with(ray_op(0x100), 1), 128)
            .unwrap();
        let (_, _) = run_to_completion(&mut unit, 10, 1000);
        // Same node line again: satisfied from the staged pool, no fetch.
        unit.dispatch(1, 0, 1, &lanes_with(ray_op(0x100), 1), 128)
            .unwrap();
        assert_eq!(unit.fifo_len(), 0, "staged line needs no fetch");
        let mut guard = 0;
        while unit.take_completed().is_empty() {
            unit.tick();
            guard += 1;
            assert!(guard < 50, "staged dispatch never completed");
        }
        assert_eq!(unit.stats().staging_hits, 1);
    }

    #[test]
    fn fetches_throttle_to_the_staging_capacity() {
        let mut unit = TreeletRtUnit::new(HsuConfig::default(), 4, 2);
        // One entry needing 4 distinct lines (512-byte footprint).
        let op = ThreadOp::HsuDistance {
            metric: Metric::Euclidean,
            dim: 128,
            candidate_addr: 0,
        };
        unit.dispatch(0, 0, 1, &lanes_with(op, 1), 128).unwrap();
        assert_eq!(unit.fifo_len(), 4);
        // Only two fetches may be outstanding at once.
        let a = unit.pop_fifo().expect("first slot free");
        let b = unit.pop_fifo().expect("second slot free");
        assert!(unit.peek_fifo().is_none(), "pool exhausted: FIFO throttled");
        assert!(unit.pop_fifo().is_none());
        // A response frees a slot and re-exposes the queue.
        unit.on_mem_response(a.entry, a.req);
        assert!(unit.peek_fifo().is_some());
        // A rejected fetch releases its reservation too.
        let c = unit.pop_fifo().unwrap();
        assert!(unit.peek_fifo().is_none());
        unit.push_back_front(c);
        assert_eq!(unit.peek_fifo().unwrap(), c);
        unit.on_mem_response(b.entry, b.req);
    }

    #[test]
    fn ray_scheduling_queue_serves_entries_in_ready_order() {
        // Entry B's operands complete before entry A's; the queue must
        // drain B first even though A occupies the lower buffer slot.
        let mut unit = TreeletRtUnit::new(HsuConfig::default(), 4, 4);
        unit.dispatch(0, 0, 1, &lanes_with(euclid_op(16), 1), 128)
            .unwrap();
        unit.dispatch(1, 1, 1, &lanes_with(euclid_op(16), 1), 128)
            .unwrap();
        let a = unit.pop_fifo().unwrap();
        let b = unit.pop_fifo().unwrap();
        unit.on_mem_response(b.entry, b.req);
        unit.on_mem_response(a.entry, a.req);
        let mut done = Vec::new();
        let mut guard = 0;
        while done.len() < 2 {
            unit.tick();
            done.extend(unit.take_completed());
            guard += 1;
            assert!(guard < 100, "entries never drained");
        }
        assert_eq!(done, vec![1, 0], "ready order, not slot order");
    }

    #[test]
    fn treelet_transitions_count_cross_treelet_walks() {
        let mut unit = TreeletRtUnit::new(HsuConfig::default(), 4, 4);
        // Treelet size = 4 lines × 128 B = 512 B. Two nodes inside one
        // treelet, then a jump into another.
        for addr in [0x0u64, 0x180, 0x1000] {
            unit.dispatch(0, 0, 1, &lanes_with(ray_op(addr), 1), 128)
                .unwrap();
            let (_, _) = run_to_completion(&mut unit, 5, 1000);
        }
        assert_eq!(unit.stats().treelet_transitions, 1);
        // A different warp starting fresh is not a transition.
        unit.dispatch(3, 0, 1, &lanes_with(ray_op(0x2000), 1), 128)
            .unwrap();
        run_to_completion(&mut unit, 5, 1000);
        assert_eq!(unit.stats().treelet_transitions, 1);
    }

    #[test]
    fn eviction_keeps_the_pool_bounded() {
        let mut unit = TreeletRtUnit::new(HsuConfig::default(), 4, 2);
        // Three distinct single-line fetches through a 2-slot pool.
        for (warp, addr) in [(0u64, 0x0u64), (1, 0x1000), (2, 0x2000)] {
            unit.dispatch(warp as usize, 0, 1, &lanes_with(ray_op(addr), 1), 128)
                .unwrap();
            run_to_completion(&mut unit, 5, 1000);
        }
        let s = unit.stats();
        assert!(s.staging_evictions >= 1, "third line must evict");
        // The evicted (coldest) line misses; the resident one hits.
        unit.dispatch(3, 0, 1, &lanes_with(ray_op(0x2000), 1), 128)
            .unwrap();
        assert_eq!(unit.fifo_len(), 0, "MRU line still staged");
    }

    #[test]
    fn fast_forward_matches_idle_ticks_while_parked_on_memory() {
        // The cross-mode stats-integration contract, identical to the
        // baseline unit's.
        let build = || {
            let mut u = TreeletRtUnit::new(HsuConfig::default(), 4, 4);
            u.dispatch(0, 0, 1, &lanes_with(euclid_op(32), 1), 128)
                .unwrap();
            while u.pop_fifo().is_some() {}
            u.tick();
            u
        };
        let mut ticked = build();
        let mut skipped = build();
        for _ in 0..100 {
            ticked.tick();
        }
        skipped.fast_forward(100);
        assert_eq!(ticked.stats(), skipped.stats());
        assert_eq!(ticked.stats().occupancy_sum, 101, "1 entry × 101 cycles");
    }

    #[test]
    fn dispatch_errors_match_the_baseline_payloads() {
        let mut treelet = TreeletRtUnit::new(HsuConfig::default(), 4, 4);
        let mut baseline = crate::rt_unit::RtUnit::new(HsuConfig::default(), 4);
        let bad = lanes_with(ThreadOp::Alu { count: 4 }, 1);
        let te = treelet.dispatch(0, 0, 1, &bad, 128).expect_err("non-HSU");
        let be = baseline.dispatch(0, 0, 1, &bad, 128).expect_err("non-HSU");
        assert_eq!(te.to_string(), be.to_string(), "identical error payloads");
        // Plan-before-commit: nothing was allocated or counted.
        assert!(treelet.idle());
        assert_eq!(treelet.stats().warp_instructions, 0);
        assert_eq!(treelet.fifo_len(), 0);
    }

    #[test]
    fn dispatch_into_full_buffer_is_a_typed_error() {
        let cfg = HsuConfig::default().with_warp_buffer(1);
        let mut unit = TreeletRtUnit::new(cfg, 4, 4);
        unit.dispatch(0, 0, 1, &lanes_with(euclid_op(16), 1), 128)
            .unwrap();
        let err = unit
            .dispatch(1, 1, 1, &lanes_with(euclid_op(16), 1), 128)
            .expect_err("full buffer must reject");
        assert!(matches!(err, SimError::IllegalDispatch { .. }));
        assert_eq!(unit.warp_buffer_occupancy(), 1);
    }

    #[test]
    fn baseline_rt_config_rejects_extensions() {
        let unit = TreeletRtUnit::new(HsuConfig::baseline_rt(), 4, 4);
        assert!(unit.supports(&ray_op(0)));
        assert!(!unit.supports(&euclid_op(16)));
    }
}
