//! Typed error taxonomy for the simulation path.
//!
//! Every user-reachable failure mode of the simulator surfaces as a
//! [`SimError`] instead of a panic: malformed traces, nonsense configs,
//! illegal op dispatch, exceeded deadlock guards, and cooperative watchdog
//! aborts. The deadlock variant carries a full per-SM diagnostic snapshot
//! ([`DeadlockReport`]) so a stuck run is actionable data, not a bare
//! message.
//!
//! Internal invariants (e.g. a warp-buffer entry without an owner) remain
//! `unreachable!` panics: they indicate simulator bugs, not bad input, and
//! the fault-injection harness (`faults.rs`) asserts they cannot be reached
//! from corrupted inputs.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Why a simulation failed. See the module docs for the taxonomy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The kernel exceeded its cycle guard without completing. Boxed: the
    /// diagnostic snapshot is large and errors travel by value.
    Deadlock(Box<DeadlockReport>),
    /// A trace byte stream failed to decode (bad magic/version/tag,
    /// truncation, or an implausible length field).
    TraceDecode {
        /// Human-readable description of the decode failure.
        detail: String,
    },
    /// A [`GpuConfig`](crate::config::GpuConfig) field is out of range.
    InvalidConfig {
        /// The offending field, as named in `GpuConfig`.
        field: &'static str,
        /// The rejected value, rendered.
        value: String,
        /// Why the value is rejected.
        reason: &'static str,
    },
    /// The run was stopped by a cooperative watchdog (wall-clock deadline
    /// or external cancellation), not by the simulated machine.
    Watchdog {
        /// Name of the kernel that was aborted.
        kernel: String,
        /// How many cycles had been simulated when the watchdog fired.
        cycles_simulated: u64,
        /// What tripped the watchdog.
        cause: WatchdogCause,
    },
    /// An instruction was routed to a unit that cannot execute it (e.g. an
    /// HSU op reaching a baseline RT unit, or a completion delivered to a
    /// warp that was not waiting for one).
    IllegalDispatch {
        /// Human-readable description of the dispatch violation.
        detail: String,
    },
    /// An I/O error outside the decode path (opening, reading, or writing
    /// trace/report files).
    Io {
        /// What was being done when the error occurred (usually a path).
        context: String,
        /// The underlying OS error, rendered.
        detail: String,
    },
}

/// What tripped a [`SimError::Watchdog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchdogCause {
    /// A [`CancelToken`] observed by the run was cancelled.
    Cancelled,
    /// The wall-clock deadline in [`RunLimits::deadline`] passed.
    Deadline,
}

impl SimError {
    /// Wraps an I/O error, mapping decode-shaped failures
    /// (`InvalidData`/`UnexpectedEof`) to [`SimError::TraceDecode`] and
    /// everything else to [`SimError::Io`].
    pub fn from_io(context: impl Into<String>, err: std::io::Error) -> Self {
        match err.kind() {
            std::io::ErrorKind::InvalidData | std::io::ErrorKind::UnexpectedEof => {
                SimError::TraceDecode {
                    detail: format!("{}: {err}", context.into()),
                }
            }
            _ => SimError::Io {
                context: context.into(),
                detail: err.to_string(),
            },
        }
    }

    /// Lifts a typed archive failure into the simulator's taxonomy: OS-level
    /// failures stay [`SimError::Io`]; every corruption class (bad magic,
    /// version skew, truncation, checksum or key mismatches, malformed
    /// payloads) is data that cannot be decoded, i.e.
    /// [`SimError::TraceDecode`] — the same split [`SimError::from_io`]
    /// applies to the raw `.hsut` stream.
    pub fn from_archive(context: impl Into<String>, err: hsu_archive::ArchiveError) -> Self {
        match err {
            hsu_archive::ArchiveError::Io { context: c, detail } => SimError::Io {
                context: format!("{}: {c}", context.into()),
                detail,
            },
            other => SimError::TraceDecode {
                detail: format!("{}: {other}", context.into()),
            },
        }
    }

    /// Short lowercase tag for the variant, for status tables and logs.
    pub fn kind(&self) -> &'static str {
        match self {
            SimError::Deadlock(_) => "deadlock",
            SimError::TraceDecode { .. } => "trace-decode",
            SimError::InvalidConfig { .. } => "invalid-config",
            SimError::Watchdog { .. } => "watchdog",
            SimError::IllegalDispatch { .. } => "illegal-dispatch",
            SimError::Io { .. } => "io",
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock(report) => write!(f, "{report}"),
            SimError::TraceDecode { detail } => write!(f, "trace decode failed: {detail}"),
            SimError::InvalidConfig {
                field,
                value,
                reason,
            } => write!(f, "invalid config: {field} = {value} ({reason})"),
            SimError::Watchdog {
                kernel,
                cycles_simulated,
                cause,
            } => {
                let cause = match cause {
                    WatchdogCause::Cancelled => "cancelled",
                    WatchdogCause::Deadline => "wall-clock deadline exceeded",
                };
                write!(
                    f,
                    "watchdog stopped kernel '{kernel}' after {cycles_simulated} \
                     simulated cycles: {cause}"
                )
            }
            SimError::IllegalDispatch { detail } => write!(f, "illegal dispatch: {detail}"),
            SimError::Io { context, detail } => write!(f, "io error ({context}): {detail}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Diagnostic payload of [`SimError::Deadlock`]: what every SM was doing
/// when the run hit its cycle guard.
///
/// Every field is *mode-invariant*: a deadlocked kernel produces an
/// identical report under `SimMode::Stepped` and `SimMode::Event`, even
/// though event mode may detect the guard crossing early (before grinding
/// cycle by cycle up to the boundary). That property is pinned by
/// regression tests in `gpu.rs` and `tests/fault_injection.rs`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadlockReport {
    /// Name of the kernel that deadlocked.
    pub kernel: String,
    /// The guard boundary (`GpuConfig::max_cycles`) the kernel failed to
    /// finish within.
    pub cycle: u64,
    /// Whether the memory hierarchy had drained (a deadlock with quiescent
    /// memory points at the SMs; one with in-flight memory points at the
    /// guard being too tight for the access latencies).
    pub mem_quiescent: bool,
    /// Per-SM stall snapshot, indexed by SM.
    pub per_sm: Vec<SmDeadlockState>,
}

impl fmt::Display for DeadlockReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The first line intentionally preserves the wording of the old
        // deadlock-guard panic message.
        writeln!(
            f,
            "kernel '{}' exceeded the {}-cycle guard (memory {}):",
            self.kernel,
            self.cycle,
            if self.mem_quiescent {
                "quiescent"
            } else {
                "in flight"
            }
        )?;
        for sm in &self.per_sm {
            writeln!(f, "  {sm}")?;
        }
        write!(
            f,
            "  hint: raise GpuConfig::max_cycles if the workload is simply \
             long; a stuck last-issue cycle far below the guard indicates a \
             genuine stall"
        )
    }
}

/// One SM's stall snapshot inside a [`DeadlockReport`].
///
/// Warp counts classify every resident warp; queue depths and occupancies
/// capture where work is parked. `last_issue_cycle` is the last cycle at
/// which this SM issued any instruction (`None` if it never issued) — the
/// "last progress" marker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmDeadlockState {
    /// SM index.
    pub sm: usize,
    /// Resident (non-`Finished`) warps.
    pub resident: usize,
    /// Warps ready to issue (includes timer waits that expire before the
    /// guard boundary — see `Sm::deadlock_state` for the normalization).
    pub ready: usize,
    /// Warps waiting on a timer that expires at or beyond the guard.
    pub waiting_timer: usize,
    /// Warps waiting on a memory response.
    pub waiting_mem: usize,
    /// Warps waiting on the HSU/RT unit.
    pub waiting_hsu: usize,
    /// Warps that retired all their instructions.
    pub finished: usize,
    /// Warps still queued for a resident slot.
    pub launch_queue: usize,
    /// Pending LSU accesses not yet accepted by L1.
    pub lsu_queue: usize,
    /// Memory requests sitting in the RT unit's fetch FIFO.
    pub rt_fifo: usize,
    /// Occupied RT warp-buffer entries.
    pub warp_buffer_occupancy: usize,
    /// L1 MSHRs with misses in flight for this SM.
    pub mshrs_in_flight: usize,
    /// Warps retired so far.
    pub warps_retired: u64,
    /// Last cycle this SM issued any instruction.
    pub last_issue_cycle: Option<u64>,
}

impl fmt::Display for SmDeadlockState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sm{}: warps {} resident ({} ready, {} timer, {} mem, {} hsu), \
             {} finished, {} queued; lsu-q {}, rt-fifo {}, warp-buffer {}, \
             mshrs {}; retired {}, last issue {}",
            self.sm,
            self.resident,
            self.ready,
            self.waiting_timer,
            self.waiting_mem,
            self.waiting_hsu,
            self.finished,
            self.launch_queue,
            self.lsu_queue,
            self.rt_fifo,
            self.warp_buffer_occupancy,
            self.mshrs_in_flight,
            self.warps_retired,
            match self.last_issue_cycle {
                Some(c) => c.to_string(),
                None => "never".to_string(),
            }
        )
    }
}

/// Shared flag for cooperatively cancelling an in-flight simulation.
///
/// Clone the token, hand one clone to [`Gpu::run_guarded`] via
/// [`RunLimits`], and call [`CancelToken::cancel`] from any thread; the run
/// loop checks the flag every iteration and returns
/// [`SimError::Watchdog`] with [`WatchdogCause::Cancelled`].
///
/// [`Gpu::run_guarded`]: crate::Gpu::run_guarded
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; visible to all clones.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Cooperative limits on a single simulation run.
///
/// Both limits are optional; [`RunLimits::default`] imposes none, making
/// `run_guarded(kernel, &RunLimits::default())` equivalent to `run(kernel)`.
#[derive(Debug, Clone, Default)]
pub struct RunLimits {
    /// Checked every run-loop iteration (a relaxed atomic load).
    pub cancel: Option<CancelToken>,
    /// Wall-clock deadline, checked every 1024 iterations (so healthy runs
    /// do not pay a syscall per simulated event).
    pub deadline: Option<Instant>,
}

impl RunLimits {
    /// No limits: run to completion or the cycle guard.
    pub fn none() -> Self {
        Self::default()
    }

    /// Adds a cancellation token.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Adds a wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_token_is_shared_across_clones() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!b.is_cancelled());
        a.cancel();
        assert!(b.is_cancelled());
    }

    #[test]
    fn from_io_maps_decode_kinds_to_trace_decode() {
        use std::io::{Error, ErrorKind};
        let e = SimError::from_io("t.hsut", Error::new(ErrorKind::InvalidData, "bad tag"));
        assert!(matches!(e, SimError::TraceDecode { .. }));
        let e = SimError::from_io("t.hsut", Error::new(ErrorKind::PermissionDenied, "nope"));
        assert!(matches!(e, SimError::Io { .. }));
        assert_eq!(e.kind(), "io");
    }

    #[test]
    fn deadlock_display_preserves_guard_wording_and_lists_sms() {
        let report = DeadlockReport {
            kernel: "k".into(),
            cycle: 500,
            mem_quiescent: true,
            per_sm: vec![SmDeadlockState {
                sm: 0,
                resident: 1,
                ready: 0,
                waiting_timer: 1,
                waiting_mem: 0,
                waiting_hsu: 0,
                finished: 0,
                launch_queue: 0,
                lsu_queue: 0,
                rt_fifo: 0,
                warp_buffer_occupancy: 0,
                mshrs_in_flight: 0,
                warps_retired: 0,
                last_issue_cycle: Some(0),
            }],
        };
        let text = SimError::Deadlock(Box::new(report)).to_string();
        assert!(text.contains("kernel 'k' exceeded the 500-cycle guard"));
        assert!(text.contains("sm0:"));
        assert!(text.contains("last issue 0"));
    }
}
