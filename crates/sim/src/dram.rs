//! HBM channel model with FR-FCFS row-buffer scheduling.
//!
//! First-Ready, First-Come-First-Served: each cycle a channel prefers the
//! oldest request targeting its bank's open row; failing that, the oldest
//! request overall (§VI-J). Row hits are served in `row_hit_cycles`, misses
//! pay precharge + activate. The per-channel data bus is busy for
//! `transfer_cycles` per line, bounding bandwidth.

use std::collections::VecDeque;

/// Row-locality statistics (Fig. 14's metric is accesses per activation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Serviced requests.
    pub accesses: u64,
    /// Requests that hit an open row.
    pub row_hits: u64,
    /// Row activations (precharge + activate sequences).
    pub activations: u64,
}

impl DramStats {
    /// Mean accesses per row activation — the paper's "average memory row
    /// access locality".
    pub fn row_locality(&self) -> f64 {
        if self.activations == 0 {
            0.0
        } else {
            self.accesses as f64 / self.activations as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct DramRequest {
    token: u64,
    bank: usize,
    row: u64,
    arrival: u64,
}

/// One HBM channel: banked row buffers, an FR-FCFS queue, one data bus.
#[derive(Debug)]
pub struct DramChannel {
    open_rows: Vec<Option<u64>>,
    queue: VecDeque<DramRequest>,
    bus_free_at: u64,
    bank_free_at: Vec<u64>,
    row_hit_cycles: u64,
    row_miss_cycles: u64,
    transfer_cycles: u64,
    stats: DramStats,
}

impl DramChannel {
    /// Creates a channel with `banks` banks.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is zero.
    pub fn new(
        banks: usize,
        row_hit_cycles: u64,
        row_miss_cycles: u64,
        transfer_cycles: u64,
    ) -> Self {
        assert!(banks > 0, "channel needs at least one bank");
        DramChannel {
            open_rows: vec![None; banks],
            queue: VecDeque::new(),
            bus_free_at: 0,
            bank_free_at: vec![0; banks],
            row_hit_cycles,
            row_miss_cycles,
            transfer_cycles,
            stats: DramStats::default(),
        }
    }

    /// Enqueues a line fetch. `token` is returned on completion.
    pub fn enqueue(&mut self, token: u64, bank: usize, row: u64, now: u64) {
        debug_assert!(bank < self.open_rows.len(), "bank {bank} out of range");
        self.queue.push_back(DramRequest {
            token,
            bank,
            row,
            arrival: now,
        });
    }

    /// Number of queued requests.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// The earliest cycle at which [`DramChannel::tick`] can begin serving a
    /// queued request, or `None` when the queue is empty.
    ///
    /// This is the channel's `next_event` contract for the event-driven run
    /// loop: service requires the command/data bus free (`bus_free_at`) and
    /// *some* queued request whose bank is free, so the earliest productive
    /// tick is `max(bus_free_at, min over queued requests of their bank's
    /// free time)`. Ticks strictly before that cycle are provably no-ops;
    /// a tick at exactly that cycle serves a request. Completions already in
    /// flight are not represented here — they were returned by `tick` as
    /// absolute `(finish, token)` pairs and live in the caller's event heap.
    pub fn next_service_cycle(&self) -> Option<u64> {
        let bank_ready = self.queue.iter().map(|r| self.bank_free_at[r.bank]).min()?;
        Some(bank_ready.max(self.bus_free_at))
    }

    /// Advances one cycle; returns completed tokens.
    ///
    /// At most one request begins service per cycle (command bus); its
    /// completion is scheduled `service + transfer` cycles later.
    pub fn tick(&mut self, now: u64, completed: &mut Vec<(u64, u64)>) {
        // Completions are tracked externally via the (finish_cycle, token)
        // pairs this function emits; nothing to poll here.
        if self.queue.is_empty() || self.bus_free_at > now {
            return;
        }
        // FR-FCFS pick: oldest row hit on a free bank, else oldest on a free
        // bank.
        let pick = self
            .queue
            .iter()
            .enumerate()
            .filter(|(_, r)| self.bank_free_at[r.bank] <= now)
            .find(|(_, r)| self.open_rows[r.bank] == Some(r.row))
            .map(|(i, _)| i)
            .or_else(|| {
                self.queue
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| self.bank_free_at[r.bank] <= now)
                    .min_by_key(|(_, r)| r.arrival)
                    .map(|(i, _)| i)
            });
        let Some(idx) = pick else { return };
        let Some(req) = self.queue.remove(idx) else {
            unreachable!("picked index came from enumerating the queue");
        };
        let hit = self.open_rows[req.bank] == Some(req.row);
        let service = if hit {
            self.stats.row_hits += 1;
            self.row_hit_cycles
        } else {
            self.stats.activations += 1;
            self.open_rows[req.bank] = Some(req.row);
            self.row_miss_cycles
        };
        self.stats.accesses += 1;
        let finish = now + service + self.transfer_cycles;
        self.bank_free_at[req.bank] = now + service;
        self.bus_free_at = now + self.transfer_cycles; // bus occupancy per line
        completed.push((finish, req.token));
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(ch: &mut DramChannel, until: u64) -> Vec<(u64, u64)> {
        let mut done = Vec::new();
        for now in 0..until {
            ch.tick(now, &mut done);
        }
        done.sort();
        done
    }

    #[test]
    fn sequential_same_row_hits() {
        let mut ch = DramChannel::new(4, 20, 48, 4);
        for i in 0..8 {
            ch.enqueue(i, 0, 100, 0);
        }
        let done = drain(&mut ch, 500);
        assert_eq!(done.len(), 8);
        let s = ch.stats();
        assert_eq!(s.accesses, 8);
        assert_eq!(s.activations, 1, "one activation for the run");
        assert_eq!(s.row_hits, 7);
        assert!((s.row_locality() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn alternating_rows_thrash_without_fr() {
        // Two rows on ONE bank, interleaved arrivals: FR-FCFS reorders to
        // serve the open row first, beating strict FCFS's 8 activations.
        let mut ch = DramChannel::new(1, 20, 48, 4);
        for i in 0..8 {
            ch.enqueue(i, 0, i % 2, 0);
        }
        drain(&mut ch, 2000);
        let s = ch.stats();
        assert_eq!(s.accesses, 8);
        assert!(
            s.activations <= 3,
            "FR-FCFS should batch rows, got {} activations",
            s.activations
        );
    }

    #[test]
    fn banks_service_in_parallel() {
        let mut ch = DramChannel::new(4, 20, 48, 4);
        for b in 0..4 {
            ch.enqueue(b as u64, b, 0, 0);
        }
        let done = drain(&mut ch, 200);
        // Transfers serialize on the bus (4 cycles each) but the row misses
        // overlap across banks: all four must finish well before 4 * 52.
        let last = done.iter().map(|&(t, _)| t).max().unwrap();
        assert!(last < 100, "banks did not overlap: last finish {last}");
    }

    #[test]
    fn fcfs_order_for_distinct_rows_same_bank() {
        let mut ch = DramChannel::new(1, 20, 48, 4);
        ch.enqueue(0, 0, 5, 0);
        ch.enqueue(1, 0, 6, 1);
        let done = drain(&mut ch, 1000);
        assert_eq!(done[0].1, 0, "older request first when neither row is open");
    }

    #[test]
    fn row_locality_zero_when_idle() {
        let ch = DramChannel::new(2, 20, 48, 4);
        assert_eq!(ch.stats().row_locality(), 0.0);
    }

    #[test]
    fn exact_cycles_for_row_miss_then_hit_on_one_bank() {
        // Pin the FR-FCFS timing contract cycle-for-cycle: a row miss pays
        // 48 + 4 transfer (finish 52), holds the bank until 48 and the bus
        // until 4; the same-row follow-up cannot start before the bank frees
        // at 48 and finishes at 48 + 20 + 4 = 72.
        let mut ch = DramChannel::new(1, 20, 48, 4);
        ch.enqueue(10, 0, 7, 0);
        ch.enqueue(11, 0, 7, 0);
        let mut done = Vec::new();
        ch.tick(0, &mut done);
        assert_eq!(done, vec![(52, 10)], "miss: 48 service + 4 transfer");
        assert_eq!(ch.next_service_cycle(), Some(48), "bank busy until 48");
        // Every tick strictly before the predicted cycle is a no-op.
        for now in 1..48 {
            ch.tick(now, &mut done);
            assert_eq!(done.len(), 1, "early service at cycle {now}");
        }
        ch.tick(48, &mut done);
        assert_eq!(done[1], (72, 11), "hit: starts at 48, 20 + 4 cycles");
        assert_eq!(ch.next_service_cycle(), None, "queue drained");
        assert_eq!(ch.stats().row_hits, 1);
        assert_eq!(ch.stats().activations, 1);
    }

    #[test]
    fn fr_fcfs_serves_open_row_before_older_request() {
        // Bank 0's row 5 is open; an older request to row 6 waits while the
        // younger row-5 request is served first (the "first-ready" half of
        // FR-FCFS), and the row-6 request's activation starts only when the
        // bank frees.
        let mut ch = DramChannel::new(1, 20, 48, 4);
        ch.enqueue(0, 0, 5, 0);
        let mut done = Vec::new();
        ch.tick(0, &mut done); // opens row 5; bank busy until 48
        done.clear();
        ch.enqueue(1, 0, 6, 10); // older
        ch.enqueue(2, 0, 5, 20); // younger, but row 5 is open
        assert_eq!(ch.next_service_cycle(), Some(48));
        ch.tick(48, &mut done);
        assert_eq!(done, vec![(72, 2)], "open-row request wins at 48");
        // Row-6 activation begins when the bank frees again at 68.
        assert_eq!(ch.next_service_cycle(), Some(68));
        ch.tick(68, &mut done);
        assert_eq!(done[1], (120, 1), "68 + 48 + 4");
        assert_eq!(ch.stats().activations, 2);
    }

    #[test]
    fn next_service_cycle_predicts_every_service_exactly() {
        // Differential check of the next_event contract over a mixed queue:
        // ticking cycle by cycle, the channel serves exactly at the cycles
        // `next_service_cycle` predicted and never in between.
        let mut ch = DramChannel::new(2, 20, 48, 4);
        for i in 0..10u64 {
            ch.enqueue(i, (i % 2) as usize, i % 3, i / 2);
        }
        let mut done = Vec::new();
        let mut now = 0u64;
        while let Some(at) = ch.next_service_cycle() {
            assert!(at >= now, "prediction {at} in the past (now {now})");
            let before = done.len();
            for t in now..at {
                ch.tick(t, &mut done);
                assert_eq!(done.len(), before, "unpredicted service at {t}");
            }
            ch.tick(at, &mut done);
            assert_eq!(done.len(), before + 1, "no service at predicted {at}");
            now = at + 1;
        }
        assert_eq!(done.len(), 10);
        assert_eq!(ch.stats().accesses, 10);
    }

    #[test]
    fn bus_occupancy_gates_parallel_banks() {
        // Two banks both free: the second service waits only for the shared
        // bus (4 cycles), pinning the bus half of next_service_cycle.
        let mut ch = DramChannel::new(2, 20, 48, 4);
        ch.enqueue(0, 0, 1, 0);
        ch.enqueue(1, 1, 1, 0);
        let mut done = Vec::new();
        ch.tick(0, &mut done);
        assert_eq!(ch.next_service_cycle(), Some(4), "bus frees at 4");
        for t in 1..4 {
            ch.tick(t, &mut done);
        }
        assert_eq!(done.len(), 1);
        ch.tick(4, &mut done);
        assert_eq!(done.len(), 2);
        assert_eq!(done[1], (4 + 48 + 4, 1));
    }
}
