//! HBM channel model with FR-FCFS row-buffer scheduling.
//!
//! First-Ready, First-Come-First-Served: each cycle a channel prefers the
//! oldest request targeting its bank's open row; failing that, the oldest
//! request overall (§VI-J). Row hits are served in `row_hit_cycles`, misses
//! pay precharge + activate. The per-channel data bus is busy for
//! `transfer_cycles` per line, bounding bandwidth.

use std::collections::VecDeque;

/// Row-locality statistics (Fig. 14's metric is accesses per activation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Serviced requests.
    pub accesses: u64,
    /// Requests that hit an open row.
    pub row_hits: u64,
    /// Row activations (precharge + activate sequences).
    pub activations: u64,
}

impl DramStats {
    /// Mean accesses per row activation — the paper's "average memory row
    /// access locality".
    pub fn row_locality(&self) -> f64 {
        if self.activations == 0 {
            0.0
        } else {
            self.accesses as f64 / self.activations as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct DramRequest {
    token: u64,
    bank: usize,
    row: u64,
    arrival: u64,
}

/// One HBM channel: banked row buffers, an FR-FCFS queue, one data bus.
#[derive(Debug)]
pub struct DramChannel {
    open_rows: Vec<Option<u64>>,
    queue: VecDeque<DramRequest>,
    bus_free_at: u64,
    bank_free_at: Vec<u64>,
    row_hit_cycles: u64,
    row_miss_cycles: u64,
    transfer_cycles: u64,
    stats: DramStats,
}

impl DramChannel {
    /// Creates a channel with `banks` banks.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is zero.
    pub fn new(
        banks: usize,
        row_hit_cycles: u64,
        row_miss_cycles: u64,
        transfer_cycles: u64,
    ) -> Self {
        assert!(banks > 0, "channel needs at least one bank");
        DramChannel {
            open_rows: vec![None; banks],
            queue: VecDeque::new(),
            bus_free_at: 0,
            bank_free_at: vec![0; banks],
            row_hit_cycles,
            row_miss_cycles,
            transfer_cycles,
            stats: DramStats::default(),
        }
    }

    /// Enqueues a line fetch. `token` is returned on completion.
    pub fn enqueue(&mut self, token: u64, bank: usize, row: u64, now: u64) {
        debug_assert!(bank < self.open_rows.len(), "bank {bank} out of range");
        self.queue.push_back(DramRequest {
            token,
            bank,
            row,
            arrival: now,
        });
    }

    /// Number of queued requests.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Advances one cycle; returns completed tokens.
    ///
    /// At most one request begins service per cycle (command bus); its
    /// completion is scheduled `service + transfer` cycles later.
    pub fn tick(&mut self, now: u64, completed: &mut Vec<(u64, u64)>) {
        // Completions are tracked externally via the (finish_cycle, token)
        // pairs this function emits; nothing to poll here.
        if self.queue.is_empty() || self.bus_free_at > now {
            return;
        }
        // FR-FCFS pick: oldest row hit on a free bank, else oldest on a free
        // bank.
        let pick = self
            .queue
            .iter()
            .enumerate()
            .filter(|(_, r)| self.bank_free_at[r.bank] <= now)
            .find(|(_, r)| self.open_rows[r.bank] == Some(r.row))
            .map(|(i, _)| i)
            .or_else(|| {
                self.queue
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| self.bank_free_at[r.bank] <= now)
                    .min_by_key(|(_, r)| r.arrival)
                    .map(|(i, _)| i)
            });
        let Some(idx) = pick else { return };
        let req = self.queue.remove(idx).expect("index from enumerate");
        let hit = self.open_rows[req.bank] == Some(req.row);
        let service = if hit {
            self.stats.row_hits += 1;
            self.row_hit_cycles
        } else {
            self.stats.activations += 1;
            self.open_rows[req.bank] = Some(req.row);
            self.row_miss_cycles
        };
        self.stats.accesses += 1;
        let finish = now + service + self.transfer_cycles;
        self.bank_free_at[req.bank] = now + service;
        self.bus_free_at = now + self.transfer_cycles; // bus occupancy per line
        completed.push((finish, req.token));
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(ch: &mut DramChannel, until: u64) -> Vec<(u64, u64)> {
        let mut done = Vec::new();
        for now in 0..until {
            ch.tick(now, &mut done);
        }
        done.sort();
        done
    }

    #[test]
    fn sequential_same_row_hits() {
        let mut ch = DramChannel::new(4, 20, 48, 4);
        for i in 0..8 {
            ch.enqueue(i, 0, 100, 0);
        }
        let done = drain(&mut ch, 500);
        assert_eq!(done.len(), 8);
        let s = ch.stats();
        assert_eq!(s.accesses, 8);
        assert_eq!(s.activations, 1, "one activation for the run");
        assert_eq!(s.row_hits, 7);
        assert!((s.row_locality() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn alternating_rows_thrash_without_fr() {
        // Two rows on ONE bank, interleaved arrivals: FR-FCFS reorders to
        // serve the open row first, beating strict FCFS's 8 activations.
        let mut ch = DramChannel::new(1, 20, 48, 4);
        for i in 0..8 {
            ch.enqueue(i, 0, i % 2, 0);
        }
        drain(&mut ch, 2000);
        let s = ch.stats();
        assert_eq!(s.accesses, 8);
        assert!(
            s.activations <= 3,
            "FR-FCFS should batch rows, got {} activations",
            s.activations
        );
    }

    #[test]
    fn banks_service_in_parallel() {
        let mut ch = DramChannel::new(4, 20, 48, 4);
        for b in 0..4 {
            ch.enqueue(b as u64, b, 0, 0);
        }
        let done = drain(&mut ch, 200);
        // Transfers serialize on the bus (4 cycles each) but the row misses
        // overlap across banks: all four must finish well before 4 * 52.
        let last = done.iter().map(|&(t, _)| t).max().unwrap();
        assert!(last < 100, "banks did not overlap: last finish {last}");
    }

    #[test]
    fn fcfs_order_for_distinct_rows_same_bank() {
        let mut ch = DramChannel::new(1, 20, 48, 4);
        ch.enqueue(0, 0, 5, 0);
        ch.enqueue(1, 0, 6, 1);
        let done = drain(&mut ch, 1000);
        assert_eq!(done[0].1, 0, "older request first when neither row is open");
    }

    #[test]
    fn row_locality_zero_when_idle() {
        let ch = DramChannel::new(2, 20, 48, 4);
        assert_eq!(ch.stats().row_locality(), 0.0);
    }
}
