//! Packing kernel traces into `.hsar` archives.
//!
//! A trace chunk ([`hsu_archive::kind::TRACE`]) carries the existing packed
//! `HSUT` stream produced by [`crate::trace_io::write_trace`], unchanged —
//! the archive adds the group tree, per-chunk checksums, and the content
//! key on top, so a trace archive is corruption-evident and cache-keyed
//! while the inner stream format stays the single source of truth.
//!
//! All traces of one suite cell live in one archive under the `traces`
//! group (e.g. `traces/hsu`, `traces/base`, `traces/stripped`), written
//! atomically. Errors surface through [`SimError::from_archive`]: OS
//! failures as [`SimError::Io`], every corruption as
//! [`SimError::TraceDecode`].

use std::path::Path;

use hsu_archive::{kind, ArchiveWriter, FileArchive, SliceArchive};

use crate::error::SimError;
use crate::trace::KernelTrace;
use crate::trace_io::{read_trace, write_trace};

/// Group holding the per-variant trace chunks.
pub const TRACES_GROUP: &str = "traces";

fn build_writer(key: &str, traces: &[(&str, &KernelTrace)]) -> Result<ArchiveWriter, SimError> {
    let mut w = ArchiveWriter::new();
    w.set_key(key);
    w.begin_group(TRACES_GROUP);
    for (name, trace) in traces {
        let mut payload = Vec::new();
        write_trace(trace, &mut payload)
            .map_err(|e| SimError::from_io(format!("encode trace '{name}'"), e))?;
        w.add_chunk(name, kind::TRACE, &payload);
    }
    w.end_group();
    Ok(w)
}

/// Encodes `traces` (name → trace) into a keyed archive image.
pub fn encode_trace_archive(
    key: &str,
    traces: &[(&str, &KernelTrace)],
) -> Result<Vec<u8>, SimError> {
    Ok(build_writer(key, traces)?.finish())
}

/// Decodes the named traces from an archive image, verifying the content
/// key first. Order of the result matches `names`.
pub fn decode_trace_archive(
    bytes: &[u8],
    key: &str,
    names: &[&str],
) -> Result<Vec<KernelTrace>, SimError> {
    let context = "trace archive";
    let archive = SliceArchive::parse(bytes).map_err(|e| SimError::from_archive(context, e))?;
    archive
        .expect_key(key)
        .map_err(|e| SimError::from_archive(context, e))?;
    names
        .iter()
        .map(|name| {
            let path = format!("{TRACES_GROUP}/{name}");
            let payload = archive
                .read(&path, kind::TRACE)
                .map_err(|e| SimError::from_archive(context, e))?;
            read_trace(payload).map_err(|e| SimError::from_io(path, e))
        })
        .collect()
}

/// Writes a trace archive to `path` atomically (tmp + rename).
pub fn write_trace_archive(
    path: &Path,
    key: &str,
    traces: &[(&str, &KernelTrace)],
) -> Result<(), SimError> {
    build_writer(key, traces)?
        .finish_to_file(path)
        .map_err(|e| SimError::from_archive(path.display().to_string(), e))
}

/// Streams the named traces out of the archive at `path`, verifying the
/// content key first. A key mismatch (stale cache file) is a
/// [`SimError::TraceDecode`]; the cache layer treats it as a miss.
pub fn read_trace_archive(
    path: &Path,
    key: &str,
    names: &[&str],
) -> Result<Vec<KernelTrace>, SimError> {
    let context = path.display().to_string();
    let mut archive =
        FileArchive::open(path).map_err(|e| SimError::from_archive(context.clone(), e))?;
    archive
        .expect_key(key)
        .map_err(|e| SimError::from_archive(context.clone(), e))?;
    names
        .iter()
        .map(|name| {
            let chunk_path = format!("{TRACES_GROUP}/{name}");
            let payload = archive
                .read(&chunk_path, kind::TRACE)
                .map_err(|e| SimError::from_archive(context.clone(), e))?;
            read_trace(payload.as_slice())
                .map_err(|e| SimError::from_io(format!("{context}:{chunk_path}"), e))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{ThreadOp, ThreadTrace};

    fn sample(name: &str, threads: u64) -> KernelTrace {
        let mut k = KernelTrace::new(name);
        for t in 0..threads {
            let mut tt = ThreadTrace::new();
            tt.push(ThreadOp::Alu {
                count: 1 + t as u32 % 3,
            });
            tt.push(ThreadOp::Load {
                addr: t * 64,
                bytes: 8,
            });
            k.push_thread(tt);
        }
        k
    }

    #[test]
    fn trace_archive_round_trips_in_memory_and_on_disk() {
        let hsu = sample("hsu", 8);
        let base = sample("base", 6);
        let pairs = [("hsu", &hsu), ("base", &base)];
        let bytes = encode_trace_archive("k1", &pairs).unwrap();
        let back = decode_trace_archive(&bytes, "k1", &["hsu", "base"]).unwrap();
        assert_eq!(back[0], hsu);
        assert_eq!(back[1], base);
        // Re-encoding the decoded traces reproduces the archive byte for
        // byte: the parity guarantee, end to end.
        let pairs2 = [("hsu", &back[0]), ("base", &back[1])];
        assert_eq!(encode_trace_archive("k1", &pairs2).unwrap(), bytes);

        let dir = std::env::temp_dir().join(format!("hsar-sim-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("traces.hsar");
        write_trace_archive(&path, "k1", &pairs).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), bytes);
        let streamed = read_trace_archive(&path, "k1", &["base"]).unwrap();
        assert_eq!(streamed[0], base);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn key_mismatch_and_missing_name_are_trace_decode_errors() {
        let hsu = sample("hsu", 4);
        let bytes = encode_trace_archive("right-key", &[("hsu", &hsu)]).unwrap();
        let err = decode_trace_archive(&bytes, "wrong-key", &["hsu"]).unwrap_err();
        assert_eq!(err.kind(), "trace-decode");
        let err = decode_trace_archive(&bytes, "right-key", &["stripped"]).unwrap_err();
        assert_eq!(err.kind(), "trace-decode");
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err =
            read_trace_archive(Path::new("/nonexistent/nope.hsar"), "k", &["hsu"]).unwrap_err();
        assert_eq!(err.kind(), "io");
    }
}
