//! The streaming multiprocessor: resident warps, GTO scheduling per
//! sub-core, the load-store path, and the shared RT/HSU unit.

use std::collections::VecDeque;

use crate::config::GpuConfig;
use crate::error::{SimError, SmDeadlockState};
use crate::memory::{AccessOutcome, MemPort, Requester};
use crate::rt_core::RtCore;
use crate::trace::{OpClass, ThreadOp, WarpInstruction, WarpTrace};

/// Waiter-token encoding: bit 63 selects RT-unit responses.
const RT_FLAG: u64 = 1 << 63;

/// Execution state of a resident warp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WarpStatus {
    /// May issue its next instruction.
    Ready,
    /// Blocked until a fixed cycle (ALU / shared latency).
    WaitUntil(u64),
    /// Blocked on `outstanding` memory lines.
    WaitMem(u32),
    /// Blocked on the RT/HSU unit's writeback.
    WaitHsu,
    /// Trace exhausted.
    Finished,
}

#[derive(Debug)]
struct WarpSlot {
    trace: WarpTrace,
    pc: usize,
    status: WarpStatus,
    sub_core: usize,
    /// Global program-order id (GTO's "oldest" tiebreak).
    age: u64,
}

/// Per-SM statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SmStats {
    /// Warp instructions issued, by class.
    pub issued: [u64; 7],
    /// Expanded instruction count (Alu/Shared runs weighted by max lane
    /// count), by class — the paper's cycle-share analysis (Fig. 7) uses
    /// these weights.
    pub issued_weighted: [u64; 7],
    /// Cycles where at least one sub-core issued.
    pub active_cycles: u64,
    /// Warps run to completion.
    pub warps_retired: u64,
}

/// One streaming multiprocessor.
#[derive(Debug)]
pub struct Sm {
    index: usize,
    sub_cores: usize,
    max_warps: usize,
    alu_latency: u64,
    shared_latency: u64,
    line_bytes: u64,
    /// Warps waiting to become resident.
    launch_queue: VecDeque<WarpTrace>,
    warps: Vec<WarpSlot>,
    /// GTO state: last-issued warp per sub-core.
    last_issued: Vec<Option<usize>>,
    /// Issue-slot occupancy: a sub-core executing an N-instruction ALU or
    /// shared-memory run cannot issue anything else until it drains.
    sub_core_busy_until: Vec<u64>,
    /// Per-line load requests awaiting the L1 port: `(line, warp slot)`.
    lsu_queue: VecDeque<(u64, usize)>,
    /// Round-robin token for the shared L1 port (LSU vs RT FIFO, §VI-H).
    port_prefers_rt: bool,
    rt: RtCore,
    next_age: u64,
    /// Last cycle any sub-core issued an instruction (deadlock diagnostics'
    /// "last progress" marker; `None` until the first issue).
    last_issue_cycle: Option<u64>,
    /// Conservative lower bound on every resident `WaitUntil` target
    /// (`u64::MAX` when none are pending): lets the per-tick timer scan
    /// exit without walking the warp array. May be stale-low (a retired
    /// warp's target lingers), never stale-high.
    earliest_timer: u64,
    /// Per-sub-core "this stripe may hold an issuable warp" hint: set on
    /// every transition to `Ready`, cleared only when a full stripe scan
    /// proves the stripe empty. Purely an accelerator for `gto_pick` —
    /// conservatively true is always safe.
    ready_hint: Vec<bool>,
    /// Scratch buffers reused across `issue` calls so the per-tick hot
    /// path allocates nothing.
    scratch_picks: Vec<Option<usize>>,
    scratch_hsu: Vec<bool>,
    coalesce_buf: Vec<u64>,
    stats: SmStats,
}

impl Sm {
    /// Creates SM `index` under `cfg`.
    pub fn new(index: usize, cfg: &GpuConfig) -> Self {
        Sm {
            index,
            sub_cores: cfg.sub_cores,
            max_warps: cfg.max_warps_per_sm,
            alu_latency: cfg.alu_latency,
            shared_latency: cfg.shared_latency,
            line_bytes: cfg.line_bytes as u64,
            launch_queue: VecDeque::new(),
            warps: Vec::new(),
            last_issued: vec![None; cfg.sub_cores],
            sub_core_busy_until: vec![0; cfg.sub_cores],
            lsu_queue: VecDeque::new(),
            port_prefers_rt: false,
            rt: RtCore::new(cfg),
            next_age: 0,
            last_issue_cycle: None,
            earliest_timer: u64::MAX,
            ready_hint: vec![false; cfg.sub_cores],
            scratch_picks: Vec::new(),
            scratch_hsu: Vec::new(),
            coalesce_buf: Vec::new(),
            stats: SmStats::default(),
        }
    }

    /// Queues a warp for execution on this SM.
    pub fn enqueue_warp(&mut self, trace: WarpTrace) {
        self.launch_queue.push_back(trace);
    }

    /// Returns `true` when every warp has retired and all queues are empty.
    pub fn finished(&self) -> bool {
        self.launch_queue.is_empty()
            && self.warps.iter().all(|w| w.status == WarpStatus::Finished)
            && self.lsu_queue.is_empty()
            && self.rt.idle()
    }

    /// The earliest future cycle at which this SM's state can *observably*
    /// change without memory-side help, or `None` when it is entirely
    /// blocked on the memory system (or finished). The run loop additionally
    /// wakes a sleeping SM when a completion is delivered to it or its L1
    /// receives a fill ([`MemorySystem::l1_touched`]) — the only two
    /// memory-side events that change what this SM can observe.
    ///
    /// The contract required by the event-driven run loop is soundness, not
    /// tightness: the returned cycle must never be *later* than the true
    /// next state change. Three refinements keep memory- and compute-bound
    /// phases skippable without breaking it:
    ///
    /// * a queued L1 access (LSU or RT fetch) only forces `now + 1` if the
    ///   cache would actually *accept* it ([`MemorySystem::can_accept`]);
    ///   a rejected retry is a no-op whose eventual acceptance is caused by
    ///   a fill the memory event heap already schedules,
    /// * a `Ready` warp's next issue opportunity is its sub-core's
    ///   `busy_until` (Alu/Shared runs occupy the issue slot for their full
    ///   run length), not the next cycle,
    /// * a timer wait reports `max(wakeup, sub-core free)` — waking a warp
    ///   into a busy sub-core changes only its status word, which is
    ///   unobservable until the warp can issue.
    pub fn next_event(&self, now: u64, mem: &impl MemPort) -> Option<u64> {
        // Launching needs a free or finished slot; if none exists the launch
        // queue only drains after a retirement, which another event causes.
        let can_launch = !self.launch_queue.is_empty()
            && (self.warps.len() < self.max_warps
                || self.warps.iter().any(|w| w.status == WarpStatus::Finished));
        let lsu_can_issue = self
            .lsu_queue
            .front()
            .is_some_and(|&(line, _)| mem.can_accept(self.index, line, Requester::Lsu));
        let rt_can_fetch = self
            .rt
            .peek_fifo()
            .is_some_and(|req| mem.can_accept(self.index, req.line, Requester::RtUnit));
        if can_launch || lsu_can_issue || rt_can_fetch || self.rt.advances_on_tick() {
            return Some(now + 1);
        }
        let mut next: Option<u64> = None;
        for warp in &self.warps {
            let wake = match warp.status {
                WarpStatus::Ready => now + 1,
                WarpStatus::WaitUntil(t) => t,
                WarpStatus::WaitMem(_) | WarpStatus::WaitHsu | WarpStatus::Finished => continue,
            };
            let t = wake
                .max(self.sub_core_busy_until[warp.sub_core])
                .max(now + 1);
            next = Some(next.map_or(t, |n| n.min(t)));
        }
        next
    }

    /// Bulk-accounts `cycles` provably idle cycles (see
    /// [`Sm::next_event`]); equivalent to `cycles` calls to [`Sm::tick`] in
    /// a state where no queue, warp, or unit can make observable progress.
    ///
    /// Two pieces of per-cycle bookkeeping from the stepped oracle must be
    /// replayed so both modes stay bit-identical: blocked L1 presentations
    /// still record one rejected probe per cycle (MSHR-stall statistics and
    /// the cache's port-use counter), and the shared L1 port's round-robin
    /// bit keeps toggling while both requesters are waiting.
    pub fn fast_forward(&mut self, cycles: u64, mem: &mut impl MemPort) {
        let lsu_pending = !self.lsu_queue.is_empty();
        let rt_pending = self.rt.peek_fifo().is_some();
        if mem.rt_has_private_path() {
            // Each side has its own port and retries independently.
            if lsu_pending {
                mem.note_stalled_probes(self.index, Requester::Lsu, cycles);
            }
            if rt_pending {
                mem.note_stalled_probes(self.index, Requester::RtUnit, cycles);
            }
        } else {
            // Shared port: one presentation per cycle, alternating between
            // the requesters when both wait (both target the same L1, so
            // the stall accounting is one probe per cycle either way).
            match (lsu_pending, rt_pending) {
                (false, false) => {}
                (true, false) => {
                    self.port_prefers_rt = true;
                    mem.note_stalled_probes(self.index, Requester::Lsu, cycles);
                }
                (false, true) => {
                    self.port_prefers_rt = false;
                    mem.note_stalled_probes(self.index, Requester::RtUnit, cycles);
                }
                (true, true) => {
                    if cycles % 2 == 1 {
                        self.port_prefers_rt = !self.port_prefers_rt;
                    }
                    mem.note_stalled_probes(self.index, Requester::Lsu, cycles);
                }
            }
        }
        self.rt.fast_forward(cycles);
    }

    /// Handles a memory completion token.
    ///
    /// # Errors
    ///
    /// [`SimError::IllegalDispatch`] if the completion is routed to a warp
    /// slot that is not waiting on memory (a corrupted waiter token or a
    /// routing bug — either way the run cannot continue meaningfully).
    pub fn on_mem_done(&mut self, waiter: u64) -> Result<(), SimError> {
        if waiter & RT_FLAG != 0 {
            let entry = ((waiter >> 16) & 0xffff) as usize;
            let req = (waiter & 0xffff) as usize;
            self.rt.on_mem_response(entry, req);
        } else {
            let slot = waiter as usize;
            let warp = &mut self.warps[slot];
            if let WarpStatus::WaitMem(outstanding) = warp.status {
                let left = outstanding - 1;
                if left == 0 {
                    warp.status = WarpStatus::Ready;
                    self.ready_hint[warp.sub_core] = true;
                } else {
                    warp.status = WarpStatus::WaitMem(left);
                }
            } else {
                return Err(SimError::IllegalDispatch {
                    detail: format!(
                        "memory completion delivered to sm{} warp slot {slot}, \
                         which is not waiting on memory ({:?})",
                        self.index, warp.status
                    ),
                });
            }
        }
        Ok(())
    }

    /// Advances the SM one cycle.
    ///
    /// # Errors
    ///
    /// [`SimError::IllegalDispatch`] if the cycle's issue stage routes an op
    /// to a unit that cannot execute it (see [`Sm::on_mem_done`] and the
    /// RT-unit dispatch path).
    pub fn tick(&mut self, now: u64, mem: &mut impl MemPort) -> Result<(), SimError> {
        self.fill_resident_slots();
        self.unblock_timed_warps(now);

        // RT unit writebacks resume their warps.
        self.rt.tick();
        for slot in self.rt.take_completed() {
            debug_assert_eq!(self.warps[slot].status, WarpStatus::WaitHsu);
            self.warps[slot].status = WarpStatus::Ready;
            self.ready_hint[self.warps[slot].sub_core] = true;
        }

        self.arbitrate_l1_port(now, mem);
        self.issue(now, mem)
    }

    fn fill_resident_slots(&mut self) {
        if self.launch_queue.is_empty() {
            return;
        }
        // Reuse finished slots first, then grow up to the residency limit.
        for i in 0..self.warps.len() {
            if self.warps[i].status == WarpStatus::Finished {
                if let Some(trace) = self.launch_queue.pop_front() {
                    let sub_core = i % self.sub_cores;
                    self.warps[i] = WarpSlot {
                        trace,
                        pc: 0,
                        status: WarpStatus::Ready,
                        sub_core,
                        age: self.next_age,
                    };
                    self.next_age += 1;
                    self.ready_hint[sub_core] = true;
                }
            }
        }
        while self.warps.len() < self.max_warps {
            let Some(trace) = self.launch_queue.pop_front() else {
                break;
            };
            let sub_core = self.warps.len() % self.sub_cores;
            self.warps.push(WarpSlot {
                trace,
                pc: 0,
                status: WarpStatus::Ready,
                sub_core,
                age: self.next_age,
            });
            self.next_age += 1;
            self.ready_hint[sub_core] = true;
        }
    }

    fn unblock_timed_warps(&mut self, now: u64) {
        if now < self.earliest_timer {
            return; // no resident timer can have expired yet
        }
        let mut earliest = u64::MAX;
        for warp in &mut self.warps {
            if let WarpStatus::WaitUntil(t) = warp.status {
                if t <= now {
                    warp.status = WarpStatus::Ready;
                    self.ready_hint[warp.sub_core] = true;
                } else {
                    earliest = earliest.min(t);
                }
            }
        }
        self.earliest_timer = earliest;
    }

    /// One L1 access per cycle, round-robin between the LSU queue and the RT
    /// unit's FIFO (they time-share the cache, §VI-H). Under a private or
    /// bypass RT-cache policy (§VI-I) the RT FIFO gets its own port and both
    /// sides proceed each cycle.
    fn arbitrate_l1_port(&mut self, now: u64, mem: &mut impl MemPort) {
        let lsu_pending = !self.lsu_queue.is_empty();
        let rt_pending = self.rt.peek_fifo().is_some();
        if mem.rt_has_private_path() {
            if rt_pending {
                self.issue_rt_fetch(now, mem);
            }
            if lsu_pending {
                self.issue_lsu_access(now, mem);
            }
            return;
        }
        let pick_rt = match (lsu_pending, rt_pending) {
            (false, false) => return,
            (true, false) => false,
            (false, true) => true,
            (true, true) => self.port_prefers_rt,
        };
        self.port_prefers_rt = !pick_rt;
        if pick_rt {
            self.issue_rt_fetch(now, mem);
        } else {
            self.issue_lsu_access(now, mem);
        }
    }

    fn issue_rt_fetch(&mut self, now: u64, mem: &mut impl MemPort) {
        let Some(req) = self.rt.pop_fifo() else {
            return;
        };
        let waiter = RT_FLAG | ((req.entry as u64) << 16) | req.req as u64;
        match mem.access(self.index, req.line, waiter, Requester::RtUnit, now) {
            AccessOutcome::Accepted => {}
            AccessOutcome::Rejected => self.rt.push_back_front(req),
        }
    }

    fn issue_lsu_access(&mut self, now: u64, mem: &mut impl MemPort) {
        let Some(&(line, slot)) = self.lsu_queue.front() else {
            return;
        };
        match mem.access(self.index, line, slot as u64, Requester::Lsu, now) {
            AccessOutcome::Accepted => {
                self.lsu_queue.pop_front();
            }
            AccessOutcome::Rejected => {}
        }
    }

    /// GTO pick for one sub-core: the last-issued warp if still ready,
    /// otherwise the oldest ready warp.
    fn gto_pick(&mut self, sub_core: usize) -> Option<usize> {
        let issuable = |w: &WarpSlot| {
            w.sub_core == sub_core
                && w.status == WarpStatus::Ready
                && w.pc < w.trace.instructions.len()
        };
        if let Some(last) = self.last_issued[sub_core] {
            if last < self.warps.len() && issuable(&self.warps[last]) {
                return Some(last);
            }
        }
        // A cleared hint means the last full scan proved the stripe empty
        // and no warp on it has become Ready since — skip the scan.
        if !self.ready_hint[sub_core] {
            return None;
        }
        // Warps are statically assigned sub-core = slot % sub_cores, so only
        // scan this sub-core's stripe.
        let mut best: Option<(u64, usize)> = None;
        let mut i = sub_core;
        while i < self.warps.len() {
            let w = &self.warps[i];
            debug_assert_eq!(w.sub_core, sub_core);
            if issuable(w) && best.is_none_or(|(age, _)| w.age < age) {
                best = Some((w.age, i));
            }
            i += self.sub_cores;
        }
        if best.is_none() {
            self.ready_hint[sub_core] = false;
        }
        best.map(|(_, i)| i)
    }

    fn issue(&mut self, now: u64, mem: &mut impl MemPort) -> Result<(), SimError> {
        // The pick/request buffers live on the SM so the hot path allocates
        // nothing; a terminal error may leave them taken, which only costs
        // a fresh allocation on a run that is already dead.
        let mut picks = std::mem::take(&mut self.scratch_picks);
        let mut hsu_requests = std::mem::take(&mut self.scratch_hsu);
        let result = self.issue_inner(now, mem, &mut picks, &mut hsu_requests);
        self.scratch_picks = picks;
        self.scratch_hsu = hsu_requests;
        result
    }

    fn issue_inner(
        &mut self,
        now: u64,
        mem: &mut impl MemPort,
        picks: &mut Vec<Option<usize>>,
        hsu_requests: &mut Vec<bool>,
    ) -> Result<(), SimError> {
        // Phase 1: each sub-core picks its GTO warp; note which want the HSU.
        // Sub-cores still draining an ALU/shared run issue nothing.
        picks.clear();
        hsu_requests.clear();
        for sc in 0..self.sub_cores {
            let pick = if self.sub_core_busy_until[sc] > now {
                None
            } else {
                self.gto_pick(sc)
            };
            picks.push(pick);
            hsu_requests.push(pick.is_some_and(|slot| {
                let w = &self.warps[slot];
                w.trace.instructions[w.pc]
                    .lanes
                    .iter()
                    .flatten()
                    .next()
                    .is_some_and(|op| op.is_hsu())
            }));
        }

        // Phase 2: the RT unit grants at most one sub-core's dispatch.
        let granted = if hsu_requests.iter().any(|&r| r) {
            self.rt.grant(hsu_requests)
        } else {
            None
        };

        // Phase 3: issue per sub-core.
        let mut any_issued = false;
        for sc in 0..self.sub_cores {
            let Some(slot) = picks[sc] else { continue };
            let wants_hsu = hsu_requests[sc];
            if wants_hsu && granted != Some(sc) {
                continue; // arbiter did not pick this sub-core; retry next cycle
            }
            // Split borrows: `instr` pins `self.warps` immutably, so this
            // block touches only disjoint fields (stats, queues, rt, ...)
            // until the status write below.
            let warp = &self.warps[slot];
            let instr = &warp.trace.instructions[warp.pc];
            let class = instr.class();
            self.stats.issued[class.index()] += 1;
            self.stats.issued_weighted[class.index()] += weighted_count(instr);
            any_issued = true;
            self.last_issued[sc] = Some(slot);

            let new_status = match class {
                OpClass::Alu | OpClass::Shared => {
                    let count = max_run(instr) as u64;
                    let lat = if class == OpClass::Alu {
                        self.alu_latency
                    } else {
                        self.shared_latency
                    };
                    // The run occupies the sub-core's issue slot for `count`
                    // cycles; the warp itself also waits out the latency.
                    self.sub_core_busy_until[sc] = now + count;
                    WarpStatus::WaitUntil(now + count + lat)
                }
                OpClass::Load => {
                    let mut lines = std::mem::take(&mut self.coalesce_buf);
                    let coalesced = coalesce_into(instr, self.line_bytes, &mut lines);
                    if let Err(e) = coalesced {
                        self.coalesce_buf = lines;
                        return Err(e);
                    }
                    debug_assert!(!lines.is_empty());
                    for &line in &lines {
                        self.lsu_queue.push_back((line, slot));
                    }
                    let outstanding = lines.len() as u32;
                    self.coalesce_buf = lines;
                    WarpStatus::WaitMem(outstanding)
                }
                OpClass::Store => {
                    let mut lines = std::mem::take(&mut self.coalesce_buf);
                    let coalesced = coalesce_into(instr, self.line_bytes, &mut lines);
                    if let Err(e) = coalesced {
                        self.coalesce_buf = lines;
                        return Err(e);
                    }
                    for &line in &lines {
                        mem.store(self.index, line, Requester::Lsu);
                    }
                    self.coalesce_buf = lines;
                    WarpStatus::WaitUntil(now + 1)
                }
                OpClass::HsuRayIntersect | OpClass::HsuDistance | OpClass::HsuKeyCompare => {
                    let Some(lead) = instr.lanes.iter().flatten().next() else {
                        return Err(SimError::IllegalDispatch {
                            detail: format!(
                                "{class:?} warp instruction with no active lanes on sm{}",
                                self.index
                            ),
                        });
                    };
                    if !self.rt.supports(lead) {
                        return Err(SimError::IllegalDispatch {
                            detail: format!(
                                "kernel emitted {class:?} but the unit lacks HSU extensions \
                                 (baseline traces must lower these ops)"
                            ),
                        });
                    }
                    self.rt
                        .dispatch(slot, sc, instr.active_mask, &instr.lanes, self.line_bytes)?;
                    WarpStatus::WaitHsu
                }
            };

            // Advance the program counter; retire at trace end.
            let warp = &mut self.warps[slot];
            warp.status = new_status;
            warp.pc += 1;
            if warp.pc == warp.trace.instructions.len()
                && matches!(warp.status, WarpStatus::Ready | WarpStatus::WaitUntil(_))
            {
                // The warp drains its outstanding work, then is finished. We
                // conservatively let in-flight memory/HSU complete before
                // retirement by only marking Finished when Ready or timed.
                warp.status = WarpStatus::Finished;
                self.stats.warps_retired += 1;
            }
            if let WarpStatus::WaitUntil(t) = warp.status {
                self.earliest_timer = self.earliest_timer.min(t);
            }
        }
        if any_issued {
            self.stats.active_cycles += 1;
            self.last_issue_cycle = Some(now);
        }

        // Retire warps whose last instruction's stall has resolved.
        for warp in &mut self.warps {
            if warp.pc == warp.trace.instructions.len() && warp.status == WarpStatus::Ready {
                warp.status = WarpStatus::Finished;
                self.stats.warps_retired += 1;
            }
        }
        Ok(())
    }

    /// Snapshot of this SM's stall state for a [`DeadlockReport`]
    /// (see [`crate::error::DeadlockReport`]).
    ///
    /// `guard_cycles` is the run's cycle guard and `mshrs_in_flight` the
    /// SM's current L1 MSHR occupancy (owned by the memory system). Timer
    /// waits are normalized against the guard: a `WaitUntil(t)` with `t`
    /// inside the guard window counts as *ready*, because the stepped
    /// oracle flips such timers to `Ready` on its way to the boundary even
    /// when a busy issue slot makes the flip unobservable — the event loop
    /// may detect the deadlock before visiting those cycles, and the
    /// snapshot must not depend on which mode found it.
    pub fn deadlock_state(&self, guard_cycles: u64, mshrs_in_flight: usize) -> SmDeadlockState {
        let (mut ready, mut waiting_timer, mut waiting_mem, mut waiting_hsu, mut finished) =
            (0, 0, 0, 0, 0);
        for warp in &self.warps {
            match warp.status {
                WarpStatus::Ready => ready += 1,
                WarpStatus::WaitUntil(t) if t < guard_cycles => ready += 1,
                WarpStatus::WaitUntil(_) => waiting_timer += 1,
                WarpStatus::WaitMem(_) => waiting_mem += 1,
                WarpStatus::WaitHsu => waiting_hsu += 1,
                WarpStatus::Finished => finished += 1,
            }
        }
        SmDeadlockState {
            sm: self.index,
            resident: self.warps.len() - finished,
            ready,
            waiting_timer,
            waiting_mem,
            waiting_hsu,
            finished,
            launch_queue: self.launch_queue.len(),
            lsu_queue: self.lsu_queue.len(),
            rt_fifo: self.rt.fifo_len(),
            warp_buffer_occupancy: self.rt.warp_buffer_occupancy(),
            mshrs_in_flight,
            warps_retired: self.stats.warps_retired,
            last_issue_cycle: self.last_issue_cycle,
        }
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> &SmStats {
        &self.stats
    }

    /// The RT/HSU unit's statistics.
    pub fn rt_stats(&self) -> crate::rt_unit::RtUnitStats {
        self.rt.stats()
    }
}

/// Expanded instruction weight of a warp instruction: Alu/Shared runs count
/// their per-lane instruction totals; other classes count active lanes.
fn weighted_count(instr: &WarpInstruction) -> u64 {
    instr
        .lanes
        .iter()
        .flatten()
        .map(|op| match op {
            ThreadOp::Alu { count } | ThreadOp::Shared { count } => *count as u64,
            _ => 1,
        })
        .sum()
}

/// Maximum Alu/Shared run length across active lanes (lockstep SIMT executes
/// the longest lane's count).
fn max_run(instr: &WarpInstruction) -> u32 {
    instr
        .lanes
        .iter()
        .flatten()
        .map(|op| match op {
            ThreadOp::Alu { count } | ThreadOp::Shared { count } => *count,
            _ => 1,
        })
        .max()
        .unwrap_or(1)
}

/// Unique cache lines touched by a load/store warp instruction, written
/// into a caller-owned scratch buffer (cleared first) so the per-issue hot
/// path allocates nothing.
///
/// Rejects instructions whose lanes mix in non-memory ops (a malformed or
/// corrupted trace) instead of panicking mid-issue.
fn coalesce_into(
    instr: &WarpInstruction,
    line_bytes: u64,
    lines: &mut Vec<u64>,
) -> Result<(), SimError> {
    lines.clear();
    for op in instr.lanes.iter().flatten() {
        let (addr, bytes) = match op {
            ThreadOp::Load { addr, bytes } | ThreadOp::Store { addr, bytes } => {
                (*addr, *bytes as u64)
            }
            other => {
                return Err(SimError::IllegalDispatch {
                    detail: format!("coalesce on non-memory op {other:?}"),
                })
            }
        };
        let first = addr / line_bytes;
        let last = (addr + bytes.max(1) - 1) / line_bytes;
        lines.extend(first..=last);
    }
    lines.sort_unstable();
    lines.dedup();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemorySystem;
    use crate::trace::{KernelTrace, ThreadTrace};

    fn single_warp_kernel(ops: Vec<ThreadOp>, lanes: usize) -> WarpTrace {
        let mut k = KernelTrace::new("t");
        for _ in 0..lanes {
            let mut t = ThreadTrace::new();
            for &op in &ops {
                t.push(op);
            }
            k.push_thread(t);
        }
        k.warps().remove(0)
    }

    fn run(sm: &mut Sm, mem: &mut MemorySystem, max: u64) -> u64 {
        let mut done = Vec::new();
        for now in 0..max {
            done.clear();
            mem.tick(now, &mut done);
            for &(sm_idx, waiter) in &done {
                assert_eq!(sm_idx, 0);
                sm.on_mem_done(waiter).expect("completion routing");
            }
            sm.tick(now, mem).expect("tick failed");
            if sm.finished() {
                return now;
            }
        }
        // Bounded by `max`; on failure report what the SM is stuck on
        // instead of a bare message.
        panic!(
            "SM never finished within {max} cycles; stuck state: {}",
            sm.deadlock_state(max, mem.l1_mshrs_in_use(0))
        );
    }

    #[test]
    fn alu_only_warp_finishes_quickly() {
        let cfg = GpuConfig::tiny();
        let mut sm = Sm::new(0, &cfg);
        let mut mem = MemorySystem::new(&cfg);
        sm.enqueue_warp(single_warp_kernel(vec![ThreadOp::Alu { count: 10 }], 32));
        let cycles = run(&mut sm, &mut mem, 10_000);
        assert!(cycles < 40, "took {cycles}");
        assert_eq!(sm.stats().issued[OpClass::Alu.index()], 1);
        assert_eq!(sm.stats().issued_weighted[OpClass::Alu.index()], 10 * 32);
        assert_eq!(sm.stats().warps_retired, 1);
    }

    #[test]
    fn coalesced_load_is_one_line() {
        let cfg = GpuConfig::tiny();
        let mut sm = Sm::new(0, &cfg);
        let mut mem = MemorySystem::new(&cfg);
        // 32 lanes loading consecutive 4-byte words: exactly one 128-B line.
        let mut k = KernelTrace::new("c");
        for lane in 0..32u64 {
            let mut t = ThreadTrace::new();
            t.push(ThreadOp::Load {
                addr: lane * 4,
                bytes: 4,
            });
            k.push_thread(t);
        }
        sm.enqueue_warp(k.warps().remove(0));
        run(&mut sm, &mut mem, 100_000);
        assert_eq!(
            mem.stats().l1_lsu_accesses,
            1,
            "must coalesce to one access"
        );
    }

    #[test]
    fn strided_load_splits_lines() {
        let cfg = GpuConfig::tiny();
        let mut sm = Sm::new(0, &cfg);
        let mut mem = MemorySystem::new(&cfg);
        let mut k = KernelTrace::new("s");
        for lane in 0..32u64 {
            let mut t = ThreadTrace::new();
            t.push(ThreadOp::Load {
                addr: lane * 256,
                bytes: 4,
            });
            k.push_thread(t);
        }
        sm.enqueue_warp(k.warps().remove(0));
        run(&mut sm, &mut mem, 200_000);
        assert_eq!(mem.stats().l1_lsu_accesses, 32, "non-coalescable accesses");
    }

    #[test]
    fn hsu_instruction_round_trip() {
        let cfg = GpuConfig::tiny();
        let mut sm = Sm::new(0, &cfg);
        let mut mem = MemorySystem::new(&cfg);
        sm.enqueue_warp(single_warp_kernel(
            vec![
                ThreadOp::HsuRayIntersect {
                    node_addr: 0x1000,
                    bytes: 128,
                    triangle: false,
                },
                ThreadOp::Alu { count: 2 },
            ],
            8,
        ));
        run(&mut sm, &mut mem, 100_000);
        let rt = sm.rt_stats();
        assert_eq!(rt.warp_instructions, 1);
        assert_eq!(rt.isa_instructions, 8, "one per active lane");
        // All eight lanes fetch the same node line: coalesced to one access.
        assert_eq!(mem.stats().l1_rt_accesses, 1);
        assert_eq!(sm.stats().warps_retired, 1);
    }

    #[test]
    fn multiple_warps_share_sub_cores() {
        let cfg = GpuConfig::tiny();
        let mut sm = Sm::new(0, &cfg);
        let mut mem = MemorySystem::new(&cfg);
        for _ in 0..8 {
            sm.enqueue_warp(single_warp_kernel(vec![ThreadOp::Alu { count: 100 }], 32));
        }
        let cycles = run(&mut sm, &mut mem, 100_000);
        // 8 warps / 4 sub-cores = 2 per sub-core, ~2 * 100 cycles.
        assert!(cycles < 450, "took {cycles}");
        assert_eq!(sm.stats().warps_retired, 8);
    }

    #[test]
    fn gto_keeps_issuing_same_warp() {
        let cfg = GpuConfig::tiny();
        let mut sm = Sm::new(0, &cfg);
        let mut mem = MemorySystem::new(&cfg);
        // Two warps of back-to-back single ALU ops on the same sub-core
        // would interleave under round-robin; GTO sticks with the first.
        // We verify completion (scheduling correctness), not the exact order.
        for _ in 0..2 {
            sm.enqueue_warp(single_warp_kernel(vec![ThreadOp::Alu { count: 1 }; 4], 32));
        }
        run(&mut sm, &mut mem, 100_000);
        assert_eq!(sm.stats().warps_retired, 2);
    }

    #[test]
    fn next_event_reports_exact_timer_wakeup() {
        let cfg = GpuConfig::tiny();
        let mut sm = Sm::new(0, &cfg);
        let mut mem = MemorySystem::new(&cfg);
        // Distinct classes so the trace builder keeps two instructions.
        sm.enqueue_warp(single_warp_kernel(
            vec![ThreadOp::Alu { count: 1 }, ThreadOp::Shared { count: 1 }],
            32,
        ));
        // A launchable warp is imminent work: conservative `now + 1`.
        assert_eq!(sm.next_event(0, &mem), Some(1));
        sm.tick(0, &mut mem).unwrap();
        // Issued at 0 with count 1: the warp waits until 1 + alu_latency,
        // and nothing else can change state before then.
        let wake = 1 + cfg.alu_latency;
        assert_eq!(sm.next_event(0, &mem), Some(wake));
        assert_eq!(
            sm.next_event(wake - 1, &mem),
            Some(wake),
            "wakeup cycle is absolute, not relative"
        );
        sm.tick(wake, &mut mem).unwrap();
        // Second (final) instruction issued; trace end retires on the spot.
        assert_eq!(sm.stats().warps_retired, 1);
        assert_eq!(sm.next_event(wake, &mem), None, "finished SM has no events");
        assert!(sm.finished());
    }

    #[test]
    fn next_event_is_none_while_blocked_on_memory() {
        let cfg = GpuConfig::tiny();
        let mut sm = Sm::new(0, &cfg);
        let mut mem = MemorySystem::new(&cfg);
        sm.enqueue_warp(single_warp_kernel(
            vec![
                ThreadOp::Load {
                    addr: 0x4000,
                    bytes: 4,
                },
                ThreadOp::Alu { count: 1 },
            ],
            32,
        ));
        sm.tick(0, &mut mem).unwrap();
        // The load sits in the LSU queue awaiting the L1 port.
        assert_eq!(sm.next_event(0, &mem), Some(1));
        sm.tick(1, &mut mem).unwrap();
        // Access accepted: the SM is now purely memory-blocked — the wakeup
        // belongs to the memory system's event heap, not to the SM.
        assert_eq!(sm.next_event(1, &mem), None);
        let mut done = Vec::new();
        let mut woke_at = None;
        for now in 2..100_000 {
            done.clear();
            mem.tick(now, &mut done);
            if let Some(&(_, waiter)) = done.first() {
                sm.on_mem_done(waiter).unwrap();
                woke_at = Some(now);
                break;
            }
            assert_eq!(sm.next_event(now, &mem), None, "no self-wakeup at {now}");
        }
        let now = woke_at.expect("load never completed");
        assert_eq!(
            sm.next_event(now, &mem),
            Some(now + 1),
            "a Ready warp must run next cycle"
        );
    }

    #[test]
    fn timer_wakeups_order_across_warps() {
        // Two warps on different sub-cores with staggered latencies: the SM
        // must surface the earlier wakeup first, then the later one, pinning
        // the exact cycles the event loop is allowed to jump to.
        let cfg = GpuConfig::tiny();
        let mut sm = Sm::new(0, &cfg);
        let mut mem = MemorySystem::new(&cfg);
        // Slot 0 -> sub-core 0, slot 1 -> sub-core 1 (slot % sub_cores).
        sm.enqueue_warp(single_warp_kernel(
            vec![ThreadOp::Alu { count: 2 }, ThreadOp::Shared { count: 1 }],
            32,
        ));
        sm.enqueue_warp(single_warp_kernel(
            vec![ThreadOp::Shared { count: 1 }, ThreadOp::Alu { count: 1 }],
            32,
        ));
        sm.tick(0, &mut mem).unwrap();
        let alu_wake = 2 + cfg.alu_latency; // run of 2 + dependent latency
        let shared_wake = 1 + cfg.shared_latency;
        assert!(alu_wake < shared_wake);
        assert_eq!(
            sm.next_event(0, &mem),
            Some(alu_wake),
            "earliest wakeup wins"
        );
        sm.tick(alu_wake, &mut mem).unwrap();
        assert_eq!(sm.stats().warps_retired, 1, "ALU warp finishes first");
        assert_eq!(sm.next_event(alu_wake, &mem), Some(shared_wake));
        sm.tick(shared_wake, &mut mem).unwrap();
        assert_eq!(sm.stats().warps_retired, 2);
        assert_eq!(sm.next_event(shared_wake, &mem), None);
    }

    #[test]
    fn baseline_unit_rejects_distance_ops() {
        let mut cfg = GpuConfig::tiny();
        cfg.hsu = hsu_core::HsuConfig::baseline_rt();
        let mut sm = Sm::new(0, &cfg);
        let mut mem = MemorySystem::new(&cfg);
        sm.enqueue_warp(single_warp_kernel(
            vec![ThreadOp::HsuDistance {
                metric: hsu_geometry::point::Metric::Euclidean,
                dim: 16,
                candidate_addr: 0,
            }],
            1,
        ));
        let err = (0..10)
            .find_map(|now| sm.tick(now, &mut mem).err())
            .expect("dispatching a distance op to a baseline RT unit must fail");
        assert!(matches!(err, SimError::IllegalDispatch { .. }));
        assert!(err.to_string().contains("lacks HSU extensions"));
    }

    #[test]
    fn misrouted_completion_is_a_typed_error() {
        let cfg = GpuConfig::tiny();
        let mut sm = Sm::new(0, &cfg);
        let mut mem = MemorySystem::new(&cfg);
        sm.enqueue_warp(single_warp_kernel(vec![ThreadOp::Alu { count: 1 }], 32));
        sm.tick(0, &mut mem).unwrap();
        // Slot 0 is waiting on a timer, not memory: a completion for it is
        // a routing violation, not a panic.
        let err = sm
            .on_mem_done(0)
            .expect_err("completion for a non-memory-waiting warp must fail");
        assert!(matches!(err, SimError::IllegalDispatch { .. }));
    }

    #[test]
    fn deadlock_state_normalizes_in_window_timers_to_ready() {
        let cfg = GpuConfig::tiny();
        let mut sm = Sm::new(0, &cfg);
        let mut mem = MemorySystem::new(&cfg);
        // Distinct classes so the trace keeps two instructions pending.
        sm.enqueue_warp(single_warp_kernel(
            vec![ThreadOp::Alu { count: 100 }, ThreadOp::Shared { count: 1 }],
            32,
        ));
        sm.tick(0, &mut mem).unwrap();
        // The warp waits until cycle 100 + alu_latency. With a guard beyond
        // that it counts as ready (the stepped oracle would have flipped it);
        // with a guard before it, it is a genuine timer wait.
        let wake = 100 + cfg.alu_latency;
        let wide = sm.deadlock_state(wake + 1, 0);
        assert_eq!((wide.ready, wide.waiting_timer), (1, 0));
        let tight = sm.deadlock_state(wake, 0);
        assert_eq!((tight.ready, tight.waiting_timer), (0, 1));
        assert_eq!(tight.last_issue_cycle, Some(0));
        assert_eq!(tight.resident, 1);
    }
}
