//! Set-associative caches with LRU replacement and MSHR tracking.

use std::collections::HashMap;

/// Hit/miss statistics of one cache instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that hit in the tag array.
    pub hits: u64,
    /// Lookups that hit on a pending miss (merged into an MSHR). The paper
    /// counts these as hits (§VI-J).
    pub mshr_hits: u64,
    /// Lookups that allocated a new miss.
    pub misses: u64,
    /// Lookups rejected because the MSHR file was full.
    pub mshr_stalls: u64,
}

impl CacheStats {
    /// Total accesses that were accepted (hits + mshr hits + misses).
    pub fn accesses(&self) -> u64 {
        self.hits + self.mshr_hits + self.misses
    }

    /// Miss rate with MSHR-merged accesses counted as hits, as in Fig. 13.
    pub fn miss_rate(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// Outcome of a cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// Line present; data available after the hit latency.
    Hit,
    /// Line already being fetched; the access was merged into the MSHR.
    MshrHit,
    /// New miss; an MSHR was allocated and the request must go down-level.
    Miss,
    /// MSHR file full; the access must be retried later.
    Stall,
}

/// A set-associative LRU cache front-end with an MSHR file.
///
/// The cache tracks tags and miss status only — data movement is implicit.
/// Waiters are opaque `u64` tokens returned when a fill completes.
#[derive(Debug)]
pub struct Cache {
    /// `sets[s]` holds up to `ways` entries of `(line, last_use)`.
    sets: Vec<Vec<(u64, u64)>>,
    ways: usize,
    mshrs: HashMap<u64, Vec<u64>>,
    mshr_capacity: usize,
    use_counter: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates a cache with `sets` sets of `ways` ways and `mshr_capacity`
    /// outstanding-miss entries.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero.
    pub fn new(sets: usize, ways: usize, mshr_capacity: usize) -> Self {
        assert!(
            sets > 0 && ways > 0 && mshr_capacity > 0,
            "degenerate cache geometry"
        );
        Cache {
            sets: vec![Vec::with_capacity(ways); sets],
            ways,
            mshrs: HashMap::new(),
            mshr_capacity,
            use_counter: 0,
            stats: CacheStats::default(),
        }
    }

    fn set_of(&self, line: u64) -> usize {
        (line % self.sets.len() as u64) as usize
    }

    /// Looks up `line` on behalf of `waiter`.
    ///
    /// On [`Lookup::Miss`] the caller must forward the request down-level and
    /// call [`Cache::fill`] when the data returns. On [`Lookup::MshrHit`] the
    /// waiter is queued on the existing miss. On [`Lookup::Stall`] nothing is
    /// recorded and the caller retries.
    pub fn access(&mut self, line: u64, waiter: u64) -> Lookup {
        self.use_counter += 1;
        let set = self.set_of(line);
        if let Some(entry) = self.sets[set].iter_mut().find(|(l, _)| *l == line) {
            entry.1 = self.use_counter;
            self.stats.hits += 1;
            return Lookup::Hit;
        }
        if let Some(waiters) = self.mshrs.get_mut(&line) {
            waiters.push(waiter);
            self.stats.mshr_hits += 1;
            return Lookup::MshrHit;
        }
        if self.mshrs.len() >= self.mshr_capacity {
            self.stats.mshr_stalls += 1;
            return Lookup::Stall;
        }
        self.mshrs.insert(line, vec![waiter]);
        self.stats.misses += 1;
        Lookup::Miss
    }

    /// A tag-only probe that never allocates (used for stores in the
    /// write-through model). Returns `true` on hit.
    pub fn probe(&mut self, line: u64) -> bool {
        self.use_counter += 1;
        let set = self.set_of(line);
        if let Some(entry) = self.sets[set].iter_mut().find(|(l, _)| *l == line) {
            entry.1 = self.use_counter;
            true
        } else {
            false
        }
    }

    /// Completes the fill of `line`: installs it (LRU eviction) and returns
    /// the waiters queued on its MSHR.
    ///
    /// # Panics
    ///
    /// Panics if no MSHR exists for `line` (fill without a miss).
    pub fn fill(&mut self, line: u64) -> Vec<u64> {
        let waiters = self
            .mshrs
            .remove(&line)
            .expect("fill without outstanding miss");
        self.use_counter += 1;
        let counter = self.use_counter;
        let ways = self.ways;
        let set = self.set_of(line);
        let entries = &mut self.sets[set];
        if entries.len() >= ways {
            // Evict the least recently used way.
            let lru = entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(i, _)| i)
                .expect("non-empty set");
            entries.swap_remove(lru);
        }
        entries.push((line, counter));
        waiters
    }

    /// Number of MSHR entries currently in use.
    pub fn mshrs_in_use(&self) -> usize {
        self.mshrs.len()
    }

    /// Returns `true` if the MSHR file is full.
    pub fn mshrs_full(&self) -> bool {
        self.mshrs.len() >= self.mshr_capacity
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = Cache::new(4, 2, 4);
        assert_eq!(c.access(10, 1), Lookup::Miss);
        assert_eq!(c.access(10, 2), Lookup::MshrHit);
        let waiters = c.fill(10);
        assert_eq!(waiters, vec![1, 2]);
        assert_eq!(c.access(10, 3), Lookup::Hit);
        let s = c.stats();
        assert_eq!((s.hits, s.mshr_hits, s.misses), (1, 1, 1));
    }

    #[test]
    fn lru_eviction_within_set() {
        // 1 set, 2 ways: lines 0, 1, then touch 0, insert 2 -> evicts 1.
        let mut c = Cache::new(1, 2, 8);
        assert_eq!(c.access(0, 0), Lookup::Miss);
        c.fill(0);
        assert_eq!(c.access(1, 0), Lookup::Miss);
        c.fill(1);
        assert_eq!(c.access(0, 0), Lookup::Hit);
        assert_eq!(c.access(2, 0), Lookup::Miss);
        c.fill(2);
        assert_eq!(
            c.access(0, 0),
            Lookup::Hit,
            "recently used line must survive"
        );
        assert_eq!(c.access(1, 0), Lookup::Miss, "LRU line must be evicted");
    }

    #[test]
    fn mshr_capacity_stalls() {
        let mut c = Cache::new(4, 2, 2);
        assert_eq!(c.access(1, 0), Lookup::Miss);
        assert_eq!(c.access(2, 0), Lookup::Miss);
        assert!(c.mshrs_full());
        assert_eq!(c.access(3, 0), Lookup::Stall);
        assert_eq!(c.stats().mshr_stalls, 1);
        c.fill(1);
        assert_eq!(c.access(3, 0), Lookup::Miss);
    }

    #[test]
    fn sets_isolate_lines() {
        // Lines mapping to different sets never evict each other.
        let mut c = Cache::new(4, 1, 8);
        for line in 0..4u64 {
            assert_eq!(c.access(line, 0), Lookup::Miss);
            c.fill(line);
        }
        for line in 0..4u64 {
            assert_eq!(c.access(line, 0), Lookup::Hit);
        }
    }

    #[test]
    fn probe_does_not_allocate() {
        let mut c = Cache::new(4, 2, 4);
        assert!(!c.probe(5));
        assert_eq!(c.mshrs_in_use(), 0);
        assert_eq!(c.access(5, 0), Lookup::Miss);
        c.fill(5);
        assert!(c.probe(5));
    }

    #[test]
    fn miss_rate_counts_mshr_hits_as_hits() {
        let mut c = Cache::new(4, 2, 4);
        c.access(1, 0); // miss
        c.access(1, 1); // mshr hit
        c.fill(1);
        c.access(1, 2); // hit
        c.access(1, 3); // hit
        assert!((c.stats().miss_rate() - 0.25).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "fill without outstanding miss")]
    fn fill_requires_miss() {
        let mut c = Cache::new(2, 2, 2);
        c.fill(9);
    }
}
