//! Set-associative caches with LRU replacement and MSHR tracking.

use std::collections::HashMap;

/// Hit/miss statistics of one cache instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that hit in the tag array.
    pub hits: u64,
    /// Lookups that hit on a pending miss (merged into an MSHR). The paper
    /// counts these as hits (§VI-J).
    pub mshr_hits: u64,
    /// Lookups that allocated a new miss.
    pub misses: u64,
    /// Lookups rejected because the MSHR file was full.
    pub mshr_stalls: u64,
}

impl CacheStats {
    /// Total accesses that were accepted (hits + mshr hits + misses).
    pub fn accesses(&self) -> u64 {
        self.hits + self.mshr_hits + self.misses
    }

    /// Miss rate with MSHR-merged accesses counted as hits, as in Fig. 13.
    pub fn miss_rate(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// Outcome of a cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// Line present; data available after the hit latency.
    Hit,
    /// Line already being fetched; the access was merged into the MSHR.
    MshrHit,
    /// New miss; an MSHR was allocated and the request must go down-level.
    Miss,
    /// MSHR file full; the access must be retried later.
    Stall,
}

/// A set-associative LRU cache front-end with an MSHR file.
///
/// The cache tracks tags and miss status only — data movement is implicit.
/// Waiters are opaque `u64` tokens returned when a fill completes.
#[derive(Debug)]
pub struct Cache {
    /// `sets[s]` holds up to `ways` entries of `(line, last_use)`.
    sets: Vec<Vec<(u64, u64)>>,
    ways: usize,
    mshrs: HashMap<u64, Vec<u64>>,
    mshr_capacity: usize,
    use_counter: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates a cache with `sets` sets of `ways` ways and `mshr_capacity`
    /// outstanding-miss entries.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero.
    pub fn new(sets: usize, ways: usize, mshr_capacity: usize) -> Self {
        assert!(
            sets > 0 && ways > 0 && mshr_capacity > 0,
            "degenerate cache geometry"
        );
        Cache {
            sets: vec![Vec::with_capacity(ways); sets],
            ways,
            mshrs: HashMap::new(),
            mshr_capacity,
            use_counter: 0,
            stats: CacheStats::default(),
        }
    }

    fn set_of(&self, line: u64) -> usize {
        (line % self.sets.len() as u64) as usize
    }

    /// Looks up `line` on behalf of `waiter`.
    ///
    /// On [`Lookup::Miss`] the caller must forward the request down-level and
    /// call [`Cache::fill`] when the data returns. On [`Lookup::MshrHit`] the
    /// waiter is queued on the existing miss. On [`Lookup::Stall`] nothing is
    /// recorded and the caller retries.
    pub fn access(&mut self, line: u64, waiter: u64) -> Lookup {
        self.use_counter += 1;
        let set = self.set_of(line);
        if let Some(entry) = self.sets[set].iter_mut().find(|(l, _)| *l == line) {
            entry.1 = self.use_counter;
            self.stats.hits += 1;
            return Lookup::Hit;
        }
        if let Some(waiters) = self.mshrs.get_mut(&line) {
            waiters.push(waiter);
            self.stats.mshr_hits += 1;
            return Lookup::MshrHit;
        }
        if self.mshrs.len() >= self.mshr_capacity {
            self.stats.mshr_stalls += 1;
            return Lookup::Stall;
        }
        self.mshrs.insert(line, vec![waiter]);
        self.stats.misses += 1;
        Lookup::Miss
    }

    /// Whether an [`Cache::access`] of `line` would be accepted right now
    /// (anything but [`Lookup::Stall`]): resident, mergeable into a pending
    /// miss, or a free MSHR entry exists. Non-mutating — the event-driven
    /// run loop uses this to decide if a blocked requester could make
    /// progress on the next cycle without disturbing LRU or MSHR state.
    pub fn can_accept(&self, line: u64) -> bool {
        let set = self.set_of(line);
        self.sets[set].iter().any(|(l, _)| *l == line)
            || self.mshrs.contains_key(&line)
            || self.mshrs.len() < self.mshr_capacity
    }

    /// Bulk-accounts `count` rejected lookups, exactly as `count` calls to
    /// [`Cache::access`] returning [`Lookup::Stall`] would have: the use
    /// counter advances (stalled probes still consume the port) and the
    /// stall statistic grows. Used when fast-forwarding across a span in
    /// which a requester would have retried-and-stalled every cycle.
    pub fn note_stalled_probes(&mut self, count: u64) {
        self.use_counter += count;
        self.stats.mshr_stalls += count;
    }

    /// A tag-only probe that never allocates (used for stores in the
    /// write-through model). Returns `true` on hit.
    pub fn probe(&mut self, line: u64) -> bool {
        self.use_counter += 1;
        let set = self.set_of(line);
        if let Some(entry) = self.sets[set].iter_mut().find(|(l, _)| *l == line) {
            entry.1 = self.use_counter;
            true
        } else {
            false
        }
    }

    /// Completes the fill of `line`: installs it (LRU eviction) and returns
    /// the waiters queued on its MSHR.
    ///
    /// # Panics
    ///
    /// Panics if no MSHR exists for `line` (fill without a miss).
    pub fn fill(&mut self, line: u64) -> Vec<u64> {
        let Some(waiters) = self.mshrs.remove(&line) else {
            panic!("fill without outstanding miss");
        };
        self.use_counter += 1;
        let counter = self.use_counter;
        let ways = self.ways;
        let set = self.set_of(line);
        let entries = &mut self.sets[set];
        if entries.len() >= ways {
            // Evict the least recently used way.
            let Some(lru) = entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(i, _)| i)
            else {
                unreachable!("set at capacity cannot be empty");
            };
            entries.swap_remove(lru);
        }
        entries.push((line, counter));
        waiters
    }

    /// Number of MSHR entries currently in use.
    pub fn mshrs_in_use(&self) -> usize {
        self.mshrs.len()
    }

    /// Returns `true` if the MSHR file is full.
    pub fn mshrs_full(&self) -> bool {
        self.mshrs.len() >= self.mshr_capacity
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = Cache::new(4, 2, 4);
        assert_eq!(c.access(10, 1), Lookup::Miss);
        assert_eq!(c.access(10, 2), Lookup::MshrHit);
        let waiters = c.fill(10);
        assert_eq!(waiters, vec![1, 2]);
        assert_eq!(c.access(10, 3), Lookup::Hit);
        let s = c.stats();
        assert_eq!((s.hits, s.mshr_hits, s.misses), (1, 1, 1));
    }

    #[test]
    fn lru_eviction_within_set() {
        // 1 set, 2 ways: lines 0, 1, then touch 0, insert 2 -> evicts 1.
        let mut c = Cache::new(1, 2, 8);
        assert_eq!(c.access(0, 0), Lookup::Miss);
        c.fill(0);
        assert_eq!(c.access(1, 0), Lookup::Miss);
        c.fill(1);
        assert_eq!(c.access(0, 0), Lookup::Hit);
        assert_eq!(c.access(2, 0), Lookup::Miss);
        c.fill(2);
        assert_eq!(
            c.access(0, 0),
            Lookup::Hit,
            "recently used line must survive"
        );
        assert_eq!(c.access(1, 0), Lookup::Miss, "LRU line must be evicted");
    }

    #[test]
    fn mshr_capacity_stalls() {
        let mut c = Cache::new(4, 2, 2);
        assert_eq!(c.access(1, 0), Lookup::Miss);
        assert_eq!(c.access(2, 0), Lookup::Miss);
        assert!(c.mshrs_full());
        assert_eq!(c.access(3, 0), Lookup::Stall);
        assert_eq!(c.stats().mshr_stalls, 1);
        c.fill(1);
        assert_eq!(c.access(3, 0), Lookup::Miss);
    }

    #[test]
    fn sets_isolate_lines() {
        // Lines mapping to different sets never evict each other.
        let mut c = Cache::new(4, 1, 8);
        for line in 0..4u64 {
            assert_eq!(c.access(line, 0), Lookup::Miss);
            c.fill(line);
        }
        for line in 0..4u64 {
            assert_eq!(c.access(line, 0), Lookup::Hit);
        }
    }

    #[test]
    fn probe_does_not_allocate() {
        let mut c = Cache::new(4, 2, 4);
        assert!(!c.probe(5));
        assert_eq!(c.mshrs_in_use(), 0);
        assert_eq!(c.access(5, 0), Lookup::Miss);
        c.fill(5);
        assert!(c.probe(5));
    }

    #[test]
    fn miss_rate_counts_mshr_hits_as_hits() {
        let mut c = Cache::new(4, 2, 4);
        c.access(1, 0); // miss
        c.access(1, 1); // mshr hit
        c.fill(1);
        c.access(1, 2); // hit
        c.access(1, 3); // hit
        assert!((c.stats().miss_rate() - 0.25).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "fill without outstanding miss")]
    fn fill_requires_miss() {
        let mut c = Cache::new(2, 2, 2);
        c.fill(9);
    }

    #[test]
    fn merges_into_full_mshr_file_without_stalling() {
        // A full MSHR file only rejects NEW misses: accesses to lines with
        // an in-flight miss still merge. This is the contract the SM relies
        // on when it retries rejected accesses — a retry to an already-
        // pending line must not spin forever.
        let mut c = Cache::new(4, 2, 2);
        assert_eq!(c.access(1, 10), Lookup::Miss);
        assert_eq!(c.access(2, 20), Lookup::Miss);
        assert!(c.mshrs_full());
        assert_eq!(c.access(1, 11), Lookup::MshrHit, "merge while full");
        assert_eq!(c.access(2, 21), Lookup::MshrHit);
        assert_eq!(c.access(3, 30), Lookup::Stall, "new miss while full");
        // Hits are also unaffected by a full MSHR file.
        c.fill(1);
        assert_eq!(c.access(1, 12), Lookup::Hit);
        assert_eq!(c.stats().mshr_stalls, 1);
    }

    #[test]
    fn fill_returns_waiters_in_arrival_order() {
        // Waiter order is architectural: the memory system pushes Done
        // events in this order, so completion ordering (and therefore warp
        // wakeup ordering) is pinned to arrival order.
        let mut c = Cache::new(4, 2, 4);
        assert_eq!(c.access(5, 100), Lookup::Miss);
        assert_eq!(c.access(5, 101), Lookup::MshrHit);
        assert_eq!(c.access(5, 102), Lookup::MshrHit);
        assert_eq!(c.fill(5), vec![100, 101, 102]);
    }

    #[test]
    fn can_accept_predicts_access_outcome_exactly() {
        // `can_accept` is the event scheduler's oracle for whether
        // presenting a queued line would be a Stall: it must be true
        // exactly when `access` would NOT return `Lookup::Stall`.
        let mut c = Cache::new(4, 2, 1);
        assert!(c.can_accept(1), "free MSHR -> accept");
        assert_eq!(c.access(1, 0), Lookup::Miss);
        assert!(c.can_accept(1), "merge into in-flight miss -> accept");
        assert!(!c.can_accept(2), "new miss with full MSHR file -> reject");
        c.fill(1);
        assert!(c.can_accept(1), "resident line -> accept");
        assert!(c.can_accept(2), "MSHR freed by the fill -> accept");
    }

    #[test]
    fn note_stalled_probes_mirrors_per_cycle_rejections() {
        // Bulk-accounting N rejected presentations must leave the cache in
        // the same state as N per-cycle `access` calls that stalled: same
        // stall statistics, same LRU use counter, nothing else disturbed.
        let mut a = Cache::new(1, 1, 1);
        let mut b = Cache::new(1, 1, 1);
        for c in [&mut a, &mut b] {
            assert_eq!(c.access(1, 0), Lookup::Miss);
        }
        for _ in 0..5 {
            assert_eq!(a.access(2, 1), Lookup::Stall);
        }
        b.note_stalled_probes(5);
        assert_eq!(a.stats().mshr_stalls, b.stats().mshr_stalls);
        // Identical future behaviour (use counters aligned for LRU).
        for c in [&mut a, &mut b] {
            assert_eq!(c.fill(1), vec![0]);
            assert_eq!(c.access(2, 1), Lookup::Miss);
        }
    }

    #[test]
    fn stalled_access_leaves_no_trace() {
        // A Stall must not allocate, enqueue a waiter, or disturb LRU state;
        // the retried access later behaves exactly like a fresh one.
        let mut c = Cache::new(1, 1, 1);
        assert_eq!(c.access(1, 0), Lookup::Miss);
        assert_eq!(c.access(2, 1), Lookup::Stall);
        assert_eq!(c.mshrs_in_use(), 1);
        assert_eq!(c.fill(1), vec![0], "stalled waiter must not be queued");
        assert_eq!(c.access(2, 1), Lookup::Miss, "retry allocates normally");
        assert_eq!(c.fill(2), vec![1]);
        let s = c.stats();
        assert_eq!((s.hits, s.mshr_hits, s.misses, s.mshr_stalls), (0, 0, 2, 1));
    }
}
