//! The memory hierarchy: per-SM L1s, banked shared L2, HBM channels.
//!
//! Requests flow L1 → L2 → DRAM and responses flow back, with fixed
//! interconnect latencies, per-bank L2 lookup throughput, and FR-FCFS DRAM
//! service. Completion tokens (`waiter`s) are opaque to the hierarchy; the
//! SMs map them back to blocked warps or RT-unit lanes.
//!
//! # Sharding for intra-run parallelism
//!
//! The hierarchy is split along the only boundary SMs can observe:
//!
//! * [`L1Shard`] — one per SM: its L1 tag/MSHR state, its private RT cache
//!   (if the policy has one), and its requester counters. Each shard sits
//!   behind a `Mutex` so the parallel-epoch run loop can hand disjoint
//!   shards to worker threads while the serial modes lock them inline
//!   (uncontended).
//! * `MemCore` — everything shared: the event heap, L2 banks, DRAM
//!   channels. Only the epoch barrier (the run loop's main thread) touches
//!   it.
//!
//! An SM's per-cycle work mutates only its own shard and *pushes future
//! events*. Event pushes commute: the heap pops distinct events in sorted
//! `(cycle, event)` order regardless of insertion order, and equal events
//! are interchangeable — so draining at the barrier is deterministic no
//! matter how many threads produced the events. That is the entire
//! epoch-drain contract, and why every [`crate::config::SimMode`] produces
//! bit-identical reports.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::{Mutex, MutexGuard};

use crate::cache::{Cache, CacheStats, Lookup};
use crate::config::{GpuConfig, RtCachePolicy};
use crate::dram::{DramChannel, DramStats};

/// Who issued an L1 access — the paper separates LSU and RT-unit traffic
/// when reporting L1 access counts (Fig. 12).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Requester {
    /// The SIMT load-store unit.
    Lsu,
    /// The RT/HSU unit's FIFO memory access queue.
    RtUnit,
}

/// Result of presenting an access to the L1 port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// Accepted; the waiter completes in a future cycle.
    Accepted,
    /// Rejected (MSHR full); present it again next cycle.
    Rejected,
}

/// Marks an L2 waiter / L1-fill destined for the private RT cache.
const RT_FILL: u32 = 1 << 30;

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    /// A request arrives at its L2 bank.
    L2Arrive { sm: u32, line: u64 },
    /// DRAM data arrives back at the L2, filling it.
    L2Fill { line: u64 },
    /// Response arrives at an SM's L1, filling it.
    L1Fill { sm: u32, line: u64 },
    /// A waiter's data is ready at the SM.
    Done { sm: u32, waiter: u64 },
}

/// Aggregated memory statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemoryStats {
    /// L1 accesses from the load-store unit (across all SMs).
    pub l1_lsu_accesses: u64,
    /// L1 accesses from RT/HSU units.
    pub l1_rt_accesses: u64,
    /// Combined L1 tag statistics.
    pub l1: CacheStats,
    /// Combined private RT-cache statistics (zero under the shared policy).
    pub rt_cache: CacheStats,
    /// Combined L2 statistics.
    pub l2: CacheStats,
    /// Combined DRAM statistics.
    pub dram: DramStats,
}

/// The abstract L1 port the SM drives. Implemented by [`MemorySystem`]
/// (serial modes: lock-and-forward into the shared event heap) and by
/// [`SmPort`] (parallel-epoch workers: exclusive shard access plus a local
/// event buffer merged at the barrier). The `sm` argument always names the
/// calling SM; a port bound to one shard asserts it matches.
pub trait MemPort {
    /// See [`MemorySystem::rt_has_private_path`].
    fn rt_has_private_path(&self) -> bool;
    /// See [`MemorySystem::can_accept`].
    fn can_accept(&self, sm: usize, line: u64, requester: Requester) -> bool;
    /// See [`MemorySystem::access`].
    fn access(
        &mut self,
        sm: usize,
        line: u64,
        waiter: u64,
        requester: Requester,
        now: u64,
    ) -> AccessOutcome;
    /// See [`MemorySystem::store`].
    fn store(&mut self, sm: usize, line: u64, requester: Requester);
    /// See [`MemorySystem::note_stalled_probes`].
    fn note_stalled_probes(&mut self, sm: usize, requester: Requester, count: u64);
}

/// Latencies and geometry every port needs; immutable for a run.
#[derive(Debug, Clone)]
pub(crate) struct MemParams {
    line_bytes: u64,
    l1_latency: u64,
    half_l2_latency: u64,
    rt_private: bool,
}

/// One SM's slice of the hierarchy: L1 + optional private RT cache +
/// requester counters. Disjoint across SMs by construction; see the module
/// docs for why that makes per-SM work parallelizable.
#[derive(Debug)]
pub(crate) struct L1Shard {
    l1: Cache,
    rt_cache: Option<Cache>,
    lsu_accesses: u64,
    rt_accesses: u64,
}

impl L1Shard {
    /// Presents one access; returns the outcome and at most one future
    /// event for the shared heap.
    fn access(
        &mut self,
        p: &MemParams,
        sm: usize,
        line: u64,
        waiter: u64,
        requester: Requester,
        now: u64,
    ) -> (AccessOutcome, Option<(u64, Event)>) {
        let (use_rt_cache, cache) = match (requester, &mut self.rt_cache) {
            (Requester::RtUnit, Some(cache)) => (true, cache),
            _ => (false, &mut self.l1),
        };
        let event = match cache.access(line, waiter) {
            Lookup::Stall => return (AccessOutcome::Rejected, None),
            Lookup::Hit => Some((
                now + p.l1_latency,
                Event::Done {
                    sm: sm as u32,
                    waiter,
                },
            )),
            Lookup::MshrHit => None, // merged; completes with the fill
            Lookup::Miss => {
                // Tag the L2 waiter so the fill returns to the right cache.
                let tag = if use_rt_cache {
                    (sm as u32) | RT_FILL
                } else {
                    sm as u32
                };
                Some((now + p.half_l2_latency, Event::L2Arrive { sm: tag, line }))
            }
        };
        match requester {
            Requester::Lsu => self.lsu_accesses += 1,
            Requester::RtUnit => self.rt_accesses += 1,
        }
        (AccessOutcome::Accepted, event)
    }

    fn store(&mut self, line: u64, requester: Requester) {
        self.l1.probe(line);
        match requester {
            Requester::Lsu => self.lsu_accesses += 1,
            Requester::RtUnit => self.rt_accesses += 1,
        }
    }

    fn can_accept(&self, line: u64, requester: Requester) -> bool {
        match (requester, &self.rt_cache) {
            (Requester::RtUnit, Some(cache)) => cache.can_accept(line),
            _ => self.l1.can_accept(line),
        }
    }

    fn note_stalled_probes(&mut self, requester: Requester, count: u64) {
        match (requester, &mut self.rt_cache) {
            (Requester::RtUnit, Some(cache)) => cache.note_stalled_probes(count),
            _ => self.l1.note_stalled_probes(count),
        }
    }

    /// Outstanding misses in the L1 plus the private RT cache, if any.
    pub(crate) fn mshrs_in_use(&self) -> usize {
        self.l1.mshrs_in_use() + self.rt_cache.as_ref().map_or(0, Cache::mshrs_in_use)
    }
}

/// Locks a shard, recovering from poison (a panicking worker already
/// aborts the run; its shard's counters remain usable for diagnostics).
pub(crate) fn lock_shard(shard: &Mutex<L1Shard>) -> MutexGuard<'_, L1Shard> {
    shard
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A buffer of future events produced by one SM during an epoch, merged
/// into the shared heap at the barrier via `MemCore::absorb`. Opaque so the
/// event vocabulary stays private to this module.
#[derive(Debug, Default)]
pub(crate) struct EventBuf(Vec<(u64, Event)>);

impl EventBuf {
    pub(crate) fn new() -> Self {
        EventBuf(Vec::new())
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// An SM-exclusive L1 port for parallel-epoch workers: holds the shard's
/// lock for the duration of one cycle's SM phase and buffers event pushes
/// locally. The barrier later absorbs the buffer into the shared heap;
/// ordering is immaterial (see the module docs), so no cross-thread
/// coordination is needed during the phase.
pub(crate) struct SmPort<'a> {
    sm: usize,
    params: &'a MemParams,
    shard: MutexGuard<'a, L1Shard>,
    out: &'a mut EventBuf,
}

impl<'a> SmPort<'a> {
    pub(crate) fn new(
        params: &'a MemParams,
        shards: &'a [Mutex<L1Shard>],
        sm: usize,
        out: &'a mut EventBuf,
    ) -> Self {
        SmPort {
            sm,
            params,
            shard: lock_shard(&shards[sm]),
            out,
        }
    }
}

impl MemPort for SmPort<'_> {
    fn rt_has_private_path(&self) -> bool {
        self.params.rt_private
    }

    fn can_accept(&self, sm: usize, line: u64, requester: Requester) -> bool {
        debug_assert_eq!(sm, self.sm, "port bound to a different SM");
        self.shard.can_accept(line, requester)
    }

    fn access(
        &mut self,
        sm: usize,
        line: u64,
        waiter: u64,
        requester: Requester,
        now: u64,
    ) -> AccessOutcome {
        debug_assert_eq!(sm, self.sm, "port bound to a different SM");
        let (outcome, event) =
            self.shard
                .access(self.params, self.sm, line, waiter, requester, now);
        if let Some(ev) = event {
            self.out.0.push(ev);
        }
        outcome
    }

    fn store(&mut self, sm: usize, line: u64, requester: Requester) {
        debug_assert_eq!(sm, self.sm, "port bound to a different SM");
        self.shard.store(line, requester);
    }

    fn note_stalled_probes(&mut self, sm: usize, requester: Requester, count: u64) {
        debug_assert_eq!(sm, self.sm, "port bound to a different SM");
        self.shard.note_stalled_probes(requester, count);
    }
}

/// The shared (single-owner) part of the hierarchy: event heap, L2 banks,
/// DRAM channels. In the parallel-epoch mode only the barrier thread holds
/// it; SM workers never see it.
#[derive(Debug)]
pub(crate) struct MemCore {
    l2_banks: Vec<Cache>,
    l2_bank_busy: Vec<u64>,
    dram: Vec<DramChannel>,
    dram_banks: u64,
    lines_per_row: u64,
    events: BinaryHeap<Reverse<(u64, Event)>>,
    dram_completions: Vec<(u64, u64)>,
    /// SMs whose L1 (or private RT cache) received a fill during the most
    /// recent tick; see [`MemorySystem::l1_touched`].
    l1_touched: Vec<usize>,
}

impl MemCore {
    fn push(&mut self, at: u64, event: Event) {
        self.events.push(Reverse((at, event)));
    }

    /// Merges an epoch's buffered events into the heap. Absorption order
    /// does not affect drain order (the heap pops sorted), but callers
    /// absorb in fixed SM-index order anyway so the merge is reproducible
    /// step by step.
    pub(crate) fn absorb(&mut self, buf: &mut EventBuf) {
        for (at, event) in buf.0.drain(..) {
            self.events.push(Reverse((at, event)));
        }
    }

    /// Advances one cycle; appends `(sm, waiter)` completions to `done`.
    /// Needs the shards because L1 fills land in per-SM caches.
    pub(crate) fn tick(
        &mut self,
        now: u64,
        done: &mut Vec<(usize, u64)>,
        params: &MemParams,
        shards: &[Mutex<L1Shard>],
    ) {
        // DRAM channels progress independently.
        self.dram_completions.clear();
        self.l1_touched.clear();
        let channels = self.dram.len() as u64;
        for (ch, dram) in self.dram.iter_mut().enumerate() {
            let before = self.dram_completions.len();
            dram.tick(now, &mut self.dram_completions);
            // Tokens are lines; convert to L2 fills at the return latency.
            for &(finish, line) in &self.dram_completions[before..] {
                debug_assert_eq!((line % channels) as usize, ch);
                self.events.push(Reverse((finish, Event::L2Fill { line })));
            }
        }

        // Drain events due now.
        while let Some(&Reverse((at, _))) = self.events.peek() {
            if at > now {
                break;
            }
            let Some(Reverse((_, event))) = self.events.pop() else {
                break; // unreachable: we just peeked a due event
            };
            match event {
                Event::L2Arrive { sm, line } => {
                    let bank = self.bank_of(line);
                    if self.l2_bank_busy[bank] > now {
                        // Port conflict: retry next cycle.
                        self.push(now + 1, Event::L2Arrive { sm, line });
                        continue;
                    }
                    self.l2_bank_busy[bank] = now + 1;
                    match self.l2_banks[bank].access(line, sm as u64) {
                        Lookup::Hit => {
                            self.push(now + params.half_l2_latency, Event::L1Fill { sm, line });
                        }
                        Lookup::MshrHit => {}
                        Lookup::Miss => {
                            // Address decomposition: channel (low bits), then
                            // column within the row, then bank, then row —
                            // so streams of consecutive lines stay in one
                            // open row (standard row:bank:col interleaving).
                            let ch = self.channel_of(line);
                            let channel_line = line / self.dram.len() as u64;
                            let banks = self.dram_banks;
                            let bank_idx = ((channel_line / self.lines_per_row) % banks) as usize;
                            let row = channel_line / (self.lines_per_row * banks);
                            self.dram[ch].enqueue(line, bank_idx, row, now);
                        }
                        Lookup::Stall => {
                            self.push(now + 1, Event::L2Arrive { sm, line });
                        }
                    }
                }
                Event::L2Fill { line } => {
                    let bank = self.bank_of(line);
                    for sm in self.l2_banks[bank].fill(line) {
                        self.push(
                            now + params.half_l2_latency,
                            Event::L1Fill {
                                sm: sm as u32,
                                line,
                            },
                        );
                    }
                }
                Event::L1Fill { sm, line } => {
                    let is_rt = sm & RT_FILL != 0;
                    let sm_idx = (sm & !RT_FILL) as usize;
                    self.l1_touched.push(sm_idx);
                    let mut shard = lock_shard(&shards[sm_idx]);
                    let waiters = match (is_rt, &mut shard.rt_cache) {
                        (true, Some(cache)) => cache.fill(line),
                        // An RT-tagged fill can only originate from an
                        // RT-cache access, which requires the cache to exist.
                        (true, None) => unreachable!("RT fill without an RT cache"),
                        (false, _) => shard.l1.fill(line),
                    };
                    drop(shard);
                    for waiter in waiters {
                        self.push(
                            now + params.l1_latency,
                            Event::Done {
                                sm: sm_idx as u32,
                                waiter,
                            },
                        );
                    }
                }
                Event::Done { sm, waiter } => {
                    done.push((sm as usize, waiter));
                }
            }
        }
    }

    /// Returns `true` when no request is in flight anywhere.
    pub(crate) fn quiescent(&self) -> bool {
        self.events.is_empty() && self.dram.iter().all(|d| d.queue_len() == 0)
    }

    /// See [`MemorySystem::next_event`].
    pub(crate) fn next_event(&self, now: u64) -> Option<u64> {
        let mut next = self.events.peek().map(|Reverse((at, _))| *at);
        for d in &self.dram {
            next = match (next, d.next_service_cycle()) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
        }
        next.map(|t| t.max(now + 1))
    }

    /// See [`MemorySystem::l1_touched`].
    pub(crate) fn l1_touched(&self) -> &[usize] {
        &self.l1_touched
    }

    fn bank_of(&self, line: u64) -> usize {
        (line % self.l2_banks.len() as u64) as usize
    }

    fn channel_of(&self, line: u64) -> usize {
        (line % self.dram.len() as u64) as usize
    }
}

/// The full hierarchy.
#[derive(Debug)]
pub struct MemorySystem {
    params: MemParams,
    shards: Vec<Mutex<L1Shard>>,
    core: MemCore,
}

impl MemorySystem {
    /// Builds the hierarchy for `cfg`.
    pub fn new(cfg: &GpuConfig) -> Self {
        let l2_sets_per_bank = (cfg.l2_sets() / cfg.l2_banks).max(1);
        let rt_cache_of = |_: usize| match cfg.rt_cache {
            RtCachePolicy::SharedWithLsu => None,
            RtCachePolicy::Private { bytes } => {
                let sets = (bytes / (4 * cfg.line_bytes)).max(1);
                Some(Cache::new(sets, 4, cfg.l1_mshrs))
            }
            // Bypass = a degenerate one-line cache: no capacity to
            // pollute, but in-flight duplicate fetches still merge the
            // way a pending-request queue would.
            RtCachePolicy::Bypass => Some(Cache::new(1, 1, cfg.l1_mshrs)),
        };
        MemorySystem {
            params: MemParams {
                line_bytes: cfg.line_bytes as u64,
                l1_latency: cfg.l1_latency,
                half_l2_latency: cfg.l2_latency / 2,
                rt_private: !matches!(cfg.rt_cache, RtCachePolicy::SharedWithLsu),
            },
            shards: (0..cfg.num_sms)
                .map(|i| {
                    Mutex::new(L1Shard {
                        l1: Cache::new(cfg.l1_sets(), cfg.l1_ways, cfg.l1_mshrs),
                        rt_cache: rt_cache_of(i),
                        lsu_accesses: 0,
                        rt_accesses: 0,
                    })
                })
                .collect(),
            core: MemCore {
                l2_banks: (0..cfg.l2_banks)
                    .map(|_| Cache::new(l2_sets_per_bank, cfg.l2_ways, 64))
                    .collect(),
                l2_bank_busy: vec![0; cfg.l2_banks],
                dram: (0..cfg.dram_channels)
                    .map(|_| {
                        DramChannel::new(
                            cfg.dram_banks,
                            cfg.dram_row_hit_cycles,
                            cfg.dram_row_miss_cycles,
                            cfg.dram_transfer_cycles,
                        )
                    })
                    .collect(),
                dram_banks: cfg.dram_banks as u64,
                lines_per_row: cfg.lines_per_row(),
                events: BinaryHeap::new(),
                dram_completions: Vec::new(),
                l1_touched: Vec::new(),
            },
        }
    }

    /// Splits the hierarchy for a parallel-epoch run: the single-owner core
    /// for the barrier thread, plus the read-shared params and the shard
    /// array for SM workers.
    pub(crate) fn split(&mut self) -> (&mut MemCore, &MemParams, &[Mutex<L1Shard>]) {
        (&mut self.core, &self.params, &self.shards)
    }

    /// Converts a byte address to a line number.
    #[inline]
    pub fn line_of(&self, addr: u64) -> u64 {
        addr / self.params.line_bytes
    }

    /// The unique lines touched by `bytes` starting at `addr`.
    pub fn lines_of_range(&self, addr: u64, bytes: u64) -> impl Iterator<Item = u64> {
        let first = addr / self.params.line_bytes;
        let last = (addr + bytes.max(1) - 1) / self.params.line_bytes;
        first..=last
    }

    /// Presents one access to `sm`'s L1 port (the caller enforces the
    /// one-access-per-cycle port sharing between LSU and RT FIFO when the
    /// shared policy is active).
    pub fn access(
        &mut self,
        sm: usize,
        line: u64,
        waiter: u64,
        requester: Requester,
        now: u64,
    ) -> AccessOutcome {
        let (outcome, event) =
            lock_shard(&self.shards[sm]).access(&self.params, sm, line, waiter, requester, now);
        if let Some((at, ev)) = event {
            self.core.push(at, ev);
        }
        outcome
    }

    /// A write-through store: counts an L1 access; no completion event (the
    /// workloads keep their hot mutable state in shared memory).
    pub fn store(&mut self, sm: usize, line: u64, requester: Requester) {
        lock_shard(&self.shards[sm]).store(line, requester);
    }

    /// Returns `true` if `sm`'s L1 MSHR file is full (the access would be
    /// rejected).
    pub fn l1_mshrs_full(&self, sm: usize) -> bool {
        lock_shard(&self.shards[sm]).l1.mshrs_full()
    }

    /// Outstanding misses tracked by `sm`'s L1 plus its private RT cache, if
    /// any (deadlock diagnostics: in-flight memory the SM is waiting on).
    pub fn l1_mshrs_in_use(&self, sm: usize) -> usize {
        lock_shard(&self.shards[sm]).mshrs_in_use()
    }

    /// Returns `true` when the RT unit has a private path to memory (the
    /// shared L1 port need not be arbitrated).
    pub fn rt_has_private_path(&self) -> bool {
        self.params.rt_private
    }

    /// Whether presenting `line` on `sm`'s port for `requester` would be
    /// accepted this cycle (i.e. [`MemorySystem::access`] would not return
    /// [`AccessOutcome::Rejected`]). Non-mutating; used by `Sm::next_event`
    /// to distinguish a queue that can make progress next cycle from one
    /// blocked until a fill frees an MSHR — the latter's wakeup is already
    /// owned by this system's event heap.
    pub fn can_accept(&self, sm: usize, line: u64, requester: Requester) -> bool {
        lock_shard(&self.shards[sm]).can_accept(line, requester)
    }

    /// Bulk-accounts `count` rejected port presentations by `requester` on
    /// `sm`, exactly as `count` per-cycle retries ending in
    /// [`AccessOutcome::Rejected`] would have (stall statistics only — a
    /// rejected access never reaches the requester counters). Called by
    /// `Sm::fast_forward` so the stepped oracle and the event-driven loop
    /// report identical stall streams.
    pub fn note_stalled_probes(&mut self, sm: usize, requester: Requester, count: u64) {
        lock_shard(&self.shards[sm]).note_stalled_probes(requester, count);
    }

    /// Advances one cycle; appends `(sm, waiter)` completions to `done`.
    pub fn tick(&mut self, now: u64, done: &mut Vec<(usize, u64)>) {
        self.core.tick(now, done, &self.params, &self.shards);
    }

    /// Returns `true` when no request is in flight anywhere.
    pub fn quiescent(&self) -> bool {
        self.core.quiescent()
    }

    /// The earliest future cycle at which [`MemorySystem::tick`] can do any
    /// work, or `None` when the hierarchy is quiescent.
    ///
    /// Two sources of future activity exist, both expressed as absolute
    /// cycles: the event heap (interconnect hops, fills, completions, L2
    /// retries) and each DRAM channel's next possible FR-FCFS service
    /// ([`DramChannel::next_service_cycle`]). Ticking strictly between `now`
    /// and the returned cycle is provably a no-op, which is what licenses
    /// the event-driven loop to skip those cycles. Call only after `tick
    /// (now)` has drained everything due at `now`; the result is clamped to
    /// `now + 1` so the caller always advances.
    pub fn next_event(&self, now: u64) -> Option<u64> {
        self.core.next_event(now)
    }

    /// SMs whose L1 (or private RT cache) received a fill during the most
    /// recent [`MemorySystem::tick`] — the set of SMs whose
    /// [`MemorySystem::can_accept`] answers may just have flipped. May
    /// contain duplicates; order follows event-drain order.
    pub fn l1_touched(&self) -> &[usize] {
        self.core.l1_touched()
    }

    /// Aggregated statistics across all components.
    pub fn stats(&self) -> MemoryStats {
        let mut l1 = CacheStats::default();
        let mut rt_cache = CacheStats::default();
        let mut lsu_accesses = 0;
        let mut rt_accesses = 0;
        for shard in &self.shards {
            let shard = lock_shard(shard);
            let s = shard.l1.stats();
            l1.hits += s.hits;
            l1.mshr_hits += s.mshr_hits;
            l1.misses += s.misses;
            l1.mshr_stalls += s.mshr_stalls;
            if let Some(rt) = &shard.rt_cache {
                let s = rt.stats();
                rt_cache.hits += s.hits;
                rt_cache.mshr_hits += s.mshr_hits;
                rt_cache.misses += s.misses;
                rt_cache.mshr_stalls += s.mshr_stalls;
            }
            lsu_accesses += shard.lsu_accesses;
            rt_accesses += shard.rt_accesses;
        }
        let mut l2 = CacheStats::default();
        for c in &self.core.l2_banks {
            let s = c.stats();
            l2.hits += s.hits;
            l2.mshr_hits += s.mshr_hits;
            l2.misses += s.misses;
            l2.mshr_stalls += s.mshr_stalls;
        }
        let mut dram = DramStats::default();
        for d in &self.core.dram {
            let s = d.stats();
            dram.accesses += s.accesses;
            dram.row_hits += s.row_hits;
            dram.activations += s.activations;
        }
        MemoryStats {
            l1_lsu_accesses: lsu_accesses,
            l1_rt_accesses: rt_accesses,
            l1,
            rt_cache,
            l2,
            dram,
        }
    }
}

impl MemPort for MemorySystem {
    fn rt_has_private_path(&self) -> bool {
        MemorySystem::rt_has_private_path(self)
    }

    fn can_accept(&self, sm: usize, line: u64, requester: Requester) -> bool {
        MemorySystem::can_accept(self, sm, line, requester)
    }

    fn access(
        &mut self,
        sm: usize,
        line: u64,
        waiter: u64,
        requester: Requester,
        now: u64,
    ) -> AccessOutcome {
        MemorySystem::access(self, sm, line, waiter, requester, now)
    }

    fn store(&mut self, sm: usize, line: u64, requester: Requester) {
        MemorySystem::store(self, sm, line, requester)
    }

    fn note_stalled_probes(&mut self, sm: usize, requester: Requester, count: u64) {
        MemorySystem::note_stalled_probes(self, sm, requester, count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_until_done(mem: &mut MemorySystem, expect: usize, max: u64) -> Vec<(u64, usize, u64)> {
        let mut done = Vec::new();
        let mut out = Vec::new();
        for now in 0..max {
            done.clear();
            mem.tick(now, &mut done);
            for &(sm, w) in &done {
                out.push((now, sm, w));
            }
            if out.len() >= expect && mem.quiescent() {
                break;
            }
        }
        out
    }

    #[test]
    fn l1_hit_latency() {
        let cfg = GpuConfig::tiny();
        let mut mem = MemorySystem::new(&cfg);
        // Warm the line (miss then fill).
        assert_eq!(
            mem.access(0, 7, 1, Requester::Lsu, 0),
            AccessOutcome::Accepted
        );
        let first = run_until_done(&mut mem, 1, 100_000);
        assert_eq!(first.len(), 1);
        let miss_done = first[0].0;
        assert!(
            miss_done > cfg.l1_latency + cfg.l2_latency / 2,
            "miss was too fast"
        );

        // Second access hits.
        let t0 = miss_done + 1;
        assert_eq!(
            mem.access(0, 7, 2, Requester::Lsu, t0),
            AccessOutcome::Accepted
        );
        let mut done = Vec::new();
        for now in t0..t0 + cfg.l1_latency + 2 {
            done.clear();
            mem.tick(now, &mut done);
            if !done.is_empty() {
                assert_eq!(now, t0 + cfg.l1_latency, "hit latency mismatch");
                return;
            }
        }
        panic!(
            "hit never completed within {} cycles; quiescent={}, next_event={:?}",
            cfg.l1_latency + 2,
            mem.quiescent(),
            mem.next_event(t0 + cfg.l1_latency + 2),
        );
    }

    #[test]
    fn shared_l2_serves_second_sm_without_dram() {
        let cfg = GpuConfig::small();
        let mut mem = MemorySystem::new(&cfg);
        mem.access(0, 42, 1, Requester::Lsu, 0);
        run_until_done(&mut mem, 1, 100_000);
        let dram_before = mem.stats().dram.accesses;
        // A different SM misses its L1 but hits in L2.
        mem.access(1, 42, 2, Requester::Lsu, 10_000);
        let mut done = Vec::new();
        for now in 10_000..20_000 {
            done.clear();
            mem.tick(now, &mut done);
            if !done.is_empty() {
                break;
            }
        }
        assert_eq!(
            mem.stats().dram.accesses,
            dram_before,
            "L2 hit must not touch DRAM"
        );
        assert_eq!(mem.stats().l2.hits, 1);
    }

    #[test]
    fn requester_accounting() {
        let cfg = GpuConfig::tiny();
        let mut mem = MemorySystem::new(&cfg);
        mem.access(0, 1, 1, Requester::Lsu, 0);
        mem.access(0, 2, 2, Requester::RtUnit, 1);
        mem.store(0, 3, Requester::Lsu);
        let s = mem.stats();
        assert_eq!(s.l1_lsu_accesses, 2);
        assert_eq!(s.l1_rt_accesses, 1);
    }

    #[test]
    fn range_line_splitting() {
        let cfg = GpuConfig::tiny();
        let mem = MemorySystem::new(&cfg);
        // 128-byte lines: a 64-byte fetch at offset 96 spans two lines.
        let lines: Vec<u64> = mem.lines_of_range(96, 64).collect();
        assert_eq!(lines, vec![0, 1]);
        let lines: Vec<u64> = mem.lines_of_range(0, 128).collect();
        assert_eq!(lines, vec![0]);
        let lines: Vec<u64> = mem.lines_of_range(256, 1).collect();
        assert_eq!(lines, vec![2]);
    }

    #[test]
    fn next_event_predicts_every_productive_tick() {
        // Differential pin of the hierarchy's next_event contract: drive a
        // burst of misses to completion cycle by cycle and assert that every
        // tick that delivered a completion (or was needed to make progress)
        // lands exactly on a predicted cycle, and that predicted idle gaps
        // deliver nothing.
        let cfg = GpuConfig::tiny();
        let mut mem = MemorySystem::new(&cfg);
        for (i, line) in [0u64, 7, 7, 129, 4096].into_iter().enumerate() {
            assert_eq!(
                mem.access(0, line, i as u64, Requester::Lsu, 0),
                AccessOutcome::Accepted
            );
        }
        let mut done = Vec::new();
        let mut now = 0u64;
        mem.tick(now, &mut done);
        while !mem.quiescent() {
            let next = mem
                .next_event(now)
                .expect("non-quiescent hierarchy must report a next event");
            assert!(next > now, "next_event must advance ({next} <= {now})");
            let before = done.len();
            for t in now + 1..next {
                mem.tick(t, &mut done);
                assert_eq!(done.len(), before, "completion inside skipped gap at {t}");
            }
            mem.tick(next, &mut done);
            now = next;
        }
        assert_eq!(mem.next_event(now), None, "quiescent => no next event");
        let mut waiters: Vec<u64> = done.iter().map(|&(_, w)| w).collect();
        waiters.sort_unstable();
        assert_eq!(waiters, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn next_event_sees_l1_hit_latency() {
        // A pure L1 hit's Done event is the only future activity: next_event
        // must report exactly now + l1_latency.
        let cfg = GpuConfig::tiny();
        let mut mem = MemorySystem::new(&cfg);
        mem.access(0, 3, 1, Requester::Lsu, 0);
        let mut done = Vec::new();
        let mut now = 0;
        while !mem.quiescent() {
            mem.tick(now, &mut done);
            now += 1;
        }
        done.clear();
        let t0 = now + 100;
        mem.access(0, 3, 2, Requester::Lsu, t0);
        assert_eq!(mem.next_event(t0), Some(t0 + cfg.l1_latency));
        mem.tick(t0 + cfg.l1_latency, &mut done);
        assert_eq!(done, vec![(0, 2)]);
    }

    #[test]
    fn mshr_merge_completes_all_waiters() {
        let cfg = GpuConfig::tiny();
        let mut mem = MemorySystem::new(&cfg);
        mem.access(0, 9, 1, Requester::Lsu, 0);
        mem.access(0, 9, 2, Requester::Lsu, 1);
        mem.access(0, 9, 3, Requester::RtUnit, 2);
        let done = run_until_done(&mut mem, 3, 100_000);
        let mut waiters: Vec<u64> = done.iter().map(|&(_, _, w)| w).collect();
        waiters.sort_unstable();
        assert_eq!(waiters, vec![1, 2, 3]);
        // One DRAM access despite three waiters.
        assert_eq!(mem.stats().dram.accesses, 1);
    }

    #[test]
    fn sm_port_buffers_events_identically_to_the_serial_port() {
        // Drive the same access stream through the serial MemorySystem port
        // and through an SmPort whose buffer is absorbed afterwards: both
        // hierarchies must then deliver identical completion streams. This
        // pins the epoch-drain contract at the module level.
        let cfg = GpuConfig::tiny();
        let mut serial = MemorySystem::new(&cfg);
        let mut sharded = MemorySystem::new(&cfg);
        let stream = [(0u64, 1u64), (7, 2), (7, 3), (129, 4)];
        for &(line, waiter) in &stream {
            assert_eq!(
                MemPort::access(&mut serial, 0, line, waiter, Requester::Lsu, 0),
                AccessOutcome::Accepted
            );
        }
        let mut buf = EventBuf::new();
        {
            let (_, params, shards) = sharded.split();
            let mut port = SmPort::new(params, shards, 0, &mut buf);
            for &(line, waiter) in &stream {
                assert_eq!(
                    port.access(0, line, waiter, Requester::Lsu, 0),
                    AccessOutcome::Accepted
                );
            }
            assert!(port.can_accept(0, 0, Requester::Lsu));
        }
        assert!(!buf.is_empty());
        let (core, _, _) = sharded.split();
        core.absorb(&mut buf);
        assert!(buf.is_empty());
        let a = run_until_done(&mut serial, 4, 100_000);
        let b = run_until_done(&mut sharded, 4, 100_000);
        assert_eq!(a, b, "completion streams diverged");
        assert_eq!(serial.stats(), sharded.stats());
    }
}
