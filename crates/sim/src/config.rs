//! Simulator configuration (paper Table III).

use crate::error::SimError;
use hsu_core::HsuConfig;

/// How the RT/HSU unit's CISC fetches reach memory (paper §VI-I discusses
/// both alternatives as fixes for L1/MSHR contention).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RtCachePolicy {
    /// Time-share the SM's L1 data cache with the load-store unit (the
    /// paper's evaluated design).
    SharedWithLsu,
    /// Give the RT unit its own private cache of the given size.
    Private {
        /// Private cache capacity in bytes.
        bytes: usize,
    },
    /// Bypass the L1 entirely: RT fetches go straight to the L2.
    Bypass,
}

/// Which RT-unit organization each SM instantiates — the
/// architectural-diversity ablation ("does the HSU win survive a smarter RT
/// core?"). Both organizations execute the same ISA and produce identical
/// *functional* results (instruction counts, neighbors, error payloads);
/// only timing and memory-traffic columns may differ. The cross-organization
/// identity is locked by `tests/rt_organization.rs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RtCoreKind {
    /// The paper's per-instruction RDNA3-style pipeline
    /// ([`crate::rt_unit::RtUnit`]): every dispatched warp instruction
    /// fetches its node lines through the FIFO with unbounded outstanding
    /// fetches and the datapath drains buffer entries in slot-scan order.
    #[default]
    Baseline,
    /// A treelet-scheduled core ([`crate::treelet::TreeletRtUnit`]) with
    /// cache-line-sized node staging buffers that double as a small line
    /// cache, fetch throttling to the staging capacity, and a FIFO
    /// ray-scheduling queue feeding the datapath (the Haydelj/arches
    /// `UnitTreeletRTCore` organization).
    Treelet,
}

impl RtCoreKind {
    /// CLI / display name (`baseline` or `treelet`).
    pub fn name(self) -> &'static str {
        match self {
            RtCoreKind::Baseline => "baseline",
            RtCoreKind::Treelet => "treelet",
        }
    }

    /// Both organizations, baseline first (handy for differential sweeps).
    pub const ALL: [RtCoreKind; 2] = [RtCoreKind::Baseline, RtCoreKind::Treelet];
}

impl std::str::FromStr for RtCoreKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "baseline" => Ok(RtCoreKind::Baseline),
            "treelet" => Ok(RtCoreKind::Treelet),
            other => Err(format!("unknown RT core '{other}' (baseline|treelet)")),
        }
    }
}

/// How [`crate::Gpu::run`] advances simulated time.
///
/// All modes produce identical reports for every kernel — the equivalence
/// is locked by `tests/sim_equivalence.rs` — but [`SimMode::Event`] skips
/// cycles in which no component can change state (long DRAM stalls), which
/// makes memory-bound workloads simulate several times faster, and
/// [`SimMode::ParallelEpoch`] additionally fans the per-cycle SM work out
/// across worker threads between memory-system barriers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimMode {
    /// Tick every SM and the memory hierarchy on every cycle. The legacy
    /// loop, kept as the oracle for differential testing.
    Stepped,
    /// Fast-forward to the earliest cycle any component reports it can
    /// change state (`next_event`), accounting skipped cycles in bulk.
    #[default]
    Event,
    /// Event-driven like [`SimMode::Event`], but within each visited cycle
    /// all observing SMs advance concurrently on a worker pool; the memory
    /// system drains between those epochs under a deterministic barrier, so
    /// reports stay bit-identical to the other modes for *any* thread count
    /// (see [`GpuConfig::sim_threads`]).
    ParallelEpoch,
}

impl SimMode {
    /// CLI / display name (`stepped`, `event`, or `parallel`).
    pub fn name(self) -> &'static str {
        match self {
            SimMode::Stepped => "stepped",
            SimMode::Event => "event",
            SimMode::ParallelEpoch => "parallel",
        }
    }

    /// All modes, in oracle-first order (handy for differential sweeps).
    pub const ALL: [SimMode; 3] = [SimMode::Stepped, SimMode::Event, SimMode::ParallelEpoch];
}

impl std::str::FromStr for SimMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "stepped" => Ok(SimMode::Stepped),
            "event" => Ok(SimMode::Event),
            "parallel" | "parallel-epoch" => Ok(SimMode::ParallelEpoch),
            other => Err(format!(
                "unknown sim mode '{other}' (stepped|event|parallel)"
            )),
        }
    }
}

/// Full machine configuration.
///
/// [`GpuConfig::volta_v100`] reproduces Table III; [`GpuConfig::small`] is a
/// scaled machine (fewer SMs) used by tests and the figure harnesses, which
/// report relative quantities only.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Number of streaming multiprocessors.
    pub num_sms: usize,
    /// Sub-cores (warp schedulers) per SM.
    pub sub_cores: usize,
    /// Maximum resident warps per SM.
    pub max_warps_per_sm: usize,
    /// RT/HSU unit configuration (one unit per SM).
    pub hsu: HsuConfig,
    /// How RT-unit fetches interact with the L1 (§VI-I ablation).
    pub rt_cache: RtCachePolicy,
    /// Which RT-unit organization each SM instantiates.
    pub rt_core: RtCoreKind,
    /// Cache-line-sized node staging buffers in the [`RtCoreKind::Treelet`]
    /// organization (bounds outstanding node fetches and sizes the staged
    /// line cache; ignored by [`RtCoreKind::Baseline`]).
    pub rt_staging_buffers: usize,
    /// ALU latency in cycles (dependent issue-to-ready).
    pub alu_latency: u64,
    /// Shared-memory access latency in cycles.
    pub shared_latency: u64,
    /// L1 data cache size in bytes.
    pub l1_bytes: usize,
    /// L1 associativity.
    pub l1_ways: usize,
    /// L1 hit latency in cycles.
    pub l1_latency: u64,
    /// MSHR entries per L1.
    pub l1_mshrs: usize,
    /// Cache line size in bytes (applies to all levels).
    pub line_bytes: usize,
    /// L2 size in bytes.
    pub l2_bytes: usize,
    /// L2 associativity (24-way in Table III).
    pub l2_ways: usize,
    /// L2 banks (each accepts one lookup per cycle).
    pub l2_banks: usize,
    /// Additional round-trip latency SM ↔ L2 (interconnect + lookup).
    pub l2_latency: u64,
    /// HBM channels.
    pub dram_channels: usize,
    /// Banks per channel.
    pub dram_banks: usize,
    /// DRAM row size in bytes.
    pub dram_row_bytes: usize,
    /// Service time of a row-buffer hit, in cycles.
    pub dram_row_hit_cycles: u64,
    /// Service time including precharge + activate on a row miss.
    pub dram_row_miss_cycles: u64,
    /// Data-transfer occupancy per line, in cycles (bandwidth bound).
    pub dram_transfer_cycles: u64,
    /// Safety valve: abort if a kernel exceeds this many cycles.
    pub max_cycles: u64,
    /// How the run loop advances time (identical results either way).
    pub sim_mode: SimMode,
    /// Worker threads for [`SimMode::ParallelEpoch`] (ignored by the other
    /// modes). `0` means "auto": the host's available parallelism, clamped
    /// to the SM count. Results are bit-identical for every value — the
    /// thread count only changes wall-clock, never the report.
    pub sim_threads: usize,
}

impl GpuConfig {
    /// The paper's Table III configuration (Volta V100-class).
    pub fn volta_v100() -> Self {
        GpuConfig {
            num_sms: 80,
            sub_cores: 4,
            max_warps_per_sm: 64,
            hsu: HsuConfig::default(),
            rt_cache: RtCachePolicy::SharedWithLsu,
            rt_core: RtCoreKind::default(),
            rt_staging_buffers: 4,
            alu_latency: 4,
            shared_latency: 24,
            l1_bytes: 128 * 1024,
            l1_ways: 8,
            l1_latency: 28,
            l1_mshrs: 48,
            line_bytes: 128,
            l2_bytes: 6 * 1024 * 1024,
            l2_ways: 24,
            l2_banks: 16,
            l2_latency: 180,
            dram_channels: 8,
            dram_banks: 16,
            dram_row_bytes: 2048,
            dram_row_hit_cycles: 20,
            dram_row_miss_cycles: 48,
            dram_transfer_cycles: 4,
            max_cycles: 2_000_000_000,
            sim_mode: SimMode::default(),
            sim_threads: 0,
        }
    }

    /// A scaled machine for laptop-sized experiments: 16 SMs, same per-SM
    /// structure, proportionally scaled L2 and DRAM channels.
    pub fn small() -> Self {
        GpuConfig {
            num_sms: 16,
            l2_bytes: 2 * 1024 * 1024,
            l2_banks: 8,
            dram_channels: 4,
            ..Self::volta_v100()
        }
    }

    /// A single-SM machine for unit tests.
    pub fn tiny() -> Self {
        GpuConfig {
            num_sms: 1,
            max_warps_per_sm: 16,
            l1_bytes: 32 * 1024,
            l2_bytes: 256 * 1024,
            l2_banks: 2,
            dram_channels: 1,
            ..Self::volta_v100()
        }
    }

    /// Replaces the HSU configuration (width / warp-buffer sweeps).
    pub fn with_hsu(mut self, hsu: HsuConfig) -> Self {
        self.hsu = hsu;
        self
    }

    /// Replaces the RT-unit organization (baseline vs treelet ablation).
    pub fn with_rt_core(mut self, kind: RtCoreKind) -> Self {
        self.rt_core = kind;
        self
    }

    /// Replaces the simulation mode (stepped oracle vs event-driven).
    pub fn with_sim_mode(mut self, mode: SimMode) -> Self {
        self.sim_mode = mode;
        self
    }

    /// Sets the [`SimMode::ParallelEpoch`] worker-thread count (`0` = auto).
    pub fn with_sim_threads(mut self, threads: usize) -> Self {
        self.sim_threads = threads;
        self
    }

    /// The worker count a [`SimMode::ParallelEpoch`] run will actually use:
    /// `sim_threads`, with `0` resolved to the host's available parallelism,
    /// clamped to `[1, num_sms]` (more workers than SMs can never help).
    /// Purely a scheduling choice — reports are bit-identical for every
    /// value — so callers (e.g. a bench runner splitting a global thread
    /// budget across concurrent runs) may pick anything.
    pub fn effective_sim_threads(&self) -> usize {
        let requested = if self.sim_threads == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            self.sim_threads
        };
        requested.clamp(1, self.num_sms.max(1))
    }

    /// Number of L1 sets.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly.
    pub fn l1_sets(&self) -> usize {
        let sets = self.l1_bytes / (self.l1_ways * self.line_bytes);
        assert!(sets > 0, "L1 geometry yields zero sets");
        sets
    }

    /// Number of L2 sets.
    pub fn l2_sets(&self) -> usize {
        let sets = self.l2_bytes / (self.l2_ways * self.line_bytes);
        assert!(sets > 0, "L2 geometry yields zero sets");
        sets
    }

    /// Lines per DRAM row.
    pub fn lines_per_row(&self) -> u64 {
        (self.dram_row_bytes / self.line_bytes) as u64
    }

    /// Rejects configurations the simulator cannot meaningfully run,
    /// returning [`SimError::InvalidConfig`] naming the offending field.
    ///
    /// Called by [`crate::Gpu::run`] before simulating (and by `repro`
    /// before building a suite), so nonsense configs surface as typed
    /// errors instead of divide-by-zero panics or silent empty reports.
    ///
    /// Notably, `max_cycles == 0` is rejected rather than interpreted as
    /// "run zero cycles": a guard that can never be satisfied is a config
    /// bug, not a degenerate run.
    pub fn validate(&self) -> Result<(), SimError> {
        fn bad(field: &'static str, value: impl ToString, reason: &'static str) -> SimError {
            SimError::InvalidConfig {
                field,
                value: value.to_string(),
                reason,
            }
        }
        if self.num_sms == 0 {
            return Err(bad("num_sms", self.num_sms, "need at least one SM"));
        }
        if self.sub_cores == 0 {
            return Err(bad(
                "sub_cores",
                self.sub_cores,
                "need at least one sub-core",
            ));
        }
        if self.max_warps_per_sm == 0 {
            return Err(bad(
                "max_warps_per_sm",
                self.max_warps_per_sm,
                "need at least one resident warp slot",
            ));
        }
        if self.hsu.warp_buffer_entries == 0 {
            return Err(bad(
                "hsu.warp_buffer_entries",
                self.hsu.warp_buffer_entries,
                "the RT unit needs at least one warp-buffer entry",
            ));
        }
        if self.rt_core == RtCoreKind::Treelet && self.rt_staging_buffers == 0 {
            return Err(bad(
                "rt_staging_buffers",
                self.rt_staging_buffers,
                "the treelet core needs at least one staging buffer",
            ));
        }
        if self.line_bytes == 0 {
            return Err(bad(
                "line_bytes",
                self.line_bytes,
                "line size must be nonzero",
            ));
        }
        if self.l1_ways == 0 {
            return Err(bad(
                "l1_ways",
                self.l1_ways,
                "associativity must be nonzero",
            ));
        }
        if self.l1_mshrs == 0 {
            return Err(bad(
                "l1_mshrs",
                self.l1_mshrs,
                "an L1 without MSHRs can never service a miss",
            ));
        }
        if self.l1_bytes < self.l1_ways * self.line_bytes {
            return Err(bad(
                "l1_bytes",
                self.l1_bytes,
                "L1 geometry yields zero sets (l1_bytes < l1_ways * line_bytes)",
            ));
        }
        if self.l2_ways == 0 {
            return Err(bad(
                "l2_ways",
                self.l2_ways,
                "associativity must be nonzero",
            ));
        }
        if self.l2_banks == 0 {
            return Err(bad("l2_banks", self.l2_banks, "need at least one L2 bank"));
        }
        if self.l2_bytes < self.l2_ways * self.line_bytes {
            return Err(bad(
                "l2_bytes",
                self.l2_bytes,
                "L2 geometry yields zero sets (l2_bytes < l2_ways * line_bytes)",
            ));
        }
        if self.dram_channels == 0 {
            return Err(bad(
                "dram_channels",
                self.dram_channels,
                "need at least one DRAM channel",
            ));
        }
        if self.dram_banks == 0 {
            return Err(bad(
                "dram_banks",
                self.dram_banks,
                "need at least one bank per channel",
            ));
        }
        if self.dram_row_bytes < self.line_bytes {
            return Err(bad(
                "dram_row_bytes",
                self.dram_row_bytes,
                "a DRAM row must hold at least one line",
            ));
        }
        if self.dram_transfer_cycles == 0 {
            return Err(bad(
                "dram_transfer_cycles",
                self.dram_transfer_cycles,
                "transfer occupancy must be nonzero",
            ));
        }
        if self.max_cycles == 0 {
            return Err(bad(
                "max_cycles",
                self.max_cycles,
                "a zero-cycle guard can never be satisfied",
            ));
        }
        Ok(())
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        Self::small()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iii_values() {
        let cfg = GpuConfig::volta_v100();
        assert_eq!(cfg.num_sms, 80);
        assert_eq!(cfg.sub_cores, 4);
        assert_eq!(cfg.max_warps_per_sm, 64);
        assert_eq!(cfg.hsu.warp_buffer_entries, 8);
        assert_eq!(cfg.l1_bytes, 128 * 1024);
        assert_eq!(cfg.l2_bytes, 6 * 1024 * 1024);
        assert_eq!(cfg.l2_ways, 24);
        assert_eq!(cfg.line_bytes, 128);
    }

    #[test]
    fn geometry_is_consistent() {
        for cfg in [
            GpuConfig::volta_v100(),
            GpuConfig::small(),
            GpuConfig::tiny(),
        ] {
            assert!(cfg.l1_sets().is_power_of_two());
            assert!(cfg.l2_sets() > 0);
            assert_eq!(cfg.lines_per_row(), 16);
        }
    }

    #[test]
    fn sim_mode_round_trips_and_defaults_to_event() {
        assert_eq!(GpuConfig::volta_v100().sim_mode, SimMode::Event);
        assert_eq!("stepped".parse::<SimMode>().unwrap(), SimMode::Stepped);
        assert_eq!("event".parse::<SimMode>().unwrap(), SimMode::Event);
        assert_eq!(
            "parallel".parse::<SimMode>().unwrap(),
            SimMode::ParallelEpoch
        );
        assert_eq!(
            "parallel-epoch".parse::<SimMode>().unwrap(),
            SimMode::ParallelEpoch
        );
        assert!("cycle".parse::<SimMode>().is_err());
        for mode in SimMode::ALL {
            assert_eq!(mode.name().parse::<SimMode>().unwrap(), mode);
        }
        let cfg = GpuConfig::tiny().with_sim_mode(SimMode::Stepped);
        assert_eq!(cfg.sim_mode, SimMode::Stepped);
        assert_eq!(GpuConfig::tiny().sim_threads, 0, "auto by default");
        assert_eq!(GpuConfig::tiny().with_sim_threads(4).sim_threads, 4);
    }

    #[test]
    fn rt_core_round_trips_and_defaults_to_baseline() {
        assert_eq!(GpuConfig::volta_v100().rt_core, RtCoreKind::Baseline);
        assert_eq!(GpuConfig::volta_v100().rt_staging_buffers, 4);
        assert_eq!(
            "baseline".parse::<RtCoreKind>().unwrap(),
            RtCoreKind::Baseline
        );
        assert_eq!(
            "treelet".parse::<RtCoreKind>().unwrap(),
            RtCoreKind::Treelet
        );
        assert!("rdna3".parse::<RtCoreKind>().is_err());
        for kind in RtCoreKind::ALL {
            assert_eq!(kind.name().parse::<RtCoreKind>().unwrap(), kind);
        }
        let cfg = GpuConfig::tiny().with_rt_core(RtCoreKind::Treelet);
        assert_eq!(cfg.rt_core, RtCoreKind::Treelet);
    }

    #[test]
    fn treelet_core_requires_staging_buffers() {
        let cfg = GpuConfig {
            rt_core: RtCoreKind::Treelet,
            rt_staging_buffers: 0,
            ..GpuConfig::tiny()
        };
        match cfg.validate() {
            Err(SimError::InvalidConfig { field, .. }) => {
                assert_eq!(field, "rt_staging_buffers")
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
        // The baseline core ignores the knob entirely.
        let cfg = GpuConfig {
            rt_staging_buffers: 0,
            ..GpuConfig::tiny()
        };
        cfg.validate().expect("baseline ignores staging buffers");
    }

    #[test]
    fn validate_accepts_every_preset() {
        for kind in RtCoreKind::ALL {
            GpuConfig::tiny()
                .with_rt_core(kind)
                .validate()
                .expect("both organizations must validate");
        }
        for cfg in [
            GpuConfig::volta_v100(),
            GpuConfig::small(),
            GpuConfig::tiny(),
        ] {
            cfg.validate().expect("preset must validate");
        }
    }

    #[test]
    fn validate_names_the_offending_field() {
        let cases: Vec<(&'static str, GpuConfig)> = vec![
            (
                "num_sms",
                GpuConfig {
                    num_sms: 0,
                    ..GpuConfig::tiny()
                },
            ),
            (
                "l1_mshrs",
                GpuConfig {
                    l1_mshrs: 0,
                    ..GpuConfig::tiny()
                },
            ),
            (
                "max_cycles",
                GpuConfig {
                    max_cycles: 0,
                    ..GpuConfig::tiny()
                },
            ),
            (
                "l1_bytes",
                GpuConfig {
                    l1_bytes: 64,
                    ..GpuConfig::tiny()
                },
            ),
            (
                "dram_row_bytes",
                GpuConfig {
                    dram_row_bytes: 8,
                    ..GpuConfig::tiny()
                },
            ),
        ];
        for (want, cfg) in cases {
            match cfg.validate() {
                Err(SimError::InvalidConfig { field, .. }) => {
                    assert_eq!(field, want, "wrong field blamed")
                }
                other => panic!("{want}: expected InvalidConfig, got {other:?}"),
            }
        }
    }

    #[test]
    fn small_preserves_per_sm_structure() {
        let small = GpuConfig::small();
        let big = GpuConfig::volta_v100();
        assert_eq!(small.max_warps_per_sm, big.max_warps_per_sm);
        assert_eq!(small.l1_bytes, big.l1_bytes);
        assert_eq!(small.hsu, big.hsu);
    }
}
