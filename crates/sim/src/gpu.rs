//! The top-level GPU: SMs + memory hierarchy + the simulation loop.

use crate::config::GpuConfig;
use crate::memory::MemorySystem;
use crate::sm::Sm;
use crate::stats::SimReport;
use crate::trace::KernelTrace;

/// A configured GPU ready to execute kernel traces.
///
/// # Examples
///
/// ```
/// use hsu_sim::config::GpuConfig;
/// use hsu_sim::trace::{KernelTrace, ThreadOp, ThreadTrace};
/// use hsu_sim::Gpu;
///
/// let mut k = KernelTrace::new("tiny");
/// let mut t = ThreadTrace::new();
/// t.push(ThreadOp::Alu { count: 1 });
/// k.push_thread(t);
/// let report = Gpu::new(GpuConfig::tiny()).run(&k);
/// assert_eq!(report.warps_retired, 1);
/// ```
#[derive(Debug, Clone)]
pub struct Gpu {
    cfg: GpuConfig,
}

impl Gpu {
    /// Creates a GPU with the given configuration.
    pub fn new(cfg: GpuConfig) -> Self {
        Gpu { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// Runs one kernel to completion and returns its report.
    ///
    /// Warps are distributed round-robin across SMs (the grid-stride launch
    /// pattern all four workloads use). The simulation is deterministic.
    ///
    /// # Panics
    ///
    /// Panics if the kernel exceeds `cfg.max_cycles` (deadlock guard).
    pub fn run(&self, kernel: &KernelTrace) -> SimReport {
        let mut sms: Vec<Sm> = (0..self.cfg.num_sms)
            .map(|i| Sm::new(i, &self.cfg))
            .collect();
        let mut mem = MemorySystem::new(&self.cfg);

        for (i, warp) in kernel.warps().into_iter().enumerate() {
            sms[i % self.cfg.num_sms].enqueue_warp(warp);
        }

        let mut done = Vec::new();
        let mut cycles = 0u64;
        for now in 0..self.cfg.max_cycles {
            done.clear();
            mem.tick(now, &mut done);
            for &(sm, waiter) in &done {
                sms[sm].on_mem_done(waiter);
            }
            for sm in &mut sms {
                sm.tick(now, &mut mem);
            }
            if sms.iter().all(|sm| sm.finished()) && mem.quiescent() {
                cycles = now + 1;
                break;
            }
            if now + 1 == self.cfg.max_cycles {
                panic!(
                    "kernel '{}' exceeded the {}-cycle guard",
                    kernel.name(),
                    self.cfg.max_cycles
                );
            }
        }

        let sm_stats: Vec<_> = sms.iter().map(|s| s.stats().clone()).collect();
        let rt_stats: Vec<_> = sms.iter().map(|s| s.rt_stats()).collect();
        SimReport::aggregate(
            kernel.name().to_string(),
            cycles,
            self.cfg.num_sms,
            &sm_stats,
            &rt_stats,
            mem.stats(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{ThreadOp, ThreadTrace};
    use hsu_geometry::point::Metric;

    fn kernel_of(n_threads: usize, ops: Vec<ThreadOp>) -> KernelTrace {
        let mut k = KernelTrace::new("k");
        for _ in 0..n_threads {
            let mut t = ThreadTrace::new();
            for &op in &ops {
                t.push(op);
            }
            k.push_thread(t);
        }
        k
    }

    #[test]
    fn determinism() {
        let k = kernel_of(
            256,
            vec![
                ThreadOp::Load {
                    addr: 0x100,
                    bytes: 64,
                },
                ThreadOp::Alu { count: 8 },
                ThreadOp::HsuDistance {
                    metric: Metric::Euclidean,
                    dim: 32,
                    candidate_addr: 0x4000,
                },
            ],
        );
        let gpu = Gpu::new(GpuConfig::tiny());
        let a = gpu.run(&k);
        let b = gpu.run(&k);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.l1_accesses(), b.l1_accesses());
    }

    #[test]
    fn work_scales_across_sms() {
        // Compute-bound kernel: scaling SMs must scale throughput.
        let k = kernel_of(32 * 64, vec![ThreadOp::Alu { count: 64 }]);
        let one = Gpu::new(GpuConfig {
            num_sms: 1,
            ..GpuConfig::tiny()
        })
        .run(&k);
        let four = Gpu::new(GpuConfig {
            num_sms: 4,
            ..GpuConfig::tiny()
        })
        .run(&k);
        assert!(
            (four.cycles as f64) < one.cycles as f64 * 0.4,
            "4 SMs {} vs 1 SM {}",
            four.cycles,
            one.cycles
        );
    }

    #[test]
    fn hsu_offload_beats_simt_expansion_under_divergence() {
        // The paper's core mechanism: under thread divergence (sparse active
        // masks) the SIMT lowering of a 96-dim distance pays its full
        // instruction sequence for a handful of useful lanes, while the HSU's
        // single-lane pipeline only spends cycles on active lanes (§IV-B).
        // 2 of every 32 lanes are doing distance work this "iteration".
        let warps = 16u64;
        let dim = 96u32;
        let mut hsu = KernelTrace::new("hsu");
        let mut base = KernelTrace::new("base");
        for w in 0..warps {
            for lane in 0..32u64 {
                let active = lane % 16 == 0; // 2 active lanes per warp
                let cand = 0x10_0000 + (w * 32 + lane) * dim as u64 * 4;
                let mut th = ThreadTrace::new();
                let mut tb = ThreadTrace::new();
                if active {
                    th.push(ThreadOp::Shared { count: 4 });
                    th.push(ThreadOp::HsuDistance {
                        metric: Metric::Euclidean,
                        dim,
                        candidate_addr: cand,
                    });
                    th.push(ThreadOp::Shared { count: 4 });

                    tb.push(ThreadOp::Shared { count: 4 });
                    tb.push(ThreadOp::Load {
                        addr: cand,
                        bytes: dim * 4,
                    });
                    tb.push(ThreadOp::Alu { count: dim * 2 });
                    tb.push(ThreadOp::Shared { count: 4 });
                }
                hsu.push_thread(th);
                base.push_thread(tb);
            }
        }
        let gpu = Gpu::new(GpuConfig::tiny());
        let hsu_r = gpu.run(&hsu);
        let base_r = gpu.run(&base);
        assert!(
            hsu_r.cycles < base_r.cycles,
            "HSU {} cycles vs baseline {}",
            hsu_r.cycles,
            base_r.cycles
        );
        assert!(hsu_r.rt.isa_instructions > 0);
        // Both computed the same number of distances.
        assert_eq!(hsu_r.rt.warp_instructions, warps);
    }

    #[test]
    fn rt_cache_policies_execute_correctly() {
        use crate::config::RtCachePolicy;
        // An HSU-heavy kernel with heavy node reuse.
        let mut k = KernelTrace::new("policy");
        for i in 0..256u64 {
            let mut t = ThreadTrace::new();
            t.push(ThreadOp::Load {
                addr: i * 128,
                bytes: 4,
            });
            t.push(ThreadOp::HsuRayIntersect {
                node_addr: (i % 8) * 64,
                bytes: 64,
                triangle: false,
            });
            k.push_thread(t);
        }
        let shared = Gpu::new(GpuConfig::tiny()).run(&k);
        let private = Gpu::new(GpuConfig {
            rt_cache: RtCachePolicy::Private { bytes: 16 * 1024 },
            ..GpuConfig::tiny()
        })
        .run(&k);
        let bypass = Gpu::new(GpuConfig {
            rt_cache: RtCachePolicy::Bypass,
            ..GpuConfig::tiny()
        })
        .run(&k);
        // All three complete the same work.
        for r in [&shared, &private, &bypass] {
            assert_eq!(r.warps_retired, 8);
            assert_eq!(r.rt.isa_instructions, 256);
        }
        // Private/bypass keep RT traffic out of the L1 tag stats.
        assert!(private.memory.rt_cache.accesses() > 0);
        assert!(bypass.memory.rt_cache.accesses() > 0);
        assert_eq!(shared.memory.rt_cache.accesses(), 0);
        // The private cache captures node reuse; bypass mostly misses.
        assert!(private.memory.rt_cache.miss_rate() < bypass.memory.rt_cache.miss_rate());
    }

    #[test]
    fn report_exposes_memory_behaviour() {
        let mut k = KernelTrace::new("mem");
        for i in 0..512u64 {
            let mut t = ThreadTrace::new();
            // Same line for everyone: high hit rate after the first warp.
            t.push(ThreadOp::Load {
                addr: 0x8000,
                bytes: 4,
            });
            t.push(ThreadOp::Load {
                addr: i * 128,
                bytes: 4,
            });
            k.push_thread(t);
        }
        let r = Gpu::new(GpuConfig::tiny()).run(&k);
        assert!(r.l1_accesses() > 0);
        assert!(r.l1_miss_rate() > 0.0 && r.l1_miss_rate() < 1.0);
        assert!(r.memory.dram.accesses > 0);
        assert!(r.row_locality() >= 1.0);
    }
}
