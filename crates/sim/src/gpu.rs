//! The top-level GPU: SMs + memory hierarchy + the simulation loops.

use crate::config::{GpuConfig, SimMode};
use crate::error::{DeadlockReport, RunLimits, SimError, WatchdogCause};
use crate::memory::{lock_shard, EventBuf, L1Shard, MemParams, MemorySystem, SmPort};
use crate::sm::Sm;
use crate::stats::{SchedStats, SimReport};
use crate::trace::KernelTrace;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Barrier, Mutex, RwLock};
use std::time::Instant;

/// A configured GPU ready to execute kernel traces.
///
/// # Examples
///
/// ```
/// use hsu_sim::config::GpuConfig;
/// use hsu_sim::trace::{KernelTrace, ThreadOp, ThreadTrace};
/// use hsu_sim::Gpu;
///
/// let mut k = KernelTrace::new("tiny");
/// let mut t = ThreadTrace::new();
/// t.push(ThreadOp::Alu { count: 1 });
/// k.push_thread(t);
/// let report = Gpu::new(GpuConfig::tiny()).run(&k).unwrap();
/// assert_eq!(report.warps_retired, 1);
/// ```
#[derive(Debug, Clone)]
pub struct Gpu {
    cfg: GpuConfig,
}

impl Gpu {
    /// Creates a GPU with the given configuration.
    ///
    /// Construction is infallible; the configuration is validated by
    /// [`Gpu::run`] (see [`GpuConfig::validate`]), so a nonsense config
    /// surfaces as [`SimError::InvalidConfig`] at run time rather than a
    /// panic here.
    pub fn new(cfg: GpuConfig) -> Self {
        Gpu { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// Runs one kernel to completion and returns its report.
    ///
    /// Warps are distributed round-robin across SMs (the grid-stride launch
    /// pattern all four workloads use). The simulation is deterministic, and
    /// every architectural counter in the report is identical under both
    /// [`SimMode`]s — only [`SimReport::sched`] records how time advanced.
    ///
    /// Under [`SimMode::Stepped`] the machine ticks on every cycle (the
    /// oracle loop). Under [`SimMode::Event`] the loop asks each component
    /// for the earliest cycle its state can change and jumps straight there
    /// — and within each visited cycle it ticks only the SMs that can
    /// observe it. An SM sleeps until one of three wakeups: a completion is
    /// delivered to it, its L1 (or private RT cache) receives a fill (which
    /// frees an MSHR and can flip what the port accepts), or its own
    /// self-reported [`Sm::next_event`] cycle arrives. Every cycle an SM
    /// sleeps through is provably a no-op for it in the stepped machine —
    /// its warps are blocked on timers, busy issue slots, or memory
    /// (including L1 queues whose head the cache would reject) — and is
    /// bulk-accounted on wakeup via [`Sm::fast_forward`], down to the stall
    /// statistics and the L1 port's round-robin state.
    ///
    /// # Errors
    ///
    /// - [`SimError::InvalidConfig`] if the configuration fails
    ///   [`GpuConfig::validate`].
    /// - [`SimError::Deadlock`] if the kernel exceeds `cfg.max_cycles`. The
    ///   diagnostic payload is identical in both modes, including when event
    ///   mode proves the deadlock early (no component reports any future
    ///   event, or the next event lies beyond the guard).
    /// - [`SimError::IllegalDispatch`] if the trace routes an op to a unit
    ///   that cannot execute it (e.g. HSU ops on a baseline RT unit).
    pub fn run(&self, kernel: &KernelTrace) -> Result<SimReport, SimError> {
        self.run_guarded(kernel, &RunLimits::none())
    }

    /// Like [`Gpu::run`], with cooperative cancellation and a wall-clock
    /// deadline.
    ///
    /// The cancel token is checked every loop iteration (one relaxed atomic
    /// load); the deadline every 1024 iterations (so healthy runs do not
    /// pay a clock read per simulated event). Either trip returns
    /// [`SimError::Watchdog`] with the matching [`WatchdogCause`].
    ///
    /// # Errors
    ///
    /// Everything [`Gpu::run`] returns, plus [`SimError::Watchdog`].
    pub fn run_guarded(
        &self,
        kernel: &KernelTrace,
        limits: &RunLimits,
    ) -> Result<SimReport, SimError> {
        self.cfg.validate()?;
        match self.cfg.sim_mode {
            SimMode::Stepped | SimMode::Event => self.run_serial(kernel, limits),
            SimMode::ParallelEpoch => self.run_parallel(kernel, limits),
        }
    }

    /// The stepped / event-driven run loop: one thread owns everything.
    fn run_serial(&self, kernel: &KernelTrace, limits: &RunLimits) -> Result<SimReport, SimError> {
        let mut sms: Vec<Sm> = (0..self.cfg.num_sms)
            .map(|i| Sm::new(i, &self.cfg))
            .collect();
        let mut mem = MemorySystem::new(&self.cfg);

        for (i, warp) in kernel.warps().into_iter().enumerate() {
            sms[i % self.cfg.num_sms].enqueue_warp(warp);
        }

        let event_mode = matches!(self.cfg.sim_mode, SimMode::Event);
        let num_sms = self.cfg.num_sms;
        let mut done = Vec::new();
        let mut sched = SchedStats::default();
        // Per-SM sleep state (event mode): the cycle each SM last ticked
        // (`u64::MAX` = never), its self-reported wakeup cycle, whether it
        // must tick at the cycle being visited, and whether the memory
        // system (rather than its own timer) supplied that wakeup.
        let mut last_ticked: Vec<u64> = vec![u64::MAX; num_sms];
        let mut wake: Vec<Option<u64>> = vec![Some(0); num_sms];
        let mut active: Vec<bool> = vec![true; num_sms];
        let mut woken_by_mem: Vec<bool> = vec![false; num_sms];
        let mut now = 0u64;
        let mut iterations = 0u64;
        let cycles = loop {
            if let Some(token) = limits.cancel.as_ref() {
                if token.is_cancelled() {
                    return Err(self.watchdog(kernel, now, WatchdogCause::Cancelled));
                }
            }
            if let Some(deadline) = limits.deadline {
                if iterations & 1023 == 0 && Instant::now() >= deadline {
                    return Err(self.watchdog(kernel, now, WatchdogCause::Deadline));
                }
            }
            iterations += 1;
            done.clear();
            mem.tick(now, &mut done);
            if event_mode {
                // An SM must tick at `now` iff it can observe the cycle:
                // its own wakeup arrived, a completion is delivered to
                // it, or its L1 received a fill (freeing an MSHR, which
                // can flip what its port would accept).
                for i in 0..num_sms {
                    woken_by_mem[i] = false;
                    active[i] = wake[i].is_some_and(|t| t <= now);
                }
                for &(sm, _) in &done {
                    active[sm] = true;
                    woken_by_mem[sm] = true;
                }
                for &sm in mem.l1_touched() {
                    active[sm] = true;
                    woken_by_mem[sm] = true;
                }
            }
            // Waking SMs first replay their sleep window in bulk, so the
            // per-cycle order of the stepped oracle (memory, completion
            // delivery, SM tick) is preserved for cycle `now` itself.
            for (i, sm) in sms.iter_mut().enumerate() {
                if !active[i] {
                    continue;
                }
                let slept = match last_ticked[i] {
                    u64::MAX => now,
                    t => now - t - 1,
                };
                if slept > 0 {
                    sm.fast_forward(slept, &mut mem);
                    sched.cycles_skipped += slept;
                    if woken_by_mem[i] {
                        sched.skipped_on_memory += slept;
                    } else {
                        sched.skipped_on_timers += slept;
                    }
                }
            }
            for &(sm, waiter) in &done {
                sms[sm].on_mem_done(waiter)?;
            }
            for (i, sm) in sms.iter_mut().enumerate() {
                if !active[i] {
                    continue;
                }
                sm.tick(now, &mut mem)?;
                sched.ticks_executed += 1;
                last_ticked[i] = now;
                if event_mode {
                    wake[i] = sm.next_event(now, &mem);
                }
            }
            if sms.iter().all(|sm| sm.finished()) && mem.quiescent() {
                break now + 1;
            }
            if now + 1 == self.cfg.max_cycles {
                return Err(self.deadlock(kernel, &sms, &mem));
            }
            now = match self.cfg.sim_mode {
                SimMode::Stepped => now + 1,
                // ParallelEpoch dispatches to `run_parallel` before this
                // loop; the arm is unreachable but harmlessly identical.
                SimMode::Event | SimMode::ParallelEpoch => {
                    let mem_next = mem.next_event(now);
                    // Sleeping SMs' wakeups all lie in the future; SMs
                    // that ticked at `now` just refreshed theirs.
                    let sm_next = wake.iter().filter_map(|w| *w).min();
                    let next = match (mem_next, sm_next) {
                        (Some(a), Some(b)) => a.min(b),
                        (Some(a), None) | (None, Some(a)) => a,
                        // No component will ever change state again: a true
                        // deadlock, provable without grinding to the guard.
                        (None, None) => return Err(self.deadlock(kernel, &sms, &mem)),
                    };
                    debug_assert!(next > now, "next event must lie in the future");
                    // The stepped loop's final iteration runs at cycle
                    // max_cycles - 1 and trips the guard *after* ticking;
                    // jumping at or past the guard cycle deadlocks the
                    // same way.
                    if next >= self.cfg.max_cycles {
                        return Err(self.deadlock(kernel, &sms, &mem));
                    }
                    next
                }
            };
        };

        // SMs that went quiet before the machine drained still owe the
        // bulk accounting for their final sleep window (stepped mode ticks
        // every SM on every cycle, so this is a no-op there).
        for (i, sm) in sms.iter_mut().enumerate() {
            let slept = match last_ticked[i] {
                u64::MAX => cycles,
                t => cycles - t - 1,
            };
            if slept > 0 {
                sm.fast_forward(slept, &mut mem);
                sched.cycles_skipped += slept;
                sched.skipped_on_timers += slept;
            }
        }

        let sm_stats: Vec<_> = sms.iter().map(|s| s.stats().clone()).collect();
        let rt_stats: Vec<_> = sms.iter().map(|s| s.rt_stats()).collect();
        let mut report = SimReport::aggregate(
            kernel.name().to_string(),
            cycles,
            self.cfg.num_sms,
            &sm_stats,
            &rt_stats,
            mem.stats(),
        );
        report.sched = sched;
        Ok(report)
    }

    /// The parallel-epoch run loop: the event-driven schedule of
    /// [`Gpu::run_serial`], with each visited cycle's SM work fanned out
    /// across a worker pool.
    ///
    /// # Why this is deterministic (the epoch-barrier argument)
    ///
    /// Per visited cycle, an SM's work — replaying its sleep window,
    /// consuming its completions, ticking — reads and writes only its own
    /// state and its own [`L1Shard`], and *pushes future events* into a
    /// thread-local [`EventBuf`]. Nothing an SM does in cycle `now` is
    /// observable by another SM within `now`: all cross-SM communication
    /// flows through the shared memory core, which only the barrier thread
    /// advances, *between* SM phases. The barrier absorbs the buffered
    /// events in fixed SM-index order, and the event heap pops distinct
    /// events in sorted order regardless of insertion order (equal events
    /// are interchangeable) — so the drain is identical to the serial
    /// loop's no matter how the SM phase was scheduled across threads.
    /// Errors are ranked by the serial loop's processing order (completion
    /// deliveries in done-list order, then ticks in SM-index order) and the
    /// minimum rank wins, reproducing serial first-error-wins exactly.
    /// Hence: bit-identical reports and error payloads for every thread
    /// count, including 1.
    fn run_parallel(
        &self,
        kernel: &KernelTrace,
        limits: &RunLimits,
    ) -> Result<SimReport, SimError> {
        let num_sms = self.cfg.num_sms;
        let threads = self.cfg.effective_sim_threads();
        let mut sms: Vec<Sm> = (0..num_sms).map(|i| Sm::new(i, &self.cfg)).collect();
        for (i, warp) in kernel.warps().into_iter().enumerate() {
            sms[i % num_sms].enqueue_warp(warp);
        }
        let lanes: Vec<Mutex<SmLane>> = sms
            .into_iter()
            .enumerate()
            .map(|(idx, sm)| {
                Mutex::new(SmLane {
                    sm,
                    idx,
                    last_ticked: u64::MAX,
                    wake: Some(0),
                    buf: EventBuf::new(),
                    sched: SchedStats::default(),
                    finished: false,
                    err: None,
                })
            })
            .collect();
        let mut mem = MemorySystem::new(&self.cfg);
        let terminal = {
            let (core, params, shards) = mem.split();
            let cycle_in = RwLock::new(CycleIn {
                phase: Phase::Run,
                now: 0,
                done: Vec::new(),
                l1_touched: Vec::new(),
            });
            let barrier = Barrier::new(threads + 1);
            let panic_slot: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
            std::thread::scope(|s| {
                if threads > 1 {
                    for w in 0..threads {
                        let lanes = &lanes;
                        let cycle_in = &cycle_in;
                        let barrier = &barrier;
                        let panic_slot = &panic_slot;
                        let params: &MemParams = params;
                        let shards: &[Mutex<L1Shard>] = shards;
                        s.spawn(move || loop {
                            barrier.wait();
                            let cin = cycle_in.read().unwrap_or_else(|e| e.into_inner());
                            let phase = cin.phase;
                            match phase {
                                Phase::Exit => break,
                                Phase::Run | Phase::Drain(_) => {
                                    let work = catch_unwind(AssertUnwindSafe(|| {
                                        for lane_m in lanes.iter().skip(w).step_by(threads) {
                                            let mut lane = lock_lane(lane_m);
                                            match phase {
                                                Phase::Run => {
                                                    lane_cycle(&mut lane, &cin, params, shards);
                                                }
                                                Phase::Drain(cycles) => {
                                                    drain_lane(&mut lane, cycles, params, shards);
                                                }
                                                Phase::Exit => unreachable!(),
                                            }
                                        }
                                    }));
                                    drop(cin);
                                    if let Err(payload) = work {
                                        let mut slot =
                                            panic_slot.lock().unwrap_or_else(|e| e.into_inner());
                                        slot.get_or_insert(payload);
                                    }
                                    barrier.wait();
                                    if matches!(phase, Phase::Drain(_)) {
                                        break;
                                    }
                                }
                            }
                        });
                    }
                }

                // One epoch: publish the cycle, run every lane's SM phase
                // (on the pool, or inline when single-threaded), then sync.
                // Returns any panic payload captured from a worker.
                let run_epoch = |phase: Phase| -> Option<Box<dyn std::any::Any + Send>> {
                    if threads > 1 {
                        barrier.wait(); // release workers into the phase
                        barrier.wait(); // wait for every lane to finish it
                        panic_slot.lock().unwrap_or_else(|e| e.into_inner()).take()
                    } else {
                        let cin = cycle_in.read().unwrap_or_else(|e| e.into_inner());
                        for lane_m in &lanes {
                            let mut lane = lock_lane(lane_m);
                            match phase {
                                Phase::Run => lane_cycle(&mut lane, &cin, params, shards),
                                Phase::Drain(cycles) => {
                                    drain_lane(&mut lane, cycles, params, shards);
                                }
                                Phase::Exit => unreachable!(),
                            }
                        }
                        None
                    }
                };
                // Every terminal path but Drain must park the pool before
                // returning, or the scope's implicit join would hang.
                let shutdown = || {
                    if threads > 1 {
                        cycle_in.write().unwrap_or_else(|e| e.into_inner()).phase = Phase::Exit;
                        barrier.wait();
                    }
                };

                let mut now = 0u64;
                let mut iterations = 0u64;
                loop {
                    if let Some(token) = limits.cancel.as_ref() {
                        if token.is_cancelled() {
                            shutdown();
                            return Terminal::Fail(self.watchdog(
                                kernel,
                                now,
                                WatchdogCause::Cancelled,
                            ));
                        }
                    }
                    if let Some(deadline) = limits.deadline {
                        if iterations & 1023 == 0 && Instant::now() >= deadline {
                            shutdown();
                            return Terminal::Fail(self.watchdog(
                                kernel,
                                now,
                                WatchdogCause::Deadline,
                            ));
                        }
                    }
                    iterations += 1;
                    {
                        let mut cin = cycle_in.write().unwrap_or_else(|e| e.into_inner());
                        cin.phase = Phase::Run;
                        cin.now = now;
                        cin.done.clear();
                        core.tick(now, &mut cin.done, params, shards);
                        cin.l1_touched.clear();
                        cin.l1_touched.extend_from_slice(core.l1_touched());
                    }
                    if let Some(payload) = run_epoch(Phase::Run) {
                        shutdown();
                        return Terminal::Panicked(payload);
                    }

                    // Deterministic merge, in fixed SM-index order: absorb
                    // each lane's buffered events, take the minimum wakeup,
                    // and pick the lowest-ranked error if any lane failed.
                    let mut first_err: Option<(u8, u32, usize)> = None;
                    let mut sm_next: Option<u64> = None;
                    let mut all_finished = true;
                    for (i, lane_m) in lanes.iter().enumerate() {
                        let mut lane = lock_lane(lane_m);
                        core.absorb(&mut lane.buf);
                        if let Some((phase, rank, _)) = &lane.err {
                            let key = (*phase, *rank, i);
                            if first_err.is_none_or(|k| key < k) {
                                first_err = Some(key);
                            }
                        }
                        all_finished &= lane.finished;
                        if let Some(w) = lane.wake {
                            sm_next = Some(sm_next.map_or(w, |n| n.min(w)));
                        }
                    }
                    if let Some((_, _, i)) = first_err {
                        shutdown();
                        let err = lock_lane(&lanes[i])
                            .err
                            .take()
                            .map(|(_, _, e)| e)
                            .unwrap_or_else(|| SimError::IllegalDispatch {
                                detail: "lane error vanished during merge".to_string(),
                            });
                        return Terminal::Fail(err);
                    }

                    if all_finished && core.quiescent() {
                        let cycles = now + 1;
                        {
                            let mut cin = cycle_in.write().unwrap_or_else(|e| e.into_inner());
                            cin.phase = Phase::Drain(cycles);
                        }
                        if let Some(payload) = run_epoch(Phase::Drain(cycles)) {
                            return Terminal::Panicked(payload);
                        }
                        return Terminal::Done(cycles);
                    }
                    if now + 1 == self.cfg.max_cycles {
                        shutdown();
                        return Terminal::Fail(deadlock_from_lanes(
                            &self.cfg,
                            kernel,
                            &lanes,
                            shards,
                            core.quiescent(),
                        ));
                    }
                    let next = match (core.next_event(now), sm_next) {
                        (Some(a), Some(b)) => a.min(b),
                        (Some(a), None) | (None, Some(a)) => a,
                        (None, None) => {
                            shutdown();
                            return Terminal::Fail(deadlock_from_lanes(
                                &self.cfg,
                                kernel,
                                &lanes,
                                shards,
                                core.quiescent(),
                            ));
                        }
                    };
                    debug_assert!(next > now, "next event must lie in the future");
                    if next >= self.cfg.max_cycles {
                        shutdown();
                        return Terminal::Fail(deadlock_from_lanes(
                            &self.cfg,
                            kernel,
                            &lanes,
                            shards,
                            core.quiescent(),
                        ));
                    }
                    now = next;
                }
            })
        };

        let cycles = match terminal {
            Terminal::Done(cycles) => cycles,
            Terminal::Fail(err) => return Err(err),
            Terminal::Panicked(payload) => resume_unwind(payload),
        };
        let mut sched = SchedStats::default();
        let mut sm_stats = Vec::with_capacity(num_sms);
        let mut rt_stats = Vec::with_capacity(num_sms);
        for lane_m in lanes {
            let lane = lane_m.into_inner().unwrap_or_else(|e| e.into_inner());
            sched.ticks_executed += lane.sched.ticks_executed;
            sched.cycles_skipped += lane.sched.cycles_skipped;
            sched.skipped_on_memory += lane.sched.skipped_on_memory;
            sched.skipped_on_timers += lane.sched.skipped_on_timers;
            sm_stats.push(lane.sm.stats().clone());
            rt_stats.push(lane.sm.rt_stats());
        }
        let mut report = SimReport::aggregate(
            kernel.name().to_string(),
            cycles,
            num_sms,
            &sm_stats,
            &rt_stats,
            mem.stats(),
        );
        report.sched = sched;
        Ok(report)
    }

    /// Builds the deadlock diagnostic at the moment the guard trips.
    ///
    /// Every field of the snapshot is mode-invariant (see
    /// [`DeadlockReport`]): event mode may prove the guard crossing many
    /// cycles before the stepped oracle grinds to it, but during that gap
    /// no SM state, queue depth, or MSHR occupancy can change — that is
    /// exactly why the event loop was allowed to jump. Timer waits are the
    /// one exception (the stepped loop flips expired timers to `Ready`
    /// even when nothing can issue), which `Sm::deadlock_state` normalizes
    /// against the guard boundary.
    fn deadlock(&self, kernel: &KernelTrace, sms: &[Sm], mem: &MemorySystem) -> SimError {
        SimError::Deadlock(Box::new(DeadlockReport {
            kernel: kernel.name().to_string(),
            cycle: self.cfg.max_cycles,
            mem_quiescent: mem.quiescent(),
            per_sm: sms
                .iter()
                .enumerate()
                .map(|(i, sm)| sm.deadlock_state(self.cfg.max_cycles, mem.l1_mshrs_in_use(i)))
                .collect(),
        }))
    }

    fn watchdog(&self, kernel: &KernelTrace, now: u64, cause: WatchdogCause) -> SimError {
        SimError::Watchdog {
            kernel: kernel.name().to_string(),
            cycles_simulated: now,
            cause,
        }
    }
}

/// What the barrier thread tells the pool to do with the published cycle.
#[derive(Debug, Clone, Copy)]
enum Phase {
    /// Run one visited cycle's SM phase.
    Run,
    /// The machine drained at the given cycle count: replay every lane's
    /// final sleep window (bulk accounting only), then exit.
    Drain(u64),
    /// Terminal: exit without touching the lanes (error/cancel paths —
    /// the serial loop returns without final-drain accounting there too).
    Exit,
}

/// The cycle the barrier thread publishes to the pool.
#[derive(Debug)]
struct CycleIn {
    phase: Phase,
    now: u64,
    /// This cycle's completions, in heap-drain order; the position of an
    /// entry is its global error rank (serial delivery order).
    done: Vec<(usize, u64)>,
    /// SMs whose L1 received a fill this cycle (memory-side wakeups).
    l1_touched: Vec<usize>,
}

/// How a parallel-epoch run ended, carried out of the thread scope.
enum Terminal {
    Done(u64),
    Fail(SimError),
    Panicked(Box<dyn std::any::Any + Send>),
}

/// One SM plus everything the event schedule tracks per SM. Owned by a
/// `Mutex` so workers take disjoint lanes during the SM phase while the
/// barrier thread reads them between phases (never concurrently).
#[derive(Debug)]
struct SmLane {
    sm: Sm,
    idx: usize,
    /// Cycle this SM last ticked (`u64::MAX` = never).
    last_ticked: u64,
    /// Self-reported wakeup cycle (`None` = blocked on memory/finished).
    wake: Option<u64>,
    /// Future events produced this cycle; absorbed at the barrier.
    buf: EventBuf,
    /// This lane's share of the scheduler accounting.
    sched: SchedStats,
    finished: bool,
    /// First error this lane hit, ranked by serial processing order:
    /// `(0, done-list index)` for completion routing, `(1, SM index)` for
    /// tick errors. The merge picks the global minimum.
    err: Option<(u8, u32, SimError)>,
}

fn lock_lane(lane: &Mutex<SmLane>) -> std::sync::MutexGuard<'_, SmLane> {
    lane.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One lane's share of a visited cycle: decide whether the SM observes it,
/// replay the sleep window, deliver completions, tick, refresh the wakeup.
/// Mirrors the serial loop's per-SM work for one cycle exactly; see
/// `Gpu::run_parallel` for why running lanes concurrently is sound.
fn lane_cycle(lane: &mut SmLane, cin: &CycleIn, params: &MemParams, shards: &[Mutex<L1Shard>]) {
    let now = cin.now;
    let mut active = lane.wake.is_some_and(|t| t <= now);
    let mut woken_by_mem = false;
    if cin.done.iter().any(|&(sm, _)| sm == lane.idx) {
        active = true;
        woken_by_mem = true;
    }
    if cin.l1_touched.contains(&lane.idx) {
        active = true;
        woken_by_mem = true;
    }
    if !active {
        return;
    }
    let mut port = SmPort::new(params, shards, lane.idx, &mut lane.buf);
    let slept = match lane.last_ticked {
        u64::MAX => now,
        t => now - t - 1,
    };
    if slept > 0 {
        lane.sm.fast_forward(slept, &mut port);
        lane.sched.cycles_skipped += slept;
        if woken_by_mem {
            lane.sched.skipped_on_memory += slept;
        } else {
            lane.sched.skipped_on_timers += slept;
        }
    }
    for (rank, &(sm, waiter)) in cin.done.iter().enumerate() {
        if sm != lane.idx {
            continue;
        }
        if let Err(e) = lane.sm.on_mem_done(waiter) {
            lane.err = Some((0, rank as u32, e));
            return;
        }
    }
    if let Err(e) = lane.sm.tick(now, &mut port) {
        lane.err = Some((1, lane.idx as u32, e));
        return;
    }
    lane.sched.ticks_executed += 1;
    lane.last_ticked = now;
    lane.wake = lane.sm.next_event(now, &port);
    lane.finished = lane.sm.finished();
}

/// Final bulk accounting for a lane that went quiet before the machine
/// drained (the serial loop's post-loop fast-forward, per lane).
fn drain_lane(lane: &mut SmLane, cycles: u64, params: &MemParams, shards: &[Mutex<L1Shard>]) {
    let slept = match lane.last_ticked {
        u64::MAX => cycles,
        t => cycles - t - 1,
    };
    if slept > 0 {
        let mut port = SmPort::new(params, shards, lane.idx, &mut lane.buf);
        lane.sm.fast_forward(slept, &mut port);
        lane.sched.cycles_skipped += slept;
        lane.sched.skipped_on_timers += slept;
        drop(port);
        debug_assert!(lane.buf.is_empty(), "fast_forward must not emit events");
    }
}

/// The parallel-epoch deadlock diagnostic: field-for-field the payload
/// `Gpu::deadlock` builds, assembled from lanes in SM-index order.
fn deadlock_from_lanes(
    cfg: &GpuConfig,
    kernel: &KernelTrace,
    lanes: &[Mutex<SmLane>],
    shards: &[Mutex<L1Shard>],
    mem_quiescent: bool,
) -> SimError {
    SimError::Deadlock(Box::new(DeadlockReport {
        kernel: kernel.name().to_string(),
        cycle: cfg.max_cycles,
        mem_quiescent,
        per_sm: lanes
            .iter()
            .enumerate()
            .map(|(i, lane_m)| {
                lock_lane(lane_m)
                    .sm
                    .deadlock_state(cfg.max_cycles, lock_shard(&shards[i]).mshrs_in_use())
            })
            .collect(),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{ThreadOp, ThreadTrace};
    use hsu_geometry::point::Metric;

    fn kernel_of(n_threads: usize, ops: Vec<ThreadOp>) -> KernelTrace {
        let mut k = KernelTrace::new("k");
        for _ in 0..n_threads {
            let mut t = ThreadTrace::new();
            for &op in &ops {
                t.push(op);
            }
            k.push_thread(t);
        }
        k
    }

    #[test]
    fn determinism() {
        let k = kernel_of(
            256,
            vec![
                ThreadOp::Load {
                    addr: 0x100,
                    bytes: 64,
                },
                ThreadOp::Alu { count: 8 },
                ThreadOp::HsuDistance {
                    metric: Metric::Euclidean,
                    dim: 32,
                    candidate_addr: 0x4000,
                },
            ],
        );
        let gpu = Gpu::new(GpuConfig::tiny());
        let a = gpu.run(&k).unwrap();
        let b = gpu.run(&k).unwrap();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.l1_accesses(), b.l1_accesses());
    }

    #[test]
    fn work_scales_across_sms() {
        // Compute-bound kernel: scaling SMs must scale throughput.
        let k = kernel_of(32 * 64, vec![ThreadOp::Alu { count: 64 }]);
        let one = Gpu::new(GpuConfig {
            num_sms: 1,
            ..GpuConfig::tiny()
        })
        .run(&k)
        .unwrap();
        let four = Gpu::new(GpuConfig {
            num_sms: 4,
            ..GpuConfig::tiny()
        })
        .run(&k)
        .unwrap();
        assert!(
            (four.cycles as f64) < one.cycles as f64 * 0.4,
            "4 SMs {} vs 1 SM {}",
            four.cycles,
            one.cycles
        );
    }

    #[test]
    fn hsu_offload_beats_simt_expansion_under_divergence() {
        // The paper's core mechanism: under thread divergence (sparse active
        // masks) the SIMT lowering of a 96-dim distance pays its full
        // instruction sequence for a handful of useful lanes, while the HSU's
        // single-lane pipeline only spends cycles on active lanes (§IV-B).
        // 2 of every 32 lanes are doing distance work this "iteration".
        let warps = 16u64;
        let dim = 96u32;
        let mut hsu = KernelTrace::new("hsu");
        let mut base = KernelTrace::new("base");
        for w in 0..warps {
            for lane in 0..32u64 {
                let active = lane % 16 == 0; // 2 active lanes per warp
                let cand = 0x10_0000 + (w * 32 + lane) * dim as u64 * 4;
                let mut th = ThreadTrace::new();
                let mut tb = ThreadTrace::new();
                if active {
                    th.push(ThreadOp::Shared { count: 4 });
                    th.push(ThreadOp::HsuDistance {
                        metric: Metric::Euclidean,
                        dim,
                        candidate_addr: cand,
                    });
                    th.push(ThreadOp::Shared { count: 4 });

                    tb.push(ThreadOp::Shared { count: 4 });
                    tb.push(ThreadOp::Load {
                        addr: cand,
                        bytes: dim * 4,
                    });
                    tb.push(ThreadOp::Alu { count: dim * 2 });
                    tb.push(ThreadOp::Shared { count: 4 });
                }
                hsu.push_thread(th);
                base.push_thread(tb);
            }
        }
        let gpu = Gpu::new(GpuConfig::tiny());
        let hsu_r = gpu.run(&hsu).unwrap();
        let base_r = gpu.run(&base).unwrap();
        assert!(
            hsu_r.cycles < base_r.cycles,
            "HSU {} cycles vs baseline {}",
            hsu_r.cycles,
            base_r.cycles
        );
        assert!(hsu_r.rt.isa_instructions > 0);
        // Both computed the same number of distances.
        assert_eq!(hsu_r.rt.warp_instructions, warps);
    }

    #[test]
    fn rt_cache_policies_execute_correctly() {
        use crate::config::RtCachePolicy;
        // An HSU-heavy kernel with heavy node reuse.
        let mut k = KernelTrace::new("policy");
        for i in 0..256u64 {
            let mut t = ThreadTrace::new();
            t.push(ThreadOp::Load {
                addr: i * 128,
                bytes: 4,
            });
            t.push(ThreadOp::HsuRayIntersect {
                node_addr: (i % 8) * 64,
                bytes: 64,
                triangle: false,
            });
            k.push_thread(t);
        }
        let shared = Gpu::new(GpuConfig::tiny()).run(&k).unwrap();
        let private = Gpu::new(GpuConfig {
            rt_cache: RtCachePolicy::Private { bytes: 16 * 1024 },
            ..GpuConfig::tiny()
        })
        .run(&k)
        .unwrap();
        let bypass = Gpu::new(GpuConfig {
            rt_cache: RtCachePolicy::Bypass,
            ..GpuConfig::tiny()
        })
        .run(&k)
        .unwrap();
        // All three complete the same work.
        for r in [&shared, &private, &bypass] {
            assert_eq!(r.warps_retired, 8);
            assert_eq!(r.rt.isa_instructions, 256);
        }
        // Private/bypass keep RT traffic out of the L1 tag stats.
        assert!(private.memory.rt_cache.accesses() > 0);
        assert!(bypass.memory.rt_cache.accesses() > 0);
        assert_eq!(shared.memory.rt_cache.accesses(), 0);
        // The private cache captures node reuse; bypass mostly misses.
        assert!(private.memory.rt_cache.miss_rate() < bypass.memory.rt_cache.miss_rate());
    }

    #[test]
    fn event_mode_matches_stepped_oracle() {
        use crate::config::SimMode;
        // A mixed kernel exercising timers, loads, and the HSU path: both
        // modes must agree on every architectural counter, and event mode
        // must actually skip cycles to earn its keep.
        let k = kernel_of(
            128,
            vec![
                ThreadOp::Load {
                    addr: 0x2000,
                    bytes: 64,
                },
                ThreadOp::Alu { count: 12 },
                ThreadOp::HsuDistance {
                    metric: Metric::Euclidean,
                    dim: 32,
                    candidate_addr: 0x9000,
                },
                ThreadOp::Shared { count: 2 },
            ],
        );
        let stepped = Gpu::new(GpuConfig::tiny().with_sim_mode(SimMode::Stepped))
            .run(&k)
            .unwrap();
        let event = Gpu::new(GpuConfig::tiny().with_sim_mode(SimMode::Event))
            .run(&k)
            .unwrap();
        assert_eq!(stepped.normalized(), event.normalized());
        // Scheduler accounting invariants: each of an SM's cycles is either
        // ticked or fast-forwarded, exactly once.
        assert_eq!(
            stepped.sched.ticks_executed,
            stepped.cycles * stepped.num_sms as u64
        );
        assert_eq!(stepped.sched.cycles_skipped, 0);
        assert_eq!(
            event.sched.ticks_executed + event.sched.cycles_skipped,
            event.cycles * event.num_sms as u64
        );
        assert_eq!(
            event.sched.cycles_skipped,
            event.sched.skipped_on_memory + event.sched.skipped_on_timers
        );
        assert!(
            event.sched.cycles_skipped > 0,
            "a memory-latency-bound kernel must fast-forward"
        );
    }

    #[test]
    fn parallel_epoch_matches_stepped_for_every_thread_count() {
        use crate::config::SimMode;
        // Multiple SMs so lanes genuinely spread across workers, and a
        // mixed kernel touching timers, loads, and the HSU path.
        let base = GpuConfig {
            num_sms: 4,
            ..GpuConfig::tiny()
        };
        let k = kernel_of(
            512,
            vec![
                ThreadOp::Load {
                    addr: 0x2000,
                    bytes: 64,
                },
                ThreadOp::Alu { count: 12 },
                ThreadOp::HsuDistance {
                    metric: Metric::Euclidean,
                    dim: 32,
                    candidate_addr: 0x9000,
                },
                ThreadOp::Shared { count: 2 },
            ],
        );
        let stepped = Gpu::new(base.clone().with_sim_mode(SimMode::Stepped))
            .run(&k)
            .unwrap();
        let event = Gpu::new(base.clone().with_sim_mode(SimMode::Event))
            .run(&k)
            .unwrap();
        for threads in [1, 2, 8] {
            let parallel = Gpu::new(
                base.clone()
                    .with_sim_mode(SimMode::ParallelEpoch)
                    .with_sim_threads(threads),
            )
            .run(&k)
            .unwrap();
            assert_eq!(
                stepped.normalized(),
                parallel.normalized(),
                "parallel-epoch ({threads} threads) diverged from the oracle"
            );
            // The parallel loop follows the event schedule exactly, down to
            // the scheduler accounting.
            assert_eq!(parallel.sched, event.sched, "{threads} threads");
        }
    }

    /// Runs `k` under both modes with the given guard and returns the two
    /// deadlock errors, asserting both guards fired with identical payloads.
    fn deadlock_of(k: &KernelTrace, max_cycles: u64) -> SimError {
        use crate::config::SimMode;
        let err_of = |mode: SimMode| -> SimError {
            let cfg = GpuConfig {
                max_cycles,
                ..GpuConfig::tiny()
            }
            .with_sim_mode(mode);
            Gpu::new(cfg).run(k).expect_err("guard must fire")
        };
        let stepped = err_of(SimMode::Stepped);
        let event = err_of(SimMode::Event);
        assert_eq!(
            stepped, event,
            "deadlock payloads diverged between stepped and event modes"
        );
        for threads in [1, 2, 8] {
            let cfg = GpuConfig {
                max_cycles,
                ..GpuConfig::tiny()
            }
            .with_sim_mode(SimMode::ParallelEpoch)
            .with_sim_threads(threads);
            let parallel = Gpu::new(cfg).run(k).expect_err("guard must fire");
            assert_eq!(
                stepped, parallel,
                "deadlock payloads diverged under parallel-epoch ({threads} threads)"
            );
        }
        assert!(matches!(stepped, SimError::Deadlock(_)));
        stepped
    }

    #[test]
    fn deadlock_guard_fires_identically_in_both_modes() {
        // A kernel whose ALU run wakes up far beyond max_cycles: the stepped
        // loop grinds to the guard, the event loop proves the overrun when
        // the only future event lies past it (the gpu.rs `next >= max_cycles`
        // jump-past-guard branch). Same typed error, same diagnostic payload.
        // (Two classes so the trace keeps a second instruction pending — a
        // warp stalled on its *last* instruction retires immediately.)
        let k = kernel_of(
            32,
            vec![
                ThreadOp::Alu { count: 1_000 },
                ThreadOp::Shared { count: 1 },
            ],
        );
        let err = deadlock_of(&k, 500);
        let SimError::Deadlock(report) = err else {
            unreachable!()
        };
        assert_eq!(report.kernel, "k");
        assert_eq!(report.cycle, 500);
        assert!(report.mem_quiescent, "pure ALU kernel never touches memory");
        assert_eq!(report.per_sm.len(), 1);
        let sm = &report.per_sm[0];
        // 32 threads = 1 warp, stalled on a timer past the guard after
        // issuing its ALU run on cycle 0.
        assert_eq!(sm.resident, 1);
        assert_eq!(sm.waiting_timer, 1);
        assert_eq!(sm.last_issue_cycle, Some(0));
        assert_eq!(sm.warps_retired, 0);
        // The old guard wording survives in the rendered diagnostic.
        let text = SimError::Deadlock(report).to_string();
        assert!(text.contains("kernel 'k' exceeded the 500-cycle guard"));
    }

    #[test]
    fn deadlock_with_memory_in_flight_reports_identical_payloads() {
        // A guard so tight the first load cannot complete: event mode jumps
        // past the guard while a memory event is still pending (mem_next >=
        // max_cycles), the stepped oracle grinds to it cycle by cycle. The
        // snapshot must agree anyway — including MSHR occupancy and the
        // memory-quiescence bit.
        let k = kernel_of(
            32,
            vec![
                ThreadOp::Load {
                    addr: 0x4000,
                    bytes: 64,
                },
                ThreadOp::Alu { count: 1 },
            ],
        );
        let SimError::Deadlock(report) = deadlock_of(&k, 4) else {
            unreachable!()
        };
        assert!(!report.mem_quiescent, "the load must still be in flight");
        let sm = &report.per_sm[0];
        assert_eq!(sm.waiting_mem, 1);
        assert_eq!(sm.mshrs_in_flight, 1);
        assert_eq!(sm.last_issue_cycle, Some(0));
    }

    #[test]
    fn deadlock_at_exact_guard_boundary_is_mode_invariant() {
        // Sweep guards around an ALU run's wakeup so one of them lands
        // exactly on the `now + 1 == max_cycles` boundary that the stepped
        // loop checks *after* ticking and the event loop may jump straight
        // past. Both modes must agree on completion vs deadlock at every
        // guard value, with equal payloads whenever they deadlock.
        use crate::config::SimMode;
        let k = kernel_of(
            32,
            vec![ThreadOp::Alu { count: 8 }, ThreadOp::Shared { count: 1 }],
        );
        let run = |mode: SimMode, max_cycles: u64| {
            let cfg = GpuConfig {
                max_cycles,
                ..GpuConfig::tiny()
            }
            .with_sim_mode(mode);
            Gpu::new(cfg).run(&k)
        };
        let unguarded = run(SimMode::Event, 1_000_000).unwrap();
        let finish = unguarded.cycles;
        let mut saw_deadlock = false;
        for guard in finish.saturating_sub(3)..finish + 3 {
            let stepped = run(SimMode::Stepped, guard);
            let event = run(SimMode::Event, guard);
            assert_eq!(
                stepped.is_ok(),
                event.is_ok(),
                "modes disagree on guard {guard} (finish {finish})"
            );
            match (stepped, event) {
                (Ok(a), Ok(b)) => assert_eq!(a.normalized(), b.normalized()),
                (Err(a), Err(b)) => {
                    assert_eq!(a, b, "payloads diverged at guard {guard}");
                    saw_deadlock = true;
                }
                _ => unreachable!(),
            }
        }
        assert!(saw_deadlock, "sweep never crossed the guard boundary");
    }

    #[test]
    fn watchdog_cancellation_and_deadline_stop_the_run() {
        use crate::error::{CancelToken, WatchdogCause};
        use std::time::Duration;
        let k = kernel_of(64, vec![ThreadOp::Alu { count: 100 }]);
        let gpu = Gpu::new(GpuConfig::tiny());

        let token = CancelToken::new();
        token.cancel();
        let err = gpu
            .run_guarded(&k, &RunLimits::none().with_cancel(token))
            .expect_err("pre-cancelled run must stop");
        assert!(matches!(
            err,
            SimError::Watchdog {
                cause: WatchdogCause::Cancelled,
                ..
            }
        ));

        let past = Instant::now() - Duration::from_millis(1);
        let err = gpu
            .run_guarded(&k, &RunLimits::none().with_deadline(past))
            .expect_err("expired deadline must stop the run");
        assert!(matches!(
            err,
            SimError::Watchdog {
                cause: WatchdogCause::Deadline,
                ..
            }
        ));

        // A generous deadline and a live token leave the run untouched.
        let report = gpu
            .run_guarded(
                &k,
                &RunLimits::none()
                    .with_cancel(CancelToken::new())
                    .with_deadline(Instant::now() + Duration::from_secs(600)),
            )
            .unwrap();
        assert_eq!(report.normalized(), gpu.run(&k).unwrap().normalized());
    }

    #[test]
    fn invalid_config_is_rejected_before_simulating() {
        let k = kernel_of(32, vec![ThreadOp::Alu { count: 1 }]);
        let err = Gpu::new(GpuConfig {
            num_sms: 0,
            ..GpuConfig::tiny()
        })
        .run(&k)
        .expect_err("zero SMs must be rejected");
        assert!(matches!(
            err,
            SimError::InvalidConfig {
                field: "num_sms",
                ..
            }
        ));
    }

    #[test]
    fn report_exposes_memory_behaviour() {
        let mut k = KernelTrace::new("mem");
        for i in 0..512u64 {
            let mut t = ThreadTrace::new();
            // Same line for everyone: high hit rate after the first warp.
            t.push(ThreadOp::Load {
                addr: 0x8000,
                bytes: 4,
            });
            t.push(ThreadOp::Load {
                addr: i * 128,
                bytes: 4,
            });
            k.push_thread(t);
        }
        let r = Gpu::new(GpuConfig::tiny()).run(&k).unwrap();
        assert!(r.l1_accesses() > 0);
        assert!(r.l1_miss_rate() > 0.0 && r.l1_miss_rate() < 1.0);
        assert!(r.memory.dram.accesses > 0);
        assert!(r.row_locality() >= 1.0);
    }
}
