//! Property-based tests of the memory hierarchy in isolation.

use hsu_sim::config::{GpuConfig, RtCachePolicy};
use hsu_sim::memory::{AccessOutcome, MemorySystem, Requester};
use proptest::prelude::*;

/// Drives the memory system until all issued waiters complete (or a bound).
fn drain(mem: &mut MemorySystem, start: u64, expect: usize, max: u64) -> Vec<(u64, usize, u64)> {
    let mut done = Vec::new();
    let mut out = Vec::new();
    for now in start..start + max {
        done.clear();
        mem.tick(now, &mut done);
        for &(sm, w) in &done {
            out.push((now, sm, w));
        }
        if out.len() >= expect && mem.quiescent() {
            break;
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every accepted access completes exactly once, regardless of the
    /// access pattern (conservation of waiters).
    #[test]
    fn every_accepted_access_completes_once(
        lines in prop::collection::vec(0u64..512, 1..64),
        requesters in prop::collection::vec(any::<bool>(), 1..64),
    ) {
        let cfg = GpuConfig::tiny();
        let mut mem = MemorySystem::new(&cfg);
        let mut accepted = Vec::new();
        let mut now = 0u64;
        for (i, &line) in lines.iter().enumerate() {
            let req = if *requesters.get(i).unwrap_or(&false) {
                Requester::RtUnit
            } else {
                Requester::Lsu
            };
            // Retry on MSHR-full like the SMs do.
            loop {
                match mem.access(0, line, i as u64, req, now) {
                    AccessOutcome::Accepted => break,
                    AccessOutcome::Rejected => {
                        let mut sink = Vec::new();
                        mem.tick(now, &mut sink);
                        for (sm, w) in sink {
                            accepted.push((now, sm, w));
                        }
                        now += 1;
                        prop_assert!(now < 1_000_000, "livelock on MSHR retry");
                    }
                }
            }
            now += 1;
        }
        let done = drain(&mut mem, now, lines.len() - accepted.len(), 2_000_000);
        let mut waiters: Vec<u64> =
            accepted.iter().map(|&(_, _, w)| w).chain(done.iter().map(|&(_, _, w)| w)).collect();
        waiters.sort_unstable();
        let expect: Vec<u64> = (0..lines.len() as u64).collect();
        prop_assert_eq!(waiters, expect);
    }

    /// Row locality is always >= 1 and total DRAM accesses never exceed the
    /// number of distinct missed lines.
    #[test]
    fn dram_accounting_is_sane(lines in prop::collection::vec(0u64..10_000, 1..96)) {
        let cfg = GpuConfig::tiny();
        let mut mem = MemorySystem::new(&cfg);
        let mut now = 0;
        for (i, &line) in lines.iter().enumerate() {
            while mem.access(0, line, i as u64, Requester::Lsu, now) == AccessOutcome::Rejected {
                let mut sink = Vec::new();
                mem.tick(now, &mut sink);
                now += 1;
            }
            now += 1;
        }
        drain(&mut mem, now, lines.len(), 2_000_000);
        let stats = mem.stats();
        let distinct: std::collections::HashSet<u64> = lines.iter().copied().collect();
        prop_assert!(stats.dram.accesses <= distinct.len() as u64);
        if stats.dram.accesses > 0 {
            prop_assert!(stats.dram.row_locality() >= 1.0);
        }
        // Conservation at the L1: hits + mshr hits + misses == accesses.
        prop_assert_eq!(stats.l1.accesses(), lines.len() as u64);
    }
}

#[test]
fn streaming_access_has_high_row_locality() {
    // Consecutive lines should mostly hit open DRAM rows under the
    // row:bank:column interleaving (the Fig. 14 mechanism).
    let cfg = GpuConfig::tiny();
    let mut mem = MemorySystem::new(&cfg);
    let mut now = 0;
    for i in 0..256u64 {
        while mem.access(0, i, i, Requester::Lsu, now) == AccessOutcome::Rejected {
            let mut sink = Vec::new();
            mem.tick(now, &mut sink);
            now += 1;
        }
        now += 1;
    }
    drain(&mut mem, now, 256, 2_000_000);
    let loc = mem.stats().dram.row_locality();
    assert!(loc > 4.0, "streaming row locality {loc} too low");
}

#[test]
fn private_rt_cache_isolates_pollution() {
    // Fill the L1 with LSU lines, then stream RT lines through a private
    // cache: the LSU lines must still hit afterwards.
    let cfg = GpuConfig {
        rt_cache: RtCachePolicy::Private { bytes: 8 * 1024 },
        ..GpuConfig::tiny()
    };
    let mut mem = MemorySystem::new(&cfg);
    let mut now = 0;
    // Warm 16 LSU lines.
    for i in 0..16u64 {
        mem.access(0, i, i, Requester::Lsu, now);
        now += 1;
    }
    drain(&mut mem, now, 16, 1_000_000);
    now += 1_000_000;
    // Stream 4096 RT lines (would evict everything if shared).
    for i in 0..4096u64 {
        while mem.access(0, 10_000 + i, 100 + i, Requester::RtUnit, now) == AccessOutcome::Rejected
        {
            let mut sink = Vec::new();
            mem.tick(now, &mut sink);
            now += 1;
        }
        now += 1;
    }
    drain(&mut mem, now, 4096, 4_000_000);
    now += 4_000_000;
    // LSU lines still resident.
    let before = mem.stats().l1.hits;
    for i in 0..16u64 {
        mem.access(0, i, 200 + i, Requester::Lsu, now);
        now += 1;
    }
    drain(&mut mem, now, 16, 1_000_000);
    let hits = mem.stats().l1.hits - before;
    assert_eq!(
        hits, 16,
        "RT streaming must not evict LSU lines under Private policy"
    );
}
