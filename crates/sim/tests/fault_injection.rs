//! Fault-injection harness: every fault class must surface as its matching
//! typed [`SimError`] — never a panic, never a process abort — and healthy
//! runs must stay byte-identical to their fault-free twins in every
//! simulation mode (parallel-epoch included, for every thread count).
//!
//! The corruptions come from [`hsu_sim::faults`], which guarantees they are
//! real faults; this suite proves the *simulator's* side of the contract.

use std::panic::{catch_unwind, AssertUnwindSafe};

use proptest::prelude::*;

use hsu_sim::config::{GpuConfig, SimMode};
use hsu_sim::error::{CancelToken, RunLimits, WatchdogCause};
use hsu_sim::faults::{
    corrupt_trace_bytes, forced_deadlock_config, forced_deadlock_kernel, pathological_configs,
    TraceFault, TRACE_FAULTS,
};
use hsu_sim::trace::{KernelTrace, ThreadOp, ThreadTrace};
use hsu_sim::trace_io::{read_trace, write_trace};
use hsu_sim::{Gpu, SimError};

fn sample_kernel(threads: u64, ops_per_thread: u32) -> KernelTrace {
    let mut k = KernelTrace::new("fault-sample");
    for t in 0..threads {
        let mut tt = ThreadTrace::new();
        for i in 0..ops_per_thread {
            match (t + u64::from(i)) % 3 {
                0 => tt.push(ThreadOp::Alu { count: 2 }),
                1 => tt.push(ThreadOp::Load {
                    addr: (t * 64).wrapping_add(u64::from(i) * 128),
                    bytes: 8,
                }),
                _ => tt.push(ThreadOp::Shared { count: 1 }),
            }
        }
        k.push_thread(tt);
    }
    k
}

fn encoded_sample() -> Vec<u8> {
    let mut buf = Vec::new();
    write_trace(&sample_kernel(8, 4), &mut buf).unwrap();
    buf
}

/// Decodes corrupted bytes under `catch_unwind`, asserting the failure is a
/// typed error rather than any flavour of panic.
fn decode_must_fail_cleanly(bytes: &[u8], what: &str) {
    let outcome = catch_unwind(AssertUnwindSafe(|| read_trace(bytes)));
    match outcome {
        Ok(Err(_)) => {} // the contract: a typed error
        Ok(Ok(_)) => panic!("{what}: corrupted trace decoded successfully"),
        Err(_) => panic!("{what}: decoder panicked instead of returning an error"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn truncated_traces_fail_with_typed_errors(seed in any::<u64>()) {
        let buf = encoded_sample();
        let bad = corrupt_trace_bytes(&buf, TraceFault::Truncate, seed);
        decode_must_fail_cleanly(&bad, "truncate");
    }

    #[test]
    fn bit_flipped_traces_fail_with_typed_errors(seed in any::<u64>()) {
        let buf = encoded_sample();
        let bad = corrupt_trace_bytes(&buf, TraceFault::BitFlip, seed);
        decode_must_fail_cleanly(&bad, "bit-flip");
    }

    #[test]
    fn bogus_opcode_traces_fail_with_typed_errors(seed in any::<u64>()) {
        let buf = encoded_sample();
        let bad = corrupt_trace_bytes(&buf, TraceFault::BogusOpcode, seed);
        decode_must_fail_cleanly(&bad, "bogus-opcode");
    }

    #[test]
    fn arbitrary_byte_soup_never_panics_the_decoder(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Stronger than the targeted faults: feed the decoder random bytes.
        // It may reject them (it almost always will); it must never panic.
        let outcome = catch_unwind(AssertUnwindSafe(|| read_trace(bytes.as_slice())));
        prop_assert!(outcome.is_ok(), "decoder panicked on arbitrary input");
    }

    #[test]
    fn healthy_traces_simulate_identically_after_a_round_trip(
        threads in 1u64..24,
        ops in 1u32..6,
    ) {
        let original = sample_kernel(threads, ops);
        let mut buf = Vec::new();
        write_trace(&original, &mut buf).unwrap();
        let restored = read_trace(buf.as_slice()).unwrap();
        for mode in SimMode::ALL {
            let cfg = GpuConfig { sim_mode: mode, ..GpuConfig::tiny() };
            let a = Gpu::new(cfg.clone()).run(&original).unwrap();
            let b = Gpu::new(cfg).run(&restored).unwrap();
            prop_assert_eq!(a.normalized(), b.normalized(), "mode {:?}", mode);
        }
    }
}

#[test]
fn every_fault_class_is_rejected_across_a_seed_sweep() {
    let buf = encoded_sample();
    for fault in TRACE_FAULTS {
        for seed in 0..256u64 {
            let bad = corrupt_trace_bytes(&buf, fault, seed);
            decode_must_fail_cleanly(&bad, &format!("{fault:?} seed {seed}"));
        }
    }
}

#[test]
fn pathological_configs_surface_as_invalid_config() {
    let kernel = sample_kernel(4, 2);
    for (field, cfg) in pathological_configs() {
        let outcome = catch_unwind(AssertUnwindSafe(|| Gpu::new(cfg).run(&kernel)));
        let err = match outcome {
            Ok(Err(e)) => e,
            Ok(Ok(_)) => panic!("pathological config ({field}) simulated successfully"),
            Err(_) => panic!("pathological config ({field}) panicked the simulator"),
        };
        match err {
            SimError::InvalidConfig { field: got, .. } => {
                assert_eq!(got, field, "wrong offending field reported");
            }
            other => panic!("expected InvalidConfig for {field}, got {other:?}"),
        }
    }
}

/// Thread counts the parallel-epoch fault cases sweep: the inline path,
/// real barriers with an uneven lane split, and more workers than SMs.
const FAULT_THREAD_SWEEP: [usize; 3] = [1, 2, 8];

#[test]
fn forced_deadlock_reports_identical_payloads_in_every_mode() {
    let kernel = forced_deadlock_kernel();
    // Every (mode, threads) pair that can execute the kernel; `sim_threads`
    // is ignored outside parallel-epoch, so the serial modes run once.
    let mut configs = vec![
        GpuConfig {
            sim_mode: SimMode::Stepped,
            ..forced_deadlock_config()
        },
        GpuConfig {
            sim_mode: SimMode::Event,
            ..forced_deadlock_config()
        },
    ];
    for threads in FAULT_THREAD_SWEEP {
        configs.push(GpuConfig {
            sim_mode: SimMode::ParallelEpoch,
            sim_threads: threads,
            ..forced_deadlock_config()
        });
    }
    let reports: Vec<SimError> = configs
        .into_iter()
        .map(|cfg| {
            Gpu::new(cfg)
                .run(&kernel)
                .expect_err("forced deadlock must trip the guard")
        })
        .collect();
    let SimError::Deadlock(oracle) = &reports[0] else {
        panic!("expected a Deadlock error, got {:?}", reports[0]);
    };
    assert_eq!(oracle.kernel, "forced-deadlock");
    assert_eq!(oracle.cycle, forced_deadlock_config().max_cycles);
    assert!(!oracle.per_sm.is_empty());
    for (i, report) in reports.iter().enumerate().skip(1) {
        match report {
            SimError::Deadlock(d) => {
                assert_eq!(d, oracle, "deadlock diagnostics diverged (config {i})");
            }
            other => panic!("expected Deadlock for config {i}, got {other:?}"),
        }
    }
}

#[test]
fn watchdog_cancellation_yields_a_typed_watchdog_error() {
    let kernel = sample_kernel(64, 8);
    let cancel = CancelToken::new();
    cancel.cancel();
    let limits = RunLimits::none().with_cancel(cancel);
    let err = Gpu::new(GpuConfig::tiny())
        .run_guarded(&kernel, &limits)
        .expect_err("pre-cancelled run must stop");
    match err {
        SimError::Watchdog { cause, .. } => assert_eq!(cause, WatchdogCause::Cancelled),
        other => panic!("expected Watchdog, got {other:?}"),
    }
}

#[test]
fn watchdog_deadline_yields_a_typed_watchdog_error() {
    let kernel = sample_kernel(64, 8);
    let limits = RunLimits::none().with_deadline(std::time::Instant::now());
    let err = Gpu::new(GpuConfig::tiny())
        .run_guarded(&kernel, &limits)
        .expect_err("expired deadline must stop the run");
    match err {
        SimError::Watchdog { cause, .. } => assert_eq!(cause, WatchdogCause::Deadline),
        other => panic!("expected Watchdog, got {other:?}"),
    }
}

/// The parallel-epoch loop must shut its worker pool down cleanly on every
/// watchdog path and surface the same typed error as the serial modes —
/// a hang here (a worker parked on a barrier that never releases) would
/// time the test out rather than fail an assertion.
#[test]
fn watchdog_faults_are_typed_identically_under_parallel_epoch() {
    let kernel = sample_kernel(64, 8);
    for threads in FAULT_THREAD_SWEEP {
        let cfg = GpuConfig {
            sim_mode: SimMode::ParallelEpoch,
            sim_threads: threads,
            ..GpuConfig::tiny()
        };

        let cancel = CancelToken::new();
        cancel.cancel();
        let limits = RunLimits::none().with_cancel(cancel);
        let err = Gpu::new(cfg.clone())
            .run_guarded(&kernel, &limits)
            .expect_err("pre-cancelled run must stop");
        match err {
            SimError::Watchdog { cause, .. } => {
                assert_eq!(cause, WatchdogCause::Cancelled, "{threads} threads");
            }
            other => panic!("expected Watchdog ({threads} threads), got {other:?}"),
        }

        let limits = RunLimits::none().with_deadline(std::time::Instant::now());
        let err = Gpu::new(cfg)
            .run_guarded(&kernel, &limits)
            .expect_err("expired deadline must stop the run");
        match err {
            SimError::Watchdog { cause, .. } => {
                assert_eq!(cause, WatchdogCause::Deadline, "{threads} threads");
            }
            other => panic!("expected Watchdog ({threads} threads), got {other:?}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Archive-level faults: chunk corruptions surfacing through the simulator's
// typed error taxonomy
// ---------------------------------------------------------------------------

/// A keyed trace archive image holding two sample kernels, as the bench
/// cache would write it.
fn encoded_archive_sample() -> Vec<u8> {
    use hsu_sim::archive_io::encode_trace_archive;
    let hsu = sample_kernel(8, 4);
    let base = sample_kernel(6, 3);
    encode_trace_archive("fault-archive", &[("hsu", &hsu), ("base", &base)])
        .expect("healthy traces encode")
}

/// Decoding a corrupted archive must yield a typed [`SimError`] — every
/// archive corruption maps to `trace-decode` (OS failures alone map to
/// `io`, and there are none on the in-memory path) — and must never panic.
fn archive_decode_must_fail_cleanly(bytes: &[u8], what: &str) {
    use hsu_sim::archive_io::decode_trace_archive;
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        decode_trace_archive(bytes, "fault-archive", &["hsu", "base"])
    }));
    match outcome {
        Ok(Err(err)) => assert_eq!(
            err.kind(),
            "trace-decode",
            "{what}: archive corruption must surface as trace-decode, got {err}"
        ),
        Ok(Ok(_)) => panic!("{what}: corrupted archive decoded successfully"),
        Err(_) => panic!("{what}: archive decoder panicked instead of returning an error"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn corrupted_trace_archives_fail_with_typed_errors(
        seed in any::<u64>(),
        fault_pick in 0usize..hsu_archive::faults::ARCHIVE_FAULTS.len(),
    ) {
        let bytes = encoded_archive_sample();
        let fault = hsu_archive::faults::ARCHIVE_FAULTS[fault_pick];
        let bad = hsu_archive::faults::corrupt_archive_bytes(&bytes, fault, seed);
        archive_decode_must_fail_cleanly(&bad, "archive fault");
    }

    #[test]
    fn arbitrary_byte_soup_never_panics_the_archive_decoder(
        bytes in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        use hsu_sim::archive_io::decode_trace_archive;
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            decode_trace_archive(&bytes, "fault-archive", &["hsu"])
        }));
        prop_assert!(outcome.is_ok(), "archive decoder panicked on byte soup");
        if let Ok(Ok(_)) = outcome {
            // A 256-byte random blob can't carry the magic, key chunk, and
            // valid checksums all at once.
            prop_assert!(false, "byte soup decoded as a keyed trace archive");
        }
    }
}

/// Mirror of `every_fault_class_is_rejected_across_a_seed_sweep` for the
/// archive layer: each chunk-level fault class, 256 seeds, always a typed
/// `trace-decode` rejection through the simulator's error taxonomy.
#[test]
fn every_archive_fault_class_is_rejected_across_a_seed_sweep() {
    let bytes = encoded_archive_sample();
    for fault in hsu_archive::faults::ARCHIVE_FAULTS {
        for seed in 0..256u64 {
            let bad = hsu_archive::faults::corrupt_archive_bytes(&bytes, fault, seed);
            archive_decode_must_fail_cleanly(&bad, &format!("{fault:?} seed {seed}"));
        }
    }
}

/// The on-disk reader keeps OS failures (`io`) distinct from corruption
/// (`trace-decode`): a missing file is the former, a truncated file the
/// latter — the bench cache branches on exactly this distinction to decide
/// between "rebuild" and "report".
#[test]
fn file_archive_faults_keep_io_and_decode_errors_distinct() {
    use hsu_sim::archive_io::{read_trace_archive, write_trace_archive};
    let dir = std::env::temp_dir().join(format!("hsu-fault-archive-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");

    let missing = dir.join("missing.hsar");
    let err = read_trace_archive(&missing, "fault-archive", &["hsu"]).unwrap_err();
    assert_eq!(err.kind(), "io", "missing file must be an io error");

    let hsu = sample_kernel(8, 4);
    let path = dir.join("traces.hsar");
    write_trace_archive(&path, "fault-archive", &[("hsu", &hsu)]).expect("write");
    let full = std::fs::read(&path).expect("read back");
    for seed in 0..64u64 {
        let bad = hsu_archive::faults::corrupt_archive_bytes(
            &full,
            hsu_archive::faults::ArchiveFault::Truncate,
            seed,
        );
        std::fs::write(&path, &bad).expect("write corrupted");
        let err = read_trace_archive(&path, "fault-archive", &["hsu"]).unwrap_err();
        assert_eq!(
            err.kind(),
            "trace-decode",
            "seed {seed}: truncated file must be a decode error, got {err}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
