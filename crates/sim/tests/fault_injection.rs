//! Fault-injection harness: every fault class must surface as its matching
//! typed [`SimError`] — never a panic, never a process abort — and healthy
//! runs must stay byte-identical to their fault-free twins in every
//! simulation mode (parallel-epoch included, for every thread count).
//!
//! The corruptions come from [`hsu_sim::faults`], which guarantees they are
//! real faults; this suite proves the *simulator's* side of the contract.
//! Every class is additionally pinned under the treelet-scheduled RT core
//! ([`hsu_sim::config::RtCoreKind::Treelet`]) with payload parity against
//! the baseline organization — a fault must look the same no matter which
//! core the machine was built with.

use std::panic::{catch_unwind, AssertUnwindSafe};

use proptest::prelude::*;

use hsu_core::HsuConfig;
use hsu_sim::config::{GpuConfig, RtCoreKind, SimMode};
use hsu_sim::error::{CancelToken, RunLimits, WatchdogCause};
use hsu_sim::faults::{
    corrupt_trace_bytes, forced_deadlock_config, forced_deadlock_kernel, pathological_configs,
    TraceFault, TRACE_FAULTS,
};
use hsu_sim::trace::{KernelTrace, ThreadOp, ThreadTrace};
use hsu_sim::trace_io::{read_trace, write_trace};
use hsu_sim::{Gpu, SimError};

fn sample_kernel(threads: u64, ops_per_thread: u32) -> KernelTrace {
    let mut k = KernelTrace::new("fault-sample");
    for t in 0..threads {
        let mut tt = ThreadTrace::new();
        for i in 0..ops_per_thread {
            match (t + u64::from(i)) % 3 {
                0 => tt.push(ThreadOp::Alu { count: 2 }),
                1 => tt.push(ThreadOp::Load {
                    addr: (t * 64).wrapping_add(u64::from(i) * 128),
                    bytes: 8,
                }),
                _ => tt.push(ThreadOp::Shared { count: 1 }),
            }
        }
        k.push_thread(tt);
    }
    k
}

fn encoded_sample() -> Vec<u8> {
    let mut buf = Vec::new();
    write_trace(&sample_kernel(8, 4), &mut buf).unwrap();
    buf
}

/// Decodes corrupted bytes under `catch_unwind`, asserting the failure is a
/// typed error rather than any flavour of panic.
fn decode_must_fail_cleanly(bytes: &[u8], what: &str) {
    let outcome = catch_unwind(AssertUnwindSafe(|| read_trace(bytes)));
    match outcome {
        Ok(Err(_)) => {} // the contract: a typed error
        Ok(Ok(_)) => panic!("{what}: corrupted trace decoded successfully"),
        Err(_) => panic!("{what}: decoder panicked instead of returning an error"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn truncated_traces_fail_with_typed_errors(seed in any::<u64>()) {
        let buf = encoded_sample();
        let bad = corrupt_trace_bytes(&buf, TraceFault::Truncate, seed);
        decode_must_fail_cleanly(&bad, "truncate");
    }

    #[test]
    fn bit_flipped_traces_fail_with_typed_errors(seed in any::<u64>()) {
        let buf = encoded_sample();
        let bad = corrupt_trace_bytes(&buf, TraceFault::BitFlip, seed);
        decode_must_fail_cleanly(&bad, "bit-flip");
    }

    #[test]
    fn bogus_opcode_traces_fail_with_typed_errors(seed in any::<u64>()) {
        let buf = encoded_sample();
        let bad = corrupt_trace_bytes(&buf, TraceFault::BogusOpcode, seed);
        decode_must_fail_cleanly(&bad, "bogus-opcode");
    }

    #[test]
    fn arbitrary_byte_soup_never_panics_the_decoder(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Stronger than the targeted faults: feed the decoder random bytes.
        // It may reject them (it almost always will); it must never panic.
        let outcome = catch_unwind(AssertUnwindSafe(|| read_trace(bytes.as_slice())));
        prop_assert!(outcome.is_ok(), "decoder panicked on arbitrary input");
    }

    #[test]
    fn healthy_traces_simulate_identically_after_a_round_trip(
        threads in 1u64..24,
        ops in 1u32..6,
    ) {
        let original = sample_kernel(threads, ops);
        let mut buf = Vec::new();
        write_trace(&original, &mut buf).unwrap();
        let restored = read_trace(buf.as_slice()).unwrap();
        for mode in SimMode::ALL {
            let cfg = GpuConfig { sim_mode: mode, ..GpuConfig::tiny() };
            let a = Gpu::new(cfg.clone()).run(&original).unwrap();
            let b = Gpu::new(cfg).run(&restored).unwrap();
            prop_assert_eq!(a.normalized(), b.normalized(), "mode {:?}", mode);
        }
    }
}

#[test]
fn every_fault_class_is_rejected_across_a_seed_sweep() {
    let buf = encoded_sample();
    for fault in TRACE_FAULTS {
        for seed in 0..256u64 {
            let bad = corrupt_trace_bytes(&buf, fault, seed);
            decode_must_fail_cleanly(&bad, &format!("{fault:?} seed {seed}"));
        }
    }
}

#[test]
fn pathological_configs_surface_as_invalid_config() {
    let kernel = sample_kernel(4, 2);
    for (field, cfg) in pathological_configs() {
        let outcome = catch_unwind(AssertUnwindSafe(|| Gpu::new(cfg).run(&kernel)));
        let err = match outcome {
            Ok(Err(e)) => e,
            Ok(Ok(_)) => panic!("pathological config ({field}) simulated successfully"),
            Err(_) => panic!("pathological config ({field}) panicked the simulator"),
        };
        match err {
            SimError::InvalidConfig { field: got, .. } => {
                assert_eq!(got, field, "wrong offending field reported");
            }
            other => panic!("expected InvalidConfig for {field}, got {other:?}"),
        }
    }
}

/// Thread counts the parallel-epoch fault cases sweep: the inline path,
/// real barriers with an uneven lane split, and more workers than SMs.
const FAULT_THREAD_SWEEP: [usize; 3] = [1, 2, 8];

#[test]
fn forced_deadlock_reports_identical_payloads_in_every_mode() {
    let kernel = forced_deadlock_kernel();
    // Every (mode, threads) pair that can execute the kernel; `sim_threads`
    // is ignored outside parallel-epoch, so the serial modes run once.
    let mut configs = vec![
        GpuConfig {
            sim_mode: SimMode::Stepped,
            ..forced_deadlock_config()
        },
        GpuConfig {
            sim_mode: SimMode::Event,
            ..forced_deadlock_config()
        },
    ];
    for threads in FAULT_THREAD_SWEEP {
        configs.push(GpuConfig {
            sim_mode: SimMode::ParallelEpoch,
            sim_threads: threads,
            ..forced_deadlock_config()
        });
    }
    let reports: Vec<SimError> = configs
        .into_iter()
        .map(|cfg| {
            Gpu::new(cfg)
                .run(&kernel)
                .expect_err("forced deadlock must trip the guard")
        })
        .collect();
    let SimError::Deadlock(oracle) = &reports[0] else {
        panic!("expected a Deadlock error, got {:?}", reports[0]);
    };
    assert_eq!(oracle.kernel, "forced-deadlock");
    assert_eq!(oracle.cycle, forced_deadlock_config().max_cycles);
    assert!(!oracle.per_sm.is_empty());
    for (i, report) in reports.iter().enumerate().skip(1) {
        match report {
            SimError::Deadlock(d) => {
                assert_eq!(d, oracle, "deadlock diagnostics diverged (config {i})");
            }
            other => panic!("expected Deadlock for config {i}, got {other:?}"),
        }
    }
}

#[test]
fn watchdog_cancellation_yields_a_typed_watchdog_error() {
    let kernel = sample_kernel(64, 8);
    let cancel = CancelToken::new();
    cancel.cancel();
    let limits = RunLimits::none().with_cancel(cancel);
    let err = Gpu::new(GpuConfig::tiny())
        .run_guarded(&kernel, &limits)
        .expect_err("pre-cancelled run must stop");
    match err {
        SimError::Watchdog { cause, .. } => assert_eq!(cause, WatchdogCause::Cancelled),
        other => panic!("expected Watchdog, got {other:?}"),
    }
}

#[test]
fn watchdog_deadline_yields_a_typed_watchdog_error() {
    let kernel = sample_kernel(64, 8);
    let limits = RunLimits::none().with_deadline(std::time::Instant::now());
    let err = Gpu::new(GpuConfig::tiny())
        .run_guarded(&kernel, &limits)
        .expect_err("expired deadline must stop the run");
    match err {
        SimError::Watchdog { cause, .. } => assert_eq!(cause, WatchdogCause::Deadline),
        other => panic!("expected Watchdog, got {other:?}"),
    }
}

/// The parallel-epoch loop must shut its worker pool down cleanly on every
/// watchdog path and surface the same typed error as the serial modes —
/// a hang here (a worker parked on a barrier that never releases) would
/// time the test out rather than fail an assertion.
#[test]
fn watchdog_faults_are_typed_identically_under_parallel_epoch() {
    let kernel = sample_kernel(64, 8);
    for threads in FAULT_THREAD_SWEEP {
        let cfg = GpuConfig {
            sim_mode: SimMode::ParallelEpoch,
            sim_threads: threads,
            ..GpuConfig::tiny()
        };

        let cancel = CancelToken::new();
        cancel.cancel();
        let limits = RunLimits::none().with_cancel(cancel);
        let err = Gpu::new(cfg.clone())
            .run_guarded(&kernel, &limits)
            .expect_err("pre-cancelled run must stop");
        match err {
            SimError::Watchdog { cause, .. } => {
                assert_eq!(cause, WatchdogCause::Cancelled, "{threads} threads");
            }
            other => panic!("expected Watchdog ({threads} threads), got {other:?}"),
        }

        let limits = RunLimits::none().with_deadline(std::time::Instant::now());
        let err = Gpu::new(cfg)
            .run_guarded(&kernel, &limits)
            .expect_err("expired deadline must stop the run");
        match err {
            SimError::Watchdog { cause, .. } => {
                assert_eq!(cause, WatchdogCause::Deadline, "{threads} threads");
            }
            other => panic!("expected Watchdog ({threads} threads), got {other:?}"),
        }
    }
}

// ---------------------------------------------------------------------------
// RT-organization parity: every fault class pins the same typed error under
// the treelet-scheduled core as under the baseline organization
// ---------------------------------------------------------------------------

/// The same machine under both RT-unit organizations.
fn organizations(cfg: &GpuConfig) -> [GpuConfig; 2] {
    [
        GpuConfig {
            rt_core: RtCoreKind::Baseline,
            ..cfg.clone()
        },
        GpuConfig {
            rt_core: RtCoreKind::Treelet,
            ..cfg.clone()
        },
    ]
}

/// Byte-level corruption is rejected at decode, *before* an RT organization
/// is even constructed, so the typed error cannot depend on the core. This
/// pins the taxonomy — every trace-fault class maps to
/// [`SimError::TraceDecode`] — and then proves the healthy twin of the
/// corrupted stream executes under both organizations with identical
/// instruction issue and retirement (cycles legitimately differ).
#[test]
fn every_fault_class_is_pinned_to_trace_decode_for_both_organizations() {
    let buf = encoded_sample();
    for fault in TRACE_FAULTS {
        for seed in 0..64u64 {
            let bad = corrupt_trace_bytes(&buf, fault, seed);
            let io_err = match read_trace(bad.as_slice()) {
                Err(e) => e,
                Ok(_) => panic!("{fault:?} seed {seed}: corrupted trace decoded"),
            };
            // Lift through the same taxonomy the loaders use: every byte
            // corruption must land on `TraceDecode`, never `Io`.
            let err = SimError::from_io("fault harness", io_err);
            assert!(
                matches!(err, SimError::TraceDecode { .. }),
                "{fault:?} seed {seed}: expected TraceDecode, got {err:?}"
            );
        }
    }
    let kernel = read_trace(buf.as_slice()).expect("healthy stream decodes");
    let [a, b] = organizations(&GpuConfig::tiny()).map(|cfg| {
        Gpu::new(cfg)
            .run(&kernel)
            .expect("healthy stream simulates under both organizations")
    });
    assert_eq!(
        a.issued, b.issued,
        "issue mix diverged between organizations"
    );
    assert_eq!(a.warps_retired, b.warps_retired);
    assert_eq!(a.rt.warp_instructions, b.rt.warp_instructions);
    assert_eq!(a.rt.isa_instructions, b.rt.isa_instructions);
}

/// The forced-deadlock pair must trip the cycle guard with *identical*
/// diagnostics under the treelet core, in every mode and thread count. The
/// kernel carries no HSU ops, so the organizations run in lockstep and any
/// payload divergence is an organization bug, not a modelling difference.
#[test]
fn forced_deadlock_payloads_agree_across_organizations() {
    let kernel = forced_deadlock_kernel();
    let oracle_err = Gpu::new(forced_deadlock_config())
        .run(&kernel)
        .expect_err("baseline stepped run must deadlock");
    let SimError::Deadlock(oracle) = &oracle_err else {
        panic!("expected Deadlock, got {oracle_err:?}");
    };
    let treelet = GpuConfig {
        rt_core: RtCoreKind::Treelet,
        ..forced_deadlock_config()
    };
    let mut configs = vec![
        GpuConfig {
            sim_mode: SimMode::Stepped,
            ..treelet.clone()
        },
        GpuConfig {
            sim_mode: SimMode::Event,
            ..treelet.clone()
        },
    ];
    for threads in FAULT_THREAD_SWEEP {
        configs.push(GpuConfig {
            sim_mode: SimMode::ParallelEpoch,
            sim_threads: threads,
            ..treelet.clone()
        });
    }
    for (i, cfg) in configs.into_iter().enumerate() {
        let err = Gpu::new(cfg)
            .run(&kernel)
            .expect_err("forced deadlock must trip the guard under the treelet core");
        match &err {
            SimError::Deadlock(d) => assert_eq!(
                d.as_ref(),
                oracle.as_ref(),
                "treelet deadlock diagnostics diverged from the baseline oracle (config {i})"
            ),
            other => panic!("expected Deadlock for treelet config {i}, got {other:?}"),
        }
    }
}

/// Every pathological configuration is rejected on the same field with the
/// same rendered diagnostics under both organizations. The staging-pool
/// entry is organization-specific by design (the baseline ignores the
/// knob), so it pins the treelet core alone; everything else sweeps both.
#[test]
fn pathological_configs_are_typed_identically_for_both_organizations() {
    let kernel = sample_kernel(4, 2);
    for (field, cfg) in pathological_configs() {
        let variants = if field == "rt_staging_buffers" {
            vec![cfg.clone()]
        } else {
            organizations(&cfg).to_vec()
        };
        let payloads: Vec<String> = variants
            .into_iter()
            .map(|c| {
                let err = Gpu::new(c)
                    .run(&kernel)
                    .expect_err("pathological config must be rejected");
                match &err {
                    SimError::InvalidConfig { field: got, .. } => {
                        assert_eq!(*got, field, "wrong offending field reported");
                    }
                    other => panic!("expected InvalidConfig for {field}, got {other:?}"),
                }
                err.to_string()
            })
            .collect();
        assert!(
            payloads.windows(2).all(|w| w[0] == w[1]),
            "{field}: organizations rendered different diagnostics: {payloads:?}"
        );
    }
}

/// The fault class that *does* reach the RT core: a decodable trace whose
/// `KEY_COMPARE` the configured unit cannot execute (HSU extensions absent).
/// Both organizations must reject it with the same typed
/// [`SimError::IllegalDispatch`] payload — the support matrix and dispatch
/// plan are shared between the cores, so the diagnostics are too.
#[test]
fn hsu_ops_without_extensions_are_rejected_identically_by_both_organizations() {
    let mut kernel = KernelTrace::new("illegal-dispatch");
    let mut thread = ThreadTrace::new();
    thread.push(ThreadOp::HsuKeyCompare {
        node_addr: 0,
        separators: 8,
    });
    kernel.push_thread(thread);
    let base = GpuConfig::tiny().with_hsu(HsuConfig::baseline_rt());
    let payloads: Vec<String> = organizations(&base)
        .into_iter()
        .map(|cfg| {
            let err = Gpu::new(cfg)
                .run(&kernel)
                .expect_err("a baseline RT unit must reject KEY_COMPARE");
            match &err {
                SimError::IllegalDispatch { .. } => {}
                other => panic!("expected IllegalDispatch, got {other:?}"),
            }
            err.to_string()
        })
        .collect();
    assert_eq!(
        payloads[0], payloads[1],
        "organizations rendered different dispatch diagnostics"
    );
}

// ---------------------------------------------------------------------------
// Archive-level faults: chunk corruptions surfacing through the simulator's
// typed error taxonomy
// ---------------------------------------------------------------------------

/// A keyed trace archive image holding two sample kernels, as the bench
/// cache would write it.
fn encoded_archive_sample() -> Vec<u8> {
    use hsu_sim::archive_io::encode_trace_archive;
    let hsu = sample_kernel(8, 4);
    let base = sample_kernel(6, 3);
    encode_trace_archive("fault-archive", &[("hsu", &hsu), ("base", &base)])
        .expect("healthy traces encode")
}

/// Decoding a corrupted archive must yield a typed [`SimError`] — every
/// archive corruption maps to `trace-decode` (OS failures alone map to
/// `io`, and there are none on the in-memory path) — and must never panic.
fn archive_decode_must_fail_cleanly(bytes: &[u8], what: &str) {
    use hsu_sim::archive_io::decode_trace_archive;
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        decode_trace_archive(bytes, "fault-archive", &["hsu", "base"])
    }));
    match outcome {
        Ok(Err(err)) => assert_eq!(
            err.kind(),
            "trace-decode",
            "{what}: archive corruption must surface as trace-decode, got {err}"
        ),
        Ok(Ok(_)) => panic!("{what}: corrupted archive decoded successfully"),
        Err(_) => panic!("{what}: archive decoder panicked instead of returning an error"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn corrupted_trace_archives_fail_with_typed_errors(
        seed in any::<u64>(),
        fault_pick in 0usize..hsu_archive::faults::ARCHIVE_FAULTS.len(),
    ) {
        let bytes = encoded_archive_sample();
        let fault = hsu_archive::faults::ARCHIVE_FAULTS[fault_pick];
        let bad = hsu_archive::faults::corrupt_archive_bytes(&bytes, fault, seed);
        archive_decode_must_fail_cleanly(&bad, "archive fault");
    }

    #[test]
    fn arbitrary_byte_soup_never_panics_the_archive_decoder(
        bytes in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        use hsu_sim::archive_io::decode_trace_archive;
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            decode_trace_archive(&bytes, "fault-archive", &["hsu"])
        }));
        prop_assert!(outcome.is_ok(), "archive decoder panicked on byte soup");
        if let Ok(Ok(_)) = outcome {
            // A 256-byte random blob can't carry the magic, key chunk, and
            // valid checksums all at once.
            prop_assert!(false, "byte soup decoded as a keyed trace archive");
        }
    }
}

/// Mirror of `every_fault_class_is_rejected_across_a_seed_sweep` for the
/// archive layer: each chunk-level fault class, 256 seeds, always a typed
/// `trace-decode` rejection through the simulator's error taxonomy.
#[test]
fn every_archive_fault_class_is_rejected_across_a_seed_sweep() {
    let bytes = encoded_archive_sample();
    for fault in hsu_archive::faults::ARCHIVE_FAULTS {
        for seed in 0..256u64 {
            let bad = hsu_archive::faults::corrupt_archive_bytes(&bytes, fault, seed);
            archive_decode_must_fail_cleanly(&bad, &format!("{fault:?} seed {seed}"));
        }
    }
}

/// The on-disk reader keeps OS failures (`io`) distinct from corruption
/// (`trace-decode`): a missing file is the former, a truncated file the
/// latter — the bench cache branches on exactly this distinction to decide
/// between "rebuild" and "report".
#[test]
fn file_archive_faults_keep_io_and_decode_errors_distinct() {
    use hsu_sim::archive_io::{read_trace_archive, write_trace_archive};
    let dir = std::env::temp_dir().join(format!("hsu-fault-archive-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");

    let missing = dir.join("missing.hsar");
    let err = read_trace_archive(&missing, "fault-archive", &["hsu"]).unwrap_err();
    assert_eq!(err.kind(), "io", "missing file must be an io error");

    let hsu = sample_kernel(8, 4);
    let path = dir.join("traces.hsar");
    write_trace_archive(&path, "fault-archive", &[("hsu", &hsu)]).expect("write");
    let full = std::fs::read(&path).expect("read back");
    for seed in 0..64u64 {
        let bad = hsu_archive::faults::corrupt_archive_bytes(
            &full,
            hsu_archive::faults::ArchiveFault::Truncate,
            seed,
        );
        std::fs::write(&path, &bad).expect("write corrupted");
        let err = read_trace_archive(&path, "fault-archive", &["hsu"]).unwrap_err();
        assert_eq!(
            err.kind(),
            "trace-decode",
            "seed {seed}: truncated file must be a decode error, got {err}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
