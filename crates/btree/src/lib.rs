//! A B+-tree key-value store modelled on the Rodinia `b+tree` benchmark.
//!
//! The paper's fourth workload (§V-A) traverses a B-tree whose internal nodes
//! hold up to 255 separator values (branch factor 256). Descending one node
//! means comparing the query key against the separators — the operation the
//! HSU's `KEY_COMPARE` instruction performs 36 separators at a time.
//!
//! The tree here is bulk-built (the GPU benchmark also builds once and then
//! serves batched lookups), with flat arena storage so the trace generators
//! can address nodes directly.
//!
//! # Examples
//!
//! ```
//! use hsu_btree::BPlusTree;
//!
//! let pairs: Vec<(u32, u64)> = (0..1000).map(|k| (k * 2, u64::from(k) + 100)).collect();
//! let tree = BPlusTree::bulk_build(pairs, 256);
//! assert_eq!(tree.get(500), Some(350));
//! assert_eq!(tree.get(501), None);
//! ```

#![warn(missing_docs)]

pub mod archive_io;

/// Maximum branch factor of the Rodinia configuration (255 separators).
pub const RODINIA_BRANCH: usize = 256;

/// Lookup-effort counters for the trace generators.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BtStats {
    /// Internal nodes visited.
    pub internal_visits: u64,
    /// Separator values compared (before early exit in scalar code; the HSU
    /// compares them 36 at a time regardless).
    pub separators_scanned: u64,
    /// Leaf nodes visited.
    pub leaf_visits: u64,
}

/// One node of the flat-arena B+-tree.
#[derive(Debug, Clone, PartialEq)]
pub enum BtNode {
    /// Internal routing node: `children.len() == separators.len() + 1`.
    Internal {
        /// Sorted separator keys.
        separators: Vec<u32>,
        /// Child node indices.
        children: Vec<u32>,
    },
    /// Leaf holding sorted `(key, value)` pairs and a link to the next leaf.
    Leaf {
        /// Sorted keys.
        keys: Vec<u32>,
        /// Values parallel to `keys`.
        values: Vec<u64>,
        /// Next leaf in key order, if any.
        next: Option<u32>,
    },
}

/// Result of a recursive insertion step.
enum InsertOutcome {
    /// Key existed; value swapped.
    Replaced(u64),
    /// Inserted without overflow.
    Inserted,
    /// The child split: `sep` routes to the new `right` sibling.
    Split {
        /// Separator to add to the parent.
        sep: u32,
        /// Index of the new right node.
        right: u32,
    },
}

/// A bulk-built B+-tree with u32 keys and u64 values.
#[derive(Debug, Clone, PartialEq)]
pub struct BPlusTree {
    nodes: Vec<BtNode>,
    root: u32,
    branch: usize,
    len: usize,
}

impl BPlusTree {
    /// Builds a tree from key-value pairs with the given branch factor
    /// (maximum children per internal node; separators = branch − 1).
    ///
    /// Duplicate keys keep the *last* occurrence, matching `BTreeMap::insert`
    /// semantics for repeated inserts.
    ///
    /// # Panics
    ///
    /// Panics if `branch < 3`.
    pub fn bulk_build(mut pairs: Vec<(u32, u64)>, branch: usize) -> Self {
        assert!(branch >= 3, "branch factor must be at least 3");
        pairs.sort_by_key(|&(k, _)| k);
        // Keep the last occurrence of each duplicate key.
        pairs.reverse();
        pairs.dedup_by_key(|&mut (k, _)| k);
        pairs.reverse();
        let len = pairs.len();

        let mut nodes = Vec::new();
        if pairs.is_empty() {
            nodes.push(BtNode::Leaf {
                keys: Vec::new(),
                values: Vec::new(),
                next: None,
            });
            return BPlusTree {
                nodes,
                root: 0,
                branch,
                len,
            };
        }

        // Fill leaves at ~2/3 occupancy like a bulk loader would, but cap at
        // branch-1 keys per leaf.
        let leaf_cap = (branch - 1).max(1);
        let per_leaf = ((leaf_cap * 2) / 3).max(1);
        let mut level: Vec<(u32, u32)> = Vec::new(); // (min key, node idx)
        for chunk in pairs.chunks(per_leaf) {
            let idx = nodes.len() as u32;
            nodes.push(BtNode::Leaf {
                keys: chunk.iter().map(|&(k, _)| k).collect(),
                values: chunk.iter().map(|&(_, v)| v).collect(),
                next: None,
            });
            level.push((chunk[0].0, idx));
        }
        // Link the leaves.
        for w in level.windows(2) {
            let (_, a) = w[0];
            let (_, b) = w[1];
            if let BtNode::Leaf { next, .. } = &mut nodes[a as usize] {
                *next = Some(b);
            }
        }

        // Build internal levels until one root remains.
        while level.len() > 1 {
            let mut next_level = Vec::new();
            for chunk in level.chunks(branch) {
                let idx = nodes.len() as u32;
                let separators: Vec<u32> = chunk[1..].iter().map(|&(k, _)| k).collect();
                let children: Vec<u32> = chunk.iter().map(|&(_, i)| i).collect();
                nodes.push(BtNode::Internal {
                    separators,
                    children,
                });
                next_level.push((chunk[0].0, idx));
            }
            level = next_level;
        }

        BPlusTree {
            nodes,
            root: level[0].1,
            branch,
            len,
        }
    }

    /// Number of stored pairs.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the tree stores nothing.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The configured branch factor.
    #[inline]
    pub fn branch(&self) -> usize {
        self.branch
    }

    /// Root node index.
    #[inline]
    pub fn root(&self) -> u32 {
        self.root
    }

    /// The node arena; exposed for the trace generators.
    #[inline]
    pub fn nodes(&self) -> &[BtNode] {
        &self.nodes
    }

    /// Tree height (leaf level = 1).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut node = self.root;
        loop {
            match &self.nodes[node as usize] {
                BtNode::Leaf { .. } => return h,
                BtNode::Internal { children, .. } => {
                    node = children[0];
                    h += 1;
                }
            }
        }
    }

    /// Point lookup.
    pub fn get(&self, key: u32) -> Option<u64> {
        self.get_counted(key).0
    }

    /// Point lookup with effort counters.
    pub fn get_counted(&self, key: u32) -> (Option<u64>, BtStats) {
        let mut stats = BtStats::default();
        let mut node = self.root;
        loop {
            match &self.nodes[node as usize] {
                BtNode::Internal {
                    separators,
                    children,
                } => {
                    stats.internal_visits += 1;
                    stats.separators_scanned += separators.len() as u64;
                    // Child index = number of separators <= key, the
                    // KEY_COMPARE popcount semantics.
                    let idx = separators.partition_point(|&s| s <= key);
                    node = children[idx];
                }
                BtNode::Leaf { keys, values, .. } => {
                    stats.leaf_visits += 1;
                    return match keys.binary_search(&key) {
                        Ok(i) => (Some(values[i]), stats),
                        Err(_) => (None, stats),
                    };
                }
            }
        }
    }

    /// Point lookups for a batch of keys, one result per key in input
    /// order. Each lookup is exactly a [`BPlusTree::get_counted`] call,
    /// so batch results are bit-identical to per-key results in any
    /// order or partition of the key stream.
    pub fn get_many_counted(&self, keys: &[u32]) -> Vec<(Option<u64>, BtStats)> {
        keys.iter().map(|&k| self.get_counted(k)).collect()
    }

    /// All `(key, value)` pairs with `lo <= key < hi`, in key order, walking
    /// the leaf chain.
    pub fn range(&self, lo: u32, hi: u32) -> Vec<(u32, u64)> {
        let mut out = Vec::new();
        if lo >= hi || self.is_empty() {
            return out;
        }
        // Descend to the leaf that could contain `lo`.
        let mut node = self.root;
        while let BtNode::Internal {
            separators,
            children,
        } = &self.nodes[node as usize]
        {
            let idx = separators.partition_point(|&s| s <= lo);
            node = children[idx];
        }
        let mut current = Some(node);
        while let Some(n) = current {
            let BtNode::Leaf { keys, values, next } = &self.nodes[n as usize] else {
                unreachable!("leaf chain links to internal node");
            };
            for (k, v) in keys.iter().zip(values) {
                if *k >= hi {
                    return out;
                }
                if *k >= lo {
                    out.push((*k, *v));
                }
            }
            current = *next;
        }
        out
    }

    /// Inserts a key-value pair, splitting nodes on overflow (the classic
    /// B+-tree insertion; the GPU b-tree of Awad et al. supports the same
    /// operation batch-wise). Returns the previous value if the key existed.
    ///
    /// # Examples
    ///
    /// ```
    /// use hsu_btree::BPlusTree;
    /// let mut t = BPlusTree::bulk_build(vec![(1, 10), (3, 30)], 4);
    /// assert_eq!(t.insert(2, 20), None);
    /// assert_eq!(t.insert(3, 31), Some(30));
    /// assert_eq!(t.get(2), Some(20));
    /// t.validate().unwrap();
    /// ```
    pub fn insert(&mut self, key: u32, value: u64) -> Option<u64> {
        let root = self.root;
        match self.insert_into(root, key, value) {
            InsertOutcome::Replaced(old) => Some(old),
            InsertOutcome::Inserted => {
                self.len += 1;
                None
            }
            InsertOutcome::Split { sep, right } => {
                // Grow a new root.
                let new_root = self.nodes.len() as u32;
                self.nodes.push(BtNode::Internal {
                    separators: vec![sep],
                    children: vec![root, right],
                });
                self.root = new_root;
                self.len += 1;
                None
            }
        }
    }

    fn insert_into(&mut self, node: u32, key: u32, value: u64) -> InsertOutcome {
        match &mut self.nodes[node as usize] {
            BtNode::Leaf { keys, values, next } => {
                match keys.binary_search(&key) {
                    Ok(i) => {
                        let old = values[i];
                        values[i] = value;
                        InsertOutcome::Replaced(old)
                    }
                    Err(i) => {
                        keys.insert(i, key);
                        values.insert(i, value);
                        if keys.len() < self.branch {
                            return InsertOutcome::Inserted;
                        }
                        // Split the leaf in half; the right half's first key
                        // becomes the separator (it stays in the leaf level).
                        let mid = keys.len() / 2;
                        let right_keys = keys.split_off(mid);
                        let right_values = values.split_off(mid);
                        let sep = right_keys[0];
                        let old_next = *next;
                        let right = self.nodes.len() as u32;
                        if let BtNode::Leaf { next, .. } = &mut self.nodes[node as usize] {
                            *next = Some(right);
                        }
                        self.nodes.push(BtNode::Leaf {
                            keys: right_keys,
                            values: right_values,
                            next: old_next,
                        });
                        InsertOutcome::Split { sep, right }
                    }
                }
            }
            BtNode::Internal {
                separators,
                children,
            } => {
                let idx = separators.partition_point(|&s| s <= key);
                let child = children[idx];
                match self.insert_into(child, key, value) {
                    InsertOutcome::Split { sep, right } => {
                        let BtNode::Internal {
                            separators,
                            children,
                        } = &mut self.nodes[node as usize]
                        else {
                            unreachable!("node kind changed during insert");
                        };
                        separators.insert(idx, sep);
                        children.insert(idx + 1, right);
                        if children.len() <= self.branch {
                            return InsertOutcome::Inserted;
                        }
                        // Split the internal node; the middle separator
                        // moves up.
                        let mid = separators.len() / 2;
                        let up = separators[mid];
                        let right_seps = separators.split_off(mid + 1);
                        separators.pop(); // remove `up`
                        let right_children = children.split_off(mid + 1);
                        let right = self.nodes.len() as u32;
                        self.nodes.push(BtNode::Internal {
                            separators: right_seps,
                            children: right_children,
                        });
                        InsertOutcome::Split { sep: up, right }
                    }
                    other => other,
                }
            }
        }
    }

    /// Checks the structural invariants: sorted separators and keys,
    /// `children = separators + 1`, uniform leaf depth, correct routing
    /// (every key in child `i` is within the separator bounds), and the leaf
    /// chain enumerating all keys in order.
    pub fn validate(&self) -> Result<(), String> {
        fn walk(
            tree: &BPlusTree,
            node: u32,
            lo: Option<u32>,
            hi: Option<u32>,
            depth: usize,
            leaf_depth: &mut Option<usize>,
        ) -> Result<(), String> {
            match &tree.nodes[node as usize] {
                BtNode::Internal {
                    separators,
                    children,
                } => {
                    if children.len() != separators.len() + 1 {
                        return Err(format!("node {node}: fanout mismatch"));
                    }
                    if children.len() > tree.branch {
                        return Err(format!("node {node}: overfull"));
                    }
                    if !separators.windows(2).all(|w| w[0] < w[1]) {
                        return Err(format!("node {node}: separators not strictly sorted"));
                    }
                    for (i, &child) in children.iter().enumerate() {
                        let clo = if i == 0 { lo } else { Some(separators[i - 1]) };
                        let chi = if i == separators.len() {
                            hi
                        } else {
                            Some(separators[i])
                        };
                        walk(tree, child, clo, chi, depth + 1, leaf_depth)?;
                    }
                    Ok(())
                }
                BtNode::Leaf { keys, values, .. } => {
                    if keys.len() != values.len() {
                        return Err(format!("leaf {node}: key/value length mismatch"));
                    }
                    if !keys.windows(2).all(|w| w[0] < w[1]) {
                        return Err(format!("leaf {node}: keys not strictly sorted"));
                    }
                    for &k in keys {
                        if let Some(lo) = lo {
                            if k < lo {
                                return Err(format!("leaf {node}: key {k} below bound {lo}"));
                            }
                        }
                        if let Some(hi) = hi {
                            if k >= hi {
                                return Err(format!("leaf {node}: key {k} above bound {hi}"));
                            }
                        }
                    }
                    match leaf_depth {
                        None => *leaf_depth = Some(depth),
                        Some(d) if *d != depth => {
                            return Err(format!("leaf {node}: depth {depth} != {d}"))
                        }
                        _ => {}
                    }
                    Ok(())
                }
            }
        }
        let mut leaf_depth = None;
        walk(self, self.root, None, None, 0, &mut leaf_depth)?;

        // Leaf chain covers exactly `len` keys in strict order.
        let mut count = 0usize;
        let mut last: Option<u32> = None;
        // Find the leftmost leaf.
        let mut node = self.root;
        while let BtNode::Internal { children, .. } = &self.nodes[node as usize] {
            node = children[0];
        }
        let mut current = Some(node);
        while let Some(n) = current {
            let BtNode::Leaf { keys, next, .. } = &self.nodes[n as usize] else {
                return Err("leaf chain reaches internal node".into());
            };
            for &k in keys {
                if let Some(prev) = last {
                    if k <= prev {
                        return Err(format!("leaf chain out of order at key {k}"));
                    }
                }
                last = Some(k);
                count += 1;
            }
            current = *next;
        }
        if count != self.len {
            return Err(format!(
                "leaf chain has {count} keys, expected {}",
                self.len
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use std::collections::BTreeMap;

    fn random_pairs(n: usize, seed: u64) -> Vec<(u32, u64)> {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| (rng.gen_range(0..1_000_000), rng.gen()))
            .collect()
    }

    #[test]
    fn matches_std_btreemap() {
        let pairs = random_pairs(5000, 1);
        let mut reference = BTreeMap::new();
        for &(k, v) in &pairs {
            reference.insert(k, v);
        }
        let tree = BPlusTree::bulk_build(pairs, RODINIA_BRANCH);
        tree.validate().unwrap();
        assert_eq!(tree.len(), reference.len());
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2);
        for _ in 0..2000 {
            let k = rng.gen_range(0..1_000_100);
            assert_eq!(tree.get(k), reference.get(&k).copied(), "key {k}");
        }
    }

    #[test]
    fn get_many_matches_per_key_lookups() {
        let pairs = random_pairs(4000, 5);
        let tree = BPlusTree::bulk_build(pairs, RODINIA_BRANCH);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(6);
        let keys: Vec<u32> = (0..300).map(|_| rng.gen_range(0..1_000_100)).collect();
        let batched = tree.get_many_counted(&keys);
        assert_eq!(batched.len(), keys.len());
        for (&k, (v, stats)) in keys.iter().zip(&batched) {
            let (solo_v, solo_stats) = tree.get_counted(k);
            assert_eq!(solo_v, *v, "key {k}");
            assert_eq!(solo_stats, *stats, "key {k}");
        }
    }

    #[test]
    fn range_matches_std() {
        let pairs = random_pairs(3000, 3);
        let mut reference = BTreeMap::new();
        for &(k, v) in &pairs {
            reference.insert(k, v);
        }
        let tree = BPlusTree::bulk_build(pairs, 64);
        tree.validate().unwrap();
        for (lo, hi) in [
            (0u32, 1000),
            (500_000, 600_000),
            (999_000, 2_000_000),
            (7, 7),
        ] {
            let got = tree.range(lo, hi);
            let expect: Vec<(u32, u64)> = reference.range(lo..hi).map(|(&k, &v)| (k, v)).collect();
            assert_eq!(got, expect, "range {lo}..{hi}");
        }
    }

    #[test]
    fn rodinia_branch_factor_height() {
        // 1M keys at branch 256 must fit in 3 levels (paper's B+1M dataset).
        let pairs: Vec<(u32, u64)> = (0..1_000_000u32).map(|k| (k, k as u64)).collect();
        let tree = BPlusTree::bulk_build(pairs, RODINIA_BRANCH);
        assert!(tree.height() <= 4, "height {}", tree.height());
        assert_eq!(tree.get(123_456), Some(123_456));
        let (_, stats) = tree.get_counted(999_999);
        assert_eq!(stats.internal_visits as usize + 1, tree.height());
    }

    #[test]
    fn separator_width_drives_key_compare_count() {
        let pairs: Vec<(u32, u64)> = (0..100_000u32).map(|k| (k, 0)).collect();
        let tree = BPlusTree::bulk_build(pairs, RODINIA_BRANCH);
        // Any internal node's separators fit in ceil(255/36) = 8 KEY_COMPAREs.
        for node in tree.nodes() {
            if let BtNode::Internal { separators, .. } = node {
                assert!(separators.len() <= 255);
                assert!(separators.len().div_ceil(36) <= 8);
            }
        }
    }

    #[test]
    fn empty_and_singleton() {
        let tree = BPlusTree::bulk_build(Vec::new(), 16);
        tree.validate().unwrap();
        assert!(tree.is_empty());
        assert_eq!(tree.get(0), None);
        assert!(tree.range(0, 100).is_empty());

        let tree = BPlusTree::bulk_build(vec![(5, 50)], 16);
        tree.validate().unwrap();
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.get(5), Some(50));
        assert_eq!(tree.get(4), None);
    }

    #[test]
    fn duplicates_keep_last() {
        let tree = BPlusTree::bulk_build(vec![(1, 10), (1, 20), (2, 30), (1, 40)], 8);
        tree.validate().unwrap();
        assert_eq!(tree.len(), 2);
        assert_eq!(tree.get(1), Some(40));
    }

    #[test]
    fn small_branch_factors() {
        let pairs = random_pairs(500, 9);
        for branch in [3usize, 4, 8, 32] {
            let tree = BPlusTree::bulk_build(pairs.clone(), branch);
            tree.validate().unwrap();
            for &(k, _) in &pairs {
                assert!(tree.get(k).is_some(), "branch {branch}, key {k}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_branch_rejected() {
        let _ = BPlusTree::bulk_build(vec![(1, 1)], 2);
    }

    #[test]
    fn insert_matches_btreemap_random() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(21);
        let mut tree = BPlusTree::bulk_build(Vec::new(), 6);
        let mut reference = BTreeMap::new();
        for _ in 0..3000 {
            let k = rng.gen_range(0..2000u32);
            let v: u64 = rng.gen();
            assert_eq!(tree.insert(k, v), reference.insert(k, v), "insert {k}");
        }
        tree.validate().unwrap();
        assert_eq!(tree.len(), reference.len());
        for k in 0..2100u32 {
            assert_eq!(tree.get(k), reference.get(&k).copied(), "get {k}");
        }
        // Ranges across the new splits remain ordered.
        let got = tree.range(100, 900);
        let expect: Vec<(u32, u64)> = reference.range(100..900).map(|(&k, &v)| (k, v)).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn insert_into_bulk_built_tree() {
        let pairs: Vec<(u32, u64)> = (0..10_000u32).map(|k| (k * 2, k as u64)).collect();
        let mut tree = BPlusTree::bulk_build(pairs, RODINIA_BRANCH);
        let before = tree.height();
        for k in 0..5_000u32 {
            assert_eq!(tree.insert(k * 2 + 1, 999), None);
        }
        tree.validate().unwrap();
        assert_eq!(tree.len(), 15_000);
        assert_eq!(tree.get(4_001), Some(999));
        assert!(
            tree.height() <= before + 1,
            "inserts must not unbalance the tree"
        );
    }

    #[test]
    fn sequential_inserts_grow_root_splits() {
        let mut tree = BPlusTree::bulk_build(Vec::new(), 4);
        for k in 0..500u32 {
            tree.insert(k, u64::from(k));
            tree.validate()
                .unwrap_or_else(|e| panic!("after insert {k}: {e}"));
        }
        assert_eq!(tree.len(), 500);
        assert!(tree.height() >= 4, "branch-4 tree of 500 keys must be deep");
        assert_eq!(tree.range(0, 500).len(), 500);
    }

    #[test]
    fn stats_count_work() {
        let pairs: Vec<(u32, u64)> = (0..10_000u32).map(|k| (k, k as u64)).collect();
        let tree = BPlusTree::bulk_build(pairs, RODINIA_BRANCH);
        let (v, stats) = tree.get_counted(5_000);
        assert_eq!(v, Some(5_000));
        assert!(stats.internal_visits >= 1);
        assert!(stats.separators_scanned >= 1);
        assert_eq!(stats.leaf_visits, 1);
    }
}
