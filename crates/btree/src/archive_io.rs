//! `.hsar` payload codec for [`BPlusTree`] ([`hsu_archive::kind::BTREE`]).
//!
//! Layout (little-endian):
//!
//! ```text
//! branch u64 | len u64 | root u32
//! node_count u64
//! per node: tag u8 —
//!   0 = Internal { sep_count u32, seps × u32, child_count u32, children × u32 }
//!   1 = Leaf     { key_count u32, keys × u32, values × u64, next u32 }
//! ```
//!
//! A leaf's `next` link stores `u32::MAX` for `None` (node indices are
//! bounded far below that by [`hsu_archive`]'s chunk caps). Decode →
//! re-encode is byte-identical.

use hsu_archive::payload::{put_u32, put_u64, put_u8, Cursor};
use hsu_archive::ArchiveError;

use crate::{BPlusTree, BtNode};

const NO_NEXT: u32 = u32::MAX;

/// Encodes a tree as a `BTREE` chunk payload.
pub fn btree_to_chunk(tree: &BPlusTree) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u64(&mut buf, tree.branch as u64);
    put_u64(&mut buf, tree.len as u64);
    put_u32(&mut buf, tree.root);
    put_u64(&mut buf, tree.nodes.len() as u64);
    for node in &tree.nodes {
        match node {
            BtNode::Internal {
                separators,
                children,
            } => {
                put_u8(&mut buf, 0);
                put_u32(&mut buf, separators.len() as u32);
                for &s in separators {
                    put_u32(&mut buf, s);
                }
                put_u32(&mut buf, children.len() as u32);
                for &ch in children {
                    put_u32(&mut buf, ch);
                }
            }
            BtNode::Leaf { keys, values, next } => {
                put_u8(&mut buf, 1);
                put_u32(&mut buf, keys.len() as u32);
                for &k in keys {
                    put_u32(&mut buf, k);
                }
                for &v in values {
                    put_u64(&mut buf, v);
                }
                put_u32(&mut buf, next.unwrap_or(NO_NEXT));
            }
        }
    }
    buf
}

/// Decodes a `BTREE` chunk payload; `chunk` labels errors.
pub fn btree_from_chunk(bytes: &[u8], chunk: &str) -> Result<BPlusTree, ArchiveError> {
    let fail = |detail: String| ArchiveError::Payload {
        chunk: chunk.into(),
        detail,
    };
    let mut c = Cursor::new(bytes, chunk);
    let branch = c.u64()? as usize;
    if branch < 3 {
        return Err(fail(format!("branch factor {branch} below the minimum 3")));
    }
    let len = c.u64()? as usize;
    let root = c.u32()?;
    let node_count = c.u64()?;
    // Smallest node: an empty leaf (tag + count + next = 9 bytes).
    let node_count = c.count(node_count, 9, "node")?;
    if node_count == 0 {
        return Err(fail("tree must have at least one node".into()));
    }
    if root as usize >= node_count {
        return Err(fail(format!("root {root} outside {node_count} nodes")));
    }
    let mut nodes = Vec::with_capacity(node_count);
    for _ in 0..node_count {
        match c.u8()? {
            0 => {
                let sep_count = c.u32()?;
                let sep_count = c.count(u64::from(sep_count), 4, "separator")?;
                let mut separators = Vec::with_capacity(sep_count);
                for _ in 0..sep_count {
                    separators.push(c.u32()?);
                }
                let child_count = c.u32()?;
                let child_count = c.count(u64::from(child_count), 4, "child")?;
                if child_count != sep_count + 1 {
                    return Err(fail(format!(
                        "{child_count} children do not bracket {sep_count} separators"
                    )));
                }
                let mut children = Vec::with_capacity(child_count);
                for _ in 0..child_count {
                    let ch = c.u32()?;
                    if ch as usize >= node_count {
                        return Err(fail(format!("child {ch} outside {node_count} nodes")));
                    }
                    children.push(ch);
                }
                nodes.push(BtNode::Internal {
                    separators,
                    children,
                });
            }
            1 => {
                let key_count = c.u32()?;
                let key_count = c.count(u64::from(key_count), 12, "key/value")?;
                let mut keys = Vec::with_capacity(key_count);
                for _ in 0..key_count {
                    keys.push(c.u32()?);
                }
                let mut values = Vec::with_capacity(key_count);
                for _ in 0..key_count {
                    values.push(c.u64()?);
                }
                let next = match c.u32()? {
                    NO_NEXT => None,
                    n if (n as usize) < node_count => Some(n),
                    n => return Err(fail(format!("leaf link {n} outside {node_count} nodes"))),
                };
                nodes.push(BtNode::Leaf { keys, values, next });
            }
            other => return Err(fail(format!("unknown node tag {other}"))),
        }
    }
    c.finish()?;
    Ok(BPlusTree {
        nodes,
        root,
        branch,
        len,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn btree_chunk_round_trips_with_byte_parity() {
        let pairs: Vec<(u32, u64)> = (0..500u32)
            .map(|i| (i.wrapping_mul(2_654_435_761) >> 8, u64::from(i)))
            .collect();
        let tree = BPlusTree::bulk_build(pairs, 16);
        tree.validate().expect("bulk build is valid");
        let bytes = btree_to_chunk(&tree);
        let back = btree_from_chunk(&bytes, "t").expect("decode");
        assert_eq!(back, tree);
        assert_eq!(btree_to_chunk(&back), bytes, "re-encode parity");
        back.validate().expect("restored tree is valid");
    }

    #[test]
    fn inconsistent_fanout_is_a_typed_payload_error() {
        let tree = BPlusTree::bulk_build((0..200u32).map(|i| (i, 0u64)).collect(), 8);
        let mut bytes = btree_to_chunk(&tree);
        // First node is a leaf; find the first internal node's tag and break
        // its separator count instead: simpler — corrupt the root index.
        bytes[16..20].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = btree_from_chunk(&bytes, "t").unwrap_err();
        assert_eq!(err.kind(), "payload");
    }
}
