//! Property-based tests of the B+-tree against `std::collections::BTreeMap`.

use hsu_btree::BPlusTree;
use proptest::prelude::*;
use std::collections::BTreeMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lookups_match_btreemap(
        pairs in prop::collection::vec((0u32..100_000, any::<u64>()), 0..800),
        probes in prop::collection::vec(0u32..110_000, 0..200),
        branch in 3usize..64,
    ) {
        let reference: BTreeMap<u32, u64> = pairs.iter().copied().collect();
        let tree = BPlusTree::bulk_build(pairs, branch);
        prop_assert!(tree.validate().is_ok());
        prop_assert_eq!(tree.len(), reference.len());
        for k in probes {
            prop_assert_eq!(tree.get(k), reference.get(&k).copied(), "key {}", k);
        }
    }

    #[test]
    fn ranges_match_btreemap(
        pairs in prop::collection::vec((0u32..10_000, any::<u64>()), 0..500),
        lo in 0u32..12_000,
        span in 0u32..4_000,
        branch in 3usize..32,
    ) {
        let reference: BTreeMap<u32, u64> = pairs.iter().copied().collect();
        let tree = BPlusTree::bulk_build(pairs, branch);
        let hi = lo.saturating_add(span);
        let got = tree.range(lo, hi);
        let expect: Vec<(u32, u64)> = reference.range(lo..hi).map(|(&k, &v)| (k, v)).collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn height_is_logarithmic(n in 1usize..5_000, branch in 8usize..=256) {
        let pairs: Vec<(u32, u64)> = (0..n as u32).map(|k| (k, 0)).collect();
        let tree = BPlusTree::bulk_build(pairs, branch);
        prop_assert!(tree.validate().is_ok());
        // Bulk-loaded occupancy is >= branch/3 per level.
        let bound = (n as f64).log((branch as f64 / 3.0).max(2.0)).ceil() as usize + 2;
        prop_assert!(tree.height() <= bound,
            "height {} exceeds bound {} (n={}, branch={})", tree.height(), bound, n, branch);
    }

    #[test]
    fn lookup_work_counters_are_consistent(n in 1usize..3_000) {
        let pairs: Vec<(u32, u64)> = (0..n as u32).map(|k| (k * 2, k as u64)).collect();
        let tree = BPlusTree::bulk_build(pairs, 32);
        let (v, stats) = tree.get_counted((n as u32 - 1) * 2);
        prop_assert_eq!(v, Some(n as u64 - 1));
        prop_assert_eq!(stats.internal_visits as usize, tree.height() - 1);
        prop_assert_eq!(stats.leaf_visits, 1);
    }
}
