//! Configuration of the HSU datapath and its front-end structures.

use hsu_geometry::point::Metric;

/// Datapath pipeline depth in stages (paper §IV-B: "The pipeline has a depth
/// of 9 stages").
pub const PIPELINE_DEPTH: usize = 9;

/// Configuration of one HSU instance.
///
/// The defaults reproduce the paper's chosen design point: a 16-wide Euclidean
/// / 8-wide angular datapath (§IV-C) and an 8-entry warp buffer (§VI-I). The
/// width and warp-buffer knobs drive the Fig. 10 and Fig. 11 sensitivity
/// sweeps.
///
/// # Examples
///
/// ```
/// use hsu_core::HsuConfig;
/// let cfg = HsuConfig::default();
/// assert_eq!(cfg.euclid_width, 16);
/// assert_eq!(cfg.angular_width(), 8);
/// assert_eq!(cfg.warp_buffer_entries, 8);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HsuConfig {
    /// Lane width of the Euclidean distance operating mode. The angular mode
    /// is always half of this to share the same multipliers (paper §VI-H).
    pub euclid_width: usize,
    /// Number of warp-buffer entries buffering in-flight warp instructions.
    pub warp_buffer_entries: usize,
    /// Maximum separator values compared per `KEY_COMPARE` (36 in the paper).
    pub key_compare_width: usize,
    /// Ray/box tests performed per `RAY_INTERSECT` on a box node (BVH4 → 4).
    pub box_tests_per_node: usize,
    /// Whether the HSU extensions are present at all. When `false` the unit
    /// is the baseline RT unit: distance and key-compare instructions are
    /// rejected.
    pub hsu_extensions: bool,
}

impl Default for HsuConfig {
    fn default() -> Self {
        HsuConfig {
            euclid_width: 16,
            warp_buffer_entries: 8,
            key_compare_width: 36,
            box_tests_per_node: 4,
            hsu_extensions: true,
        }
    }
}

impl HsuConfig {
    /// The paper's baseline RT unit: identical front end, no HSU instructions.
    pub fn baseline_rt() -> Self {
        HsuConfig {
            hsu_extensions: false,
            ..HsuConfig::default()
        }
    }

    /// Returns a copy with a different Euclidean datapath width (Fig. 10).
    ///
    /// # Panics
    ///
    /// Panics if `width` is not a positive multiple of 2.
    pub fn with_euclid_width(mut self, width: usize) -> Self {
        assert!(
            width >= 2 && width.is_multiple_of(2),
            "euclid width must be an even positive number"
        );
        self.euclid_width = width;
        self
    }

    /// Returns a copy with a different warp-buffer size (Fig. 11).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn with_warp_buffer(mut self, entries: usize) -> Self {
        assert!(entries > 0, "warp buffer needs at least one entry");
        self.warp_buffer_entries = entries;
        self
    }

    /// Lane width of the angular operating mode (half of Euclidean, §IV-C).
    #[inline]
    pub fn angular_width(&self) -> usize {
        self.euclid_width / 2
    }

    /// Lane width of the given metric's operating mode.
    #[inline]
    pub fn width_for(&self, metric: Metric) -> usize {
        match metric {
            Metric::Euclidean => self.euclid_width,
            Metric::Angular => self.angular_width(),
        }
    }

    /// Number of beats (chained instructions) for a `dim`-dimensional
    /// distance under this configuration's width.
    #[inline]
    pub fn beats_for(&self, metric: Metric, dim: usize) -> usize {
        dim.div_ceil(self.width_for(metric)).max(1)
    }

    /// Number of `KEY_COMPARE` instructions needed for `n` separator values.
    #[inline]
    pub fn key_compare_instructions(&self, n: usize) -> usize {
        n.div_ceil(self.key_compare_width).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_design_point() {
        let cfg = HsuConfig::default();
        assert_eq!(cfg.euclid_width, 16);
        assert_eq!(cfg.angular_width(), 8);
        assert_eq!(cfg.warp_buffer_entries, 8);
        assert_eq!(cfg.key_compare_width, 36);
        assert_eq!(cfg.box_tests_per_node, 4);
        assert!(cfg.hsu_extensions);
    }

    #[test]
    fn baseline_disables_extensions() {
        assert!(!HsuConfig::baseline_rt().hsu_extensions);
    }

    #[test]
    fn width_sweep() {
        for w in [4usize, 8, 16, 32] {
            let cfg = HsuConfig::default().with_euclid_width(w);
            assert_eq!(cfg.width_for(Metric::Euclidean), w);
            assert_eq!(cfg.width_for(Metric::Angular), w / 2);
        }
    }

    #[test]
    fn beats_match_paper_example() {
        let cfg = HsuConfig::default();
        assert_eq!(cfg.beats_for(Metric::Angular, 65), 9);
        assert_eq!(cfg.beats_for(Metric::Euclidean, 96), 6);
        assert_eq!(cfg.beats_for(Metric::Euclidean, 3), 1);
        // Width sensitivity: 32-wide euclid halves the beats of dim 96.
        let wide = cfg.clone().with_euclid_width(32);
        assert_eq!(wide.beats_for(Metric::Euclidean, 96), 3);
    }

    #[test]
    fn key_compare_chunks() {
        let cfg = HsuConfig::default();
        assert_eq!(cfg.key_compare_instructions(36), 1);
        assert_eq!(cfg.key_compare_instructions(37), 2);
        assert_eq!(cfg.key_compare_instructions(255), 8);
        assert_eq!(cfg.key_compare_instructions(0), 1);
    }

    #[test]
    #[should_panic(expected = "even positive")]
    fn odd_width_rejected() {
        let _ = HsuConfig::default().with_euclid_width(3);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_warp_buffer_rejected() {
        let _ = HsuConfig::default().with_warp_buffer(0);
    }
}
