//! Binary encoding of HSU instructions.
//!
//! The paper's instructions are CISC operations whose operands arrive through
//! the register file, but the *instruction word* itself — opcode, accumulate
//! bit, fetch size, node pointer — must be representable in the SASS/RDNA
//! instruction stream the trace post-processor splices into (§V-C). This
//! module fixes a 128-bit encoding and provides a lossless
//! encode/decode pair, so traces can be serialized compactly.
//!
//! Layout (little-endian bit order within the `u128`):
//!
//! | bits | field |
//! |---|---|
//! | 0..3 | opcode (see [`HsuOpcode`] discriminants) |
//! | 3 | accumulate |
//! | 4..32 | fetch bytes (28 bits, ≤ 256 MiB) |
//! | 32..96 | node pointer (64 bits) |
//! | 96..128 | reserved (must be zero) |

use crate::isa::{HsuInstruction, HsuOpcode};

/// Errors from [`decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The opcode field holds an unassigned value.
    BadOpcode(u8),
    /// The accumulate bit is set on a non-distance opcode.
    BadAccumulate,
    /// Reserved bits are non-zero.
    ReservedBits,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadOpcode(v) => write!(f, "unassigned opcode value {v}"),
            DecodeError::BadAccumulate => {
                f.write_str("accumulate bit set on a non-distance instruction")
            }
            DecodeError::ReservedBits => f.write_str("reserved bits are non-zero"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn opcode_value(op: HsuOpcode) -> u8 {
    match op {
        HsuOpcode::RayIntersect => 0,
        HsuOpcode::PointEuclid => 1,
        HsuOpcode::PointAngular => 2,
        HsuOpcode::KeyCompare => 3,
    }
}

fn opcode_from(value: u8) -> Option<HsuOpcode> {
    match value {
        0 => Some(HsuOpcode::RayIntersect),
        1 => Some(HsuOpcode::PointEuclid),
        2 => Some(HsuOpcode::PointAngular),
        3 => Some(HsuOpcode::KeyCompare),
        _ => None,
    }
}

/// Packs an instruction into its 128-bit word.
///
/// # Panics
///
/// Panics if `fetch_bytes` exceeds the 28-bit field.
pub fn encode(ins: &HsuInstruction) -> u128 {
    assert!(
        ins.fetch_bytes < (1 << 28),
        "fetch size exceeds the 28-bit field"
    );
    let mut word = 0u128;
    word |= opcode_value(ins.opcode) as u128 & 0x7;
    word |= (ins.accumulate as u128) << 3;
    word |= (ins.fetch_bytes as u128) << 4;
    word |= (ins.node_ptr as u128) << 32;
    word
}

/// Unpacks a 128-bit word, validating every field.
pub fn decode(word: u128) -> Result<HsuInstruction, DecodeError> {
    if word >> 96 != 0 {
        return Err(DecodeError::ReservedBits);
    }
    let opcode =
        opcode_from((word & 0x7) as u8).ok_or(DecodeError::BadOpcode((word & 0x7) as u8))?;
    let accumulate = (word >> 3) & 1 == 1;
    if accumulate && !matches!(opcode, HsuOpcode::PointEuclid | HsuOpcode::PointAngular) {
        return Err(DecodeError::BadAccumulate);
    }
    let fetch_bytes = ((word >> 4) & 0x0fff_ffff) as u64;
    let node_ptr = ((word >> 32) & u64::MAX as u128) as u64;
    Ok(HsuInstruction {
        opcode,
        node_ptr,
        fetch_bytes,
        accumulate,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HsuConfig;
    use hsu_geometry::point::Metric;

    #[test]
    fn round_trip_all_opcodes() {
        let cases = [
            HsuInstruction::ray_intersect(0xdead_beef_cafe, 128),
            HsuInstruction::point_euclid(0x1000, 64, true),
            HsuInstruction::point_euclid(0x1040, 4, false),
            HsuInstruction::point_angular(0xffff_ffff_ffff_ffff, 32, true),
            HsuInstruction::key_compare(0, 144),
        ];
        for ins in cases {
            let word = encode(&ins);
            assert_eq!(decode(word), Ok(ins), "word {word:#034x}");
        }
    }

    #[test]
    fn whole_sequences_round_trip() {
        let cfg = HsuConfig::default();
        for dim in [1usize, 16, 65, 96, 784] {
            for metric in [Metric::Euclidean, Metric::Angular] {
                for ins in HsuInstruction::distance_sequence(&cfg, metric, 0x8000, dim) {
                    assert_eq!(decode(encode(&ins)), Ok(ins));
                }
            }
        }
    }

    #[test]
    fn rejects_bad_opcode() {
        assert_eq!(decode(0x7), Err(DecodeError::BadOpcode(7)));
        assert_eq!(decode(0x4), Err(DecodeError::BadOpcode(4)));
    }

    #[test]
    fn rejects_accumulate_on_ray_intersect() {
        // opcode 0 with bit 3 set.
        assert_eq!(decode(0b1000), Err(DecodeError::BadAccumulate));
        // ... and on key compare.
        assert_eq!(decode(0b1011), Err(DecodeError::BadAccumulate));
    }

    #[test]
    fn rejects_reserved_bits() {
        let ok = encode(&HsuInstruction::ray_intersect(0x42, 64));
        assert_eq!(decode(ok | (1u128 << 100)), Err(DecodeError::ReservedBits));
    }

    #[test]
    fn error_messages_are_nonempty() {
        for e in [
            DecodeError::BadOpcode(9),
            DecodeError::BadAccumulate,
            DecodeError::ReservedBits,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "28-bit field")]
    fn oversized_fetch_rejected() {
        encode(&HsuInstruction::ray_intersect(0, 1 << 28));
    }
}
