//! The Hierarchical Search Unit (HSU) — the paper's primary contribution.
//!
//! This crate models the hardware proposed in *Extending GPU Ray-Tracing Units
//! for Hierarchical Search Acceleration* (MICRO 2024) at three levels:
//!
//! 1. **ISA** ([`isa`]) — the baseline `RAY_INTERSECT` instruction plus the
//!    three HSU extensions `POINT_EUCLID`, `POINT_ANGULAR` and `KEY_COMPARE`
//!    (paper Table I), including each instruction's register-file operands and
//!    CISC memory footprint.
//! 2. **Functional semantics** ([`node`], [`exec`], [`intrinsics`]) — packed
//!    BVH4 box / triangle / point-leaf / key node formats and the exact result
//!    each instruction returns through the register file, validated against
//!    the scalar references in [`hsu_geometry`].
//! 3. **Microarchitecture** ([`warp_buffer`], [`arbiter`], [`pipeline`]) — the
//!    warp buffer that exposes memory-level parallelism, the sub-core
//!    round-robin arbiter with the multi-beat *accumulate lock* (paper
//!    §IV-F), and the 9-stage unified single-lane datapath with per-stage
//!    functional-unit activity tracking (paper Figs. 5 and 6).
//!
//! The cycle-level GPU model in `hsu-sim` instantiates these components inside
//! each SM; the `hsu-rtl` crate prices the datapath's functional units for the
//! area/power study.
//!
//! # Examples
//!
//! Computing a high-dimensional distance the way a CUDA kernel would through
//! the HSU device library:
//!
//! ```
//! use hsu_core::intrinsics;
//!
//! let q = vec![0.5_f32; 96];
//! let c = vec![0.25_f32; 96];
//! let d = intrinsics::euclid_dist(&q, &c);
//! assert!((d - 96.0 * 0.0625).abs() < 1e-3);
//! // dimension 96 at the 16-wide pipeline => 6 beats, 5 with accumulate set
//! assert_eq!(intrinsics::euclid_beats(96), 6);
//! ```

#![warn(missing_docs)]

pub mod arbiter;
pub mod config;
pub mod encoding;
pub mod exec;
pub mod intrinsics;
pub mod isa;
pub mod node;
pub mod pipeline;
pub mod warp_buffer;

pub use config::HsuConfig;
pub use isa::{HsuInstruction, HsuOpcode};
pub use node::{BoxNode, KeyNode, NodeKind, PointLeaf, TriangleNode};
