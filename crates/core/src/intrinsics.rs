//! The HSU device library — the CUDA-visible programming interface (§III-B).
//!
//! These functions mirror the intrinsics the paper exposes to device code:
//! `__euclid_dist(a, b, N)`, `__angular_dist(a, b, N)`, plus the key-compare
//! helper used by B-tree traversal. Functionally they equal the scalar
//! references in [`hsu_geometry::point`]; their documented *lowering* (how
//! many HSU instructions the compiler emits) is what the trace generators in
//! `hsu-kernels` charge to the simulator.

use crate::config::HsuConfig;
use hsu_geometry::point::{self, Metric};

/// Squared Euclidean distance between two N-dimensional points — the
/// `__euclid_dist(a, b, N)` intrinsic. Returns a single 32-bit float.
///
/// The compiler lowers this to [`euclid_beats`]`(N)` chained `POINT_EUCLID`
/// instructions (§IV-F).
///
/// # Panics
///
/// Panics if the slices differ in length.
///
/// # Examples
///
/// ```
/// let d = hsu_core::intrinsics::euclid_dist(&[0.0, 3.0], &[4.0, 0.0]);
/// assert_eq!(d, 25.0);
/// ```
#[inline]
pub fn euclid_dist(a: &[f32], b: &[f32]) -> f32 {
    point::euclid_multibeat(a, b)
}

/// Angular distance between two N-dimensional points — the
/// `__angular_dist(a, b, N)` intrinsic.
///
/// The HSU returns `dot_sum`/`norm_sum`; the scalar square root and division
/// of eq. 2 run on the SIMT core, exactly as modelled here. The query norm is
/// recomputed (callers that search many candidates should precompute it and
/// use [`angular_dist_with_norm`]).
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
pub fn angular_dist(a: &[f32], b: &[f32]) -> f32 {
    angular_dist_with_norm(a, b, point::norm_squared(a).sqrt())
}

/// [`angular_dist`] with the query's Euclidean norm precomputed, as the
/// nearest-neighbour kernels do before their search loop (§IV-E).
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
pub fn angular_dist_with_norm(a: &[f32], b: &[f32], query_norm: f32) -> f32 {
    let (dot_sum, norm_sum) = point::angular_multibeat(a, b);
    point::angular_from_sums(dot_sum, norm_sum, query_norm)
}

/// Index of the B-tree child to descend to: the number of separators
/// `<= key`. Lowered to `ceil(n / 36)` `KEY_COMPARE` instructions.
///
/// # Panics
///
/// Panics if `separators` is empty or unsorted in debug builds.
#[inline]
pub fn key_compare(key: f32, separators: &[f32]) -> usize {
    debug_assert!(!separators.is_empty(), "key_compare needs separators");
    debug_assert!(
        separators.windows(2).all(|w| w[0] <= w[1]),
        "separators must be sorted"
    );
    separators.iter().take_while(|&&s| key >= s).count()
}

/// Number of `POINT_EUCLID` instructions emitted for dimension `dim` at the
/// default 16-wide datapath.
#[inline]
pub fn euclid_beats(dim: usize) -> usize {
    HsuConfig::default().beats_for(Metric::Euclidean, dim)
}

/// Number of `POINT_ANGULAR` instructions emitted for dimension `dim` at the
/// default 8-wide angular datapath.
#[inline]
pub fn angular_beats(dim: usize) -> usize {
    HsuConfig::default().beats_for(Metric::Angular, dim)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclid_matches_reference() {
        let a: Vec<f32> = (0..100).map(|i| i as f32).collect();
        let b: Vec<f32> = (0..100).map(|i| (i as f32) * 0.5).collect();
        assert!((euclid_dist(&a, &b) - point::euclidean_squared(&a, &b)).abs() < 1e-2);
    }

    #[test]
    fn angular_matches_reference() {
        let a: Vec<f32> = (0..50).map(|i| (i as f32).sin()).collect();
        let b: Vec<f32> = (0..50).map(|i| (i as f32).cos()).collect();
        assert!((angular_dist(&a, &b) - point::angular_distance(&a, &b)).abs() < 1e-5);
    }

    #[test]
    fn key_compare_matches_binary_search_semantics() {
        let seps = [10.0, 20.0, 30.0];
        assert_eq!(key_compare(5.0, &seps), 0);
        assert_eq!(key_compare(10.0, &seps), 1);
        assert_eq!(key_compare(15.0, &seps), 1);
        assert_eq!(key_compare(30.0, &seps), 3);
        assert_eq!(key_compare(35.0, &seps), 3);
    }

    #[test]
    fn beat_helpers() {
        assert_eq!(euclid_beats(96), 6);
        assert_eq!(angular_beats(96), 12);
        assert_eq!(euclid_beats(1), 1);
    }
}
