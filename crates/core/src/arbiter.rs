//! The sub-core round-robin arbiter with the multi-beat accumulate lock.
//!
//! One RT/HSU unit is shared by the SM's four sub-core schedulers (paper
//! §IV-A). A round-robin arbiter selects among sub-cores with pending warp
//! instructions. Multi-beat distance sequences must not interleave with
//! instructions from other sub-cores (the accumulator is shared state), so
//! when an instruction with the accumulate bit is accepted the arbiter locks
//! onto that sub-core until the sequence's final beat is accepted (§IV-F).

/// Round-robin arbiter over `n` sub-cores with an accumulate lock.
///
/// # Examples
///
/// ```
/// use hsu_core::arbiter::SubCoreArbiter;
/// let mut arb = SubCoreArbiter::new(4);
/// // Sub-cores 1 and 3 are requesting; round-robin picks 1 first.
/// assert_eq!(arb.grant(&[false, true, false, true], &[false; 4]), Some(1));
/// // Next cycle the pointer has advanced past 1.
/// assert_eq!(arb.grant(&[false, true, false, true], &[false; 4]), Some(3));
/// ```
#[derive(Debug, Clone)]
pub struct SubCoreArbiter {
    n: usize,
    next: usize,
    locked_to: Option<usize>,
}

impl SubCoreArbiter {
    /// Creates an arbiter over `n` sub-cores.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "arbiter needs at least one sub-core");
        SubCoreArbiter {
            n,
            next: 0,
            locked_to: None,
        }
    }

    /// Which sub-core the arbiter is currently locked to, if any.
    #[inline]
    pub fn locked_sub_core(&self) -> Option<usize> {
        self.locked_to
    }

    /// Performs one arbitration cycle.
    ///
    /// `requesting[i]` is `true` when sub-core `i` has a warp instruction to
    /// dispatch, and `accumulate[i]` is the accumulate bit of that
    /// instruction. Returns the granted sub-core, advancing the round-robin
    /// pointer. While locked, only the locked sub-core can be granted; the
    /// lock is taken when an accumulate instruction is granted and released
    /// when the final (non-accumulate) beat is granted.
    ///
    /// # Panics
    ///
    /// Panics if the slices are not `n` long.
    pub fn grant(&mut self, requesting: &[bool], accumulate: &[bool]) -> Option<usize> {
        assert_eq!(requesting.len(), self.n, "requesting mask length");
        assert_eq!(accumulate.len(), self.n, "accumulate mask length");

        let granted = match self.locked_to {
            Some(core) => {
                if requesting[core] {
                    Some(core)
                } else {
                    None // locked sub-core idle: the unit waits (no bypass)
                }
            }
            None => {
                let mut pick = None;
                for off in 0..self.n {
                    let core = (self.next + off) % self.n;
                    if requesting[core] {
                        pick = Some(core);
                        break;
                    }
                }
                if let Some(core) = pick {
                    self.next = (core + 1) % self.n;
                }
                pick
            }
        };

        if let Some(core) = granted {
            self.locked_to = if accumulate[core] { Some(core) } else { None };
        }
        granted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_is_fair() {
        let mut arb = SubCoreArbiter::new(4);
        let all = [true; 4];
        let none = [false; 4];
        let order: Vec<_> = (0..8).map(|_| arb.grant(&all, &none).unwrap()).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn skips_idle_sub_cores() {
        let mut arb = SubCoreArbiter::new(4);
        let req = [false, false, true, false];
        assert_eq!(arb.grant(&req, &[false; 4]), Some(2));
        assert_eq!(arb.grant(&[false; 4], &[false; 4]), None);
    }

    #[test]
    fn accumulate_locks_until_final_beat() {
        let mut arb = SubCoreArbiter::new(4);
        let all = [true; 4];
        // Sub-core 0 issues beat 1 of 3 (accumulate set).
        assert_eq!(arb.grant(&all, &[true, false, false, false]), Some(0));
        assert_eq!(arb.locked_sub_core(), Some(0));
        // Other sub-cores request, but only 0 may be granted.
        assert_eq!(arb.grant(&all, &[true, true, true, true]), Some(0));
        assert_eq!(arb.locked_sub_core(), Some(0));
        // Final beat clears the lock.
        assert_eq!(arb.grant(&all, &[false, true, true, true]), Some(0));
        assert_eq!(arb.locked_sub_core(), None);
        // Round-robin resumes at the next sub-core.
        assert_eq!(arb.grant(&all, &[false; 4]), Some(1));
    }

    #[test]
    fn locked_core_idle_blocks_unit() {
        let mut arb = SubCoreArbiter::new(2);
        assert_eq!(arb.grant(&[true, true], &[true, false]), Some(0));
        // Sub-core 0 (locked) has nothing this cycle; nobody is granted.
        assert_eq!(arb.grant(&[false, true], &[false, false]), None);
        assert_eq!(arb.locked_sub_core(), Some(0));
        // When it returns, it resumes.
        assert_eq!(arb.grant(&[true, false], &[false, false]), Some(0));
        assert_eq!(arb.locked_sub_core(), None);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_sub_cores_rejected() {
        let _ = SubCoreArbiter::new(0);
    }
}
